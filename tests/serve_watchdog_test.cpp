//===- tests/serve_watchdog_test.cpp - Watchdog stall detection -----------===//
//
// The per-session watchdog (serve/Serve.h, DESIGN.md §3.14) under an
// injectable clock: a session wedged by the stall-at-step fault-injection
// knob must be aborted once its heartbeat stops for StallSeconds of
// (virtual) time, write a "stall" dump bundle, and be counted in the
// aggregate `serve.stalled` counter — while a healthy session running next
// to it finishes untouched. Clock time is advanced by the test, so no
// test-suite wall-clock seconds are burned waiting for a real stall.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>

using namespace scav;
using namespace scav::serve;

namespace {

namespace fs = std::filesystem;

/// A deterministic clock for the watchdog: every sample advances virtual
/// time by one second, so "stalled for 3 seconds" is observed after a
/// handful of (real-time ~10ms) polls.
std::function<double()> tickingClock() {
  auto T = std::make_shared<std::atomic<uint64_t>>(0);
  return [T]() { return static_cast<double>(T->fetch_add(1)); };
}

fs::path freshDumpDir(const char *Name) {
  fs::path Dir = fs::temp_directory_path() / Name;
  fs::remove_all(Dir);
  return Dir;
}

TEST(ServeWatchdog, StalledSessionIsAbortedAndDumped) {
  Manifest M;
  std::string Err;
  // Session 0 is healthy; session 1 wedges its step loop at step 3 until
  // aborted. stall-at-step is a manifest key like any other.
  ASSERT_TRUE(parseManifest("gen-seed=1\n"
                            "gen-seed=1 stall-at-step=3\n",
                            "", M, Err))
      << Err;
  ASSERT_EQ(M.Sessions.size(), 2u);
  EXPECT_EQ(M.Sessions[1].StallAtStep, 3u);

  fs::path Dir = freshDumpDir("scav_watchdog_test");
  ServeOptions Opts;
  Opts.Workers = 2;
  Opts.StallSeconds = 3;
  Opts.DumpDir = Dir.string();
  Opts.ReplayBase = "certgc_serve --manifest watchdog.manifest";
  Opts.Clock = tickingClock();

  ServeReport Rep = runSessions(M, Opts);
  ASSERT_EQ(Rep.Sessions.size(), 2u);
  EXPECT_FALSE(Rep.AllOk);

  const SessionResult &Healthy = Rep.Sessions[0];
  EXPECT_TRUE(Healthy.Ok) << Healthy.Error;
  EXPECT_FALSE(Healthy.Stalled);
  EXPECT_EQ(Healthy.DumpPath, "");

  const SessionResult &Stalled = Rep.Sessions[1];
  EXPECT_FALSE(Stalled.Ok);
  EXPECT_TRUE(Stalled.Stalled);
  EXPECT_NE(Stalled.Error.find("session aborted"), std::string::npos)
      << Stalled.Error;
  EXPECT_NE(Stalled.Error.find("watchdog stall"), std::string::npos)
      << Stalled.Error;

  // The session's own thread wrote a full bundle under its private
  // subdirectory.
  ASSERT_NE(Stalled.DumpPath, "");
  fs::path Bundle(Stalled.DumpPath);
  EXPECT_NE(Bundle.string().find((Dir / "s1").string()), std::string::npos)
      << Bundle;
  EXPECT_TRUE(fs::exists(Bundle / "snapshot.scavsnap"));
  EXPECT_TRUE(fs::exists(Bundle / "MANIFEST.txt"));
  EXPECT_TRUE(fs::exists(Bundle / "metrics.json"));
  EXPECT_TRUE(fs::exists(Bundle / "replay.txt"));

  // Aggregate accounting: exactly one stall, and per-session heartbeat
  // gauges exist for both sessions.
  EXPECT_EQ(Rep.Aggregate.counter("serve.stalled"), 1u);
  EXPECT_GT(Rep.Aggregate.gauge("serve.heartbeat.s0"), 0.0);
  EXPECT_GT(Rep.Aggregate.gauge("serve.heartbeat.s1"), 0.0);

  fs::remove_all(Dir);
}

TEST(ServeWatchdog, HealthySessionsNeverFire) {
  Manifest M;
  std::string Err;
  ASSERT_TRUE(parseManifest("gen-seed=1\ngen-seed=2\n", "", M, Err)) << Err;

  fs::path Dir = freshDumpDir("scav_watchdog_ok_test");
  ServeOptions Opts;
  Opts.Workers = 2;
  Opts.StallSeconds = 1000; // armed, but far beyond any real runtime
  Opts.DumpDir = Dir.string();
  Opts.Clock = tickingClock();

  ServeReport Rep = runSessions(M, Opts);
  EXPECT_TRUE(Rep.AllOk);
  for (const SessionResult &S : Rep.Sessions) {
    EXPECT_FALSE(S.Stalled);
    EXPECT_EQ(S.DumpPath, "");
  }
  EXPECT_EQ(Rep.Aggregate.counter("serve.stalled"), 0u);
  fs::remove_all(Dir);
}

TEST(ServeWatchdog, ManifestRejectsBadStallAtStep) {
  Manifest M;
  std::string Err;
  EXPECT_FALSE(parseManifest("gen-seed=1 stall-at-step=pony\n", "", M, Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

} // namespace
