//===- tests/parser_robustness_test.cpp - Diagnostic-or-accept guarantee --===//
//
// Regression corpus for the crashes and silent rejections the fuzzing
// subsystem found (DESIGN.md §3.8). Every file under tests/corpus/ is fed
// to the frontend named by its extension (.scm → λ source, .gc → λGC
// program) and must be either accepted (ok_ prefix) or rejected with a
// diagnostic (diag_ prefix) — never crash, never fail silently.
//
//===----------------------------------------------------------------------===//

#include "clos/Clos.h"
#include "gc/Parse.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace scav;

namespace {

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

struct FrontendResult {
  bool Accepted;
  bool Diagnosed;
  std::string Errors;
};

FrontendResult runLambda(const std::string &Text) {
  SymbolTable Syms;
  lambda::LambdaContext LC{Syms};
  DiagEngine Diags;
  const lambda::Expr *E = lambda::parseExpr(LC, Text, Diags);
  return {E != nullptr, Diags.hasErrors(), Diags.str()};
}

FrontendResult runGcProgram(const std::string &Text) {
  gc::GcContext C;
  gc::Machine M(C, gc::LanguageLevel::Generational);
  DiagEngine Diags;
  std::map<std::string, gc::Address> Prelude;
  Prelude["gc"] = M.reserveCode("gc");
  Prelude["gcfull"] = M.reserveCode("gcfull");
  bool Ok = gc::parseGcProgram(M, Text, Diags, Prelude).Ok;
  return {Ok, Diags.hasErrors(), Diags.str()};
}

TEST(ParserRobustness, RegressionCorpus) {
  std::filesystem::path Dir = SCAV_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(Dir));
  unsigned Checked = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    const std::filesystem::path &P = Entry.path();
    std::string Name = P.filename().string();
    std::string Ext = P.extension().string();
    if (Ext != ".scm" && Ext != ".gc")
      continue;
    std::string Text = slurp(P);
    FrontendResult R =
        Ext == ".scm" ? runLambda(Text) : runGcProgram(Text);
    if (Name.rfind("ok_", 0) == 0) {
      EXPECT_TRUE(R.Accepted) << Name << ": " << R.Errors;
    } else {
      ASSERT_EQ(Name.rfind("diag_", 0), 0u)
          << Name << ": corpus files must start with ok_ or diag_";
      EXPECT_FALSE(R.Accepted) << Name;
      EXPECT_TRUE(R.Diagnosed) << Name << ": rejected without a diagnostic";
    }
    ++Checked;
  }
  EXPECT_GE(Checked, 8u) << "corpus directory unexpectedly thin";
}

//===----------------------------------------------------------------------===//
// Inline cases for the specific crash fixes
//===----------------------------------------------------------------------===//

// `-x` is a valid identifier in binders, so it must parse as a variable in
// expression position too (it used to reach std::stoll and abort).
TEST(ParserRobustness, DashAtomIsAVariable) {
  FrontendResult R = runLambda("(lam (-x Int) -x)");
  EXPECT_TRUE(R.Accepted) << R.Errors;
  // Unbound use is a type error, diagnosed — not a crash.
  SymbolTable Syms;
  lambda::LambdaContext LC{Syms};
  DiagEngine Diags;
  const lambda::Expr *E = lambda::parseExpr(LC, "(+ -x 1)", Diags);
  ASSERT_NE(E, nullptr) << Diags.str();
  DiagEngine TypeDiags;
  EXPECT_EQ(lambda::typeCheck(LC, E, TypeDiags), nullptr);
  EXPECT_TRUE(TypeDiags.hasErrors());
}

// Only atoms shaped like integers take the literal path, and out-of-range
// ones get a diagnostic instead of an uncaught std::out_of_range.
TEST(ParserRobustness, IntegerLiteralRanges) {
  EXPECT_TRUE(runLambda("(+ -9223372036854775808 9223372036854775807)")
                  .Accepted);
  FrontendResult Over = runLambda("(+ 9223372036854775808 1)");
  EXPECT_FALSE(Over.Accepted);
  EXPECT_TRUE(Over.Diagnosed);
  FrontendResult Garbage = runLambda("(+ 12abc 1)");
  EXPECT_FALSE(Garbage.Accepted);
  EXPECT_TRUE(Garbage.Diagnosed);

  gc::GcContext C;
  DiagEngine Diags;
  EXPECT_EQ(gc::parseGcTerm(C, "(halt 99999999999999999999)", Diags),
            nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

// Existential type binders must be identifiers; a list there used to be
// rejected with no diagnostic at all (found by the grammar fuzzer).
TEST(ParserRobustness, ExistentialBinderDiagnosed) {
  gc::GcContext C;
  for (const char *Src : {"(Er () () ())", "(Ea (x) (ro) int)",
                          "(Et (q) O int)"}) {
    DiagEngine Diags;
    EXPECT_EQ(gc::parseGcType(C, Src, Diags), nullptr) << Src;
    EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

// Deeply nested input must hit the recursion cap, not the process stack.
TEST(ParserRobustness, DeepNestingDiagnosed) {
  std::string Deep(5000, '(');
  Deep += "x";
  Deep.append(5000, ')');
  FrontendResult R = runLambda(Deep);
  EXPECT_FALSE(R.Accepted);
  EXPECT_TRUE(R.Diagnosed);

  gc::GcContext C;
  DiagEngine Diags;
  EXPECT_EQ(gc::parseGcTerm(C, Deep, Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
