//===- tests/gc_async_check_test.cpp - Pipelined certification ------------===//
//
// The async checker (gc/AsyncCheck.h) must be *observationally identical*
// to the synchronous incremental checker: same verdicts, same diagnostics
// (byte-identical up to the spelling of checker-minted bound type
// variables — the normalization memo is per-context, so the mirror can
// alpha-rename an M-unfold binder), same step attribution — across all
// three language levels and against every fault-injection mutation kind
// from the fuzz taxonomy. Plus the lag safety net, the Vm-mode fallback,
// and the parallel native copy (work-stealing Cheney) against its serial
// oracle.
//
//===----------------------------------------------------------------------===//

#include "gc/AsyncCheck.h"
#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/NativeCollector.h"
#include "harness/FuzzMutate.h"
#include "harness/HeapForge.h"
#include "harness/Pipeline.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

/// A machine mid-collection: the same rig the incremental-checker tests
/// use — forged list heap, certified collector, one collect-and-halt term.
struct CollectRig {
  GcContext C;
  std::unique_ptr<Machine> M;

  CollectRig(LanguageLevel Level, size_t N) {
    M = std::make_unique<Machine>(C, Level);
    Address GcAddr{};
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    Region From = M->createRegion("from", 0);
    Region Old = Level == LanguageLevel::Generational
                     ? M->createRegion("old", 0)
                     : From;
    ForgedHeap H = forgeList(*M, From, Old, N);
    Address Fin = installFinisher(*M, H.Tag);
    M->start(collectOnceTerm(*M, GcAddr, H, From, Old, Fin));
  }
};

constexpr LanguageLevel AllLevels[] = {LanguageLevel::Base,
                                       LanguageLevel::Forward,
                                       LanguageLevel::Generational};

bool restrictFor(LanguageLevel L) { return L != LanguageLevel::Base; }

//===----------------------------------------------------------------------===//
// Sync/async differential on clean runs
//===----------------------------------------------------------------------===//

RunResult runPipeline(LanguageLevel Level, bool Async, Pipeline *&Out,
                      std::unique_ptr<Pipeline> &Holder) {
  PipelineOptions Opts;
  Opts.Level = Level;
  Opts.Machine.DefaultRegionCapacity = 12; // force collections
  Opts.IncrementalCheck = true;
  Opts.AsyncCheck = Async;
  Holder = std::make_unique<Pipeline>(Opts);
  Out = Holder.get();
  DiagEngine Diags;
  EXPECT_TRUE(Out->compile(
      "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 24)", Diags))
      << Diags.str();
  return Out->runMachine(3'000'000, /*CheckEveryN=*/1);
}

TEST(AsyncCheck, PipelineMatchesSyncAllLevels) {
  for (LanguageLevel Level : AllLevels) {
    SCOPED_TRACE(languageLevelName(Level));
    Pipeline *Sync = nullptr, *Async = nullptr;
    std::unique_ptr<Pipeline> SH, AH;
    RunResult RS = runPipeline(Level, false, Sync, SH);
    RunResult RA = runPipeline(Level, true, Async, AH);
    EXPECT_EQ(RS.Ok, RA.Ok);
    EXPECT_EQ(RS.Value, RA.Value);
    EXPECT_EQ(RS.Steps, RA.Steps);
    EXPECT_EQ(RS.Error, RA.Error);
    ASSERT_TRUE(RA.Ok) << RA.Error;
    EXPECT_EQ(RA.Value, 300);

    const AsyncCheckStats &S = Async->asyncCheckStats();
    EXPECT_GT(S.UnitsCaptured, 0u);
    // Every captured unit is either checked or dropped by a lag resync.
    EXPECT_EQ(S.UnitsChecked, S.UnitsCaptured - S.LagResyncs);
    EXPECT_EQ(Sync->asyncCheckStats().UnitsCaptured, 0u);
    // Same check cadence ⇒ same engine work (unless a lag resync dropped
    // a unit, which a loaded CI box can legitimately cause).
    if (S.LagResyncs == 0)
      EXPECT_EQ(Async->checkerStats().Checks, Sync->checkerStats().Checks);
  }
}

TEST(AsyncCheck, VmEvalModeFallsBackToSynchronous) {
  PipelineOptions Opts;
  Opts.Level = LanguageLevel::Forward;
  Opts.Machine.DefaultRegionCapacity = 12;
  Opts.Machine.Eval = EvalMode::Vm;
  Opts.AsyncCheck = true;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compile(
      "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 24)", Diags))
      << Diags.str();
  RunResult R = Pipe.runMachine(3'000'000, /*CheckEveryN=*/1);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 300);
  // The Vm backend keeps no raw term state to capture: no session ran.
  EXPECT_EQ(Pipe.asyncCheckStats().UnitsCaptured, 0u);
}

//===----------------------------------------------------------------------===//
// Fault injection through the checker thread
//===----------------------------------------------------------------------===//

struct MutationOutcome {
  bool Applied = false;
  std::string Desc;  ///< What was injected (must agree between legs).
  std::string Error; ///< The checker diagnostic (must agree alpha-blind).
  uint64_t Steps = 0;
};

/// Renames every minted-symbol token (`base$[tag]N`, possibly chained as in
/// `r3$181$362`) to its first-appearance index, keeping the base name. Two
/// alpha-equivalent diagnostics canonicalize to the same string, while any
/// structural difference — different base names, different sharing pattern
/// among minted variables — still shows.
std::string canonMinted(const std::string &S) {
  std::string Out;
  std::map<std::string, int> Ids;
  auto IsIdStart = [](char C) {
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
  };
  auto IsIdChar = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  size_t I = 0, N = S.size();
  while (I != N) {
    if (!IsIdStart(S[I])) {
      Out += S[I++];
      continue;
    }
    size_t Begin = I;
    while (I != N && IsIdChar(S[I]))
      ++I;
    size_t BaseEnd = I;
    while (I != N && S[I] == '$') { // consume a `$[a-z]*[0-9]+` suffix chain
      size_t J = I + 1;
      while (J != N && std::islower(static_cast<unsigned char>(S[J])))
        ++J;
      size_t D = J;
      while (D != N && std::isdigit(static_cast<unsigned char>(S[D])))
        ++D;
      if (D == J)
        break; // '$' not followed by digits: not a minted suffix
      I = D;
    }
    if (I == BaseEnd) {
      Out.append(S, Begin, BaseEnd - Begin);
      continue;
    }
    auto [It, Inserted] =
        Ids.emplace(S.substr(Begin, I - Begin), static_cast<int>(Ids.size()));
    (void)Inserted;
    Out.append(S, Begin, BaseEnd - Begin);
    Out += '$';
    Out += std::to_string(It->second);
  }
  return Out;
}

/// Sync leg: per-step incremental checks, then one mutation, then the
/// check that must reject it.
MutationOutcome syncLeg(LanguageLevel Level, StateMutationKind Kind,
                        uint64_t Seed) {
  MutationOutcome Out;
  CollectRig Rig(Level, 24);
  bool Restrict = restrictFor(Level);
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = Restrict;
  IncrementalStateCheck Inc(*Rig.M, IOpts);
  EXPECT_TRUE(Inc.check().Ok);
  for (int I = 0; I != 5; ++I) {
    Rig.M->step();
    EXPECT_TRUE(Inc.check().Ok);
  }
  Rng Rand(Seed);
  std::optional<AppliedMutation> Mut =
      applyStateMutation(*Rig.M, Kind, Rand, Restrict);
  if (!Mut)
    return Out;
  Out.Applied = true;
  Out.Desc = Mut->Description;
  StateCheckResult R = Inc.check();
  EXPECT_FALSE(R.Ok) << "sync checker tolerated " << Mut->Description;
  Out.Error = R.Error;
  Out.Steps = Rig.M->stats().Steps;
  return Out;
}

/// Async leg: identical schedule, but every check is a capture consumed by
/// the checker thread; the verdict comes back through finish().
MutationOutcome asyncLeg(LanguageLevel Level, StateMutationKind Kind,
                         uint64_t Seed) {
  MutationOutcome Out;
  CollectRig Rig(Level, 24);
  bool Restrict = restrictFor(Level);
  AsyncCheckSession::Options SOpts;
  SOpts.Check.RestrictToReachable = Restrict;
  AsyncCheckSession Session(*Rig.M, SOpts);
  Session.capture();
  for (int I = 0; I != 5; ++I) {
    Rig.M->step();
    Session.capture();
  }
  Rng Rand(Seed);
  std::optional<AppliedMutation> Mut =
      applyStateMutation(*Rig.M, Kind, Rand, Restrict);
  if (!Mut) {
    AsyncVerdict V = Session.finish();
    EXPECT_TRUE(V.Ok) << V.Error;
    return Out;
  }
  Out.Applied = true;
  Out.Desc = Mut->Description;
  Session.capture();
  AsyncVerdict V = Session.finish();
  EXPECT_FALSE(V.Ok) << "async checker tolerated " << Mut->Description;
  Out.Error = V.Error;
  Out.Steps = V.Steps;
  return Out;
}

TEST(AsyncCheck, RejectsEveryMutationKindIdenticallyToSync) {
  // Every kind must fire on at least one level, and wherever it fires the
  // async verdict must match the synchronous one — same diagnostic (up to
  // minted-binder spelling), same step attribution.
  std::map<unsigned, bool> KindFired;
  for (LanguageLevel Level : AllLevels) {
    for (unsigned K = 0; K != NumStateMutationKinds; ++K) {
      StateMutationKind Kind = static_cast<StateMutationKind>(K);
      SCOPED_TRACE(std::string(languageLevelName(Level)) + " / " +
                   stateMutationName(Kind));
      // Victim eligibility depends only on the (deterministic) machine
      // state, so the first applicable seed is the same for both legs.
      for (uint64_t Seed = 1; Seed != 16; ++Seed) {
        MutationOutcome S = syncLeg(Level, Kind, Seed);
        if (!S.Applied)
          continue;
        MutationOutcome A = asyncLeg(Level, Kind, Seed);
        ASSERT_TRUE(A.Applied) << "legs disagree on victim eligibility";
        EXPECT_EQ(S.Desc, A.Desc) << "legs injected different corruptions";
        EXPECT_EQ(canonMinted(S.Error), canonMinted(A.Error))
            << "sync:  " << S.Error << "\nasync: " << A.Error;
        EXPECT_EQ(S.Steps, A.Steps);
        KindFired[K] = true;
        break;
      }
    }
  }
  for (unsigned K = 0; K != NumStateMutationKinds; ++K)
    EXPECT_TRUE(KindFired[K])
        << stateMutationName(static_cast<StateMutationKind>(K))
        << " never applied on any level";
}

//===----------------------------------------------------------------------===//
// Lag safety net
//===----------------------------------------------------------------------===//

TEST(AsyncCheck, LagNetFallsBackSynchronouslyAndResyncs) {
  // A one-slot queue with a ~zero push budget while the checker chews on a
  // large attach: captures must time out, certify synchronously on the
  // mutator (LagResyncs), and ship a resync snapshot on the next capture.
  CollectRig Rig(LanguageLevel::Forward, 2000);
  AsyncCheckSession::Options SOpts;
  SOpts.Check.RestrictToReachable = true;
  SOpts.QueueCapacity = 1;
  SOpts.PushTimeoutMs = 1;
  AsyncCheckSession Session(*Rig.M, SOpts);
  Session.capture();
  for (int I = 0; I != 200 && Rig.M->status() == Machine::Status::Running;
       ++I) {
    Rig.M->step();
    if (!Session.capture())
      break;
    if (Session.stats().LagResyncs >= 1 && Session.stats().Snapshots >= 1)
      break;
  }
  AsyncVerdict V = Session.finish();
  EXPECT_TRUE(V.Ok) << V.Error;
  const AsyncCheckStats &S = Session.stats();
  EXPECT_GE(S.LagResyncs, 1u) << "checker never lagged a 1-slot queue";
  EXPECT_GE(S.Snapshots, 1u) << "lag resync did not force a snapshot";
  EXPECT_EQ(S.UnitsChecked, S.UnitsCaptured - S.LagResyncs);
}

//===----------------------------------------------------------------------===//
// Parallel native copy vs the serial oracle
//===----------------------------------------------------------------------===//

/// The differential-collect canonicalizer: order-independent DFS signature
/// of the reachable graph, so serial and parallel layouts compare equal
/// iff the copied graphs are isomorphic (sharing included).
struct Canonicalizer {
  Machine &M;
  std::map<Address, int> Index;
  std::string Sig;

  std::string walk(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
      return "i" + std::to_string(V->intValue());
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R == M.context().cd())
        return "cd" + std::to_string(A.Offset);
      auto It = Index.find(A);
      if (It != Index.end())
        return "#" + std::to_string(It->second);
      int K = static_cast<int>(Index.size());
      Index[A] = K;
      const Value *Cell = M.memory().get(A);
      if (!Cell)
        return "#dangling";
      Sig += "cell" + std::to_string(K) + "=" + walk(Cell) + ";";
      return "#" + std::to_string(K);
    }
    case ValueKind::Pair:
      return "(" + walk(V->first()) + "," + walk(V->second()) + ")";
    case ValueKind::Inl:
      return "L" + walk(V->payload());
    case ValueKind::Inr:
      return "R" + walk(V->payload());
    case ValueKind::PackTag:
      return "E" + walk(V->payload());
    case ValueKind::PackTyVar:
    case ValueKind::PackRegion:
      return "P" + walk(V->payload());
    case ValueKind::TransApp:
      return "T" + walk(V->payload());
    case ValueKind::Var:
      return "?var";
    case ValueKind::Code:
      return "code";
    }
    return "?";
  }

  std::string canonical(const Value *Root) {
    std::string RootSig = walk(Root);
    return Sig + "root=" + RootSig;
  }
};

std::string cheneySignature(uint64_t Seed, unsigned Threads,
                            NativeGcStats &Stats) {
  GcContext C;
  Machine M(C, LanguageLevel::Forward);
  Region R = M.createRegion("from", 0);
  Rng Rand(Seed);
  ForgedHeap H = forgeRandom(M, R, R, Rand, 40);
  auto [Root, To] = nativeCollect(M, H.Root, R, /*PreserveSharing=*/true,
                                  Stats, CopyOrder::BreadthFirst, Threads);
  (void)To;
  Canonicalizer Canon{M, {}, {}};
  return Canon.canonical(Root);
}

TEST(ParallelCollect, CheneyIsomorphicAcrossThreadCounts) {
  for (uint64_t Seed = 1; Seed != 7; ++Seed) {
    NativeGcStats Serial, Par;
    std::string A = cheneySignature(Seed, 1, Serial);
    std::string B = cheneySignature(Seed, 4, Par);
    EXPECT_EQ(A, B) << "seed " << Seed;
    EXPECT_EQ(Serial.Workers, 0u); // serial path, no worker machinery
    EXPECT_EQ(Par.Workers, 4u);
    EXPECT_EQ(Par.ObjectsCopied, Serial.ObjectsCopied) << "seed " << Seed;
    uint64_t PerWorker = 0;
    for (uint64_t N : Par.WorkerObjects)
      PerWorker += N;
    EXPECT_EQ(PerWorker, Par.ObjectsCopied);
  }
}

TEST(ParallelCollect, DefaultThreadCountResolves) {
  // Threads == 0 resolves through the process default (the --threads /
  // SCAV_THREADS knob).
  setNativeGcThreads(4);
  EXPECT_EQ(nativeGcThreads(), 4u);
  NativeGcStats Par, Serial;
  std::string A = cheneySignature(99, 0, Par); // 0 = use the default
  setNativeGcThreads(1);
  std::string B = cheneySignature(99, 0, Serial);
  EXPECT_EQ(A, B);
  EXPECT_EQ(Par.Workers, 4u);
  EXPECT_EQ(Serial.Workers, 0u);
  setNativeGcThreads(0); // clamps back to 1
  EXPECT_EQ(nativeGcThreads(), 1u);
}

} // namespace
