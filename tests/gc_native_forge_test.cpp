//===- tests/gc_native_forge_test.cpp - Heap forge + native collector -----===//
//
// Validates the benchmark substrate: forged heaps are well-formed at every
// language level, the certified collectors collect them, and the native
// (meta-level) collector agrees with the certified ones on the shape of
// the surviving heap.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/NativeCollector.h"
#include "gc/StateCheck.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

struct LevelSetup {
  std::unique_ptr<GcContext> C;
  std::unique_ptr<Machine> M;
  Address GcAddr{};
  Region R, Old;

  explicit LevelSetup(LanguageLevel Level) {
    C = std::make_unique<GcContext>();
    M = std::make_unique<Machine>(*C, Level);
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    R = M->createRegion("from", 0);
    if (Level == LanguageLevel::Generational)
      Old = M->createRegion("old", 0);
    else
      Old = R;
  }
};

int64_t runCollection(Machine &M, const Term *E, uint64_t MaxSteps = 5000000) {
  M.start(E);
  M.run(MaxSteps);
  EXPECT_EQ(M.status(), Machine::Status::Halted)
      << (M.status() == Machine::Status::Stuck ? M.stuckReason()
                                               : "did not halt");
  return M.status() == Machine::Status::Halted ? M.haltValue()->intValue()
                                               : -1;
}

class ForgeLevels : public ::testing::TestWithParam<LanguageLevel> {};

TEST_P(ForgeLevels, ForgedListIsWellFormed) {
  LevelSetup S(GetParam());
  ForgedHeap H = forgeList(*S.M, S.R, S.Old, 10);
  EXPECT_EQ(H.Cells, 20u);
  // The forged heap + a term using the root must pass the state checker.
  Address Fin = installFinisher(*S.M, H.Tag);
  const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
  S.M->start(E);
  StateCheckResult R = checkState(*S.M);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST_P(ForgeLevels, CertifiedCollectionOfForgedList) {
  LevelSetup S(GetParam());
  ForgedHeap H = forgeList(*S.M, S.R, S.Old, 16);
  Address Fin = installFinisher(*S.M, H.Tag);
  const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
  EXPECT_EQ(runCollection(*S.M, E), 0);
  // All 32 cells are live: the surviving space holds exactly the list.
  EXPECT_EQ(S.M->memory().liveDataCells(), 32u);
  EXPECT_GE(S.M->stats().RegionsReclaimed, 1u);
}

TEST_P(ForgeLevels, ForgedTreeNoSharing) {
  LevelSetup S(GetParam());
  ForgedHeap H = forgeTree(*S.M, S.R, S.Old, 3, /*Share=*/false);
  EXPECT_EQ(H.Cells, 15u);
  Address Fin = installFinisher(*S.M, H.Tag);
  const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
  EXPECT_EQ(runCollection(*S.M, E), 0);
  EXPECT_EQ(S.M->memory().liveDataCells(), 15u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, ForgeLevels,
                         ::testing::Values(LanguageLevel::Base,
                                           LanguageLevel::Forward,
                                           LanguageLevel::Generational),
                         [](const auto &Info) {
                           std::string L = languageLevelName(Info.param) + 7;
                           for (char &Ch : L)
                             if (Ch == '-')
                               Ch = '_';
                           return L;
                         });

TEST(SharingBehavior, BasicLosesForwardKeeps) {
  // The E1/E2 headline on a maximally-shared DAG of depth 6:
  // 7 cells describe 127 logical nodes.
  for (LanguageLevel Level : {LanguageLevel::Base, LanguageLevel::Forward}) {
    LevelSetup S(Level);
    ForgedHeap H = forgeTree(*S.M, S.R, S.Old, 6, /*Share=*/true);
    ASSERT_EQ(H.Cells, 7u);
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
    ASSERT_EQ(runCollection(*S.M, E), 0) << languageLevelName(Level);
    if (Level == LanguageLevel::Base)
      EXPECT_EQ(S.M->memory().liveDataCells(), 127u) << "DAG should unfold";
    else
      EXPECT_EQ(S.M->memory().liveDataCells(), 7u) << "DAG should survive";
  }
}

TEST(NativeCollector, AgreesWithCertifiedOnList) {
  // Native (sharing-preserving) collection of the same forged list must
  // keep exactly the same number of cells as the certified collectors.
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 16);
  NativeGcStats Stats;
  auto [NewRoot, To] = nativeCollect(M, H.Root, R, /*PreserveSharing=*/true,
                                     Stats);
  (void)NewRoot;
  EXPECT_EQ(Stats.ObjectsCopied, 32u);
  EXPECT_EQ(Stats.ForwardingHits, 0u);
  EXPECT_EQ(M.memory().liveDataCells(), 32u);
  EXPECT_FALSE(M.memory().hasRegion(R.sym()));
}

TEST(NativeCollector, SharingModes) {
  for (bool Preserve : {false, true}) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    Region R = M.createRegion("from", 0);
    ForgedHeap H = forgeTree(M, R, R, 6, /*Share=*/true);
    ASSERT_EQ(H.Cells, 7u);
    NativeGcStats Stats;
    nativeCollect(M, H.Root, R, Preserve, Stats);
    if (Preserve) {
      EXPECT_EQ(M.memory().liveDataCells(), 7u);
      EXPECT_GT(Stats.ForwardingHits, 0u);
    } else {
      EXPECT_EQ(M.memory().liveDataCells(), 127u);
    }
  }
}

TEST(NativeCollector, CheneyAgreesWithDepthFirst) {
  // §10's breadth-first extension: same live set, sharing preserved, and
  // the result state still checks.
  for (auto Forge : {0, 1}) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    Region R = M.createRegion("from", 0);
    ForgedHeap H = Forge == 0 ? forgeList(M, R, R, 12)
                              : forgeTree(M, R, R, 5, /*Share=*/true);
    NativeGcStats Stats;
    auto [Root, To] = nativeCollect(M, H.Root, R, true, Stats,
                                    CopyOrder::BreadthFirst);
    (void)Root;
    (void)To;
    EXPECT_EQ(M.memory().liveDataCells(), H.Cells);
    M.start(C.termHalt(C.valInt(0)));
    StateCheckResult Res = checkState(M);
    EXPECT_TRUE(Res.Ok) << Res.Error;
  }
}

TEST(NativeCollector, CheneyLaysListsOutContiguously) {
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 10);
  NativeGcStats Stats;
  auto [Root, To] = nativeCollect(M, H.Root, R, true, Stats,
                                  CopyOrder::BreadthFirst);
  (void)Root;
  // The root's cell is slot 0; every parent precedes its children... at
  // minimum, the to-region is fully populated with no reserved holes.
  const RegionData *RD = M.memory().region(To.sym());
  ASSERT_NE(RD, nullptr);
  M.memory().decodeRegion(*RD);
  for (const Value *V : RD->Cells)
    EXPECT_NE(V, nullptr);
}

TEST(NativeCollector, GarbageIsDropped) {
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 8);
  // Unreachable junk.
  for (int I = 0; I != 50; ++I)
    M.allocate(R, C.valPair(C.valInt(I), C.valInt(I)));
  NativeGcStats Stats;
  nativeCollect(M, H.Root, R, true, Stats);
  EXPECT_EQ(M.memory().liveDataCells(), 16u);
}

TEST(NativeCollector, ResultStateStaysWellFormed) {
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 6);
  NativeGcStats Stats;
  auto [NewRoot, To] = nativeCollect(M, H.Root, R, true, Stats);
  // The relocated heap + a term using the new root must still check.
  Address Fin = installFinisher(M, H.Tag);
  (void)Fin;
  M.start(C.termHalt(C.valInt(0)));
  StateCheckResult Res = checkState(M);
  EXPECT_TRUE(Res.Ok) << Res.Error;
  // And the new root must infer at the expected M view.
  DiagEngine Diags;
  TypeChecker Ck(C, LanguageLevel::Base, Diags);
  Ck.setSkipCodeBodies(true);
  CheckEnv Env;
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = C.cd().sym();
  Env.Delta = M.psi().domain();
  EXPECT_TRUE(Ck.checkValue(NewRoot, C.typeM(To, H.Tag), Env))
      << Diags.str();
}

} // namespace
