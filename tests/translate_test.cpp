//===- tests/translate_test.cpp - T3: translation preserves typing --------===//
//
// The Fig 3 translation's type-preservation property, checked as: for a
// corpus of random well-typed source programs, the fully lowered λGC code
// (mutator functions + collector, everything in cd) passes certification
// at every language level. This is the paper's separate-compilation story:
// the mutator is compiled against nothing but the M contract, yet links
// type-correctly with the independently-written collector library.
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::harness;

namespace {

class TranslateLevels
    : public ::testing::TestWithParam<std::tuple<int, gc::LanguageLevel>> {};

TEST_P(TranslateLevels, RandomProgramsCertifyAfterTranslation) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0x7A57E + static_cast<uint64_t>(SeedIdx) * 104729;

  PipelineOptions Opts;
  Opts.Level = Level;
  Pipeline Pipe(Opts);
  Rng R(Seed);
  GenOptions GOpts;
  GOpts.MaxDepth = 4;
  const lambda::Expr *Prog = genProgram(Pipe.lambdaContext(), R, GOpts);

  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compileExpr(Prog, Diags))
      << "seed " << Seed << ":\n"
      << Diags.str();
  EXPECT_TRUE(Pipe.certify(Diags))
      << "seed " << Seed << " at " << gc::languageLevelName(Level) << ":\n"
      << Diags.str() << "\nprogram:\n"
      << lambda::printExpr(Pipe.lambdaContext(), Prog);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TranslateLevels,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(gc::LanguageLevel::Base,
                                         gc::LanguageLevel::Forward,
                                         gc::LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, gc::LanguageLevel>>
           &Info) {
      std::string L = gc::languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

TEST(Translate, NoCollectorOmitsIfgc) {
  PipelineOptions Opts;
  Opts.InstallCollector = false;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compile(
      "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 3)", Diags))
      << Diags.str();
  // Still certifies (the mutator alone is well-typed λGC).
  EXPECT_TRUE(Pipe.certify(Diags)) << Diags.str();
  RunResult R = Pipe.runMachine();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 6);
}

TEST(Translate, VariableNamesSurviveLowering) {
  // Debuggability: the λCLOS binder names appear in the λGC term.
  PipelineOptions Opts;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(
      Pipe.compile("(let somename (pair 1 2) (fst somename))", Diags))
      << Diags.str();
  std::string Main = gc::printTerm(Pipe.gcContext(), Pipe.mainTerm());
  EXPECT_NE(Main.find("somename"), std::string::npos) << Main;
}

} // namespace
