//===- tests/gc_machine_negative_test.cpp - Stuck-state detection ---------===//
//
// The contrapositive of progress: states the checker REJECTS are allowed
// to get stuck, and the machine must report them as stuck (never crash,
// never mis-execute). Each case pairs an ill-formed program with the
// static rejection and the dynamic stuck reason.
//
//===----------------------------------------------------------------------===//

#include "gc/Builder.h"
#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/StateCheck.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

struct NegativeTest : ::testing::Test {
  GcContext C;

  /// Runs E and expects the machine to end Stuck with a reason containing
  /// \p Needle; also expects the state checker to reject some state on
  /// the way (ill-formed programs must not slip through both nets).
  void expectStuck(LanguageLevel Level, const Term *E,
                   std::string_view Needle) {
    Machine M(C, Level);
    M.start(E);
    bool CheckerRejected = !checkState(M).Ok;
    for (int I = 0; I != 1000 && M.status() == Machine::Status::Running;
         ++I) {
      if (!checkState(M).Ok)
        CheckerRejected = true;
      M.step();
    }
    ASSERT_EQ(M.status(), Machine::Status::Stuck)
        << "expected a stuck state for: " << printTerm(C, E);
    EXPECT_NE(M.stuckReason().find(Needle), std::string::npos)
        << "reason was: " << M.stuckReason();
    EXPECT_TRUE(CheckerRejected)
        << "the state checker accepted an ill-formed program";
  }
};

TEST_F(NegativeTest, ProjectionFromInt) {
  const Term *E = C.termLet(C.fresh("x"), C.opProj(1, C.valInt(3)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "projection from non-pair");
}

TEST_F(NegativeTest, GetFromNonAddress) {
  const Term *E = C.termLet(C.fresh("x"), C.opGet(C.valInt(3)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "get of non-address");
}

TEST_F(NegativeTest, ApplicationOfInt) {
  const Term *E = C.termApp(C.valInt(7), {}, {}, {});
  expectStuck(LanguageLevel::Base, E, "application of non-address");
}

TEST_F(NegativeTest, UnboundVariable) {
  const Term *E = C.termHalt(C.valVar(C.fresh("ghost")));
  Machine M(C, LanguageLevel::Base);
  M.start(E);
  EXPECT_FALSE(checkState(M).Ok);
  // halt of a variable: the machine halts with a non-int "value"; the
  // harness (Pipeline::runMachine) reports it. Here the state checker is
  // the net.
}

TEST_F(NegativeTest, PrimOnPair) {
  const Term *E = C.termLet(
      C.fresh("x"),
      C.opPrim(PrimOp::Add, C.valPair(C.valInt(1), C.valInt(2)),
               C.valInt(1)),
      C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "primitive on non-integers");
}

TEST_F(NegativeTest, TypecaseOnStuckApplication) {
  Symbol Te = C.fresh("te");
  (void)Te;
  // typecase (f Int) with f free: both statically rejected and stuck.
  const Tag *Stuck = C.tagApp(C.tagVar(C.fresh("f")), C.tagInt());
  const Term *E = C.termTypecase(
      Stuck, C.termHalt(C.valInt(1)), C.termHalt(C.valInt(2)), C.fresh("t1"),
      C.fresh("t2"), C.termHalt(C.valInt(3)), C.fresh("te"),
      C.termHalt(C.valInt(4)));
  expectStuck(LanguageLevel::Base, E, "typecase on non-constructor tag");
}

TEST_F(NegativeTest, StripOfUntagged) {
  const Term *E = C.termLet(C.fresh("x"), C.opStrip(C.valInt(1)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Forward, E, "strip of untagged value");
}

TEST_F(NegativeTest, IfLeftOfInt) {
  const Term *E = C.termIfLeft(C.fresh("x"), C.valInt(1),
                               C.termHalt(C.valInt(0)),
                               C.termHalt(C.valInt(1)));
  expectStuck(LanguageLevel::Forward, E, "ifleft of untagged value");
}

TEST_F(NegativeTest, SetThroughDanglingAddress) {
  // Construct an address into a region the machine never created.
  Machine M(C, LanguageLevel::Forward);
  Address Bogus{Region::name(C.fresh("ghostregion")), 0};
  const Term *E = C.termSet(C.valAddr(Bogus), C.valInl(C.valInt(1)),
                            C.termHalt(C.valInt(0)));
  M.start(E);
  EXPECT_FALSE(checkState(M).Ok);
  M.step();
  EXPECT_EQ(M.status(), Machine::Status::Stuck);
  EXPECT_NE(M.stuckReason().find("dangling"), std::string::npos);
}

TEST_F(NegativeTest, OpenTagOfPair) {
  const Term *E =
      C.termOpenTag(C.valPair(C.valInt(1), C.valInt(2)), C.fresh("t"),
                    C.fresh("x"), C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "open-as-tag of non-package");
}

TEST_F(NegativeTest, IfregOnUnresolvedVariable) {
  Region Rv = Region::var(C.fresh("r"));
  const Term *E = C.termIfReg(Rv, Rv, C.termHalt(C.valInt(0)),
                              C.termHalt(C.valInt(1)));
  expectStuck(LanguageLevel::Generational, E, "unresolved region variable");
}

//===----------------------------------------------------------------------===//
// Post-cache corruption: the incremental checker must reject external
// mutations made AFTER it cached a judgment for the mutated cell — including
// mutations landing after a widen rewrote Ψ and after an only dropped
// regions — and its verdict must agree with the full checker's.
//===----------------------------------------------------------------------===//

struct CorruptionTest : ::testing::Test {
  GcContext C;
  std::unique_ptr<Machine> M;
  Address GcAddr{};
  Region From{}, Old{};

  void build(LanguageLevel Level, size_t N) {
    M = std::make_unique<Machine>(C, Level);
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    From = M->createRegion("from", 0);
    Old = Level == LanguageLevel::Generational ? M->createRegion("old", 0)
                                               : From;
    ForgedHeap H = forgeList(*M, From, Old, N);
    Address Fin = installFinisher(*M, H.Tag);
    M->start(collectOnceTerm(*M, GcAddr, H, From, Old, Fin));
  }

  /// A value that is ill-typed against every Ψ entry: an address into a
  /// region that does not exist.
  const Value *poison() {
    return C.valAddr(Address{Region::name(C.fresh("ghostregion")), 0});
  }

  /// First (region-scan order) non-cd cell that is reachable from the
  /// current term — a cell Def 7.1 does NOT allow either checker to skip.
  std::optional<Address> reachableDataCell() {
    AddressSet Reach = reachableCells(*M);
    M->memory().decodeAll();
    Symbol Cd = C.cd().sym();
    for (const auto &[S, RD] : M->memory().Regions) {
      if (S == Cd)
        continue;
      for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off) {
        Address A{Region::name(S), Off};
        if (RD.Cells[Off] && Reach.count(A))
          return A;
      }
    }
    return std::nullopt;
  }

  std::optional<Address> anyDataCell() {
    M->memory().decodeAll();
    Symbol Cd = C.cd().sym();
    for (const auto &[S, RD] : M->memory().Regions) {
      if (S == Cd)
        continue;
      for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off)
        if (RD.Cells[Off])
          return Address{Region::name(S), Off};
    }
    return std::nullopt;
  }

  StateCheckResult fullCheck(bool Restrict) {
    StateCheckOptions Opts;
    Opts.CheckCodeRegion = false;
    Opts.RestrictToReachable = Restrict;
    return checkState(*M, Opts);
  }

  /// Steps with a per-step incremental check (asserting agreement with the
  /// full checker throughout) until \p Done or the machine stops.
  template <typename Pred>
  void stepChecked(IncrementalStateCheck &Inc, bool Restrict, Pred Done) {
    for (int I = 0; I != 100'000; ++I) {
      if (M->status() != Machine::Status::Running || Done())
        return;
      M->step();
      StateCheckResult RI = Inc.check();
      StateCheckResult RF = fullCheck(Restrict);
      ASSERT_EQ(RI.Ok, RF.Ok)
          << "incremental vs full verdict diverges at step " << I << ":\n"
          << RI.Error << "\nvs\n"
          << RF.Error;
      ASSERT_TRUE(RI.Ok) << RI.Error;
    }
    FAIL() << "machine did not meet the stepping goal";
  }
};

TEST_F(CorruptionTest, RejectsCellCorruptionAfterCaching) {
  build(LanguageLevel::Base, 16);
  IncrementalStateCheck Inc(*M);
  ASSERT_TRUE(Inc.check().Ok);
  // Warm the caches across some real steps, then corrupt a cell whose
  // judgment is cached.
  int Steps = 0;
  stepChecked(Inc, /*Restrict=*/false, [&] { return ++Steps > 25; });
  std::optional<Address> A = anyDataCell();
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(M->memory().update(*A, poison()));
  StateCheckResult RI = Inc.check();
  StateCheckResult RF = fullCheck(false);
  EXPECT_FALSE(RI.Ok) << "incremental checker accepted a corrupted cell";
  EXPECT_FALSE(RF.Ok);
}

TEST_F(CorruptionTest, RejectsPsiCorruptionAfterCaching) {
  build(LanguageLevel::Base, 16);
  IncrementalStateCheck Inc(*M);
  ASSERT_TRUE(Inc.check().Ok);
  int Steps = 0;
  stepChecked(Inc, false, [&] { return ++Steps > 25; });
  // Retype a non-integer cell as int: Ψ surgery behind the machine's back.
  M->memory().decodeAll();
  std::optional<Address> Victim;
  for (const auto &[S, RD] : M->memory().Regions) {
    if (S == C.cd().sym())
      continue;
    for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off)
      if (RD.Cells[Off] && !RD.Cells[Off]->is(ValueKind::Int)) {
        Victim = Address{Region::name(S), Off};
        break;
      }
    if (Victim)
      break;
  }
  ASSERT_TRUE(Victim.has_value());
  M->psi().set(*Victim, C.typeInt());
  StateCheckResult RI = Inc.check();
  StateCheckResult RF = fullCheck(false);
  EXPECT_FALSE(RI.Ok) << "incremental checker accepted corrupted Psi";
  EXPECT_FALSE(RF.Ok);
}

TEST_F(CorruptionTest, RejectsCorruptionAcrossWiden) {
  // Forward only: the generational minor collection promotes without a
  // widen on this workload (its differential coverage lives in
  // gc_incremental_check_test).
  {
    LanguageLevel Level = LanguageLevel::Forward;
    build(Level, 24);
    IncrementalCheckOptions IOpts;
    IOpts.RestrictToReachable = true;
    IncrementalStateCheck Inc(*M, IOpts);
    ASSERT_TRUE(Inc.check().Ok);
    // Run through at least one widen (Ψ rewritten, caches invalidated per
    // affected region), then let the caches re-warm.
    stepChecked(Inc, true, [&] { return M->stats().Widens >= 1; });
    ASSERT_GE(M->stats().Widens, 1u);
    int Extra = 0;
    stepChecked(Inc, true, [&] { return ++Extra > 10; });
    std::optional<Address> A = reachableDataCell();
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(M->memory().update(*A, poison()));
    StateCheckResult RI = Inc.check();
    StateCheckResult RF = fullCheck(true);
    EXPECT_FALSE(RI.Ok)
        << "incremental checker accepted a corrupted reachable cell";
    EXPECT_FALSE(RF.Ok);
  }
}

TEST_F(CorruptionTest, RejectsCorruptionAcrossOnly) {
  build(LanguageLevel::Forward, 24);
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = true;
  IncrementalStateCheck Inc(*M, IOpts);
  ASSERT_TRUE(Inc.check().Ok);
  // Run past the collection's `only` (from-space dropped; cached judgments
  // mentioning its addresses poisoned), while the machine is still live.
  stepChecked(Inc, true, [&] { return M->stats().RegionsReclaimed >= 1; });
  ASSERT_GE(M->stats().RegionsReclaimed, 1u);
  ASSERT_EQ(M->status(), Machine::Status::Running);
  std::optional<Address> A = reachableDataCell();
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(M->memory().update(*A, poison()));
  StateCheckResult RI = Inc.check();
  StateCheckResult RF = fullCheck(true);
  EXPECT_FALSE(RI.Ok)
      << "incremental checker accepted corruption after only";
  EXPECT_FALSE(RF.Ok);
}

TEST_F(CorruptionTest, UnreachableCorruptionToleratedUnderDef71) {
  build(LanguageLevel::Forward, 24);
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = true;
  IncrementalStateCheck Inc(*M, IOpts);
  ASSERT_TRUE(Inc.check().Ok);
  int G = 0;
  stepChecked(Inc, true, [&] { return ++G > 1'000'000; });
  ASSERT_EQ(M->status(), Machine::Status::Halted);
  // After halt the term is `halt 0`: every data cell is unreachable, so
  // Def 7.1 lets BOTH checkers tolerate the corruption — agreement on
  // accept, not just on reject.
  std::optional<Address> A = anyDataCell();
  ASSERT_TRUE(A.has_value());
  ASSERT_TRUE(M->memory().update(*A, poison()));
  StateCheckResult RI = Inc.check();
  StateCheckResult RF = fullCheck(true);
  EXPECT_EQ(RI.Ok, RF.Ok) << RI.Error << "\nvs\n" << RF.Error;
  EXPECT_TRUE(RI.Ok);
}

TEST(KnownBadRecheckTest, RevalidatesEveryEntryWhenReachabilityGrows) {
  // Regression test for the KnownBad re-check loop (runCheck): a tolerated
  // Def 7.1 cell that became reachable AND valid again is re-validated
  // *successfully* mid-loop, and that success path (addToReachable) mutates
  // the checker's scratch worklist. The loop must still visit every other
  // KnownBad entry — here a still-corrupt cell that also became reachable
  // and must be rejected exactly as the full checker rejects it.
  GcContext C;
  Machine M(C, LanguageLevel::Forward);
  Region RT = M.createRegion("rt", 0); // int targets
  Region RM = M.createRegion("rm", 0); // mid cells (the KnownBad pool)
  Region RH = M.createRegion("rh", 0); // term-rooted holder cells

  auto addrOf = [](const Value *V) { return V->address(); };
  // Unreachable target + reachable twin, both int: Psi entries agree.
  Address A2 = addrOf(M.allocate(RT, C.valInt(1)));
  Address A2p = addrOf(M.allocate(RT, C.valInt(2)));
  // Two repairable KnownBad candidates pointing at A2, their well-typed
  // twin B1p (same cell type at(int, RT) — typeAt types by region, not
  // offset), and a directly-corruptible int cell with its twin.
  Address B1a = addrOf(M.allocate(RM, C.valAddr(A2)));
  Address B1b = addrOf(M.allocate(RM, C.valAddr(A2)));
  Address B1p = addrOf(M.allocate(RM, C.valAddr(A2p)));
  Address B2 = addrOf(M.allocate(RM, C.valInt(7)));
  Address B2p = addrOf(M.allocate(RM, C.valInt(8)));
  // Term-rooted holders; everything else is reachable only through them.
  Address H1a = addrOf(M.allocate(RH, C.valAddr(B1p)));
  Address H1b = addrOf(M.allocate(RH, C.valAddr(B1p)));
  Address H2 = addrOf(M.allocate(RH, C.valAddr(B2p)));

  // Roots: {H1a, H1b, H2}; closure adds {B1p, B2p, A2p}. B1a, B1b, B2 and
  // A2 are garbage.
  M.start(C.termLet(
      C.fresh("x"), C.opGet(C.valAddr(H1a)),
      C.termLet(C.fresh("y"), C.opGet(C.valAddr(H1b)),
                C.termLet(C.fresh("z"), C.opGet(C.valAddr(H2)),
                          C.termHalt(C.valInt(0))))));

  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = true;
  IncrementalStateCheck Inc(M, IOpts);
  StateCheckOptions FOpts;
  FOpts.CheckCodeRegion = false;
  FOpts.RestrictToReachable = true;
  ASSERT_TRUE(Inc.check().Ok);
  ASSERT_TRUE(checkState(M, FOpts).Ok);

  // Corrupt only garbage: B2's value directly; B1a/B1b indirectly by
  // retyping their target A2 behind the machine's back. All three fail
  // their judgment while unreachable — tolerated, remembered as KnownBad.
  const Type *IntT = C.typeInt();
  M.psi().set(A2, C.typeProd(IntT, IntT));
  ASSERT_TRUE(M.memory().update(
      B2, C.valAddr(Address{Region::name(C.fresh("ghostregion")), 0})));
  ASSERT_TRUE(Inc.check().Ok);
  ASSERT_TRUE(checkState(M, FOpts).Ok);

  // Repair A2's Psi entry: B1a/B1b's judgments are valid again, but the
  // cells themselves are never dirtied (a failed cell has no cached fact
  // for dependent-invalidation to find), so they stay in KnownBad.
  M.psi().set(A2, IntT);
  ASSERT_TRUE(Inc.check().Ok);
  ASSERT_TRUE(checkState(M, FOpts).Ok);

  // Phase A: swap the B1 holders onto their KnownBad twins — same cell
  // type, so the holders stay well-typed and reachability grows over B1a
  // and B1b. The re-check loop runs with snapshot {B1a, B1b, B2}: B2 is
  // still unreachable (skipped), B1a and B1b re-validate *successfully*,
  // and each success runs addToReachable mid-loop — the loop must keep
  // iterating the remaining snapshot entries regardless of hash order.
  uint64_t RecomputesBefore = Inc.stats().ReachExactRecomputes;
  ASSERT_TRUE(M.memory().update(H1a, C.valAddr(B1a)));
  ASSERT_TRUE(M.memory().update(H1b, C.valAddr(B1b)));
  ASSERT_TRUE(Inc.check().Ok);
  ASSERT_TRUE(checkState(M, FOpts).Ok);
  // Exactly one exact-reachability recomputation: the one the re-check
  // loop's Hit path performs — proof the loop actually ran.
  ASSERT_EQ(Inc.stats().ReachExactRecomputes, RecomputesBefore + 1);

  // Phase B: now make the still-corrupt B2 reachable the same way. The
  // loop re-checks it and must reject, exactly as the full checker does.
  ASSERT_TRUE(M.memory().update(H2, C.valAddr(B2)));
  StateCheckResult RI = Inc.check();
  StateCheckResult RF = checkState(M, FOpts);
  EXPECT_FALSE(RF.Ok);
  EXPECT_FALSE(RI.Ok)
      << "incremental checker accepted a reachable corrupt cell that was "
         "tolerated as unreachable Def 7.1 garbage when first seen";
}

TEST_F(NegativeTest, MachineSurvivesAndReportsAfterStuck) {
  // Once stuck, further step() calls are inert.
  Machine M(C, LanguageLevel::Base);
  M.start(C.termApp(C.valInt(7), {}, {}, {}));
  M.step();
  ASSERT_EQ(M.status(), Machine::Status::Stuck);
  std::string Reason = M.stuckReason();
  M.step();
  EXPECT_EQ(M.status(), Machine::Status::Stuck);
  EXPECT_EQ(M.stuckReason(), Reason);
}

} // namespace
