//===- tests/gc_machine_negative_test.cpp - Stuck-state detection ---------===//
//
// The contrapositive of progress: states the checker REJECTS are allowed
// to get stuck, and the machine must report them as stuck (never crash,
// never mis-execute). Each case pairs an ill-formed program with the
// static rejection and the dynamic stuck reason.
//
//===----------------------------------------------------------------------===//

#include "gc/Builder.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

struct NegativeTest : ::testing::Test {
  GcContext C;

  /// Runs E and expects the machine to end Stuck with a reason containing
  /// \p Needle; also expects the state checker to reject some state on
  /// the way (ill-formed programs must not slip through both nets).
  void expectStuck(LanguageLevel Level, const Term *E,
                   std::string_view Needle) {
    Machine M(C, Level);
    M.start(E);
    bool CheckerRejected = !checkState(M).Ok;
    for (int I = 0; I != 1000 && M.status() == Machine::Status::Running;
         ++I) {
      if (!checkState(M).Ok)
        CheckerRejected = true;
      M.step();
    }
    ASSERT_EQ(M.status(), Machine::Status::Stuck)
        << "expected a stuck state for: " << printTerm(C, E);
    EXPECT_NE(M.stuckReason().find(Needle), std::string::npos)
        << "reason was: " << M.stuckReason();
    EXPECT_TRUE(CheckerRejected)
        << "the state checker accepted an ill-formed program";
  }
};

TEST_F(NegativeTest, ProjectionFromInt) {
  const Term *E = C.termLet(C.fresh("x"), C.opProj(1, C.valInt(3)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "projection from non-pair");
}

TEST_F(NegativeTest, GetFromNonAddress) {
  const Term *E = C.termLet(C.fresh("x"), C.opGet(C.valInt(3)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "get of non-address");
}

TEST_F(NegativeTest, ApplicationOfInt) {
  const Term *E = C.termApp(C.valInt(7), {}, {}, {});
  expectStuck(LanguageLevel::Base, E, "application of non-address");
}

TEST_F(NegativeTest, UnboundVariable) {
  const Term *E = C.termHalt(C.valVar(C.fresh("ghost")));
  Machine M(C, LanguageLevel::Base);
  M.start(E);
  EXPECT_FALSE(checkState(M).Ok);
  // halt of a variable: the machine halts with a non-int "value"; the
  // harness (Pipeline::runMachine) reports it. Here the state checker is
  // the net.
}

TEST_F(NegativeTest, PrimOnPair) {
  const Term *E = C.termLet(
      C.fresh("x"),
      C.opPrim(PrimOp::Add, C.valPair(C.valInt(1), C.valInt(2)),
               C.valInt(1)),
      C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "primitive on non-integers");
}

TEST_F(NegativeTest, TypecaseOnStuckApplication) {
  Symbol Te = C.fresh("te");
  (void)Te;
  // typecase (f Int) with f free: both statically rejected and stuck.
  const Tag *Stuck = C.tagApp(C.tagVar(C.fresh("f")), C.tagInt());
  const Term *E = C.termTypecase(
      Stuck, C.termHalt(C.valInt(1)), C.termHalt(C.valInt(2)), C.fresh("t1"),
      C.fresh("t2"), C.termHalt(C.valInt(3)), C.fresh("te"),
      C.termHalt(C.valInt(4)));
  expectStuck(LanguageLevel::Base, E, "typecase on non-constructor tag");
}

TEST_F(NegativeTest, StripOfUntagged) {
  const Term *E = C.termLet(C.fresh("x"), C.opStrip(C.valInt(1)),
                            C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Forward, E, "strip of untagged value");
}

TEST_F(NegativeTest, IfLeftOfInt) {
  const Term *E = C.termIfLeft(C.fresh("x"), C.valInt(1),
                               C.termHalt(C.valInt(0)),
                               C.termHalt(C.valInt(1)));
  expectStuck(LanguageLevel::Forward, E, "ifleft of untagged value");
}

TEST_F(NegativeTest, SetThroughDanglingAddress) {
  // Construct an address into a region the machine never created.
  Machine M(C, LanguageLevel::Forward);
  Address Bogus{Region::name(C.fresh("ghostregion")), 0};
  const Term *E = C.termSet(C.valAddr(Bogus), C.valInl(C.valInt(1)),
                            C.termHalt(C.valInt(0)));
  M.start(E);
  EXPECT_FALSE(checkState(M).Ok);
  M.step();
  EXPECT_EQ(M.status(), Machine::Status::Stuck);
  EXPECT_NE(M.stuckReason().find("dangling"), std::string::npos);
}

TEST_F(NegativeTest, OpenTagOfPair) {
  const Term *E =
      C.termOpenTag(C.valPair(C.valInt(1), C.valInt(2)), C.fresh("t"),
                    C.fresh("x"), C.termHalt(C.valInt(0)));
  expectStuck(LanguageLevel::Base, E, "open-as-tag of non-package");
}

TEST_F(NegativeTest, IfregOnUnresolvedVariable) {
  Region Rv = Region::var(C.fresh("r"));
  const Term *E = C.termIfReg(Rv, Rv, C.termHalt(C.valInt(0)),
                              C.termHalt(C.valInt(1)));
  expectStuck(LanguageLevel::Generational, E, "unresolved region variable");
}

TEST_F(NegativeTest, MachineSurvivesAndReportsAfterStuck) {
  // Once stuck, further step() calls are inert.
  Machine M(C, LanguageLevel::Base);
  M.start(C.termApp(C.valInt(7), {}, {}, {}));
  M.step();
  ASSERT_EQ(M.status(), Machine::Status::Stuck);
  std::string Reason = M.stuckReason();
  M.step();
  EXPECT_EQ(M.status(), Machine::Status::Stuck);
  EXPECT_EQ(M.stuckReason(), Reason);
}

} // namespace
