//===- tests/trace_metrics_test.cpp - Tracing & metrics subsystem ---------===//
//
// Tier-1 coverage for DESIGN.md §3.9: the trace ring (nesting, ring
// overwrite, Perfetto JSON export invariants checked through a minimal
// parser), the metrics registry (histogram bucket boundaries, percentile
// clamping, the scav-metrics-v1 JSON shape), the golden collector-phase
// event sequence for all three certified collectors, and the env-counter
// observation-independence regression (EnvLookups vs EnvForceLookups).
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "harness/HeapForge.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;
using support::Histogram;
using support::MetricsRegistry;
using support::TraceEvent;
using support::TracePhase;
using support::TraceSink;

namespace {

//===----------------------------------------------------------------------===//
// Metrics: histogram bucketing and percentiles
//===----------------------------------------------------------------------===//

TEST(Metrics, HistogramBucketBoundaries) {
  // Bounds are inclusive upper edges; past the last bound is the overflow
  // bucket.
  Histogram H({10, 100, 1000});
  EXPECT_EQ(H.bucketFor(-1), 0u);
  EXPECT_EQ(H.bucketFor(0), 0u);
  EXPECT_EQ(H.bucketFor(10), 0u); // edge lands in its own bucket
  EXPECT_EQ(H.bucketFor(10.5), 1u);
  EXPECT_EQ(H.bucketFor(100), 1u);
  EXPECT_EQ(H.bucketFor(1000), 2u);
  EXPECT_EQ(H.bucketFor(1000.5), 3u); // overflow
  H.record(10);
  H.record(10.5);
  H.record(5000);
  EXPECT_EQ(H.counts()[0], 1u);
  EXPECT_EQ(H.counts()[1], 1u);
  EXPECT_EQ(H.counts()[2], 0u);
  EXPECT_EQ(H.counts()[3], 1u);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_DOUBLE_EQ(H.sum(), 10 + 10.5 + 5000);
  EXPECT_DOUBLE_EQ(H.min(), 10);
  EXPECT_DOUBLE_EQ(H.max(), 5000);
}

TEST(Metrics, HistogramEmptyAndSingleSample) {
  Histogram Empty({10, 100});
  EXPECT_EQ(Empty.count(), 0u);
  EXPECT_DOUBLE_EQ(Empty.min(), 0);
  EXPECT_DOUBLE_EQ(Empty.max(), 0);
  EXPECT_DOUBLE_EQ(Empty.mean(), 0);
  EXPECT_DOUBLE_EQ(Empty.percentile(50), 0);

  // A single sample pins every percentile: the interpolation clamps to the
  // observed [min, max] even though the sample sits mid-bucket.
  Histogram One({10, 100});
  One.record(42);
  EXPECT_DOUBLE_EQ(One.percentile(0), 42);
  EXPECT_DOUBLE_EQ(One.percentile(50), 42);
  EXPECT_DOUBLE_EQ(One.percentile(100), 42);
  EXPECT_DOUBLE_EQ(One.mean(), 42);
}

TEST(Metrics, HistogramPercentileInterpolation) {
  // 100 samples, two values, one shared bucket: the percentile walks the
  // bucket linearly between the observed min and max.
  Histogram H({100});
  for (int I = 0; I != 50; ++I)
    H.record(10);
  for (int I = 0; I != 50; ++I)
    H.record(90);
  EXPECT_NEAR(H.percentile(50), 50, 1e-9); // 10 + 0.5 * (90 - 10)
  EXPECT_NEAR(H.percentile(99), 10 + 0.99 * 80, 1e-9);
  // Monotone in P and clamped to the observed range.
  EXPECT_LE(H.percentile(25), H.percentile(50));
  EXPECT_LE(H.percentile(50), H.percentile(99));
  EXPECT_LE(H.percentile(99), H.max());
  EXPECT_GE(H.percentile(1), H.min());
}

TEST(Metrics, HistogramMergeSameBounds) {
  Histogram A({10, 100}), B({10, 100});
  A.record(5);
  A.record(50);
  B.record(7);
  B.record(500);
  A.mergeFrom(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_DOUBLE_EQ(A.sum(), 5 + 50 + 7 + 500);
  EXPECT_DOUBLE_EQ(A.min(), 5);
  EXPECT_DOUBLE_EQ(A.max(), 500);
  EXPECT_EQ(A.counts()[0], 2u);
  EXPECT_EQ(A.counts()[1], 1u);
  EXPECT_EQ(A.counts()[2], 1u);
  // Merging an empty histogram is a no-op either way.
  Histogram Empty({10, 100});
  A.mergeFrom(Empty);
  EXPECT_EQ(A.count(), 4u);
  Empty.mergeFrom(A);
  EXPECT_EQ(Empty.count(), 4u);
  EXPECT_DOUBLE_EQ(Empty.min(), 5);
}

TEST(Metrics, HistogramMergeMismatchedBoundsIsCoarse) {
  Histogram A({10, 100});
  Histogram B({50});
  B.record(30); // in B's [0,50] bucket; representative edge 50 -> A's (10,100]
  B.record(900);
  A.mergeFrom(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.sum(), 930);
  EXPECT_DOUBLE_EQ(A.min(), 30);
  EXPECT_DOUBLE_EQ(A.max(), 900);
  EXPECT_EQ(A.counts()[1], 1u);
  EXPECT_EQ(A.counts()[2], 1u); // overflow representative clamped to max
}

TEST(Metrics, RegistryMergeAccumulates) {
  MetricsRegistry A, B;
  A.counter("steps") = 10;
  B.counter("steps") = 32;
  B.counter("only_b") = 1;
  A.gauge("cells") = 1.5;
  B.gauge("cells") = 2.5;
  B.histogram("pause", {10, 100}).record(42);
  A.mergeFrom(B);
  EXPECT_EQ(A.counters().at("steps"), 42u);
  EXPECT_EQ(A.counters().at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(A.gauges().at("cells"), 4.0);
  EXPECT_EQ(A.histograms().at("pause").count(), 1u);
  // Prefixed merge keeps per-producer names apart.
  MetricsRegistry Agg;
  Agg.mergeFrom(B, "s1.");
  EXPECT_EQ(Agg.counters().at("s1.steps"), 32u);
  EXPECT_EQ(Agg.histograms().at("s1.pause").count(), 1u);
}

// The thread-model regression (see the MetricsRegistry doc comment): each
// producer thread writes a private registry, the owner merges after join.
// Pre-fix code had no merge API, pushing concurrent producers toward
// sharing one registry — which corrupts the maps; under the TSan CI job
// this test is also the canary for any future "optimization" that shares
// histogram state across threads.
TEST(Metrics, PerThreadRegistriesMergeExactly) {
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<MetricsRegistry> Regs(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      MetricsRegistry &R = Regs[T];
      Histogram &H = R.histogram("latency", {8, 64, 512});
      for (uint64_t I = 0; I != PerThread; ++I) {
        ++R.counter("events");
        R.gauge("work") += 0.5;
        H.record(static_cast<double>((I * 7 + T) % 1000));
      }
    });
  for (auto &T : Pool)
    T.join();
  MetricsRegistry Total;
  for (const auto &R : Regs)
    Total.mergeFrom(R);
  EXPECT_EQ(Total.counters().at("events"), Threads * PerThread);
  EXPECT_DOUBLE_EQ(Total.gauges().at("work"), Threads * PerThread * 0.5);
  const Histogram &H = Total.histograms().at("latency");
  EXPECT_EQ(H.count(), Threads * PerThread);
  uint64_t BucketSum = 0;
  for (uint64_t C : H.counts())
    BucketSum += C;
  EXPECT_EQ(BucketSum, H.count());
  EXPECT_DOUBLE_EQ(H.min(), 0);
  EXPECT_DOUBLE_EQ(H.max(), 999);
  EXPECT_LE(H.percentile(50), H.percentile(99));
}

TEST(Metrics, HistogramDefaultBoundsCoverLatencyRange) {
  Histogram H; // exponential ns grid
  H.record(1);      // below the first bound
  H.record(1e6);    // 1 ms
  H.record(1e11);   // beyond the grid: overflow bucket
  EXPECT_EQ(H.count(), 3u);
  uint64_t Total = 0;
  for (uint64_t Ct : H.counts())
    Total += Ct;
  EXPECT_EQ(Total, 3u);
}

//===----------------------------------------------------------------------===//
// Metrics: scav-metrics-v1 JSON / text reporters
//===----------------------------------------------------------------------===//

TEST(Metrics, JsonShape) {
  MetricsRegistry Reg;
  Reg.setCounter("machine.steps", 7);
  Reg.setGauge("memory.live_data_cells", 3.5);
  Reg.histogram("collect_pause_ns").record(2000);
  Reg.histogram("collect_pause_ns").record(3000);
  std::string J =
      support::writeMetricsJson(Reg, {{"experiment", "\"e0\""},
                                      {"pass", "true"}});
  EXPECT_NE(J.find("\"schema\": \"scav-metrics-v1\""), std::string::npos);
  // Extra members appear before the metric sections.
  EXPECT_LT(J.find("\"experiment\": \"e0\""), J.find("\"counters\""));
  EXPECT_NE(J.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(J.find("\"machine.steps\": 7"), std::string::npos);
  EXPECT_NE(J.find("\"memory.live_data_cells\": 3.5"), std::string::npos);
  EXPECT_NE(J.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"p50\""), std::string::npos);
  EXPECT_NE(J.find("\"p99\""), std::string::npos);
  EXPECT_NE(J.find("\"buckets\""), std::string::npos);
  // Empty registry still yields all three (empty) sections.
  MetricsRegistry None;
  std::string E = support::writeMetricsJson(None);
  EXPECT_NE(E.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(E.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(E.find("\"histograms\": {}"), std::string::npos);
}

TEST(Metrics, JsonStringEscaping) {
  std::string Out;
  support::detail::appendJsonString(Out, "a\"b\\c\nd");
  EXPECT_EQ(Out, "\"a\\\"b\\\\c d\""); // control chars become spaces
}

TEST(Metrics, TextReporter) {
  MetricsRegistry Reg;
  Reg.setCounter("steps", 12);
  Reg.histogram("pause").record(5);
  std::string T = support::writeMetricsText(Reg, "  ");
  EXPECT_NE(T.find("steps"), std::string::npos);
  EXPECT_NE(T.find("12"), std::string::npos);
  EXPECT_NE(T.find("count=1"), std::string::npos);
  EXPECT_NE(T.find("p99="), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trace ring: nesting, overwrite, formatTail
//===----------------------------------------------------------------------===//

/// RAII guard: every trace test leaves the global sink disabled and empty.
struct SinkGuard {
  explicit SinkGuard(size_t Capacity) {
    TraceSink::get().enable(Capacity);
    TraceSink::get().clear();
  }
  ~SinkGuard() {
    TraceSink::get().disable();
    TraceSink::get().clear();
  }
};

TEST(Trace, ScopesWellNestedAndMonotonic) {
#if !SCAV_TRACE_COMPILED_IN
  GTEST_SKIP() << "tracing compiled out (SCAV_TRACE_OFF)";
#endif
  SinkGuard G(1 << 8);
  {
    TRACE_SCOPE("t", "outer");
    TRACE_INSTANT("t", "mid");
    { TRACE_SCOPE("t", "inner"); }
    TRACE_COUNTER("gauge", 7);
  }
  std::vector<TraceEvent> Evs = TraceSink::get().snapshot();
  ASSERT_EQ(Evs.size(), 6u);
  EXPECT_EQ(Evs[0].Ph, TracePhase::Begin);
  EXPECT_STREQ(Evs[0].Name, "outer");
  EXPECT_EQ(Evs[1].Ph, TracePhase::Instant);
  EXPECT_EQ(Evs[2].Ph, TracePhase::Begin);
  EXPECT_STREQ(Evs[2].Name, "inner");
  EXPECT_EQ(Evs[3].Ph, TracePhase::End);
  EXPECT_STREQ(Evs[3].Name, "inner");
  EXPECT_EQ(Evs[4].Ph, TracePhase::Counter);
  EXPECT_DOUBLE_EQ(Evs[4].Value, 7);
  EXPECT_EQ(Evs[5].Ph, TracePhase::End);
  EXPECT_STREQ(Evs[5].Name, "outer");
  for (size_t I = 1; I != Evs.size(); ++I)
    EXPECT_GE(Evs[I].TsNs, Evs[I - 1].TsNs);
}

TEST(Trace, DisabledRecordsNothing) {
  SinkGuard G(1 << 8);
  TraceSink::get().disable();
  TRACE_INSTANT("t", "dropped");
  EXPECT_TRUE(TraceSink::get().snapshot().empty());
  EXPECT_FALSE(SCAV_TRACE_ENABLED());
}

TEST(Trace, RingKeepsMostRecentAndCountsDrops) {
  SinkGuard G(8);
  TraceSink &Sink = TraceSink::get();
  Sink.begin("t", "sliced");
  for (int I = 0; I != 20; ++I)
    Sink.instant("t", "fill");
  Sink.end("t", "sliced");
  EXPECT_EQ(Sink.recorded(), 22u);
  EXPECT_EQ(Sink.dropped(), 14u);
  std::vector<TraceEvent> Evs = Sink.snapshot();
  ASSERT_EQ(Evs.size(), 8u);
  // Oldest-first within the retained window; the End survives, its Begin
  // was overwritten.
  EXPECT_EQ(Evs.back().Ph, TracePhase::End);
  EXPECT_STREQ(Evs.back().Name, "sliced");
}

TEST(Trace, FormatTailMentionsHiddenEvents) {
  SinkGuard G(8);
  TraceSink &Sink = TraceSink::get();
  for (int I = 0; I != 20; ++I)
    Sink.instant("cat", "ev");
  Sink.counter("ctr", 3.5);
  std::string Tail = Sink.formatTail(4);
  EXPECT_NE(Tail.find("[trace] i cat ev"), std::string::npos);
  EXPECT_NE(Tail.find("[trace] C counter ctr = 3.5"), std::string::npos);
  EXPECT_NE(Tail.find("earlier events not shown"), std::string::npos);
}

TEST(Trace, InternReturnsStablePointers) {
  TraceSink &Sink = TraceSink::get();
  const char *A = Sink.intern("cells.from");
  const char *B = Sink.intern("cells.from");
  EXPECT_EQ(A, B); // same string interns to the same storage
  EXPECT_STREQ(A, "cells.from");
}

//===----------------------------------------------------------------------===//
// Perfetto export: minimal parser + invariants
//===----------------------------------------------------------------------===//

struct MiniEvent {
  char Ph = 0;
  std::string Name;
  double Ts = 0;
};

// Parse-failure check that bails out of a value-returning function (gtest's
// ASSERT_* only work in void functions).
#define PARSE_REQUIRE(COND, RET)                                               \
  do {                                                                         \
    if (!(COND)) {                                                             \
      ADD_FAILURE() << "parse failure: " #COND;                                \
      return RET;                                                              \
    }                                                                          \
  } while (0)

/// Minimal trace-event parser: one JSON object per event, extracts name /
/// ph / ts. Gtest-fails on any event it cannot parse.
std::vector<MiniEvent> parseChromeJson(const std::string &J) {
  std::vector<MiniEvent> Out;
  EXPECT_EQ(J.rfind("{\"traceEvents\": [", 0), 0u) << J.substr(0, 40);
  EXPECT_NE(J.find("\n]}"), std::string::npos);
  size_t Pos = 0;
  while ((Pos = J.find("{\"name\": \"", Pos)) != std::string::npos) {
    MiniEvent E;
    size_t NameBeg = Pos + std::strlen("{\"name\": \"");
    size_t NameEnd = J.find('"', NameBeg);
    PARSE_REQUIRE(NameEnd != std::string::npos, Out);
    E.Name = J.substr(NameBeg, NameEnd - NameBeg);
    size_t PhPos = J.find("\"ph\": \"", Pos);
    PARSE_REQUIRE(PhPos != std::string::npos, Out);
    E.Ph = J[PhPos + std::strlen("\"ph\": \"")];
    size_t TsPos = J.find("\"ts\": ", Pos);
    PARSE_REQUIRE(TsPos != std::string::npos, Out);
    E.Ts = std::strtod(J.c_str() + TsPos + std::strlen("\"ts\": "), nullptr);
    Out.push_back(E);
    Pos = NameEnd;
  }
  return Out;
}

/// Duration-event invariants every Perfetto-loadable export must satisfy:
/// timestamps non-decreasing, B/E depth never negative, depth zero at end.
void expectBalanced(const std::vector<MiniEvent> &Evs) {
  std::vector<std::string> Stack;
  double LastTs = 0;
  for (const MiniEvent &E : Evs) {
    EXPECT_GE(E.Ts, LastTs) << E.Name;
    LastTs = E.Ts;
    if (E.Ph == 'B') {
      Stack.push_back(E.Name);
    } else if (E.Ph == 'E') {
      ASSERT_FALSE(Stack.empty()) << "E without B: " << E.Name;
      EXPECT_EQ(Stack.back(), E.Name) << "non-LIFO scope close";
      Stack.pop_back();
    } else {
      EXPECT_TRUE(E.Ph == 'i' || E.Ph == 'C') << E.Ph;
    }
  }
  EXPECT_TRUE(Stack.empty()) << "unclosed scope: " << Stack.back();
}

TEST(Trace, ChromeJsonRoundTrip) {
#if !SCAV_TRACE_COMPILED_IN
  GTEST_SKIP() << "tracing compiled out (SCAV_TRACE_OFF)";
#endif
  SinkGuard G(1 << 8);
  {
    TRACE_SCOPE("m", "outer");
    TRACE_INSTANT("m", "tick");
    { TRACE_SCOPE("m", "inner"); }
  }
  TRACE_COUNTER("cells", 12);
  std::vector<MiniEvent> Evs =
      parseChromeJson(TraceSink::get().toChromeJson());
  ASSERT_EQ(Evs.size(), 6u);
  expectBalanced(Evs);
  EXPECT_EQ(Evs[0].Name, "outer");
  EXPECT_EQ(Evs[0].Ph, 'B');
  EXPECT_EQ(Evs[1].Ph, 'i');
  EXPECT_EQ(Evs[5].Name, "cells");
  EXPECT_EQ(Evs[5].Ph, 'C');
  // Instant events carry the mandatory scope field.
  EXPECT_NE(TraceSink::get().toChromeJson().find("\"s\": \"t\""),
            std::string::npos);
}

TEST(Trace, ChromeJsonBalancesWindowSlicedScopes) {
  SinkGuard G(8);
  TraceSink &Sink = TraceSink::get();
  // The Begin is overwritten by ring wrap; the window retains only the End.
  Sink.begin("m", "sliced");
  for (int I = 0; I != 20; ++I)
    Sink.instant("m", "fill");
  Sink.end("m", "sliced");
  // And one scope left open entirely.
  Sink.begin("m", "open");
  std::vector<MiniEvent> Evs =
      parseChromeJson(Sink.toChromeJson());
  expectBalanced(Evs); // synthetic B for "sliced", synthetic E for "open"
  size_t Begins = 0, Ends = 0;
  for (const MiniEvent &E : Evs) {
    Begins += E.Ph == 'B';
    Ends += E.Ph == 'E';
  }
  EXPECT_EQ(Begins, Ends);
  EXPECT_EQ(Begins, 2u);
}

//===----------------------------------------------------------------------===//
// Golden collector-phase sequences
//===----------------------------------------------------------------------===//

struct PhaseExpectation {
  LanguageLevel Level;
  const char *Entry; ///< reserveCode label of the collection entry point.
  const char *Copy;  ///< Label of the per-object copy dispatcher.
};

struct CollectionTrace {
  std::vector<TraceEvent> Evs;
  std::string Json;
  uint64_t Dropped = 0;
  uint64_t Steps = 0;
};

/// Runs one certified collection at \p Level with the sink recording and
/// returns the retained events plus their Perfetto export.
CollectionTrace traceOneCollection(LanguageLevel Level) {
  GcContext C;
  Machine M(C, Level);
  Address GcAddr{};
  switch (Level) {
  case LanguageLevel::Base:
    GcAddr = installBasicCollector(M).Gc;
    break;
  case LanguageLevel::Forward:
    GcAddr = installForwardCollector(M).Gc;
    break;
  case LanguageLevel::Generational:
    GcAddr = installGenCollector(M).Gc;
    break;
  }
  Region R = M.createRegion("from", 0);
  Region Old =
      Level == LanguageLevel::Generational ? M.createRegion("old", 0) : R;
  ForgedHeap H = forgeList(M, R, Old, 8);
  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, Old, Fin);
  SinkGuard G(1 << 17);
  M.start(E);
  M.run(10'000'000);
  EXPECT_EQ(M.status(), Machine::Status::Halted)
      << languageLevelName(Level) << ": " << M.stuckReason();
  CollectionTrace Out;
  Out.Steps = M.stats().Steps;
  Out.Evs = TraceSink::get().snapshot();
  Out.Json = TraceSink::get().toChromeJson();
  Out.Dropped = TraceSink::get().dropped();
  return Out;
}

TEST(Trace, GoldenCollectorPhaseSequence) {
#if !SCAV_TRACE_COMPILED_IN
  GTEST_SKIP() << "tracing compiled out (SCAV_TRACE_OFF)";
#endif
  const PhaseExpectation Cases[] = {
      {LanguageLevel::Base, "gc", "copy"},
      {LanguageLevel::Forward, "gcF", "copyF"},
      {LanguageLevel::Generational, "gcG", "copyG"},
  };
  for (const PhaseExpectation &Cs : Cases) {
    SCOPED_TRACE(languageLevelName(Cs.Level));
    CollectionTrace Tr = traceOneCollection(Cs.Level);
    const std::vector<TraceEvent> &Evs = Tr.Evs;
    ASSERT_FALSE(Evs.empty());

    // Exactly one collect scope, opened at the entry App and closed by the
    // final `only`.
    ptrdiff_t CollectBegin = -1, CollectEnd = -1;
    ptrdiff_t FirstEntry = -1, FirstCopy = -1, RegionCreate = -1;
    size_t StepEvents = 0;
    for (size_t I = 0; I != Evs.size(); ++I) {
      const TraceEvent &E = Evs[I];
      if (std::strcmp(E.Cat, "collector") == 0 &&
          std::strcmp(E.Name, "collect") == 0) {
        if (E.Ph == TracePhase::Begin) {
          EXPECT_EQ(CollectBegin, -1) << "collect scope opened twice";
          CollectBegin = static_cast<ptrdiff_t>(I);
        } else if (E.Ph == TracePhase::End) {
          EXPECT_EQ(CollectEnd, -1) << "collect scope closed twice";
          CollectEnd = static_cast<ptrdiff_t>(I);
        }
      }
      if (E.Ph == TracePhase::Instant &&
          std::strcmp(E.Cat, "collector") == 0) {
        if (FirstEntry == -1 && std::strcmp(E.Name, Cs.Entry) == 0)
          FirstEntry = static_cast<ptrdiff_t>(I);
        if (FirstCopy == -1 && std::strcmp(E.Name, Cs.Copy) == 0)
          FirstCopy = static_cast<ptrdiff_t>(I);
      }
      if (RegionCreate == -1 && std::strcmp(E.Cat, "region") == 0 &&
          std::strcmp(E.Name, "region.create") == 0)
        RegionCreate = static_cast<ptrdiff_t>(I);
      StepEvents += std::strcmp(E.Cat, "step") == 0;
    }
    // The golden order: collect-Begin, entry-phase instant, to-space
    // region.create, copy-phase instants, collect-End.
    ASSERT_NE(CollectBegin, -1);
    ASSERT_NE(CollectEnd, -1);
    ASSERT_NE(FirstEntry, -1);
    ASSERT_NE(FirstCopy, -1);
    ASSERT_NE(RegionCreate, -1) << "collector allocated no to-space";
    EXPECT_LT(CollectBegin, FirstEntry);
    EXPECT_LT(FirstEntry, RegionCreate);
    EXPECT_LT(RegionCreate, FirstCopy);
    EXPECT_LT(FirstCopy, CollectEnd);
    // Mutator-step events interleave throughout.
    EXPECT_GT(StepEvents, 0u);
    EXPECT_EQ(Tr.Dropped, 0u) << "ring too small for the golden run";
    // Counter tracks appear once the run is long enough for the periodic
    // sampler (every 64 steps).
    if (Tr.Steps >= 64) {
      bool SawCounter = false;
      for (const TraceEvent &E : Evs)
        SawCounter = SawCounter || E.Ph == TracePhase::Counter;
      EXPECT_TRUE(SawCounter);
    }
    // And the whole capture exports as balanced Perfetto JSON.
    std::vector<MiniEvent> Mini = parseChromeJson(Tr.Json);
    EXPECT_EQ(Mini.size(), Evs.size());
    expectBalanced(Mini);
  }
}

//===----------------------------------------------------------------------===//
// MachineStats export + env-counter observation independence
//===----------------------------------------------------------------------===//

TEST(Metrics, MachineExportsRegistry) {
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Address GcAddr = installBasicCollector(M).Gc;
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 4);
  Address Fin = installFinisher(M, H.Tag);
  M.start(collectOnceTerm(M, GcAddr, H, R, R, Fin));
  M.run(10'000'000);
  ASSERT_EQ(M.status(), Machine::Status::Halted);
  MetricsRegistry Reg;
  M.exportMetrics(Reg);
  EXPECT_EQ(Reg.counters().at("machine.steps"), M.stats().Steps);
  EXPECT_GT(Reg.counters().at("machine.steps"), 0u);
  EXPECT_GT(Reg.gauges().at("memory.live_data_cells"), 0);
  // The registry renders through the shared reporter without a hiccup.
  std::string J = support::writeMetricsJson(Reg);
  EXPECT_NE(J.find("\"machine.steps\""), std::string::npos);
}

TEST(Metrics, EnvLookupsIndependentOfObservation) {
  // Regression for the env-counter double drift: currentTerm() is an
  // observer (checkState, diagnostics), so the variable lookups its
  // closing traversal performs must land in EnvForceLookups, never in
  // EnvLookups — otherwise two identical runs report different lookup
  // totals merely because one was observed more often.
  auto Run = [](bool Observe) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    Address GcAddr = installBasicCollector(M).Gc;
    Region R = M.createRegion("from", 0);
    ForgedHeap H = forgeList(M, R, R, 6);
    Address Fin = installFinisher(M, H.Tag);
    M.start(collectOnceTerm(M, GcAddr, H, R, R, Fin));
    uint64_t Guard = 0;
    while (M.status() == Machine::Status::Running && ++Guard < 1'000'000) {
      M.step();
      if (Observe) {
        (void)M.currentTerm();
        (void)M.currentTerm();
      }
    }
    EXPECT_EQ(M.status(), Machine::Status::Halted);
    return std::make_pair(M.stats().EnvLookups, M.stats().EnvForceLookups);
  };
  auto [PlainLookups, PlainForced] = Run(false);
  auto [WatchedLookups, WatchedForced] = Run(true);
  EXPECT_EQ(PlainLookups, WatchedLookups)
      << "EnvLookups drifted with observation cadence";
  EXPECT_GT(WatchedForced, PlainForced)
      << "observer lookups were not accounted to EnvForceLookups";
  EXPECT_GT(PlainLookups, 0u);
}

} // namespace
