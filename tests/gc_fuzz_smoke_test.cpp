//===- tests/gc_fuzz_smoke_test.cpp - Fixed-seed fuzz regression ----------===//
//
// A deterministic slice of the certgc_fuzz workload runs inside tier-1:
// 500 state mutations per language level through the differential
// checkState / IncrementalStateCheck oracle, a grammar-fuzz burst over
// both frontends, and a handful of end-to-end pipeline comparisons. The
// seeds are fixed, so a failure here is a reproducible regression, and
// the report's replay line points at the standalone binary.
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzDriver.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::harness;

namespace {

void expectClean(const FuzzReport &R, const char *Mode) {
  EXPECT_TRUE(R.ok()) << R.summary(Mode);
  EXPECT_EQ(R.FalseAccepts, 0u);
  EXPECT_EQ(R.Disagreements, 0u);
  EXPECT_EQ(R.InvariantViolations, 0u);
}

TEST(FuzzSmoke, StateMutationsPerLevel) {
  for (gc::LanguageLevel L :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    FuzzOptions Opts;
    Opts.Seed = 1;
    Opts.Iterations = 500;
    Opts.AllLevels = false;
    Opts.Level = L;
    FuzzReport R = fuzzStates(Opts);
    expectClean(R, "state");
    EXPECT_EQ(R.Iterations, 500u);
    // Every iteration must actually inject something and see it rejected.
    EXPECT_EQ(R.MutationsApplied, 500u) << gc::languageLevelName(L);
    EXPECT_EQ(R.Rejections, 500u) << gc::languageLevelName(L);
  }
}

TEST(FuzzSmoke, GrammarMutationsNeverSilent) {
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Iterations = 1000;
  FuzzReport R = fuzzGrammar(Opts);
  expectClean(R, "grammar");
  EXPECT_EQ(R.Iterations, 1000u);
  // The mutator must not degenerate into producing only valid programs
  // (or only hopeless garbage): both outcomes stay represented.
  EXPECT_GT(R.Rejections, 0u);
  EXPECT_GT(R.CleanAccepts, 0u);
}

TEST(FuzzSmoke, PipelineDifferential) {
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Iterations = 5;
  FuzzReport R = fuzzPipeline(Opts);
  expectClean(R, "pipeline");
  EXPECT_EQ(R.CleanAccepts, 5u);
}

TEST(FuzzSmoke, PipelineDifferentialVmLegPerLevel) {
  // The pipeline oracle runs four machine configurations per program —
  // env+gc, subst+gc, vm+gc, and collector-free — and any verdict, value,
  // or step-count divergence is an invariant violation. Pinning one fixed
  // seed per language level keeps the bytecode-VM leg exercised against
  // each certified collector inside tier-1, deterministically.
  for (gc::LanguageLevel L :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    FuzzOptions Opts;
    Opts.Seed = 0xC0DE;
    Opts.Iterations = 3;
    Opts.AllLevels = false;
    Opts.Level = L;
    FuzzReport R = fuzzPipeline(Opts);
    expectClean(R, "pipeline");
    EXPECT_EQ(R.CleanAccepts, 3u) << gc::languageLevelName(L);
  }
}

TEST(FuzzSmoke, TriageReportCarriesTraceTail) {
  // An injected (fake) failure must flow through the same triage path a
  // real one would: a replay line, a detail string, and — when tracing is
  // compiled in — the tail of the trace ring at the moment of failure.
  FuzzOptions Opts;
  Opts.Seed = 7;
  Opts.Iterations = 1;
  Opts.AllLevels = false;
  Opts.Level = gc::LanguageLevel::Base;
  Opts.InjectSelfTestFailure = true;
  FuzzReport R = fuzzStates(Opts);
  EXPECT_EQ(R.InvariantViolations, 1u);
  ASSERT_GE(R.Failures.size(), 1u);
  std::string S = R.summary("state");
  EXPECT_NE(S.find("injected self-test failure"), std::string::npos);
#if SCAV_TRACE_COMPILED_IN
  EXPECT_FALSE(R.Failures[0].TraceTail.empty());
  EXPECT_NE(S.find("trace tail:"), std::string::npos);
  EXPECT_NE(S.find("[trace]"), std::string::npos);
  support::TraceSink::get().disable();
#else
  EXPECT_TRUE(R.Failures[0].TraceTail.empty());
#endif
}

TEST(FuzzSmoke, SeedDeterminism) {
  FuzzOptions Opts;
  Opts.Seed = 42;
  Opts.Iterations = 50;
  FuzzReport A = fuzzStates(Opts);
  FuzzReport B = fuzzStates(Opts);
  EXPECT_EQ(A.PerKind, B.PerKind);
  EXPECT_EQ(A.Rejections, B.Rejections);
  EXPECT_EQ(A.summary("state"), B.summary("state"));
}

} // namespace
