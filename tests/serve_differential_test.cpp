//===- tests/serve_differential_test.cpp - certgc_serve determinism -------===//
//
// The serving front-end's core claim: session results are a function of the
// manifest alone — not of the worker count, and not of whether sessions
// share a frozen context base. Per-session verdicts, halt values, and step
// counts must be identical between a 1-worker (inline, serial) run and a
// 4-worker run of the same manifest, and between shared-base and
// private-context runs. Plus unit coverage of the manifest parser's
// diagnostics (same strictness class as the env-knob parser).
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::serve;

namespace {

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

TEST(Manifest, ParsesFullLine) {
  Manifest M;
  std::string Err;
  ASSERT_TRUE(parseManifest("# header comment\n"
                            "\n"
                            "level=gen eval=vm gen-seed=7 capacity=128 "
                            "check-every=64 full-check-every=4 "
                            "async-check=1 threads=2 max-steps=1000 "
                            "layout=legacy # trailing\n",
                            "", M, Err))
      << Err;
  ASSERT_EQ(M.Sessions.size(), 1u);
  const SessionSpec &S = M.Sessions[0];
  EXPECT_EQ(S.Level, gc::LanguageLevel::Generational);
  EXPECT_EQ(S.Eval, gc::EvalMode::Vm);
  EXPECT_TRUE(S.HasGenSeed);
  EXPECT_EQ(S.GenSeed, 7u);
  EXPECT_EQ(S.Capacity, 128u);
  EXPECT_EQ(S.CheckEvery, 64u);
  EXPECT_EQ(S.FullCheckEvery, 4u);
  EXPECT_TRUE(S.AsyncCheck);
  EXPECT_EQ(S.Threads, 2u);
  EXPECT_EQ(S.MaxSteps, 1000u);
  EXPECT_EQ(S.Layout, gc::HeapLayout::Legacy);
}

TEST(Manifest, DefaultsApply) {
  Manifest M;
  std::string Err;
  ASSERT_TRUE(parseManifest("gen-seed=1\n", "", M, Err)) << Err;
  const SessionSpec &S = M.Sessions[0];
  EXPECT_EQ(S.Level, gc::LanguageLevel::Base);
  EXPECT_EQ(S.Eval, gc::EvalMode::Env);
  EXPECT_EQ(S.Capacity, 64u);
  EXPECT_EQ(S.MaxSteps, 5'000'000u);
  EXPECT_FALSE(S.AsyncCheck);
}

TEST(Manifest, ProgramPathsResolveAgainstManifestDir) {
  Manifest M;
  std::string Err;
  ASSERT_TRUE(parseManifest("program=progs/a.scm\nprogram=/abs/b.scm\n",
                            "/root/dir", M, Err))
      << Err;
  EXPECT_EQ(M.Sessions[0].ProgramPath, "/root/dir/progs/a.scm");
  EXPECT_EQ(M.Sessions[1].ProgramPath, "/abs/b.scm");
}

TEST(Manifest, DiagnosticsCarryLineNumbers) {
  struct Case {
    const char *Text;
    const char *Needle;
  } Cases[] = {
      {"gen-seed=1\nlevel=medium gen-seed=2\n", "line 2"},
      {"level=base\n", "exactly one of gen-seed"},
      {"gen-seed=1 program=x.scm\n", "exactly one of"},
      {"gen-seed=zap\n", "not an unsigned integer"},
      {"gen-seed=1 threads=9999\n", "threads=9999"},
      {"gen-seed=1 bogus=3\n", "unknown key"},
      {"gen-seed=1 eval\n", "expected key=value"},
      {"", "no sessions"},
  };
  for (const Case &C : Cases) {
    Manifest M;
    std::string Err;
    EXPECT_FALSE(parseManifest(C.Text, "", M, Err)) << C.Text;
    EXPECT_NE(Err.find(C.Needle), std::string::npos)
        << "text: " << C.Text << "\ndiag: " << Err;
  }
}

//===----------------------------------------------------------------------===//
// Worker-count and shared-base differentials
//===----------------------------------------------------------------------===//

/// A small level × eval sweep; seeds picked arbitrarily, sizes kept small
/// so the 3 full sweeps below stay in unit-test budget.
Manifest sweepManifest() {
  Manifest M;
  std::string Err;
  EXPECT_TRUE(parseManifest(
      "level=base    eval=env gen-seed=11 check-every=128\n"
      "level=forward eval=env gen-seed=12\n"
      "level=gen     eval=env gen-seed=13 check-every=64\n"
      "level=base    eval=vm  gen-seed=14\n"
      "level=forward eval=vm  gen-seed=15 check-every=256\n"
      "level=gen     eval=vm  gen-seed=16\n"
      "level=forward eval=env gen-seed=17 async-check=1 check-every=32\n"
      "level=base    eval=subst gen-seed=18\n",
      "", M, Err))
      << Err;
  return M;
}

void expectSameSessionResults(const ServeReport &A, const ServeReport &B) {
  ASSERT_EQ(A.Sessions.size(), B.Sessions.size());
  for (size_t I = 0; I != A.Sessions.size(); ++I) {
    const SessionResult &X = A.Sessions[I];
    const SessionResult &Y = B.Sessions[I];
    EXPECT_EQ(X.Ok, Y.Ok) << "session " << I << ": " << X.Error << " / "
                          << Y.Error;
    EXPECT_EQ(X.Value, Y.Value) << "session " << I;
    EXPECT_EQ(X.Steps, Y.Steps) << "session " << I;
    EXPECT_EQ(X.Error, Y.Error) << "session " << I;
  }
}

TEST(ServeDifferential, WorkerCountDoesNotChangeResults) {
  Manifest M = sweepManifest();
  ServeOptions Serial;
  Serial.Workers = 1;
  ServeReport A = runSessions(M, Serial);
  EXPECT_TRUE(A.AllOk) << "serial baseline must pass";

  ServeOptions Pooled;
  Pooled.Workers = 4;
  ServeReport B = runSessions(M, Pooled);
  expectSameSessionResults(A, B);

  // The aggregate step counters (additive merges) agree too.
  EXPECT_EQ(A.Aggregate.counters().at("machine.steps"),
            B.Aggregate.counters().at("machine.steps"));
}

TEST(ServeDifferential, SharedBaseDoesNotChangeResults) {
  Manifest M = sweepManifest();
  ServeOptions Shared; // default: shared base, 1 worker
  ServeOptions Private;
  Private.SharedBase = false;
  Private.Workers = 4;
  expectSameSessionResults(runSessions(M, Shared),
                           runSessions(M, Private));
}

TEST(ServeDifferential, SessionsRecordCollectPauses) {
  // The pause histogram rides the PhaseMarks bracket, so any session that
  // actually collected has samples; and a session failure is reported, not
  // thrown.
  Manifest M;
  std::string Err;
  ASSERT_TRUE(parseManifest("level=forward gen-seed=12\n"
                            "program=/nonexistent/p.scm\n",
                            "", M, Err))
      << Err;
  ServeReport R = runSessions(M, ServeOptions{});
  ASSERT_EQ(R.Sessions.size(), 2u);
  EXPECT_FALSE(R.AllOk);
  EXPECT_TRUE(R.Sessions[0].Ok) << R.Sessions[0].Error;
  const auto &Hists = R.Sessions[0].Metrics.histograms();
  auto It = Hists.find("machine.collect_pause_ns");
  ASSERT_NE(It, Hists.end());
  if (R.Sessions[0].Metrics.counters().at("machine.only_ops") > 0)
    EXPECT_GT(It->second.count(), 0u);
  EXPECT_FALSE(R.Sessions[1].Ok);
  EXPECT_NE(R.Sessions[1].Error.find("cannot open"), std::string::npos);
}

} // namespace
