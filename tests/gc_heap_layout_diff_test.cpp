//===- tests/gc_heap_layout_diff_test.cpp - Compact vs legacy heap --------===//
//
// The compact tagged-word heap (DESIGN.md §3.12) must be observationally
// identical to the legacy pointer-cell representation: same halt values,
// same step counts, same stuck diagnostics, same checker verdicts — at
// every language level, for every corruption kind the state fuzzer can
// inject, and over a fixed-seed slice of every fuzz mode. Any divergence
// here means the word encode/decode (or a collector/VM fast path built on
// it) changed observable semantics, not just representation.
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzDriver.h"
#include "harness/HeapForge.h"
#include "harness/Pipeline.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

const LanguageLevel AllLevels[] = {LanguageLevel::Base,
                                   LanguageLevel::Forward,
                                   LanguageLevel::Generational};

/// One pipeline run under an explicit heap layout: halt/stuck result plus
/// a full post-run checker verdict.
struct LayoutRun {
  bool CompileOk = false;
  RunResult Run;
  bool CheckOk = false;
  std::string CheckError;
  uint64_t Collections = 0;
};

LayoutRun runPipeline(const char *Src, LanguageLevel Level, HeapLayout L,
                      EvalMode Eval, uint32_t Capacity,
                      uint32_t CheckEveryN, bool TrackTypes = true) {
  PipelineOptions Opts;
  Opts.Level = Level;
  Opts.Machine.Layout = L;
  Opts.Machine.Eval = Eval;
  Opts.Machine.TrackTypes = TrackTypes;
  Opts.Machine.DefaultRegionCapacity = Capacity;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  LayoutRun Out;
  Out.CompileOk = Pipe.compile(Src, Diags);
  if (!Out.CompileOk)
    return Out;
  Out.Run = Pipe.runMachine(20'000'000, CheckEveryN);
  StateCheckResult Res = checkState(Pipe.machine());
  Out.CheckOk = Res.Ok;
  Out.CheckError = Res.Error;
  Out.Collections = Pipe.machine().stats().IfGcTaken;
  return Out;
}

void expectSameRun(const LayoutRun &Legacy, const LayoutRun &Compact,
                   const std::string &Label) {
  ASSERT_EQ(Legacy.CompileOk, Compact.CompileOk) << Label;
  EXPECT_EQ(Legacy.Run.Ok, Compact.Run.Ok) << Label;
  EXPECT_EQ(Legacy.Run.Value, Compact.Run.Value) << Label;
  EXPECT_EQ(Legacy.Run.Error, Compact.Run.Error) << Label;
  EXPECT_EQ(Legacy.Run.Steps, Compact.Run.Steps) << Label;
  EXPECT_EQ(Legacy.CheckOk, Compact.CheckOk) << Label;
  EXPECT_EQ(Legacy.CheckError, Compact.CheckError) << Label;
  EXPECT_EQ(Legacy.Collections, Compact.Collections) << Label;
}

struct DiffProgram {
  const char *Name;
  const char *Src;
  uint32_t Capacity;
  bool ExpectCollect; ///< Allocates enough that collections must fire.
};

const DiffProgram Programs[] = {
    {"chain",
     "(app (app (fix b (n Int) (-> Int Int)"
     "  (if0 n (lam (x Int) x)"
     "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
     " 12) 1000)",
     12, true},
    {"sum",
     "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 24)", 10,
     true},
    {"pairs",
     "(let p (pair 3 4) (let q (pair (fst p) (snd p))"
     "  (* (fst q) (snd q))))",
     8, false},
};

TEST(HeapLayoutDiff, PipelineRunsAgreeAtEveryLevel) {
  for (LanguageLevel Level : AllLevels) {
    for (const DiffProgram &P : Programs) {
      for (EvalMode Eval : {EvalMode::Env, EvalMode::Vm}) {
        std::string Label = std::string(languageLevelName(Level)) + "/" +
                            P.Name + "/" +
                            (Eval == EvalMode::Vm ? "vm" : "env");
        LayoutRun Legacy = runPipeline(P.Src, Level, HeapLayout::Legacy,
                                       Eval, P.Capacity, 0);
        LayoutRun Compact = runPipeline(P.Src, Level, HeapLayout::Compact,
                                        Eval, P.Capacity, 0);
        expectSameRun(Legacy, Compact, Label);
        EXPECT_TRUE(Compact.Run.Ok) << Label << ": " << Compact.Run.Error;
        if (P.ExpectCollect)
          EXPECT_GE(Compact.Collections, 1u)
              << Label << ": no collection fired — differential is vacuous";
      }
    }
  }
}

TEST(HeapLayoutDiff, FastHeapVmRunsAgree) {
  // Vm + TrackTypes off is the configuration that arms the VM's word-direct
  // fast paths (FastHeap in vm/Vm.cpp): word frame slots, word-level
  // put/set, and the aux-word open paths for pairs, sums, and packs. The
  // other tests here keep TrackTypes on, so without this slice the
  // word-direct code would never face the differential at all.
  for (LanguageLevel Level : AllLevels) {
    for (const DiffProgram &P : Programs) {
      std::string Label = std::string(languageLevelName(Level)) + "/" +
                          P.Name + "/vm-fastheap";
      LayoutRun Legacy =
          runPipeline(P.Src, Level, HeapLayout::Legacy, EvalMode::Vm,
                      P.Capacity, 0, /*TrackTypes=*/false);
      LayoutRun Compact =
          runPipeline(P.Src, Level, HeapLayout::Compact, EvalMode::Vm,
                      P.Capacity, 0, /*TrackTypes=*/false);
      expectSameRun(Legacy, Compact, Label);
      EXPECT_TRUE(Compact.Run.Ok) << Label << ": " << Compact.Run.Error;
      if (P.ExpectCollect)
        EXPECT_GE(Compact.Collections, 1u)
            << Label << ": no collection fired — differential is vacuous";
    }
  }
  // The stuck seam too: diagnostics printed from a word-direct frame slot.
  LayoutRun Legacy =
      runPipeline("(fst 7)", LanguageLevel::Base, HeapLayout::Legacy,
                  EvalMode::Vm, 16, 0, /*TrackTypes=*/false);
  LayoutRun Compact =
      runPipeline("(fst 7)", LanguageLevel::Base, HeapLayout::Compact,
                  EvalMode::Vm, 16, 0, /*TrackTypes=*/false);
  if (Legacy.CompileOk) {
    expectSameRun(Legacy, Compact, "stuck/vm-fastheap");
    EXPECT_FALSE(Compact.Run.Ok) << "stuck/vm-fastheap";
  } else {
    EXPECT_EQ(Legacy.CompileOk, Compact.CompileOk) << "stuck/vm-fastheap";
  }
}

TEST(HeapLayoutDiff, PerStepCheckedRunsAgree) {
  // Per-step incremental checks exercise the decode seam under the
  // checker's GcContext scopes on every single step.
  for (LanguageLevel Level : AllLevels) {
    LayoutRun Legacy = runPipeline(Programs[1].Src, Level,
                                   HeapLayout::Legacy, EvalMode::Env,
                                   Programs[1].Capacity, 1);
    LayoutRun Compact = runPipeline(Programs[1].Src, Level,
                                    HeapLayout::Compact, EvalMode::Env,
                                    Programs[1].Capacity, 1);
    expectSameRun(Legacy, Compact,
                  std::string(languageLevelName(Level)) + "/checked");
  }
}

/// Builds a machine + forged heap under \p L, injects one corruption of
/// kind \p K with a fixed-seed Rng, and returns the (mutation description,
/// full verdict, incremental verdict) triple.
struct MutationOutcome {
  bool Applied = false;
  std::string Description;
  bool FullOk = true, IncOk = true;
  std::string FullError, IncError;
};

MutationOutcome runMutation(StateMutationKind K, LanguageLevel Level,
                            HeapLayout L, uint64_t Seed) {
  GcContext C;
  MachineConfig MC;
  MC.Layout = L;
  Machine M(C, Level, MC);
  bool Restrict = Level == LanguageLevel::Forward;
  Address GcAddr{};
  switch (Level) {
  case LanguageLevel::Base:
    GcAddr = installBasicCollector(M).Gc;
    break;
  case LanguageLevel::Forward:
    GcAddr = installForwardCollector(M).Gc;
    break;
  case LanguageLevel::Generational:
    GcAddr = installGenCollector(M).Gc;
    break;
  }
  Region From = M.createRegion("from", 0);
  Region Old = Level == LanguageLevel::Generational
                   ? M.createRegion("old", 0)
                   : From;
  ForgedHeap H = forgeList(M, From, Old, 12);
  Address Fin = installFinisher(M, H.Tag);
  M.start(collectOnceTerm(M, GcAddr, H, From, Old, Fin));

  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = Restrict;
  IncrementalStateCheck Inc(M, IOpts);
  StateCheckOptions FOpts;
  FOpts.CheckCodeRegion = false;
  FOpts.RestrictToReachable = Restrict;
  StateCheckResult Before = Inc.check();
  EXPECT_TRUE(Before.Ok) << Before.Error;

  MutationOutcome Out;
  Rng Rand(Seed);
  std::optional<AppliedMutation> App = applyStateMutation(M, K, Rand, Restrict);
  if (!App)
    return Out;
  Out.Applied = true;
  Out.Description = App->Description;
  StateCheckResult Full = checkState(M, FOpts);
  Out.FullOk = Full.Ok;
  Out.FullError = Full.Error;
  StateCheckResult IncRes = Inc.check();
  Out.IncOk = IncRes.Ok;
  Out.IncError = IncRes.Error;
  return Out;
}

TEST(HeapLayoutDiff, MutationVerdictsAgreeForEveryKind) {
  // All 9 corruption kinds: same seed, same forged heap, both layouts —
  // the applied mutation and both checker verdicts must match byte for
  // byte (the diagnostics embed addresses and printed values, so this is
  // a strong equality).
  for (LanguageLevel Level : AllLevels) {
    for (unsigned KI = 0; KI != NumStateMutationKinds; ++KI) {
      StateMutationKind K = static_cast<StateMutationKind>(KI);
      std::string Label = std::string(languageLevelName(Level)) + "/" +
                          stateMutationName(K);
      MutationOutcome Legacy =
          runMutation(K, Level, HeapLayout::Legacy, 0xFEED + KI);
      MutationOutcome Compact =
          runMutation(K, Level, HeapLayout::Compact, 0xFEED + KI);
      ASSERT_EQ(Legacy.Applied, Compact.Applied) << Label;
      if (!Legacy.Applied)
        continue; // no applicable victim in this forged heap
      EXPECT_EQ(Legacy.Description, Compact.Description) << Label;
      EXPECT_EQ(Legacy.FullOk, Compact.FullOk) << Label;
      EXPECT_EQ(Legacy.FullError, Compact.FullError) << Label;
      EXPECT_EQ(Legacy.IncOk, Compact.IncOk) << Label;
      EXPECT_EQ(Legacy.IncError, Compact.IncError) << Label;
      // And the corruption must actually be caught under both layouts.
      EXPECT_FALSE(Compact.FullOk) << Label;
      EXPECT_FALSE(Compact.IncOk) << Label;
    }
  }
}

void expectSameReport(const FuzzReport &Legacy, const FuzzReport &Compact,
                      const char *Mode) {
  EXPECT_EQ(Legacy.Iterations, Compact.Iterations) << Mode;
  EXPECT_EQ(Legacy.MutationsApplied, Compact.MutationsApplied) << Mode;
  EXPECT_EQ(Legacy.Skipped, Compact.Skipped) << Mode;
  EXPECT_EQ(Legacy.Rejections, Compact.Rejections) << Mode;
  EXPECT_EQ(Legacy.CleanAccepts, Compact.CleanAccepts) << Mode;
  EXPECT_EQ(Legacy.FalseAccepts, Compact.FalseAccepts) << Mode;
  EXPECT_EQ(Legacy.Disagreements, Compact.Disagreements) << Mode;
  EXPECT_EQ(Legacy.InvariantViolations, Compact.InvariantViolations)
      << Mode;
  EXPECT_EQ(Legacy.PerKind, Compact.PerKind) << Mode;
}

TEST(HeapLayoutDiff, FixedSeedFuzzSliceAgrees) {
  // A fixed-seed slice of both fuzz modes that build machines, run under
  // each layout: the per-kind outcome histograms must be identical, and
  // both runs must be clean.
  FuzzOptions Base;
  Base.Seed = 0xD1FF;
  Base.TraceRing = false;

  FuzzOptions StateL = Base, StateC = Base;
  StateL.Iterations = 150;
  StateC.Iterations = 150;
  StateL.Layout = HeapLayout::Legacy;
  StateC.Layout = HeapLayout::Compact;
  FuzzReport RSL = fuzzStates(StateL);
  FuzzReport RSC = fuzzStates(StateC);
  EXPECT_TRUE(RSC.ok()) << RSC.summary("state");
  expectSameReport(RSL, RSC, "state");

  FuzzOptions PipeL = Base, PipeC = Base;
  PipeL.Iterations = 4;
  PipeC.Iterations = 4;
  PipeL.Layout = HeapLayout::Legacy;
  PipeC.Layout = HeapLayout::Compact;
  FuzzReport RPL = fuzzPipeline(PipeL);
  FuzzReport RPC = fuzzPipeline(PipeC);
  EXPECT_TRUE(RPC.ok()) << RPC.summary("pipeline");
  expectSameReport(RPL, RPC, "pipeline");
}

TEST(HeapLayoutDiff, StuckDiagnosticsAgree) {
  // A program that genuinely goes stuck (projection from a non-pair): the
  // stuck text embeds a printed value, so byte equality across layouts
  // checks the decode path feeding diagnostics.
  const char *Src = "(fst 7)";
  for (EvalMode Eval : {EvalMode::Env, EvalMode::Vm}) {
    LayoutRun Legacy = runPipeline(Src, LanguageLevel::Base,
                                   HeapLayout::Legacy, Eval, 16, 0);
    LayoutRun Compact = runPipeline(Src, LanguageLevel::Base,
                                    HeapLayout::Compact, Eval, 16, 0);
    std::string Label =
        std::string("stuck/") + (Eval == EvalMode::Vm ? "vm" : "env");
    if (!Legacy.CompileOk) {
      // The frontend may reject it statically; either way both layouts
      // must land in the same place.
      EXPECT_EQ(Legacy.CompileOk, Compact.CompileOk) << Label;
      continue;
    }
    expectSameRun(Legacy, Compact, Label);
    EXPECT_FALSE(Compact.Run.Ok) << Label;
  }
}

} // namespace
