//===- tests/gc_tag_test.cpp - Tags, kinds, normalization (T2) ------------===//
//
// Exercises Prop 6.1/6.2 territory: tag β-normalization terminates and is
// confluent (checked here as: normalization is idempotent and reduction
// order does not matter for the shapes we build), kinding, and
// alpha-equivalence.
//
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

class TagTest : public ::testing::Test {
protected:
  GcContext C;
};

TEST_F(TagTest, IntIsNormal) {
  const Tag *T = C.tagInt();
  EXPECT_EQ(normalizeTag(C, T), T);
}

TEST_F(TagTest, BetaReduction) {
  // (λt.t × Int) Int  ⇒  Int × Int
  Symbol T = C.intern("t");
  const Tag *Fun = C.tagLam(T, C.tagProd(C.tagVar(T), C.tagInt()));
  const Tag *App = C.tagApp(Fun, C.tagInt());
  const Tag *N = normalizeTag(C, App);
  ASSERT_TRUE(N->is(TagKind::Prod));
  EXPECT_TRUE(N->left()->is(TagKind::Int));
  EXPECT_TRUE(N->right()->is(TagKind::Int));
}

TEST_F(TagTest, NestedBetaNormalizesFully) {
  // ((λf.λx. f x) (λy.y)) Int ⇒ Int   — nested redexes, normal order.
  Symbol F = C.intern("f"), X = C.intern("x"), Y = C.intern("y");
  const Kind *OO = C.omegaToOmega();
  const Tag *Inner = C.tagLam(F, OO,
                              C.tagLam(X, C.tagApp(C.tagVar(F), C.tagVar(X))));
  const Tag *Id = C.tagLam(Y, C.tagVar(Y));
  const Tag *App = C.tagApp(C.tagApp(Inner, Id), C.tagInt());
  EXPECT_TRUE(normalizeTag(C, App)->is(TagKind::Int));
}

TEST_F(TagTest, NormalizationIsIdempotent) {
  Symbol T = C.intern("t");
  const Tag *Fun = C.tagLam(T, C.tagExists(C.intern("u"),
                                           C.tagProd(C.tagVar(T), C.tagInt())));
  const Tag *App = C.tagApp(Fun, C.tagArrow({C.tagInt()}));
  const Tag *N1 = normalizeTag(C, App);
  const Tag *N2 = normalizeTag(C, N1);
  EXPECT_TRUE(alphaEqualTag(N1, N2));
}

TEST_F(TagTest, CaptureAvoidingSubstitution) {
  // (λu. t × u)[u/t] must not capture: result λu'. u × u'.
  Symbol T = C.intern("t"), U = C.intern("u");
  const Tag *Lam = C.tagLam(U, C.tagProd(C.tagVar(T), C.tagVar(U)));
  const Tag *Out = substTag(C, Lam, T, C.tagVar(U));
  ASSERT_TRUE(Out->is(TagKind::Lam));
  // The binder must have been renamed away from `u`.
  EXPECT_NE(Out->var(), U);
  ASSERT_TRUE(Out->body()->is(TagKind::Prod));
  EXPECT_EQ(Out->body()->left()->var(), U);
  EXPECT_EQ(Out->body()->right()->var(), Out->var());
}

TEST_F(TagTest, AlphaEquivalence) {
  Symbol A = C.intern("a"), B = C.intern("b");
  const Tag *LamA = C.tagLam(A, C.tagProd(C.tagVar(A), C.tagInt()));
  const Tag *LamB = C.tagLam(B, C.tagProd(C.tagVar(B), C.tagInt()));
  EXPECT_TRUE(alphaEqualTag(LamA, LamB));
  const Tag *LamFree = C.tagLam(A, C.tagProd(C.tagVar(B), C.tagInt()));
  EXPECT_FALSE(alphaEqualTag(LamA, LamFree));
}

TEST_F(TagTest, AlphaDistinguishesFreeVars) {
  Symbol A = C.intern("a"), B = C.intern("b");
  EXPECT_FALSE(alphaEqualTag(C.tagVar(A), C.tagVar(B)));
  EXPECT_TRUE(alphaEqualTag(C.tagVar(A), C.tagVar(A)));
}

TEST_F(TagTest, KindingBasics) {
  TagEnv Theta;
  EXPECT_TRUE(kindOfTag(C, C.tagInt(), Theta)->isOmega());

  Symbol T = C.intern("t");
  // λt.t : Ω → Ω.
  const Kind *K = kindOfTag(C, C.tagLam(T, C.tagVar(T)), Theta);
  ASSERT_NE(K, nullptr);
  ASSERT_TRUE(K->isArrow());
  EXPECT_TRUE(K->from()->isOmega());
  EXPECT_TRUE(K->to()->isOmega());

  // Unbound variable is ill-kinded.
  EXPECT_EQ(kindOfTag(C, C.tagVar(T), Theta), nullptr);

  // Application of a non-function is ill-kinded.
  EXPECT_EQ(kindOfTag(C, C.tagApp(C.tagInt(), C.tagInt()), Theta), nullptr);

  // ∃t.(t × Int) : Ω.
  const Tag *Ex = C.tagExists(T, C.tagProd(C.tagVar(T), C.tagInt()));
  ASSERT_NE(kindOfTag(C, Ex, Theta), nullptr);
  EXPECT_TRUE(kindOfTag(C, Ex, Theta)->isOmega());
}

TEST_F(TagTest, ArrowTagKinding) {
  TagEnv Theta;
  const Tag *Arr = C.tagArrow({C.tagInt(), C.tagProd(C.tagInt(), C.tagInt())});
  ASSERT_NE(kindOfTag(C, Arr, Theta), nullptr);
  EXPECT_TRUE(kindOfTag(C, Arr, Theta)->isOmega());

  // Arrow over a tag function is ill-kinded (arguments must be Ω).
  Symbol T = C.intern("t");
  const Tag *Bad = C.tagArrow({C.tagLam(T, C.tagVar(T))});
  EXPECT_EQ(kindOfTag(C, Bad, Theta), nullptr);
}

//===----------------------------------------------------------------------===//
// M/C reduction
//===----------------------------------------------------------------------===//

class MTest : public ::testing::Test {
protected:
  GcContext C;
  Region R1 = Region::name(C.intern("nu1"));
  Region R2 = Region::name(C.intern("nu2"));
};

TEST_F(MTest, BaseInt) {
  const Type *T = normalizeType(C, C.typeM(R1, C.tagInt()),
                                LanguageLevel::Base);
  EXPECT_TRUE(T->is(TypeKind::Int));
}

TEST_F(MTest, BasePair) {
  // M_ρ(Int × Int) = (int × int) at ρ.
  const Type *T = normalizeType(
      C, C.typeM(R1, C.tagProd(C.tagInt(), C.tagInt())), LanguageLevel::Base);
  ASSERT_TRUE(T->is(TypeKind::At));
  EXPECT_EQ(T->atRegion(), R1);
  ASSERT_TRUE(T->body()->is(TypeKind::Prod));
  EXPECT_TRUE(T->body()->left()->is(TypeKind::Int));
}

TEST_F(MTest, BaseArrowLivesInCd) {
  // M_ρ(Int → 0) = ∀[][r](M_r(Int)) → 0 at cd.
  const Type *T = normalizeType(C, C.typeM(R1, C.tagArrow({C.tagInt()})),
                                LanguageLevel::Base);
  ASSERT_TRUE(T->is(TypeKind::At));
  EXPECT_EQ(T->atRegion(), C.cd());
  ASSERT_TRUE(T->body()->is(TypeKind::Code));
  EXPECT_EQ(T->body()->regionParams().size(), 1u);
  ASSERT_EQ(T->body()->argTypes().size(), 1u);
  EXPECT_TRUE(T->body()->argTypes()[0]->is(TypeKind::Int));
}

TEST_F(MTest, BaseExists) {
  Symbol T = C.intern("t");
  const Type *Ty = normalizeType(
      C, C.typeM(R1, C.tagExists(T, C.tagProd(C.tagVar(T), C.tagInt()))),
      LanguageLevel::Base);
  ASSERT_TRUE(Ty->is(TypeKind::At));
  ASSERT_TRUE(Ty->body()->is(TypeKind::ExistsTag));
  // Body: M_ρ(t × Int) is stuck on the variable? No: Prod expands, its
  // components are M_ρ(t) (stuck) × int.
  const Type *Body = Ty->body()->body();
  ASSERT_TRUE(Body->is(TypeKind::At));
  ASSERT_TRUE(Body->body()->is(TypeKind::Prod));
  EXPECT_TRUE(Body->body()->left()->is(TypeKind::MApp));
  EXPECT_TRUE(Body->body()->right()->is(TypeKind::Int));
}

TEST_F(MTest, StuckOnVariable) {
  Symbol T = C.intern("t");
  const Type *Ty =
      normalizeType(C, C.typeM(R1, C.tagVar(T)), LanguageLevel::Base);
  EXPECT_TRUE(Ty->is(TypeKind::MApp));
}

TEST_F(MTest, SymmetryNoAccumulation) {
  // §2.2.1: M_{ρ2}(τ) and M_{ρ1}(τ) have the same size — GC does not grow
  // the type.
  const Tag *Tau = C.tagProd(C.tagProd(C.tagInt(), C.tagInt()),
                             C.tagExists(C.intern("t"), C.tagVar(C.intern("t"))));
  const Type *A = normalizeType(C, C.typeM(R1, Tau), LanguageLevel::Base);
  const Type *B = normalizeType(C, C.typeM(R2, Tau), LanguageLevel::Base);
  EXPECT_EQ(typeSize(A), typeSize(B));
}

TEST_F(MTest, ForwardPairHasTagBit) {
  // §7: M_ρ(τ1×τ2) = (left(M × M)) at ρ.
  const Type *T =
      normalizeType(C, C.typeM(R1, C.tagProd(C.tagInt(), C.tagInt())),
                    LanguageLevel::Forward);
  ASSERT_TRUE(T->is(TypeKind::At));
  ASSERT_TRUE(T->body()->is(TypeKind::Left));
  EXPECT_TRUE(T->body()->body()->is(TypeKind::Prod));
}

TEST_F(MTest, ForwardCView) {
  // C_{ρ,ρ'}(τ1×τ2) = (left(C×C) + right(M_{ρ'}(τ1×τ2))) at ρ.
  const Type *T =
      normalizeType(C, C.typeC(R1, R2, C.tagProd(C.tagInt(), C.tagInt())),
                    LanguageLevel::Forward);
  ASSERT_TRUE(T->is(TypeKind::At));
  EXPECT_EQ(T->atRegion(), R1);
  ASSERT_TRUE(T->body()->is(TypeKind::Sum));
  EXPECT_TRUE(T->body()->left()->is(TypeKind::Left));
  ASSERT_TRUE(T->body()->right()->is(TypeKind::Right));
  // Forwarding pointer points into ρ' = R2.
  const Type *Fwd = T->body()->right()->body();
  ASSERT_TRUE(Fwd->is(TypeKind::At));
  EXPECT_EQ(Fwd->atRegion(), R2);
}

TEST_F(MTest, ForwardCodeNeedsNoBit) {
  const Type *M = normalizeType(C, C.typeM(R1, C.tagArrow({C.tagInt()})),
                                LanguageLevel::Forward);
  const Type *Cv = normalizeType(C, C.typeC(R1, R2, C.tagArrow({C.tagInt()})),
                                 LanguageLevel::Forward);
  EXPECT_TRUE(alphaEqualType(M, Cv));
}

TEST_F(MTest, GenerationalPairPacksRegion) {
  // §8: M_{ρy,ρo}(τ1×τ2) = ∃r∈{ρy,ρo}.((M_{r,ρo}×M_{r,ρo}) at r).
  const Type *T = normalizeType(
      C, C.typeM({R1, R2}, C.tagProd(C.tagInt(), C.tagInt())),
      LanguageLevel::Generational);
  ASSERT_TRUE(T->is(TypeKind::ExistsRegion));
  EXPECT_TRUE(T->delta().contains(R1));
  EXPECT_TRUE(T->delta().contains(R2));
  EXPECT_TRUE(T->body()->is(TypeKind::Prod));
}

TEST_F(MTest, GenerationalOldRegionInvariant) {
  // Nested components use M_{r,ρo}: pointers below may live in r or ρo but
  // never mention the young generation by name once r = old.
  Symbol T1 = C.intern("x");
  (void)T1;
  const Tag *Nested =
      C.tagProd(C.tagProd(C.tagInt(), C.tagInt()), C.tagInt());
  const Type *T = normalizeType(C, C.typeM({R1, R2}, Nested),
                                LanguageLevel::Generational);
  ASSERT_TRUE(T->is(TypeKind::ExistsRegion));
  const Type *Inner = T->body()->left();
  ASSERT_TRUE(Inner->is(TypeKind::ExistsRegion));
  // The inner existential's bound is {r, ρo} — the outer r and the old
  // region — not the young region.
  RegionSet D = Inner->delta();
  EXPECT_TRUE(D.contains(R2));
  EXPECT_FALSE(D.contains(R1));
}

TEST_F(MTest, TypeEqualModuloTagReduction) {
  Symbol T = C.intern("t");
  const Tag *Id = C.tagLam(T, C.tagVar(T));
  const Tag *Applied = C.tagApp(Id, C.tagProd(C.tagInt(), C.tagInt()));
  EXPECT_TRUE(typeEqual(C, C.typeM(R1, Applied),
                        C.typeM(R1, C.tagProd(C.tagInt(), C.tagInt())),
                        LanguageLevel::Base));
}

} // namespace
