//===- tests/gc_collector_gen_test.cpp - §8 generational collector --------===//
//
// The λGC-gen minor collector: young objects are promoted to the old
// generation, tracing stops at old-generation references (they are only
// re-packed, never copied), and every step preserves typing.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorGen.h"

#include "gc/Builder.h"
#include "gc/CollectorBasic.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

const Value *runChecked(Machine &M, const Term *E,
                        uint64_t MaxSteps = 200000) {
  M.start(E);
  StateCheckOptions Opts;
  StateCheckResult R0 = checkState(M, Opts);
  EXPECT_TRUE(R0.Ok) << "initial state ill-formed: " << R0.Error;
  Opts.CheckCodeRegion = false;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M.status() != Machine::Status::Running)
      break;
    Machine::Status S = M.step();
    if (S == Machine::Status::Stuck) {
      ADD_FAILURE() << "machine stuck: " << M.stuckReason() << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    StateCheckResult R = checkState(M, Opts);
    if (!R.Ok) {
      ADD_FAILURE() << "preservation violation after step " << I << ": "
                    << R.Error << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    if (S == Machine::Status::Halted)
      return M.haltValue();
  }
  EXPECT_EQ(M.status(), Machine::Status::Halted) << "did not halt";
  return M.haltValue();
}

class GenCollectorTest : public ::testing::Test {
protected:
  GcContext C;

  /// A mutator-view pair value: pack⟨r∈{ry,ro} = W, addr⟩ around a put.
  const Value *mkPair(BlockBuilder &B, Region Ry, Region Ro, Region W,
                      const Tag *T1, const Tag *T2, const Value *V1,
                      const Value *V2) {
    const Value *A = B.put(W, C.valPair(V1, V2));
    Symbol R = C.fresh("r");
    const Type *Body = C.typeProd(C.typeM({Region::var(R), Ro}, T1),
                                  C.typeM({Region::var(R), Ro}, T2));
    return C.valPackRegion(R, RegionSet{Ry, Ro}, W, A, Body);
  }
};

TEST_F(GenCollectorTest, CollectorCertifies) {
  Machine M(C, LanguageLevel::Generational);
  installGenCollector(M);
  DiagEngine Diags;
  EXPECT_TRUE(certifyCodeRegion(M, Diags))
      << "generational collector failed certification:\n"
      << Diags.str();
}

/// Installs mu[][ry,ro](x : M_{ry,ro}(τ)) = ifgc ry (gc[τ][ry,ro](mu,x)) W.
template <typename WorkFn>
Address installMutator(Machine &M, const GenCollectorLib &Lib, const Tag *Tau,
                       WorkFn Work) {
  GcContext &C = M.context();
  Address MuAddr = M.reserveCode("mu");
  CodeBuilder CB(C);
  Region Ry = CB.regionParam("ry");
  Region Ro = CB.regionParam("ro");
  const Value *X = CB.valParam("x", C.typeM({Ry, Ro}, Tau));
  const Term *GcCall = C.termApp(C.valAddr(Lib.Gc), {Tau}, {Ry, Ro},
                                 {C.valAddr(MuAddr), X});
  const Term *Body = C.termIfGc(Ry, GcCall, Work(Ry, Ro, X));
  M.defineCode(MuAddr, CB.build(Body));
  return MuAddr;
}

TEST_F(GenCollectorTest, MinorCollectionStopsAtOldReferences) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 2;
  Machine M(C, LanguageLevel::Generational, Cfg);
  GenCollectorLib Lib = installGenCollector(M);

  // τ = (Int×Int) × (Int×Int): root young, left child OLD, right young.
  const Tag *PairII = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *Tau = C.tagProd(PairII, PairII);

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region Ry, Region Ro, const Value *X) -> const Term * {
        BlockBuilder B(C);
        auto [R, Xp] = B.openRegion(X, "r", "xp");
        (void)R;
        const Value *G = B.get(Xp);
        auto [RL, LP] = B.openRegion(B.proj1(G), "rl", "lp");
        (void)RL;
        auto [RR, RP] = B.openRegion(B.proj2(G), "rr", "rp");
        (void)RR;
        const Value *GL = B.get(LP);
        const Value *GR = B.get(RP);
        const Value *S1 = B.prim(PrimOp::Add, B.proj1(GL), B.proj2(GL));
        const Value *S2 = B.prim(PrimOp::Add, B.proj1(GR), B.proj2(GR));
        const Value *S = B.prim(PrimOp::Add, S1, S2);
        return B.finish(C.termHalt(S));
      });

  BlockBuilder B(C);
  Region Ry = B.letRegion("ry");
  Region Ro = B.letRegion("ro");
  // Old child (as if promoted earlier).
  const Value *OldChild =
      mkPair(B, Ry, Ro, Ro, C.tagInt(), C.tagInt(), C.valInt(10),
             C.valInt(20));
  // Young child and young root; young region (capacity 2) is now full.
  const Value *YoungChild =
      mkPair(B, Ry, Ro, Ry, C.tagInt(), C.tagInt(), C.valInt(1), C.valInt(2));
  const Value *Root = mkPair(B, Ry, Ro, Ry, PairII, PairII, OldChild,
                             YoungChild);
  const Term *E =
      B.finish(C.termApp(C.valAddr(MuAddr), {}, {Ry, Ro}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 10 + 20 + 1 + 2);
  EXPECT_EQ(M.stats().IfGcTaken, 1u);

  // The old region received exactly the two young live objects (root +
  // young child); the old child was NOT copied.
  size_t OldCells = 0;
  for (const auto &[S, R] : M.memory().Regions)
    if (C.name(S).substr(0, 2) == "ro")
      OldCells = R.Cells.size();
  EXPECT_EQ(OldCells, 3u); // 1 pre-existing old + 2 promoted
  // The young generation was reclaimed and re-created empty.
  EXPECT_EQ(M.stats().RegionsReclaimed, 2u); // old young gen + r3
}

TEST_F(GenCollectorTest, ExistentialPromotion) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 2;
  Machine M(C, LanguageLevel::Generational, Cfg);
  GenCollectorLib Lib = installGenCollector(M);

  // τ = ∃u.(u × Int), all young.
  Symbol U = C.fresh("u");
  const Tag *ExTag = C.tagExists(U, C.tagProd(C.tagVar(U), C.tagInt()));

  Address MuAddr = installMutator(
      M, Lib, ExTag,
      [&](Region Ry, Region Ro, const Value *X) -> const Term * {
        BlockBuilder B(C);
        auto [R, Xp] = B.openRegion(X, "r", "xp");
        (void)R;
        const Value *G = B.get(Xp);
        auto [T, Y] = B.openTag(G, "t", "y");
        (void)T;
        auto [R2, YP] = B.openRegion(Y, "r2", "yp");
        (void)R2;
        const Value *GY = B.get(YP);
        return B.finish(C.termHalt(B.proj2(GY)));
      });

  BlockBuilder B(C);
  Region Ry = B.letRegion("ry");
  Region Ro = B.letRegion("ro");
  const Value *Inner = mkPair(B, Ry, Ro, Ry, C.tagInt(), C.tagInt(),
                              C.valInt(4), C.valInt(55));
  // pack⟨u = Int×Int... the witness tag is Int here: inner : M(u × Int)
  // with u := Int is a pair (M(Int), M(Int))? No — witness Int, payload is
  // the region-packaged pair of (Int, Int) seen at tag u × Int with u=Int.
  Symbol PV = C.fresh("u");
  const Value *PkInner = C.valPackTag(
      PV, C.tagInt(), Inner,
      C.typeM({Ry, Ro}, C.tagProd(C.tagVar(PV), C.tagInt())));
  const Value *ExCell = B.put(Ry, PkInner);
  Symbol RV = C.fresh("r");
  Symbol UV = C.fresh("u");
  const Type *ExBody = C.typeExistsTag(
      UV, C.omega(),
      C.typeM({Region::var(RV), Ro},
              C.tagProd(C.tagVar(UV), C.tagInt())));
  const Value *Root =
      C.valPackRegion(RV, RegionSet{Ry, Ro}, Ry, ExCell, ExBody);
  const Term *E =
      B.finish(C.termApp(C.valAddr(MuAddr), {}, {Ry, Ro}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 55);
  EXPECT_EQ(M.stats().IfGcTaken, 1u);
}

TEST_F(GenCollectorTest, FullCollectorCertifies) {
  Machine M(C, LanguageLevel::Generational);
  installGenFullCollector(M);
  DiagEngine Diags;
  EXPECT_TRUE(certifyCodeRegion(M, Diags))
      << "major (full) collector failed certification:\n"
      << Diags.str();
}

TEST_F(GenCollectorTest, FullCollectionCompactsBothGenerations) {
  // Old pair + young root referencing it; a full collection moves BOTH
  // into a fresh region and drops the garbage in each generation.
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 64;
  Machine M(C, LanguageLevel::Generational, Cfg);
  GenCollectorLib Lib = installGenFullCollector(M);

  const Tag *PairII = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *Tau = C.tagProd(PairII, PairII);

  Address MuAddr = M.reserveCode("mu");
  {
    CodeBuilder CB(C);
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    const Value *X = CB.valParam("x", C.typeM({Ry, Ro}, Tau));
    // Work: sum all four ints of the two child pairs.
    BlockBuilder B(C);
    auto [R, Xp] = B.openRegion(X, "r", "xp");
    (void)R;
    const Value *G = B.get(Xp);
    auto [RL, LP] = B.openRegion(B.proj1(G), "rl", "lp");
    (void)RL;
    auto [RR, RP] = B.openRegion(B.proj2(G), "rr", "rp");
    (void)RR;
    const Value *GL = B.get(LP);
    const Value *GR = B.get(RP);
    const Value *S1 = B.prim(PrimOp::Add, B.proj1(GL), B.proj2(GL));
    const Value *S2 = B.prim(PrimOp::Add, B.proj1(GR), B.proj2(GR));
    const Value *S = B.prim(PrimOp::Add, S1, S2);
    M.defineCode(MuAddr, CB.build(B.finish(C.termHalt(S))));
  }

  BlockBuilder B(C);
  Region Ry = B.letRegion("ry");
  Region Ro = B.letRegion("ro");
  const Value *OldChild =
      mkPair(B, Ry, Ro, Ro, C.tagInt(), C.tagInt(), C.valInt(10),
             C.valInt(20));
  const Value *YoungChild =
      mkPair(B, Ry, Ro, Ry, C.tagInt(), C.tagInt(), C.valInt(1), C.valInt(2));
  // Garbage in both generations.
  (void)B.put(Ro, C.valPair(C.valInt(0), C.valInt(0)));
  (void)B.put(Ry, C.valPair(C.valInt(0), C.valInt(0)));
  const Value *Root =
      mkPair(B, Ry, Ro, Ry, PairII, PairII, OldChild, YoungChild);
  // Call the full collector directly, with mu as the return function.
  const Term *E = B.finish(C.termApp(C.valAddr(Lib.Gc), {Tau}, {Ry, Ro},
                                     {C.valAddr(MuAddr), Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 10 + 20 + 1 + 2);
  // Everything live (3 cells) was compacted into ONE region; both old
  // generations (plus r3) were reclaimed.
  EXPECT_EQ(M.memory().liveDataCells(), 3u);
  EXPECT_GE(M.stats().RegionsReclaimed, 3u);
}

} // namespace
