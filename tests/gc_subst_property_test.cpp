//===- tests/gc_subst_property_test.cpp - Substitution/normalization -------===//
//
// Property sweeps over randomly generated tags and types (T2 territory):
// normalization is idempotent and substitution-stable, M is symmetric in
// its region index (§2.2.1), the Forward M always provides the tag bit,
// and C agrees with M exactly on non-pointer tags.
//
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

/// Random well-kinded tags of kind Ω; binders may shadow.
const Tag *randomTag(GcContext &C, Rng &R, unsigned Depth,
                     std::vector<Symbol> &Scope) {
  if (Depth == 0 || R.chance(1, 3)) {
    if (!Scope.empty() && R.chance(1, 2))
      return C.tagVar(Scope[R.below(Scope.size())]);
    return C.tagInt();
  }
  switch (R.below(4)) {
  case 0:
    return C.tagProd(randomTag(C, R, Depth - 1, Scope),
                     randomTag(C, R, Depth - 1, Scope));
  case 1: {
    std::vector<const Tag *> Args;
    size_t N = 1 + R.below(2);
    for (size_t I = 0; I != N; ++I)
      Args.push_back(randomTag(C, R, Depth - 1, Scope));
    return C.tagArrow(std::move(Args));
  }
  case 2: {
    Symbol B = C.fresh("t");
    Scope.push_back(B);
    const Tag *Body = randomTag(C, R, Depth - 1, Scope);
    Scope.pop_back();
    return C.tagExists(B, Body);
  }
  default: {
    // A β-redex (λt.body) arg — gives the normalizer real work.
    Symbol B = C.fresh("t");
    Scope.push_back(B);
    const Tag *Body = randomTag(C, R, Depth - 1, Scope);
    Scope.pop_back();
    const Tag *Arg = randomTag(C, R, Depth - 1, Scope);
    return C.tagApp(C.tagLam(B, Body), Arg);
  }
  }
}

class TagSweep : public ::testing::TestWithParam<int> {};

TEST_P(TagSweep, NormalizationIdempotentAndClosedUnderSubst) {
  GcContext C;
  Rng R(0xABCD + GetParam() * 131);
  std::vector<Symbol> Scope;
  Symbol Free = C.fresh("f");
  Scope.push_back(Free);
  const Tag *T = randomTag(C, R, 5, Scope);

  const Tag *N1 = normalizeTag(C, T);
  const Tag *N2 = normalizeTag(C, N1);
  EXPECT_TRUE(alphaEqualTag(N1, N2)) << printTag(C, T);

  // Kinds are preserved by normalization.
  TagEnv Theta;
  Theta[Free] = C.omega();
  const Kind *K0 = kindOfTag(C, T, Theta);
  if (K0) {
    const Kind *K1 = kindOfTag(C, N1, Theta);
    ASSERT_NE(K1, nullptr);
    EXPECT_TRUE(Kind::equal(K0, K1));
  }

  // Substitution commutes with normalization on the free variable:
  // norm(T[τ/f]) == norm(norm(T)[τ/f]).
  const Tag *Rep = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *A = normalizeTag(C, substTag(C, T, Free, Rep));
  const Tag *B = normalizeTag(C, substTag(C, N1, Free, Rep));
  EXPECT_TRUE(alphaEqualTag(A, B))
      << printTag(C, A) << "\nvs\n" << printTag(C, B);
}

TEST_P(TagSweep, MIsSymmetricInItsRegion) {
  // §2.2.1: the whole point of M's design — M_ρ1(τ) and M_ρ2(τ) are the
  // same type up to the region name, so collection never grows types.
  GcContext C;
  Rng R(0x5EED + GetParam() * 997);
  std::vector<Symbol> Scope;
  const Tag *T = randomTag(C, R, 4, Scope);
  Region R1 = Region::name(C.fresh("nu"));
  Region R2 = Region::name(C.fresh("nu"));
  const Type *M1 = normalizeType(C, C.typeM(R1, T), LanguageLevel::Base);
  const Type *M2 = normalizeType(C, C.typeM(R2, T), LanguageLevel::Base);
  EXPECT_EQ(typeSize(M1), typeSize(M2));
  // Renaming ρ1 to ρ2 in M1 yields exactly M2 — checked via a fresh
  // region substitution through a region *variable* intermediary.
  Symbol RV = C.fresh("r");
  const Type *Mv =
      normalizeType(C, C.typeM(Region::var(RV), T), LanguageLevel::Base);
  EXPECT_TRUE(alphaEqualType(substRegionInType(C, Mv, RV, R1), M1));
  EXPECT_TRUE(alphaEqualType(substRegionInType(C, Mv, RV, R2), M2));
}

TEST_P(TagSweep, ForwardMSuppliesTheTagBit) {
  // §7: every Forward-level heap object type is left(...) at ρ — the
  // mutator must reserve the forwarding bit on pairs and existentials.
  GcContext C;
  Rng R(0xF0 + GetParam() * 31);
  std::vector<Symbol> Scope;
  const Tag *T = normalizeTag(C, randomTag(C, R, 4, Scope));
  Region Nu = Region::name(C.fresh("nu"));
  const Type *M = normalizeType(C, C.typeM(Nu, T), LanguageLevel::Forward);
  if (T->is(TagKind::Prod) || T->is(TagKind::Exists)) {
    ASSERT_TRUE(M->is(TypeKind::At));
    EXPECT_TRUE(M->body()->is(TypeKind::Left));
  }
  if (T->is(TagKind::Int)) {
    EXPECT_TRUE(M->is(TypeKind::Int));
  }
}

TEST_P(TagSweep, CEqualsMOnNonPointers) {
  GcContext C;
  Rng R(0xCA + GetParam() * 7);
  std::vector<Symbol> Scope;
  const Tag *T = normalizeTag(C, randomTag(C, R, 3, Scope));
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  const Type *M = normalizeType(C, C.typeM(R1, T), LanguageLevel::Forward);
  const Type *Cv = normalizeType(C, C.typeC(R1, R2, T),
                                 LanguageLevel::Forward);
  if (T->is(TagKind::Int) || T->is(TagKind::Arrow)) {
    EXPECT_TRUE(alphaEqualType(M, Cv));
  } else if (T->is(TagKind::Prod) || T->is(TagKind::Exists)) {
    // Pointers gain the forwarding alternative: C = (left .. + right ..).
    ASSERT_TRUE(Cv->is(TypeKind::At));
    EXPECT_TRUE(Cv->body()->is(TypeKind::Sum));
    // And its right branch is exactly the to-space M view.
    const Type *Fwd = Cv->body()->right()->body();
    const Type *MTo = normalizeType(C, C.typeM(R2, T),
                                    LanguageLevel::Forward);
    EXPECT_TRUE(alphaEqualType(Fwd, MTo));
  }
}

TEST_P(TagSweep, GenerationalMNestsTheOldBound) {
  GcContext C;
  Rng R(0x9E + GetParam() * 13);
  std::vector<Symbol> Scope;
  const Tag *T = normalizeTag(C, randomTag(C, R, 3, Scope));
  if (!T->is(TagKind::Prod) && !T->is(TagKind::Exists))
    return;
  Region Ry = Region::name(C.fresh("ry"));
  Region Ro = Region::name(C.fresh("ro"));
  const Type *M = normalizeType(C, C.typeM({Ry, Ro}, T),
                                LanguageLevel::Generational);
  ASSERT_TRUE(M->is(TypeKind::ExistsRegion));
  EXPECT_TRUE(M->delta().contains(Ry));
  EXPECT_TRUE(M->delta().contains(Ro));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TagSweep, ::testing::Range(0, 25));

//===----------------------------------------------------------------------===//
// Targeted substitution regressions
//===----------------------------------------------------------------------===//

TEST(SubstRegression, SimultaneousSubstitutionIsNotSequential) {
  // [a↦b, b↦a] must swap, not collapse.
  GcContext C;
  Symbol A = C.fresh("a"), B = C.fresh("b");
  const Tag *T = C.tagProd(C.tagVar(A), C.tagVar(B));
  Subst S;
  S.Tags[A] = C.tagVar(B);
  S.Tags[B] = C.tagVar(A);
  const Tag *Out = applySubst(C, T, S);
  EXPECT_EQ(Out->left()->var(), B);
  EXPECT_EQ(Out->right()->var(), A);
}

TEST(SubstRegression, ShadowedBinderBlocksSubstitution) {
  // (∃a. a × f)[g/a] must keep the bound a intact.
  GcContext C;
  Symbol A = C.fresh("a"), F = C.fresh("f");
  const Tag *T = C.tagExists(A, C.tagProd(C.tagVar(A), C.tagVar(F)));
  const Tag *Out = substTag(C, T, A, C.tagInt());
  ASSERT_TRUE(Out->is(TagKind::Exists));
  ASSERT_TRUE(Out->body()->is(TagKind::Prod));
  EXPECT_EQ(Out->body()->left()->var(), Out->var());
  EXPECT_EQ(Out->body()->right()->var(), F);
}

TEST(SubstRegression, RegionSubstitutionReachesDeltaSets) {
  GcContext C;
  Symbol Rv = C.fresh("r");
  Symbol Al = C.fresh("a");
  Region Nu = Region::name(C.fresh("nu"));
  const Type *T = C.typeExistsTyVar(Al, RegionSet{Region::var(Rv)},
                                    C.typeVar(Al));
  const Type *Out = substRegionInType(C, T, Rv, Nu);
  EXPECT_TRUE(Out->delta().contains(Nu));
  EXPECT_FALSE(Out->delta().contains(Region::var(Rv)));
}

TEST(SubstRegression, ValueSubstitutionAvoidsTermCapture) {
  // (let x = 1 in halt y)[x/y]: the free x in the replacement must not be
  // captured by the let binder.
  GcContext C;
  Symbol X = C.fresh("x"), Y = C.fresh("y");
  const Term *T =
      C.termLet(X, C.opVal(C.valInt(1)), C.termHalt(C.valVar(Y)));
  Subst S;
  S.Vals[Y] = C.valVar(X);
  const Term *Out = applySubst(C, T, S);
  // The binder must have been renamed away from x.
  EXPECT_NE(Out->binderVar(), X);
  EXPECT_TRUE(Out->sub1()->scrutinee()->is(ValueKind::Var));
  EXPECT_EQ(Out->sub1()->scrutinee()->var(), X);
}

TEST(SubstRegression, EmptySubstitutionIsIdentity) {
  GcContext C;
  const Term *T = C.termHalt(C.valInt(1));
  Subst S;
  EXPECT_EQ(applySubst(C, T, S), T);
}

TEST(SubstRegression, TermSizeMetricsCountNodes) {
  GcContext C;
  const Term *T = C.termLet(C.fresh("x"),
                            C.opVal(C.valPair(C.valInt(1), C.valInt(2))),
                            C.termHalt(C.valInt(0)));
  EXPECT_EQ(termSize(T), 1u + 3u + 2u); // let + pair(3) + halt(2)
}

} // namespace
