//===- tests/gc_typecheck_test.cpp - λGC static semantics unit tests ------===//
//
// Positive and negative coverage of the Fig 6 / Fig 8 / Fig 10 rules that
// the collector tests exercise only incidentally: region scoping, the
// `only` restriction, sum subsumption, widen's draconian environment,
// ifreg refinement, and the generational width subtyping.
//
//===----------------------------------------------------------------------===//

#include "gc/Builder.h"
#include "gc/TypeCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

struct CheckTest : ::testing::Test {
  GcContext C;
  DiagEngine Diags;
  MemoryType Psi;

  CheckTest() { Psi.addRegion(C.cd().sym()); }

  CheckEnv envWith(std::initializer_list<Region> Delta) {
    CheckEnv E;
    E.Psi.M = &Psi;
    E.Psi.Cd = C.cd().sym();
    for (Region R : Delta) {
      E.Delta.insert(R);
      if (R.isName()) {
        Psi.addRegion(R.sym());
      }
    }
    return E;
  }

  bool checks(LanguageLevel L, const Term *T, const CheckEnv &E) {
    Diags.clear();
    TypeChecker Ck(C, L, Diags);
    return Ck.checkTerm(T, E);
  }
};

//===----------------------------------------------------------------------===//
// Region scoping
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, PutOutsideDeltaRejected) {
  Region R = Region::name(C.fresh("nu"));
  Region Other = Region::name(C.fresh("mu"));
  CheckEnv E = envWith({R});
  const Term *Good = C.termLet(C.fresh("x"), C.opPut(R, C.valInt(1)),
                               C.termHalt(C.valInt(0)));
  EXPECT_TRUE(checks(LanguageLevel::Base, Good, E)) << Diags.str();
  const Term *Bad = C.termLet(C.fresh("x"), C.opPut(Other, C.valInt(1)),
                              C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Base, Bad, E));
}

TEST_F(CheckTest, IfgcRegionMustBeInDelta) {
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({});
  const Term *Bad = C.termIfGc(R, C.termHalt(C.valInt(0)),
                               C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Base, Bad, E));
}

TEST_F(CheckTest, OnlyRestrictsGamma) {
  // only {r2} must drop a variable whose type lives at r1.
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  CheckEnv E = envWith({R1, R2});
  Symbol X = C.fresh("x");
  E.Gamma[X] = C.typeAt(C.typeInt(), R1);
  const Term *UseX = C.termLet(C.fresh("g"), C.opGet(C.valVar(X)),
                               C.termHalt(C.valInt(0)));
  EXPECT_TRUE(checks(LanguageLevel::Base, UseX, E)) << Diags.str();
  const Term *Bad = C.termOnly(RegionSet{R2}, UseX);
  EXPECT_FALSE(checks(LanguageLevel::Base, Bad, E))
      << "x : int at r1 must not survive only {r2}";
  const Term *Good = C.termOnly(RegionSet{R1}, UseX);
  EXPECT_TRUE(checks(LanguageLevel::Base, Good, E)) << Diags.str();
}

TEST_F(CheckTest, OnlyKeepSetMustBeInScope) {
  Region R1 = Region::name(C.fresh("nu1"));
  Region Unknown = Region::name(C.fresh("zz"));
  CheckEnv E = envWith({R1});
  const Term *Bad =
      C.termOnly(RegionSet{Unknown}, C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Base, Bad, E));
}

TEST_F(CheckTest, CodeIsRegionClosed) {
  // λ[][](x : int at ν).halt 0 — code body cannot mention an outer region.
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  Symbol X = C.fresh("x");
  const Value *BadCode = C.valCode({}, {}, {}, {X},
                                   {C.typeAt(C.typeInt(), R)},
                                   C.termHalt(C.valInt(0)));
  Diags.clear();
  TypeChecker Ck(C, LanguageLevel::Base, Diags);
  EXPECT_EQ(Ck.inferValue(BadCode, E), nullptr)
      << "code parameter typed at an outer region must be rejected";
}

//===----------------------------------------------------------------------===//
// Level gating
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, ForwardConstructsRejectedAtBase) {
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  Symbol X = C.fresh("x");
  const Term *Strip =
      C.termLet(X, C.opStrip(C.valInl(C.valInt(1))), C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Base, Strip, E));
  EXPECT_TRUE(checks(LanguageLevel::Forward, Strip, E)) << Diags.str();
}

TEST_F(CheckTest, GenConstructsRejectedAtForward) {
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  const Term *IfReg = C.termIfReg(R, R, C.termHalt(C.valInt(0)),
                                  C.termHalt(C.valInt(1)));
  EXPECT_FALSE(checks(LanguageLevel::Forward, IfReg, E));
  EXPECT_TRUE(checks(LanguageLevel::Generational, IfReg, E)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Sum subsumption (Fig 8)
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, SumSubsumption) {
  Diags.clear();
  TypeChecker Ck(C, LanguageLevel::Forward, Diags);
  CheckEnv E = envWith({});
  const Type *L = C.typeLeft(C.typeInt());
  const Type *R = C.typeRight(C.typeInt());
  const Type *Sum = C.typeSum(L, R);
  EXPECT_TRUE(Ck.checkValue(C.valInl(C.valInt(1)), Sum, E)) << Diags.str();
  EXPECT_TRUE(Ck.checkValue(C.valInr(C.valInt(2)), Sum, E)) << Diags.str();
  EXPECT_FALSE(Ck.checkValue(C.valInt(3), Sum, E));
  EXPECT_TRUE(Ck.subtypeOf(L, Sum));
  EXPECT_TRUE(Ck.subtypeOf(Sum, Sum));
  EXPECT_FALSE(Ck.subtypeOf(Sum, L));
  // Nested: a pair with a sum component checks structurally.
  const Type *PairTy = C.typeProd(Sum, C.typeInt());
  EXPECT_TRUE(Ck.checkValue(
      C.valPair(C.valInl(C.valInt(1)), C.valInt(9)), PairTy, E))
      << Diags.str();
}

TEST_F(CheckTest, SetRequiresCellCompatibleSource) {
  // set x := v needs v : cell type (with subsumption).
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  Symbol X = C.fresh("x");
  const Type *Cell =
      C.typeSum(C.typeLeft(C.typeInt()), C.typeRight(C.typeInt()));
  E.Gamma[X] = C.typeAt(Cell, R);
  const Term *Good = C.termSet(C.valVar(X), C.valInr(C.valInt(1)),
                               C.termHalt(C.valInt(0)));
  EXPECT_TRUE(checks(LanguageLevel::Forward, Good, E)) << Diags.str();
  const Term *Bad = C.termSet(C.valVar(X), C.valInt(1),
                              C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Forward, Bad, E));
}

//===----------------------------------------------------------------------===//
// widen (Fig 8): the body sees only x, cd, and the two regions
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, WidenDropsGamma) {
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  CheckEnv E = envWith({R1, R2});
  Symbol Y = C.fresh("y");
  E.Gamma[Y] = C.typeInt();

  const Tag *Tau = C.tagProd(C.tagInt(), C.tagInt());
  Symbol V = C.fresh("v");
  E.Gamma[V] = normalizeType(C, C.typeM(R1, Tau), LanguageLevel::Forward);

  Symbol X = C.fresh("w");
  // Bad: the widen body uses y, which the rule removes from scope.
  const Term *BadBody = C.termHalt(C.valVar(Y));
  const Term *Bad = C.termLetWiden(X, R2, Tau, C.valVar(V), BadBody);
  EXPECT_FALSE(checks(LanguageLevel::Forward, Bad, E))
      << "widen body must not see outer term variables";
  // Good: use only x.
  BlockBuilder B(C);
  const Value *G = B.get(C.valVar(X));
  Symbol W = C.fresh("u");
  const Term *GoodBody = B.finish(C.termIfLeft(
      W, G, C.termHalt(C.valInt(0)), C.termHalt(C.valInt(1))));
  const Term *Good = C.termLetWiden(X, R2, Tau, C.valVar(V), GoodBody);
  EXPECT_TRUE(checks(LanguageLevel::Forward, Good, E)) << Diags.str();
}

TEST_F(CheckTest, WidenArgumentMustBeMView) {
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  CheckEnv E = envWith({R1, R2});
  const Tag *Tau = C.tagProd(C.tagInt(), C.tagInt());
  Symbol X = C.fresh("w");
  // An int is not M_ρ(τ1×τ2).
  const Term *Bad = C.termLetWiden(X, R2, Tau, C.valInt(3),
                                   C.termHalt(C.valInt(0)));
  EXPECT_FALSE(checks(LanguageLevel::Forward, Bad, E));
}

//===----------------------------------------------------------------------===//
// Generational subtyping and ifreg refinement
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, GenMWidthSubtyping) {
  Diags.clear();
  TypeChecker Ck(C, LanguageLevel::Generational, Diags);
  Region Ry = Region::name(C.fresh("ry"));
  Region Ro = Region::name(C.fresh("ro"));
  CheckEnv E = envWith({Ry, Ro});
  Symbol T = C.fresh("t");
  E.Theta[T] = C.omega();
  const Type *OldOnly = C.typeM({Ro, Ro}, C.tagVar(T));
  const Type *Mixed = C.typeM({Ry, Ro}, C.tagVar(T));
  EXPECT_TRUE(Ck.subtypeOf(OldOnly, Mixed, E));
  EXPECT_FALSE(Ck.subtypeOf(Mixed, OldOnly, E));
  // Opened region variable with recorded bound.
  Symbol Rv = C.fresh("r");
  E.Delta.insert(Region::var(Rv));
  E.RegionBounds[Rv] = RegionSet{Ry, Ro};
  const Type *ViaVar = C.typeM({Region::var(Rv), Ro}, C.tagVar(T));
  EXPECT_TRUE(Ck.subtypeOf(ViaVar, Mixed, E));
  // Without the bound the relation must not hold.
  CheckEnv E2 = E;
  E2.RegionBounds.clear();
  EXPECT_FALSE(Ck.subtypeOf(ViaVar, Mixed, E2));
}

TEST_F(CheckTest, RegionExistentialWidthSubtyping) {
  Diags.clear();
  TypeChecker Ck(C, LanguageLevel::Generational, Diags);
  Region Ry = Region::name(C.fresh("ry"));
  Region Ro = Region::name(C.fresh("ro"));
  CheckEnv E = envWith({Ry, Ro});
  Symbol R1 = C.fresh("r"), R2 = C.fresh("r");
  const Type *Narrow = C.typeExistsRegion(
      R1, RegionSet{Ro}, C.typeProd(C.typeInt(), C.typeInt()));
  const Type *Wide = C.typeExistsRegion(
      R2, RegionSet{Ry, Ro}, C.typeProd(C.typeInt(), C.typeInt()));
  EXPECT_TRUE(Ck.subtypeOf(Narrow, Wide, E));
  EXPECT_FALSE(Ck.subtypeOf(Wide, Narrow, E));
}

TEST_F(CheckTest, IfregRefinesVarAgainstName) {
  // After ifreg (r = ν) the then-branch may use r as ν.
  Region Nu = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({Nu});
  Symbol Rv = C.fresh("r");
  Region R = Region::var(Rv);
  E.Delta.insert(R);
  Symbol X = C.fresh("x");
  E.Gamma[X] = C.typeAt(C.typeInt(), R);
  // put into ν is fine in both branches; but `get x` then `put[ν]` the
  // result... keep it simple: the then-branch returns through x typed at
  // r = ν via a get (allowed anywhere) — use a stronger test: put[r]
  // appears in the then-branch only after refinement makes r = ν.
  const Term *Then = C.termLet(C.fresh("y"), C.opPut(R, C.valInt(1)),
                               C.termHalt(C.valInt(0)));
  const Term *T = C.termIfReg(R, Nu, Then, C.termHalt(C.valInt(0)));
  EXPECT_TRUE(checks(LanguageLevel::Generational, T, E)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Typecase refinement
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, TypecaseRefinesVariableInGamma) {
  // x : M_ν(t); in the Int arm x may be used as an int.
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  Symbol T = C.fresh("t");
  E.Theta[T] = C.omega();
  Symbol X = C.fresh("x");
  E.Gamma[X] = C.typeM(R, C.tagVar(T));

  const Term *IntArm = C.termHalt(C.valVar(X)); // needs x : int
  const Term *Other = C.termHalt(C.valInt(0));
  Symbol T1 = C.fresh("t1"), T2 = C.fresh("t2"), Te = C.fresh("te");
  const Term *Tc = C.termTypecase(C.tagVar(T), IntArm, Other, T1, T2, Other,
                                  Te, Other);
  EXPECT_TRUE(checks(LanguageLevel::Base, Tc, E)) << Diags.str();

  // Without the refinement the same term must fail: scrutinize a
  // *different* variable.
  Symbol U = C.fresh("u");
  E.Theta[U] = C.omega();
  const Term *Bad = C.termTypecase(C.tagVar(U), IntArm, Other, T1, T2, Other,
                                   Te, Other);
  EXPECT_FALSE(checks(LanguageLevel::Base, Bad, E));
}

TEST_F(CheckTest, TypecaseProdArmSeesComponents) {
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  Symbol T = C.fresh("t");
  E.Theta[T] = C.omega();
  Symbol X = C.fresh("x");
  E.Gamma[X] = C.typeM(R, C.tagVar(T));

  Symbol T1 = C.fresh("t1"), T2 = C.fresh("t2"), Te = C.fresh("te");
  // In the product arm, x : M_ν(t1×t2) = (M(t1) × M(t2)) at ν: get+proj ok.
  BlockBuilder B(C);
  const Value *G = B.get(C.valVar(X));
  (void)B.proj1(G);
  const Term *ProdArm = B.finish(C.termHalt(C.valInt(0)));
  const Term *Other = C.termHalt(C.valInt(0));
  const Term *Tc = C.termTypecase(C.tagVar(T), Other, Other, T1, T2, ProdArm,
                                  Te, Other);
  EXPECT_TRUE(checks(LanguageLevel::Base, Tc, E)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Application rules
//===----------------------------------------------------------------------===//

TEST_F(CheckTest, AppArityAndKindChecked) {
  Diags.clear();
  TypeChecker Ck(C, LanguageLevel::Base, Diags);
  Region R = Region::name(C.fresh("nu"));
  CheckEnv E = envWith({R});
  // f : ∀[t:Ω][r](int) → 0 at cd.
  Symbol F = C.fresh("f");
  Symbol Tp = C.fresh("t"), Rp = C.fresh("r");
  E.Gamma[F] = C.typeAt(
      C.typeCode({Tp}, {C.omega()}, {Rp}, {C.typeInt()}), C.cd());

  const Term *Good = C.termApp(C.valVar(F), {C.tagInt()}, {R},
                               {C.valInt(1)});
  EXPECT_TRUE(Ck.checkTerm(Good, E)) << Diags.str();
  // Wrong tag kind.
  Symbol U = C.fresh("u");
  const Term *BadKind = C.termApp(C.valVar(F), {C.tagLam(U, C.tagVar(U))},
                                  {R}, {C.valInt(1)});
  EXPECT_FALSE(Ck.checkTerm(BadKind, E));
  // Region not in Δ.
  Region Other = Region::name(C.fresh("mu"));
  const Term *BadRegion = C.termApp(C.valVar(F), {C.tagInt()}, {Other},
                                    {C.valInt(1)});
  EXPECT_FALSE(Ck.checkTerm(BadRegion, E));
  // Wrong argument type.
  const Term *BadArg = C.termApp(C.valVar(F), {C.tagInt()}, {R},
                                 {C.valPair(C.valInt(1), C.valInt(2))});
  EXPECT_FALSE(Ck.checkTerm(BadArg, E));
  // Arity.
  const Term *BadArity = C.termApp(C.valVar(F), {}, {R}, {C.valInt(1)});
  EXPECT_FALSE(Ck.checkTerm(BadArity, E));
}

TEST_F(CheckTest, HaltRequiresInt) {
  CheckEnv E = envWith({});
  EXPECT_TRUE(checks(LanguageLevel::Base, C.termHalt(C.valInt(1)), E));
  EXPECT_FALSE(checks(LanguageLevel::Base,
                      C.termHalt(C.valPair(C.valInt(1), C.valInt(2))), E));
}

} // namespace
