//===- tests/gc_contclosure_test.cpp - Continuation-closure machinery -----===//
//
// Unit tests for the typed closure-conversion machinery shared by the
// collectors (ContClosure.h): the uniform continuation type tk[s], pack
// construction, and the open-and-apply sequence — checked in isolation
// from any collector.
//
//===----------------------------------------------------------------------===//

#include "gc/ContClosure.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

struct ContTest : ::testing::Test {
  GcContext C;

  ContLayout layout(Region R1, Region R2, Region R3) {
    ContLayout L;
    L.Regions = {R1, R2, R3};
    L.To = R2;
    L.Holder = R3;
    return L;
  }
};

TEST_F(ContTest, ContTypeIsWellFormed) {
  DiagEngine Diags;
  TypeChecker Ck(C, LanguageLevel::Base, Diags);
  CheckEnv E;
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  Region R3 = Region::name(C.fresh("nu3"));
  E.Delta = RegionSet{R1, R2, R3};
  const Type *Tk = contType(C, layout(R1, R2, R3), C.tagInt());
  EXPECT_TRUE(Ck.checkTypeWf(Tk, E)) << printType(C, Tk);
  // And not under a smaller ∆ (r3 missing).
  CheckEnv E2;
  E2.Delta = RegionSet{R1, R2};
  EXPECT_FALSE(Ck.checkTypeWf(Tk, E2));
}

TEST_F(ContTest, ContTypeIsUniformInTheTag) {
  // tk[s] has the same size regardless of s's complexity modulo the two
  // M_{r2}(s) occurrences — the continuation protocol is type-indexed but
  // not type-specialized (the heart of the "GC as a library" claim).
  Region R1 = Region::name(C.fresh("nu1"));
  Region R2 = Region::name(C.fresh("nu2"));
  Region R3 = Region::name(C.fresh("nu3"));
  ContLayout L = layout(R1, R2, R3);
  const Type *A = contType(C, L, C.tagInt());
  const Tag *Big = C.tagProd(C.tagProd(C.tagInt(), C.tagInt()),
                             C.tagProd(C.tagInt(), C.tagInt()));
  const Type *B = contType(C, L, Big);
  EXPECT_EQ(typeSize(A) - tagSize(C.tagInt()),
            typeSize(B) - tagSize(Big));
}

TEST_F(ContTest, PackAndApplyRoundTrip) {
  // Build a full continuation closure around a finishing code block, put
  // it in the holder region, then run applyCont's open-and-apply term:
  // the machine must deliver the copied value to the code.
  Machine M(C, LanguageLevel::Base);
  Region R1 = M.createRegion("nu1", 0);
  Region R2 = M.createRegion("nu2", 0);
  Region R3 = M.createRegion("nu3", 0);
  ContLayout L = layout(R1, R2, R3);

  // fin[t1,t2,te][r1,r2,r3](y : int, env : int) = halt y+env.
  // (The payload tag is pinned to Int below, and M_{r2}(Int) = int, so the
  // plain-int parameter matches the continuation protocol.)
  CodeBuilder CB(C);
  (void)CB.tagParam("t1");
  (void)CB.tagParam("t2");
  (void)CB.tagParam("te", C.omegaToOmega());
  (void)CB.regionParam("r1");
  (void)CB.regionParam("r2");
  (void)CB.regionParam("r3");
  const Value *Y = CB.valParam("y", C.typeInt());
  const Value *Env = CB.valParam("env", C.typeInt());
  BlockBuilder FB(C);
  const Value *Sum = FB.prim(PrimOp::Add, Y, Env);
  Address Fin = M.installCode("fin", CB.build(FB.finish(C.termHalt(Sum))));

  const Value *Code = C.valTransApp(C.valAddr(Fin),
                                    {C.tagInt(), C.tagInt(), C.tagIdFun()},
                                    L.Regions);
  const Value *Pk = packCont(C, L, C.tagInt(), C.tagInt(), C.tagInt(),
                             C.tagIdFun(), C.typeInt(), Code, C.valInt(30));
  const Value *K = M.allocate(R3, Pk);

  const Term *E = applyCont(C, L, K, C.valInt(12));
  M.start(E);
  StateCheckResult R0 = checkState(M);
  EXPECT_TRUE(R0.Ok) << R0.Error;
  M.run(100);
  ASSERT_EQ(M.status(), Machine::Status::Halted)
      << (M.status() == Machine::Status::Stuck ? M.stuckReason() : "running");
  EXPECT_EQ(M.haltValue()->intValue(), 42);
}

TEST_F(ContTest, PackedContinuationChecksAgainstContType) {
  Machine M(C, LanguageLevel::Base);
  Region R1 = M.createRegion("nu1", 0);
  Region R2 = M.createRegion("nu2", 0);
  Region R3 = M.createRegion("nu3", 0);
  ContLayout L = layout(R1, R2, R3);

  CodeBuilder CB(C);
  const Tag *T1 = CB.tagParam("t1");
  (void)CB.tagParam("t2");
  (void)CB.tagParam("te", C.omegaToOmega());
  (void)CB.regionParam("r1");
  Region Rr2 = CB.regionParam("r2");
  (void)CB.regionParam("r3");
  (void)CB.valParam("y", C.typeM(Rr2, T1));
  (void)CB.valParam("env", C.typeInt());
  Address Fin = M.installCode("fin", CB.build(C.termHalt(C.valInt(0))));

  const Value *Code = C.valTransApp(C.valAddr(Fin),
                                    {C.tagInt(), C.tagInt(), C.tagIdFun()},
                                    L.Regions);
  const Value *Pk = packCont(C, L, C.tagInt(), C.tagInt(), C.tagInt(),
                             C.tagIdFun(), C.typeInt(), Code, C.valInt(0));
  const Value *K = M.allocate(R3, Pk);

  DiagEngine Diags;
  TypeChecker Ck(C, LanguageLevel::Base, Diags);
  Ck.setSkipCodeBodies(true);
  CheckEnv E;
  E.Psi.M = &M.psi();
  E.Psi.Cd = C.cd().sym();
  E.Delta = M.psi().domain();
  const Type *Tk = contType(C, L, C.tagInt());
  EXPECT_TRUE(Ck.checkValue(K, Tk, E)) << Diags.str();
  // Negative: the same package does NOT check at a different payload tag.
  const Type *TkWrong =
      contType(C, L, C.tagProd(C.tagInt(), C.tagInt()));
  EXPECT_FALSE(Ck.checkValue(K, TkWrong, E));
}

} // namespace
