//===- tests/gc_differential_collect_test.cpp - Certified vs native oracle ===//
//
// Differential testing of the certified collectors against the native C++
// oracle: both collect structurally identical random heaps (same RNG
// seed); the surviving object graphs must be isomorphic — including the
// *sharing structure* for the forwarding collector, and including the
// sharing LOSS pattern for the basic collector (which must match the
// native collector's no-forwarding mode unfolding exactly).
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/NativeCollector.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

/// Canonical signature of the object graph reachable from a value:
/// deterministic DFS numbering of heap cells; runtime data only (type
/// annotations, tags, and region identities are canonicalized away).
struct Canonicalizer {
  Machine &M;
  std::map<Address, int> Index;
  std::string Sig;

  std::string walk(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
      return "i" + std::to_string(V->intValue());
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R == M.context().cd())
        return "cd" + std::to_string(A.Offset);
      auto It = Index.find(A);
      if (It != Index.end())
        return "#" + std::to_string(It->second);
      int K = static_cast<int>(Index.size());
      Index[A] = K;
      const Value *Cell = M.memory().get(A);
      if (!Cell)
        return "#dangling";
      Sig += "cell" + std::to_string(K) + "=" + walk(Cell) + ";";
      return "#" + std::to_string(K);
    }
    case ValueKind::Pair:
      return "(" + walk(V->first()) + "," + walk(V->second()) + ")";
    case ValueKind::Inl:
      return "L" + walk(V->payload());
    case ValueKind::Inr:
      return "R" + walk(V->payload());
    case ValueKind::PackTag:
      return "E" + walk(V->payload());
    case ValueKind::PackTyVar:
    case ValueKind::PackRegion:
      return "P" + walk(V->payload());
    case ValueKind::TransApp:
      return "T" + walk(V->payload());
    case ValueKind::Var:
      return "?var";
    case ValueKind::Code:
      return "code";
    }
    return "?";
  }

  std::string canonical(const Value *Root) {
    std::string RootSig = walk(Root);
    return Sig + "root=" + RootSig;
  }
};

/// Runs one certified collection over a freshly forged random heap and
/// returns the canonical signature of the surviving graph, recovered via
/// the root-capturing finisher.
std::string certifiedSignature(LanguageLevel Level, uint64_t Seed,
                               size_t Budget, bool &Ok) {
  GcContext C;
  Machine M(C, Level);
  Address GcAddr = Level == LanguageLevel::Base
                       ? installBasicCollector(M).Gc
                       : installForwardCollector(M).Gc;
  Region R = M.createRegion("from", 0);
  Rng Rand(Seed);
  ForgedHeap H = forgeRandom(M, R, R, Rand, Budget);
  Address Fin = installRootCapturingFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, R, Fin);
  M.start(E);
  M.run(50'000'000);
  if (M.status() != Machine::Status::Halted) {
    ADD_FAILURE() << "certified collection failed (seed " << Seed
                  << "): " << M.stuckReason();
    Ok = false;
    return "";
  }
  // The capture cell is the last cell of the surviving data region.
  M.memory().decodeAll();
  for (const auto &[S, RD] : M.memory().Regions) {
    if (S == C.cd().sym() || RD.Cells.empty())
      continue;
    const Value *Capture = RD.Cells.back();
    if (!Capture || !Capture->is(ValueKind::Pair))
      continue;
    Canonicalizer Canon{M, {}, {}};
    Ok = true;
    return Canon.canonical(Capture->first());
  }
  ADD_FAILURE() << "no capture cell found (seed " << Seed << ")";
  Ok = false;
  return "";
}

/// Same heap collected by the native oracle (at the same language level,
/// so the forged heap carries the same wrappers).
std::string nativeSignature(LanguageLevel Level, uint64_t Seed,
                            size_t Budget, bool PreserveSharing,
                            CopyOrder Order, bool &Ok) {
  GcContext C;
  Machine M(C, Level);
  Region R = M.createRegion("from", 0);
  Rng Rand(Seed);
  ForgedHeap H = forgeRandom(M, R, R, Rand, Budget);
  NativeGcStats Stats;
  auto [Root, To] =
      nativeCollect(M, H.Root, R, PreserveSharing, Stats, Order);
  (void)To;
  Canonicalizer Canon{M, {}, {}};
  Ok = true;
  return Canon.canonical(Root);
}

class DifferentialCollect : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialCollect, ForwardingMatchesNativeSharingPreserving) {
  uint64_t Seed = 0xD1FF + GetParam() * 6151;
  bool OkA = false, OkB = false;
  std::string A =
      certifiedSignature(LanguageLevel::Forward, Seed, 18, OkA);
  std::string B =
      nativeSignature(LanguageLevel::Forward, Seed, 18,
                      /*PreserveSharing=*/true, CopyOrder::DepthFirst, OkB);
  ASSERT_TRUE(OkA && OkB);
  // The forwarding collector's stripped mutator view re-tags with inl; the
  // native oracle keeps the forged inl wrappers. Signatures are directly
  // comparable because both keep the L markers.
  EXPECT_EQ(A, B) << "seed " << Seed;
}

TEST_P(DifferentialCollect, BasicMatchesNativeUnfolding) {
  uint64_t Seed = 0xD1FF + GetParam() * 6151;
  bool OkA = false, OkB = false;
  std::string A = certifiedSignature(LanguageLevel::Base, Seed, 14, OkA);
  std::string B =
      nativeSignature(LanguageLevel::Base, Seed, 14,
                      /*PreserveSharing=*/false, CopyOrder::DepthFirst, OkB);
  ASSERT_TRUE(OkA && OkB);
  EXPECT_EQ(A, B) << "seed " << Seed;
}

TEST_P(DifferentialCollect, CheneyIsomorphicToDepthFirst) {
  uint64_t Seed = 0xBF5 + GetParam() * 409;
  bool OkA = false, OkB = false;
  std::string A = nativeSignature(LanguageLevel::Base, Seed, 20, true,
                                  CopyOrder::DepthFirst, OkA);
  std::string B = nativeSignature(LanguageLevel::Base, Seed, 20, true,
                                  CopyOrder::BreadthFirst, OkB);
  ASSERT_TRUE(OkA && OkB);
  // Canonicalization is order-independent (DFS renumbering), so the two
  // layouts must produce identical signatures.
  EXPECT_EQ(A, B) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialCollect,
                         ::testing::Range(0, 10));

TEST(DifferentialCollect, SignatureDistinguishesSharing) {
  // Sanity for the canonicalizer itself: a shared child and a duplicated
  // child must produce different signatures.
  GcContext C;
  Machine M(C, LanguageLevel::Base);
  Region R = M.createRegion("r", 0);
  const Value *Shared = M.allocate(R, C.valPair(C.valInt(1), C.valInt(2)));
  const Value *Dup1 = M.allocate(R, C.valPair(C.valInt(1), C.valInt(2)));
  const Value *Dup2 = M.allocate(R, C.valPair(C.valInt(1), C.valInt(2)));
  const Value *DagRoot = M.allocate(R, C.valPair(Shared, Shared));
  const Value *TreeRoot = M.allocate(R, C.valPair(Dup1, Dup2));
  Canonicalizer CanA{M, {}, {}};
  Canonicalizer CanB{M, {}, {}};
  EXPECT_NE(CanA.canonical(DagRoot), CanB.canonical(TreeRoot));
}

} // namespace
