//===- tests/gc_collector_basic_test.cpp - Fig 12 collector ---------------===//
//
// The paper's headline artifact: the CPS/closure-converted stop-and-copy
// collector, written in λGC, certified by the λGC typechecker, and executed
// by the λGC machine — with type preservation re-checked after every
// machine step while a collection is in flight.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"

#include "gc/Builder.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

const Value *runChecked(Machine &M, const Term *E, uint64_t MaxSteps = 200000,
                        bool PerStepCheck = true) {
  M.start(E);
  StateCheckOptions Opts;
  StateCheckResult R0 = checkState(M, Opts);
  EXPECT_TRUE(R0.Ok) << "initial state ill-formed: " << R0.Error;
  Opts.CheckCodeRegion = false;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M.status() != Machine::Status::Running)
      break;
    Machine::Status S = M.step();
    if (S == Machine::Status::Stuck) {
      ADD_FAILURE() << "machine stuck: " << M.stuckReason() << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    if (PerStepCheck) {
      StateCheckResult R = checkState(M, Opts);
      if (!R.Ok) {
        ADD_FAILURE() << "preservation violation after step " << I << ": "
                      << R.Error << "\nterm:\n"
                      << printTerm(M.context(), M.currentTerm());
        return nullptr;
      }
    }
    if (S == Machine::Status::Halted)
      return M.haltValue();
  }
  EXPECT_EQ(M.status(), Machine::Status::Halted) << "did not halt";
  return M.haltValue();
}

class BasicCollectorTest : public ::testing::Test {
protected:
  GcContext C;
};

TEST_F(BasicCollectorTest, CollectorCertifies) {
  Machine M(C, LanguageLevel::Base);
  installBasicCollector(M);
  DiagEngine Diags;
  bool Ok = certifyCodeRegion(M, Diags);
  EXPECT_TRUE(Ok) << "collector failed certification:\n" << Diags.str();
}

/// Builds a mutator function `mu[][r](x : M_r(τ))` whose body is
/// `ifgc r (gc[τ][r](mu, x)) Work(r, x)`, installs it, and returns its
/// address. Work is built by the callback from the (region, x) values.
template <typename WorkFn>
Address installMutator(Machine &M, const BasicCollectorLib &Lib,
                       const Tag *Tau, WorkFn Work) {
  GcContext &C = M.context();
  Address MuAddr = M.reserveCode("mu");
  CodeBuilder CB(C);
  Region R = CB.regionParam("r");
  const Value *X = CB.valParam("x", C.typeM(R, Tau));
  const Term *GcCall = C.termApp(C.valAddr(Lib.Gc), {Tau}, {R},
                                 {C.valAddr(MuAddr), X});
  const Term *Body = C.termIfGc(R, GcCall, Work(R, X));
  M.defineCode(MuAddr, CB.build(Body));
  return MuAddr;
}

TEST_F(BasicCollectorTest, CollectsSharedPairHeap) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 4;
  Machine M(C, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M);

  // τ = (Int×Int) × (Int×Int); x = (c, c) with c shared (a DAG).
  const Tag *PairII = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *Tau = C.tagProd(PairII, PairII);

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.get(X);
        const Value *P1 = B.proj1(G);
        const Value *P2 = B.proj2(G);
        const Value *G1 = B.get(P1);
        const Value *G2 = B.get(P2);
        const Value *A = B.proj1(G1);
        const Value *Bv = B.proj2(G1);
        const Value *Cc = B.proj1(G2);
        const Value *D = B.proj2(G2);
        const Value *S1 = B.prim(PrimOp::Add, A, Bv);
        const Value *S2 = B.prim(PrimOp::Add, Cc, D);
        const Value *S = B.prim(PrimOp::Add, S1, S2);
        return B.finish(C.termHalt(S));
      });

  // Driver: fill the region to capacity so ifgc fires on entry.
  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Shared = B.put(R, C.valPair(C.valInt(1), C.valInt(2)));
  const Value *Root = B.put(R, C.valPair(Shared, Shared));
  // Two garbage cells to reach the capacity of 4.
  (void)B.put(R, C.valPair(C.valInt(7), C.valInt(8)));
  (void)B.put(R, C.valPair(C.valInt(9), C.valInt(10)));
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 1 + 2 + 1 + 2);

  // A collection ran and reclaimed from-space and the continuation region.
  EXPECT_EQ(M.stats().IfGcTaken, 1u);
  EXPECT_EQ(M.stats().RegionsReclaimed, 2u);
  // Sharing was lost (Fig 4's copy turns DAGs into trees, §7): the live set
  // was 2 cells (root + shared child); to-space holds 3 (root + 2 copies).
  EXPECT_EQ(M.memory().liveDataCells(), 3u);
}

TEST_F(BasicCollectorTest, CollectsExistentialHeap) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 3;
  Machine M(C, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M);

  // τ = ∃u.(u × Int) with witness Int.
  Symbol U = C.fresh("u");
  const Tag *Tau =
      C.tagExists(U, C.tagProd(C.tagVar(U), C.tagInt()));

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.get(X);
        auto [T, Y] = B.openTag(G, "t", "y");
        (void)T;
        const Value *GY = B.get(Y);
        const Value *N = B.proj2(GY);
        return B.finish(C.termHalt(N));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Inner = B.put(R, C.valPair(C.valInt(33), C.valInt(44)));
  Symbol PV = C.fresh("u");
  const Value *Pk = C.valPackTag(
      PV, C.tagInt(), Inner,
      C.typeM(R, C.tagProd(C.tagVar(PV), C.tagInt())));
  const Value *Root = B.put(R, Pk);
  (void)B.put(R, C.valPair(C.valInt(0), C.valInt(0))); // garbage
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 44);
  EXPECT_EQ(M.stats().IfGcTaken, 1u);
  // Live set = existential cell + inner pair.
  EXPECT_EQ(M.memory().liveDataCells(), 2u);
}

TEST_F(BasicCollectorTest, NoGcWhenRegionNotFull) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 100;
  Machine M(C, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M);

  const Tag *Tau = C.tagProd(C.tagInt(), C.tagInt());
  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.get(X);
        const Value *A = B.proj1(G);
        return B.finish(C.termHalt(A));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Root = B.put(R, C.valPair(C.valInt(5), C.valInt(6)));
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 5);
  EXPECT_EQ(M.stats().IfGcTaken, 0u);
  EXPECT_EQ(M.stats().RegionsReclaimed, 0u);
}

TEST_F(BasicCollectorTest, DeepStructureSurvivesRepeatedCollection) {
  // A deeper tree τ = ((Int×Int)×(Int×Int)) × ((Int×Int)×(Int×Int)),
  // collected when the region fills; the mutator then re-enters and halts.
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 8;
  Machine M(C, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M);

  const Tag *P = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *PP = C.tagProd(P, P);
  const Tag *Tau = C.tagProd(PP, PP);

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.get(X);
        const Value *L = B.get(B.proj1(G));
        const Value *LL = B.get(B.proj1(L));
        const Value *N = B.proj1(LL);
        return B.finish(C.termHalt(N));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  std::vector<const Value *> Leaves;
  for (int I = 0; I != 4; ++I)
    Leaves.push_back(
        B.put(R, C.valPair(C.valInt(10 * I + 1), C.valInt(10 * I + 2))));
  const Value *L = B.put(R, C.valPair(Leaves[0], Leaves[1]));
  const Value *Rt = B.put(R, C.valPair(Leaves[2], Leaves[3]));
  const Value *Root = B.put(R, C.valPair(L, Rt));
  (void)B.put(R, C.valPair(C.valInt(0), C.valInt(0))); // fill to 8
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 1);
  EXPECT_EQ(M.stats().IfGcTaken, 1u);
  EXPECT_EQ(M.memory().liveDataCells(), 7u); // full tree, no garbage
}

} // namespace
