//===- tests/gc_machine_test.cpp - λGC machine + per-step soundness -------===//
//
// Small hand-written λGC programs, executed with type preservation checked
// after every step (Prop 6.4) and progress (Prop 6.5) asserted whenever a
// well-formed non-halt state is seen.
//
//===----------------------------------------------------------------------===//

#include "gc/Builder.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

#include <limits>

using namespace scav;
using namespace scav::gc;

namespace {

/// Runs the machine to completion with ⊢ (M, e) re-checked at every step.
/// Returns the halt value; fails the test on stuck or ill-formed states.
const Value *runChecked(Machine &M, const Term *E,
                        bool RestrictReachable = false,
                        uint64_t MaxSteps = 100000) {
  M.start(E);
  StateCheckOptions Opts;
  Opts.RestrictToReachable = RestrictReachable;
  StateCheckResult R0 = checkState(M, Opts);
  EXPECT_TRUE(R0.Ok) << "initial state ill-formed: " << R0.Error;
  Opts.CheckCodeRegion = false; // cd is immutable; checked above.
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M.status() != Machine::Status::Running)
      break;
    Machine::Status S = M.step();
    if (S == Machine::Status::Stuck) {
      ADD_FAILURE() << "machine stuck (progress violation): "
                    << M.stuckReason() << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    StateCheckResult R = checkState(M, Opts);
    if (!R.Ok) {
      ADD_FAILURE() << "preservation violation after step " << I << ": "
                    << R.Error << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    if (S == Machine::Status::Halted)
      return M.haltValue();
  }
  EXPECT_EQ(M.status(), Machine::Status::Halted) << "did not halt";
  return M.haltValue();
}

class MachineTest : public ::testing::Test {
protected:
  GcContext C;
};

TEST_F(MachineTest, HaltImmediately) {
  Machine M(C, LanguageLevel::Base);
  const Value *V = runChecked(M, C.termHalt(C.valInt(42)));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 42);
}

TEST_F(MachineTest, LetAndPrim) {
  Machine M(C, LanguageLevel::Base);
  BlockBuilder B(C);
  const Value *X = B.prim(PrimOp::Add, C.valInt(40), C.valInt(2));
  const Value *Y = B.prim(PrimOp::Mul, X, C.valInt(2));
  const Value *V = runChecked(M, B.finish(C.termHalt(Y)));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 84);
}

TEST_F(MachineTest, If0BothBranches) {
  for (int64_t N : {0, 7}) {
    Machine M(C, LanguageLevel::Base);
    BlockBuilder B(C);
    const Value *X = B.name("x", C.valInt(N));
    const Term *E = B.finish(
        C.termIf0(X, C.termHalt(C.valInt(100)), C.termHalt(C.valInt(200))));
    const Value *V = runChecked(M, E);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->intValue(), N == 0 ? 100 : 200);
  }
}

TEST_F(MachineTest, PutGetProj) {
  Machine M(C, LanguageLevel::Base);
  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *A = B.put(R, C.valPair(C.valInt(1), C.valInt(2)));
  const Value *P = B.get(A);
  const Value *X1 = B.proj1(P);
  const Value *X2 = B.proj2(P);
  const Value *S = B.prim(PrimOp::Add, X1, X2);
  const Value *V = runChecked(M, B.finish(C.termHalt(S)));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 3);
}

TEST_F(MachineTest, OnlyReclaimsRegions) {
  Machine M(C, LanguageLevel::Base);
  BlockBuilder B(C);
  Region R1 = B.letRegion("r1");
  Region R2 = B.letRegion("r2");
  const Value *A1 = B.put(R1, C.valInt(10));
  (void)A1;
  const Value *A2 = B.put(R2, C.valInt(20));
  B.only(RegionSet{R2});
  const Value *X = B.get(A2);
  const Value *V = runChecked(M, B.finish(C.termHalt(X)));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 20);
  EXPECT_EQ(M.stats().RegionsReclaimed, 1u);
  // Only cd and R2's instantiation remain.
  EXPECT_EQ(M.memory().numRegions(), 2u);
}

TEST_F(MachineTest, OnlyHeapGrowthIsClampedNotTruncated) {
  // cells × HeapGrowthFactor is computed in 64 bits and clamped to the
  // uint32_t capacity range; the old straight cast truncated 2·2³¹ = 2³²
  // to 0, leaving a kept region with a near-empty capacity after `only`.
  auto RunOnly = [&](uint32_t Factor) -> uint32_t {
    MachineConfig Cfg;
    Cfg.DefaultRegionCapacity = 1;
    Cfg.HeapGrowthFactor = Factor;
    Machine M(C, LanguageLevel::Base, Cfg);
    BlockBuilder B(C);
    Region R = B.letRegion("r");
    const Value *A1 = B.put(R, C.valInt(1));
    (void)A1;
    const Value *A2 = B.put(R, C.valInt(2));
    B.only(RegionSet{R});
    const Value *X = B.get(A2);
    const Value *V = runChecked(M, B.finish(C.termHalt(X)));
    EXPECT_NE(V, nullptr);
    for (const auto &[S, RM] : M.memory().Regions)
      if (S != C.cd().sym())
        return RM.Capacity;
    ADD_FAILURE() << "kept region not found";
    return 0;
  };
  // Non-overflowing growth stays exact: 2 cells × 3.
  EXPECT_EQ(RunOnly(3), 6u);
  // Overflowing growth saturates instead of wrapping to ~0.
  EXPECT_EQ(RunOnly(1u << 31), std::numeric_limits<uint32_t>::max());
}

TEST_F(MachineTest, DanglingGetAfterOnlyIsIllFormed) {
  // Negative test: using a reclaimed region's address must be caught by the
  // state checker (the term is ill-formed, so we do NOT assert progress).
  Machine M(C, LanguageLevel::Base);
  BlockBuilder B(C);
  Region R1 = B.letRegion("r1");
  Region R2 = B.letRegion("r2");
  const Value *A1 = B.put(R1, C.valInt(10));
  (void)B.put(R2, C.valInt(20));
  B.only(RegionSet{R2});
  const Value *X = B.get(A1); // dangling!
  const Term *E = B.finish(C.termHalt(X));

  M.start(E);
  bool SawIllFormed = false;
  for (int I = 0; I != 100 && M.status() == Machine::Status::Running; ++I) {
    StateCheckResult R = checkState(M);
    if (!R.Ok) {
      SawIllFormed = true;
      break;
    }
    M.step();
  }
  if (!SawIllFormed) {
    // The machine must at least get stuck rather than produce a value.
    EXPECT_EQ(M.status(), Machine::Status::Stuck);
  } else {
    SUCCEED();
  }
}

TEST_F(MachineTest, TypecaseDispatch) {
  struct CaseSpec {
    const Tag *Scrut;
    int64_t Expect;
  };
  Symbol T = C.intern("t");
  std::vector<CaseSpec> Cases = {
      {C.tagInt(), 1},
      {C.tagArrow({C.tagInt()}), 2},
      {C.tagProd(C.tagInt(), C.tagInt()), 3},
      {C.tagExists(T, C.tagVar(T)), 4},
  };
  for (const CaseSpec &CS : Cases) {
    Machine M(C, LanguageLevel::Base);
    const Term *E = C.termTypecase(
        CS.Scrut, C.termHalt(C.valInt(1)), C.termHalt(C.valInt(2)),
        C.fresh("t1"), C.fresh("t2"), C.termHalt(C.valInt(3)), C.fresh("te"),
        C.termHalt(C.valInt(4)));
    const Value *V = runChecked(M, E);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->intValue(), CS.Expect);
  }
}

TEST_F(MachineTest, TypecaseBetaReducesScrutinee) {
  // typecase ((λt.t×t) Int) must take the product arm.
  Symbol T = C.intern("t");
  const Tag *Scrut = C.tagApp(C.tagLam(T, C.tagProd(C.tagVar(T), C.tagVar(T))),
                              C.tagInt());
  Machine M(C, LanguageLevel::Base);
  const Term *E = C.termTypecase(
      Scrut, C.termHalt(C.valInt(1)), C.termHalt(C.valInt(2)), C.fresh("t1"),
      C.fresh("t2"), C.termHalt(C.valInt(3)), C.fresh("te"),
      C.termHalt(C.valInt(4)));
  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 3);
}

TEST_F(MachineTest, ExistentialPackOpen) {
  Machine M(C, LanguageLevel::Base);
  BlockBuilder B(C);
  Region R = B.letRegion("r");
  // pack ⟨t = Int, 5 : M_r(t)⟩  — stuck body type, refined on open.
  Symbol TV = C.fresh("t");
  const Value *Pack = C.valPackTag(TV, C.tagInt(), C.valInt(5),
                                   C.typeM(R, C.tagVar(TV)));
  const Value *A = B.put(R, Pack);
  const Value *G = B.get(A);
  auto [TagV, Payload] = B.openTag(G, "t", "x");
  (void)TagV;
  // Payload has type M_r(t) with t unknown; we can still halt after using
  // it opaquely — here we just return a constant to stay well-typed.
  (void)Payload;
  const Value *V = runChecked(M, B.finish(C.termHalt(C.valInt(9))));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 9);
}

TEST_F(MachineTest, CodeInstallAndCall) {
  Machine M(C, LanguageLevel::Base);
  // double : ∀[][r](int, (∀[][r'](int)→0 at cd)) → 0 — CPS doubling.
  // ret    : ∀[][r](int) → 0 — halts with its argument.
  Symbol RetR = C.fresh("r");
  const Type *RetTy = C.typeCode({}, {}, {RetR}, {C.typeInt()});

  CodeBuilder RetB(C);
  Region Rr = RetB.regionParam("r");
  (void)Rr;
  const Value *RetArg = RetB.valParam("x", C.typeInt());
  const Value *RetCode = RetB.build(C.termHalt(RetArg));
  Address RetAddr = M.installCode("ret", RetCode);

  CodeBuilder DblB(C);
  Region Dr = DblB.regionParam("r");
  const Value *N = DblB.valParam("n", C.typeInt());
  const Value *K = DblB.valParam("k", C.typeAt(RetTy, C.cd()));
  BlockBuilder Body(C);
  const Value *N2 = Body.prim(PrimOp::Add, N, N);
  const Term *DblBody = Body.finish(C.termApp(K, {}, {Dr}, {N2}));
  Address DblAddr = M.installCode("double", DblB.build(DblBody));

  BlockBuilder Main(C);
  Region R = Main.letRegion("r");
  const Term *E = Main.finish(C.termApp(
      C.valAddr(DblAddr), {}, {R}, {C.valInt(21), C.valAddr(RetAddr)}));
  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 42);
  EXPECT_EQ(M.stats().Applications, 2u);
}

TEST_F(MachineTest, PolymorphicCodeWithTags) {
  Machine M(C, LanguageLevel::Base);
  // swap-ish: id[t][r](x : M_r(t), k : ∀[][r2](M_{r2}(t))→0 at cd) = k[][r](x)
  CodeBuilder IdB(C);
  const Tag *T = IdB.tagParam("t");
  Region R = IdB.regionParam("r");
  Symbol KR = C.fresh("r2");
  const Type *KTy =
      C.typeAt(C.typeCode({}, {}, {KR}, {C.typeM(Region::var(KR), T)}), C.cd());
  const Value *X = IdB.valParam("x", C.typeM(R, T));
  const Value *K = IdB.valParam("k", KTy);
  Address IdAddr =
      M.installCode("id", IdB.build(C.termApp(K, {}, {R}, {X})));

  // fin[t... actually fin is monomorphic at Int: fin[][r](x:int) = halt x.
  CodeBuilder FinB(C);
  Region FR = FinB.regionParam("r");
  (void)FR;
  const Value *FX = FinB.valParam("x", C.typeInt());
  Address FinAddr = M.installCode("fin", FinB.build(C.termHalt(FX)));
  (void)FinAddr;

  BlockBuilder Main(C);
  Region MR = Main.letRegion("r");
  const Term *E = Main.finish(C.termApp(C.valAddr(IdAddr), {C.tagInt()}, {MR},
                                        {C.valInt(7), C.valAddr(FinAddr)}));
  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 7);
}

//===----------------------------------------------------------------------===//
// λGC-forw machine steps
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, ForwardInlStripSet) {
  Machine M(C, LanguageLevel::Forward);
  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *A = B.put(R, C.valInl(C.valPair(C.valInt(3), C.valInt(4))));
  const Value *G = B.get(A);
  // ifleft y = g then (strip; sum of parts) else halt -1.
  Symbol Y = C.fresh("y");
  BlockBuilder LB(C);
  const Value *St = LB.strip(C.valVar(Y));
  const Value *P1 = LB.proj1(St);
  const Value *P2 = LB.proj2(St);
  const Value *Sum = LB.prim(PrimOp::Add, P1, P2);
  const Term *LeftArm = LB.finish(C.termHalt(Sum));
  const Term *E = B.finish(
      C.termIfLeft(Y, G, LeftArm, C.termHalt(C.valInt(-1))));
  const Value *V = runChecked(M, E, /*RestrictReachable=*/true);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 7);
}

TEST_F(MachineTest, ForwardSetOverwrites) {
  Machine M(C, LanguageLevel::Forward);
  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *A = B.put(R, C.valInl(C.valPair(C.valInt(1), C.valInt(2))));
  // Overwrite with another value of the same (left) type.
  B.setCell(A, C.valInl(C.valPair(C.valInt(8), C.valInt(9))));
  const Value *G = B.get(A);
  const Value *St = B.strip(G);
  const Value *P1 = B.proj1(St);
  // Note: strip of an inl value works because the scrutinee is manifest.
  const Value *V = runChecked(M, B.finish(C.termHalt(P1)),
                              /*RestrictReachable=*/true);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 8);
}

//===----------------------------------------------------------------------===//
// λGC-gen machine steps
//===----------------------------------------------------------------------===//

TEST_F(MachineTest, RegionPackOpenAndIfreg) {
  Machine M(C, LanguageLevel::Generational);
  BlockBuilder B(C);
  Region Ry = B.letRegion("ry");
  Region Ro = B.letRegion("ro");
  const Value *A = B.put(Ry, C.valPair(C.valInt(5), C.valInt(6)));
  // pack ⟨r ∈ {ry,ro} = ry, a : (int × int) at r⟩
  Symbol RV = C.fresh("r");
  const Type *Body = C.typeProd(C.typeInt(), C.typeInt());
  const Value *Pack =
      C.valPackRegion(RV, RegionSet{Ry, Ro}, Ry, A, Body);
  const Value *Named = B.name("pk", Pack);
  auto [RVar, XVar] = B.openRegion(Named, "r", "x");
  // ifreg (r = ro) then halt 0 else fetch through x.
  BlockBuilder NE(C);
  const Value *G = NE.get(XVar);
  const Value *P1 = NE.proj1(G);
  const Term *NotEq = NE.finish(C.termHalt(P1));
  const Term *E = B.finish(
      C.termIfReg(RVar, Ro, C.termHalt(C.valInt(0)), NotEq));
  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 5);
}

} // namespace
