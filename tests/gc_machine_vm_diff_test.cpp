//===- tests/gc_machine_vm_diff_test.cpp - Env vs Subst vs Vm oracle ------===//
//
// Three-way differential testing of the evaluation backends: the bytecode
// VM (MachineConfig::EvalMode::Vm) must be observationally identical to the
// environment machine and the paper-verbatim substitution machine — same
// halt values, step counts, operational statistics, stuck diagnostics, and
// checkState verdicts, at all three language levels.
//
// Program sources mirror tests/gc_machine_env_diff_test.cpp: whole-pipeline
// random programs (certified collections embedded in real control flow) and
// forged random heaps pushed through one certified collection. The VM runs
// with the incremental per-step checker enabled in the pipeline leg, so the
// ⊢ (M, e) judgement is applied to the VM's reconstructed terms mid-
// collection, not just at the end.
//
// Stats comparison: everything except the Env* counters (the VM binds
// frames, not environments) and the RecordPutCache hit/miss split (pointer
// reuse differs across backends; the sum must still agree).
//
//===----------------------------------------------------------------------===//

#include "gc/StateCheck.h"
#include "harness/HeapForge.h"
#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

std::vector<std::pair<std::string, uint64_t>>
comparableStats(const MachineStats &S) {
  return {
      {"Steps", S.Steps},
      {"Puts", S.Puts},
      {"Gets", S.Gets},
      {"Sets", S.Sets},
      {"Projections", S.Projections},
      {"Applications", S.Applications},
      {"TypecaseSteps", S.TypecaseSteps},
      {"Opens", S.Opens},
      {"RegionsCreated", S.RegionsCreated},
      {"RegionsReclaimed", S.RegionsReclaimed},
      {"OnlyOps", S.OnlyOps},
      {"OnlyRegionsScanned", S.OnlyRegionsScanned},
      {"Widens", S.Widens},
      {"IfGcTaken", S.IfGcTaken},
      {"IfGcSkipped", S.IfGcSkipped},
      {"RecordPuts", S.RecordPutCacheHits + S.RecordPutCacheMisses},
  };
}

void expectSameStats(const MachineStats &A, const MachineStats &B,
                     const std::string &What) {
  auto SA = comparableStats(A), SB = comparableStats(B);
  for (size_t I = 0; I != SA.size(); ++I)
    EXPECT_EQ(SA[I].second, SB[I].second)
        << What << ": stat " << SA[I].first << " diverges";
}

const char *modeName(EvalMode Mode) {
  switch (Mode) {
  case EvalMode::Env:
    return "env";
  case EvalMode::Subst:
    return "subst";
  case EvalMode::Vm:
    return "vm";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Whole-pipeline programs
//===----------------------------------------------------------------------===//

struct Outcome {
  RunResult Run;
  MachineStats Stats;
  size_t LiveCells = 0;
  bool CheckOk = false;
  std::string StuckReason;
};

Outcome runPipeline(uint64_t Seed, LanguageLevel Level, EvalMode Mode) {
  PipelineOptions Opts;
  Opts.Level = Level;
  Opts.Machine.Eval = Mode;
  Opts.Machine.DefaultRegionCapacity = 12; // small: force collections
  Opts.IncrementalCheck = true;

  Pipeline Pipe(Opts);
  Rng R(Seed);
  GenOptions GOpts;
  GOpts.MaxDepth = 4;
  GOpts.MaxIterations = 8;
  const lambda::Expr *Prog = genProgram(Pipe.lambdaContext(), R, GOpts);

  DiagEngine Diags;
  Outcome Out;
  if (!Pipe.compileExpr(Prog, Diags)) {
    ADD_FAILURE() << "seed " << Seed << " does not compile:\n" << Diags.str();
    return Out;
  }
  // Deep-check every 13 steps: lands ⊢ (M, e) checks inside collections, so
  // a checker-visible difference between the VM's reconstructed term and
  // the interpreters' terms fails here, mid-collection.
  Out.Run = Pipe.runMachine(3'000'000, /*CheckEveryN=*/13);
  Out.Stats = Pipe.machine().stats();
  Out.LiveCells = Pipe.machine().memory().liveDataCells();
  Out.CheckOk = checkState(Pipe.machine()).Ok;
  Out.StuckReason = Pipe.machine().status() == Machine::Status::Stuck
                        ? Pipe.machine().stuckReason()
                        : "";
  return Out;
}

class VmDiffPipeline
    : public ::testing::TestWithParam<std::tuple<int, LanguageLevel>> {};

TEST_P(VmDiffPipeline, BackendsAgreeOnRandomPrograms) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0xB17EC0DE + static_cast<uint64_t>(SeedIdx) * 7919;

  Outcome E = runPipeline(Seed, Level, EvalMode::Env);
  Outcome V = runPipeline(Seed, Level, EvalMode::Vm);
  Outcome S = runPipeline(Seed, Level, EvalMode::Subst);

  std::string What =
      "seed " + std::to_string(Seed) + " " + languageLevelName(Level);
  for (const auto &[Other, Name] :
       {std::pair<const Outcome *, const char *>{&V, "vm"},
        std::pair<const Outcome *, const char *>{&S, "subst"}}) {
    std::string W = What + " (env vs " + Name + ")";
    EXPECT_EQ(E.Run.Ok, Other->Run.Ok)
        << W << ": " << E.Run.Error << " vs " << Other->Run.Error;
    EXPECT_EQ(E.Run.Value, Other->Run.Value) << W;
    EXPECT_EQ(E.Run.Steps, Other->Run.Steps) << W;
    EXPECT_EQ(E.StuckReason, Other->StuckReason) << W;
    EXPECT_EQ(E.LiveCells, Other->LiveCells) << W;
    EXPECT_EQ(E.CheckOk, Other->CheckOk) << W;
    expectSameStats(E.Stats, Other->Stats, W);
  }
  EXPECT_TRUE(V.CheckOk) << What << ": final Vm state fails checkState";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VmDiffPipeline,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(LanguageLevel::Base,
                                         LanguageLevel::Forward,
                                         LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, LanguageLevel>> &Info) {
      std::string L = languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

//===----------------------------------------------------------------------===//
// Forged heaps through one certified collection
//===----------------------------------------------------------------------===//

struct CollectOutcome {
  Machine::Status St = Machine::Status::Stuck;
  int64_t Halt = -1;
  MachineStats Stats;
  size_t LiveCells = 0;
  bool CheckOk = false;
  std::string StuckReason;
};

CollectOutcome runCollect(LanguageLevel Level, uint64_t Seed, size_t Budget,
                          EvalMode Mode) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Machine M(C, Level, Cfg);
  std::unique_ptr<vm::VmExec> Vm;
  if (Mode == EvalMode::Vm)
    Vm = std::make_unique<vm::VmExec>(M);
  Address GcAddr{};
  switch (Level) {
  case LanguageLevel::Base:
    GcAddr = installBasicCollector(M).Gc;
    break;
  case LanguageLevel::Forward:
    GcAddr = installForwardCollector(M).Gc;
    break;
  case LanguageLevel::Generational:
    GcAddr = installGenCollector(M).Gc;
    break;
  }
  Region R = M.createRegion("from", 0);
  Region Old =
      Level == LanguageLevel::Generational ? M.createRegion("old", 0) : R;
  Rng Rand(Seed);
  ForgedHeap H = forgeRandom(M, R, Old, Rand, Budget);
  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, Old, Fin);
  M.start(E);
  M.run(50'000'000);

  CollectOutcome Out;
  Out.St = M.status();
  if (M.status() == Machine::Status::Halted && M.haltValue() &&
      M.haltValue()->is(ValueKind::Int))
    Out.Halt = M.haltValue()->intValue();
  Out.Stats = M.stats();
  Out.LiveCells = M.memory().liveDataCells();
  StateCheckOptions ChkOpts;
  ChkOpts.RestrictToReachable = Level != LanguageLevel::Base;
  Out.CheckOk = checkState(M, ChkOpts).Ok;
  Out.StuckReason =
      M.status() == Machine::Status::Stuck ? M.stuckReason() : "";
  return Out;
}

class VmDiffCollect
    : public ::testing::TestWithParam<std::tuple<int, LanguageLevel>> {};

TEST_P(VmDiffCollect, BackendsAgreeOnCertifiedCollections) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0xBC + static_cast<uint64_t>(SeedIdx) * 6151;

  CollectOutcome E = runCollect(Level, Seed, 20, EvalMode::Env);
  CollectOutcome V = runCollect(Level, Seed, 20, EvalMode::Vm);
  CollectOutcome S = runCollect(Level, Seed, 20, EvalMode::Subst);

  std::string What =
      "seed " + std::to_string(Seed) + " " + languageLevelName(Level);
  for (const auto &[Other, Name] :
       {std::pair<const CollectOutcome *, const char *>{&V, "vm"},
        std::pair<const CollectOutcome *, const char *>{&S, "subst"}}) {
    std::string W = What + " (env vs " + Name + ")";
    EXPECT_EQ(E.St, Other->St)
        << W << ": " << E.StuckReason << " vs " << Other->StuckReason;
    EXPECT_EQ(E.Halt, Other->Halt) << W;
    EXPECT_EQ(E.StuckReason, Other->StuckReason) << W;
    EXPECT_EQ(E.LiveCells, Other->LiveCells) << W;
    EXPECT_EQ(E.CheckOk, Other->CheckOk) << W;
    expectSameStats(E.Stats, Other->Stats, W);
  }
  EXPECT_TRUE(V.CheckOk) << What
                         << ": post-collection Vm state fails checkState";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VmDiffCollect,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(LanguageLevel::Base,
                                         LanguageLevel::Forward,
                                         LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, LanguageLevel>> &Info) {
      std::string L = languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

//===----------------------------------------------------------------------===//
// Stuck diagnostics are byte-identical
//===----------------------------------------------------------------------===//

/// `let x = val 5 in let y = π1 x in halt y` is stuck on π1 of a non-pair.
/// The VM's diagnostic must resolve the frame slot and print the value,
/// byte-identically to both interpreters.
std::string stuckReasonFor(EvalMode Mode) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Machine M(C, LanguageLevel::Base, Cfg);
  std::unique_ptr<vm::VmExec> Vm;
  if (Mode == EvalMode::Vm)
    Vm = std::make_unique<vm::VmExec>(M);
  Symbol X = C.intern("x"), Y = C.intern("y");
  const Term *E = C.termLet(
      X, C.opVal(C.valInt(5)),
      C.termLet(Y, C.opProj(1, C.valVar(X)), C.termHalt(C.valVar(Y))));
  M.start(E);
  M.run(100);
  EXPECT_EQ(M.status(), Machine::Status::Stuck) << modeName(Mode);
  return M.stuckReason();
}

TEST(VmDiff, StuckDiagnosticsMatchAllBackends) {
  std::string E = stuckReasonFor(EvalMode::Env);
  std::string V = stuckReasonFor(EvalMode::Vm);
  std::string S = stuckReasonFor(EvalMode::Subst);
  EXPECT_EQ(E, V);
  EXPECT_EQ(E, S);
  EXPECT_NE(V.find("5"), std::string::npos) << V;
}

} // namespace
