//===- tests/frontend_test.cpp - STLC / CPS / λCLOS unit tests ------------===//

#include "clos/Clos.h"

#include <gtest/gtest.h>

using namespace scav;

namespace {

//===----------------------------------------------------------------------===//
// Source language
//===----------------------------------------------------------------------===//

struct LambdaTest : ::testing::Test {
  SymbolTable Syms;
  lambda::LambdaContext LC{Syms};
  DiagEngine Diags;

  const lambda::Expr *parse(std::string_view S) {
    const lambda::Expr *E = lambda::parseExpr(LC, S, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return E;
  }

  int64_t evalInt(std::string_view S) {
    const lambda::Expr *E = parse(S);
    if (!E)
      return -999999;
    EXPECT_NE(lambda::typeCheck(LC, E, Diags), nullptr) << Diags.str();
    lambda::EvalResult R = lambda::evaluate(E);
    EXPECT_TRUE(R.Value != nullptr) << R.Error;
    if (!R.Value)
      return -999999;
    EXPECT_EQ(R.Value->K, lambda::EvalValue::Kind::Int);
    return R.Value->N;
  }
};

TEST_F(LambdaTest, Literals) { EXPECT_EQ(evalInt("42"), 42); }

TEST_F(LambdaTest, Arithmetic) {
  EXPECT_EQ(evalInt("(+ 1 (* 2 3))"), 7);
  EXPECT_EQ(evalInt("(- 10 4)"), 6);
  EXPECT_EQ(evalInt("(<= 3 3)"), 1);
  EXPECT_EQ(evalInt("(<= 4 3)"), 0);
}

TEST_F(LambdaTest, LambdaAndApp) {
  EXPECT_EQ(evalInt("(app (lam (x Int) (+ x 1)) 41)"), 42);
  EXPECT_EQ(evalInt("(app (app (lam (f (-> Int Int)) f) (lam (x Int) x)) 7)"),
            7);
}

TEST_F(LambdaTest, PairsAndLet) {
  EXPECT_EQ(evalInt("(fst (pair 1 2))"), 1);
  EXPECT_EQ(evalInt("(snd (pair 1 2))"), 2);
  EXPECT_EQ(evalInt("(let p (pair (pair 1 2) 3) (snd (fst p)))"), 2);
}

TEST_F(LambdaTest, FixFactorial) {
  EXPECT_EQ(evalInt("(app (fix f (n Int) Int"
                    "  (if0 n 1 (* n (app f (- n 1))))) 6)"),
            720);
}

TEST_F(LambdaTest, FixSum) {
  EXPECT_EQ(evalInt("(app (fix f (n Int) Int"
                    "  (if0 n 0 (+ n (app f (- n 1))))) 100)"),
            5050);
}

TEST_F(LambdaTest, ClosureChain) {
  // Builds a chain of closures each capturing the previous one.
  EXPECT_EQ(
      evalInt("(app (app (fix b (n Int) (-> Int Int)"
              "  (if0 n (lam (x Int) x)"
              "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
              " 5) 100)"),
      115);
}

TEST_F(LambdaTest, TypeErrors) {
  struct Case {
    const char *Src;
  } Cases[] = {
      {"(app 1 2)"},
      {"(+ (pair 1 2) 3)"},
      {"(fst 3)"},
      {"(if0 1 2 (pair 1 1))"},
      {"(app (lam (x Int) x) (pair 1 2))"},
      {"y"},
  };
  for (const auto &Tc : Cases) {
    DiagEngine D;
    const lambda::Expr *E = lambda::parseExpr(LC, Tc.Src, D);
    ASSERT_NE(E, nullptr);
    EXPECT_EQ(lambda::typeCheck(LC, E, D), nullptr)
        << "expected type error for: " << Tc.Src;
  }
}

TEST_F(LambdaTest, ParseErrors) {
  for (const char *Src : {"(", ")", "(lam x body)", "(unknownform 1)",
                          "(let 1 2 3)"}) {
    DiagEngine D;
    EXPECT_EQ(lambda::parseExpr(LC, Src, D), nullptr)
        << "expected parse error for: " << Src;
  }
}

TEST_F(LambdaTest, PrintRoundTrip) {
  const char *Src = "(app (fix f (n Int) Int (if0 n 1 (* n (app f (- n 1))))) "
                    "5)";
  const lambda::Expr *E1 = parse(Src);
  std::string Printed = lambda::printExpr(LC, E1);
  DiagEngine D;
  const lambda::Expr *E2 = lambda::parseExpr(LC, Printed, D);
  ASSERT_NE(E2, nullptr) << D.str() << "\nprinted: " << Printed;
  lambda::EvalResult R1 = lambda::evaluate(E1);
  lambda::EvalResult R2 = lambda::evaluate(E2);
  ASSERT_TRUE(R1.Value && R2.Value);
  EXPECT_EQ(R1.Value->N, R2.Value->N);
}

//===----------------------------------------------------------------------===//
// CPS conversion
//===----------------------------------------------------------------------===//

struct CpsTest : ::testing::Test {
  SymbolTable Syms;
  lambda::LambdaContext LC{Syms};
  cps::CpsContext CC{Syms};
  DiagEngine Diags;

  const cps::Exp *convert(std::string_view S) {
    const lambda::Expr *E = lambda::parseExpr(LC, S, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return nullptr;
    const cps::Exp *X = cps::cpsConvert(LC, CC, E, Diags);
    EXPECT_NE(X, nullptr) << Diags.str();
    return X;
  }
};

TEST_F(CpsTest, ConvertedProgramsTypecheck) {
  for (const char *Src :
       {"42", "(+ 1 2)", "(app (lam (x Int) (+ x 1)) 41)",
        "(snd (fst (pair (pair 1 2) 3)))",
        "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 10)",
        "(let g (lam (p (* Int Int)) (+ (fst p) (snd p)))"
        " (app g (pair 20 22)))"}) {
    const cps::Exp *X = convert(Src);
    ASSERT_NE(X, nullptr);
    cps::TypeEnv Empty;
    EXPECT_TRUE(cps::checkExp(CC, X, Empty, Diags))
        << Diags.str() << "\nfor: " << Src;
  }
}

TEST_F(CpsTest, SemanticsPreserved) {
  struct Case {
    const char *Src;
    int64_t Want;
  } Cases[] = {
      {"42", 42},
      {"(+ 1 (* 2 3))", 7},
      {"(app (lam (x Int) (+ x 1)) 41)", 42},
      {"(snd (pair 1 (fst (pair 9 0))))", 9},
      {"(app (fix f (n Int) Int (if0 n 1 (* n (app f (- n 1))))) 6)", 720},
      {"(app (app (fix b (n Int) (-> Int Int)"
       "  (if0 n (lam (x Int) x)"
       "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
       " 5) 100)",
       115},
      {"(if0 (<= 3 2) 10 20)", 10},
  };
  for (const auto &Tc : Cases) {
    const cps::Exp *X = convert(Tc.Src);
    ASSERT_NE(X, nullptr);
    cps::CpsEvalResult R = cps::evaluate(X);
    EXPECT_TRUE(R.Ok) << R.Error << "\nfor: " << Tc.Src;
    EXPECT_EQ(R.Value, Tc.Want) << "for: " << Tc.Src;
  }
}

//===----------------------------------------------------------------------===//
// Closure conversion → λCLOS
//===----------------------------------------------------------------------===//

struct ClosTest : ::testing::Test {
  gc::GcContext GC;
  lambda::LambdaContext LC{GC.symbols()};
  cps::CpsContext CC{GC.symbols()};
  clos::ClosContext CL{GC};
  DiagEngine Diags;

  bool convert(std::string_view S, clos::Program &Out) {
    const lambda::Expr *E = lambda::parseExpr(LC, S, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return false;
    const cps::Exp *X = cps::cpsConvert(LC, CC, E, Diags);
    EXPECT_NE(X, nullptr) << Diags.str();
    if (!X)
      return false;
    return clos::closureConvert(CC, CL, X, Out, Diags);
  }
};

TEST_F(ClosTest, ConvertedProgramsTypecheck) {
  for (const char *Src :
       {"42", "(app (lam (x Int) (+ x 1)) 41)",
        "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 10)",
        "(app (app (fix b (n Int) (-> Int Int)"
        "  (if0 n (lam (x Int) x)"
        "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
        " 3) 0)"}) {
    clos::Program P;
    ASSERT_TRUE(convert(Src, P)) << Diags.str() << "\nfor: " << Src;
    EXPECT_TRUE(clos::typeCheckProgram(CL, P, Diags))
        << Diags.str() << "\nfor: " << Src << "\n"
        << clos::printProgram(CL, P);
  }
}

TEST_F(ClosTest, SemanticsPreserved) {
  struct Case {
    const char *Src;
    int64_t Want;
  } Cases[] = {
      {"(app (lam (x Int) (+ x 1)) 41)", 42},
      {"(app (fix f (n Int) Int (if0 n 1 (* n (app f (- n 1))))) 6)", 720},
      {"(app (app (fix b (n Int) (-> Int Int)"
       "  (if0 n (lam (x Int) x)"
       "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
       " 5) 100)",
       115},
      {"(let g (lam (p (* Int Int)) (+ (fst p) (snd p)))"
       " (app g (pair 20 22)))",
       42},
  };
  for (const auto &Tc : Cases) {
    clos::Program P;
    ASSERT_TRUE(convert(Tc.Src, P)) << Diags.str();
    clos::ClosEvalResult R = clos::evaluate(CL, P);
    EXPECT_TRUE(R.Ok) << R.Error << "\nfor: " << Tc.Src;
    EXPECT_EQ(R.Value, Tc.Want) << "for: " << Tc.Src;
  }
}

TEST_F(ClosTest, FunctionsAreHoisted) {
  clos::Program P;
  ASSERT_TRUE(convert("(app (lam (x Int) (app (lam (y Int) (+ x y)) 1)) 2)",
                      P));
  // Two user lambdas + reified continuations, all top-level.
  EXPECT_GE(P.Funs.size(), 2u);
}

} // namespace
