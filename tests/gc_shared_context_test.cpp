//===- tests/gc_shared_context_test.cpp - Frozen shared-base contexts -----===//
//
// Regression tests for the multi-session interning seam: before session
// contexts existed, serving N pipelines concurrently meant either N fully
// private contexts (no sharing, duplicated vocabulary) or naively pointing
// several Machines at one GcContext — whose uniquing tables, memo caches,
// and arena are unsynchronized, so TSan flags the very first concurrent
// intern. The shared-base design removes the race by construction: one
// frozen read-only base, all writes session-local. The multithreaded cases
// here are the TSan regression — run under the sanitize-thread CI job they
// fail on any future change that lets a session write through its base.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/StateCheck.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

Address installCollector(Machine &M, LanguageLevel Level) {
  switch (Level) {
  case LanguageLevel::Base:
    return installBasicCollector(M).Gc;
  case LanguageLevel::Forward:
    return installForwardCollector(M).Gc;
  case LanguageLevel::Generational:
    return installGenCollector(M).Gc;
  }
  return {};
}

/// Builds a base context warmed with the full collector vocabulary (all
/// three levels install their code and types through throwaway machines)
/// and freezes it.
std::unique_ptr<GcContext> makeFrozenBase() {
  auto Base = std::make_unique<GcContext>();
  for (LanguageLevel L : {LanguageLevel::Base, LanguageLevel::Forward,
                          LanguageLevel::Generational}) {
    Machine Warm(*Base, L);
    installCollector(Warm, L);
  }
  // A closed structural tag the tests below use as their shared-vocabulary
  // probe. (listTag is deliberately NOT such a probe: it packs a freshly
  // minted variable, so each session's list tag is session-local by
  // design.)
  (void)Base->tagProd(Base->tagInt(), Base->tagInt());
  Base->freeze();
  return Base;
}

/// Re-interning the probe tag must resolve to the base's node. Interning
/// through the frozen base itself is also legal — it is a pure lookup.
const Tag *probeTag(GcContext &C) {
  return C.tagProd(C.tagInt(), C.tagInt());
}

/// One full session over a shared base: private layered context, machine,
/// collector, forged heap, one certified collection, one oracle check.
/// Returns the halt value (0 on success).
int64_t runSession(const GcContext &Base, unsigned Index, LanguageLevel Level,
                   size_t ListLen, const Tag *BaseProbe) {
  GcContext C(Base, "s" + std::to_string(Index) + ".");
  // The shared vocabulary must resolve to the base's nodes, not copies.
  EXPECT_EQ(probeTag(C), BaseProbe);
  EXPECT_GT(C.stats().TagBaseHits, 0u);

  Machine M(C, Level);
  Address GcAddr = installCollector(M, Level);
  Region R = M.createRegion("from", 0);
  Region Old = Level == LanguageLevel::Generational
                   ? M.createRegion("old", 0)
                   : R;
  ForgedHeap H = forgeList(M, R, Old, ListLen);
  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, Old, Fin);
  M.start(E);
  M.run(5000000);
  EXPECT_EQ(M.status(), Machine::Status::Halted)
      << (M.status() == Machine::Status::Stuck ? M.stuckReason()
                                               : "did not halt");
  if (M.status() != Machine::Status::Halted)
    return -1;
  StateCheckResult Check = checkState(M);
  EXPECT_TRUE(Check.Ok) << Check.Error;
  return M.haltValue()->intValue();
}

TEST(SharedContext, BaseServesWarmVocabulary) {
  auto Base = makeFrozenBase();
  ASSERT_TRUE(Base->frozen());
  const Tag *BaseProbe = probeTag(*Base); // pure lookup on the frozen base
  {
    GcContext Session(*Base, "s0.");
    EXPECT_EQ(probeTag(Session), BaseProbe);
    EXPECT_GT(Session.stats().TagBaseHits, 0u);
    // Singletons are shared, so hashes (which fold kind addresses) agree.
    EXPECT_EQ(Session.omega(), Base->omega());
    EXPECT_EQ(Session.tagInt(), Base->tagInt());
    EXPECT_EQ(Session.typeInt(), Base->typeInt());
    EXPECT_EQ(Session.cd().sym(), Base->cd().sym());
  }
  // A second session resolves the same vocabulary to the same pointer.
  GcContext Session(*Base, "s1.");
  EXPECT_EQ(probeTag(Session), BaseProbe);
  // listTag, by contrast, packs a session-fresh variable: it must NOT be
  // shared across sessions (each session gets its own local node).
  EXPECT_NE(listTag(Session), nullptr);
  EXPECT_GT(Session.internedTags(), 0u);
}

TEST(SharedContext, SessionWritesStayLocal) {
  auto Base = makeFrozenBase();
  size_t BaseTags = Base->internedTags();
  size_t BaseTypes = Base->internedTypes();
  GcContext Session(*Base, "s0.");
  // A workload-specific node (a session-fresh variable) misses the base
  // and lands in the session's own table.
  Symbol V = Session.fresh("u");
  const Tag *Local = Session.tagProd(Session.tagVar(V), Session.tagInt());
  EXPECT_EQ(Local, Session.tagProd(Session.tagVar(V), Session.tagInt()));
  EXPECT_EQ(Base->internedTags(), BaseTags);
  EXPECT_EQ(Base->internedTypes(), BaseTypes);
  EXPECT_GT(Session.internedTags(), 0u);
}

TEST(SharedContext, NormalMemoFallsThroughToBase) {
  auto Base = std::make_unique<GcContext>();
  Symbol T = Base->intern("t");
  const Tag *Redex = Base->tagApp(Base->tagLam(T, Base->tagVar(T)),
                                  Base->tagInt());
  Base->rememberNormalTag(Redex, Base->tagInt());
  Base->freeze();
  GcContext Session(*Base, "s0.");
  EXPECT_EQ(Session.lookupNormalTagMemo(Redex), Session.tagInt());
}

TEST(SharedContext, FreshNamespacesAreDisjoint) {
  auto Base = makeFrozenBase();
  GcContext S0(*Base, "s0.");
  GcContext S1(*Base, "s1.");
  EXPECT_EQ(S0.name(S0.fresh("x")), "x$s0.0");
  EXPECT_EQ(S1.name(S1.fresh("x")), "x$s1.0");
  // Checker scopes append to the session namespace, so checker mints of
  // different sessions cannot collide in the shared table either.
  uint64_t Ctr = 0;
  {
    GcContext::FreshScope Scope(S0, "c", Ctr);
    EXPECT_EQ(S0.name(S0.fresh("x")), "x$s0.c0");
  }
  EXPECT_EQ(S0.name(S0.fresh("x")), "x$s0.1");
}

// The TSan regression: concurrent sessions, one frozen base. Every session
// interns the shared vocabulary (base hits), interns workload nodes
// (local writes), runs a certified collection, and oracle-checks the
// result. Any path that lets a session mutate base state shows up as a
// data race under -fsanitize=thread.
TEST(SharedContext, ConcurrentSessionsOverFrozenBase) {
  auto Base = makeFrozenBase();
  const Tag *BaseProbe = probeTag(*Base);
  constexpr unsigned N = 6;
  const LanguageLevel Levels[] = {LanguageLevel::Base, LanguageLevel::Forward,
                                  LanguageLevel::Generational};
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      int64_t Halt = runSession(*Base, I, Levels[I % 3], 200 + 40 * I,
                                BaseProbe);
      if (Halt != 0)
        ++Failures;
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
