//===- tests/gc_collector_forward_test.cpp - §7 forwarding collector ------===//
//
// The λGC-forw collector: forwarding pointers preserve sharing (DAGs stay
// DAGs), `widen` is a no-op on data, and every step preserves typing under
// the Def 7.1 reachable restriction.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorForward.h"

#include "gc/Builder.h"
#include "gc/CollectorBasic.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

const Value *runChecked(Machine &M, const Term *E,
                        uint64_t MaxSteps = 200000) {
  M.start(E);
  StateCheckOptions Opts;
  Opts.RestrictToReachable = true; // Def 7.1
  StateCheckResult R0 = checkState(M, Opts);
  EXPECT_TRUE(R0.Ok) << "initial state ill-formed: " << R0.Error;
  Opts.CheckCodeRegion = false;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M.status() != Machine::Status::Running)
      break;
    Machine::Status S = M.step();
    if (S == Machine::Status::Stuck) {
      ADD_FAILURE() << "machine stuck: " << M.stuckReason() << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    StateCheckResult R = checkState(M, Opts);
    if (!R.Ok) {
      ADD_FAILURE() << "preservation violation after step " << I << ": "
                    << R.Error << "\nterm:\n"
                    << printTerm(M.context(), M.currentTerm());
      return nullptr;
    }
    if (S == Machine::Status::Halted)
      return M.haltValue();
  }
  EXPECT_EQ(M.status(), Machine::Status::Halted) << "did not halt";
  return M.haltValue();
}

class ForwardCollectorTest : public ::testing::Test {
protected:
  GcContext C;
};

TEST_F(ForwardCollectorTest, CollectorCertifies) {
  Machine M(C, LanguageLevel::Forward);
  installForwardCollector(M);
  DiagEngine Diags;
  EXPECT_TRUE(certifyCodeRegion(M, Diags))
      << "forwarding collector failed certification:\n"
      << Diags.str();
}

template <typename WorkFn>
Address installMutator(Machine &M, const ForwardCollectorLib &Lib,
                       const Tag *Tau, WorkFn Work) {
  GcContext &C = M.context();
  Address MuAddr = M.reserveCode("mu");
  CodeBuilder CB(C);
  Region R = CB.regionParam("r");
  const Value *X = CB.valParam("x", C.typeM(R, Tau));
  const Term *GcCall = C.termApp(C.valAddr(Lib.Gc), {Tau}, {R},
                                 {C.valAddr(MuAddr), X});
  const Term *Body = C.termIfGc(R, GcCall, Work(R, X));
  M.defineCode(MuAddr, CB.build(Body));
  return MuAddr;
}

TEST_F(ForwardCollectorTest, SharingIsPreserved) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 4;
  Machine M(C, LanguageLevel::Forward, Cfg);
  ForwardCollectorLib Lib = installForwardCollector(M);

  // τ = (Int×Int) × (Int×Int); x = (c, c) with c shared.
  const Tag *PairII = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *Tau = C.tagProd(PairII, PairII);

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.strip(B.get(X));
        const Value *G1 = B.strip(B.get(B.proj1(G)));
        const Value *G2 = B.strip(B.get(B.proj2(G)));
        const Value *S1 = B.prim(PrimOp::Add, B.proj1(G1), B.proj2(G1));
        const Value *S2 = B.prim(PrimOp::Add, B.proj1(G2), B.proj2(G2));
        const Value *S = B.prim(PrimOp::Add, S1, S2);
        return B.finish(C.termHalt(S));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Shared =
      B.put(R, C.valInl(C.valPair(C.valInt(1), C.valInt(2))));
  const Value *Root = B.put(R, C.valInl(C.valPair(Shared, Shared)));
  (void)B.put(R, C.valInl(C.valPair(C.valInt(7), C.valInt(8))));
  (void)B.put(R, C.valInl(C.valPair(C.valInt(9), C.valInt(10))));
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 1 + 2 + 1 + 2);
  EXPECT_EQ(M.stats().IfGcTaken, 1u);
  EXPECT_EQ(M.stats().Widens, 1u);
  // Sharing preserved: root + ONE shared child = 2 live cells (vs 3 with
  // the basic collector — see gc_collector_basic_test).
  EXPECT_EQ(M.memory().liveDataCells(), 2u);
  // Two forwarding pointers were installed (root, shared child).
  EXPECT_EQ(M.stats().Sets, 2u);
}

TEST_F(ForwardCollectorTest, ExistentialSharingPreserved) {
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 4;
  Machine M(C, LanguageLevel::Forward, Cfg);
  ForwardCollectorLib Lib = installForwardCollector(M);

  // τ = (∃u.(u×Int)) × (∃u.(u×Int)) with both components the same package.
  Symbol U = C.fresh("u");
  const Tag *ExTag = C.tagExists(U, C.tagProd(C.tagVar(U), C.tagInt()));
  const Tag *Tau = C.tagProd(ExTag, ExTag);

  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.strip(B.get(X));
        const Value *E1 = B.strip(B.get(B.proj1(G)));
        auto [T, Y] = B.openTag(E1, "t", "y");
        (void)T;
        const Value *GY = B.strip(B.get(Y));
        const Value *N = B.proj2(GY);
        return B.finish(C.termHalt(N));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Inner =
      B.put(R, C.valInl(C.valPair(C.valInt(5), C.valInt(77))));
  Symbol PV = C.fresh("u");
  const Value *PkV = C.valPackTag(
      PV, C.tagInt(), Inner,
      C.typeM(R, C.tagProd(C.tagVar(PV), C.tagInt())));
  const Value *Ex = B.put(R, C.valInl(PkV));
  const Value *Root = B.put(R, C.valInl(C.valPair(Ex, Ex)));
  (void)B.put(R, C.valInl(C.valPair(C.valInt(0), C.valInt(0))));
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 77);
  // Live: root + one existential + one inner pair = 3 cells.
  EXPECT_EQ(M.memory().liveDataCells(), 3u);
}

TEST_F(ForwardCollectorTest, WidenIsANop) {
  // §7.1: widen moves no data — the number of machine-level writes during
  // a collection equals puts (new copies + continuations) plus sets
  // (forwarding pointers); widen itself contributes none.
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 2;
  Machine M(C, LanguageLevel::Forward, Cfg);
  ForwardCollectorLib Lib = installForwardCollector(M);

  const Tag *Tau = C.tagProd(C.tagInt(), C.tagInt());
  Address MuAddr = installMutator(
      M, Lib, Tau, [&](Region R, const Value *X) -> const Term * {
        BlockBuilder B(C);
        const Value *G = B.strip(B.get(X));
        return B.finish(C.termHalt(B.proj1(G)));
      });

  BlockBuilder B(C);
  Region R = B.letRegion("r");
  const Value *Root = B.put(R, C.valInl(C.valPair(C.valInt(9), C.valInt(1))));
  (void)B.put(R, C.valInl(C.valPair(C.valInt(0), C.valInt(0))));
  const Term *E = B.finish(C.termApp(C.valAddr(MuAddr), {}, {R}, {Root}));

  MachineStats Before = M.stats();
  const Value *V = runChecked(M, E);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->intValue(), 9);
  EXPECT_EQ(M.stats().Widens - Before.Widens, 1u);
}

} // namespace
