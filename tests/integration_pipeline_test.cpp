//===- tests/integration_pipeline_test.cpp - T4: differential semantics ---===//
//
// Whole-pipeline differential tests: every source program must evaluate to
// the same integer at every stage (source, CPS, λCLOS, λGC machine), at
// every language level, with collections actually firing when the region
// capacity is small.
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::harness;

namespace {

struct ProgramCase {
  const char *Name;
  const char *Src;
  int64_t Want;
};

const ProgramCase Programs[] = {
    {"const", "42", 42},
    {"arith", "(+ (* 6 7) (- 0 0))", 42},
    {"apply", "(app (lam (x Int) (+ x 1)) 41)", 42},
    {"pairs", "(let p (pair (pair 1 2) 3) (+ (snd (fst p)) (snd p)))", 5},
    {"factorial",
     "(app (fix f (n Int) Int (if0 n 1 (* n (app f (- n 1))))) 6)", 720},
    {"sum", "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 25)",
     325},
    {"chain",
     "(app (app (fix b (n Int) (-> Int Int)"
     "  (if0 n (lam (x Int) x)"
     "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
     " 8) 100)",
     136},
    {"shared-tree",
     // build(d) = λx. s (s x) with s = build(d-1): a DAG of closures.
     "(app (app (fix t (d Int) (-> Int Int)"
     "  (if0 d (lam (x Int) (+ x 1))"
     "    (let s (app t (- d 1)) (lam (x Int) (app s (app s x))))))"
     " 4) 0)",
     16},
    {"higher-order",
     "(let twice (lam (f (-> Int Int)) (lam (x Int) (app f (app f x))))"
     " (app (app twice (lam (y Int) (* y 3))) 2))",
     18},
};

class PipelineLevels
    : public ::testing::TestWithParam<std::tuple<gc::LanguageLevel, int>> {};

TEST_P(PipelineLevels, DifferentialSemantics) {
  auto [Level, Idx] = GetParam();
  const ProgramCase &P = Programs[Idx];

  PipelineOptions Opts;
  Opts.Level = Level;
  // Small regions force collections mid-run.
  Opts.Machine.DefaultRegionCapacity = 16;

  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compile(P.Src, Diags)) << Diags.str();

  RunResult Rs = Pipe.runSource();
  ASSERT_TRUE(Rs.Ok) << Rs.Error;
  EXPECT_EQ(Rs.Value, P.Want);

  RunResult Rc = Pipe.runCps();
  ASSERT_TRUE(Rc.Ok) << Rc.Error;
  EXPECT_EQ(Rc.Value, P.Want);

  RunResult Rl = Pipe.runClos();
  ASSERT_TRUE(Rl.Ok) << Rl.Error;
  EXPECT_EQ(Rl.Value, P.Want);

  RunResult Rm = Pipe.runMachine();
  ASSERT_TRUE(Rm.Ok) << Rm.Error;
  EXPECT_EQ(Rm.Value, P.Want) << "machine disagrees for " << P.Name;
}

std::string pipelineCaseName(
    const ::testing::TestParamInfo<std::tuple<gc::LanguageLevel, int>>
        &Info) {
  gc::LanguageLevel Level = std::get<0>(Info.param);
  int Idx = std::get<1>(Info.param);
  std::string Name = Programs[Idx].Name;
  for (char &Ch : Name)
    if (Ch == '-')
      Ch = '_';
  // Skip the "lambda-" prefix and sanitize.
  std::string LevelName = gc::languageLevelName(Level) + 7;
  for (char &Ch : LevelName)
    if (Ch == '-')
      Ch = '_';
  return LevelName + "_" + Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, PipelineLevels,
    ::testing::Combine(::testing::Values(gc::LanguageLevel::Base,
                                         gc::LanguageLevel::Forward,
                                         gc::LanguageLevel::Generational),
                       ::testing::Range(0, 9)),
    pipelineCaseName);

static_assert(std::size(Programs) == 9, "update the Range above");

TEST(PipelineIntegration, CollectionsActuallyFire) {
  // The chain program allocates ~3 closures per iteration; a capacity of 12
  // forces several collections at every level.
  const char *Src =
      "(app (app (fix b (n Int) (-> Int Int)"
      "  (if0 n (lam (x Int) x)"
      "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
      " 12) 1000)";
  for (gc::LanguageLevel Level :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    PipelineOptions Opts;
    Opts.Level = Level;
    Opts.Machine.DefaultRegionCapacity = 12;
    Pipeline Pipe(Opts);
    DiagEngine Diags;
    ASSERT_TRUE(Pipe.compile(Src, Diags))
        << gc::languageLevelName(Level) << ": " << Diags.str();
    RunResult R = Pipe.runMachine(20'000'000);
    ASSERT_TRUE(R.Ok) << gc::languageLevelName(Level) << ": " << R.Error;
    EXPECT_EQ(R.Value, 1000 + 12 * 13 / 2);
    EXPECT_GE(Pipe.machine().stats().IfGcTaken, 1u)
        << gc::languageLevelName(Level) << ": no collection fired";
    EXPECT_GE(Pipe.machine().stats().RegionsReclaimed, 1u);
  }
}

TEST(PipelineIntegration, MutatorCodeCertifies) {
  // The translated mutator + collector must jointly pass certification —
  // this is the paper's separate-compilation story: the collector is a
  // library, the mutator is compiled against M's contract only.
  const char *Src =
      "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 5)";
  for (gc::LanguageLevel Level :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    PipelineOptions Opts;
    Opts.Level = Level;
    Pipeline Pipe(Opts);
    DiagEngine Diags;
    ASSERT_TRUE(Pipe.compile(Src, Diags)) << Diags.str();
    EXPECT_TRUE(Pipe.certify(Diags))
        << gc::languageLevelName(Level) << ":\n"
        << Diags.str();
  }
}

TEST(PipelineIntegration, PerStepSoundnessDuringCollections) {
  // T1 on a real translated program: preservation re-checked at every
  // machine step through several full collections, at every level.
  const char *Src =
      "(app (app (fix b (n Int) (-> Int Int)"
      "  (if0 n (lam (x Int) x)"
      "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
      " 3) 10)";
  for (gc::LanguageLevel Level :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    PipelineOptions Opts;
    Opts.Level = Level;
    Opts.Machine.DefaultRegionCapacity = 10;
    Pipeline Pipe(Opts);
    DiagEngine Diags;
    ASSERT_TRUE(Pipe.compile(Src, Diags)) << Diags.str();
    RunResult R = Pipe.runMachine(2'000'000, /*CheckEveryN=*/1);
    ASSERT_TRUE(R.Ok) << gc::languageLevelName(Level) << ": " << R.Error;
    EXPECT_EQ(R.Value, 10 + 3 + 2 + 1);
    EXPECT_GE(Pipe.machine().stats().IfGcTaken, 1u)
        << gc::languageLevelName(Level);
  }
}

TEST(PipelineIntegration, MajorCollectionsKeepOldGenerationBounded) {
  // With only minor collections the old generation grows without bound
  // (every survivor is promoted forever); wiring the certified major
  // collector (ifgc ro) keeps it bounded and preserves the result.
  const char *Src =
      "(app (app (fix b (n Int) (-> Int Int)"
      "  (if0 n (lam (x Int) x)"
      "    (let g (app b (- n 1)) (lam (x Int) (app g (+ x n))))))"
      " 16) 100)";
  int64_t Want = 100 + 16 * 17 / 2;

  auto OldGenPeak = [&](bool Major, int64_t &Value) -> size_t {
    PipelineOptions Opts;
    Opts.Level = gc::LanguageLevel::Generational;
    Opts.InstallMajorCollector = Major;
    Opts.Machine.DefaultRegionCapacity = 8;
    Pipeline Pipe(Opts);
    DiagEngine Diags;
    EXPECT_TRUE(Pipe.compile(Src, Diags)) << Diags.str();
    EXPECT_TRUE(Pipe.certify(Diags)) << Diags.str();
    gc::Machine &M = Pipe.machine();
    M.start(Pipe.mainTerm());
    size_t Peak = 0;
    while (M.status() == gc::Machine::Status::Running) {
      M.step();
      for (const auto &[S, R] : M.memory().Regions) {
        std::string_view Name = M.context().name(S);
        if (Name.substr(0, 2) == "ro" || Name.substr(0, 2) == "rn")
          Peak = std::max(Peak, R.Cells.size());
      }
    }
    EXPECT_EQ(M.status(), gc::Machine::Status::Halted) << M.stuckReason();
    Value = M.status() == gc::Machine::Status::Halted
                ? M.haltValue()->intValue()
                : -1;
    if (Major) {
      EXPECT_GT(M.stats().RegionsReclaimed, 0u);
    }
    return Peak;
  };

  int64_t V1 = 0, V2 = 0;
  size_t PeakWithout = OldGenPeak(false, V1);
  size_t PeakWith = OldGenPeak(true, V2);
  EXPECT_EQ(V1, Want);
  EXPECT_EQ(V2, Want);
  // The major collector compacts the old space below the unbounded run.
  EXPECT_LT(PeakWith, PeakWithout)
      << "major collections should bound the old generation";
}

TEST(PipelineIntegration, NoCollectorBaselineRuns) {
  PipelineOptions Opts;
  Opts.InstallCollector = false;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(
      Pipe.compile("(app (lam (x Int) (* x 2)) 21)", Diags))
      << Diags.str();
  RunResult R = Pipe.runMachine();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 42);
  EXPECT_EQ(Pipe.machine().stats().IfGcTaken, 0u);
}

} // namespace
