//===- tests/vm_lower_test.cpp - Bytecode lowering unit tests -------------===//
//
// Pins down what the λGC → bytecode compiler (vm::Lowerer) decides, via the
// stable disassembly format of vm/Disasm.h:
//
//  * golden listings for straight-line code, shadowing, static and dynamic
//    typecase, and a Tpl-classified pack template (operand classification,
//    frame-slot assignment, and branch targets all visible in the text);
//  * frame-index semantics under shadowing and deep nesting, checked by
//    running the compiled chunk on the VM backend;
//  * the static-typecase specialization: a constant scrutinee compiles to
//    TypecaseStatic (pre-resolved branch), a tag variable stays dynamic,
//    and both still count machine TypecaseSteps.
//
//===----------------------------------------------------------------------===//

#include "vm/Disasm.h"
#include "vm/Lower.h"
#include "vm/Vm.h"

#include "gc/GcContext.h"

#include <gtest/gtest.h>

#include <memory>

using namespace scav;
using namespace scav::gc;

namespace {

std::string disasmMain(GcContext &C, const Term *E, const char *Label) {
  vm::Lowerer L(C);
  return vm::disassemble(*L.lowerMain(E, Label), C);
}

/// One program run on a fresh base-level machine with the VM backend
/// attached. Member order matters: Vm must outlive nothing and die before
/// M (it detaches itself in its destructor).
struct VmRun {
  std::unique_ptr<Machine> M;
  std::unique_ptr<vm::VmExec> Vm;
  int64_t Halt = -1;
};

VmRun runVm(GcContext &C, const Term *E) {
  MachineConfig Cfg;
  Cfg.Eval = EvalMode::Vm;
  VmRun R;
  R.M = std::make_unique<Machine>(C, LanguageLevel::Base, Cfg);
  R.Vm = std::make_unique<vm::VmExec>(*R.M);
  R.M->start(E);
  R.M->run(10'000);
  EXPECT_EQ(R.M->status(), Machine::Status::Halted);
  if (R.M->haltValue() && R.M->haltValue()->is(ValueKind::Int))
    R.Halt = R.M->haltValue()->intValue();
  return R;
}

//===----------------------------------------------------------------------===//
// Golden listings
//===----------------------------------------------------------------------===//

TEST(VmLower, GoldenShadowedLet) {
  GcContext C;
  Symbol X = C.intern("x"), Y = C.intern("y");
  // let x = 1; let x = (x, x); let y = π1 x; halt y
  // The rebinding of x must get a fresh slot (s1), and the pair operand is
  // a Fast template reading the *outer* x (s0).
  const Term *E = C.termLet(
      X, C.opVal(C.valInt(1)),
      C.termLet(X, C.opVal(C.valPair(C.valVar(X), C.valVar(X))),
                C.termLet(Y, C.opProj(1, C.valVar(X)),
                          C.termHalt(C.valVar(Y)))));
  EXPECT_EQ(disasmMain(C, E, "shadow"),
            "chunk shadow (slots=3)\n"
            "  0: let.val const 1 -> s0\n"
            "  1: let.val fast (x, x) [x=s0] -> s1\n"
            "  2: let.proj1 s1 -> s2\n"
            "  3: halt s2\n");
}

TEST(VmLower, GoldenStaticTypecase) {
  GcContext C;
  // typecase over the constant tag (Int × Int): compiles to
  // typecase.static with the branch pre-resolved to prod and the binder
  // tags baked in.
  const Term *E = C.termTypecase(
      C.tagProd(C.tagInt(), C.tagInt()), C.termHalt(C.valInt(1)),
      C.termHalt(C.valInt(2)), C.intern("a"), C.intern("b"),
      C.termHalt(C.valInt(3)), C.intern("e"), C.termHalt(C.valInt(4)));
  EXPECT_EQ(disasmMain(C, E, "tc"),
            "chunk tc (slots=3)\n"
            "  0: typecase.static const (Int x Int) int@1 arrow@2 "
            "prod(s0,s1)@3 exists(s2)@4 resolved=prod(Int, Int)\n"
            "  1: halt const 1\n"
            "  2: halt const 2\n"
            "  3: halt const 3\n"
            "  4: halt const 4\n");
}

TEST(VmLower, GoldenDynamicTypecase) {
  GcContext C;
  Symbol P = C.intern("p"), T = C.intern("t"), V = C.intern("v");
  // The scrutinee is a tag bound at runtime by open — must stay a dynamic
  // typecase reading slot s0.
  const Term *E = C.termOpenTag(
      C.valVar(P), T, V,
      C.termTypecase(C.tagVar(T), C.termHalt(C.valInt(1)),
                     C.termHalt(C.valInt(2)), C.intern("a"), C.intern("b"),
                     C.termHalt(C.valInt(3)), C.intern("e"),
                     C.termHalt(C.valInt(4))));
  EXPECT_EQ(disasmMain(C, E, "tc"),
            "chunk tc (slots=5)\n"
            "  0: open.tag const p -> s0, s1\n"
            "  1: typecase s0 int@2 arrow@3 prod(s2,s3)@4 exists(s4)@5\n"
            "  2: halt const 1\n"
            "  3: halt const 2\n"
            "  4: halt const 3\n"
            "  5: halt const 4\n");
}

TEST(VmLower, GoldenTplPackOperand) {
  GcContext C;
  Symbol P = C.intern("p"), T = C.intern("t"), V = C.intern("v"),
         Q = C.intern("q"), A = C.intern("a");
  // A pack whose witness tag and payload read open-bound slots: classified
  // Tpl with two attachments (witness tag, masked body type) and a 1-slot
  // cache key — only the Tag-sort dependency t; the Val-sort v lives in
  // the rebuilt spine and must NOT widen the key.
  Region Rho = Region::name(C.intern("rho"));
  const Type *Body = C.typeM(Rho, C.tagProd(C.tagVar(A), C.tagInt()));
  const Value *Pack =
      C.valPackTag(A, C.tagVar(T), C.valPair(C.valVar(V), C.valInt(1)), Body);
  const Term *E =
      C.termOpenTag(C.valVar(P), T, V,
                    C.termLet(Q, C.opVal(Pack), C.termHalt(C.valInt(0))));
  EXPECT_EQ(disasmMain(C, E, "tpl"),
            "chunk tpl (slots=3)\n"
            "  0: open.tag const p -> s0, s1\n"
            "  1: let.val tpl pack<a = t, (v, 1) : M[rho]((a x Int))> "
            "(atts=2 deltas=0 key=1) -> s2\n"
            "  2: halt const 0\n");
}

//===----------------------------------------------------------------------===//
// Frame-index semantics
//===----------------------------------------------------------------------===//

TEST(VmLower, ShadowingReadsInnermostBinding) {
  GcContext C;
  Symbol X = C.intern("x");
  // let x = 2; let x = x * 3; let x = x + 1; halt x  ⇒ 7. Any slot
  // collision between the bindings, or an outermost-first scope lookup,
  // produces a different answer.
  const Term *E = C.termLet(
      X, C.opVal(C.valInt(2)),
      C.termLet(X, C.opPrim(PrimOp::Mul, C.valVar(X), C.valInt(3)),
                C.termLet(X, C.opPrim(PrimOp::Add, C.valVar(X), C.valInt(1)),
                          C.termHalt(C.valVar(X)))));
  EXPECT_EQ(runVm(C, E).Halt, 7);
}

TEST(VmLower, DeepNestingAssignsDistinctSlots) {
  GcContext C;
  Symbol X = C.intern("x"), Y = C.intern("y");
  // Alternating x/y chain, 20 deep: x_{i+1} = x_i + y_i. Every binder gets
  // its own slot, and the sum is only right if each read resolves the
  // innermost live binding.
  const Term *Body = C.termHalt(C.valVar(X));
  for (int I = 0; I != 10; ++I)
    Body = C.termLet(
        X, C.opPrim(PrimOp::Add, C.valVar(X), C.valVar(Y)),
        C.termLet(Y, C.opPrim(PrimOp::Add, C.valVar(X), C.valVar(Y)), Body));
  const Term *E = C.termLet(
      X, C.opVal(C.valInt(1)),
      C.termLet(Y, C.opVal(C.valInt(1)), Body));
  // Fibonacci-style growth: pairs (x,y) follow (1,1) -> (2,3) -> (5,8)...
  // After 10 rounds x = F(21) = 10946.
  EXPECT_EQ(runVm(C, E).Halt, 10946);

  vm::Lowerer L(C);
  auto Ch = L.lowerMain(E, "deep");
  // 22 binders ⇒ 22 distinct slots; shadowing never reuses a live slot.
  EXPECT_EQ(Ch->NumSlots, 22u);
}

//===----------------------------------------------------------------------===//
// Static vs dynamic typecase at runtime
//===----------------------------------------------------------------------===//

TEST(VmLower, StaticTypecaseIsPreResolvedButStillCounts) {
  GcContext C;
  const Term *E = C.termTypecase(
      C.tagProd(C.tagInt(), C.tagInt()), C.termHalt(C.valInt(1)),
      C.termHalt(C.valInt(2)), C.intern("a"), C.intern("b"),
      C.termHalt(C.valInt(3)), C.intern("e"), C.termHalt(C.valInt(4)));
  VmRun R = runVm(C, E);
  EXPECT_EQ(R.Halt, 3);
  EXPECT_EQ(R.Vm->staticTypecaseSteps(), 1u);
  EXPECT_EQ(R.M->stats().TypecaseSteps, 1u);
}

TEST(VmLower, DynamicTypecaseTakesTheRuntimeBranch) {
  GcContext C;
  Symbol P = C.intern("p"), T = C.intern("t"), V = C.intern("v");
  // Scrutinee tag flows through a pack opened at runtime: the compiler
  // cannot resolve it, so staticTypecaseSteps stays 0 and the arrow branch
  // is selected dynamically.
  const Value *Pack = C.valPackTag(
      C.intern("a"), C.tagArrow({C.tagInt()}), C.valInt(0),
      C.typeM(Region::name(C.intern("rho")), C.tagVar(C.intern("a"))));
  const Term *E = C.termLet(
      P, C.opVal(Pack),
      C.termOpenTag(C.valVar(P), T, V,
                    C.termTypecase(C.tagVar(T), C.termHalt(C.valInt(1)),
                                   C.termHalt(C.valInt(2)), C.intern("a"),
                                   C.intern("b"), C.termHalt(C.valInt(3)),
                                   C.intern("e"), C.termHalt(C.valInt(4)))));
  VmRun R = runVm(C, E);
  EXPECT_EQ(R.Halt, 2);
  EXPECT_EQ(R.Vm->staticTypecaseSteps(), 0u);
  EXPECT_EQ(R.M->stats().TypecaseSteps, 1u);
}

} // namespace
