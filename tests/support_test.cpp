//===- tests/support_test.cpp - Support-library unit tests ----------------===//

#include "gc/NativeCollector.h"
#include "gc/Region.h"
#include "support/Arena.h"
#include "support/Diag.h"
#include "support/ParseInt.h"
#include "support/Printer.h"
#include "support/Rng.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <thread>

using namespace scav;

namespace {

//===----------------------------------------------------------------------===//
// ParseInt: environment-knob parsing (parser_robustness style)
//===----------------------------------------------------------------------===//

TEST(ParseEnv, UnsetAndEmptyFallBackSilently) {
  for (const char *Raw : {static_cast<const char *>(nullptr), ""}) {
    EnvUnsigned R = parseEnvUnsigned("SCAV_THREADS", Raw, 7, 1, 1024);
    EXPECT_EQ(R.Value, 7u);
    EXPECT_TRUE(R.Diag.empty());
  }
}

TEST(ParseEnv, ValidValuesParse) {
  EXPECT_EQ(parseEnvUnsigned("K", "1", 7, 1, 1024).Value, 1u);
  EXPECT_EQ(parseEnvUnsigned("K", "1024", 7, 1, 1024).Value, 1024u);
  EXPECT_EQ(parseEnvUnsigned("K", "0", 7, 0, 10).Value, 0u);
  EXPECT_TRUE(parseEnvUnsigned("K", "42", 7, 1, 1024).Diag.empty());
}

TEST(ParseEnv, MalformedValuesDiagnoseAndFallBack) {
  // The stoll-food bug class: every one of these used to silently become
  // the fallback with no hint the knob was ignored.
  struct Case {
    const char *Raw;
  } Cases[] = {
      {"4x"},     // trailing garbage
      {"x4"},     // not a number
      {"-1"},     // negative: not an unsigned integer
      {" 4"},     // leading whitespace is not accepted
      {"4 "},     // trailing whitespace either
      {"0x10"},   // base-10 only
      {"99999999999999999999"}, // does not fit uint64
  };
  for (const Case &C : Cases) {
    EnvUnsigned R = parseEnvUnsigned("SCAV_CHECK_EVERY", C.Raw, 13, 0, 1u << 30);
    EXPECT_EQ(R.Value, 13u) << C.Raw;
    ASSERT_FALSE(R.Diag.empty()) << C.Raw;
    // The diagnostic names the variable and quotes the offending text.
    EXPECT_NE(R.Diag.find("SCAV_CHECK_EVERY"), std::string::npos) << R.Diag;
    EXPECT_NE(R.Diag.find(C.Raw), std::string::npos) << R.Diag;
    EXPECT_NE(R.Diag.find("13"), std::string::npos) << R.Diag;
  }
}

TEST(ParseEnv, OutOfRangeDiagnosesAndFallsBack) {
  EnvUnsigned R = parseEnvUnsigned("SCAV_THREADS", "0", 1, 1, 1024);
  EXPECT_EQ(R.Value, 1u);
  EXPECT_NE(R.Diag.find("out of range"), std::string::npos) << R.Diag;
  R = parseEnvUnsigned("SCAV_THREADS", "4096", 1, 1, 1024);
  EXPECT_EQ(R.Value, 1u);
  EXPECT_FALSE(R.Diag.empty());
}

//===----------------------------------------------------------------------===//
// Native-GC thread knob: scoped per-thread override
//===----------------------------------------------------------------------===//

TEST(NativeGcThreads, ScopedOverrideIsPerThread) {
  unsigned Default = gc::nativeGcThreads();
  {
    gc::ScopedNativeGcThreads Override(3);
    EXPECT_EQ(gc::nativeGcThreads(), 3u);
    {
      gc::ScopedNativeGcThreads Nested(5);
      EXPECT_EQ(gc::nativeGcThreads(), 5u);
      // 0 = "no override": the enclosing override stays in effect.
      gc::ScopedNativeGcThreads NoOp(0);
      EXPECT_EQ(gc::nativeGcThreads(), 5u);
    }
    EXPECT_EQ(gc::nativeGcThreads(), 3u);
    // Another thread never sees this thread's override.
    unsigned Seen = 0;
    std::thread T([&] { Seen = gc::nativeGcThreads(); });
    T.join();
    EXPECT_EQ(Seen, Default);
  }
  EXPECT_EQ(gc::nativeGcThreads(), Default);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocatesAndAligns) {
  Arena A;
  char *P1 = static_cast<char *>(A.allocate(3, 1));
  double *P2 = static_cast<double *>(A.allocate(sizeof(double), 8));
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
  EXPECT_EQ(A.numAllocations(), 2u);
}

TEST(Arena, CreateRunsDestructors) {
  static int Destroyed = 0;
  struct Tracked {
    ~Tracked() { ++Destroyed; }
  };
  Destroyed = 0;
  {
    Arena A;
    A.create<Tracked>();
    A.create<Tracked>();
  }
  EXPECT_EQ(Destroyed, 2);
}

TEST(Arena, LargeAllocationsGetOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 16);
  EXPECT_NE(P, nullptr);
  EXPECT_GE(A.bytesReserved(), size_t(1) << 20);
}

TEST(Arena, CheckpointReleasesMemoryAndRunsDestructors) {
  static int Destroyed = 0;
  struct Tracked {
    std::string Payload = "force non-trivial destructor";
    ~Tracked() { ++Destroyed; }
  };
  Destroyed = 0;
  Arena A;
  A.create<Tracked>(); // survives
  Arena::Checkpoint Cp = A.mark();
  size_t Before = A.numAllocations();
  for (int I = 0; I != 100; ++I)
    A.create<Tracked>();
  A.release(Cp);
  EXPECT_EQ(Destroyed, 100);
  EXPECT_EQ(A.numAllocations(), Before);
  // The arena is still usable after a release.
  A.create<Tracked>();
  EXPECT_EQ(A.numAllocations(), Before + 1);
}

TEST(Arena, NestedCheckpoints) {
  Arena A;
  A.allocate(64, 8);
  Arena::Checkpoint Outer = A.mark();
  A.allocate(64, 8);
  Arena::Checkpoint Inner = A.mark();
  A.allocate(64, 8);
  A.release(Inner);
  EXPECT_EQ(A.numAllocations(), 2u);
  A.release(Outer);
  EXPECT_EQ(A.numAllocations(), 1u);
}

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

TEST(Symbols, InternIsIdempotent) {
  SymbolTable T;
  Symbol A = T.intern("foo");
  Symbol B = T.intern("foo");
  Symbol C = T.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(T.name(A), "foo");
}

TEST(Symbols, FreshNeverCollides) {
  SymbolTable T;
  Symbol A = T.intern("x");
  Symbol F1 = T.fresh("x");
  Symbol F2 = T.fresh("x");
  EXPECT_NE(F1, A);
  EXPECT_NE(F1, F2);
  EXPECT_EQ(T.name(F1).substr(0, 1), "x");
}

TEST(Symbols, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  SymbolTable T;
  EXPECT_TRUE(T.intern("a").isValid());
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangeBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
  }
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

//===----------------------------------------------------------------------===//
// Printer / Diag
//===----------------------------------------------------------------------===//

TEST(Printer, IndentationApplies) {
  Printer P;
  P << "a";
  P.newline();
  P.indent();
  P << "b";
  P.newline();
  P.dedent();
  P << "c";
  EXPECT_EQ(P.str(), "a\n  b\nc");
}

TEST(Diag, CountsErrorsOnly) {
  DiagEngine D;
  D.note("n");
  D.warning("w");
  EXPECT_FALSE(D.hasErrors());
  D.error("e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  EXPECT_NE(D.str().find("error: e"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

//===----------------------------------------------------------------------===//
// RegionSet
//===----------------------------------------------------------------------===//

TEST(RegionSet, SetSemantics) {
  SymbolTable T;
  gc::Region A = gc::Region::name(T.intern("a"));
  gc::Region B = gc::Region::var(T.intern("b"));
  gc::RegionSet S{A, B, A};
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(A));
  EXPECT_TRUE(S.contains(B));
  EXPECT_FALSE(S.contains(gc::Region::name(T.intern("b")))); // name ≠ var
}

TEST(RegionSet, SubsetAndSubstitution) {
  SymbolTable T;
  gc::Region A = gc::Region::name(T.intern("a"));
  gc::Region B = gc::Region::var(T.intern("b"));
  gc::Region C = gc::Region::name(T.intern("c"));
  gc::RegionSet Small{A};
  gc::RegionSet Big{A, B};
  EXPECT_TRUE(Small.subsetOf(Big));
  EXPECT_FALSE(Big.subsetOf(Small));
  gc::RegionSet Sub = Big.substituted(B, C);
  EXPECT_TRUE(Sub.contains(C));
  EXPECT_FALSE(Sub.contains(B));
}

} // namespace
