//===- tests/gc_parse_test.cpp - Textual λGC round trips ------------------===//
//
// The λGC concrete syntax: parse/print round trips on tags, types, terms,
// and whole programs; a hand-written textual mutator runs against the
// installed certified collector; parse errors are reported, not crashed
// on.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/Parse.h"
#include "gc/StateCheck.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;

namespace {

struct ParseTest : ::testing::Test {
  GcContext C;
  DiagEngine Diags;
};

TEST_F(ParseTest, TagRoundTrips) {
  for (const char *Src :
       {"Int", "t", "(* Int t)", "(-> Int (* Int Int))", "(E u (* u Int))",
        "(\\ u O (* u u))", "(@ (\\ u O u) Int)", "(->)"}) {
    const Tag *T = parseGcTag(C, Src, Diags);
    ASSERT_NE(T, nullptr) << Diags.str() << " for: " << Src;
    std::string Printed = printGcTagSexp(C, T);
    const Tag *T2 = parseGcTag(C, Printed, Diags);
    ASSERT_NE(T2, nullptr) << Diags.str() << " reparsing: " << Printed;
    EXPECT_TRUE(alphaEqualTag(T, T2)) << Printed;
  }
}

TEST_F(ParseTest, TypeRoundTrips) {
  for (const char *Src :
       {"int", "(* int int)", "(at (left (* int int)) r)", "(M r Int)",
        "(M2 ry ro (* Int Int))", "(C r1 r2 (E u (* u Int)))",
        "(code ((t O) (te (-> O O))) (r1 r2) ((M r1 t) int))",
        "(Et u O (M r (* u Int)))", "(Ea a (r1 r2) (* a int))",
        "(Er rr (ry ro) (* (M2 rr ro Int) int))",
        "(+ (left int) (right int))",
        "(trans (Int (\\ u O u)) (r1 r2) (int (M r2 Int)) cd)"}) {
    const Type *T = parseGcType(C, Src, Diags);
    ASSERT_NE(T, nullptr) << Diags.str() << " for: " << Src;
    std::string Printed = printGcTypeSexp(C, T);
    const Type *T2 = parseGcType(C, Printed, Diags);
    ASSERT_NE(T2, nullptr) << Diags.str() << " reparsing: " << Printed;
    EXPECT_TRUE(alphaEqualType(T, T2)) << Printed;
  }
}

TEST_F(ParseTest, TermRoundTripsViaPrinter) {
  const char *Src = "(letregion r"
                    " (let a (put r (pair 1 2))"
                    " (let g (get a)"
                    " (let x (pi1 g)"
                    " (let y (pi2 g)"
                    " (let s (+ x y)"
                    " (halt s)))))))";
  const Term *T = parseGcTerm(C, Src, Diags);
  ASSERT_NE(T, nullptr) << Diags.str();
  AddressNamer NoFn = [](Address) { return std::string(); };
  std::string P1 = printGcTermSexp(C, T, NoFn);
  const Term *T2 = parseGcTerm(C, P1, Diags);
  ASSERT_NE(T2, nullptr) << Diags.str();
  EXPECT_EQ(P1, printGcTermSexp(C, T2, NoFn));
}

TEST_F(ParseTest, ParsedTermRunsOnTheMachine) {
  const char *Src = "(letregion r"
                    " (let a (put r (pair 20 22))"
                    " (let g (get a)"
                    " (let x (pi1 g)"
                    " (let y (pi2 g)"
                    " (let s (+ x y)"
                    " (halt s)))))))";
  const Term *T = parseGcTerm(C, Src, Diags);
  ASSERT_NE(T, nullptr) << Diags.str();
  Machine M(C, LanguageLevel::Base);
  M.start(T);
  EXPECT_TRUE(checkState(M).Ok);
  M.run(1000);
  ASSERT_EQ(M.status(), Machine::Status::Halted);
  EXPECT_EQ(M.haltValue()->intValue(), 42);
}

TEST_F(ParseTest, ParseErrorsAreReported) {
  for (const char *Src :
       {"(", "())", "(halt)", "(let 3 4 (halt 0))", "(frobnicate 1)",
        "(app f (Int) (r))", "(typecase Int (halt 0))",
        "(put r)", "(fn missing)"}) {
    DiagEngine D;
    EXPECT_EQ(parseGcTerm(C, Src, D), nullptr)
        << "expected parse failure for: " << Src;
    EXPECT_TRUE(D.hasErrors()) << Src;
  }
}

TEST_F(ParseTest, WholeProgramWithCollector) {
  // A textual λGC mutator: builds a pair, triggers the certified collector
  // when the region fills, then sums the components.
  const char *Src = R"((program
    (fun mu () (r) ((x (M r (* Int Int))))
      (ifgc r
        (app (fn gc) ((* Int Int)) (r) ((fn mu) x))
        (let g (get x)
        (let a (pi1 g)
        (let b (pi2 g)
        (let s (+ a b)
        (halt s)))))))
    (main
      (letregion r
        (let junk1 (put r (pair 0 0))
        (let junk2 (put r (pair 0 0))
        (let root (put r (pair 19 23))
          (app (fn mu) () (r) (root))))))))
  )";

  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 3;
  Machine M(C, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M);
  std::map<std::string, Address> Prelude{{"gc", Lib.Gc}};

  ParsedGcProgram P = parseGcProgram(M, Src, Diags, Prelude);
  ASSERT_TRUE(P.Ok) << Diags.str();
  ASSERT_NE(P.Main, nullptr);

  // The parsed program must certify together with the collector.
  DiagEngine CertDiags;
  EXPECT_TRUE(certifyCodeRegion(M, CertDiags)) << CertDiags.str();

  M.start(P.Main);
  M.run(1'000'000);
  ASSERT_EQ(M.status(), Machine::Status::Halted)
      << (M.status() == Machine::Status::Stuck ? M.stuckReason() : "running");
  EXPECT_EQ(M.haltValue()->intValue(), 42);
  EXPECT_GE(M.stats().IfGcTaken, 1u);

  // Program-level round trip: print, re-parse into a fresh machine, rerun.
  std::string Printed = printGcProgramSexp(C, M, P);
  GcContext C2;
  Machine M2(C2, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib2 = installBasicCollector(M2);
  DiagEngine D2;
  ParsedGcProgram P2 = parseGcProgram(M2, Printed, D2, {{"gc", Lib2.Gc}});
  ASSERT_TRUE(P2.Ok) << D2.str() << "\nprinted program:\n" << Printed;
  M2.start(P2.Main);
  M2.run(1'000'000);
  ASSERT_EQ(M2.status(), Machine::Status::Halted);
  EXPECT_EQ(M2.haltValue()->intValue(), 42);
}

TEST_F(ParseTest, CollectorSurvivesTextualRoundTrip) {
  // The flagship fidelity check for the textual format: serialize the
  // entire certified basic collector to text, parse it into a FRESH
  // machine, re-certify it there, and run a full collection with the
  // reparsed collector driving a reparsed mutator.
  MachineConfig Cfg;
  Cfg.DefaultRegionCapacity = 3;
  GcContext C1;
  Machine M1(C1, LanguageLevel::Base, Cfg);
  BasicCollectorLib Lib = installBasicCollector(M1);

  // Name the collector's blocks and print them as a (program ...).
  ParsedGcProgram AsProgram;
  AsProgram.Funs = {{"gc", Lib.Gc},           {"gcend", Lib.GcEnd},
                    {"copy", Lib.Copy},       {"copypair1", Lib.CopyPair1},
                    {"copypair2", Lib.CopyPair2},
                    {"copyexist1", Lib.CopyExist1}};
  AsProgram.OwnFuns = AsProgram.Funs;
  std::string CollectorText = printGcProgramSexp(C1, M1, AsProgram);

  // Parse it into a fresh machine together with a textual mutator.
  std::string Mutator = R"(
    (fun mu () (r) ((x (M r (* Int Int))))
      (ifgc r
        (app (fn gc) ((* Int Int)) (r) ((fn mu) x))
        (let g (get x)
        (let a (pi1 g)
        (let b (pi2 g)
        (let s (+ a b)
        (halt s)))))))
    (main
      (letregion r
        (let junk1 (put r (pair 0 0))
        (let junk2 (put r (pair 0 0))
        (let root (put r (pair 19 23))
          (app (fn mu) () (r) (root)))))))))";
  std::string Full =
      CollectorText.substr(0, CollectorText.rfind(')')) + Mutator;

  GcContext C2;
  Machine M2(C2, LanguageLevel::Base, Cfg);
  DiagEngine D2;
  ParsedGcProgram P = parseGcProgram(M2, Full, D2);
  ASSERT_TRUE(P.Ok) << D2.str();

  // The reparsed collector must certify in the fresh context...
  DiagEngine CertDiags;
  EXPECT_TRUE(certifyCodeRegion(M2, CertDiags)) << CertDiags.str();

  // ...and collect.
  M2.start(P.Main);
  M2.run(1'000'000);
  ASSERT_EQ(M2.status(), Machine::Status::Halted)
      << (M2.status() == Machine::Status::Stuck ? M2.stuckReason()
                                                : "running");
  EXPECT_EQ(M2.haltValue()->intValue(), 42);
  EXPECT_GE(M2.stats().IfGcTaken, 1u);
  EXPECT_GE(M2.stats().RegionsReclaimed, 2u);
}

} // namespace
