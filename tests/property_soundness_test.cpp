//===- tests/property_soundness_test.cpp - T1: preservation + progress ----===//
//
// Property-based soundness: random well-typed source programs are lowered
// through the whole pipeline and executed on the λGC machine while the
// state checker re-establishes ⊢ (M, e) (Props 6.4/7.2/8.1); a stuck
// non-halt state after an accepted check would be a progress violation
// (Props 6.5/7.3/8.2). Differential semantics against the source evaluator
// is asserted as well (T4). Seeds are printed on failure so a
// counterexample is reproducible.
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::harness;

namespace {

struct SoundnessParam {
  uint64_t Seed;
  gc::LanguageLevel Level;
};

class PropertySoundness
    : public ::testing::TestWithParam<std::tuple<int, gc::LanguageLevel>> {};

TEST_P(PropertySoundness, RandomProgramsPreserveTypesAndSemantics) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0xC0FFEE00 + static_cast<uint64_t>(SeedIdx) * 7919;

  PipelineOptions Opts;
  Opts.Level = Level;
  Opts.Machine.DefaultRegionCapacity = 12; // small: force collections

  Pipeline Pipe(Opts);
  Rng R(Seed);
  GenOptions GOpts;
  GOpts.MaxDepth = 4;
  GOpts.MaxIterations = 8;
  const lambda::Expr *Prog =
      genProgram(Pipe.lambdaContext(), R, GOpts);

  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compileExpr(Prog, Diags))
      << "seed " << Seed << ":\n"
      << Diags.str() << "\nprogram:\n"
      << lambda::printExpr(Pipe.lambdaContext(), Prog);

  RunResult Src = Pipe.runSource();
  ASSERT_TRUE(Src.Ok) << "seed " << Seed << ": " << Src.Error;

  // Machine run with periodic deep checks (every 13 steps keeps runtime
  // manageable while still landing checks inside collections).
  RunResult Mach = Pipe.runMachine(3'000'000, /*CheckEveryN=*/13);
  ASSERT_TRUE(Mach.Ok) << "seed " << Seed << " at "
                       << gc::languageLevelName(Level) << ": " << Mach.Error
                       << "\nprogram:\n"
                       << lambda::printExpr(Pipe.lambdaContext(), Prog);
  EXPECT_EQ(Mach.Value, Src.Value)
      << "seed " << Seed << ": differential mismatch\nprogram:\n"
      << lambda::printExpr(Pipe.lambdaContext(), Prog);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertySoundness,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(gc::LanguageLevel::Base,
                                         gc::LanguageLevel::Forward,
                                         gc::LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, gc::LanguageLevel>>
           &Info) {
      std::string L = gc::languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

TEST(PropertyGenerator, GeneratedProgramsAreWellTypedAndTerminate) {
  SymbolTable Syms;
  lambda::LambdaContext LC(Syms);
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    Rng R(Seed * 31337);
    const lambda::Expr *E = genProgram(LC, R);
    DiagEngine Diags;
    const lambda::Type *T = lambda::typeCheck(LC, E, Diags);
    ASSERT_NE(T, nullptr) << "seed " << Seed << ":\n"
                          << Diags.str() << "\n"
                          << lambda::printExpr(LC, E);
    EXPECT_TRUE(T->is(lambda::TypeKind::Int));
    lambda::EvalResult Res = lambda::evaluate(E, 5'000'000);
    EXPECT_TRUE(Res.Value != nullptr)
        << "seed " << Seed << ": " << Res.Error;
  }
}

TEST(PropertyGenerator, PureGeneratorHitsRequestedTypes) {
  SymbolTable Syms;
  lambda::LambdaContext LC(Syms);
  Rng R(42);
  const lambda::Type *Want = LC.tyProd(
      LC.tyArrow(LC.tyInt(), LC.tyInt()), LC.tyProd(LC.tyInt(), LC.tyInt()));
  for (int I = 0; I != 40; ++I) {
    const lambda::Expr *E = genPure(LC, R, Want, 4);
    DiagEngine Diags;
    const lambda::Type *T = lambda::typeCheck(LC, E, Diags);
    ASSERT_NE(T, nullptr) << Diags.str();
    EXPECT_TRUE(lambda::typeEqual(T, Want));
  }
}

TEST(PropertyNegative, CorruptedCellIsRejected) {
  // Mutation check for the checker itself: corrupt a heap cell behind Ψ's
  // back and the state checker must notice (guards against the harness
  // trivially accepting everything).
  PipelineOptions Opts;
  Opts.Level = gc::LanguageLevel::Base;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compile("(snd (fst (pair (pair 1 2) 3)))", Diags))
      << Diags.str();
  gc::Machine &M = Pipe.machine();
  M.start(Pipe.mainTerm());
  // Run until something is in the heap.
  for (int I = 0; I != 200000 && M.memory().liveDataCells() == 0 &&
                  M.status() == gc::Machine::Status::Running;
       ++I)
    M.step();
  ASSERT_GT(M.memory().liveDataCells(), 0u);
  // Corrupt the first data cell with a value of the WRONG TYPE (a merely
  // wrong-but-well-typed value would rightly be accepted: the paper proves
  // type safety, not correctness).
  for (auto &[S, R] : M.memory().Regions) {
    if (S == M.context().cd().sym() || R.Cells.empty())
      continue;
    R.Cells[0] = M.context().valInt(666);
    break;
  }
  gc::StateCheckResult Res = gc::checkState(M);
  EXPECT_FALSE(Res.Ok) << "corrupted state was accepted";
}

} // namespace
