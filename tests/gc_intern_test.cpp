//===- tests/gc_intern_test.cpp - Hash-consing & memoization --------------===//
//
// The uniquing context's contract: structurally identical ground nodes are
// pointer-identical, normalization is memoized (and idempotent), open
// alpha-variants are NOT unified (interning is name-sensitive), cache
// entries unwind correctly with GcContext::Scope, and the full certified
// pipeline (collection + state check with Ψ tracking) still passes with
// every cache family actually hitting.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorForward.h"
#include "gc/NativeCollector.h"
#include "gc/StateCheck.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

//===----------------------------------------------------------------------===//
// 1. Uniquing: structurally equal ground nodes are pointer-equal
//===----------------------------------------------------------------------===//

TEST(Intern, GroundTagsArePointerEqual) {
  GcContext C;
  const Tag *A = C.tagProd(C.tagInt(), C.tagProd(C.tagInt(), C.tagInt()));
  const Tag *B = C.tagProd(C.tagInt(), C.tagProd(C.tagInt(), C.tagInt()));
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A->isGround());
  EXPECT_TRUE(A->isCanonical());
  EXPECT_GT(C.stats().TagInternHits, 0u);

  const Tag *Arrow = C.tagArrow({A, C.tagInt()});
  EXPECT_EQ(Arrow, C.tagArrow({B, C.tagInt()}));
}

TEST(Intern, GroundTypesArePointerEqual) {
  GcContext C;
  Region R = Region::name(C.fresh("rho"));
  const Type *A = C.typeM(R, C.tagProd(C.tagInt(), C.tagInt()));
  const Type *B = C.typeM(R, C.tagProd(C.tagInt(), C.tagInt()));
  EXPECT_EQ(A, B);
  EXPECT_GT(C.stats().TypeInternHits, 0u);
  EXPECT_EQ(C.typeProd(A, A), C.typeProd(B, B));
}

TEST(Intern, DistinctNodesStayDistinct) {
  GcContext C;
  EXPECT_NE(C.tagProd(C.tagInt(), C.tagInt()), C.tagInt());
  Region R1 = Region::name(C.fresh("r"));
  Region R2 = Region::name(C.fresh("r"));
  EXPECT_NE(C.typeM(R1, C.tagInt()), C.typeM(R2, C.tagInt()));
}

TEST(Intern, DisabledContextDoesNotUnify) {
  GcContext C(/*EnableInterning=*/false);
  EXPECT_FALSE(C.interningEnabled());
  const Tag *A = C.tagProd(C.tagInt(), C.tagInt());
  const Tag *B = C.tagProd(C.tagInt(), C.tagInt());
  EXPECT_NE(A, B);
  EXPECT_FALSE(A->isCanonical());
  // Structural equality still holds, of course.
  EXPECT_TRUE(tagEqual(C, A, B));
}

//===----------------------------------------------------------------------===//
// 2. Normalization: idempotent and memoized
//===----------------------------------------------------------------------===//

TEST(Intern, NormalizeTagMemoized) {
  GcContext C;
  Symbol T = C.fresh("t");
  // (λt.(t × Int)) Int — a redex, so the Normal bit cannot short-circuit.
  const Tag *Redex =
      C.tagApp(C.tagLam(T, C.tagProd(C.tagVar(T), C.tagInt())), C.tagInt());
  EXPECT_FALSE(Redex->isNormal());

  const Tag *N1 = normalizeTag(C, Redex);
  EXPECT_EQ(N1, C.tagProd(C.tagInt(), C.tagInt()));
  EXPECT_TRUE(N1->isNormal());
  // Idempotence, via the Normal bit (no recomputation).
  EXPECT_EQ(normalizeTag(C, N1), N1);

  uint64_t MemoBefore = C.stats().NormalizeTagMemoHits;
  const Tag *N2 = normalizeTag(C, Redex);
  EXPECT_EQ(N1, N2);
  EXPECT_EQ(C.stats().NormalizeTagMemoHits, MemoBefore + 1);
}

TEST(Intern, NormalizeTypeMemoizedPerLevel) {
  GcContext C;
  Region R = Region::name(C.fresh("rho"));
  const Type *MInt = C.typeM(R, C.tagProd(C.tagInt(), C.tagInt()));

  const Type *N1 = normalizeType(C, MInt, LanguageLevel::Base);
  EXPECT_EQ(normalizeType(C, N1, LanguageLevel::Base), N1);

  uint64_t MemoBefore = C.stats().NormalizeTypeMemoHits;
  EXPECT_EQ(normalizeType(C, MInt, LanguageLevel::Base), N1);
  EXPECT_EQ(C.stats().NormalizeTypeMemoHits, MemoBefore + 1);

  // A different language level is a different memo slot (M expands to a
  // different wrapper structure per level), not a stale reuse.
  const Type *NF = normalizeType(C, MInt, LanguageLevel::Forward);
  EXPECT_NE(NF, N1);
}

//===----------------------------------------------------------------------===//
// 3. Name-sensitivity: alpha-variants of open nodes are not unified
//===----------------------------------------------------------------------===//

TEST(Intern, AlphaVariantsNotUnified) {
  GcContext C;
  Symbol T = C.fresh("t"), S = C.fresh("s");
  const Tag *IdT = C.tagLam(T, C.tagVar(T));
  const Tag *IdS = C.tagLam(S, C.tagVar(S));
  EXPECT_NE(IdT, IdS); // interning is name-sensitive
  EXPECT_FALSE(IdT->isGround());
  EXPECT_TRUE(alphaEqualTag(IdT, IdS)); // ...but they stay alpha-equal
  EXPECT_TRUE(tagEqual(C, IdT, IdS));
  // Same binder name: the nodes really are identical, so they unify.
  EXPECT_EQ(IdT, C.tagLam(T, C.tagVar(T)));
}

//===----------------------------------------------------------------------===//
// 4. Scope rollback: released nodes leave no dangling cache entries
//===----------------------------------------------------------------------===//

TEST(Intern, ScopeUnwindsTablesAndMemos) {
  GcContext C;
  const Tag *Keep = C.tagProd(C.tagInt(), C.tagInt());
  size_t Tags = C.internedTags(), Types = C.internedTypes();
  {
    GcContext::Scope Scope(C);
    Symbol T = C.fresh("t");
    const Tag *Redex = C.tagApp(C.tagLam(T, C.tagVar(T)), Keep);
    normalizeTag(C, Redex); // populates the memo inside the scope
    Region R = Region::name(C.fresh("rho"));
    normalizeType(C, C.typeM(R, Redex), LanguageLevel::Base);
    EXPECT_GT(C.internedTags(), Tags);
  }
  EXPECT_EQ(C.internedTags(), Tags);
  EXPECT_EQ(C.internedTypes(), Types);
  // The surviving node is still canonical: re-building it hits the table
  // (a dangling table entry would crash or miss here).
  EXPECT_EQ(C.tagProd(C.tagInt(), C.tagInt()), Keep);
}

//===----------------------------------------------------------------------===//
// 5. End-to-end: certified collection + state check with Ψ tracking
//===----------------------------------------------------------------------===//

TEST(Intern, CollectionAndStateCheckWithTracking) {
  GcContext C;
  ASSERT_TRUE(C.interningEnabled());
  Machine M(C, LanguageLevel::Forward);
  Address GcAddr = installForwardCollector(M).Gc;
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeList(M, R, R, 24);

  // Same value pointer allocated twice: the second put must be served from
  // the recordPut cache.
  const Value *V = C.valPair(C.valInt(1), C.valInt(2));
  M.allocate(R, V);
  M.allocate(R, V);
  EXPECT_GT(M.stats().RecordPutCacheHits, 0u);

  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, R, Fin);
  M.start(E);
  M.run(50'000'000);
  ASSERT_EQ(M.status(), Machine::Status::Halted) << M.stuckReason();

  StateCheckResult Res = checkState(M);
  EXPECT_TRUE(Res.Ok) << Res.Error;

  // The run must have exercised every cache family.
  EXPECT_GT(C.stats().TagInternHits, 0u);
  EXPECT_GT(C.stats().TypeInternHits, 0u);
  EXPECT_GT(C.stats().NormalizeTagMemoHits + C.stats().NormalizeTypeMemoHits,
            0u);
  EXPECT_GT(C.stats().EqualPointerHits, 0u);
  EXPECT_GT(C.stats().SubstGroundSkips, 0u);
}

TEST(Intern, DifferentialCollectStillAgrees) {
  // The forwarding collector against the native sharing-preserving oracle
  // on one forged heap, with interning on — graph shapes must agree (the
  // detailed differential suite lives in gc_differential_collect_test).
  auto LiveCells = [](bool Intern) {
    GcContext C(Intern);
    Machine M(C, LanguageLevel::Forward);
    Address GcAddr = installForwardCollector(M).Gc;
    Region R = M.createRegion("from", 0);
    ForgedHeap H = forgeTree(M, R, R, 6, /*Share=*/true);
    Address Fin = installFinisher(M, H.Tag);
    const Term *E = collectOnceTerm(M, GcAddr, H, R, R, Fin);
    M.start(E);
    M.run(50'000'000);
    EXPECT_EQ(M.status(), Machine::Status::Halted) << M.stuckReason();
    return M.memory().liveDataCells();
  };
  EXPECT_EQ(LiveCells(true), LiveCells(false));
}

} // namespace
