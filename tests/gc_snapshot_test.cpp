//===- tests/gc_snapshot_test.cpp - Snapshot format round-trips -----------===//
//
// The versioned snapshot format (gc/Snapshot.h, DESIGN.md §3.14): a
// serialized machine state must load back diff-empty against itself, under
// both heap layouts and all three language levels, through both the
// in-memory bytes and the on-disk file path; a forced cross-layout load of
// the same state must also diff empty (layout is representation, not
// state); and loaded healthy states must still pass both checkers offline.
// Malformed images must be rejected with a diagnostic, never crash.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/Snapshot.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

struct CollectRig {
  GcContext C;
  std::unique_ptr<Machine> M;

  CollectRig(LanguageLevel Level, HeapLayout Layout, size_t N) {
    MachineConfig MC;
    MC.Layout = Layout;
    M = std::make_unique<Machine>(C, Level, MC);
    Address GcAddr{};
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    Region From = M->createRegion("from", 0);
    Region Old = Level == LanguageLevel::Generational
                     ? M->createRegion("old", 0)
                     : From;
    ForgedHeap H = forgeList(*M, From, Old, N);
    Address Fin = installFinisher(*M, H.Tag);
    M->start(collectOnceTerm(*M, GcAddr, H, From, Old, Fin));
  }
};

constexpr LanguageLevel AllLevels[] = {LanguageLevel::Base,
                                       LanguageLevel::Forward,
                                       LanguageLevel::Generational};
constexpr HeapLayout AllLayouts[] = {HeapLayout::Compact, HeapLayout::Legacy};

std::unique_ptr<Snapshot>
parseOk(const std::string &Bytes,
        std::optional<HeapLayout> Force = std::nullopt) {
  std::string Error;
  std::unique_ptr<Snapshot> S = parseSnapshot(Bytes, Error, Force);
  EXPECT_TRUE(S) << Error;
  return S;
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(Snapshot, RoundTripAllLevelsAllLayouts) {
  for (LanguageLevel Level : AllLevels) {
    for (HeapLayout Layout : AllLayouts) {
      SCOPED_TRACE(std::string(languageLevelName(Level)) + "/" +
                   (Layout == HeapLayout::Compact ? "compact" : "legacy"));
      CollectRig Rig(Level, Layout, 8);
      // Part-way into the collection, so the snapshot carries live
      // mid-collection structure (forwarded cells, to-region contents).
      for (int I = 0; I != 40 && Rig.M->status() == Machine::Status::Running;
           ++I)
        Rig.M->step();

      std::string Bytes = serializeSnapshot(*Rig.M);
      std::unique_ptr<Snapshot> A = parseOk(Bytes);
      ASSERT_TRUE(A);
      EXPECT_EQ(A->Level, Level);
      EXPECT_EQ(A->Layout, Layout);
      EXPECT_EQ(A->Steps, Rig.M->stats().Steps);

      // Serialization is deterministic, and a loaded snapshot diffs empty
      // against an independently loaded copy of itself.
      EXPECT_EQ(Bytes, serializeSnapshot(*Rig.M));
      std::unique_ptr<Snapshot> B = parseOk(Bytes);
      ASSERT_TRUE(B);
      EXPECT_EQ(diffSnapshots(*A, *B), "");

      // Healthy state: both checkers accept offline.
      StateCheckResult Full = recheckSnapshot(*A);
      EXPECT_TRUE(Full.Ok) << Full.Error;
      StateCheckResult Inc = recheckSnapshotIncremental(*A);
      EXPECT_TRUE(Inc.Ok) << Inc.Error;
    }
  }
}

TEST(Snapshot, CrossLayoutLoadDiffsEmpty) {
  for (LanguageLevel Level : AllLevels) {
    SCOPED_TRACE(languageLevelName(Level));
    CollectRig Rig(Level, HeapLayout::Compact, 6);
    for (int I = 0; I != 25 && Rig.M->status() == Machine::Status::Running;
         ++I)
      Rig.M->step();
    std::string Bytes = serializeSnapshot(*Rig.M);

    std::unique_ptr<Snapshot> Native = parseOk(Bytes);
    std::unique_ptr<Snapshot> Forced = parseOk(Bytes, HeapLayout::Legacy);
    ASSERT_TRUE(Native && Forced);
    EXPECT_EQ(Native->Layout, HeapLayout::Compact);
    EXPECT_EQ(Forced->Layout, HeapLayout::Legacy);
    // Layout is representation, not state: same cells, empty diff.
    EXPECT_EQ(diffSnapshots(*Native, *Forced), "");
    // And the re-encoded heap still checks.
    StateCheckResult R = recheckSnapshot(*Forced);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(Snapshot, DiffReportsDivergence) {
  CollectRig Rig(LanguageLevel::Base, HeapLayout::Compact, 6);
  for (int I = 0; I != 10; ++I)
    Rig.M->step();
  std::unique_ptr<Snapshot> A = parseOk(serializeSnapshot(*Rig.M));
  for (int I = 0; I != 6 && Rig.M->status() == Machine::Status::Running; ++I)
    Rig.M->step();
  std::unique_ptr<Snapshot> B = parseOk(serializeSnapshot(*Rig.M));
  ASSERT_TRUE(A && B);
  std::string D = diffSnapshots(*A, *B);
  EXPECT_NE(D, "");
  EXPECT_NE(D.find("steps"), std::string::npos) << D;
}

TEST(Snapshot, FileRoundTrip) {
  CollectRig Rig(LanguageLevel::Forward, HeapLayout::Compact, 5);
  for (int I = 0; I != 15; ++I)
    Rig.M->step();
  std::string Path =
      (std::filesystem::temp_directory_path() / "scav_snapshot_test.scavsnap")
          .string();
  SnapshotMeta Meta;
  Meta.Kind = "manual";
  Meta.RestrictToReachable = true;
  std::string Error;
  ASSERT_TRUE(saveSnapshot(*Rig.M, Meta, Path, Error)) << Error;
  std::unique_ptr<Snapshot> S = loadSnapshot(Path, Error);
  ASSERT_TRUE(S) << Error;
  EXPECT_EQ(S->Meta.Kind, "manual");
  EXPECT_TRUE(S->Meta.RestrictToReachable);
  std::unique_ptr<Snapshot> InMem = parseOk(serializeSnapshot(*Rig.M, Meta));
  ASSERT_TRUE(InMem);
  EXPECT_EQ(diffSnapshots(*S, *InMem), "");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Malformed images
//===----------------------------------------------------------------------===//

TEST(Snapshot, RejectsMalformedImages) {
  CollectRig Rig(LanguageLevel::Base, HeapLayout::Compact, 3);
  std::string Bytes = serializeSnapshot(*Rig.M);

  std::string Error;
  EXPECT_FALSE(parseSnapshot("", Error));
  EXPECT_FALSE(Error.empty());

  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(parseSnapshot(BadMagic, Error));

  // Truncation at any point must be a clean parse failure, not a crash.
  for (size_t Cut : {size_t(4), size_t(16), Bytes.size() / 2,
                     Bytes.size() - 1})
    EXPECT_FALSE(parseSnapshot(std::string_view(Bytes).substr(0, Cut), Error))
        << "cut=" << Cut;

  // Trailing garbage is also malformed (the format is self-delimiting).
  EXPECT_FALSE(parseSnapshot(Bytes + "x", Error));
}

} // namespace
