//===- tests/gc_inspect_verdict_test.cpp - Offline verdict fidelity -------===//
//
// The post-mortem contract behind certgc_inspect --verdict (DESIGN.md
// §3.14): for every forged-corruption kind the fuzzer can inject, the live
// checker's rejection diagnostic must be reproduced BYTE FOR BYTE by
// re-running the same checker over the snapshot loaded back from the dump
// — under both heap layouts. This is the "verdict fidelity" guarantee the
// snapshot format's symbol-table and fresh-name plumbing exist for.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/Snapshot.h"
#include "harness/FuzzMutate.h"
#include "harness/HeapForge.h"

#include <gtest/gtest.h>

#include <memory>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

struct CollectRig {
  GcContext C;
  std::unique_ptr<Machine> M;
  bool Restrict;

  CollectRig(LanguageLevel Level, HeapLayout Layout, size_t N)
      : Restrict(Level == LanguageLevel::Forward) {
    MachineConfig MC;
    MC.Layout = Layout;
    M = std::make_unique<Machine>(C, Level, MC);
    Address GcAddr{};
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    Region From = M->createRegion("from", 0);
    Region Old = Level == LanguageLevel::Generational
                     ? M->createRegion("old", 0)
                     : From;
    ForgedHeap H = forgeRandom(*M, From, Old, ForgeRng, 24);
    Address Fin = installFinisher(*M, H.Tag);
    M->start(collectOnceTerm(*M, GcAddr, H, From, Old, Fin));
  }

  Rng ForgeRng{7};
};

/// Injects \p Kind into a fresh rig (retrying a few seeds/prefixes until
/// the kind finds a victim) and demands the live full-checker verdict be
/// reproduced offline. Returns false when no attempt produced an
/// applied-and-rejected instance of the kind.
bool checkKind(StateMutationKind Kind, LanguageLevel Level, HeapLayout Layout,
               uint64_t Seed) {
  CollectRig Rig(Level, Layout, 24);
  for (uint64_t I = 0, Prefix = 4 + 7 * (Seed % 5);
       I != Prefix && Rig.M->status() == Machine::Status::Running; ++I)
    Rig.M->step();

  Rng R(Seed);
  std::optional<AppliedMutation> Applied =
      applyStateMutation(*Rig.M, Kind, R, Rig.Restrict);
  if (!Applied || Applied->Kind != Kind)
    return false;

  StateCheckOptions FOpts;
  FOpts.CheckCodeRegion = false;
  FOpts.RestrictToReachable = Rig.Restrict;
  StateCheckResult Live = checkState(*Rig.M, FOpts);
  // Some mutations are benign on some heaps (e.g. retyping an unreachable
  // cell under restrict-to-reachable); only rejections have a diagnostic
  // worth reproducing.
  if (Live.Ok)
    return false;

  SnapshotMeta Meta;
  Meta.Kind = "check-failure";
  Meta.Diagnostic = Live.Error;
  Meta.Checker = "full";
  Meta.RestrictToReachable = FOpts.RestrictToReachable;
  Meta.CheckCodeRegion = FOpts.CheckCodeRegion;

  std::string Bytes = serializeSnapshot(*Rig.M, Meta);
  std::string Error;
  std::unique_ptr<Snapshot> S = parseSnapshot(Bytes, Error);
  EXPECT_TRUE(S) << Error;
  if (!S)
    return true;

  StateCheckResult Offline = recheckSnapshot(*S);
  EXPECT_FALSE(Offline.Ok)
      << stateMutationName(Kind) << ": offline checker accepted";
  EXPECT_EQ(Offline.Error, Live.Error) << stateMutationName(Kind);

  // The incremental engine must agree on accept/reject offline, exactly as
  // the fuzzer demands of it live.
  StateCheckResult Inc = recheckSnapshotIncremental(*S);
  EXPECT_FALSE(Inc.Ok) << stateMutationName(Kind);
  return true;
}

TEST(InspectVerdict, AllMutationKindsReproduceOffline) {
  // Every corruption kind must be exercised by at least one
  // (level, layout) combination — a kind no combination can inject would
  // silently drop coverage.
  for (HeapLayout Layout : {HeapLayout::Compact, HeapLayout::Legacy}) {
    SCOPED_TRACE(Layout == HeapLayout::Compact ? "compact" : "legacy");
    unsigned Covered = 0;
    for (unsigned K = 0; K != NumStateMutationKinds; ++K) {
      bool Hit = false;
      for (LanguageLevel Level :
           {LanguageLevel::Base, LanguageLevel::Forward,
            LanguageLevel::Generational})
        for (uint64_t Seed = 1; Seed != 6 && !Hit; ++Seed)
          Hit = checkKind(static_cast<StateMutationKind>(K), Level, Layout,
                          Seed);
      if (Hit)
        ++Covered;
      else
        ADD_FAILURE() << "mutation kind "
                      << stateMutationName(static_cast<StateMutationKind>(K))
                      << " never applied+rejected on any level";
    }
    EXPECT_EQ(Covered, NumStateMutationKinds);
  }
}

/// The incremental checker's diagnostic is reproduced byte-for-byte too,
/// when it is the recorded checker.
TEST(InspectVerdict, IncrementalDiagnosticReproduces) {
  for (LanguageLevel Level :
       {LanguageLevel::Base, LanguageLevel::Generational}) {
    SCOPED_TRACE(languageLevelName(Level));
    CollectRig Rig(Level, HeapLayout::Compact, 24);
    IncrementalCheckOptions IOpts;
    IOpts.RestrictToReachable = Rig.Restrict;
    IncrementalStateCheck Inc(*Rig.M, IOpts);
    ASSERT_TRUE(Inc.check().Ok);
    for (int I = 0; I != 12 && Rig.M->status() == Machine::Status::Running;
         ++I)
      Rig.M->step();
    ASSERT_TRUE(Inc.check().Ok);

    Rng R(42);
    std::optional<AppliedMutation> Applied;
    for (unsigned J = 0; J != NumStateMutationKinds && !Applied; ++J)
      Applied = applyStateMutation(
          *Rig.M, static_cast<StateMutationKind>(J % NumStateMutationKinds),
          R, Rig.Restrict);
    ASSERT_TRUE(Applied);
    StateCheckResult Live = Inc.check();
    ASSERT_FALSE(Live.Ok) << "corruption not caught live";

    SnapshotMeta Meta;
    Meta.Kind = "check-failure";
    Meta.Diagnostic = Live.Error;
    Meta.Checker = "incremental";
    Meta.RestrictToReachable = IOpts.RestrictToReachable;
    Meta.CheckCodeRegion = false;

    std::string Error;
    std::unique_ptr<Snapshot> S =
        parseSnapshot(serializeSnapshot(*Rig.M, Meta), Error);
    ASSERT_TRUE(S) << Error;
    StateCheckResult Offline = recheckSnapshotIncremental(*S);
    ASSERT_FALSE(Offline.Ok);
    EXPECT_EQ(Offline.Error, Live.Error);
  }
}

} // namespace
