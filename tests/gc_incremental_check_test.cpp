//===- tests/gc_incremental_check_test.cpp - Incremental ⊢ (M, e) ---------===//
//
// The IncrementalStateCheck engine: its verdict must match the full
// checkState on every state both can see (differential, all three levels),
// and its bookkeeping must actually be incremental — steady-state checks
// validate O(delta) cells, journal events are consumed and trimmed, region
// events invalidate, resyncs and external mutations rebuild.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/StateCheck.h"
#include "harness/HeapForge.h"
#include "harness/Pipeline.h"

#include <gtest/gtest.h>

#include <memory>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

struct CollectRig {
  GcContext C;
  std::unique_ptr<Machine> M;

  CollectRig(LanguageLevel Level, size_t N) {
    M = std::make_unique<Machine>(C, Level);
    Address GcAddr{};
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    Region From = M->createRegion("from", 0);
    Region Old = Level == LanguageLevel::Generational
                     ? M->createRegion("old", 0)
                     : From;
    ForgedHeap H = forgeList(*M, From, Old, N);
    Address Fin = installFinisher(*M, H.Tag);
    M->start(collectOnceTerm(*M, GcAddr, H, From, Old, Fin));
  }
};

/// Steps the rig to halt with a per-step incremental check, asserting the
/// full checker agrees at every step. Returns the step count.
int runDifferential(CollectRig &Rig, bool Restrict,
                    IncrementalStateCheck &Inc) {
  StateCheckOptions Full;
  Full.CheckCodeRegion = false;
  Full.RestrictToReachable = Restrict;
  EXPECT_TRUE(Inc.check().Ok);
  int Steps = 0;
  for (; Steps != 100'000 && Rig.M->status() == Machine::Status::Running;
       ++Steps) {
    Rig.M->step();
    StateCheckResult RI = Inc.check();
    StateCheckResult RF = checkState(*Rig.M, Full);
    EXPECT_EQ(RI.Ok, RF.Ok) << "verdicts diverge at step " << Steps << ":\n"
                            << RI.Error << "\nvs\n"
                            << RF.Error;
    EXPECT_TRUE(RI.Ok) << RI.Error;
    if (!RI.Ok || RI.Ok != RF.Ok)
      break;
  }
  EXPECT_EQ(Rig.M->status(), Machine::Status::Halted);
  return Steps;
}

TEST(IncrementalCheck, AgreesWithFullCheckerEveryStepAllLevels) {
  for (LanguageLevel Level : {LanguageLevel::Base, LanguageLevel::Forward,
                              LanguageLevel::Generational}) {
    SCOPED_TRACE(languageLevelName(Level));
    CollectRig Rig(Level, 24);
    IncrementalCheckOptions Opts;
    Opts.RestrictToReachable = Level != LanguageLevel::Base;
    IncrementalStateCheck Inc(*Rig.M, Opts);
    runDifferential(Rig, Opts.RestrictToReachable, Inc);
  }
}

TEST(IncrementalCheck, SteadyStateValidatesDeltaNotHeap) {
  CollectRig Rig(LanguageLevel::Forward, 64);
  IncrementalCheckOptions Opts;
  Opts.RestrictToReachable = true;
  IncrementalStateCheck Inc(*Rig.M, Opts);
  ASSERT_TRUE(Inc.check().Ok);
  size_t AfterAttach = Inc.stats().CellsValidated;
  EXPECT_GT(AfterAttach, 64u); // attach really did check the whole heap

  int Steps = 0;
  for (; Steps != 100'000 && Rig.M->status() == Machine::Status::Running;
       ++Steps) {
    Rig.M->step();
    ASSERT_TRUE(Inc.check().Ok);
  }
  ASSERT_EQ(Rig.M->status(), Machine::Status::Halted);

  const IncrementalCheckStats &S = Inc.stats();
  EXPECT_EQ(S.Checks, static_cast<uint64_t>(Steps) + 1);
  EXPECT_EQ(S.FullResyncs, 1u); // only the attach
  // The incremental point: total re-validations stay around one heap's
  // worth of work across the whole run (a collection rewrites every live
  // cell roughly once), nowhere near Checks × heap-size.
  uint64_t PerStepFullWork =
      S.Checks * static_cast<uint64_t>(Rig.M->memory().liveDataCells());
  EXPECT_LT(S.CellsValidated - AfterAttach, PerStepFullWork / 10)
      << "incremental checker is re-validating the whole heap per step";
  EXPECT_GT(S.JournalEventsConsumed, 0u); // created/widened/dropped regions
  EXPECT_GE(S.RegionInvalidations, 1u);   // the widen, at minimum
}

TEST(IncrementalCheck, PeriodicResyncSafetyNet) {
  CollectRig Rig(LanguageLevel::Base, 16);
  IncrementalCheckOptions Opts;
  Opts.ResyncEvery = 8;
  IncrementalStateCheck Inc(*Rig.M, Opts);
  ASSERT_TRUE(Inc.check().Ok);
  for (int I = 0; I != 40 && Rig.M->status() == Machine::Status::Running;
       ++I) {
    Rig.M->step();
    ASSERT_TRUE(Inc.check().Ok);
  }
  EXPECT_GT(Inc.stats().FullResyncs, 1u);
}

TEST(IncrementalCheck, ExternalMutationSignalForcesResync) {
  CollectRig Rig(LanguageLevel::Base, 16);
  IncrementalStateCheck Inc(*Rig.M);
  ASSERT_TRUE(Inc.check().Ok);
  for (int I = 0; I != 10 && Rig.M->status() == Machine::Status::Running;
       ++I) {
    Rig.M->step();
    ASSERT_TRUE(Inc.check().Ok);
  }
  uint64_t Resyncs = Inc.stats().FullResyncs;
  // The coarse "something out-of-band happened" signal (what the native
  // collector raises after rewriting the heap wholesale).
  Rig.M->invalidatePutTypeCache();
  ASSERT_TRUE(Inc.check().Ok);
  EXPECT_EQ(Inc.stats().FullResyncs, Resyncs + 1);
}

TEST(IncrementalCheck, InvalidateAllRebuilds) {
  CollectRig Rig(LanguageLevel::Base, 16);
  IncrementalStateCheck Inc(*Rig.M);
  ASSERT_TRUE(Inc.check().Ok);
  uint64_t Resyncs = Inc.stats().FullResyncs;
  Inc.invalidateAll();
  ASSERT_TRUE(Inc.check().Ok);
  EXPECT_EQ(Inc.stats().FullResyncs, Resyncs + 1);
}

TEST(IncrementalCheck, PipelineOracleCadenceAgrees) {
  // The harness-level wiring: incremental per-step checking with the full
  // checker run as an oracle every 5th check must complete a real program.
  PipelineOptions Opts;
  Opts.Level = LanguageLevel::Forward;
  Opts.Machine.DefaultRegionCapacity = 12; // force collections
  Opts.IncrementalCheck = true;
  Opts.FullCheckEvery = 5;
  Pipeline Pipe(Opts);
  DiagEngine Diags;
  ASSERT_TRUE(Pipe.compile(
      "(app (fix f (n Int) Int (if0 n 0 (+ n (app f (- n 1))))) 24)", Diags))
      << Diags.str();
  RunResult R = Pipe.runMachine(3'000'000, /*CheckEveryN=*/1);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, 300);
}

TEST(IncrementalCheck, CheckEveryFromEnvParses) {
  unsetenv("SCAV_CHECK_EVERY");
  EXPECT_EQ(checkEveryFromEnv(7), 7u);
  setenv("SCAV_CHECK_EVERY", "13", 1);
  EXPECT_EQ(checkEveryFromEnv(7), 13u);
  setenv("SCAV_CHECK_EVERY", "0", 1);
  EXPECT_EQ(checkEveryFromEnv(7), 0u);
  setenv("SCAV_CHECK_EVERY", "junk", 1);
  EXPECT_EQ(checkEveryFromEnv(7), 7u);
  unsetenv("SCAV_CHECK_EVERY");
}

} // namespace
