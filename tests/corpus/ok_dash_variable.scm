(app (lam (-x Int) -x) 4)
