(app (lam (x Int) x
