//===- tests/gc_heap_word_test.cpp - Compact tagged-word heap format ------===//
//
// The compact heap's word format (gc/HeapWord.h) and the Memory-level
// encode/decode (DESIGN.md §3.12): every ValueKind round-trips through a
// tagged word, inline payloads saturate at the documented boundaries
// (60-bit ints, 28-bit region ids, 32-bit offsets), and anything past a
// boundary falls back to boxing with pointer-identical decode.
//
//===----------------------------------------------------------------------===//

#include "gc/GcContext.h"
#include "gc/Memory.h"
#include "gc/Ops.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
namespace hw = scav::gc::heapword;

namespace {

/// A compact Memory with one data region, plus the plumbing to push a
/// value through encodeValue → putWord → get (the lazy-decode read path).
struct CompactHeap {
  GcContext C;
  Symbol Cd, Data;
  Memory Mem;
  RegionData *RD;

  CompactHeap()
      : Cd(C.cd().sym()), Data(C.intern("data")),
        Mem(Cd, HeapLayout::Compact, &C) {
    Mem.addRegion(Data, 0);
    RD = Mem.region(Data);
  }

  /// Encode, store as a raw word (Cells stays null), read back via get.
  const Value *roundTrip(const Value *V) {
    uint64_t W = Mem.encodeValue(*RD, V);
    std::optional<Address> A = Mem.putWord(*RD, Data, W);
    EXPECT_TRUE(A.has_value());
    EXPECT_EQ(RD->Cells[A->Offset], nullptr) << "putWord must not decode";
    return Mem.get(*A);
  }

  /// Structural equality via the printer (values are not interned, so
  /// pointer comparison is wrong for unboxed shapes).
  void expectRoundTrip(const Value *V) {
    const Value *Back = roundTrip(V);
    ASSERT_NE(Back, nullptr);
    EXPECT_EQ(printValue(C, Back), printValue(C, V));
  }

  /// Boxed shapes must decode to the very same node, not a copy.
  void expectBoxedIdentity(const Value *V) {
    uint64_t W = Mem.encodeValue(*RD, V);
    EXPECT_EQ(hw::tagOf(W), hw::WordTag::Box);
    std::optional<Address> A = Mem.putWord(*RD, Data, W);
    ASSERT_TRUE(A.has_value());
    EXPECT_EQ(Mem.get(*A), V);
  }
};

TEST(HeapWord, IntBoundariesInline) {
  static_assert(hw::IntMin == -(int64_t(1) << 59));
  static_assert(hw::IntMax == (int64_t(1) << 59) - 1);
  for (int64_t N : {int64_t(0), int64_t(1), int64_t(-1), hw::IntMin,
                    hw::IntMax, hw::IntMin + 1, hw::IntMax - 1}) {
    ASSERT_TRUE(hw::fitsInt(N)) << N;
    uint64_t W = hw::makeInt(N);
    EXPECT_EQ(hw::tagOf(W), hw::WordTag::Int);
    EXPECT_EQ(hw::intOf(W), N) << "sign-extension must be exact";
  }
  EXPECT_FALSE(hw::fitsInt(hw::IntMax + 1));
  EXPECT_FALSE(hw::fitsInt(hw::IntMin - 1));
  EXPECT_FALSE(hw::fitsInt(std::numeric_limits<int64_t>::max()));
  EXPECT_FALSE(hw::fitsInt(std::numeric_limits<int64_t>::min()));
}

TEST(HeapWord, AddrPayloadSaturation) {
  // The address payload is 28-bit region id ‖ 32-bit offset; both extremes
  // must survive the pack/unpack untouched (PR 2's offset-space saturation
  // boundary, now at the word level).
  uint32_t MaxOff = std::numeric_limits<uint32_t>::max();
  for (auto [Id, Off] : {std::pair<uint32_t, uint32_t>{0, 0},
                         {hw::MaxRegionId, MaxOff},
                         {hw::MaxRegionId, 0},
                         {0, MaxOff},
                         {1234, 5678}}) {
    uint64_t W = hw::makeAddr(Id, Off);
    EXPECT_EQ(hw::tagOf(W), hw::WordTag::Addr);
    EXPECT_EQ(hw::addrRegionId(W), Id);
    EXPECT_EQ(hw::addrOffset(W), Off);
  }
  static_assert(hw::MaxRegionId == (uint32_t(1) << 28) - 1);
}

TEST(HeapWord, HoleIsZero) {
  // Word 0 ⟺ "no value": putWord of Hole reserves without establishing.
  EXPECT_EQ(hw::Hole, 0u);
  EXPECT_EQ(hw::tagOf(hw::Hole), hw::WordTag::Hole);
  // Int 0 is NOT the hole (tag bits distinguish them).
  EXPECT_NE(hw::makeInt(0), hw::Hole);
}

TEST(HeapWordMemory, IntRoundTrips) {
  CompactHeap H;
  for (int64_t N : {int64_t(0), int64_t(42), int64_t(-7), hw::IntMin,
                    hw::IntMax})
    H.expectRoundTrip(H.C.valInt(N));
}

TEST(HeapWordMemory, OversizeIntBoxes) {
  CompactHeap H;
  H.expectBoxedIdentity(H.C.valInt(hw::IntMax + 1));
  H.expectBoxedIdentity(H.C.valInt(hw::IntMin - 1));
  H.expectBoxedIdentity(H.C.valInt(std::numeric_limits<int64_t>::min()));
}

TEST(HeapWordMemory, AddrRoundTrips) {
  CompactHeap H;
  Address A{Region::name(H.Data), 7};
  H.expectRoundTrip(H.C.valAddr(A));
  // Offset saturation through the full encode path.
  Address Sat{Region::name(H.Data), std::numeric_limits<uint32_t>::max()};
  const Value *Back = H.roundTrip(H.C.valAddr(Sat));
  ASSERT_NE(Back, nullptr);
  ASSERT_TRUE(Back->is(ValueKind::Addr));
  EXPECT_EQ(Back->address().Offset, std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(Back->address().R.sym(), H.Data);
}

TEST(HeapWordMemory, PairAndSumRoundTrip) {
  CompactHeap H;
  GcContext &C = H.C;
  Address A{Region::name(H.Data), 3};
  // Flat pair, nested pair, inl/inr over addr (inline payload) and over
  // aux-encoded children.
  H.expectRoundTrip(C.valPair(C.valInt(1), C.valInt(2)));
  H.expectRoundTrip(
      C.valPair(C.valPair(C.valInt(1), C.valAddr(A)), C.valInt(3)));
  H.expectRoundTrip(C.valInl(C.valAddr(A)));
  H.expectRoundTrip(C.valInr(C.valAddr(A)));
  H.expectRoundTrip(C.valInl(C.valInt(9)));
  H.expectRoundTrip(C.valInr(C.valPair(C.valInt(1), C.valInt(2))));
}

TEST(HeapWordMemory, PointerRichKindsBox) {
  CompactHeap H;
  GcContext &C = H.C;
  Symbol X = C.intern("x");

  H.expectBoxedIdentity(C.valVar(X));
  H.expectBoxedIdentity(C.valTransApp(
      C.valAddr(Address{Region::name(H.Data), 0}), {C.tagInt()}, {}));
  H.expectBoxedIdentity(C.valCode({}, {}, {}, {}, {},
                                  C.termHalt(C.valInt(0))));
}

TEST(HeapWordMemory, PackKindsUseAuxWords) {
  // Packs keep their payload in the word world and their type-level
  // attachments as raw Aux entries: the decode is a fresh node that prints
  // identically (attachment pointers shared, structure rebuilt).
  CompactHeap H;
  GcContext &C = H.C;
  Symbol X = C.intern("x");
  const Value *Payload = C.valInt(5);

  const Value *PT = C.valPackTag(X, C.tagInt(), Payload, C.typeInt());
  EXPECT_EQ(hw::tagOf(H.Mem.encodeValue(*H.RD, PT)),
            hw::WordTag::PackTagAux);
  H.expectRoundTrip(PT);

  const Value *PV =
      C.valPackTyVar(X, RegionSet{}, C.typeInt(), Payload, C.typeInt());
  EXPECT_EQ(hw::tagOf(H.Mem.encodeValue(*H.RD, PV)),
            hw::WordTag::PackTyVarAux);
  H.expectRoundTrip(PV);

  const Value *PR = C.valPackRegion(X, RegionSet{Region::name(H.Data)},
                                    Region::name(H.Data), Payload,
                                    C.typeInt());
  EXPECT_EQ(hw::tagOf(H.Mem.encodeValue(*H.RD, PR)),
            hw::WordTag::PackRegionAux);
  H.expectRoundTrip(PR);

  // The shared-attachment contract: a decoded pack reuses the original
  // witness/body pointers and delta set, only the node is rebuilt.
  const Value *Back = H.roundTrip(PT);
  ASSERT_TRUE(Back->is(ValueKind::PackTag));
  EXPECT_EQ(Back->tagWitness(), PT->tagWitness());
  EXPECT_EQ(Back->bodyType(), PT->bodyType());
  EXPECT_EQ(Back->var(), PT->var());

  // A pack payload that itself needs boxing still works (box nested under
  // an aux-encoded pack).
  H.expectRoundTrip(
      C.valPackTag(X, C.tagInt(), C.valVar(X), C.typeInt()));

  // An unresolved region witness (region variable) survives the kind bit.
  const Value *PRVar = C.valPackRegion(X, RegionSet{}, Region::var(X),
                                       Payload, C.typeInt());
  const Value *BackVar = H.roundTrip(PRVar);
  ASSERT_TRUE(BackVar->is(ValueKind::PackRegion));
  EXPECT_TRUE(BackVar->regionWitness().isVar());
  EXPECT_EQ(BackVar->regionWitness().sym(), X);
}

TEST(HeapWordMemory, CellsAndWordsStayInSync) {
  CompactHeap H;
  // Value-level put eagerly stores both sides; word-level put defers the
  // cell; decodeRegion reconciles and zeroes the Undecoded counter.
  (void)H.Mem.put(H.Data, H.C.valInt(1));
  EXPECT_EQ(H.RD->Undecoded, 0u);
  (void)H.Mem.putWord(*H.RD, H.Data, hw::makeInt(2));
  EXPECT_EQ(H.RD->Undecoded, 1u);
  ASSERT_EQ(H.RD->Cells.size(), H.RD->Words.size());
  H.Mem.decodeRegion(*H.RD);
  EXPECT_EQ(H.RD->Undecoded, 0u);
  for (uint32_t Off = 0; Off != H.RD->Cells.size(); ++Off)
    EXPECT_NE(H.RD->Cells[Off], nullptr) << Off;
}

} // namespace
