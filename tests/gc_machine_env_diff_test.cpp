//===- tests/gc_machine_env_diff_test.cpp - Env vs Subst machine oracle ---===//
//
// Differential testing of the two evaluation modes: the environment machine
// (MachineConfig::EvalMode::Env, the default) must be observationally
// identical to the paper-verbatim substitution machine (EvalMode::Subst) on
// every program we can throw at it — same halt values, same step counts,
// same operational statistics, same stuck diagnostics, and the same
// checkState verdicts, at all three language levels.
//
// Two program sources:
//  * whole-pipeline programs from the random source generator (exercises
//    App/Let/ifgc/typecase/open under real certified collections);
//  * forged random heaps collected once by the level's certified collector
//    (exercises set/widen/only/ifreg-heavy collector code).
//
// Stats are compared field by field EXCEPT (a) the Env* counters, which are
// zero by definition in Subst mode, and (b) the RecordPutCacheHits/Misses
// split, which legitimately differs: the env machine reuses value pointers
// where substitution rebuilds them, so it sees more cache hits. The
// hit+miss *sum* (= number of recordPut calls) must still agree.
//
//===----------------------------------------------------------------------===//

#include "gc/StateCheck.h"
#include "harness/HeapForge.h"
#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"

#include <gtest/gtest.h>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

/// Every stat that must agree across modes, as (name, value) for readable
/// failure output. Excludes Env* (zero in Subst mode by definition) and the
/// RecordPutCache hit/miss split (see the header comment); the sum of the
/// split is included instead.
std::vector<std::pair<std::string, uint64_t>>
comparableStats(const MachineStats &S) {
  return {
      {"Steps", S.Steps},
      {"Puts", S.Puts},
      {"Gets", S.Gets},
      {"Sets", S.Sets},
      {"Projections", S.Projections},
      {"Applications", S.Applications},
      {"TypecaseSteps", S.TypecaseSteps},
      {"Opens", S.Opens},
      {"RegionsCreated", S.RegionsCreated},
      {"RegionsReclaimed", S.RegionsReclaimed},
      {"OnlyOps", S.OnlyOps},
      {"OnlyRegionsScanned", S.OnlyRegionsScanned},
      {"Widens", S.Widens},
      {"IfGcTaken", S.IfGcTaken},
      {"IfGcSkipped", S.IfGcSkipped},
      {"RecordPuts", S.RecordPutCacheHits + S.RecordPutCacheMisses},
  };
}

void expectSameStats(const MachineStats &Env, const MachineStats &Sub,
                     const std::string &What) {
  auto A = comparableStats(Env), B = comparableStats(Sub);
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I].second, B[I].second)
        << What << ": stat " << A[I].first << " diverges (env vs subst)";
}

MachineConfig configFor(EvalMode Mode) {
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Cfg.DefaultRegionCapacity = 12; // small: force collections
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Whole-pipeline programs
//===----------------------------------------------------------------------===//

struct PipelineOutcome {
  RunResult Run;
  MachineStats Stats;
  size_t LiveCells = 0;
  bool CheckOk = false;
  std::string StuckReason;
};

PipelineOutcome runPipeline(uint64_t Seed, LanguageLevel Level, EvalMode Mode,
                            bool Incremental) {
  PipelineOptions Opts;
  Opts.Level = Level;
  Opts.Machine = configFor(Mode);
  Opts.IncrementalCheck = Incremental;

  Pipeline Pipe(Opts);
  Rng R(Seed);
  GenOptions GOpts;
  GOpts.MaxDepth = 4;
  GOpts.MaxIterations = 8;
  const lambda::Expr *Prog = genProgram(Pipe.lambdaContext(), R, GOpts);

  DiagEngine Diags;
  PipelineOutcome Out;
  if (!Pipe.compileExpr(Prog, Diags)) {
    ADD_FAILURE() << "seed " << Seed << " does not compile:\n" << Diags.str();
    return Out;
  }
  // Deep-check every 13 steps: lands ⊢ (M, e) checks inside collections, in
  // both modes, so a checker-visible difference between the forced Env term
  // and the substituted term would fail here.
  Out.Run = Pipe.runMachine(3'000'000, /*CheckEveryN=*/13);
  Out.Stats = Pipe.machine().stats();
  Out.LiveCells = Pipe.machine().memory().liveDataCells();
  Out.CheckOk = checkState(Pipe.machine()).Ok;
  Out.StuckReason = Pipe.machine().status() == Machine::Status::Stuck
                        ? Pipe.machine().stuckReason()
                        : "";
  return Out;
}

class EnvDiffPipeline
    : public ::testing::TestWithParam<std::tuple<int, LanguageLevel>> {};

TEST_P(EnvDiffPipeline, ModesAgreeOnRandomPrograms) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0xE17D1FF0 + static_cast<uint64_t>(SeedIdx) * 7919;

  // 4-way differential: evaluation mode (env vs subst) × per-step checker
  // (incremental vs full). All four runs must agree observationally, and
  // the checker dimension must be invisible to the machine.
  PipelineOutcome E = runPipeline(Seed, Level, EvalMode::Env, true);
  PipelineOutcome S = runPipeline(Seed, Level, EvalMode::Subst, true);
  PipelineOutcome EF = runPipeline(Seed, Level, EvalMode::Env, false);
  PipelineOutcome SF = runPipeline(Seed, Level, EvalMode::Subst, false);

  std::string What =
      "seed " + std::to_string(Seed) + " " + languageLevelName(Level);
  EXPECT_EQ(E.Run.Ok, S.Run.Ok) << What << ": " << E.Run.Error << " vs "
                                << S.Run.Error;
  EXPECT_EQ(E.Run.Value, S.Run.Value) << What;
  EXPECT_EQ(E.Run.Steps, S.Run.Steps) << What;
  EXPECT_EQ(E.StuckReason, S.StuckReason) << What;
  EXPECT_EQ(E.LiveCells, S.LiveCells) << What;
  EXPECT_EQ(E.CheckOk, S.CheckOk) << What;
  EXPECT_TRUE(E.CheckOk) << What << ": final Env state fails checkState";
  expectSameStats(E.Stats, S.Stats, What);

  auto expectCheckerInvisible = [&](const PipelineOutcome &Incr,
                                    const PipelineOutcome &Full,
                                    const char *Mode) {
    std::string W = What + " (" + Mode + ") incremental vs full checker";
    EXPECT_EQ(Incr.Run.Ok, Full.Run.Ok)
        << W << ": " << Incr.Run.Error << " vs " << Full.Run.Error;
    EXPECT_EQ(Incr.Run.Value, Full.Run.Value) << W;
    EXPECT_EQ(Incr.Run.Steps, Full.Run.Steps) << W;
    EXPECT_EQ(Incr.StuckReason, Full.StuckReason) << W;
    EXPECT_EQ(Incr.LiveCells, Full.LiveCells) << W;
    EXPECT_EQ(Incr.CheckOk, Full.CheckOk) << W;
    expectSameStats(Incr.Stats, Full.Stats, W);
  };
  expectCheckerInvisible(E, EF, "env");
  expectCheckerInvisible(S, SF, "subst");
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EnvDiffPipeline,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(LanguageLevel::Base,
                                         LanguageLevel::Forward,
                                         LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, LanguageLevel>> &Info) {
      std::string L = languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

//===----------------------------------------------------------------------===//
// Forged heaps through one certified collection
//===----------------------------------------------------------------------===//

struct CollectOutcome {
  Machine::Status St = Machine::Status::Stuck;
  int64_t Halt = -1;
  MachineStats Stats;
  size_t LiveCells = 0;
  bool CheckOk = false;
  std::string StuckReason;
};

CollectOutcome runCollect(LanguageLevel Level, uint64_t Seed, size_t Budget,
                          EvalMode Mode) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Machine M(C, Level, Cfg);
  Address GcAddr{};
  switch (Level) {
  case LanguageLevel::Base:
    GcAddr = installBasicCollector(M).Gc;
    break;
  case LanguageLevel::Forward:
    GcAddr = installForwardCollector(M).Gc;
    break;
  case LanguageLevel::Generational:
    GcAddr = installGenCollector(M).Gc;
    break;
  }
  Region R = M.createRegion("from", 0);
  Region Old = Level == LanguageLevel::Generational
                   ? M.createRegion("old", 0)
                   : R;
  Rng Rand(Seed);
  ForgedHeap H = forgeRandom(M, R, Old, Rand, Budget);
  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, Old, Fin);
  M.start(E);
  M.run(50'000'000);

  CollectOutcome Out;
  Out.St = M.status();
  if (M.status() == Machine::Status::Halted && M.haltValue() &&
      M.haltValue()->is(ValueKind::Int))
    Out.Halt = M.haltValue()->intValue();
  Out.Stats = M.stats();
  Out.LiveCells = M.memory().liveDataCells();
  StateCheckOptions ChkOpts;
  // After widen (λGC-forw), dead from-space objects may not match the
  // collector-view Ψ; Def 7.1's reachable restriction is the right check.
  ChkOpts.RestrictToReachable = Level != LanguageLevel::Base;
  Out.CheckOk = checkState(M, ChkOpts).Ok;
  Out.StuckReason =
      M.status() == Machine::Status::Stuck ? M.stuckReason() : "";
  return Out;
}

class EnvDiffCollect
    : public ::testing::TestWithParam<std::tuple<int, LanguageLevel>> {};

TEST_P(EnvDiffCollect, ModesAgreeOnCertifiedCollections) {
  auto [SeedIdx, Level] = GetParam();
  uint64_t Seed = 0xF0 + static_cast<uint64_t>(SeedIdx) * 6151;

  CollectOutcome E = runCollect(Level, Seed, 20, EvalMode::Env);
  CollectOutcome S = runCollect(Level, Seed, 20, EvalMode::Subst);

  std::string What =
      "seed " + std::to_string(Seed) + " " + languageLevelName(Level);
  EXPECT_EQ(E.St, S.St) << What << ": " << E.StuckReason << " vs "
                        << S.StuckReason;
  EXPECT_EQ(E.Halt, S.Halt) << What;
  EXPECT_EQ(E.StuckReason, S.StuckReason) << What;
  EXPECT_EQ(E.LiveCells, S.LiveCells) << What;
  EXPECT_EQ(E.CheckOk, S.CheckOk) << What;
  EXPECT_TRUE(E.CheckOk) << What
                         << ": post-collection Env state fails checkState";
  expectSameStats(E.Stats, S.Stats, What);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EnvDiffCollect,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(LanguageLevel::Base,
                                         LanguageLevel::Forward,
                                         LanguageLevel::Generational)),
    [](const ::testing::TestParamInfo<std::tuple<int, LanguageLevel>> &Info) {
      std::string L = languageLevelName(std::get<1>(Info.param)) + 7;
      for (char &Ch : L)
        if (Ch == '-')
          Ch = '_';
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_" + L;
    });

//===----------------------------------------------------------------------===//
// Stuck diagnostics force the environment
//===----------------------------------------------------------------------===//

/// Builds `let x = val 5 in let y = π1 x in halt y`, whose π1 step is stuck
/// on a non-pair. In Env mode the scrutinee reaches the diagnostic as the
/// *variable* x and must be resolved through the environment before
/// printing; the message must match Subst mode byte for byte.
std::string stuckReasonFor(EvalMode Mode) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Machine M(C, LanguageLevel::Base, Cfg);
  Symbol X = C.intern("x"), Y = C.intern("y");
  const Term *E = C.termLet(
      X, C.opVal(C.valInt(5)),
      C.termLet(Y, C.opProj(1, C.valVar(X)), C.termHalt(C.valVar(Y))));
  M.start(E);
  M.run(100);
  EXPECT_EQ(M.status(), Machine::Status::Stuck);
  return M.stuckReason();
}

TEST(EnvDiff, StuckDiagnosticsResolveEnvironment) {
  std::string E = stuckReasonFor(EvalMode::Env);
  std::string S = stuckReasonFor(EvalMode::Subst);
  EXPECT_EQ(E, S);
  // The resolved value, not the variable, must appear in the message.
  EXPECT_NE(E.find("5"), std::string::npos) << E;
}

/// Env-mode bookkeeping sanity: the counters exist, move, and stay zero in
/// Subst mode.
TEST(EnvDiff, EnvCountersMoveOnlyInEnvMode) {
  for (EvalMode Mode : {EvalMode::Env, EvalMode::Subst}) {
    PipelineOptions Opts;
    Opts.Level = LanguageLevel::Base;
    Opts.Machine = configFor(Mode);
    Pipeline Pipe(Opts);
    DiagEngine Diags;
    ASSERT_TRUE(Pipe.compile("(+ (fst (pair 20 1)) 22)", Diags))
        << Diags.str();
    RunResult R = Pipe.runMachine();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Value, 42);
    const MachineStats &S = Pipe.machine().stats();
    if (Mode == EvalMode::Env) {
      EXPECT_GT(S.EnvBindings, 0u);
      EXPECT_GT(S.EnvLookups, 0u);
      EXPECT_GT(S.EnvDepthPeak, 0u);
    } else {
      EXPECT_EQ(S.EnvBindings, 0u);
      EXPECT_EQ(S.EnvLookups, 0u);
      EXPECT_EQ(S.EnvForces, 0u);
      EXPECT_EQ(S.EnvDepthPeak, 0u);
    }
  }
}

} // namespace
