//===- examples/quickstart.cpp - Five-minute tour --------------------------===//
//
// Compiles a small functional program through the whole certified-GC
// pipeline (STLC → CPS → λCLOS → λGC), certifies the collector AND the
// compiled mutator with the λGC typechecker, and runs the result on the
// λGC machine with a heap small enough that the certified collector has to
// run mid-computation.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include <cstdio>

using namespace scav;
using namespace scav::harness;

int main() {
  // A loop that builds a chain of closures on the heap — each iteration's
  // λ captures the previous one — then collapses it to an integer.
  const char *Source =
      "(app (app (fix build (n Int) (-> Int Int)"
      "  (if0 n (lam (x Int) x)"
      "    (let g (app build (- n 1))"
      "      (lam (x Int) (app g (+ x n))))))"
      " 20) 1000)";

  std::printf("source program:\n  %s\n\n", Source);

  PipelineOptions Opts;
  Opts.Level = gc::LanguageLevel::Base; // the Fig 12 collector
  Opts.Machine.DefaultRegionCapacity = 24; // tiny heap → collections fire

  Pipeline Pipe(Opts);
  DiagEngine Diags;
  if (!Pipe.compile(Source, Diags)) {
    std::printf("compilation failed:\n%s\n", Diags.str().c_str());
    return 1;
  }
  std::printf("compiled: %zu lambda-CLOS functions translated to lambda-GC "
              "code in cd\n",
              Pipe.closProgram().Funs.size());

  // The headline property: collector + mutator are well-typed λGC code.
  if (!Pipe.certify(Diags)) {
    std::printf("certification FAILED:\n%s\n", Diags.str().c_str());
    return 1;
  }
  std::printf("certified: every cd code block typechecks (collector + "
              "compiled mutator)\n\n");

  RunResult Ref = Pipe.runSource();
  RunResult Got = Pipe.runMachine();
  if (!Got.Ok) {
    std::printf("machine run failed: %s\n", Got.Error.c_str());
    return 1;
  }

  const gc::MachineStats &St = Pipe.machine().stats();
  std::printf("reference evaluation: %lld\n", (long long)Ref.Value);
  std::printf("lambda-GC machine:    %lld  (%s)\n", (long long)Got.Value,
              Got.Value == Ref.Value ? "agrees" : "MISMATCH");
  std::printf("\nmachine statistics:\n");
  std::printf("  steps:               %llu\n", (unsigned long long)St.Steps);
  std::printf("  heap allocations:    %llu\n", (unsigned long long)St.Puts);
  std::printf("  collections:         %llu\n",
              (unsigned long long)St.IfGcTaken);
  std::printf("  regions reclaimed:   %llu\n",
              (unsigned long long)St.RegionsReclaimed);
  std::printf("  typecase dispatches: %llu (the collector analysing tags)\n",
              (unsigned long long)St.TypecaseSteps);
  return Got.Value == Ref.Value ? 0 : 1;
}
