//===- examples/collector_listing.cpp - Print the certified collectors ----===//
//
// Renders the λGC source of a certified collector (the executable analogue
// of the paper's Figs 9, 11 and 12) together with its certification
// verdict. Pass `basic`, `forward`, or `gen`.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"

#include <cstdio>
#include <cstring>

using namespace scav;
using namespace scav::gc;

int main(int argc, char **argv) {
  const char *Which = argc > 1 ? argv[1] : "basic";
  LanguageLevel Level = LanguageLevel::Base;
  if (!std::strcmp(Which, "forward"))
    Level = LanguageLevel::Forward;
  else if (!std::strcmp(Which, "gen"))
    Level = LanguageLevel::Generational;
  else if (std::strcmp(Which, "basic")) {
    std::fprintf(stderr, "usage: collector_listing [basic|forward|gen]\n");
    return 2;
  }

  GcContext C;
  Machine M(C, Level);
  const char *Names[6] = {"gc", "gcend", "copy", "copypair1", "copypair2",
                          "copyexist1"};
  switch (Level) {
  case LanguageLevel::Base:
    installBasicCollector(M);
    break;
  case LanguageLevel::Forward:
    installForwardCollector(M);
    break;
  case LanguageLevel::Generational:
    installGenCollector(M);
    break;
  }

  std::printf("// The %s certified collector, as installed in cd.\n",
              languageLevelName(Level));
  std::printf("// (CPS + closure-converted; the executable analogue of the "
              "paper's Fig %s.)\n\n",
              Level == LanguageLevel::Base
                  ? "12"
                  : (Level == LanguageLevel::Forward ? "9" : "11"));

  const RegionData *Cd = M.memory().region(C.cd().sym());
  for (uint32_t Off = 0; Off != Cd->Cells.size(); ++Off) {
    if (!Cd->Cells[Off])
      continue;
    std::printf("cd.%u  (%s):\n%s\n\n", Off, Off < 6 ? Names[Off] : "?",
                printValue(C, Cd->Cells[Off]).c_str());
  }

  DiagEngine Diags;
  bool Ok = certifyCodeRegion(M, Diags);
  std::printf("certification: %s\n", Ok ? "PASS (all code blocks are "
                                          "well-typed lambda-GC)"
                                        : Diags.str().c_str());
  return Ok ? 0 : 1;
}
