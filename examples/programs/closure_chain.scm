; Builds a 40-deep chain of closures (a linked list in the heap), then
; collapses it. With --capacity 24 the collector runs several times.
(app (app (fix build (n Int) (-> Int Int)
  (if0 n (lam (x Int) x)
    (let g (app build (- n 1))
      (lam (x Int) (app g (+ x n))))))
 40) 0)
