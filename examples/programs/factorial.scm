; Factorial via fix, run under the certified collector:
;   certgc_run --level forward --capacity 16 --stats examples/programs/factorial.scm
(app (fix fact (n Int) Int
  (if0 n 1 (* n (app fact (- n 1)))))
 10)
