; A DAG of closures: every level reuses the SAME subtree closure twice.
; Compare live heap sizes under --level base vs --level forward.
(app (app (fix tree (d Int) (-> Int Int)
  (if0 d (lam (x Int) (+ x 1))
    (let s (app tree (- d 1))
      (lam (x Int) (app s (app s x))))))
 8) 0)
