//===- examples/generational_demo.cpp - Minor collections (Fig 11) --------===//
//
// Runs a mutator that repeatedly fills a tiny young generation, showing
// the certified generational collector promoting survivors into the old
// generation and stopping its traversal at old-generation references.
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include <cstdio>

using namespace scav;
using namespace scav::harness;

int main() {
  // Builds a closure chain of length 24 — far more allocation than the
  // young generation (capacity 10) can hold, so survivors keep getting
  // promoted while the already-promoted prefix is never re-copied.
  const char *Source =
      "(app (app (fix build (n Int) (-> Int Int)"
      "  (if0 n (lam (x Int) x)"
      "    (let g (app build (- n 1))"
      "      (lam (x Int) (app g (+ x n))))))"
      " 24) 0)";

  PipelineOptions Opts;
  Opts.Level = gc::LanguageLevel::Generational;
  Opts.InstallMajorCollector = true; // certified full collector on ifgc ro
  Opts.Machine.DefaultRegionCapacity = 10;

  Pipeline Pipe(Opts);
  DiagEngine Diags;
  if (!Pipe.compile(Source, Diags)) {
    std::printf("compilation failed:\n%s\n", Diags.str().c_str());
    return 1;
  }

  gc::Machine &M = Pipe.machine();
  M.start(Pipe.mainTerm());

  std::printf("running with a 10-cell young generation...\n\n");
  std::printf("%12s %10s %10s\n", "collections", "young", "old");

  uint64_t LastGc = 0;
  while (M.status() == gc::Machine::Status::Running) {
    M.step();
    if (M.stats().IfGcTaken != LastGc &&
        M.stats().RegionsReclaimed >= 2 * M.stats().IfGcTaken) {
      LastGc = M.stats().IfGcTaken;
      // Sample generation sizes right after each collection completes.
      size_t Young = 0, Old = 0;
      for (const auto &[S, R] : M.memory().Regions) {
        std::string_view Name = M.context().name(S);
        if (Name.substr(0, 2) == "ry")
          Young = R.Cells.size();
        else if (Name.substr(0, 2) == "ro")
          Old = R.Cells.size();
      }
      std::printf("%12llu %10zu %10zu\n", (unsigned long long)LastGc, Young,
                  Old);
    }
  }

  if (M.status() != gc::Machine::Status::Halted) {
    std::printf("failed: %s\n", M.stuckReason().c_str());
    return 1;
  }
  std::printf("\nresult: %lld (expected %d)\n",
              (long long)M.haltValue()->intValue(), 24 * 25 / 2);
  std::printf("collections: %llu (minor on young-full, certified major on "
              "old-full);\nthe old generation grows by survivors and is "
              "compacted by the major collector.\n",
              (unsigned long long)M.stats().IfGcTaken);
  return 0;
}
