//===- examples/certgc_run.cpp - File-driven pipeline driver ---------------===//
//
// The workbench as a command-line tool: compile and run a source file (or
// an inline expression) under any of the three certified collectors.
//
//   certgc_run [options] (<file.scm> | -e '<expr>' | --gc <file.gc>)
//     --level base|forward|gen     collector / language level
//     --capacity N                 young-region capacity in cells
//     --check-every N              re-check ⊢ (M,e) every N machine steps
//                                  (0 = never; incremental checker unless
//                                  --full-check; env SCAV_CHECK_EVERY sets
//                                  the default; --check is a synonym)
//     --full-check                 use the full O(heap) checker per check
//     --full-check-every N         with the incremental checker, also run
//                                  the full checker as an oracle every N-th
//                                  check
//     --certify                    typecheck all cd code before running
//     --dump-clos                  print the λCLOS program
//     --stats                      print machine statistics
//     --gc <file>                  run a raw λGC program (see gc/Parse.h);
//                                  `(fn gc)` refers to the installed
//                                  collector of the chosen --level
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include "gc/Parse.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace scav;
using namespace scav::harness;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: certgc_run [--level base|forward|gen] [--capacity N]"
               " [--check-every N] [--full-check] [--full-check-every N]"
               " [--certify] [--dump-clos] [--stats]"
               " (<file> | -e '<expr>' | --gc <file>)\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  PipelineOptions Opts;
  Opts.Machine.DefaultRegionCapacity = 64;
  // Soak runs steer the cadence with SCAV_CHECK_EVERY; explicit flags win.
  uint32_t CheckEveryN = checkEveryFromEnv(0);
  bool Certify = false, DumpClos = false, Stats = false;
  bool RawGc = false;
  std::string Source;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    auto NextArg = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--level") {
      const char *L = NextArg();
      if (!L)
        return usage();
      if (!std::strcmp(L, "base"))
        Opts.Level = gc::LanguageLevel::Base;
      else if (!std::strcmp(L, "forward"))
        Opts.Level = gc::LanguageLevel::Forward;
      else if (!std::strcmp(L, "gen"))
        Opts.Level = gc::LanguageLevel::Generational;
      else
        return usage();
    } else if (A == "--capacity") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.Machine.DefaultRegionCapacity =
          static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--check" || A == "--check-every") {
      const char *N = NextArg();
      if (!N)
        return usage();
      CheckEveryN = static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--full-check") {
      Opts.IncrementalCheck = false;
    } else if (A == "--full-check-every") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.FullCheckEvery = static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--certify") {
      Certify = true;
    } else if (A == "--dump-clos") {
      DumpClos = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "-e") {
      const char *E = NextArg();
      if (!E)
        return usage();
      Source = E;
    } else if (A == "--gc") {
      const char *F = NextArg();
      if (!F)
        return usage();
      std::ifstream In{F};
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", F);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      RawGc = true;
    } else if (!A.empty() && A[0] != '-') {
      std::ifstream In{std::string(A)};
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", argv[I]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
    } else {
      return usage();
    }
  }
  if (Source.empty())
    return usage();

  if (RawGc) {
    // Raw λGC mode: install the collector, parse, certify, run.
    gc::GcContext C;
    gc::Machine M(C, Opts.Level, Opts.Machine);
    std::map<std::string, gc::Address> Prelude;
    switch (Opts.Level) {
    case gc::LanguageLevel::Base:
      Prelude["gc"] = gc::installBasicCollector(M).Gc;
      break;
    case gc::LanguageLevel::Forward:
      Prelude["gc"] = gc::installForwardCollector(M).Gc;
      break;
    case gc::LanguageLevel::Generational: {
      gc::GenCollectorLib Lib = gc::installGenCollector(M);
      Prelude["gc"] = Lib.Gc;
      Prelude["gcfull"] = gc::installGenFullCollector(M).Gc;
      break;
    }
    }
    DiagEngine Diags;
    gc::ParsedGcProgram P = gc::parseGcProgram(M, Source, Diags, Prelude);
    if (!P.Ok || !P.Main) {
      std::fprintf(stderr, "lambda-GC parse failed:\n%s", Diags.str().c_str());
      return 1;
    }
    if (Certify) {
      if (!gc::certifyCodeRegion(M, Diags)) {
        std::fprintf(stderr, "certification FAILED:\n%s",
                     Diags.str().c_str());
        return 1;
      }
      std::printf("certified: all cd code blocks typecheck at %s\n",
                  gc::languageLevelName(Opts.Level));
    }
    M.start(P.Main);
    std::optional<gc::IncrementalStateCheck> Inc;
    if (CheckEveryN != 0 && Opts.IncrementalCheck)
      Inc.emplace(M);
    for (uint64_t I = 0; I != 500000000 &&
                         M.status() == gc::Machine::Status::Running;
         ++I) {
      M.step();
      if (CheckEveryN != 0 && I % CheckEveryN == 0) {
        gc::StateCheckResult R = Inc ? Inc->check() : gc::checkState(M);
        if (!R.Ok) {
          std::fprintf(stderr, "preservation violation: %s\n",
                       R.Error.c_str());
          return 1;
        }
      }
    }
    if (M.status() != gc::Machine::Status::Halted) {
      std::fprintf(stderr, "run failed: %s\n", M.stuckReason().c_str());
      return 1;
    }
    std::printf("%lld\n", (long long)M.haltValue()->intValue());
    if (Stats) {
      const gc::MachineStats &St = M.stats();
      std::fprintf(stderr, "steps=%llu collections=%llu\n",
                   (unsigned long long)St.Steps,
                   (unsigned long long)St.IfGcTaken);
    }
    return 0;
  }

  Pipeline Pipe(Opts);
  DiagEngine Diags;
  if (!Pipe.compile(Source, Diags)) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  if (DumpClos)
    std::printf("%s\n",
                clos::printProgram(Pipe.closContext(), Pipe.closProgram())
                    .c_str());

  if (Certify) {
    if (!Pipe.certify(Diags)) {
      std::fprintf(stderr, "certification FAILED:\n%s", Diags.str().c_str());
      return 1;
    }
    std::printf("certified: all cd code blocks typecheck at %s\n",
                gc::languageLevelName(Opts.Level));
  }

  RunResult R = Pipe.runMachine(500'000'000, CheckEveryN);
  if (!R.Ok) {
    std::fprintf(stderr, "run failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("%lld\n", (long long)R.Value);

  if (Stats) {
    const gc::MachineStats &St = Pipe.machine().stats();
    std::fprintf(stderr,
                 "steps=%llu puts=%llu gets=%llu collections=%llu "
                 "regions-reclaimed=%llu widens=%llu sets=%llu\n",
                 (unsigned long long)St.Steps, (unsigned long long)St.Puts,
                 (unsigned long long)St.Gets,
                 (unsigned long long)St.IfGcTaken,
                 (unsigned long long)St.RegionsReclaimed,
                 (unsigned long long)St.Widens,
                 (unsigned long long)St.Sets);
  }
  return 0;
}
