//===- examples/certgc_run.cpp - File-driven pipeline driver ---------------===//
//
// The workbench as a command-line tool: compile and run a source file (or
// an inline expression) under any of the three certified collectors.
//
//   certgc_run [options] (<file.scm> | -e '<expr>' | --gc <file.gc>)
//     --level base|forward|gen     collector / language level
//     --eval-mode env|subst|vm     machine evaluation mode (env machine,
//                                  reference substitution interpreter, or
//                                  the compiled bytecode VM); env
//                                  SCAV_EVAL_MODE sets the default
//     --heap-layout compact|legacy heap cell representation (compact
//                                  tagged-word buffers vs legacy pointer
//                                  cells — DESIGN.md §3.12); the build
//                                  default is compact unless
//                                  -DSCAV_HEAP_LEGACY=ON, and env
//                                  SCAV_HEAP_LAYOUT overrides the build
//     --capacity N                 young-region capacity in cells
//     --check-every N              re-check ⊢ (M,e) every N machine steps
//                                  (0 = never; incremental checker unless
//                                  --full-check; env SCAV_CHECK_EVERY sets
//                                  the default; --check is a synonym)
//     --full-check                 use the full O(heap) checker per check
//     --full-check-every N         with the incremental checker, also run
//                                  the full checker as an oracle every N-th
//                                  check
//     --async-check                run the per-N checks on a dedicated
//                                  checker thread (pipelined against the
//                                  mutator; verdicts byte-identical to the
//                                  synchronous checker's — DESIGN.md §3.11);
//                                  env SCAV_ASYNC_CHECK=1 sets the default
//     --threads N                  worker threads for parallel native
//                                  copies (nativeCollect callers that use
//                                  the process default; the certified λGC
//                                  collectors are sequential by
//                                  construction); env SCAV_THREADS sets
//                                  the default
//     --certify                    typecheck all cd code before running
//     --dump-clos                  print the λCLOS program
//     --stats                      print machine + checker statistics
//                                  (shared metrics text reporter)
//     --stats-json <file>          write the full metrics registry as
//                                  "scav-metrics-v1" JSON (DESIGN.md §3.9);
//                                  env SCAV_STATS_JSON sets the default
//     --trace-out <file>           record a trace and write it as
//                                  Chrome/Perfetto trace-event JSON; env
//                                  SCAV_TRACE=<file> sets the default
//     --dump-dir <dir>             write a post-mortem dump bundle under
//                                  <dir> on stuck machines and check
//                                  failures (DESIGN.md §3.14); inspect it
//                                  offline with certgc_inspect
//     --corrupt-at-step N          fault injection: forge a heap
//                                  corruption after machine step N so the
//                                  per-N check fails deterministically
//                                  (CI crash-dump fixture; needs
//                                  --check-every)
//     --corrupt-kind K             which StateMutationKind to start
//                                  cycling from (default 0)
//     --corrupt-seed S             RNG seed for the forged corruption
//                                  (default 1)
//     --gc <file>                  run a raw λGC program (see gc/Parse.h);
//                                  `(fn gc)` refers to the installed
//                                  collector of the chosen --level
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include "gc/NativeCollector.h"
#include "gc/Parse.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace scav;
using namespace scav::harness;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: certgc_run [--level base|forward|gen]"
               " [--eval-mode env|subst|vm] [--heap-layout compact|legacy]"
               " [--capacity N]"
               " [--check-every N] [--full-check] [--full-check-every N]"
               " [--async-check] [--threads N]"
               " [--certify] [--dump-clos] [--stats] [--stats-json FILE]"
               " [--trace-out FILE] [--dump-dir DIR] [--corrupt-at-step N]"
               " [--corrupt-kind K] [--corrupt-seed S]"
               " (<file> | -e '<expr>' | --gc <file>)\n");
  return 2;
}

/// End-of-run reporting shared by the raw-λGC and pipeline paths: optional
/// trace export, optional metrics JSON, optional metrics text on stderr.
void report(const support::MetricsRegistry &Reg, bool Stats,
            const std::string &StatsJson, const std::string &TraceOut) {
  if (!TraceOut.empty()) {
    if (!support::TraceSink::get().writeChromeJson(TraceOut))
      std::fprintf(stderr, "cannot write %s\n", TraceOut.c_str());
  }
  if (!StatsJson.empty())
    support::writeFile(StatsJson, support::writeMetricsJson(Reg));
  if (Stats)
    std::fputs(support::writeMetricsText(Reg).c_str(), stderr);
}

} // namespace

int main(int argc, char **argv) {
  PipelineOptions Opts;
  Opts.Machine.DefaultRegionCapacity = 64;
  // SCAV_EVAL_MODE seeds the default evaluation mode; --eval-mode wins.
  if (const char *Env = std::getenv("SCAV_EVAL_MODE"); Env && *Env) {
    std::optional<gc::EvalMode> Mode = gc::parseEvalMode(Env);
    if (!Mode) {
      std::fprintf(stderr, "SCAV_EVAL_MODE: unknown eval mode '%s'\n", Env);
      return 2;
    }
    Opts.Machine.Eval = *Mode;
  }
  // SCAV_ASYNC_CHECK=1 pipelines the checker by default; --async-check wins.
  if (const char *Env = std::getenv("SCAV_ASYNC_CHECK"); Env && *Env)
    Opts.AsyncCheck = std::strcmp(Env, "0") != 0;
  // Soak runs steer the cadence with SCAV_CHECK_EVERY; explicit flags win.
  uint32_t CheckEveryN = checkEveryFromEnv(0);
  bool Certify = false, DumpClos = false, Stats = false;
  bool RawGc = false;
  std::string Source;
  std::string TraceOut, StatsJson;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    auto NextArg = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--level") {
      const char *L = NextArg();
      if (!L)
        return usage();
      if (!std::strcmp(L, "base"))
        Opts.Level = gc::LanguageLevel::Base;
      else if (!std::strcmp(L, "forward"))
        Opts.Level = gc::LanguageLevel::Forward;
      else if (!std::strcmp(L, "gen"))
        Opts.Level = gc::LanguageLevel::Generational;
      else
        return usage();
    } else if (A == "--eval-mode") {
      const char *E = NextArg();
      if (!E)
        return usage();
      std::optional<gc::EvalMode> Mode = gc::parseEvalMode(E);
      if (!Mode)
        return usage();
      Opts.Machine.Eval = *Mode;
    } else if (A == "--heap-layout") {
      const char *L = NextArg();
      if (!L)
        return usage();
      if (!std::strcmp(L, "compact"))
        Opts.Machine.Layout = gc::HeapLayout::Compact;
      else if (!std::strcmp(L, "legacy"))
        Opts.Machine.Layout = gc::HeapLayout::Legacy;
      else
        return usage();
    } else if (A == "--capacity") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.Machine.DefaultRegionCapacity =
          static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--check" || A == "--check-every") {
      const char *N = NextArg();
      if (!N)
        return usage();
      CheckEveryN = static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--full-check") {
      Opts.IncrementalCheck = false;
    } else if (A == "--full-check-every") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.FullCheckEvery = static_cast<uint32_t>(std::atoi(N));
    } else if (A == "--async-check") {
      Opts.AsyncCheck = true;
    } else if (A == "--threads") {
      const char *N = NextArg();
      if (!N)
        return usage();
      gc::setNativeGcThreads(static_cast<unsigned>(std::atoi(N)));
    } else if (A == "--certify") {
      Certify = true;
    } else if (A == "--dump-clos") {
      DumpClos = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--stats-json") {
      const char *F = NextArg();
      if (!F)
        return usage();
      StatsJson = F;
    } else if (A == "--trace-out") {
      const char *F = NextArg();
      if (!F)
        return usage();
      TraceOut = F;
    } else if (A == "--dump-dir") {
      const char *F = NextArg();
      if (!F)
        return usage();
      Opts.DumpDir = F;
    } else if (A == "--corrupt-at-step") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.CorruptAtStep = std::strtoull(N, nullptr, 10);
    } else if (A == "--corrupt-kind") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.CorruptKind = static_cast<unsigned>(std::atoi(N));
    } else if (A == "--corrupt-seed") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.CorruptSeed = std::strtoull(N, nullptr, 10);
    } else if (A == "-e") {
      const char *E = NextArg();
      if (!E)
        return usage();
      Source = E;
    } else if (A == "--gc") {
      const char *F = NextArg();
      if (!F)
        return usage();
      std::ifstream In{F};
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", F);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      RawGc = true;
    } else if (!A.empty() && A[0] != '-') {
      std::ifstream In{std::string(A)};
      if (!In) {
        std::fprintf(stderr, "cannot open %s\n", argv[I]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
    } else {
      return usage();
    }
  }
  if (Source.empty())
    return usage();

  // Dump bundles record how to rerun this exact invocation.
  if (!Opts.DumpDir.empty())
    for (int I = 0; I < argc; ++I) {
      if (I)
        Opts.ReplayCmd += ' ';
      Opts.ReplayCmd += argv[I];
    }

  // Trace bootstrap: the explicit flag wins; SCAV_TRACE=<file> is the env
  // fallback (shared with every other driver via traceOutFromEnv).
  if (!TraceOut.empty()) {
#if SCAV_TRACE_COMPILED_IN
    support::TraceSink::get().enable();
#else
    std::fprintf(stderr,
                 "--trace-out: tracing compiled out (SCAV_TRACE_OFF); "
                 "writing an empty trace\n");
#endif
  } else if (std::optional<std::string> EnvOut = traceOutFromEnv()) {
    TraceOut = *EnvOut;
  }
  if (StatsJson.empty())
    if (const char *Env = std::getenv("SCAV_STATS_JSON"); Env && *Env)
      StatsJson = Env;

  if (RawGc) {
    // Raw λGC mode: install the collector, parse, certify, run.
    gc::GcContext C;
    gc::Machine M(C, Opts.Level, Opts.Machine);
    std::unique_ptr<vm::VmExec> Vm;
    if (Opts.Machine.Eval == gc::EvalMode::Vm)
      Vm = std::make_unique<vm::VmExec>(M);
    std::map<std::string, gc::Address> Prelude;
    switch (Opts.Level) {
    case gc::LanguageLevel::Base:
      Prelude["gc"] = gc::installBasicCollector(M).Gc;
      break;
    case gc::LanguageLevel::Forward:
      Prelude["gc"] = gc::installForwardCollector(M).Gc;
      break;
    case gc::LanguageLevel::Generational: {
      gc::GenCollectorLib Lib = gc::installGenCollector(M);
      Prelude["gc"] = Lib.Gc;
      Prelude["gcfull"] = gc::installGenFullCollector(M).Gc;
      break;
    }
    }
    DiagEngine Diags;
    gc::ParsedGcProgram P = gc::parseGcProgram(M, Source, Diags, Prelude);
    if (!P.Ok || !P.Main) {
      std::fprintf(stderr, "lambda-GC parse failed:\n%s", Diags.str().c_str());
      return 1;
    }
    if (Certify) {
      if (!gc::certifyCodeRegion(M, Diags)) {
        std::fprintf(stderr, "certification FAILED:\n%s",
                     Diags.str().c_str());
        return 1;
      }
      std::printf("certified: all cd code blocks typecheck at %s\n",
                  gc::languageLevelName(Opts.Level));
    }
    M.start(P.Main);
    std::optional<gc::IncrementalStateCheck> Inc;
    if (CheckEveryN != 0 && Opts.IncrementalCheck)
      Inc.emplace(M);
    auto Report = [&] {
      support::MetricsRegistry Reg;
      M.exportMetrics(Reg);
      if (Inc)
        Inc->stats().exportTo(Reg);
      report(Reg, Stats, StatsJson, TraceOut);
    };
    for (uint64_t I = 0; I != 500000000 &&
                         M.status() == gc::Machine::Status::Running;
         ++I) {
      M.step();
      if (CheckEveryN != 0 && I % CheckEveryN == 0) {
        gc::StateCheckResult R = Inc ? Inc->check() : gc::checkState(M);
        if (!R.Ok) {
          std::fprintf(stderr, "preservation violation: %s\n",
                       R.Error.c_str());
          Report();
          return 1;
        }
      }
    }
    if (M.status() != gc::Machine::Status::Halted) {
      std::fprintf(stderr, "run failed: %s\n", M.stuckReason().c_str());
      Report();
      return 1;
    }
    std::printf("%lld\n", (long long)M.haltValue()->intValue());
    Report();
    return 0;
  }

  Pipeline Pipe(Opts);
  DiagEngine Diags;
  if (!Pipe.compile(Source, Diags)) {
    std::fprintf(stderr, "compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  if (DumpClos)
    std::printf("%s\n",
                clos::printProgram(Pipe.closContext(), Pipe.closProgram())
                    .c_str());

  if (Certify) {
    if (!Pipe.certify(Diags)) {
      std::fprintf(stderr, "certification FAILED:\n%s", Diags.str().c_str());
      return 1;
    }
    std::printf("certified: all cd code blocks typecheck at %s\n",
                gc::languageLevelName(Opts.Level));
  }

  RunResult R = Pipe.runMachine(500'000'000, CheckEveryN);
  support::MetricsRegistry Reg;
  Pipe.exportMetrics(Reg);
  if (!R.Ok) {
    std::fprintf(stderr, "run failed: %s\n", R.Error.c_str());
    if (!R.DumpPath.empty())
      std::fprintf(stderr, "dump bundle: %s\n", R.DumpPath.c_str());
    report(Reg, Stats, StatsJson, TraceOut);
    return 1;
  }
  std::printf("%lld\n", (long long)R.Value);
  report(Reg, Stats, StatsJson, TraceOut);
  return 0;
}
