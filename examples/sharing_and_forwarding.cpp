//===- examples/sharing_and_forwarding.cpp - Fig 4 vs Fig 9 ---------------===//
//
// The paper's §7 motivation, live: collect the same maximally-shared DAG
// with the basic collector (which unfolds it into a tree) and with the
// forwarding-pointer collector (which keeps it a DAG), and watch the
// forwarding pointers being installed with `set` after the heap has been
// `widen`ed to the collector's view.
//
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "harness/HeapForge.h"

#include <cstdio>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

namespace {

void demo(LanguageLevel Level, unsigned Depth) {
  GcContext C;
  Machine M(C, Level);
  Address GcAddr = Level == LanguageLevel::Base
                       ? installBasicCollector(M).Gc
                       : installForwardCollector(M).Gc;
  Region R = M.createRegion("from", 0);
  ForgedHeap H = forgeTree(M, R, R, Depth, /*Share=*/true);
  Address Fin = installFinisher(M, H.Tag);
  const Term *E = collectOnceTerm(M, GcAddr, H, R, R, Fin);
  M.start(E);
  M.run(10'000'000);
  if (M.status() != Machine::Status::Halted) {
    std::printf("  collection failed: %s\n", M.stuckReason().c_str());
    return;
  }
  std::printf("  %-14s: %3zu cells before -> %4zu after   "
              "(forwarding stores: %llu, widen casts: %llu)\n",
              languageLevelName(Level), H.Cells,
              M.memory().liveDataCells(),
              (unsigned long long)M.stats().Sets,
              (unsigned long long)M.stats().Widens);
}

} // namespace

int main() {
  std::printf("A maximally-shared DAG: depth-D tree whose children are the "
              "SAME object.\nD+1 physical cells describe 2^(D+1)-1 logical "
              "nodes.\n\n");
  for (unsigned D : {3, 6, 9}) {
    std::printf("depth %u (%u cells, %llu logical nodes):\n", D, D + 1,
                (unsigned long long)((1ULL << (D + 1)) - 1));
    demo(LanguageLevel::Base, D);
    demo(LanguageLevel::Forward, D);
    std::printf("\n");
  }
  std::printf("The basic collector (Fig 4/12) re-copies the shared subtree "
              "at every reference;\nthe forwarding collector (Fig 9) "
              "installs `inr z` into each from-space object\nafter `widen` "
              "exposes the spare tag bit that the mutator-side M type "
              "forced\nevery object to carry.\n");
  return 0;
}
