#!/usr/bin/env python3
"""Diff two sets of scav-metrics-v1 bench records (BENCH_e*.json).

Usage:
    bench_compare.py BASELINE CURRENT [--gate PCT] [--min-delta PCT]

BASELINE and CURRENT are each a BENCH_*.json file or a directory scanned
for BENCH_*.json. Records pair up by their "experiment" field; experiments
present on only one side are listed but not compared.

For every shared gauge/counter the report shows baseline, current, and the
percent change, with the direction classified by key suffix:

  * higher-is-better:  *_speedup, *_steps_per_sec, *_rate, *_per_sec
  * lower-is-better:   *_ns, *_ms, *_us, *_seconds, *_bytes
  * neutral:           anything else (reported, never gated — step counts
    and sizes change legitimately when workloads change)

Histogram summaries compare mean and p99 as lower-is-better.

By default the exit code only reflects I/O / schema problems — wall-clock
numbers on shared CI runners drift far too much to gate merges on, so CI
runs this as a non-gating report. With --gate PCT, a directional metric
that regresses by more than PCT percent fails the run (for local A/B
checks on a quiet machine). A flipped "pass" verdict (baseline true,
current false) always fails, gate or not: that is the bench's own claim
gate, not runner noise.
"""

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path

HIGHER_BETTER = ("_speedup", "_steps_per_sec", "_rate", "_per_sec")
LOWER_BETTER = ("_ns", "_ms", "_us", "_seconds", "_bytes")


def direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 neutral."""
    if key.endswith(HIGHER_BETTER):
        return 1
    if key.endswith(LOWER_BETTER):
        return -1
    return 0


def load_records(spec: str) -> dict:
    """experiment name -> parsed record, from a file or a directory."""
    path = Path(spec)
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    elif path.is_file():
        files = [path]
    else:
        sys.exit(f"bench_compare: {spec}: no such file or directory")
    out = {}
    for f in files:
        try:
            doc = json.loads(f.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"bench_compare: {f}: {e}")
        if doc.get("schema") != "scav-metrics-v1":
            sys.exit(f"bench_compare: {f}: unexpected schema "
                     f"{doc.get('schema')!r}")
        out[doc.get("experiment", f.stem)] = doc
    return out


def metrics_of(doc: dict) -> dict:
    """Flat {key: float} view: gauges, counters, histogram mean/p99.

    The JSON writer emits ``null`` for non-finite gauge values
    (appendJsonNumber), so every value is filtered through a
    finite-number check — a single NaN record must not crash the whole
    comparison or poison a drift line.
    """
    out = {}
    flat = {}
    flat.update(doc.get("gauges", {}) or {})
    flat.update(doc.get("counters", {}) or {})
    for name, h in (doc.get("histograms", {}) or {}).items():
        for stat in ("mean", "p99"):
            if isinstance(h, dict) and stat in h:
                flat[f"{name}:{stat}"] = h[stat]
    for key, value in flat.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and math.isfinite(value):
            out[key] = float(value)
    return out


def self_test() -> int:
    """Synthetic-record regression tests, run from CI (--self-test).

    Covers the failure modes E14's multi-record output first exercised:
    zero baselines, null (non-finite) values, experiments present on one
    side only, and the gate logic around both.
    """

    def record(experiment, counters=None, gauges=None, histograms=None,
               ok=True):
        return {"schema": "scav-metrics-v1", "experiment": experiment,
                "pass": ok, "git_sha": "selftest",
                "counters": counters or {}, "gauges": gauges or {},
                "histograms": histograms or {}}

    def run(base_docs, curr_docs, argv):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "base").mkdir()
            (root / "curr").mkdir()
            for i, doc in enumerate(base_docs):
                (root / "base" / f"BENCH_t{i}.json").write_text(
                    json.dumps(doc), encoding="utf-8")
            for i, doc in enumerate(curr_docs):
                (root / "curr" / f"BENCH_t{i}.json").write_text(
                    json.dumps(doc), encoding="utf-8")
            return compare(str(root / "base"), str(root / "curr"), *argv)

    checks = []

    def check(name, got, want):
        checks.append((name, got, want))
        status = "ok" if got == want else "FAIL"
        print(f"self-test {status}: {name} (exit {got}, want {want})")

    # Zero and null baseline values must not crash or divide; drift on the
    # healthy metric still gates.
    noisy = record("e", gauges={"dead_rate": 0.0, "nan_gauge": None,
                                "x_steps_per_sec": 100.0})
    faster = record("e", gauges={"dead_rate": 5.0, "nan_gauge": None,
                                 "x_steps_per_sec": 150.0})
    slower = record("e", gauges={"dead_rate": 5.0,
                                 "x_steps_per_sec": 10.0})
    check("zero/null baseline compares clean", run([noisy], [faster], []), 0)
    check("regression gates through zero-baseline noise",
          run([noisy], [slower], ["--gate", "20"]), 1)
    # Records absent from one side are listed, never compared.
    check("one-sided records", run([record("only_base")],
                                   [record("only_curr")], []), 0)
    # Histogram entries that are not objects are tolerated.
    odd = record("h", histograms={"pause": {"mean": 3.0, "p99": None}})
    check("null histogram stat", run([odd], [odd], ["--gate", "1"]), 0)
    # A flipped pass verdict fails even without a gate.
    check("pass flip fails", run([record("p", ok=True)],
                                 [record("p", ok=False)], []), 1)
    # Improvements never gate.
    check("improvement passes gate",
          run([record("i", gauges={"t_seconds": 10.0})],
              [record("i", gauges={"t_seconds": 1.0})], ["--gate", "5"]), 0)

    failed = [name for name, got, want in checks if got != want]
    if failed:
        print(f"bench_compare --self-test: FAIL ({', '.join(failed)})")
        return 1
    print(f"bench_compare --self-test: ok ({len(checks)} checks)")
    return 0


def compare(baseline, current, *argv) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--gate", type=float, metavar="PCT", default=None)
    ap.add_argument("--min-delta", type=float, metavar="PCT", default=2.0)
    args = ap.parse_args(list(argv))

    base = load_records(baseline)
    curr = load_records(current)
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    shared = sorted(set(base) & set(curr))
    if only_base:
        print(f"baseline only (not compared): {', '.join(only_base)}")
    if only_curr:
        print(f"current only (not compared):  {', '.join(only_curr)}")
    if not shared:
        print("bench_compare: no shared experiments; nothing to compare")
        return 0

    failures = []
    for exp in shared:
        b, c = base[exp], curr[exp]
        print(f"\n== {exp} "
              f"(baseline {b.get('git_sha', '?')} -> "
              f"current {c.get('git_sha', '?')})")
        if b.get("pass") and not c.get("pass"):
            failures.append(f"{exp}: claim gate flipped pass -> FAIL")
            print("  !! claim gate flipped: baseline pass, current FAIL")
        bm, cm = metrics_of(b), metrics_of(c)
        for key in sorted(set(bm) & set(cm)):
            bv, cv = bm[key], cm[key]
            if bv == 0:
                # No meaningful percent change from a zero baseline; report
                # the transition (a metric coming alive is worth seeing)
                # without dividing by it.
                if cv != 0:
                    print(f"    {key:44s} {bv:>12.4g} -> {cv:>12.4g} "
                          f"(zero baseline, not gated)")
                continue
            pct = (cv - bv) / abs(bv) * 100
            sense = direction(key.split(":")[0])
            regress = sense != 0 and pct * sense < 0 and abs(pct) > (
                args.gate if args.gate is not None else float("inf"))
            if abs(pct) < args.min_delta and not regress:
                continue
            mark = {1: "+", -1: "-", 0: " "}[sense]
            flag = "  << regression" if regress else ""
            print(f"  {mark} {key:44s} {bv:>12.4g} -> {cv:>12.4g} "
                  f"({pct:+.1f}%){flag}")
            if regress:
                failures.append(f"{exp}: {key} regressed {pct:+.1f}% "
                                f"(gate {args.gate}%)")
        missing = sorted(set(bm) - set(cm))
        if missing:
            print(f"  dropped metrics: {', '.join(missing)}")
        added = sorted(set(cm) - set(bm))
        if added:
            print(f"  new metrics: {', '.join(added)}")

    if failures:
        print("\nbench_compare: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_compare: ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--gate", type=float, metavar="PCT", default=None,
                    help="fail if any directional metric regresses by more "
                         "than PCT percent (default: report only)")
    ap.add_argument("--min-delta", type=float, metavar="PCT", default=2.0,
                    help="suppress rows that moved less than PCT percent "
                         "(default: 2)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in synthetic-record tests and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current are required unless --self-test")
    argv = []
    if args.gate is not None:
        argv += ["--gate", str(args.gate)]
    argv += ["--min-delta", str(args.min_delta)]
    return compare(args.baseline, args.current, *argv)


if __name__ == "__main__":
    sys.exit(main())
