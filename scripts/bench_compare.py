#!/usr/bin/env python3
"""Diff two sets of scav-metrics-v1 bench records (BENCH_e*.json).

Usage:
    bench_compare.py BASELINE CURRENT [--gate PCT] [--min-delta PCT]

BASELINE and CURRENT are each a BENCH_*.json file or a directory scanned
for BENCH_*.json. Records pair up by their "experiment" field; experiments
present on only one side are listed but not compared.

For every shared gauge/counter the report shows baseline, current, and the
percent change, with the direction classified by key suffix:

  * higher-is-better:  *_speedup, *_steps_per_sec, *_rate, *_per_sec
  * lower-is-better:   *_ns, *_ms, *_us, *_seconds, *_bytes
  * neutral:           anything else (reported, never gated — step counts
    and sizes change legitimately when workloads change)

Histogram summaries compare mean and p99 as lower-is-better.

By default the exit code only reflects I/O / schema problems — wall-clock
numbers on shared CI runners drift far too much to gate merges on, so CI
runs this as a non-gating report. With --gate PCT, a directional metric
that regresses by more than PCT percent fails the run (for local A/B
checks on a quiet machine). A flipped "pass" verdict (baseline true,
current false) always fails, gate or not: that is the bench's own claim
gate, not runner noise.
"""

import argparse
import json
import sys
from pathlib import Path

HIGHER_BETTER = ("_speedup", "_steps_per_sec", "_rate", "_per_sec")
LOWER_BETTER = ("_ns", "_ms", "_us", "_seconds", "_bytes")


def direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 neutral."""
    if key.endswith(HIGHER_BETTER):
        return 1
    if key.endswith(LOWER_BETTER):
        return -1
    return 0


def load_records(spec: str) -> dict:
    """experiment name -> parsed record, from a file or a directory."""
    path = Path(spec)
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    elif path.is_file():
        files = [path]
    else:
        sys.exit(f"bench_compare: {spec}: no such file or directory")
    out = {}
    for f in files:
        try:
            doc = json.loads(f.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"bench_compare: {f}: {e}")
        if doc.get("schema") != "scav-metrics-v1":
            sys.exit(f"bench_compare: {f}: unexpected schema "
                     f"{doc.get('schema')!r}")
        out[doc.get("experiment", f.stem)] = doc
    return out


def metrics_of(doc: dict) -> dict:
    """Flat {key: float} view: gauges, counters, histogram mean/p99."""
    out = {}
    out.update(doc.get("gauges", {}))
    out.update(doc.get("counters", {}))
    for name, h in doc.get("histograms", {}).items():
        for stat in ("mean", "p99"):
            if stat in h:
                out[f"{name}:{stat}"] = h[stat]
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--gate", type=float, metavar="PCT", default=None,
                    help="fail if any directional metric regresses by more "
                         "than PCT percent (default: report only)")
    ap.add_argument("--min-delta", type=float, metavar="PCT", default=2.0,
                    help="suppress rows that moved less than PCT percent "
                         "(default: 2)")
    args = ap.parse_args()

    base = load_records(args.baseline)
    curr = load_records(args.current)
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    shared = sorted(set(base) & set(curr))
    if only_base:
        print(f"baseline only (not compared): {', '.join(only_base)}")
    if only_curr:
        print(f"current only (not compared):  {', '.join(only_curr)}")
    if not shared:
        print("bench_compare: no shared experiments; nothing to compare")
        return 0

    failures = []
    for exp in shared:
        b, c = base[exp], curr[exp]
        print(f"\n== {exp} "
              f"(baseline {b.get('git_sha', '?')} -> "
              f"current {c.get('git_sha', '?')})")
        if b.get("pass") and not c.get("pass"):
            failures.append(f"{exp}: claim gate flipped pass -> FAIL")
            print("  !! claim gate flipped: baseline pass, current FAIL")
        bm, cm = metrics_of(b), metrics_of(c)
        for key in sorted(set(bm) & set(cm)):
            bv, cv = bm[key], cm[key]
            if not bv:
                continue
            pct = (cv - bv) / abs(bv) * 100
            sense = direction(key.split(":")[0])
            regress = sense != 0 and pct * sense < 0 and abs(pct) > (
                args.gate if args.gate is not None else float("inf"))
            if abs(pct) < args.min_delta and not regress:
                continue
            mark = {1: "+", -1: "-", 0: " "}[sense]
            flag = "  << regression" if regress else ""
            print(f"  {mark} {key:44s} {bv:>12.4g} -> {cv:>12.4g} "
                  f"({pct:+.1f}%){flag}")
            if regress:
                failures.append(f"{exp}: {key} regressed {pct:+.1f}% "
                                f"(gate {args.gate}%)")
        missing = sorted(set(bm) - set(cm))
        if missing:
            print(f"  dropped metrics: {', '.join(missing)}")

    if failures:
        print("\nbench_compare: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
