#!/usr/bin/env python3
"""Structural sanity checks for a scavenging trace export (DESIGN.md §3.9).

Validates the Chrome/Perfetto trace-event JSON that `certgc_run --trace-out`,
`certgc_fuzz --trace-out`, and SCAV_TRACE=<file> produce:

  * top-level shape: {"traceEvents": [...]}, every event carrying
    name / cat / ph / ts / pid / tid with ph one of B, E, i, C;
  * timestamps non-decreasing across the export;
  * duration events balanced *per (pid, tid) track* — nesting is only
    meaningful within one thread track (collector workers and the async
    checker emit on their own tids): depth never goes negative, every
    scope closed by the end (the exporter emits synthetic events for
    ring-sliced scopes, so an unbalanced file is a bug, not a truncation);
  * LIFO close order: an E always matches its track's innermost open B;
  * instant events carry the mandatory scope field "s".

With --require-collector-phases, additionally asserts the trace contains a
complete collection: a "collect" B/E pair plus at least one entry-phase
("gc*") and one copy-phase ("copy*") instant in the collector category —
the shape every certified collection leaves behind. With
--require-counters, asserts at least one counter-track sample exists.

Observability events (DESIGN.md §3.14) are validated on every run: "dump"
category instants must be instants (never duration events), and every
"serve.heartbeat*" counter track must be non-decreasing (the watchdog's
total-beats sample is monotone while sessions progress). With
--require-dump, asserts at least one dump-bundle instant is present; with
--require-heartbeat, asserts at least one serve.heartbeat sample exists.

Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

VALID_PHASES = {"B", "E", "i", "C"}
REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path: str, require_phases: bool, require_counters: bool,
          require_dump: bool, require_heartbeat: bool) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' must be a list")

    stacks = {}  # (pid, tid) -> names of open duration scopes
    last_ts = None
    counters = 0
    collector = {"begin": 0, "end": 0, "entry": 0, "copy": 0}
    dumps = 0
    heartbeats = {}  # counter-track name -> last sampled value

    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for field in REQUIRED_FIELDS:
            if field not in ev:
                fail(f"{where}: missing field '{field}'")
        ph = ev["ph"]
        if ph not in VALID_PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad timestamp {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{where}: timestamp went backwards ({ts} < {last_ts})")
        last_ts = ts

        name, cat = ev["name"], ev["cat"]
        stack = stacks.setdefault((ev["pid"], ev["tid"]), [])
        if ph == "B":
            stack.append(name)
        elif ph == "E":
            if not stack:
                fail(f"{where}: 'E' ({name}) with no open scope on "
                     f"track {ev['pid']}/{ev['tid']}")
            if stack[-1] != name:
                fail(f"{where}: 'E' ({name}) closes scope "
                     f"'{stack[-1]}' out of LIFO order on "
                     f"track {ev['pid']}/{ev['tid']}")
            stack.pop()
        elif ph == "i":
            if ev.get("s") != "t":
                fail(f"{where}: instant without scope field 's'")
        elif ph == "C":
            counters += 1
            if "args" not in ev or "value" not in ev["args"]:
                fail(f"{where}: counter without args.value")
            if name.startswith("serve.heartbeat"):
                value = ev["args"]["value"]
                prev = heartbeats.get(name)
                if prev is not None and value < prev:
                    fail(f"{where}: heartbeat counter '{name}' went "
                         f"backwards ({value} < {prev})")
                heartbeats[name] = value

        if cat == "dump":
            if ph != "i":
                fail(f"{where}: dump-category event with phase {ph!r} "
                     f"(dump bundles emit instants only)")
            dumps += 1

        if cat == "collector":
            if name == "collect" and ph == "B":
                collector["begin"] += 1
            elif name == "collect" and ph == "E":
                collector["end"] += 1
            elif ph == "i" and name.startswith("gc") and \
                    not name.startswith("gcend"):
                collector["entry"] += 1
            elif ph == "i" and name.startswith("copy"):
                collector["copy"] += 1

    for (pid, tid), stack in stacks.items():
        if stack:
            fail(f"{path}: track {pid}/{tid}: {len(stack)} unclosed "
                 f"scope(s), innermost '{stack[-1]}'")

    if require_phases:
        if collector["begin"] == 0 or collector["end"] == 0:
            fail(f"{path}: no complete 'collect' scope "
                 f"(B={collector['begin']}, E={collector['end']})")
        if collector["begin"] != collector["end"]:
            fail(f"{path}: unbalanced collect scopes "
                 f"(B={collector['begin']}, E={collector['end']})")
        if collector["entry"] == 0:
            fail(f"{path}: no collector entry-phase (gc*) instant")
        if collector["copy"] == 0:
            fail(f"{path}: no collector copy-phase (copy*) instant")
    if require_counters and counters == 0:
        fail(f"{path}: no counter-track samples")
    if require_dump and dumps == 0:
        fail(f"{path}: no dump-bundle instant events")
    if require_heartbeat and not heartbeats:
        fail(f"{path}: no serve.heartbeat counter samples")

    phases = (f", collect scopes={collector['begin']}"
              if require_phases else "")
    extras = ""
    if dumps:
        extras += f", {dumps} dump instant(s)"
    if heartbeats:
        extras += f", {len(heartbeats)} heartbeat track(s)"
    print(f"check_trace: OK: {path}: {len(events)} events, "
          f"{counters} counter samples{phases}{extras}")


def main() -> None:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("traces", nargs="+", help="trace JSON file(s)")
    p.add_argument("--require-collector-phases", action="store_true",
                   help="assert a complete collection is present")
    p.add_argument("--require-counters", action="store_true",
                   help="assert counter-track samples are present")
    p.add_argument("--require-dump", action="store_true",
                   help="assert a dump-bundle instant event is present")
    p.add_argument("--require-heartbeat", action="store_true",
                   help="assert serve.heartbeat counter samples are present")
    args = p.parse_args()
    for path in args.traces:
        check(path, args.require_collector_phases, args.require_counters,
              args.require_dump, args.require_heartbeat)


if __name__ == "__main__":
    main()
