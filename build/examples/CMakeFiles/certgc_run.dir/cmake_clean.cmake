file(REMOVE_RECURSE
  "CMakeFiles/certgc_run.dir/certgc_run.cpp.o"
  "CMakeFiles/certgc_run.dir/certgc_run.cpp.o.d"
  "certgc_run"
  "certgc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certgc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
