# Empty compiler generated dependencies file for certgc_run.
# This may be replaced when dependencies are built.
