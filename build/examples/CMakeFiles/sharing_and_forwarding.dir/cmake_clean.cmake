file(REMOVE_RECURSE
  "CMakeFiles/sharing_and_forwarding.dir/sharing_and_forwarding.cpp.o"
  "CMakeFiles/sharing_and_forwarding.dir/sharing_and_forwarding.cpp.o.d"
  "sharing_and_forwarding"
  "sharing_and_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_and_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
