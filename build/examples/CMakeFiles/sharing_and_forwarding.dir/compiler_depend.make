# Empty compiler generated dependencies file for sharing_and_forwarding.
# This may be replaced when dependencies are built.
