file(REMOVE_RECURSE
  "CMakeFiles/collector_listing.dir/collector_listing.cpp.o"
  "CMakeFiles/collector_listing.dir/collector_listing.cpp.o.d"
  "collector_listing"
  "collector_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
