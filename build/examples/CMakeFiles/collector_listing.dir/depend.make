# Empty dependencies file for collector_listing.
# This may be replaced when dependencies are built.
