# Empty compiler generated dependencies file for generational_demo.
# This may be replaced when dependencies are built.
