file(REMOVE_RECURSE
  "CMakeFiles/generational_demo.dir/generational_demo.cpp.o"
  "CMakeFiles/generational_demo.dir/generational_demo.cpp.o.d"
  "generational_demo"
  "generational_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generational_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
