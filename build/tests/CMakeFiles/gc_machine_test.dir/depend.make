# Empty dependencies file for gc_machine_test.
# This may be replaced when dependencies are built.
