file(REMOVE_RECURSE
  "CMakeFiles/gc_machine_test.dir/gc_machine_test.cpp.o"
  "CMakeFiles/gc_machine_test.dir/gc_machine_test.cpp.o.d"
  "gc_machine_test"
  "gc_machine_test.pdb"
  "gc_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
