file(REMOVE_RECURSE
  "CMakeFiles/property_soundness_test.dir/property_soundness_test.cpp.o"
  "CMakeFiles/property_soundness_test.dir/property_soundness_test.cpp.o.d"
  "property_soundness_test"
  "property_soundness_test.pdb"
  "property_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
