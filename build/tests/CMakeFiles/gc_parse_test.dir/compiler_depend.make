# Empty compiler generated dependencies file for gc_parse_test.
# This may be replaced when dependencies are built.
