file(REMOVE_RECURSE
  "CMakeFiles/gc_parse_test.dir/gc_parse_test.cpp.o"
  "CMakeFiles/gc_parse_test.dir/gc_parse_test.cpp.o.d"
  "gc_parse_test"
  "gc_parse_test.pdb"
  "gc_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
