# Empty dependencies file for gc_contclosure_test.
# This may be replaced when dependencies are built.
