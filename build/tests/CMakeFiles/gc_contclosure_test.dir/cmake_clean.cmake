file(REMOVE_RECURSE
  "CMakeFiles/gc_contclosure_test.dir/gc_contclosure_test.cpp.o"
  "CMakeFiles/gc_contclosure_test.dir/gc_contclosure_test.cpp.o.d"
  "gc_contclosure_test"
  "gc_contclosure_test.pdb"
  "gc_contclosure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_contclosure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
