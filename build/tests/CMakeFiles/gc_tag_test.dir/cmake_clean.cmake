file(REMOVE_RECURSE
  "CMakeFiles/gc_tag_test.dir/gc_tag_test.cpp.o"
  "CMakeFiles/gc_tag_test.dir/gc_tag_test.cpp.o.d"
  "gc_tag_test"
  "gc_tag_test.pdb"
  "gc_tag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_tag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
