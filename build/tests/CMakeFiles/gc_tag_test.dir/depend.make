# Empty dependencies file for gc_tag_test.
# This may be replaced when dependencies are built.
