# Empty compiler generated dependencies file for gc_native_forge_test.
# This may be replaced when dependencies are built.
