file(REMOVE_RECURSE
  "CMakeFiles/gc_native_forge_test.dir/gc_native_forge_test.cpp.o"
  "CMakeFiles/gc_native_forge_test.dir/gc_native_forge_test.cpp.o.d"
  "gc_native_forge_test"
  "gc_native_forge_test.pdb"
  "gc_native_forge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_native_forge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
