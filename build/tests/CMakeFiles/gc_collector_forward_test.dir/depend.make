# Empty dependencies file for gc_collector_forward_test.
# This may be replaced when dependencies are built.
