# Empty compiler generated dependencies file for gc_typecheck_test.
# This may be replaced when dependencies are built.
