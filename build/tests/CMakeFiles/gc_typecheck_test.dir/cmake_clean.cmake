file(REMOVE_RECURSE
  "CMakeFiles/gc_typecheck_test.dir/gc_typecheck_test.cpp.o"
  "CMakeFiles/gc_typecheck_test.dir/gc_typecheck_test.cpp.o.d"
  "gc_typecheck_test"
  "gc_typecheck_test.pdb"
  "gc_typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
