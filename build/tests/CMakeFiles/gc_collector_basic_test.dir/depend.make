# Empty dependencies file for gc_collector_basic_test.
# This may be replaced when dependencies are built.
