file(REMOVE_RECURSE
  "CMakeFiles/gc_collector_basic_test.dir/gc_collector_basic_test.cpp.o"
  "CMakeFiles/gc_collector_basic_test.dir/gc_collector_basic_test.cpp.o.d"
  "gc_collector_basic_test"
  "gc_collector_basic_test.pdb"
  "gc_collector_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_collector_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
