# Empty dependencies file for gc_machine_negative_test.
# This may be replaced when dependencies are built.
