# Empty compiler generated dependencies file for gc_differential_collect_test.
# This may be replaced when dependencies are built.
