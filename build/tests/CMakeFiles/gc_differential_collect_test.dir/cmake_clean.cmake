file(REMOVE_RECURSE
  "CMakeFiles/gc_differential_collect_test.dir/gc_differential_collect_test.cpp.o"
  "CMakeFiles/gc_differential_collect_test.dir/gc_differential_collect_test.cpp.o.d"
  "gc_differential_collect_test"
  "gc_differential_collect_test.pdb"
  "gc_differential_collect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_differential_collect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
