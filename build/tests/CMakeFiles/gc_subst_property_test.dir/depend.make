# Empty dependencies file for gc_subst_property_test.
# This may be replaced when dependencies are built.
