file(REMOVE_RECURSE
  "CMakeFiles/gc_subst_property_test.dir/gc_subst_property_test.cpp.o"
  "CMakeFiles/gc_subst_property_test.dir/gc_subst_property_test.cpp.o.d"
  "gc_subst_property_test"
  "gc_subst_property_test.pdb"
  "gc_subst_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_subst_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
