# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gc_tag_test[1]_include.cmake")
include("/root/repo/build/tests/gc_machine_test[1]_include.cmake")
include("/root/repo/build/tests/gc_collector_basic_test[1]_include.cmake")
include("/root/repo/build/tests/gc_collector_forward_test[1]_include.cmake")
include("/root/repo/build/tests/gc_collector_gen_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/integration_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/gc_native_forge_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/gc_typecheck_test[1]_include.cmake")
include("/root/repo/build/tests/gc_subst_property_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/gc_machine_negative_test[1]_include.cmake")
include("/root/repo/build/tests/gc_differential_collect_test[1]_include.cmake")
include("/root/repo/build/tests/gc_contclosure_test[1]_include.cmake")
include("/root/repo/build/tests/gc_parse_test[1]_include.cmake")
