file(REMOVE_RECURSE
  "CMakeFiles/e7_code_size.dir/e7_code_size.cpp.o"
  "CMakeFiles/e7_code_size.dir/e7_code_size.cpp.o.d"
  "e7_code_size"
  "e7_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
