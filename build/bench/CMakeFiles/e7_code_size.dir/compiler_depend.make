# Empty compiler generated dependencies file for e7_code_size.
# This may be replaced when dependencies are built.
