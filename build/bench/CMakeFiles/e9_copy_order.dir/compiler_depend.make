# Empty compiler generated dependencies file for e9_copy_order.
# This may be replaced when dependencies are built.
