file(REMOVE_RECURSE
  "CMakeFiles/e9_copy_order.dir/e9_copy_order.cpp.o"
  "CMakeFiles/e9_copy_order.dir/e9_copy_order.cpp.o.d"
  "e9_copy_order"
  "e9_copy_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_copy_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
