# Empty dependencies file for e6_type_growth.
# This may be replaced when dependencies are built.
