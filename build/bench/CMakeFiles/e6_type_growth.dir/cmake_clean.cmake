file(REMOVE_RECURSE
  "CMakeFiles/e6_type_growth.dir/e6_type_growth.cpp.o"
  "CMakeFiles/e6_type_growth.dir/e6_type_growth.cpp.o.d"
  "e6_type_growth"
  "e6_type_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_type_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
