# Empty compiler generated dependencies file for e2_forwarding.
# This may be replaced when dependencies are built.
