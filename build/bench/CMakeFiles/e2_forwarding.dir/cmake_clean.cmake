file(REMOVE_RECURSE
  "CMakeFiles/e2_forwarding.dir/e2_forwarding.cpp.o"
  "CMakeFiles/e2_forwarding.dir/e2_forwarding.cpp.o.d"
  "e2_forwarding"
  "e2_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
