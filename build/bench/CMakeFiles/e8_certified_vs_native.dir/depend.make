# Empty dependencies file for e8_certified_vs_native.
# This may be replaced when dependencies are built.
