file(REMOVE_RECURSE
  "CMakeFiles/e8_certified_vs_native.dir/e8_certified_vs_native.cpp.o"
  "CMakeFiles/e8_certified_vs_native.dir/e8_certified_vs_native.cpp.o.d"
  "e8_certified_vs_native"
  "e8_certified_vs_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_certified_vs_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
