# Empty dependencies file for e4_generational.
# This may be replaced when dependencies are built.
