file(REMOVE_RECURSE
  "CMakeFiles/e4_generational.dir/e4_generational.cpp.o"
  "CMakeFiles/e4_generational.dir/e4_generational.cpp.o.d"
  "e4_generational"
  "e4_generational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
