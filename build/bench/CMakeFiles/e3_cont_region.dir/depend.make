# Empty dependencies file for e3_cont_region.
# This may be replaced when dependencies are built.
