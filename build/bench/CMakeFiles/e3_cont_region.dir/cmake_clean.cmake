file(REMOVE_RECURSE
  "CMakeFiles/e3_cont_region.dir/e3_cont_region.cpp.o"
  "CMakeFiles/e3_cont_region.dir/e3_cont_region.cpp.o.d"
  "e3_cont_region"
  "e3_cont_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_cont_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
