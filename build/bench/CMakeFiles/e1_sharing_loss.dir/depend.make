# Empty dependencies file for e1_sharing_loss.
# This may be replaced when dependencies are built.
