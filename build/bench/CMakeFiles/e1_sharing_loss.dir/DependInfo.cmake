
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e1_sharing_loss.cpp" "bench/CMakeFiles/e1_sharing_loss.dir/e1_sharing_loss.cpp.o" "gcc" "bench/CMakeFiles/e1_sharing_loss.dir/e1_sharing_loss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/scav_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/clos/CMakeFiles/scav_clos.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/scav_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/lambda/CMakeFiles/scav_lambda.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/scav_gc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
