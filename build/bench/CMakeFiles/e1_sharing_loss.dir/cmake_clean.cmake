file(REMOVE_RECURSE
  "CMakeFiles/e1_sharing_loss.dir/e1_sharing_loss.cpp.o"
  "CMakeFiles/e1_sharing_loss.dir/e1_sharing_loss.cpp.o.d"
  "e1_sharing_loss"
  "e1_sharing_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_sharing_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
