# Empty compiler generated dependencies file for scav_cps.
# This may be replaced when dependencies are built.
