file(REMOVE_RECURSE
  "CMakeFiles/scav_cps.dir/Convert.cpp.o"
  "CMakeFiles/scav_cps.dir/Convert.cpp.o.d"
  "CMakeFiles/scav_cps.dir/Support.cpp.o"
  "CMakeFiles/scav_cps.dir/Support.cpp.o.d"
  "libscav_cps.a"
  "libscav_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scav_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
