file(REMOVE_RECURSE
  "libscav_cps.a"
)
