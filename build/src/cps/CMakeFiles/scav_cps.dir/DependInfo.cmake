
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cps/Convert.cpp" "src/cps/CMakeFiles/scav_cps.dir/Convert.cpp.o" "gcc" "src/cps/CMakeFiles/scav_cps.dir/Convert.cpp.o.d"
  "/root/repo/src/cps/Support.cpp" "src/cps/CMakeFiles/scav_cps.dir/Support.cpp.o" "gcc" "src/cps/CMakeFiles/scav_cps.dir/Support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lambda/CMakeFiles/scav_lambda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
