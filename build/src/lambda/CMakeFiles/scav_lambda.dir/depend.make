# Empty dependencies file for scav_lambda.
# This may be replaced when dependencies are built.
