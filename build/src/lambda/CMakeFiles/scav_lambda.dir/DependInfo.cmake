
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lambda/Eval.cpp" "src/lambda/CMakeFiles/scav_lambda.dir/Eval.cpp.o" "gcc" "src/lambda/CMakeFiles/scav_lambda.dir/Eval.cpp.o.d"
  "/root/repo/src/lambda/Parse.cpp" "src/lambda/CMakeFiles/scav_lambda.dir/Parse.cpp.o" "gcc" "src/lambda/CMakeFiles/scav_lambda.dir/Parse.cpp.o.d"
  "/root/repo/src/lambda/TypeCheck.cpp" "src/lambda/CMakeFiles/scav_lambda.dir/TypeCheck.cpp.o" "gcc" "src/lambda/CMakeFiles/scav_lambda.dir/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
