file(REMOVE_RECURSE
  "CMakeFiles/scav_lambda.dir/Eval.cpp.o"
  "CMakeFiles/scav_lambda.dir/Eval.cpp.o.d"
  "CMakeFiles/scav_lambda.dir/Parse.cpp.o"
  "CMakeFiles/scav_lambda.dir/Parse.cpp.o.d"
  "CMakeFiles/scav_lambda.dir/TypeCheck.cpp.o"
  "CMakeFiles/scav_lambda.dir/TypeCheck.cpp.o.d"
  "libscav_lambda.a"
  "libscav_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scav_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
