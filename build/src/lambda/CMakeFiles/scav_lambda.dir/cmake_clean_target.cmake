file(REMOVE_RECURSE
  "libscav_lambda.a"
)
