file(REMOVE_RECURSE
  "libscav_harness.a"
)
