# Empty compiler generated dependencies file for scav_harness.
# This may be replaced when dependencies are built.
