file(REMOVE_RECURSE
  "CMakeFiles/scav_harness.dir/HeapForge.cpp.o"
  "CMakeFiles/scav_harness.dir/HeapForge.cpp.o.d"
  "CMakeFiles/scav_harness.dir/Pipeline.cpp.o"
  "CMakeFiles/scav_harness.dir/Pipeline.cpp.o.d"
  "CMakeFiles/scav_harness.dir/ProgramGen.cpp.o"
  "CMakeFiles/scav_harness.dir/ProgramGen.cpp.o.d"
  "libscav_harness.a"
  "libscav_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scav_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
