file(REMOVE_RECURSE
  "CMakeFiles/scav_clos.dir/Clos.cpp.o"
  "CMakeFiles/scav_clos.dir/Clos.cpp.o.d"
  "CMakeFiles/scav_clos.dir/CloseConvert.cpp.o"
  "CMakeFiles/scav_clos.dir/CloseConvert.cpp.o.d"
  "CMakeFiles/scav_clos.dir/__/gc/Translate.cpp.o"
  "CMakeFiles/scav_clos.dir/__/gc/Translate.cpp.o.d"
  "libscav_clos.a"
  "libscav_clos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scav_clos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
