file(REMOVE_RECURSE
  "libscav_clos.a"
)
