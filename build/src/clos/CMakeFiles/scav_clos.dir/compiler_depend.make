# Empty compiler generated dependencies file for scav_clos.
# This may be replaced when dependencies are built.
