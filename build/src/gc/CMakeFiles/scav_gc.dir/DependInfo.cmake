
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/CollectorBasic.cpp" "src/gc/CMakeFiles/scav_gc.dir/CollectorBasic.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/CollectorBasic.cpp.o.d"
  "/root/repo/src/gc/CollectorForward.cpp" "src/gc/CMakeFiles/scav_gc.dir/CollectorForward.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/CollectorForward.cpp.o.d"
  "/root/repo/src/gc/CollectorGen.cpp" "src/gc/CMakeFiles/scav_gc.dir/CollectorGen.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/CollectorGen.cpp.o.d"
  "/root/repo/src/gc/ContClosure.cpp" "src/gc/CMakeFiles/scav_gc.dir/ContClosure.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/ContClosure.cpp.o.d"
  "/root/repo/src/gc/Equal.cpp" "src/gc/CMakeFiles/scav_gc.dir/Equal.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Equal.cpp.o.d"
  "/root/repo/src/gc/Free.cpp" "src/gc/CMakeFiles/scav_gc.dir/Free.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Free.cpp.o.d"
  "/root/repo/src/gc/Machine.cpp" "src/gc/CMakeFiles/scav_gc.dir/Machine.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Machine.cpp.o.d"
  "/root/repo/src/gc/NativeCollector.cpp" "src/gc/CMakeFiles/scav_gc.dir/NativeCollector.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/NativeCollector.cpp.o.d"
  "/root/repo/src/gc/Normalize.cpp" "src/gc/CMakeFiles/scav_gc.dir/Normalize.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Normalize.cpp.o.d"
  "/root/repo/src/gc/Parse.cpp" "src/gc/CMakeFiles/scav_gc.dir/Parse.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Parse.cpp.o.d"
  "/root/repo/src/gc/Print.cpp" "src/gc/CMakeFiles/scav_gc.dir/Print.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Print.cpp.o.d"
  "/root/repo/src/gc/SexpPrint.cpp" "src/gc/CMakeFiles/scav_gc.dir/SexpPrint.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/SexpPrint.cpp.o.d"
  "/root/repo/src/gc/SpecializeCopy.cpp" "src/gc/CMakeFiles/scav_gc.dir/SpecializeCopy.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/SpecializeCopy.cpp.o.d"
  "/root/repo/src/gc/StateCheck.cpp" "src/gc/CMakeFiles/scav_gc.dir/StateCheck.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/StateCheck.cpp.o.d"
  "/root/repo/src/gc/Subst.cpp" "src/gc/CMakeFiles/scav_gc.dir/Subst.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/Subst.cpp.o.d"
  "/root/repo/src/gc/TypeCheck.cpp" "src/gc/CMakeFiles/scav_gc.dir/TypeCheck.cpp.o" "gcc" "src/gc/CMakeFiles/scav_gc.dir/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
