# Empty dependencies file for scav_gc.
# This may be replaced when dependencies are built.
