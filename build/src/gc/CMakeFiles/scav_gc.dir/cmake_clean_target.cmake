file(REMOVE_RECURSE
  "libscav_gc.a"
)
