//===- bench/e7_code_size.cpp - E7: monomorphization blowup (§2.1) --------===//
//
// Paper claim (§2.1, against Wang–Appel's earlier approach): relying on
// "monomorphization and defunctionalization... can introduce a significant
// code size increase and forces the use of separate specialized GC and
// copy functions for each type appearing in the program", and requires
// whole-program analysis. The ITA approach ships ONE collector as a
// library.
//
// Measured: size of the generated per-type copy family as the number of
// distinct heap types in the program grows, against the (constant) size of
// the certified ITA library collector.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/SpecializeCopy.h"

#include <cstdio>

using namespace scav;
using namespace scav::gc;

namespace {

/// A synthetic "program" with K distinct closure environment types: K
/// existentials, each with its own witness, plus assorted pair types.
void programTypes(GcContext &C, size_t K, std::vector<const Tag *> &Roots,
                  std::vector<ExistsInstantiations> &Insts) {
  const Tag *Base = C.tagProd(C.tagInt(), C.tagInt());
  Symbol U = C.fresh("u");
  // One closure type (as after closure conversion) ...
  const Tag *Ex =
      C.tagExists(U, C.tagProd(C.tagVar(U), C.tagArrow({Base})));
  Roots.push_back(Ex);
  ExistsInstantiations Inst{Ex, {}};
  // ... with K distinct environment witnesses (one per source λ): a
  // whole-program analysis must specialize the copy code for each.
  const Tag *W = C.tagInt();
  for (size_t I = 0; I != K; ++I) {
    W = C.tagProd(W, C.tagInt());
    Inst.Witnesses.push_back(W);
  }
  Insts.push_back(std::move(Inst));
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = scav::bench::consumeJsonArg(argc, argv);
  scav::bench::JsonReport Report("e7_code_size");
  std::printf("E7: collector code size — per-type specialization vs ITA "
              "library (section 2.1)\n");
  std::printf("claim: the monomorphized (Wang-Appel style) collector "
              "duplicates copy code per type; the ITA collector is one "
              "fixed-size library\n\n");

  size_t LibBase = libraryCollectorSize(LanguageLevel::Base);
  std::printf("certified ITA library collector size (AST nodes): %zu "
              "(Base), %zu (Forward), %zu (Generational)\n\n",
              LibBase, libraryCollectorSize(LanguageLevel::Forward),
              libraryCollectorSize(LanguageLevel::Generational));

  std::printf("%8s %12s %14s %14s %10s\n", "types", "spec-funcs",
              "spec-size", "library-size", "ratio");

  bool Ok = true;
  size_t PrevSize = 0;
  for (size_t K : {1, 4, 16, 64, 256}) {
    GcContext C;
    std::vector<const Tag *> Roots;
    std::vector<ExistsInstantiations> Insts;
    programTypes(C, K, Roots, Insts);
    auto T0 = std::chrono::steady_clock::now();
    SpecializeStats St = specializeCopyFamily(C, Roots, Insts);
    Report.sample("specialize_ns",
                  std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
    std::printf("%8zu %12zu %14zu %14zu %9.2fx\n", K, St.NumFunctions,
                St.TotalTermSize, LibBase,
                double(St.TotalTermSize) / double(LibBase));
    Ok = Ok && St.TotalTermSize > PrevSize;
    PrevSize = St.TotalTermSize;
    if (K == 256) {
      Report.metric("types", uint64_t(K));
      Report.metric("spec_size", uint64_t(St.TotalTermSize));
      Report.metric("library_size", uint64_t(LibBase));
    }
  }

  std::printf("\nnote: specialized bodies use a simplified direct-style "
              "calling convention — this is a code-size model of the "
              "rejected design, not a runnable collector (see DESIGN.md)\n\n");
  std::printf("%s: specialized collector size grows with the number of "
              "program types; the ITA library does not\n",
              Ok ? "PASS" : "FAIL");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
