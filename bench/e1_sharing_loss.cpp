//===- bench/e1_sharing_loss.cpp - E1: the basic collector loses sharing --===//
//
// Paper artifact: Fig 4/12 (basic stop-and-copy) vs §7's opening
// observation — "the copy function does not preserve sharing and thus
// turns any DAG into a tree".
//
// Workload: a maximally-shared binary DAG of depth D (D+1 physical cells
// describing 2^(D+1)-1 logical nodes). One certified collection at the
// Base level must unfold it to the full tree; the Forward collector keeps
// it at D+1 cells (measured here for contrast; E2 digs deeper).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e1_sharing_loss");
  std::printf("E1: sharing loss of the basic collector (Fig 4/12, §7)\n");
  std::printf("claim: basic copy turns DAGs into trees; cells after a "
              "collection of a depth-D DAG grow from D+1 to 2^(D+1)-1\n\n");
  std::printf("%6s %12s %14s %16s %10s\n", "depth", "cells-before",
              "after-basic", "after-forwarding", "blowup");

  bool Ok = true;
  for (unsigned D = 2; D <= 10; ++D) {
    size_t Before = 0, AfterBasic = 0, AfterFwd = 0;
    {
      Setup S(LanguageLevel::Base);
      S.attachReport(Report); // pauses land in collect_pause_ns
      ForgedHeap H = forgeTree(*S.M, S.R, S.Old, D, /*Share=*/true);
      Before = H.Cells;
      if (!S.collectOnce(H))
        return 1;
      AfterBasic = S.M->memory().liveDataCells();
    }
    {
      Setup S(LanguageLevel::Forward);
      S.attachReport(Report);
      ForgedHeap H = forgeTree(*S.M, S.R, S.Old, D, /*Share=*/true);
      if (!S.collectOnce(H))
        return 1;
      AfterFwd = S.M->memory().liveDataCells();
    }
    double Blowup = double(AfterBasic) / double(Before);
    std::printf("%6u %12zu %14zu %16zu %9.1fx\n", D, Before, AfterBasic,
                AfterFwd, Blowup);
    Ok = Ok && AfterBasic == (size_t(1) << (D + 1)) - 1 &&
         AfterFwd == Before;
    if (D == 10) {
      Report.metric("depth", uint64_t(D));
      Report.metric("cells_before", uint64_t(Before));
      Report.metric("after_basic", uint64_t(AfterBasic));
      Report.metric("after_forwarding", uint64_t(AfterFwd));
      Report.metric("blowup", Blowup);
    }
  }
  std::printf("\n");
  verdict(Ok, "basic collector unfolds DAGs to full trees; forwarding "
              "collector preserves sharing exactly");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
