//===- bench/BenchUtil.h - Shared benchmark scaffolding ---------*- C++ -*-===//
///
/// \file
/// Small helpers shared by the experiment binaries: level setup with an
/// installed certified collector, a run-to-halt driver, and fixed-width
/// table printing. Each experiment binary prints the paper claim it
/// reproduces, the measured series, and a PASS/FAIL verdict on the claim's
/// *shape* (EXPERIMENTS.md records the outputs).
///
/// Machine-readable output (BENCH_e*.json) goes through the shared metrics
/// registry (support/Metrics.h): JsonReport is a thin wrapper that adds the
/// experiment header (name, pass flag, eval mode, git sha) on top of the
/// "scav-metrics-v1" schema, so every bench record has the same shape as
/// `certgc_run --stats-json` and gains histogram percentiles for free.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_BENCH_BENCHUTIL_H
#define SCAV_BENCH_BENCHUTIL_H

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "harness/HeapForge.h"
#include "vm/Vm.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace scav::bench {

using namespace scav::gc;
using namespace scav::harness;

inline double secondsSince(
    const std::chrono::steady_clock::time_point &T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

inline void verdict(bool Ok, const char *Claim) {
  std::printf("%s: %s\n", Ok ? "PASS" : "FAIL", Claim);
}

/// The build's git revision, baked in at CMake configure time (see
/// bench/CMakeLists.txt); "unknown" outside a git checkout. Configure-time,
/// so it can lag uncommitted edits — good enough to trace a BENCH record
/// back to the code that produced it.
inline const char *gitSha() {
#ifdef SCAV_GIT_SHA
  return SCAV_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Machine-readable experiment record. Every bench binary accepts
/// `--json <path>`; when present, the binary writes one "scav-metrics-v1"
/// object (DESIGN.md §3.9) with the experiment name, a pass flag, and its
/// key metrics, so EXPERIMENTS.md numbers can be regenerated mechanically.
/// Every record also carries the machine's evaluation mode (the mode a
/// Setup with the default config would use, unless the binary overrides it
/// via evalMode) and the git revision, so BENCH files from different builds
/// stay comparable.
class JsonReport {
public:
  explicit JsonReport(std::string Name) : Name(std::move(Name)) {}

  /// Point metrics: doubles land in the gauges section, integers in the
  /// counters section.
  void metric(const std::string &Key, double V) { Reg.setGauge(Key, V); }
  void metric(const std::string &Key, uint64_t V) { Reg.setCounter(Key, V); }

  /// One sample into the named histogram (default exponential nanosecond
  /// buckets) — the record then reports count/mean/p50/p90/p99/max.
  void sample(const std::string &Key, double V) {
    Reg.histogram(Key).record(V);
  }

  void pass(bool Ok) { Pass = Ok; }
  /// Overrides the recorded eval mode (binaries that run a non-default
  /// or mixed-mode machine, like e11).
  void evalMode(const std::string &Mode) { Mode_ = Mode; }

  /// Direct access for callers that export whole subsystems
  /// (Machine::exportMetrics, IncrementalCheckStats::exportTo).
  support::MetricsRegistry &registry() { return Reg; }

  /// Writes the report to \p Path; no-op when Path is empty.
  bool write(const std::string &Path) const {
    if (Path.empty())
      return true;
    auto Quoted = [](const std::string &S) {
      std::string Out;
      support::detail::appendJsonString(Out, S);
      return Out;
    };
    std::vector<std::pair<std::string, std::string>> Extra;
    Extra.emplace_back("experiment", Quoted(Name));
    Extra.emplace_back("pass", Pass ? "true" : "false");
    Extra.emplace_back("eval_mode", Quoted(Mode_));
    Extra.emplace_back("git_sha", Quoted(gitSha()));
    if (!support::writeFile(Path, support::writeMetricsJson(Reg, Extra)))
      return false;
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Name;
  bool Pass = false;
  std::string Mode_ = evalModeName(MachineConfig{}.Eval);
  support::MetricsRegistry Reg;
};

/// A machine with the level's certified collector installed and a data
/// region (plus an old region at the Generational level).
struct Setup {
  std::unique_ptr<GcContext> C;
  std::unique_ptr<Machine> M;
  /// Bytecode backend, constructed when Cfg.Eval == Vm. Declared after M so
  /// it detaches before the machine is destroyed.
  std::unique_ptr<vm::VmExec> Vm;
  Address GcAddr{};
  Region R, Old;
  /// When attached, collectOnce records each pause into the report's
  /// "collect_pause_ns" histogram.
  JsonReport *Report = nullptr;

  explicit Setup(LanguageLevel Level, MachineConfig Cfg = {},
                 bool Intern = GcContext::interningEnabledByDefault()) {
    C = std::make_unique<GcContext>(Intern);
    M = std::make_unique<Machine>(*C, Level, Cfg);
    if (Cfg.Eval == EvalMode::Vm)
      Vm = std::make_unique<vm::VmExec>(*M);
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    R = M->createRegion("from", 0);
    Old = Level == LanguageLevel::Generational
              ? M->createRegion("old", 0)
              : R;
  }

  void attachReport(JsonReport &Rep) { Report = &Rep; }

  /// Runs one certified collection of \p H; returns false on failure.
  bool collectOnce(const ForgedHeap &H, uint64_t MaxSteps = 50'000'000) {
    Address Fin = installFinisher(*M, H.Tag);
    const Term *E = collectOnceTerm(*M, GcAddr, H, R, Old, Fin);
    auto T0 = std::chrono::steady_clock::now();
    M->start(E);
    M->run(MaxSteps);
    if (Report)
      Report->sample(
          "collect_pause_ns",
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - T0)
              .count());
    if (M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "collection failed: %s\n",
                   M->stuckReason().c_str());
      return false;
    }
    return true;
  }
};

/// Extracts `--json <path>` from argv (removing both tokens so libraries
/// like google-benchmark never see them); returns the path or "".
inline std::string consumeJsonArg(int &Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      std::string Path = Argv[I + 1];
      for (int J = I; J + 2 < Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      return Path;
    }
  }
  return {};
}

} // namespace scav::bench

#endif // SCAV_BENCH_BENCHUTIL_H
