//===- bench/BenchUtil.h - Shared benchmark scaffolding ---------*- C++ -*-===//
///
/// \file
/// Small helpers shared by the experiment binaries: level setup with an
/// installed certified collector, a run-to-halt driver, and fixed-width
/// table printing. Each experiment binary prints the paper claim it
/// reproduces, the measured series, and a PASS/FAIL verdict on the claim's
/// *shape* (EXPERIMENTS.md records the outputs).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_BENCH_BENCHUTIL_H
#define SCAV_BENCH_BENCHUTIL_H

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "harness/HeapForge.h"

#include <chrono>
#include <cstdio>
#include <memory>

namespace scav::bench {

using namespace scav::gc;
using namespace scav::harness;

/// A machine with the level's certified collector installed and a data
/// region (plus an old region at the Generational level).
struct Setup {
  std::unique_ptr<GcContext> C;
  std::unique_ptr<Machine> M;
  Address GcAddr{};
  Region R, Old;

  explicit Setup(LanguageLevel Level, MachineConfig Cfg = {}) {
    C = std::make_unique<GcContext>();
    M = std::make_unique<Machine>(*C, Level, Cfg);
    switch (Level) {
    case LanguageLevel::Base:
      GcAddr = installBasicCollector(*M).Gc;
      break;
    case LanguageLevel::Forward:
      GcAddr = installForwardCollector(*M).Gc;
      break;
    case LanguageLevel::Generational:
      GcAddr = installGenCollector(*M).Gc;
      break;
    }
    R = M->createRegion("from", 0);
    Old = Level == LanguageLevel::Generational
              ? M->createRegion("old", 0)
              : R;
  }

  /// Runs one certified collection of \p H; returns false on failure.
  bool collectOnce(const ForgedHeap &H, uint64_t MaxSteps = 50'000'000) {
    Address Fin = installFinisher(*M, H.Tag);
    const Term *E = collectOnceTerm(*M, GcAddr, H, R, Old, Fin);
    M->start(E);
    M->run(MaxSteps);
    if (M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "collection failed: %s\n",
                   M->stuckReason().c_str());
      return false;
    }
    return true;
  }
};

inline double secondsSince(
    const std::chrono::steady_clock::time_point &T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

inline void verdict(bool Ok, const char *Claim) {
  std::printf("%s: %s\n", Ok ? "PASS" : "FAIL", Claim);
}

} // namespace scav::bench

#endif // SCAV_BENCH_BENCHUTIL_H
