//===- bench/e8_certified_vs_native.cpp - E8: the price of certification --===//
//
// Not a claim from the paper but its elephant in the room: our certified
// collectors run *inside* the λGC machine (every collector instruction is
// an interpreted, substitution-based small step), while a production
// collector is native code. This benchmark quantifies that gap on the same
// heaps with the same semantics (the native collector is the
// sharing-preserving oracle of gc/NativeCollector.h).
//
// google-benchmark: per-collection time, certified (Base and Forward
// levels, type tracking off for fairness) vs native, over list heaps.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/NativeCollector.h"

#include <benchmark/benchmark.h>

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

void BM_CertifiedCollect(benchmark::State &State, LanguageLevel Level) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    MachineConfig Cfg;
    Cfg.TrackTypes = false; // measure the collector, not Ψ bookkeeping
    Setup S(Level, Cfg);
    ForgedHeap H = forgeList(*S.M, S.R, S.Old, static_cast<size_t>(N));
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
    S.M->start(E);
    State.ResumeTiming();
    S.M->run(100'000'000);
    benchmark::DoNotOptimize(S.M->memory().liveDataCells());
    if (S.M->status() != Machine::Status::Halted)
      State.SkipWithError("certified collection did not halt");
  }
  State.SetItemsProcessed(State.iterations() * N * 2); // cells collected
}

void BM_NativeCollect(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcContext C;
    MachineConfig Cfg;
    Cfg.TrackTypes = false;
    Machine M(C, LanguageLevel::Base, Cfg);
    Region R = M.createRegion("from", 0);
    ForgedHeap H = forgeList(M, R, R, static_cast<size_t>(N));
    NativeGcStats Stats;
    State.ResumeTiming();
    nativeCollect(M, H.Root, R, /*PreserveSharing=*/true, Stats);
    benchmark::DoNotOptimize(Stats.ObjectsCopied);
  }
  State.SetItemsProcessed(State.iterations() * N * 2);
}

void CertifiedBase(benchmark::State &S) {
  BM_CertifiedCollect(S, LanguageLevel::Base);
}
void CertifiedForward(benchmark::State &S) {
  BM_CertifiedCollect(S, LanguageLevel::Forward);
}

BENCHMARK(CertifiedBase)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(CertifiedForward)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeCollect)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): strip `--json <path>` before the
// benchmark library parses argv (detailed series come from the library's
// own --benchmark_format=json; our record marks a completed run).
int main(int argc, char **argv) {
  std::string JsonPath = scav::bench::consumeJsonArg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  size_t Ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  scav::bench::JsonReport Report("e8_certified_vs_native");
  Report.metric("benchmarks_ran", static_cast<uint64_t>(Ran));
  Report.pass(Ran > 0);
  Report.write(JsonPath);
  return Ran > 0 ? 0 : 1;
}
