//===- bench/e8_certified_vs_native.cpp - E8: the price of certification --===//
//
// Not a claim from the paper but its elephant in the room: our certified
// collectors run *inside* the λGC machine (every collector instruction is
// an interpreted, substitution-based small step), while a production
// collector is native code. This benchmark quantifies that gap on the same
// heaps with the same semantics (the native collector is the
// sharing-preserving oracle of gc/NativeCollector.h).
//
// google-benchmark: per-collection time, certified (Base and Forward
// levels, type tracking off for fairness) vs native, over list heaps.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/NativeCollector.h"
#include "gc/StateCheck.h"

#include <benchmark/benchmark.h>

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

void BM_CertifiedCollect(benchmark::State &State, LanguageLevel Level) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    MachineConfig Cfg;
    Cfg.TrackTypes = false; // measure the collector, not Ψ bookkeeping
    Setup S(Level, Cfg);
    ForgedHeap H = forgeList(*S.M, S.R, S.Old, static_cast<size_t>(N));
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
    S.M->start(E);
    State.ResumeTiming();
    S.M->run(100'000'000);
    benchmark::DoNotOptimize(S.M->memory().liveDataCells());
    if (S.M->status() != Machine::Status::Halted)
      State.SkipWithError("certified collection did not halt");
  }
  State.SetItemsProcessed(State.iterations() * N * 2); // cells collected
}

void BM_NativeCollect(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    GcContext C;
    MachineConfig Cfg;
    Cfg.TrackTypes = false;
    Machine M(C, LanguageLevel::Base, Cfg);
    Region R = M.createRegion("from", 0);
    ForgedHeap H = forgeList(M, R, R, static_cast<size_t>(N));
    NativeGcStats Stats;
    State.ResumeTiming();
    nativeCollect(M, H.Root, R, /*PreserveSharing=*/true, Stats);
    benchmark::DoNotOptimize(Stats.ObjectsCopied);
  }
  State.SetItemsProcessed(State.iterations() * N * 2);
}

void CertifiedBase(benchmark::State &S) {
  BM_CertifiedCollect(S, LanguageLevel::Base);
}
void CertifiedForward(benchmark::State &S) {
  BM_CertifiedCollect(S, LanguageLevel::Forward);
}

BENCHMARK(CertifiedBase)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(CertifiedForward)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeCollect)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

/// The re-baselined headline: one certified Forward collection with the
/// soundness theorem re-established at EVERY step (incremental checker),
/// with stepping and checking time split out, against the native collector
/// on the same heap. Fills \p Report with step_seconds / check_seconds /
/// native_seconds and the two derived ratios; returns false on failure.
bool measureCheckedVsNative(scav::bench::JsonReport &Report) {
  const size_t N = 128;
  // Certified + checked run: Ψ tracking on (the checker consumes it).
  Setup S(LanguageLevel::Forward);
  ForgedHeap H = forgeList(*S.M, S.R, S.Old, N);
  Address Fin = installFinisher(*S.M, H.Tag);
  S.M->start(collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin));
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = true;
  IncrementalStateCheck Inc(*S.M, IOpts);
  double StepSeconds = 0, CheckSeconds = 0;
  auto C0 = std::chrono::steady_clock::now();
  if (!Inc.check().Ok) {
    std::fprintf(stderr, "initial state rejected\n");
    return false;
  }
  CheckSeconds += secondsSince(C0);
  uint64_t Steps = 0;
  while (S.M->status() == Machine::Status::Running && Steps < 50'000'000) {
    auto T0 = std::chrono::steady_clock::now();
    S.M->step();
    double StepS = secondsSince(T0);
    StepSeconds += StepS;
    Report.sample("step_ns", StepS * 1e9);
    ++Steps;
    auto T1 = std::chrono::steady_clock::now();
    StateCheckResult R = Inc.check();
    double CheckS = secondsSince(T1);
    CheckSeconds += CheckS;
    Report.sample("check_ns", CheckS * 1e9);
    if (!R.Ok) {
      std::fprintf(stderr, "checker rejected step %llu: %s\n",
                   (unsigned long long)Steps, R.Error.c_str());
      return false;
    }
  }
  if (S.M->status() != Machine::Status::Halted) {
    std::fprintf(stderr, "checked collection did not halt\n");
    return false;
  }

  // Native baseline on an identical heap.
  GcContext C;
  MachineConfig Cfg;
  Cfg.TrackTypes = false;
  Machine M(C, LanguageLevel::Base, Cfg);
  Region R = M.createRegion("from", 0);
  ForgedHeap NH = forgeList(M, R, R, N);
  NativeGcStats NStats;
  auto N0 = std::chrono::steady_clock::now();
  nativeCollect(M, NH.Root, R, /*PreserveSharing=*/true, NStats);
  double NativeSeconds = secondsSince(N0);
  benchmark::DoNotOptimize(NStats.ObjectsCopied);

  double CheckedRatio =
      NativeSeconds > 0 ? (StepSeconds + CheckSeconds) / NativeSeconds : 0;
  double UncheckedRatio = NativeSeconds > 0 ? StepSeconds / NativeSeconds : 0;
  std::printf("\ncertified+checked vs native (N=%zu, per-step incremental "
              "checks):\n  step %.3fs + check %.3fs vs native %.6fs  "
              "(%.0fx checked, %.0fx unchecked)\n",
              N, StepSeconds, CheckSeconds, NativeSeconds, CheckedRatio,
              UncheckedRatio);
  Report.metric("step_seconds", StepSeconds);
  Report.metric("check_seconds", CheckSeconds);
  Report.metric("native_seconds", NativeSeconds);
  Report.metric("checked_steps", Steps);
  Report.metric("certified_vs_native", UncheckedRatio);
  Report.metric("certified_checked_vs_native", CheckedRatio);
  return true;
}

} // namespace

// Custom main instead of BENCHMARK_MAIN(): strip `--json <path>` before the
// benchmark library parses argv (detailed series come from the library's
// own --benchmark_format=json; our record marks a completed run).
int main(int argc, char **argv) {
  std::string JsonPath = scav::bench::consumeJsonArg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  size_t Ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  scav::bench::JsonReport Report("e8_certified_vs_native");
  Report.metric("benchmarks_ran", static_cast<uint64_t>(Ran));
  bool MeasuredOk = measureCheckedVsNative(Report);
  Report.pass(Ran > 0 && MeasuredOk);
  Report.write(JsonPath);
  return Ran > 0 && MeasuredOk ? 0 : 1;
}
