//===- bench/e12_checkrate.cpp - E12: incremental vs full ⊢ (M, e) --------===//
//
// Per-step soundness checking is the paper's executable theorem, but the
// full checkState re-derives Ψ ⊢ M(a) : Ψ(a) for every heap cell at every
// step — O(heap) work for an O(1) step. E12 measures what the incremental
// checker (delta journal + cached cell judgments, gc/StateCheck.h) buys on
// the heavy certified-collection workloads of E2 (forwarding) and E4
// (generational):
//
//   * per-step-checked steps/second with the full checker (measured over a
//     bounded window — full checking an entire collection takes minutes)
//     vs with the incremental checker (measured over the entire run);
//   * the acceptance claim: incremental is >=10x on both workloads;
//   * verdict agreement: during the incremental run the full checker is
//     re-run as an oracle on a fixed cadence and must agree every time
//     (the differential and mutation tests cover the reject side).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gc/StateCheck.h"

using namespace scav;
using namespace scav::bench;

namespace {

struct Workload {
  const char *Name; ///< Label + JSON key prefix.
  LanguageLevel Level;
  size_t Size; ///< List length.
};

/// Builds the workload's machine, forges the heap, and starts the
/// one-collection term.
void startWorkload(Setup &S, const Workload &W) {
  ForgedHeap H = forgeList(*S.M, S.R, S.Old, W.Size);
  Address Fin = installFinisher(*S.M, H.Tag);
  S.M->start(collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin));
}

struct RateResult {
  bool Ok = true;
  uint64_t Steps = 0;
  double Seconds = 0;
  uint64_t AgreementChecks = 0;
  IncrementalCheckStats Inc;

  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
};

/// Step + full checkState over a bounded window (the full checker is the
/// O(heap) baseline being displaced; whole-run full checking is minutes).
RateResult runFull(const Workload &W, uint64_t WindowSteps,
                   JsonReport &Report) {
  RateResult Out;
  Setup S(W.Level);
  startWorkload(S, W);
  StateCheckOptions Chk;
  Chk.RestrictToReachable = W.Level != LanguageLevel::Base;
  StateCheckResult R0 = checkState(*S.M, Chk);
  if (!R0.Ok) {
    std::fprintf(stderr, "%s: initial state rejected: %s\n", W.Name,
                 R0.Error.c_str());
    Out.Ok = false;
    return Out;
  }
  Chk.CheckCodeRegion = false;
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0;
       I != WindowSteps && S.M->status() == Machine::Status::Running; ++I) {
    S.M->step();
    auto C0 = std::chrono::steady_clock::now();
    StateCheckResult R = checkState(*S.M, Chk);
    Report.sample("full_check_ns", secondsSince(C0) * 1e9);
    if (!R.Ok) {
      std::fprintf(stderr, "%s: full checker rejected step %llu: %s\n",
                   W.Name, (unsigned long long)I, R.Error.c_str());
      Out.Ok = false;
      return Out;
    }
    ++Out.Steps;
  }
  Out.Seconds = secondsSince(T0);
  return Out;
}

/// Step + incremental check to halt, with the full checker re-run as an
/// oracle every \p OracleEvery steps (0 = never).
RateResult runIncremental(const Workload &W, uint64_t OracleEvery,
                          JsonReport &Report) {
  RateResult Out;
  Setup S(W.Level);
  startWorkload(S, W);
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = W.Level != LanguageLevel::Base;
  IncrementalStateCheck Inc(*S.M, IOpts);
  StateCheckOptions Oracle;
  Oracle.CheckCodeRegion = false;
  Oracle.RestrictToReachable = IOpts.RestrictToReachable;

  StateCheckResult R0 = Inc.check();
  if (!R0.Ok) {
    std::fprintf(stderr, "%s: initial state rejected: %s\n", W.Name,
                 R0.Error.c_str());
    Out.Ok = false;
    return Out;
  }
  double OracleSeconds = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0;
       I != 50'000'000 && S.M->status() == Machine::Status::Running; ++I) {
    S.M->step();
    StateCheckResult R = Inc.check();
    if (!R.Ok) {
      std::fprintf(stderr, "%s: incremental checker rejected step %llu: %s\n",
                   W.Name, (unsigned long long)I, R.Error.c_str());
      Out.Ok = false;
      return Out;
    }
    ++Out.Steps;
    if (OracleEvery != 0 && I % OracleEvery == 0) {
      auto O0 = std::chrono::steady_clock::now();
      StateCheckResult RF = checkState(*S.M, Oracle);
      double OSec = secondsSince(O0);
      OracleSeconds += OSec;
      Report.sample("oracle_check_ns", OSec * 1e9);
      ++Out.AgreementChecks;
      if (!RF.Ok) {
        std::fprintf(stderr,
                     "%s: VERDICT DISAGREEMENT at step %llu: incremental "
                     "accepted, full says: %s\n",
                     W.Name, (unsigned long long)I, RF.Error.c_str());
        Out.Ok = false;
        return Out;
      }
    }
  }
  // The oracle's own cost is not the incremental checker's.
  Out.Seconds = secondsSince(T0) - OracleSeconds;
  if (S.M->status() != Machine::Status::Halted) {
    std::fprintf(stderr, "%s: collection did not halt: %s\n", W.Name,
                 S.M->stuckReason().c_str());
    Out.Ok = false;
  }
  Out.Inc = Inc.stats();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e12_checkrate");
  std::printf("E12: incremental vs full per-step state checking\n");
  std::printf("claim: journaling the step delta and caching per-cell "
              "judgments makes\nper-step-checked execution >=10x faster "
              "than re-running the full O(heap)\ncheckState, with verdict "
              "agreement on an oracle cadence\n\n");
  std::printf("%12s %10s %11s %11s %8s %10s %9s\n", "workload", "steps",
              "full st/s", "incr st/s", "speedup", "validated", "oracles");

  const Workload Workloads[] = {
      {"e2-forward", LanguageLevel::Forward, 192},
      {"e4-gen", LanguageLevel::Generational, 192},
  };
  // Full-checker window: enough steps for a stable per-step cost (which is
  // dominated by the O(heap) cell loop) without taking minutes.
  const uint64_t WindowSteps = 250;
  const uint64_t OracleEvery = 97;

  bool Ok = true;
  for (const Workload &W : Workloads) {
    RateResult Full = runFull(W, WindowSteps, Report);
    RateResult Incr = runIncremental(W, OracleEvery, Report);
    if (!Full.Ok || !Incr.Ok)
      return 1;
    double Speedup = Full.stepsPerSec() > 0
                         ? Incr.stepsPerSec() / Full.stepsPerSec()
                         : 0;
    std::printf("%12s %10llu %11.3g %11.3g %7.1fx %10llu %9llu\n", W.Name,
                (unsigned long long)Incr.Steps, Full.stepsPerSec(),
                Incr.stepsPerSec(), Speedup,
                (unsigned long long)Incr.Inc.CellsValidated,
                (unsigned long long)Incr.AgreementChecks);
    Ok = Ok && Speedup >= 10.0 && Incr.AgreementChecks > 0;

    std::string P = W.Name;
    for (char &Ch : P)
      if (Ch == '-')
        Ch = '_';
    Report.metric(P + "_steps", Incr.Steps);
    Report.metric(P + "_full_steps_per_sec", Full.stepsPerSec());
    Report.metric(P + "_incr_steps_per_sec", Incr.stepsPerSec());
    Report.metric(P + "_speedup", Speedup);
    Report.metric(P + "_agreement_checks", Incr.AgreementChecks);
    Report.metric(P + "_cells_validated", Incr.Inc.CellsValidated);
    Report.metric(P + "_judgment_cache_hits", Incr.Inc.CellJudgmentCacheHits);
    Report.metric(P + "_region_invalidations", Incr.Inc.RegionInvalidations);
    Report.metric(P + "_dependent_invalidations",
                  Incr.Inc.DependentInvalidations);
    Report.metric(P + "_reach_exact_recomputes",
                  Incr.Inc.ReachExactRecomputes);
  }

  std::printf("\n");
  verdict(Ok, "incremental checking: >=10x per-step-checked steps/sec over "
              "the full checker on the E2/E4 collector workloads, oracle "
              "verdicts agreeing throughout");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
