//===- bench/e6_type_growth.cpp - E6: symmetric M vs naive S (§2.2.1) -----===//
//
// The paper's §2.2.1 ablation: the naive Typerec S_{T,F}(σ) (substitute
// the to-region for the from-region) is *asymmetric* — after each
// collection the mutator's types become S_{ρk,ρk-1}(...S_{ρ1,ρ0}(σ)...),
// and because S is stuck on quantified type variables
// ("∃α.S_{T,F}(α) is a normal form"), the operators accumulate: type size
// grows linearly with the number of collections. The paper's M (one region
// index, symmetric copy ∀F.∀T.(M_F(α) → M_T(α))) keeps types at constant
// size.
//
// This binary models the rejected design faithfully (S distributes over
// Int/×/→/∃-bodies but is stuck on type variables) and measures both.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/Ops.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace scav;
using namespace scav::gc;

namespace {

/// The rejected substitution-Typerec, modeled over λGC tags with explicit
/// stuck S applications.
struct SType {
  enum class Kind { Leaf, Prod, Exists, Var, SApp } K;
  const SType *A = nullptr;
  const SType *B = nullptr;
  int FromEpoch = 0, ToEpoch = 0; // S_{ρto,ρfrom}
};

struct SArena {
  std::vector<std::unique_ptr<SType>> Pool;
  const SType *make(SType T) {
    Pool.push_back(std::make_unique<SType>(T));
    return Pool.back().get();
  }
};

/// Applies one collection: wrap in S_{k+1,k} and push it through the
/// structure; stuck on ∃-bound variables (§2.2.1).
const SType *collect(SArena &A, const SType *T, int Epoch) {
  switch (T->K) {
  case SType::Kind::Leaf:
    return T; // S(Int) = Int
  case SType::Kind::Prod:
    return A.make({SType::Kind::Prod, collect(A, T->A, Epoch),
                   collect(A, T->B, Epoch)});
  case SType::Kind::Exists:
    // S pushes into the body...
    return A.make({SType::Kind::Exists, collect(A, T->A, Epoch), nullptr});
  case SType::Kind::Var:
  case SType::Kind::SApp:
    // ...but ∃α.S(α) is a normal form: the new S wraps the old ones.
    return A.make(
        {SType::Kind::SApp, T, nullptr, Epoch - 1, Epoch});
  }
  return T;
}

size_t sizeOf(const SType *T) {
  size_t N = 1;
  if (T->A)
    N += sizeOf(T->A);
  if (T->B)
    N += sizeOf(T->B);
  return N;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = scav::bench::consumeJsonArg(argc, argv);
  scav::bench::JsonReport Report("e6_type_growth");
  std::printf("E6: type growth across collections — naive S vs symmetric M "
              "(section 2.2.1)\n");
  std::printf("claim: S operators accumulate on quantified variables (type "
              "size grows per collection); the M design stays constant\n\n");

  // The mutator type: ∃α.((α × Int) × ∃β.β) — two quantifiers to get
  // stuck on.
  SArena A;
  const SType *Leaf = A.make({SType::Kind::Leaf});
  const SType *Inner =
      A.make({SType::Kind::Exists, A.make({SType::Kind::Var}), nullptr});
  const SType *Body = A.make(
      {SType::Kind::Prod,
       A.make({SType::Kind::Prod, A.make({SType::Kind::Var}), Leaf}),
       Inner});
  const SType *Naive = A.make({SType::Kind::Exists, Body, nullptr});

  // The same type under the paper's M, in a real GcContext: M_ρ(∃t.(t×Int))
  // after k collections is M_ρk(τ) — same size for every k.
  GcContext C;
  Symbol T = C.fresh("t"), U = C.fresh("u");
  const Tag *Tau = C.tagExists(
      T, C.tagProd(C.tagProd(C.tagVar(T), C.tagInt()),
                   C.tagExists(U, C.tagVar(U))));

  std::printf("%12s %14s %14s\n", "collections", "naive-S-size", "M-size");
  bool Ok = true;
  size_t MBase = 0;
  for (int K = 0; K <= 32; K += 4) {
    const SType *Cur = Naive;
    for (int I = 1; I <= K; ++I)
      Cur = collect(A, Cur, I);
    Region R = Region::name(C.fresh("rho"));
    auto T0 = std::chrono::steady_clock::now();
    size_t MSize =
        typeSize(normalizeType(C, C.typeM(R, Tau), LanguageLevel::Base));
    Report.sample("normalize_ns",
                  std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
    if (K == 0)
      MBase = MSize;
    std::printf("%12d %14zu %14zu\n", K, sizeOf(Cur), MSize);
    Ok = Ok && MSize == MBase;
    if (K >= 4)
      Ok = Ok && sizeOf(Cur) > sizeOf(Naive);
    if (K == 32) {
      Report.metric("collections", uint64_t(K));
      Report.metric("naive_s_size", uint64_t(sizeOf(Cur)));
      Report.metric("m_size", uint64_t(MSize));
    }
  }

  std::printf("\n");
  std::printf("%s: naive S grows linearly with collection count; the "
              "symmetric M stays constant\n",
              Ok ? "PASS" : "FAIL");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
