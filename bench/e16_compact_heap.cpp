//===- bench/e16_compact_heap.cpp - E16: compact vs legacy heap layout ----===//
//
// PR 8's representation change measured head-to-head in one process: the
// compact tagged-word heap (flat uint64 region buffers, inline int/addr
// payloads, dense region-id table — DESIGN.md §3.12) vs the legacy
// pointer-cell representation, selected per machine via
// MachineConfig::Layout.
//
//  A. Native collect pauses (E8's native leg, plus E9's copy orders and
//     E15's parallel path): depth-first, serial Cheney, and 4-thread
//     Cheney over list and shared-tree heaps. The compact copy transforms
//     words (no Value allocation for unboxed cells) where the legacy copy
//     rebuilds a Value per live cell. Claim (gated): serial Cheney copy
//     pauses >= 1.5x faster compact vs legacy on the gated heaps. The
//     depth-first and parallel paths are reported alongside: dfs on the
//     deep list spends its pause in ~2 recursion frames per node (the
//     same either way), and the parallel path's pause is bounded by
//     claim-CAS contention, so neither isolates the representation.
//
//  B. VM step rate (E13's workloads, E11's shape): full certified
//     collections on the E2-forwarding and E4-generational list heaps
//     under the bytecode VM, TrackTypes off — the configuration where the
//     VM's word-direct put/set paths are live. Claim (gated): >= 1.3x
//     steps/sec compact vs legacy. The env machine is reported alongside
//     (same dense-region-table win, no word-direct store paths).
//
// Latency histograms: every collection pause lands in a per-layout
// histogram (collect_pause_legacy_ns / collect_pause_compact_ns), so the
// JSON record carries p50/p90/p99 alongside the means.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gc/NativeCollector.h"

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

const char *layoutName(HeapLayout L) {
  return L == HeapLayout::Compact ? "compact" : "legacy";
}

//===----------------------------------------------------------------------===//
// Part A: native collect pauses
//===----------------------------------------------------------------------===//

struct CopyHeap {
  const char *Name;
  ForgedHeap (*Forge)(Machine &M, Region R);
  bool Gated;
};

struct CopyPath {
  const char *Name;
  CopyOrder Order;
  unsigned Threads;
  bool Gated; ///< The serial Cheney path carries the >=1.5x claim.
};

double copyOnce(const CopyHeap &H, const CopyPath &P, HeapLayout L,
                JsonReport &Report) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.TrackTypes = false; // raw copy throughput, as in E8/E15
  Cfg.Layout = L;
  Machine M(C, LanguageLevel::Base, Cfg);
  Region R = M.createRegion("from", 0);
  ForgedHeap Heap = H.Forge(M, R);
  NativeGcStats Stats;
  auto T0 = std::chrono::steady_clock::now();
  nativeCollect(M, Heap.Root, R, /*PreserveSharing=*/true, Stats, P.Order,
                P.Threads);
  double Sec = secondsSince(T0);
  Report.sample(std::string("collect_pause_") + layoutName(L) + "_ns",
                Sec * 1e9);
  return Sec;
}

/// Pairs the layouts per rep (legacy then compact, alternating) so machine
/// drift over the rep block hits both sides equally, and takes each side's
/// best pause.
std::pair<double, double> copyBestPair(const CopyHeap &H, const CopyPath &P,
                                       int Reps, JsonReport &Report) {
  double BestL = 0, BestC = 0;
  for (int I = 0; I != Reps; ++I) {
    double TL = copyOnce(H, P, HeapLayout::Legacy, Report);
    double TC = copyOnce(H, P, HeapLayout::Compact, Report);
    if (I == 0 || TL < BestL)
      BestL = TL;
    if (I == 0 || TC < BestC)
      BestC = TC;
  }
  return {BestL, BestC};
}

// The depth-first path recurses ~2 frames per list node, so the list heap
// stays well short of the legacy depth-first collector's ~20k-node stack
// ceiling; the tree heap carries the bulk (2^16-1 cells at depth 15,
// recursion depth only 15).
ForgedHeap forgeBigList(Machine &M, Region R) {
  return forgeList(M, R, R, 8'000);
}

ForgedHeap forgeWideTree(Machine &M, Region R) {
  return forgeTree(M, R, R, 15, /*Share=*/false);
}

//===----------------------------------------------------------------------===//
// Part B: VM step rate over full certified collections
//===----------------------------------------------------------------------===//

struct Workload {
  const char *Name;
  LanguageLevel Level;
  size_t Size;
};

struct RateResult {
  bool Ok = true;
  uint64_t Steps = 0;
  double Seconds = 0;

  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
};

RateResult runWorkload(const Workload &W, EvalMode Mode, HeapLayout L,
                       int Reps) {
  RateResult Out;
  MachineConfig Cfg;
  Cfg.Eval = Mode;
  Cfg.Layout = L;
  Cfg.TrackTypes = false; // Ψ upkeep costs the same either way (E13);
                          // also what arms the VM's word-direct stores
  Setup S(W.Level, Cfg);

  // Untimed warm-up collection (compiles the collector chunks in VM
  // mode, warms caches in both), as in E13.
  {
    Region WR = S.M->createRegion("warm-from", 0);
    Region WOld = W.Level == LanguageLevel::Generational
                      ? S.M->createRegion("warm-old", 0)
                      : WR;
    ForgedHeap WH = forgeList(*S.M, WR, WOld, 8);
    Address WFin = installFinisher(*S.M, WH.Tag);
    S.M->start(collectOnceTerm(*S.M, S.GcAddr, WH, WR, WOld, WFin));
    S.M->run(50'000'000);
    if (S.M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "%s (%s/%s): warm-up failed: %s\n", W.Name,
                   evalModeName(Mode), layoutName(L),
                   S.M->stuckReason().c_str());
      Out.Ok = false;
      return Out;
    }
  }

  // The timed reps share one machine: each rep forges a fresh from-space
  // (the collection's own `only` reclaims it) and only the run windows
  // count, so the measurement is the steady-state rate the evaluator
  // sustains once chunks, caches, and the allocator are warm. A one-shot
  // cold run under-reports the faster layout — fixed per-run costs weigh
  // more against a shorter run.
  for (int I = 0; I != Reps; ++I) {
    Region R = S.M->createRegion("from", 0);
    Region Old = W.Level == LanguageLevel::Generational
                     ? S.M->createRegion("old", 0)
                     : R;
    ForgedHeap H = forgeList(*S.M, R, Old, W.Size);
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, R, Old, Fin);
    uint64_t Pre = S.M->stats().Steps;
    S.M->start(E);
    auto T0 = std::chrono::steady_clock::now();
    S.M->run(50'000'000);
    Out.Seconds += secondsSince(T0);
    if (S.M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "%s (%s/%s): collection failed: %s\n", W.Name,
                   evalModeName(Mode), layoutName(L),
                   S.M->stuckReason().c_str());
      Out.Ok = false;
      return Out;
    }
    Out.Steps += S.M->stats().Steps - Pre;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e16_compact_heap");
  Report.evalMode("both");
  std::printf("E16: compact tagged-word heap vs legacy pointer cells\n");
  std::printf("claim: flat word buffers + inline payloads + dense region "
              "ids give >=1.5x\nnative collect pauses and >=1.3x VM "
              "steps/sec on the E2/E4 workloads\n\n");

  bool Ok = true;

  // Part A --------------------------------------------------------------
  std::printf("%11s %10s %12s %12s %8s\n", "heap", "path", "legacy-ms",
              "compact-ms", "speedup");
  const CopyHeap Heaps[] = {
      {"list-8k", forgeBigList, true},
      {"tree-d15", forgeWideTree, true},
  };
  const CopyPath Paths[] = {
      {"dfs", CopyOrder::DepthFirst, 1, false},
      {"cheney", CopyOrder::BreadthFirst, 1, true},
      {"cheney-t4", CopyOrder::BreadthFirst, 4, false},
  };
  const int CopyReps = 15;
  for (const CopyHeap &H : Heaps) {
    for (const CopyPath &P : Paths) {
      auto [Legacy, Compact] = copyBestPair(H, P, CopyReps, Report);
      double Speedup = Compact > 0 ? Legacy / Compact : 0;
      std::printf("%11s %10s %12.3f %12.3f %7.2fx\n", H.Name, P.Name,
                  Legacy * 1e3, Compact * 1e3, Speedup);
      if (H.Gated && P.Gated)
        Ok = Ok && Speedup >= 1.5;
      std::string Key =
          std::string(H.Name) + "_" + P.Name + "_speedup";
      for (char &Ch : Key)
        if (Ch == '-')
          Ch = '_';
      Report.metric(Key, Speedup);
    }
  }

  // Part B --------------------------------------------------------------
  std::printf("\n%11s %5s %12s %12s %8s\n", "workload", "mode", "legacy",
              "compact", "speedup");
  const Workload Workloads[] = {
      {"e2-forward", LanguageLevel::Forward, 1500},
      {"e4-gen", LanguageLevel::Generational, 1500},
  };
  const int Reps = 16;
  // Alternating best-of passes: machine noise drifts over seconds, so one
  // summed window per layout can hand either side a spurious 20%. Pairing
  // the layouts per pass and taking each side's best keeps the comparison
  // inside one drift window.
  const int Passes = 5;
  for (const Workload &W : Workloads) {
    for (EvalMode Mode : {EvalMode::Vm, EvalMode::Env}) {
      RateResult Legacy, Compact;
      for (int P = 0; P != Passes; ++P) {
        RateResult PL = runWorkload(W, Mode, HeapLayout::Legacy, Reps);
        RateResult PC = runWorkload(W, Mode, HeapLayout::Compact, Reps);
        if (!PL.Ok || !PC.Ok)
          return 1;
        if (PL.Steps != PC.Steps) {
          std::fprintf(stderr,
                       "%s (%s): layouts disagree on step count "
                       "(%llu vs %llu)\n",
                       W.Name, evalModeName(Mode),
                       (unsigned long long)PL.Steps,
                       (unsigned long long)PC.Steps);
          return 1;
        }
        if (P == 0 || PL.stepsPerSec() > Legacy.stepsPerSec())
          Legacy = PL;
        if (P == 0 || PC.stepsPerSec() > Compact.stepsPerSec())
          Compact = PC;
      }
      double Speedup = Legacy.stepsPerSec() > 0
                           ? Compact.stepsPerSec() / Legacy.stepsPerSec()
                           : 0;
      std::printf("%11s %5s %12.3g %12.3g %7.2fx\n", W.Name,
                  evalModeName(Mode), Legacy.stepsPerSec(),
                  Compact.stepsPerSec(), Speedup);
      if (Mode == EvalMode::Vm)
        Ok = Ok && Speedup >= 1.3;

      std::string P = std::string(W.Name) + "_" + evalModeName(Mode);
      for (char &Ch : P)
        if (Ch == '-')
          Ch = '_';
      Report.metric(P + "_steps", Legacy.Steps);
      Report.metric(P + "_legacy_steps_per_sec", Legacy.stepsPerSec());
      Report.metric(P + "_compact_steps_per_sec", Compact.stepsPerSec());
      Report.metric(P + "_speedup", Speedup);
    }
  }

  std::printf("\n");
  verdict(Ok, "compact heap: >=1.5x serial native collect pauses and "
              ">=1.3x VM steps/sec over legacy on the E2/E4 workloads");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
