//===- bench/e2_forwarding.cpp - E2: forwarding pointers (§7, Fig 9) ------===//
//
// Paper claims measured:
//  (a) forwarding needs a single tag bit per object (the Forward-level M
//      wraps every heap object in `left`), and exactly one `set` per
//      copied object installs the forwarding pointer;
//  (b) shared objects are copied once — the second visit takes the
//      ifleft-else path and returns the forwarding pointer;
//  (c) `widen` is a no-op on data: one widen per collection, zero data
//      writes attributable to it (writes = puts + sets only).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e2_forwarding");
  std::printf("E2: forwarding pointers in the certified collector (Fig 9)\n");
  std::printf("claim: one tag bit + one set per object; shared objects "
              "copied once; widen moves no data\n\n");
  std::printf("%10s %8s %10s %8s %8s %10s %8s\n", "heap", "cells", "copied",
              "sets", "widens", "fwd-hits", "live");

  bool Ok = true;

  // Lists of increasing length: sets == live objects, no sharing.
  for (size_t N : {4, 16, 64, 128}) {
    Setup S(LanguageLevel::Forward);
    S.attachReport(Report); // pauses land in collect_pause_ns
    ForgedHeap H = forgeList(*S.M, S.R, S.Old, N);
    uint64_t Puts0 = S.M->stats().Puts;
    if (!S.collectOnce(H))
      return 1;
    // Copied objects = puts into the to-region = live cells afterwards.
    size_t Live = S.M->memory().liveDataCells();
    uint64_t Sets = S.M->stats().Sets;
    std::printf("%10s %8zu %10zu %8llu %8llu %10s %8zu\n", "list", H.Cells,
                Live, (unsigned long long)Sets,
                (unsigned long long)S.M->stats().Widens, "-", Live);
    (void)Puts0;
    Ok = Ok && Live == H.Cells && Sets == H.Cells &&
         S.M->stats().Widens == 1;
    if (N == 128) {
      Report.metric("list_cells", uint64_t(H.Cells));
      Report.metric("list_sets", Sets);
    }
  }

  // Maximally-shared DAGs: copies = physical cells, not logical nodes.
  for (unsigned D : {4, 8, 12}) {
    Setup S(LanguageLevel::Forward);
    S.attachReport(Report);
    ForgedHeap H = forgeTree(*S.M, S.R, S.Old, D, /*Share=*/true);
    if (!S.collectOnce(H))
      return 1;
    size_t Live = S.M->memory().liveDataCells();
    uint64_t Sets = S.M->stats().Sets;
    // Logical size would be 2^(D+1)-1; forwarding hits = revisits.
    size_t Logical = (size_t(1) << (D + 1)) - 1;
    std::printf("%9s%u %8zu %10zu %8llu %8llu %10zu %8zu\n", "dag-d", D,
                H.Cells, Live, (unsigned long long)Sets,
                (unsigned long long)S.M->stats().Widens, Logical - H.Cells,
                Live);
    Ok = Ok && Live == H.Cells && Sets == H.Cells;
    if (D == 12) {
      Report.metric("dag_cells", uint64_t(H.Cells));
      Report.metric("dag_live_after", uint64_t(Live));
      Report.metric("dag_logical", uint64_t(Logical));
    }
  }

  // Idempotence: collecting a second time preserves the same live set.
  {
    Setup S(LanguageLevel::Forward);
    S.attachReport(Report);
    ForgedHeap H = forgeList(*S.M, S.R, S.Old, 32);
    if (!S.collectOnce(H))
      return 1;
    size_t AfterFirst = S.M->memory().liveDataCells();
    Ok = Ok && AfterFirst == H.Cells;
  }

  std::printf("\n");
  verdict(Ok, "forwarding: exactly one copy and one forwarding-pointer "
              "store per live object, independent of sharing degree; one "
              "widen per collection");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
