//===- bench/e15_parallel.cpp - E15: parallel copy & pipelined ⊢ (M, e) ---===//
//
// PR 7's two throughput levers, measured separately because they compose:
//
//  A. *Parallel copy*: the native Cheney collector's copy loop over chunked
//     work-stealing queues (gc/NativeCollector.h, Threads > 1). The mutator
//     is parked for the whole collection, so from-space is stable and the
//     only coordination is per-cell claim CASes and chunk steals. Claim:
//     copy phase >= 2x at 4 threads on wide heaps (gated on the box
//     actually having >= 4 cores; a list heap has a frontier of width 1
//     and is reported for contrast, not gated).
//
//  B. *Pipelined certification*: the incremental checker displaced onto a
//     checker thread behind a bounded queue (gc/AsyncCheck.h). The mutator
//     pays only for *capture* (journal slice + dirty offsets), not for the
//     check itself. Sustained throughput is still checker-bound — the queue
//     fills and backpressure returns the mutator to the checker's pace —
//     so the honest measurement is a *bounded sprint* that fits in the
//     queue: mutator-side steps/sec over a fixed window, sync per-step
//     incremental check vs async capture, on the E12 workloads (E2
//     forwarding, E4 generational). Claim: >= 3x. Verdict agreement on the
//     accept side is checked here (session verdict + a final full
//     checkState oracle); the reject side is the differential mutation
//     test (tests/gc_async_check_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gc/AsyncCheck.h"
#include "gc/NativeCollector.h"
#include "gc/StateCheck.h"

#include <thread>

using namespace scav;
using namespace scav::bench;

namespace {

//===----------------------------------------------------------------------===//
// Part A: parallel Cheney copy
//===----------------------------------------------------------------------===//

struct CopyHeap {
  const char *Name;
  ForgedHeap (*Forge)(Machine &M, Region R);
  bool Gated; ///< Counts toward the >= 2x verdict.
};

double copyOnce(const CopyHeap &H, unsigned Threads, NativeGcStats &Stats) {
  GcContext C;
  MachineConfig Cfg;
  Cfg.TrackTypes = false; // raw copy throughput; Ψ refresh is E8's story
  Machine M(C, LanguageLevel::Base, Cfg);
  Region R = M.createRegion("from", 0);
  ForgedHeap Heap = H.Forge(M, R);
  auto T0 = std::chrono::steady_clock::now();
  nativeCollect(M, Heap.Root, R, /*PreserveSharing=*/true, Stats,
                CopyOrder::BreadthFirst, Threads);
  return secondsSince(T0);
}

/// Best-of-\p Reps copy time (forge cost excluded; each rep re-forges
/// because the collect consumes the from-space).
double copyBest(const CopyHeap &H, unsigned Threads, int Reps,
                NativeGcStats &Stats) {
  double Best = 0;
  for (int I = 0; I != Reps; ++I) {
    NativeGcStats S;
    double T = copyOnce(H, Threads, S);
    if (I == 0 || T < Best) {
      Best = T;
      Stats = std::move(S);
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Part B: sync incremental check vs async capture, bounded sprint
//===----------------------------------------------------------------------===//

struct Workload {
  const char *Name;
  LanguageLevel Level;
  size_t Size;
};

void startWorkload(Setup &S, const Workload &W) {
  ForgedHeap H = forgeList(*S.M, S.R, S.Old, W.Size);
  Address Fin = installFinisher(*S.M, H.Tag);
  S.M->start(collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin));
}

struct SprintResult {
  bool Ok = true;
  uint64_t Steps = 0;
  double Seconds = 0;

  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
};

/// Sync leg: step + incremental check, timed over the window. The attach
/// check (the O(heap) one) runs before the clock starts, matching the
/// untimed attach capture of the async leg.
SprintResult syncSprint(const Workload &W, uint64_t Window) {
  SprintResult Out;
  Setup S(W.Level);
  startWorkload(S, W);
  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = W.Level != LanguageLevel::Base;
  IncrementalStateCheck Inc(*S.M, IOpts);
  StateCheckResult R0 = Inc.check();
  if (!R0.Ok) {
    std::fprintf(stderr, "%s: initial state rejected: %s\n", W.Name,
                 R0.Error.c_str());
    Out.Ok = false;
    return Out;
  }
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0;
       I != Window && S.M->status() == Machine::Status::Running; ++I) {
    S.M->step();
    StateCheckResult R = Inc.check();
    if (!R.Ok) {
      std::fprintf(stderr, "%s: sync checker rejected step %llu: %s\n",
                   W.Name, (unsigned long long)I, R.Error.c_str());
      Out.Ok = false;
      return Out;
    }
    ++Out.Steps;
  }
  Out.Seconds = secondsSince(T0);
  return Out;
}

/// Async leg: step + capture, timed over the same window. The queue is
/// sized to hold the whole sprint so no capture ever blocks (sustained
/// running *would* block — that is the backpressure contract, and exactly
/// why this measures a sprint). finish() drains the checker off the clock;
/// its verdict and a final full checkState must both accept.
SprintResult asyncSprint(const Workload &W, uint64_t Window,
                         JsonReport *Export) {
  SprintResult Out;
  Setup S(W.Level);
  startWorkload(S, W);
  AsyncCheckSession::Options SOpts;
  SOpts.Check.RestrictToReachable = W.Level != LanguageLevel::Base;
  SOpts.QueueCapacity = Window + 8;
  AsyncCheckSession Session(*S.M, SOpts);
  Session.capture(); // attach, untimed (mirrors the sync leg's R0)
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0;
       I != Window && S.M->status() == Machine::Status::Running; ++I) {
    S.M->step();
    if (!Session.capture())
      break; // a failure verdict already exists; finish() reports it
    ++Out.Steps;
  }
  Out.Seconds = secondsSince(T0);
  AsyncVerdict V = Session.finish();
  if (!V.Ok) {
    std::fprintf(stderr, "%s: async checker rejected unit %llu: %s\n",
                 W.Name, (unsigned long long)V.UnitIndex, V.Error.c_str());
    Out.Ok = false;
    return Out;
  }
  StateCheckOptions Oracle;
  Oracle.CheckCodeRegion = false;
  Oracle.RestrictToReachable = SOpts.Check.RestrictToReachable;
  StateCheckResult RF = checkState(*S.M, Oracle);
  if (!RF.Ok) {
    std::fprintf(stderr,
                 "%s: VERDICT DISAGREEMENT: async accepted the sprint, full "
                 "checker says: %s\n",
                 W.Name, RF.Error.c_str());
    Out.Ok = false;
    return Out;
  }
  const AsyncCheckStats &St = Session.stats();
  if (St.LagResyncs != 0) {
    // The queue was sized for the sprint; a resync means the timing
    // included a synchronous fallback and the number is not a capture rate.
    std::fprintf(stderr, "%s: unexpected lag resync during sprint\n", W.Name);
    Out.Ok = false;
  }
  if (Export)
    St.exportTo(Export->registry());
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e15_parallel");
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("E15: parallel native copy and pipelined certification\n");
  std::printf("claims: (A) work-stealing Cheney copy >= 2x at 4 threads on "
              "wide heaps;\n(B) async capture makes per-step-certified "
              "mutator sprints >= 3x the sync\nincremental checker on the "
              "E2/E4 workloads, verdicts agreeing\n\n");

  bool Ok = true;

  // --- Part A -----------------------------------------------------------
  std::printf("A. copy phase, serial vs 4 threads (cores here: %u)\n", Cores);
  std::printf("%10s %9s %12s %12s %8s %7s %7s\n", "heap", "copied",
              "serial ms", "par4 ms", "speedup", "steals", "chunks");
  const CopyHeap Heaps[] = {
      {"tree17", [](Machine &M, Region R) {
         return forgeTree(M, R, R, 17, /*Share=*/false);
       }, true},
      {"tree14", [](Machine &M, Region R) {
         return forgeTree(M, R, R, 14, /*Share=*/false);
       }, true},
      {"list40k", [](Machine &M, Region R) {
         return forgeList(M, R, R, 40'000);
       }, false}, // frontier width 1: no parallelism available, not gated
  };
  const int Reps = 3;
  bool GateCopy = Cores >= 4;
  for (const CopyHeap &H : Heaps) {
    NativeGcStats Serial, Par;
    double TS = copyBest(H, 1, Reps, Serial);
    double TP = copyBest(H, 4, Reps, Par);
    double Speedup = TP > 0 ? TS / TP : 0;
    std::printf("%10s %9llu %12.2f %12.2f %7.2fx %7llu %7llu\n", H.Name,
                (unsigned long long)Par.ObjectsCopied, TS * 1e3, TP * 1e3,
                Speedup, (unsigned long long)Par.Steals,
                (unsigned long long)Par.ChunksPublished);
    if (Par.ObjectsCopied != Serial.ObjectsCopied) {
      std::fprintf(stderr, "%s: live set differs across thread counts\n",
                   H.Name);
      Ok = false;
    }
    if (H.Gated && GateCopy)
      Ok = Ok && Speedup >= 2.0;
    std::string P = H.Name;
    Report.metric(P + "_objects", Par.ObjectsCopied);
    Report.metric(P + "_serial_ms", TS * 1e3);
    Report.metric(P + "_par4_ms", TP * 1e3);
    Report.metric(P + "_copy_speedup", Speedup);
    if (std::string_view(H.Name) == "tree17")
      Par.exportTo(Report.registry()); // gc.parallel.* from the widest heap
  }
  if (!GateCopy)
    std::printf("  (< 4 cores: the 2x gate is reported but not enforced)\n");

  // --- Part B -----------------------------------------------------------
  std::printf("\nB. certified-mutator sprint, sync check vs async capture\n");
  std::printf("%12s %8s %12s %12s %8s\n", "workload", "steps", "sync st/s",
              "async st/s", "speedup");
  const Workload Workloads[] = {
      {"e2-forward", LanguageLevel::Forward, 192},
      {"e4-gen", LanguageLevel::Generational, 192},
  };
  const uint64_t Window = 1200;
  for (const Workload &W : Workloads) {
    SprintResult Sync = syncSprint(W, Window);
    bool ExportAsync = std::string_view(W.Name) == "e4-gen";
    SprintResult Async =
        asyncSprint(W, Window, ExportAsync ? &Report : nullptr);
    if (!Sync.Ok || !Async.Ok)
      return 1;
    double Speedup =
        Sync.stepsPerSec() > 0 ? Async.stepsPerSec() / Sync.stepsPerSec() : 0;
    std::printf("%12s %8llu %12.3g %12.3g %7.1fx\n", W.Name,
                (unsigned long long)Async.Steps, Sync.stepsPerSec(),
                Async.stepsPerSec(), Speedup);
    Ok = Ok && Speedup >= 3.0 && Async.Steps == Sync.Steps;
    std::string P = W.Name;
    for (char &Ch : P)
      if (Ch == '-')
        Ch = '_';
    Report.metric(P + "_steps", Async.Steps);
    Report.metric(P + "_sync_steps_per_sec", Sync.stepsPerSec());
    Report.metric(P + "_async_steps_per_sec", Async.stepsPerSec());
    Report.metric(P + "_sprint_speedup", Speedup);
  }

  std::printf("\n");
  verdict(Ok, "parallel copy >= 2x at 4 threads (wide heaps) and async "
              "capture sprints >= 3x the sync incremental checker, verdicts "
              "agreeing");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
