//===- bench/e4_generational.cpp - E4: minor collections (§8, Fig 11) -----===//
//
// Paper claim (§8): the generational collector "does not copy to a new
// region but to an existing one and stops traversing the tree as soon as
// we encounter a reference to the old generation" — i.e. minor-collection
// work is proportional to the *young* live set, independent of how much
// old data the young objects point at.
//
// Workload: an old-generation list of length OLD, referenced by a young
// list of length YOUNG (the young head packs the old list as payload).
// Sweep OLD with YOUNG fixed: copied objects must stay constant.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

/// Forges: old list in Old (length OldN), young chain of pair cells in R
/// (length YoungN) whose tail references the old list.
ForgedHeap forgeMixed(Machine &M, Region R, Region Old, size_t YoungN,
                      size_t OldN) {
  GcContext &C = M.context();
  // Old list (lives in the old region; its region packages use witness
  // Old, so tracing must stop at its head).
  ForgedHeap OldList = forgeList(M, Old, Old, OldN);
  // Hold on: forgeList at the Generational level packages with bound
  // {R, Old}; rebuilt here with both regions equal to Old so the bound is
  // {Old} — construct with R := Old.
  // Young chain of pairs: node_i = (old-or-prev, i).
  const Tag *L = OldList.Tag;
  ForgedHeap H;
  H.Cells = OldList.Cells;
  const Value *Prev = OldList.Root;
  const Tag *PrevTag = L;
  for (size_t I = 0; I != YoungN; ++I) {
    const Value *Addr = M.allocate(
        R, C.valPair(Prev, C.valInt(static_cast<int64_t>(I))));
    ++H.Cells;
    Symbol RV = C.fresh("r");
    const Type *Body =
        C.typeProd(C.typeM({Region::var(RV), Old}, PrevTag),
                   C.typeM({Region::var(RV), Old}, C.tagInt()));
    Prev = C.valPackRegion(RV, RegionSet{R, Old}, R, Addr, Body);
    PrevTag = C.tagProd(PrevTag, C.tagInt());
  }
  H.Root = Prev;
  H.Tag = PrevTag;
  return H;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e4_generational");
  std::printf("E4: generational minor collections (Fig 11)\n");
  std::printf("claim: minor-GC work tracks the young live set and is "
              "independent of the old generation's size\n\n");
  std::printf("%8s %8s %14s %12s %10s\n", "young", "old", "old-cells-after",
              "promoted", "steps");

  bool Ok = true;
  const size_t YoungN = 8;
  size_t PromotedAtSmallest = 0;
  uint64_t StepsAtSmallest = 0;

  for (size_t OldN : {4, 16, 64, 256}) {
    Setup S(LanguageLevel::Generational);
    S.attachReport(Report); // pauses land in collect_pause_ns
    // Old data is forged directly into the old region: its packages carry
    // witness Old, so the collector's ifreg takes the old branch.
    ForgedHeap H = forgeMixed(*S.M, S.R, S.Old, YoungN, OldN);
    size_t OldBefore = S.M->memory().region(S.Old.sym())->Cells.size();
    if (!S.collectOnce(H))
      return 1;
    size_t OldAfter = S.M->memory().region(S.Old.sym())->Cells.size();
    size_t Promoted = OldAfter - OldBefore;
    uint64_t Steps = S.M->stats().Steps;
    std::printf("%8zu %8zu %14zu %12zu %10llu\n", YoungN, OldN, OldAfter,
                Promoted, (unsigned long long)Steps);
    if (OldN == 4) {
      PromotedAtSmallest = Promoted;
      StepsAtSmallest = Steps;
    }
    // Promotion count must not depend on the old generation's size, and
    // total machine work must stay within noise of the smallest case.
    Ok = Ok && Promoted == PromotedAtSmallest &&
         Steps < StepsAtSmallest + 200;
    if (OldN == 256) {
      Report.metric("young", uint64_t(YoungN));
      Report.metric("old_max", uint64_t(OldN));
      Report.metric("promoted", uint64_t(Promoted));
      Report.metric("steps", Steps);
    }
  }

  std::printf("\n");
  verdict(Ok, "promoted objects and collector work are independent of "
              "old-generation size (tracing stops at old references)");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
