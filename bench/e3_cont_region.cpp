//===- bench/e3_cont_region.cpp - E3: continuation-region bound (§6.1) ----===//
//
// Paper claim (§6.1): after CPS/closure conversion, the collector's
// implicit stack becomes continuation closures in a temporary region r3;
// "we can't allocate more than one continuation per copied object, so it
// is still algorithmically efficient, although this memory overhead is a
// considerable shortcoming".
//
// Measured: peak cells ever allocated in the continuation region during a
// certified basic collection, versus objects copied, for lists (deep
// recursion) and balanced trees (bushy recursion).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;

namespace {

/// Runs a collection while sampling the continuation region's allocation
/// counter (regions named "r3..." created by the collector).
struct ContSample {
  uint64_t PeakContAllocated = 0;
  size_t Copied = 0;
  bool Ok = false;
};

ContSample runSampled(Setup &S, const ForgedHeap &H) {
  ContSample Out;
  Address Fin = installFinisher(*S.M, H.Tag);
  const gc::Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
  S.M->start(E);
  while (S.M->status() == gc::Machine::Status::Running) {
    S.M->step();
    for (const auto &[Sym, R] : S.M->memory().Regions) {
      std::string_view Name = S.C->name(Sym);
      if (Name.substr(0, 2) == "r3")
        Out.PeakContAllocated =
            std::max(Out.PeakContAllocated, R.TotalAllocated);
    }
  }
  Out.Ok = S.M->status() == gc::Machine::Status::Halted;
  Out.Copied = S.M->memory().liveDataCells();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e3_cont_region");
  std::printf("E3: continuation-region cost of the CPS'd collector (§6.1)\n");
  std::printf("claim: continuation allocation is linear in copied objects "
              "(the paper says \"one per copied object\"; Fig 12's actual "
              "structure needs two per pair — copypair1 and copypair2 — so "
              "the measured bound is 2*copied + 1)\n\n");
  std::printf("%10s %8s %8s %8s %12s\n", "heap", "cells", "copied", "conts",
              "conts/copied");

  bool Ok = true;
  double MaxRatio = 0;
  auto Row = [&](const char *Name, size_t Cells, const ContSample &Cs) {
    double Ratio = double(Cs.PeakContAllocated) / double(Cs.Copied);
    std::printf("%10s %8zu %8zu %8llu %11.2f\n", Name, Cells, Cs.Copied,
                (unsigned long long)Cs.PeakContAllocated, Ratio);
    MaxRatio = std::max(MaxRatio, Ratio);
    // Two continuations per pair, one per existential, one for gcend.
    Ok = Ok && Cs.Ok && Cs.PeakContAllocated <= 2 * Cs.Copied + 1;
  };

  for (size_t N : {8, 32, 128}) {
    Setup S(LanguageLevel::Base);
    ForgedHeap H = forgeList(*S.M, S.R, S.Old, N);
    auto T0 = std::chrono::steady_clock::now();
    ContSample Cs = runSampled(S, H);
    Report.sample("collect_pause_ns", secondsSince(T0) * 1e9);
    Row("list", H.Cells, Cs);
  }
  for (unsigned D : {3, 5, 7}) {
    Setup S(LanguageLevel::Base);
    ForgedHeap H = forgeTree(*S.M, S.R, S.Old, D, /*Share=*/false);
    auto T0 = std::chrono::steady_clock::now();
    ContSample Cs = runSampled(S, H);
    Report.sample("collect_pause_ns", secondsSince(T0) * 1e9);
    Row("tree", H.Cells, Cs);
  }

  std::printf("\n");
  verdict(Ok, "continuation region holds at most 2*copied + 1 closures — "
              "linear in the to-region size, as §6.1 argues (its 'one per "
              "object' is optimistic by <=2x for pairs)");
  Report.metric("max_conts_per_copied", MaxRatio);
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
