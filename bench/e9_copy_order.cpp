//===- bench/e9_copy_order.cpp - E9: depth-first vs Cheney order (§10) ----===//
//
// The paper's §10 extension: "It might be possible to extend the current
// depth-first copying approach... but we are more interested in a
// Cheney-style breadth-first copy [2]." This ablation runs both orders at
// the native level over the same heaps and measures the classic trade-off
// the choice is about:
//
//  * auxiliary space: depth-first needs a stack (in the certified
//    collectors this is the continuation region, E3) proportional to the
//    heap *depth*; Cheney's queue is the to-space itself;
//  * locality: the average |child-offset − parent-offset| distance in the
//    resulting to-space (lists favor DFS = BFS; bushy trees differ).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/NativeCollector.h"
#include "gc/StateCheck.h"

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

/// Mean |child - parent| offset distance across all to-space edges.
double meanEdgeDistance(Machine &M, Region To) {
  const RegionData *R = M.memory().region(To.sym());
  if (!R)
    return 0;
  M.memory().decodeRegion(*R);
  uint64_t Sum = 0, Edges = 0;
  for (uint32_t Off = 0; Off != R->Cells.size(); ++Off) {
    AddressSet Children;
    if (R->Cells[Off])
      collectAddresses(R->Cells[Off], Children);
    for (Address A : Children) {
      if (A.R != To)
        continue;
      Sum += A.Offset > Off ? A.Offset - Off : Off - A.Offset;
      ++Edges;
    }
  }
  return Edges ? double(Sum) / double(Edges) : 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e9_copy_order");
  std::printf("E9: depth-first vs Cheney breadth-first copy (section 10 "
              "extension, native level)\n");
  std::printf("claim shape: both orders copy the same live set; they lay "
              "it out differently (edge-distance locality), and Cheney "
              "needs no auxiliary stack\n\n");
  std::printf("%10s %8s %10s %10s %12s %12s\n", "heap", "cells", "dfs-live",
              "bfs-live", "dfs-dist", "bfs-dist");

  bool Ok = true;
  auto RunBoth = [&](const char *Name, auto Forge) {
    size_t LiveD = 0, LiveB = 0, Cells = 0;
    double DistD = 0, DistB = 0;
    for (CopyOrder Order : {CopyOrder::DepthFirst, CopyOrder::BreadthFirst}) {
      GcContext C;
      Machine M(C, LanguageLevel::Base);
      Region R = M.createRegion("from", 0);
      ForgedHeap H = Forge(M, R);
      Cells = H.Cells;
      NativeGcStats Stats;
      auto T0 = std::chrono::steady_clock::now();
      auto [Root, To] = nativeCollect(M, H.Root, R, /*PreserveSharing=*/true,
                                      Stats, Order);
      Report.sample(Order == CopyOrder::DepthFirst ? "dfs_collect_ns"
                                                   : "bfs_collect_ns",
                    secondsSince(T0) * 1e9);
      (void)Root;
      if (Order == CopyOrder::DepthFirst) {
        LiveD = M.memory().liveDataCells();
        DistD = meanEdgeDistance(M, To);
      } else {
        LiveB = M.memory().liveDataCells();
        DistB = meanEdgeDistance(M, To);
      }
    }
    std::printf("%10s %8zu %10zu %10zu %12.2f %12.2f\n", Name, Cells, LiveD,
                LiveB, DistD, DistB);
    Ok = Ok && LiveD == LiveB && LiveD == Cells;
    if (std::string_view(Name) == "dag") {
      Report.metric("dag_cells", uint64_t(Cells));
      Report.metric("dfs_dist", DistD);
      Report.metric("bfs_dist", DistB);
    }
  };

  for (size_t N : {32, 256}) {
    RunBoth("list", [N](gc::Machine &M, Region R) {
      return forgeList(M, R, R, N);
    });
  }
  for (unsigned D : {6, 10}) {
    RunBoth("tree", [D](gc::Machine &M, Region R) {
      return forgeTree(M, R, R, D, /*Share=*/false);
    });
  }
  RunBoth("dag", [](gc::Machine &M, Region R) {
    return forgeTree(M, R, R, 10, /*Share=*/true);
  });

  std::printf("\n");
  verdict(Ok, "both copy orders preserve the live set exactly (sharing "
              "included); only the to-space layout differs");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
