//===- bench/e14_serve.cpp - E14: multi-session serving throughput --------===//
//
// certgc_serve's scaling claim: a manifest of independent pipeline sessions
// (ProgramGen programs across all three language levels) served over a
// frozen shared GcContext base scales with worker threads — sessions/sec at
// 4 workers >= 2.5x the 1-worker baseline on a box with >= 4 cores (the
// gate is reported but not enforced on smaller boxes), with *identical*
// per-session verdicts, halt values, and step counts at every worker count
// (that parity gate always holds, it is what makes the speedup claimable).
//
// Sessions are embarrassingly parallel by design — the point of the
// measurement is that the shared substrate (frozen base, symbol table,
// trace sink, metrics merging) does not serialize them in practice.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "serve/Serve.h"

#include <thread>

using namespace scav;
using namespace scav::bench;
using namespace scav::serve;

namespace {

/// The workload: a level × eval-mode sweep of generated programs, sized so
/// one session takes milliseconds (enough collections to matter, small
/// enough that a 1-worker sweep stays in bench-smoke budget).
Manifest makeManifest(size_t Sessions) {
  Manifest M;
  const LanguageLevel Levels[] = {LanguageLevel::Base, LanguageLevel::Forward,
                                  LanguageLevel::Generational};
  const EvalMode Modes[] = {EvalMode::Env, EvalMode::Vm};
  for (size_t I = 0; I != Sessions; ++I) {
    SessionSpec S;
    S.Level = Levels[I % 3];
    S.Eval = Modes[(I / 3) % 2];
    S.HasGenSeed = true;
    S.GenSeed = 1000 + I;
    S.Capacity = 64;
    // A light certification cadence so the checker is part of what scales.
    S.CheckEvery = 256;
    M.Sessions.push_back(S);
  }
  return M;
}

bool sameResults(const ServeReport &A, const ServeReport &B,
                 const char *Label) {
  if (A.Sessions.size() != B.Sessions.size())
    return false;
  bool Ok = true;
  for (size_t I = 0; I != A.Sessions.size(); ++I) {
    const SessionResult &X = A.Sessions[I];
    const SessionResult &Y = B.Sessions[I];
    if (X.Ok != Y.Ok || X.Value != Y.Value || X.Steps != Y.Steps) {
      std::fprintf(stderr,
                   "%s: session %zu diverged: ok %d/%d value %lld/%lld "
                   "steps %llu/%llu\n",
                   Label, I, X.Ok, Y.Ok, (long long)X.Value,
                   (long long)Y.Value, (unsigned long long)X.Steps,
                   (unsigned long long)Y.Steps);
      Ok = false;
    }
  }
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e14_serve");
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("E14: multi-session serving throughput (cores here: %u)\n",
              Cores);
  std::printf("claim: sessions/sec at 4 workers >= 2.5x 1 worker (gated on "
              ">= 4 cores);\nverdict/value/step parity across worker counts "
              "(always gated)\n\n");

  const size_t NumSessions = 24;
  Manifest M = makeManifest(NumSessions);
  Report.metric("sessions", uint64_t(NumSessions));

  bool Ok = true;
  double Base = 0;
  std::printf("%8s %9s %14s %14s %8s\n", "workers", "all-ok", "wall ms",
              "sessions/sec", "speedup");
  ServeReport Serial;
  for (unsigned W : {1u, 2u, 4u}) {
    ServeOptions Opts;
    Opts.Workers = W;
    ServeReport Rep = runSessions(M, Opts);
    double PerSec =
        Rep.WallSeconds > 0 ? NumSessions / Rep.WallSeconds : 0;
    if (W == 1) {
      Base = PerSec;
      Serial = std::move(Rep);
      // The parity reference also feeds the record's merged pause
      // histogram and aggregate counters.
      for (const auto &[K, H] : Serial.Aggregate.histograms())
        Report.registry().histogram(K, H.bounds()).mergeFrom(H);
      Report.metric("serial_steps",
                    uint64_t(Serial.Aggregate.counters().count(
                                 "machine.steps")
                                 ? Serial.Aggregate.counters().at(
                                       "machine.steps")
                                 : 0));
    } else {
      Ok = sameResults(Serial, Rep, "parity") && Ok;
    }
    double Speedup = Base > 0 ? PerSec / Base : 0;
    const ServeReport &R = W == 1 ? Serial : Rep;
    std::printf("%8u %9s %14.2f %14.1f %7.2fx\n", W,
                R.AllOk ? "yes" : "NO", R.WallSeconds * 1e3, PerSec,
                Speedup);
    Ok = Ok && R.AllOk;
    std::string P = "w" + std::to_string(W);
    Report.metric(P + "_wall_seconds", R.WallSeconds);
    Report.metric(P + "_sessions_per_sec", PerSec);
    if (W == 4) {
      Report.metric("scaling_4v1_speedup", Speedup);
      if (Cores >= 4)
        Ok = Ok && Speedup >= 2.5;
      else
        std::printf("  (< 4 cores: the 2.5x gate is reported but not "
                    "enforced)\n");
    }
  }

  Report.pass(Ok);
  verdict(Ok, "serving scales with workers, session results unchanged");
  if (!Report.write(JsonPath))
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  return Ok ? 0 : 1;
}
