//===- bench/e11_steprate.cpp - E11: env vs subst machine step rate -------===//
//
// The λGC machine of Fig 5 is specified with whole-term substitution: every
// App/Let/open step rewrites the entire continuation. E11 measures what the
// environment machine (MachineConfig::EvalMode::Env, the default since this
// experiment landed) buys over that paper-verbatim strategy on the heavy
// certified-collection workloads of E2 (forwarding), E4 (generational), and
// E8 (basic level over random heaps):
//
//   * steps/second in both modes (the headline: Env must be ≥5× on the
//     forwarding and generational workloads);
//   * peak term-arena bytes — Subst mode materializes a fresh continuation
//     per step; Env mode allocates only at use sites and force boundaries.
//
// Both modes execute the same collections; the differential test
// (tests/gc_machine_env_diff_test) separately asserts they agree step for
// step, so this binary only measures.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Trace.h"

using namespace scav;
using namespace scav::bench;

namespace {

struct Workload {
  const char *Name;      ///< Label + JSON key prefix.
  LanguageLevel Level;
  size_t Size;           ///< List length / node budget.
  bool Random;           ///< forgeRandom instead of forgeList.
  bool MustSpeedUp;      ///< Part of the ≥5× acceptance claim.
};

struct ModeResult {
  bool Ok = true;
  uint64_t Steps = 0;
  double Seconds = 0;
  size_t ArenaPeak = 0; ///< bytesReserved is monotone, so final == peak.
  std::vector<double> CollectNs; ///< Per-repetition collection wall time.

  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
};

ModeResult runWorkload(const Workload &W, EvalMode Mode, int Reps) {
  ModeResult Out;
  for (int I = 0; I != Reps; ++I) {
    MachineConfig Cfg;
    Cfg.Eval = Mode;
    // Raw step-rate measurement: Ψ maintenance costs the same in both modes
    // and would only dilute the strategy difference being measured.
    Cfg.TrackTypes = false;
    Setup S(W.Level, Cfg);
    ForgedHeap H;
    if (W.Random) {
      Rng Rand(0xE11 + I);
      H = forgeRandom(*S.M, S.R, S.Old, Rand, W.Size);
    } else {
      H = forgeList(*S.M, S.R, S.Old, W.Size);
    }
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, S.R, S.Old, Fin);
    S.M->start(E);
    auto T0 = std::chrono::steady_clock::now();
    S.M->run(50'000'000);
    double RepSec = secondsSince(T0);
    Out.Seconds += RepSec;
    Out.CollectNs.push_back(RepSec * 1e9);
    if (S.M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "%s (%s): collection failed: %s\n", W.Name,
                   evalModeName(Mode), S.M->stuckReason().c_str());
      Out.Ok = false;
      return Out;
    }
    Out.Steps += S.M->stats().Steps;
    size_t Bytes = S.C->arena().bytesReserved();
    if (Bytes > Out.ArenaPeak)
      Out.ArenaPeak = Bytes;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e11_steprate");
  Report.evalMode("both");
  std::printf("E11: environment machine vs Fig 5 whole-term substitution\n");
  std::printf("claim: resolving variables through a persistent environment "
              "beats per-step\nsubstitution by >=5x steps/sec on the E2/E4 "
              "collector workloads, with a\nsmaller term arena\n\n");
  std::printf("%12s %10s %12s %12s %8s %10s %10s\n", "workload", "steps",
              "env st/s", "subst st/s", "speedup", "env-arena",
              "subst-arena");

  const Workload Workloads[] = {
      {"e2-forward", LanguageLevel::Forward, 192, false, true},
      {"e4-gen", LanguageLevel::Generational, 192, false, true},
      {"e8-base", LanguageLevel::Base, 160, true, false},
  };
  // Per-workload repetitions: enough wall time for a stable rate without
  // making the Subst baseline take minutes.
  const int Reps = 12;

  bool Ok = true;
  for (const Workload &W : Workloads) {
    ModeResult Env = runWorkload(W, EvalMode::Env, Reps);
    ModeResult Sub = runWorkload(W, EvalMode::Subst, Reps);
    if (!Env.Ok || !Sub.Ok)
      return 1;
    if (Env.Steps != Sub.Steps) {
      std::fprintf(stderr, "%s: modes disagree on step count (%llu vs %llu)\n",
                   W.Name, (unsigned long long)Env.Steps,
                   (unsigned long long)Sub.Steps);
      return 1;
    }
    double Speedup =
        Sub.stepsPerSec() > 0 ? Env.stepsPerSec() / Sub.stepsPerSec() : 0;
    std::printf("%12s %10llu %12.3g %12.3g %7.1fx %9zuK %9zuK\n", W.Name,
                (unsigned long long)Env.Steps, Env.stepsPerSec(),
                Sub.stepsPerSec(), Speedup, Env.ArenaPeak / 1024,
                Sub.ArenaPeak / 1024);
    if (W.MustSpeedUp)
      Ok = Ok && Speedup >= 5.0;
    Ok = Ok && Env.ArenaPeak <= Sub.ArenaPeak;
    for (double Ns : Env.CollectNs)
      Report.sample("env_collect_ns", Ns);
    for (double Ns : Sub.CollectNs)
      Report.sample("subst_collect_ns", Ns);

    std::string P = W.Name;
    for (char &Ch : P)
      if (Ch == '-')
        Ch = '_';
    Report.metric(P + "_steps", Env.Steps);
    Report.metric(P + "_env_steps_per_sec", Env.stepsPerSec());
    Report.metric(P + "_subst_steps_per_sec", Sub.stepsPerSec());
    Report.metric(P + "_speedup", Speedup);
    Report.metric(P + "_env_arena_peak_bytes", uint64_t(Env.ArenaPeak));
    Report.metric(P + "_subst_arena_peak_bytes", uint64_t(Sub.ArenaPeak));
  }

#if SCAV_TRACE_COMPILED_IN
  // Tracing overhead (informational): the same E2 workload with the ring
  // sink actively recording vs with tracing compiled in but disabled (the
  // default state every number above was measured in). The compiled-OUT
  // cost is a build-level property; CI compares this binary's steps/sec
  // against an SCAV_TRACE_OFF build (see .github/workflows/ci.yml).
  {
    const Workload &W = Workloads[0];
    ModeResult Base = runWorkload(W, EvalMode::Env, Reps / 2);
    support::TraceSink::get().enable();
    ModeResult Traced = runWorkload(W, EvalMode::Env, Reps / 2);
    support::TraceSink::get().disable();
    if (Base.Ok && Traced.Ok && Base.stepsPerSec() > 0) {
      double Relative = Traced.stepsPerSec() / Base.stepsPerSec();
      std::printf("\ntracing enabled (ring sink recording): %.3g st/s vs "
                  "%.3g disabled (%.0f%% of disabled rate)\n",
                  Traced.stepsPerSec(), Base.stepsPerSec(), Relative * 100);
      Report.metric("trace_disabled_steps_per_sec", Base.stepsPerSec());
      Report.metric("trace_enabled_steps_per_sec", Traced.stepsPerSec());
      Report.metric("trace_enabled_relative_rate", Relative);
    }
  }
#endif

  std::printf("\n");
  verdict(Ok, "env mode: >=5x steps/sec over substitution on the E2/E4 "
              "collector workloads, with no larger a term arena");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
