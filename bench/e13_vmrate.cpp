//===- bench/e13_vmrate.cpp - E13: bytecode VM vs env machine step rate ---===//
//
// E11 showed that resolving variables through a persistent environment beats
// the paper-verbatim whole-term substitution by an order of magnitude. E13
// measures the next lowering: compiling λGC to flat bytecode (src/vm/) where
// CPS continuations are jump targets, environment slots are frame indices
// resolved at compile time, and operands are classified once instead of
// being closed per step. The claim: the VM dispatch loop is ≥10× the env
// machine's steps/sec on the heavy certified-collection workloads of E2
// (forwarding) and E4 (generational).
//
// Both engines execute identical step sequences; this binary re-asserts the
// step-count equality (the differential test gc_machine_vm_diff_test checks
// full semantic agreement separately) and only measures rates. Lowering
// time is reported separately — it is a one-time cost per code value,
// amortized across every later call.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;

namespace {

struct Workload {
  const char *Name; ///< Label + JSON key prefix.
  LanguageLevel Level;
  size_t Size;      ///< List length.
  bool MustSpeedUp; ///< Part of the ≥10× acceptance claim.
};

struct ModeResult {
  bool Ok = true;
  uint64_t Steps = 0;
  double Seconds = 0;
  uint64_t LowerNs = 0;  ///< vm only: total compile time.
  uint64_t Chunks = 0;   ///< vm only: chunks compiled.

  double stepsPerSec() const { return Seconds > 0 ? Steps / Seconds : 0; }
};

ModeResult runWorkload(const Workload &W, EvalMode Mode, int Reps) {
  ModeResult Out;
  for (int I = 0; I != Reps; ++I) {
    MachineConfig Cfg;
    Cfg.Eval = Mode;
    // Raw step-rate measurement: Ψ maintenance costs the same in both modes
    // and would only dilute the dispatch-strategy difference.
    Cfg.TrackTypes = false;
    Setup S(W.Level, Cfg);

    // Untimed warm-up collection over a small heap in scratch regions. For
    // the VM this compiles every collector chunk (lowering is a one-time
    // cost per code value, reported in the lower-us column); for both modes
    // it pulls the hot paths into cache, so the timed window below measures
    // steady-state dispatch.
    {
      Region WR = S.M->createRegion("warm-from", 0);
      Region WOld = W.Level == LanguageLevel::Generational
                        ? S.M->createRegion("warm-old", 0)
                        : WR;
      ForgedHeap WH = forgeList(*S.M, WR, WOld, 8);
      Address WFin = installFinisher(*S.M, WH.Tag);
      S.M->start(collectOnceTerm(*S.M, S.GcAddr, WH, WR, WOld, WFin));
      S.M->run(50'000'000);
      if (S.M->status() != Machine::Status::Halted) {
        std::fprintf(stderr, "%s (%s): warm-up collection failed: %s\n",
                     W.Name, evalModeName(Mode), S.M->stuckReason().c_str());
        Out.Ok = false;
        return Out;
      }
    }

    // Fresh regions: the warm-up's `only` reclaimed the Setup's defaults.
    Region R = S.M->createRegion("from", 0);
    Region Old = W.Level == LanguageLevel::Generational
                     ? S.M->createRegion("old", 0)
                     : R;
    ForgedHeap H = forgeList(*S.M, R, Old, W.Size);
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, R, Old, Fin);
    uint64_t Pre = S.M->stats().Steps; // start() does not reset stats
    S.M->start(E);
    auto T0 = std::chrono::steady_clock::now();
    S.M->run(50'000'000);
    Out.Seconds += secondsSince(T0);
    if (S.M->status() != Machine::Status::Halted) {
      std::fprintf(stderr, "%s (%s): collection failed: %s\n", W.Name,
                   evalModeName(Mode), S.M->stuckReason().c_str());
      Out.Ok = false;
      return Out;
    }
    Out.Steps += S.M->stats().Steps - Pre;
    if (S.Vm) {
      Out.LowerNs += S.Vm->lowerNs();
      Out.Chunks += S.Vm->chunksCompiled();
    }
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  JsonReport Report("e13_vmrate");
  Report.evalMode("both");
  std::printf("E13: flat bytecode VM vs environment machine\n");
  std::printf("claim: lowering lambda-GC to bytecode (jump-target "
              "continuations, frame-index\nslots, precompiled operands) "
              "beats the env machine by >=10x steps/sec on the\nE2/E4 "
              "collector workloads\n\n");
  std::printf("%12s %10s %12s %12s %8s %10s %7s\n", "workload", "steps",
              "env st/s", "vm st/s", "speedup", "lower-us", "chunks");

  const Workload Workloads[] = {
      {"e2-forward", LanguageLevel::Forward, 192, true},
      {"e4-gen", LanguageLevel::Generational, 192, true},
  };
  // Enough repetitions for a stable rate; each rep is one full certified
  // collection over a fresh 192-cell list heap.
  const int Reps = 12;

  bool Ok = true;
  for (const Workload &W : Workloads) {
    ModeResult Env = runWorkload(W, EvalMode::Env, Reps);
    ModeResult Vm = runWorkload(W, EvalMode::Vm, Reps);
    if (!Env.Ok || !Vm.Ok)
      return 1;
    if (Env.Steps != Vm.Steps) {
      std::fprintf(stderr, "%s: modes disagree on step count (%llu vs %llu)\n",
                   W.Name, (unsigned long long)Env.Steps,
                   (unsigned long long)Vm.Steps);
      return 1;
    }
    double Speedup =
        Env.stepsPerSec() > 0 ? Vm.stepsPerSec() / Env.stepsPerSec() : 0;
    std::printf("%12s %10llu %12.3g %12.3g %7.1fx %10.1f %7llu\n", W.Name,
                (unsigned long long)Env.Steps, Env.stepsPerSec(),
                Vm.stepsPerSec(), Speedup, Vm.LowerNs / 1e3,
                (unsigned long long)Vm.Chunks);
    if (W.MustSpeedUp)
      Ok = Ok && Speedup >= 10.0;

    std::string P = W.Name;
    for (char &Ch : P)
      if (Ch == '-')
        Ch = '_';
    Report.metric(P + "_steps", Env.Steps);
    Report.metric(P + "_env_steps_per_sec", Env.stepsPerSec());
    Report.metric(P + "_vm_steps_per_sec", Vm.stepsPerSec());
    Report.metric(P + "_speedup", Speedup);
    Report.metric(P + "_vm_lower_ns", Vm.LowerNs);
    Report.metric(P + "_vm_chunks", Vm.Chunks);
  }

  std::printf("\n");
  verdict(Ok, "bytecode VM: >=10x steps/sec over the env machine on the "
              "E2/E4 collector workloads");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
