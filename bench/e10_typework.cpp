//===- bench/e10_typework.cpp - E10: interning & memoization payoff -------===//
//
// Not a paper claim but an implementation ablation: the certified
// collectors re-check Ψ-related typing facts constantly (every `put`
// infers a cell type; every state check normalizes and compares types),
// and collector-rebuilt types are structurally identical across cells.
// Hash-consing makes that sharing physical: normalization memoizes by
// node pointer, equality short-circuits on pointer identity, substitution
// skips ground subtrees, and `recordPut` caches inferred cell types by
// value pointer.
//
// Measured: combined normalize + equal + infer wall time (the
// GcContext::Stats depth-guarded typework timer) for one certified
// collection on the E2 (forwarding, shared DAG + list) and E4
// (generational, young-over-old) workloads, with the whole machinery ON
// vs OFF (GcContext(false), the SCAV_DISABLE_INTERN baseline). Claim
// shape: >= 2x reduction on both workloads.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace scav;
using namespace scav::bench;
using namespace scav::gc;

namespace {

/// E4's mixed heap: an old-generation list referenced by a young chain of
/// pair cells (see e4_generational.cpp).
ForgedHeap forgeMixed(Machine &M, Region R, Region Old, size_t YoungN,
                      size_t OldN) {
  GcContext &C = M.context();
  ForgedHeap OldList = forgeList(M, Old, Old, OldN);
  const Tag *L = OldList.Tag;
  ForgedHeap H;
  H.Cells = OldList.Cells;
  const Value *Prev = OldList.Root;
  const Tag *PrevTag = L;
  for (size_t I = 0; I != YoungN; ++I) {
    const Value *Addr =
        M.allocate(R, C.valPair(Prev, C.valInt(static_cast<int64_t>(I))));
    ++H.Cells;
    Symbol RV = C.fresh("r");
    const Type *Body =
        C.typeProd(C.typeM({Region::var(RV), Old}, PrevTag),
                   C.typeM({Region::var(RV), Old}, C.tagInt()));
    Prev = C.valPackRegion(RV, RegionSet{R, Old}, R, Addr, Body);
    PrevTag = C.tagProd(PrevTag, C.tagInt());
  }
  H.Root = Prev;
  H.Tag = PrevTag;
  return H;
}

struct RunResult {
  bool Ok = false;
  double TypeworkSec = 0;
  double WallSec = 0;
  GcContext::Stats Counters;
  uint64_t RecordPutHits = 0;
  std::vector<double> CyclePauseNs; ///< Per-cycle collection wall time.
};

/// Two certified collection cycles with Ψ tracking on — allocate, churn,
/// collect, repeat. Steady state matters: across cycles the collectors
/// rebuild structurally identical types (and the generational old region's
/// types persist verbatim), which is exactly what the caches exploit.
/// Returns the combined typework time.
RunResult runWorkload(LanguageLevel Level, bool Intern) {
  RunResult Out;
  Setup S(Level, MachineConfig{}, Intern);
  S.C->stats().TimingEnabled = true;
  auto T0 = std::chrono::steady_clock::now();
  Out.Ok = true;
  for (int Cycle = 0; Cycle != 4 && Out.Ok; ++Cycle) {
    Region From = Cycle == 0 ? S.R : S.M->createRegion("from", 0);
    Region Old = Level == LanguageLevel::Generational ? S.Old : From;
    ForgedHeap H = Level == LanguageLevel::Generational
                       ? forgeMixed(*S.M, From, Old, /*YoungN=*/24,
                                    /*OldN=*/Cycle == 0 ? 48 : 8)
                       : forgeList(*S.M, From, From, 48);
    // Mutator churn: the heap root stored repeatedly — the write-barrier /
    // remembered-set pattern (the same value recorded once per mutation).
    // Ψ tracking infers a cell type per put; the recordPut cache serves
    // the repeats by value pointer, where the baseline re-infers the
    // root's (large) type every time. The churn cells are unreachable, so
    // the collection itself is unaffected.
    for (int I = 0; I != 256; ++I)
      S.M->allocate(From, H.Root);
    Address Fin = installFinisher(*S.M, H.Tag);
    const Term *E = collectOnceTerm(*S.M, S.GcAddr, H, From, Old, Fin);
    S.M->start(E);
    auto C0 = std::chrono::steady_clock::now();
    S.M->run(50'000'000);
    Out.CyclePauseNs.push_back(secondsSince(C0) * 1e9);
    Out.Ok = S.M->status() == Machine::Status::Halted;
    if (!Out.Ok)
      std::fprintf(stderr, "collection failed: %s\n",
                   S.M->stuckReason().c_str());
  }
  Out.WallSec = secondsSince(T0);
  Out.TypeworkSec = S.C->stats().TypeworkSeconds;
  Out.Counters = S.C->stats();
  Out.RecordPutHits = S.M->stats().RecordPutCacheHits;
  return Out;
}

void printCounters(const char *Label, const RunResult &R) {
  const GcContext::Stats &S = R.Counters;
  std::printf("  %s counters: intern-hits tag=%llu type=%llu | "
              "normalize memo-hits tag=%llu type=%llu normal-bit=%llu | "
              "equal ptr-hits=%llu | subst ground-skips=%llu | "
              "recordPut cache-hits=%llu\n",
              Label, (unsigned long long)S.TagInternHits,
              (unsigned long long)S.TypeInternHits,
              (unsigned long long)S.NormalizeTagMemoHits,
              (unsigned long long)S.NormalizeTypeMemoHits,
              (unsigned long long)(S.NormalizeTagNormalBitHits +
                                   S.NormalizeTypeNormalBitHits),
              (unsigned long long)S.EqualPointerHits,
              (unsigned long long)S.SubstGroundSkips,
              (unsigned long long)R.RecordPutHits);
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = consumeJsonArg(argc, argv);
  if (JsonPath.empty())
    JsonPath = "BENCH_e10.json"; // e10 always leaves a record
  JsonReport Report("e10_typework");

  std::printf("E10: interning & memoization payoff on certified "
              "collections\n");
  std::printf("claim: hash-consing + normalize memo + recordPut cache cut "
              "combined normalize/equal/infer time >=2x on the E2 and E4 "
              "workloads\n\n");
  std::printf("%14s %12s %12s %8s\n", "workload", "typework-off",
              "typework-on", "speedup");

  bool Ok = true;
  struct Case {
    const char *Name;
    LanguageLevel Level;
    const char *JsonKey;
  } Cases[] = {
      {"e2-forwarding", LanguageLevel::Forward, "e2_speedup"},
      {"e4-generational", LanguageLevel::Generational, "e4_speedup"},
  };

  for (const Case &Cs : Cases) {
    RunResult Off = runWorkload(Cs.Level, /*Intern=*/false);
    RunResult On = runWorkload(Cs.Level, /*Intern=*/true);
    if (!Off.Ok || !On.Ok)
      return 1;
    for (double Ns : Off.CyclePauseNs)
      Report.sample("collect_pause_off_ns", Ns);
    for (double Ns : On.CyclePauseNs)
      Report.sample("collect_pause_on_ns", Ns);
    double Speedup = On.TypeworkSec > 0 ? Off.TypeworkSec / On.TypeworkSec
                                        : 0;
    std::printf("%14s %11.3fs %11.3fs %7.2fx\n", Cs.Name, Off.TypeworkSec,
                On.TypeworkSec, Speedup);
    printCounters("off", Off);
    printCounters("on ", On);
    // The optimized run must actually exercise the machinery...
    Ok = Ok && On.Counters.TagInternHits > 0 &&
         On.Counters.TypeInternHits > 0 &&
         On.Counters.NormalizeTagMemoHits + On.Counters.NormalizeTypeMemoHits >
             0 &&
         On.RecordPutHits > 0;
    // ...and the baseline must not (honest off switch).
    Ok = Ok && Off.Counters.TagInternHits == 0 && Off.RecordPutHits == 0;
    Ok = Ok && Speedup >= 2.0;
    Report.metric(Cs.JsonKey, Speedup);
    Report.metric(std::string(Cs.JsonKey, 2) + "_typework_off_sec",
                  Off.TypeworkSec);
    Report.metric(std::string(Cs.JsonKey, 2) + "_typework_on_sec",
                  On.TypeworkSec);
    if (Cs.Level == LanguageLevel::Forward) {
      Report.metric("e2_tag_intern_hits", On.Counters.TagInternHits);
      Report.metric("e2_type_intern_hits", On.Counters.TypeInternHits);
      Report.metric("e2_normalize_memo_hits",
                    On.Counters.NormalizeTagMemoHits +
                        On.Counters.NormalizeTypeMemoHits);
      Report.metric("e2_equal_pointer_hits", On.Counters.EqualPointerHits);
      Report.metric("e2_recordput_cache_hits", On.RecordPutHits);
    }
  }

  std::printf("\n");
  verdict(Ok, "interning + memoization give >=2x less typework on both "
              "workloads, with all three cache families hitting");
  Report.pass(Ok);
  Report.write(JsonPath);
  return Ok ? 0 : 1;
}
