//===- bench/e5_only_cost.cpp - E5: `only` deallocation cost (§4.1/§6.4) --===//
//
// Paper claim: "Deallocation of a region is implicit since only lists the
// regions that should be kept... at the cost of a more expensive
// deallocation operation (only needs to go through the list of all
// regions)... Since this number is usually small, it entails an
// insignificant runtime penalty."
//
// Measured with google-benchmark: the cost of an `only` machine step as a
// function of (a) the number of regions and (b) the number of cells per
// region. The claim's shape: linear in the region count, independent of
// cell count (reclamation drops whole regions without touching cells —
// modulo allocator free costs).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gc/Builder.h"
#include "gc/Machine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace scav;
using namespace scav::gc;

namespace {

void BM_OnlyByRegionCount(benchmark::State &State) {
  int64_t NumRegions = State.range(0);
  for (auto _ : State) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    RegionSet Keep;
    for (int64_t I = 0; I != NumRegions; ++I) {
      Region R = M.createRegion("r", 0);
      if (I == 0)
        Keep.insert(R);
      M.memory().put(R.sym(), C.valInt(7));
    }
    const Term *E = C.termOnly(Keep, C.termHalt(C.valInt(0)));
    M.start(E);
    auto T0 = std::chrono::steady_clock::now();
    M.step(); // the only-step under measurement
    State.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count());
    benchmark::DoNotOptimize(M.memory().numRegions());
  }
  State.SetComplexityN(NumRegions);
}

void BM_OnlyByCellCount(benchmark::State &State) {
  int64_t CellsPerRegion = State.range(0);
  for (auto _ : State) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    RegionSet Keep;
    for (int64_t I = 0; I != 8; ++I) {
      Region R = M.createRegion("r", 0);
      if (I == 0)
        Keep.insert(R);
      for (int64_t J = 0; J != CellsPerRegion; ++J)
        M.memory().put(R.sym(), C.valInt(J));
    }
    const Term *E = C.termOnly(Keep, C.termHalt(C.valInt(0)));
    M.start(E);
    auto T0 = std::chrono::steady_clock::now();
    M.step();
    State.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count());
    benchmark::DoNotOptimize(M.memory().numRegions());
  }
  State.SetComplexityN(CellsPerRegion);
}

// Fixed iteration counts: the timed section is tiny (one machine step)
// while per-iteration setup is not, so letting the library run to its
// default min-time would take minutes.
BENCHMARK(BM_OnlyByRegionCount)->RangeMultiplier(4)->Range(4, 1024)
    ->UseManualTime()->Iterations(300)->Complexity(benchmark::oN);
BENCHMARK(BM_OnlyByCellCount)->RangeMultiplier(4)->Range(16, 4096)
    ->UseManualTime()->Iterations(300);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): strip `--json <path>` before the
// benchmark library parses argv (detailed series come from the library's
// own --benchmark_format=json; our record marks a completed run).
int main(int argc, char **argv) {
  std::string JsonPath = scav::bench::consumeJsonArg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  size_t Ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  scav::bench::JsonReport Report("e5_only_cost");
  Report.metric("benchmarks_ran", static_cast<uint64_t>(Ran));
  // Distribution for the shared record (the library's own --benchmark_*
  // output has the full series): 64 only-steps over an 8-region heap.
  for (int I = 0; I != 64; ++I) {
    GcContext C;
    Machine M(C, LanguageLevel::Base);
    RegionSet Keep;
    for (int J = 0; J != 8; ++J) {
      Region R = M.createRegion("r", 0);
      if (J == 0)
        Keep.insert(R);
      M.memory().put(R.sym(), C.valInt(7));
    }
    M.start(C.termOnly(Keep, C.termHalt(C.valInt(0))));
    auto T0 = std::chrono::steady_clock::now();
    M.step();
    Report.sample("only_step_ns",
                  std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
  }
  Report.pass(Ran > 0);
  Report.write(JsonPath);
  return Ran > 0 ? 0 : 1;
}
