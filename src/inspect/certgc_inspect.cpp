//===- inspect/certgc_inspect.cpp - Post-mortem bundle inspector -----------===//
//
// Offline inspector for dump bundles and raw snapshots (DESIGN.md §3.14):
//
//   certgc_inspect BUNDLE-DIR-OR-SNAPSHOT [command]
//     (no command)        print the snapshot summary header + region table
//     --regions           region table only
//     --cells REGION      print every cell of REGION (decoded values)
//     --psi REGION        print every Ψ entry of REGION
//     --verdict           re-run both state checkers offline under the
//                         recorded options and compare against the
//                         recorded live diagnostic; exit 0 iff the
//                         matching checker reproduces it byte-for-byte
//     --diff OTHER        structural diff against a second bundle/snapshot
//                         (exit 0 when equal, 1 when different)
//     --layout compact|legacy
//                         load under this heap layout instead of the
//                         recorded one (cells re-encode on load; a diff
//                         across layouts of the same state is empty)
//
// A BUNDLE argument may be a dump-bundle directory (harness/Dump.h) — the
// snapshot is read from <dir>/snapshot.scavsnap — or a .scavsnap path.
//
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"
#include "gc/Snapshot.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

using namespace scav;
using namespace scav::gc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: certgc_inspect BUNDLE [--regions | --cells REGION |"
               " --psi REGION | --verdict | --diff OTHER]"
               " [--layout compact|legacy]\n");
  return 2;
}

/// A bundle directory resolves to its snapshot file; anything else is
/// treated as a snapshot path directly.
std::string resolveSnapshotPath(const std::string &Arg) {
  std::error_code EC;
  if (std::filesystem::is_directory(Arg, EC))
    return (std::filesystem::path(Arg) / "snapshot.scavsnap").string();
  return Arg;
}

std::unique_ptr<Snapshot> load(const std::string &Arg,
                               std::optional<HeapLayout> Layout) {
  std::string Error;
  std::unique_ptr<Snapshot> S =
      loadSnapshot(resolveSnapshotPath(Arg), Error, Layout);
  if (!S)
    std::fprintf(stderr, "certgc_inspect: %s: %s\n", Arg.c_str(),
                 Error.c_str());
  return S;
}

Symbol findRegion(const Snapshot &S, const std::string &Name) {
  for (const auto &KV : S.Mem->Regions)
    if (S.Ctx->name(KV.first) == Name)
      return KV.first;
  for (const auto &KV : S.Psi.Regions)
    if (S.Ctx->name(KV.first) == Name)
      return KV.first;
  return Symbol();
}

int printCells(const Snapshot &S, const std::string &RegionName) {
  Symbol Sym = findRegion(S, RegionName);
  if (!Sym.isValid() || !S.Mem->hasRegion(Sym)) {
    std::fprintf(stderr, "certgc_inspect: no region named '%s'\n",
                 RegionName.c_str());
    return 2;
  }
  const RegionData &RD = *S.Mem->region(Sym);
  for (size_t Off = 0; Off != RD.Cells.size(); ++Off) {
    Address A{Region::name(Sym), static_cast<uint32_t>(Off)};
    const Value *V = S.Mem->get(A);
    std::printf("%s.%zu: %s\n", RegionName.c_str(), Off,
                V ? printValue(*S.Ctx, V).c_str() : "<null>");
  }
  return 0;
}

int printPsi(const Snapshot &S, const std::string &RegionName) {
  Symbol Sym = findRegion(S, RegionName);
  const RegionType *PT = Sym.isValid() ? S.Psi.region(Sym) : nullptr;
  if (!PT) {
    std::fprintf(stderr, "certgc_inspect: no Psi region named '%s'\n",
                 RegionName.c_str());
    return 2;
  }
  for (size_t Off = 0; Off != PT->Cells.size(); ++Off)
    std::printf("%s.%zu: %s\n", RegionName.c_str(), Off,
                PT->Cells[Off] ? printType(*S.Ctx, PT->Cells[Off]).c_str()
                               : "<null>");
  return 0;
}

/// Re-runs both checkers offline and compares against the recorded
/// verdict. The bundle records which checker produced the live diagnostic
/// (full vs incremental — their texts may legitimately differ); byte
/// equality is demanded of that one.
int verdict(Snapshot &S) {
  StateCheckResult Full = recheckSnapshot(S);
  StateCheckResult Inc = recheckSnapshotIncremental(S);
  std::printf("recorded:    [%s] %s\n",
              S.Meta.Checker.empty() ? "none" : S.Meta.Checker.c_str(),
              S.Meta.Diagnostic.empty() ? "<accept>"
                                        : S.Meta.Diagnostic.c_str());
  std::printf("full:        %s\n", Full.Ok ? "<accept>" : Full.Error.c_str());
  std::printf("incremental: %s\n", Inc.Ok ? "<accept>" : Inc.Error.c_str());

  if (S.Meta.Checker.empty()) {
    // No checker produced the recorded diagnostic (stuck/stall/manual
    // dumps record the stuck or stall reason instead): the live run's
    // checkers never rejected this state, so offline reproduction means
    // both still accept it.
    bool Match = Full.Ok && Inc.Ok;
    std::printf("verdict: %s\n", Match ? "REPRODUCED" : "MISMATCH");
    return Match ? 0 : 1;
  }
  const StateCheckResult &Matching =
      S.Meta.Checker == "incremental" ? Inc : Full;
  bool Match = !Matching.Ok && Matching.Error == S.Meta.Diagnostic;
  std::printf("verdict: %s\n", Match ? "REPRODUCED" : "MISMATCH");
  return Match ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Bundle, CellsRegion, PsiRegion, DiffOther;
  bool Regions = false, Verdict = false;
  std::optional<HeapLayout> Layout;

  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    auto NextArg = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--regions") {
      Regions = true;
    } else if (A == "--cells") {
      const char *R = NextArg();
      if (!R)
        return usage();
      CellsRegion = R;
    } else if (A == "--psi") {
      const char *R = NextArg();
      if (!R)
        return usage();
      PsiRegion = R;
    } else if (A == "--verdict") {
      Verdict = true;
    } else if (A == "--diff") {
      const char *O = NextArg();
      if (!O)
        return usage();
      DiffOther = O;
    } else if (A == "--layout") {
      const char *L = NextArg();
      if (!L)
        return usage();
      if (std::strcmp(L, "compact") == 0)
        Layout = HeapLayout::Compact;
      else if (std::strcmp(L, "legacy") == 0)
        Layout = HeapLayout::Legacy;
      else
        return usage();
    } else if (!A.empty() && A.front() == '-') {
      return usage();
    } else if (Bundle.empty()) {
      Bundle = A;
    } else {
      return usage();
    }
  }
  if (Bundle.empty())
    return usage();

  std::unique_ptr<Snapshot> S = load(Bundle, Layout);
  if (!S)
    return 2;

  if (!DiffOther.empty()) {
    std::unique_ptr<Snapshot> O = load(DiffOther, Layout);
    if (!O)
      return 2;
    std::string D = diffSnapshots(*S, *O);
    if (D.empty()) {
      std::printf("snapshots are equal\n");
      return 0;
    }
    std::fputs(D.c_str(), stdout);
    return 1;
  }
  if (Verdict)
    return verdict(*S);
  if (!CellsRegion.empty())
    return printCells(*S, CellsRegion);
  if (!PsiRegion.empty())
    return printPsi(*S, PsiRegion);

  // Default and --regions: the summary (header + region table).
  std::fputs(describeSnapshot(*S).c_str(), stdout);
  (void)Regions;
  return 0;
}
