//===- support/Trace.h - Structured tracing with Perfetto export -*- C++ -*-===//
///
/// \file
/// Low-overhead structured tracing for the whole stack (DESIGN.md §3.9).
///
/// Three event primitives, modelled on the Chrome/Perfetto trace-event
/// format so a capture opens directly in ui.perfetto.dev:
///
///   TRACE_SCOPE(cat, name)        duration pair (ph B/E) via RAII
///   TRACE_INSTANT(cat, name)      point event (ph i)
///   TRACE_COUNTER(name, value)    counter-track sample (ph C)
///
/// The sink is a fixed-capacity ring of POD events behind an atomic write
/// cursor ("lock-free-ish": producers are wait-free; the rare dynamic-name
/// intern and the export paths take a mutex). Tracing costs one relaxed
/// atomic load per call site while disabled, and the whole subsystem
/// compiles out to nothing under -DSCAV_TRACE_OFF (the macros expand
/// empty and SCAV_TRACE_ENABLED() folds to `false`, so every guarded
/// block is dead code).
///
/// Event names must be *stable* strings: string literals, or dynamic
/// strings registered once through TraceSink::intern (region names, code
/// labels). Events carry a steady-clock nanosecond timestamp; the exporter
/// re-bases to microseconds relative to the first retained event.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_TRACE_H
#define SCAV_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scav::support {

/// Perfetto phase of one trace event.
enum class TracePhase : uint8_t {
  Begin,   ///< "B" — scope open
  End,     ///< "E" — scope close
  Instant, ///< "i" — point event
  Counter, ///< "C" — counter sample
};

struct TraceEvent {
  TracePhase Ph = TracePhase::Instant;
  const char *Cat = "";  ///< Category (stable string).
  const char *Name = ""; ///< Event / counter name (stable string).
  uint64_t TsNs = 0;     ///< steady_clock nanoseconds.
  double Value = 0;      ///< Counter events only.
  uint32_t Tid = 1;      ///< Small per-thread id (TraceSink::threadId).
};

/// Process-global event sink: a fixed ring that keeps the most recent
/// events. Disabled by default; enabling is idempotent and cheap.
class TraceSink {
public:
  static TraceSink &get() {
    static TraceSink S;
    return S;
  }
  static bool enabled() {
    return get().On.load(std::memory_order_relaxed);
  }

  /// Enables recording into a ring of \p Capacity events (rounded up to a
  /// power of two). Re-enabling with a different capacity reallocates and
  /// clears; re-enabling with the same capacity is a no-op.
  void enable(size_t Capacity = DefaultCapacity) {
    std::lock_guard<std::mutex> L(Mu);
    size_t Cap = 1;
    while (Cap < Capacity)
      Cap <<= 1;
    if (Ring.size() != Cap) {
      Ring.assign(Cap, TraceEvent{});
      Next.store(0, std::memory_order_relaxed);
    }
    On.store(true, std::memory_order_relaxed);
  }
  void disable() { On.store(false, std::memory_order_relaxed); }

  /// Drops every recorded event (capacity is kept).
  void clear() {
    std::lock_guard<std::mutex> L(Mu);
    Next.store(0, std::memory_order_relaxed);
    for (TraceEvent &E : Ring)
      E = TraceEvent{};
  }

  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Small dense id for the calling thread (1 = first caller, normally the
  /// mutator/main thread), used as the Perfetto tid so parallel collector
  /// workers and the async checker get their own tracks.
  static uint32_t threadId() {
    static std::atomic<uint32_t> NextTid{1};
    thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
    return Tid;
  }

  /// The disabled path stays one relaxed load (the E11 tracing-overhead
  /// gate measures exactly this); the enabled path takes the sink mutex so
  /// concurrent producers — collector workers, the async checker — never
  /// race on a ring slot. Tracing *enabled* is already the slow, observed
  /// configuration, so a mutex there is an acceptable price for events
  /// that are well-formed under TSan.
  void record(TracePhase Ph, const char *Cat, const char *Name,
              double Value = 0) {
    if (!On.load(std::memory_order_relaxed))
      return;
    uint32_t Tid = threadId();
    std::lock_guard<std::mutex> L(Mu);
    if (Ring.empty())
      return;
    uint64_t Slot = Next.fetch_add(1, std::memory_order_relaxed);
    TraceEvent &E = Ring[Slot & (Ring.size() - 1)];
    E.Ph = Ph;
    E.Cat = Cat;
    E.Name = Name;
    E.TsNs = nowNs();
    E.Value = Value;
    E.Tid = Tid;
  }

  void begin(const char *Cat, const char *Name) {
    record(TracePhase::Begin, Cat, Name);
  }
  void end(const char *Cat, const char *Name) {
    record(TracePhase::End, Cat, Name);
  }
  void instant(const char *Cat, const char *Name) {
    record(TracePhase::Instant, Cat, Name);
  }
  void counter(const char *Name, double Value) {
    record(TracePhase::Counter, "counter", Name, Value);
  }

  /// Returns a stable copy of \p S for use as an event name. Interning is
  /// slow-path only (region creation, code install) — never per event.
  const char *intern(std::string_view S) {
    std::lock_guard<std::mutex> L(Mu);
    for (const std::string &Have : Interned)
      if (Have == S)
        return Have.c_str();
    Interned.emplace_back(S);
    return Interned.back().c_str();
  }

  /// Events recorded minus events retained (ring overwrite count).
  uint64_t dropped() const {
    uint64_t N = Next.load(std::memory_order_relaxed);
    return N > Ring.size() ? N - Ring.size() : 0;
  }
  uint64_t recorded() const { return Next.load(std::memory_order_relaxed); }

  /// The retained events, oldest first.
  std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> L(Mu);
    std::vector<TraceEvent> Out;
    uint64_t N = Next.load(std::memory_order_relaxed);
    if (Ring.empty() || N == 0)
      return Out;
    uint64_t Count = N < Ring.size() ? N : Ring.size();
    Out.reserve(Count);
    for (uint64_t I = N - Count; I != N; ++I)
      Out.push_back(Ring[I & (Ring.size() - 1)]);
    return Out;
  }

  /// Human-readable dump of the last \p N events (fuzz triage reports).
  std::string formatTail(size_t N) const {
    std::vector<TraceEvent> Evs = snapshot();
    size_t Start = Evs.size() > N ? Evs.size() - N : 0;
    std::string Out;
    char Buf[256];
    for (size_t I = Start; I != Evs.size(); ++I) {
      const TraceEvent &E = Evs[I];
      const char *Ph = E.Ph == TracePhase::Begin    ? "B"
                       : E.Ph == TracePhase::End    ? "E"
                       : E.Ph == TracePhase::Counter ? "C"
                                                     : "i";
      if (E.Ph == TracePhase::Counter)
        std::snprintf(Buf, sizeof(Buf), "  [trace] %s %s %s = %.17g\n", Ph,
                      E.Cat, E.Name, E.Value);
      else
        std::snprintf(Buf, sizeof(Buf), "  [trace] %s %s %s\n", Ph, E.Cat,
                      E.Name);
      Out += Buf;
    }
    if (Start > 0 || dropped() > 0) {
      std::snprintf(Buf, sizeof(Buf),
                    "  [trace] (%llu earlier events not shown)\n",
                    static_cast<unsigned long long>(Start + dropped()));
      Out = Buf + Out;
    }
    return Out;
  }

  /// Serializes the retained events as Chrome/Perfetto trace-event JSON
  /// ({"traceEvents": [...]}, the legacy JSON format every Perfetto build
  /// accepts). Duration pairs are balanced *per thread track* — B/E
  /// nesting is only meaningful within one tid: an End whose Begin was
  /// overwritten by the ring gets a synthetic Begin at the window start,
  /// and an unclosed Begin gets a synthetic End at the window end, so no
  /// track ever contains an unpaired duration event.
  std::string toChromeJson() const {
    std::vector<TraceEvent> Evs = snapshot();
    // One pass: per-tid open-Begin stacks; Ends with no open Begin on
    // their track are window-sliced orphans.
    std::map<uint32_t, std::vector<TraceEvent>> Open;
    std::vector<TraceEvent> Orphans;
    for (const TraceEvent &E : Evs) {
      if (E.Ph == TracePhase::Begin)
        Open[E.Tid].push_back(E);
      else if (E.Ph == TracePhase::End) {
        auto &Stack = Open[E.Tid];
        if (!Stack.empty())
          Stack.pop_back();
        else
          Orphans.push_back(E);
      }
    }
    uint64_t T0 = Evs.empty() ? 0 : Evs.front().TsNs;
    uint64_t TEnd = Evs.empty() ? 0 : Evs.back().TsNs;
    std::string Out = "{\"traceEvents\": [\n";
    bool First = true;
    char Buf[512];
    auto Emit = [&](const TraceEvent &E, uint64_t Ts) {
      const char *Ph = E.Ph == TracePhase::Begin    ? "B"
                       : E.Ph == TracePhase::End    ? "E"
                       : E.Ph == TracePhase::Counter ? "C"
                                                     : "i";
      double Us = static_cast<double>(Ts - T0) / 1000.0;
      unsigned Tid = E.Tid;
      if (E.Ph == TracePhase::Counter)
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"C\", "
                      "\"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                      "\"args\": {\"value\": %.17g}}",
                      First ? "" : ",\n", E.Name, E.Cat, Us, Tid, E.Value);
      else if (E.Ph == TracePhase::Instant)
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                      "\"s\": \"t\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u}",
                      First ? "" : ",\n", E.Name, E.Cat, Us, Tid);
      else
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
                      "\"ts\": %.3f, \"pid\": 1, \"tid\": %u}",
                      First ? "" : ",\n", E.Name, E.Cat, Ph, Us, Tid);
      Out += Buf;
      First = false;
    };
    // Synthetic Begins for window-sliced scopes (encounter order preserves
    // per-track nesting: on each track the outermost orphan End came last,
    // so its Begin is emitted last → innermost... outermost order holds).
    for (const TraceEvent &E : Orphans) {
      TraceEvent B = E;
      B.Ph = TracePhase::Begin;
      Emit(B, T0);
    }
    for (const TraceEvent &E : Evs)
      Emit(E, E.TsNs);
    // Synthetic Ends for still-open scopes, innermost first per track.
    for (auto &[Tid, Stack] : Open) {
      for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
        TraceEvent End = *It;
        End.Ph = TracePhase::End;
        Emit(End, TEnd);
      }
    }
    Out += "\n]}\n";
    return Out;
  }

  /// Writes toChromeJson() to \p Path; returns false on I/O failure.
  bool writeChromeJson(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    std::string S = toChromeJson();
    bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
    return std::fclose(F) == 0 && Ok;
  }

  static constexpr size_t DefaultCapacity = 1u << 16;

private:
  TraceSink() = default;

  std::atomic<bool> On{false};
  std::atomic<uint64_t> Next{0};
  std::vector<TraceEvent> Ring;
  mutable std::mutex Mu;
  std::deque<std::string> Interned; ///< Stable storage for dynamic names.
};

/// RAII duration event.
class TraceScope {
public:
  TraceScope(const char *Cat, const char *Name) : Cat(Cat), Name(Name) {
    TraceSink::get().begin(Cat, Name);
  }
  ~TraceScope() { TraceSink::get().end(Cat, Name); }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  const char *Cat;
  const char *Name;
};

} // namespace scav::support

// Compile-out toggle: -DSCAV_TRACE_OFF removes every call site (the hot
// paths guard instrumentation blocks with SCAV_TRACE_ENABLED(), which
// folds to a constant false and lets the compiler delete the block).
#ifdef SCAV_TRACE_OFF

#define SCAV_TRACE_COMPILED_IN 0
#define SCAV_TRACE_ENABLED() (false)
#define TRACE_SCOPE(CAT, NAME)
#define TRACE_INSTANT(CAT, NAME)
#define TRACE_COUNTER(NAME, VALUE)

#else

#define SCAV_TRACE_COMPILED_IN 1
#define SCAV_TRACE_ENABLED() (::scav::support::TraceSink::enabled())
#define SCAV_TRACE_CONCAT_(A, B) A##B
#define SCAV_TRACE_CONCAT(A, B) SCAV_TRACE_CONCAT_(A, B)
#define TRACE_SCOPE(CAT, NAME)                                                 \
  ::scav::support::TraceScope SCAV_TRACE_CONCAT(ScavTraceScope_,               \
                                                __LINE__)(CAT, NAME)
#define TRACE_INSTANT(CAT, NAME)                                               \
  do {                                                                         \
    if (SCAV_TRACE_ENABLED())                                                  \
      ::scav::support::TraceSink::get().instant(CAT, NAME);                    \
  } while (0)
#define TRACE_COUNTER(NAME, VALUE)                                             \
  do {                                                                         \
    if (SCAV_TRACE_ENABLED())                                                  \
      ::scav::support::TraceSink::get().counter(                               \
          NAME, static_cast<double>(VALUE));                                   \
  } while (0)

#endif // SCAV_TRACE_OFF

#endif // SCAV_SUPPORT_TRACE_H
