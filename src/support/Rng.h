//===- support/Rng.h - Deterministic random number generator --*- C++ -*-===//
///
/// \file
/// SplitMix64-based RNG. Deterministic across platforms (unlike
/// std::mt19937 distributions), which matters because the property-test
/// harness derives whole random programs from a printed seed.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_RNG_H
#define SCAV_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace scav {

/// Deterministic 64-bit RNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below(0) is meaningless");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace scav

#endif // SCAV_SUPPORT_RNG_H
