//===- support/WorkSteal.h - Chunked work-stealing deques ------*- C++ -*-===//
///
/// \file
/// Per-worker chunk deques for the parallel Cheney copier
/// (gc/NativeCollector.cpp). Each worker publishes work in *chunks* (small
/// vectors of items) to its own deque; the owner pops from the back (LIFO,
/// cache-warm) and idle workers steal whole chunks from the front of a
/// victim's deque (FIFO, oldest — most likely to fan out). Chunk
/// granularity keeps the mutex per-deque and touched once per ChunkSize
/// items rather than per item; with chunks of 64+ items the lock is far
/// off the copy path's critical section, so a plain mutex beats a
/// Chase-Lev ring here for code the state checker also has to trust.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_WORKSTEAL_H
#define SCAV_SUPPORT_WORKSTEAL_H

#include <deque>
#include <mutex>
#include <vector>

namespace scav {

template <typename T> class ChunkDeque {
public:
  /// Publishes \p Chunk (moved from) to this deque.
  void push(std::vector<T> &&Chunk) {
    if (Chunk.empty())
      return;
    std::lock_guard<std::mutex> L(Mu);
    Chunks.push_back(std::move(Chunk));
  }

  /// Owner side: pops the most recently published chunk into \p Out.
  bool pop(std::vector<T> &Out) {
    std::lock_guard<std::mutex> L(Mu);
    if (Chunks.empty())
      return false;
    Out = std::move(Chunks.back());
    Chunks.pop_back();
    return true;
  }

  /// Thief side: steals the *oldest* chunk into \p Out.
  bool steal(std::vector<T> &Out) {
    std::lock_guard<std::mutex> L(Mu);
    if (Chunks.empty())
      return false;
    Out = std::move(Chunks.front());
    Chunks.pop_front();
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> L(Mu);
    return Chunks.empty();
  }

private:
  mutable std::mutex Mu;
  std::deque<std::vector<T>> Chunks;
};

} // namespace scav

#endif // SCAV_SUPPORT_WORKSTEAL_H
