//===- support/Symbol.h - Interned identifiers ----------------*- C++ -*-===//
///
/// \file
/// Interned symbols. A Symbol is a small value type (an index into a
/// SymbolTable) used for every variable sort in the calculi: term variables
/// x, tag variables t, type variables α, region variables r, region names ν,
/// and code labels ℓ. The table also provides a fresh-name supply used by
/// capture-avoiding substitution and the various program transformations.
///
/// The table is internally synchronized: a mutator thread and the async
/// state-checker thread (gc/AsyncCheck.h) intern into one shared table
/// concurrently. Spelling storage is a deque so `name()` views stay stable
/// across later interns (and across threads). Fresh-name *counters* live
/// with the callers (see GcContext::fresh and its namespace tags), not
/// here, so one observer context minting names cannot perturb another
/// context's numbering; the legacy single-counter `fresh()` is kept for
/// the single-threaded frontend contexts (lambda/cps).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_SYMBOL_H
#define SCAV_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace scav {

class SymbolTable;

/// An interned identifier; equality is O(1).
class Symbol {
public:
  Symbol() : Id(~0u) {}

  bool isValid() const { return Id != ~0u; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class SymbolTable;
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id;
};

/// Owns symbol spellings and hands out fresh names. Thread-safe.
class SymbolTable {
public:
  /// Interns \p Name and returns its Symbol.
  Symbol intern(std::string_view Name) {
    std::lock_guard<std::mutex> L(Mu);
    return internLocked(Name).first;
  }

  /// Interns \p Name; the bool is true iff the spelling was not in the
  /// table yet. One atomic lookup-or-insert, for fresh-name loops that must
  /// not race with another thread interning the same spelling.
  std::pair<Symbol, bool> internNew(std::string_view Name) {
    std::lock_guard<std::mutex> L(Mu);
    return internLocked(Name);
  }

  /// Creates a fresh symbol whose spelling starts with \p Base. The result
  /// is guaranteed distinct from every symbol interned so far. Uses the
  /// table-global counter; GcContext-based code should go through
  /// GcContext::fresh instead, which namespaces its counter per context.
  Symbol fresh(std::string_view Base) {
    std::lock_guard<std::mutex> L(Mu);
    for (;;) {
      std::string Candidate =
          std::string(Base) + "$" + std::to_string(FreshCounter++);
      auto [S, New] = internLocked(Candidate);
      if (New)
        return S;
    }
  }

  /// \returns the spelling of \p S. The view is stable for the table's
  /// lifetime (spellings live in a deque and are never moved).
  std::string_view name(Symbol S) const {
    std::lock_guard<std::mutex> L(Mu);
    assert(S.isValid() && S.id() < Names.size() && "invalid symbol");
    return Names[S.id()];
  }

  /// Spelling for a raw id. Snapshot serialization (gc/Snapshot.cpp) walks
  /// the whole table by id — ids are dense, so [0, size()) enumerates it.
  std::string_view name(uint32_t Id) const {
    std::lock_guard<std::mutex> L(Mu);
    assert(Id < Names.size() && "invalid symbol id");
    return Names[Id];
  }

  size_t size() const {
    std::lock_guard<std::mutex> L(Mu);
    return Names.size();
  }

private:
  std::pair<Symbol, bool> internLocked(std::string_view Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      return {Symbol(It->second), false};
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.emplace_back(Name);
    Map.emplace(std::string_view(Names.back()), Id);
    return {Symbol(Id), true};
  }

  mutable std::mutex Mu;
  std::deque<std::string> Names; ///< Stable spelling storage.
  /// Keys view into Names (stable — deque elements never move).
  std::unordered_map<std::string_view, uint32_t> Map;
  uint64_t FreshCounter = 0;
};

/// Hash support so Symbols can key unordered containers.
struct SymbolHash {
  size_t operator()(Symbol S) const { return S.id(); }
};

} // namespace scav

#endif // SCAV_SUPPORT_SYMBOL_H
