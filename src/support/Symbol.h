//===- support/Symbol.h - Interned identifiers ----------------*- C++ -*-===//
///
/// \file
/// Interned symbols. A Symbol is a small value type (an index into a
/// SymbolTable) used for every variable sort in the calculi: term variables
/// x, tag variables t, type variables α, region variables r, region names ν,
/// and code labels ℓ. The table also provides a fresh-name supply used by
/// capture-avoiding substitution and the various program transformations.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_SYMBOL_H
#define SCAV_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace scav {

class SymbolTable;

/// An interned identifier; equality is O(1).
class Symbol {
public:
  Symbol() : Id(~0u) {}

  bool isValid() const { return Id != ~0u; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class SymbolTable;
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id;
};

/// Owns symbol spellings and hands out fresh names.
class SymbolTable {
public:
  /// Interns \p Name and returns its Symbol.
  Symbol intern(std::string_view Name) {
    auto It = Map.find(std::string(Name));
    if (It != Map.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.emplace_back(Name);
    Map.emplace(Names.back(), Id);
    return Symbol(Id);
  }

  /// Creates a fresh symbol whose spelling starts with \p Base. The result
  /// is guaranteed distinct from every symbol interned so far.
  Symbol fresh(std::string_view Base) {
    for (;;) {
      std::string Candidate =
          std::string(Base) + "$" + std::to_string(FreshCounter++);
      if (Map.find(Candidate) == Map.end())
        return intern(Candidate);
    }
  }

  /// \returns the spelling of \p S.
  std::string_view name(Symbol S) const {
    assert(S.isValid() && S.id() < Names.size() && "invalid symbol");
    return Names[S.id()];
  }

  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> Map;
  uint64_t FreshCounter = 0;
};

/// Hash support so Symbols can key unordered containers.
struct SymbolHash {
  size_t operator()(Symbol S) const { return S.id(); }
};

} // namespace scav

#endif // SCAV_SUPPORT_SYMBOL_H
