//===- support/ParseInt.h - Checked integer-literal parsing -----*- C++ -*-===//
///
/// \file
/// One checked int64 parser shared by both S-expression frontends. The
/// parsers originally called std::stoll, whose failure mode is an exception
/// — an atom like `-x` (std::invalid_argument) or `99999999999999999999`
/// (std::out_of_range) aborted the process instead of producing a parse
/// diagnostic. std::from_chars reports both failures as values, so callers
/// can turn them into diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_PARSEINT_H
#define SCAV_SUPPORT_PARSEINT_H

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>
#include <system_error>

namespace scav {

/// Parses the *entire* string as a base-10 int64_t (optional leading '-').
/// \returns nullopt when the string is not an integer or does not fit.
inline std::optional<int64_t> parseInt64(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  int64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), V, 10);
  if (Ec != std::errc() || Ptr != S.data() + S.size())
    return std::nullopt;
  return V;
}

} // namespace scav

#endif // SCAV_SUPPORT_PARSEINT_H
