//===- support/ParseInt.h - Checked integer-literal parsing -----*- C++ -*-===//
///
/// \file
/// One checked int64 parser shared by both S-expression frontends. The
/// parsers originally called std::stoll, whose failure mode is an exception
/// — an atom like `-x` (std::invalid_argument) or `99999999999999999999`
/// (std::out_of_range) aborted the process instead of producing a parse
/// diagnostic. std::from_chars reports both failures as values, so callers
/// can turn them into diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_PARSEINT_H
#define SCAV_SUPPORT_PARSEINT_H

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

namespace scav {

/// Parses the *entire* string as a base-10 int64_t (optional leading '-').
/// \returns nullopt when the string is not an integer or does not fit.
inline std::optional<int64_t> parseInt64(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  int64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), V, 10);
  if (Ec != std::errc() || Ptr != S.data() + S.size())
    return std::nullopt;
  return V;
}

/// Parses the *entire* string as a base-10 uint64_t.
inline std::optional<uint64_t> parseUint64(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), V, 10);
  if (Ec != std::errc() || Ptr != S.data() + S.size())
    return std::nullopt;
  return V;
}

/// Result of interpreting an environment knob: the value to use plus a
/// non-empty diagnostic when the raw text was malformed and \p Fallback was
/// substituted.
struct EnvUnsigned {
  uint64_t Value = 0;
  std::string Diag; ///< empty = clean parse (or variable unset)
};

/// Interprets environment-variable text as an unsigned integer in
/// [\p Min, \p Max]. Unset (\p Raw == nullptr) or empty picks \p Fallback
/// silently — the knob simply isn't set. Anything else that fails to parse
/// completely, overflows, or lands outside the range also picks \p Fallback
/// but reports a one-line diagnostic naming the variable and the offending
/// text. This is the same bug class as the frontend's stoll food (see
/// parseInt64 above): strtoul-with-no-endptr-check turned SCAV_THREADS=4x
/// into a silent single-threaded run. Pure (no getenv, no I/O) so tests
/// can drive raw strings through it; envUnsignedOr below is the effectful
/// wrapper the runtime knobs use.
inline EnvUnsigned parseEnvUnsigned(std::string_view Name, const char *Raw,
                                    uint64_t Fallback, uint64_t Min,
                                    uint64_t Max) {
  EnvUnsigned R{Fallback, {}};
  if (!Raw || !*Raw)
    return R;
  std::string_view S(Raw);
  std::optional<uint64_t> V = parseUint64(S);
  std::string Msg;
  if (!V) {
    Msg = "not an unsigned integer";
  } else if (*V < Min || *V > Max) {
    Msg = "out of range [" + std::to_string(Min) + ", " +
          std::to_string(Max) + "]";
  } else {
    R.Value = *V;
    return R;
  }
  R.Diag = std::string(Name) + "=\"" + std::string(S) + "\": " + Msg +
           "; using " + std::to_string(Fallback);
  return R;
}

/// getenv + parseEnvUnsigned, printing the diagnostic (if any) to stderr.
inline uint64_t envUnsignedOr(const char *Name, uint64_t Fallback,
                              uint64_t Min, uint64_t Max) {
  EnvUnsigned R =
      parseEnvUnsigned(Name, std::getenv(Name), Fallback, Min, Max);
  if (!R.Diag.empty())
    std::fprintf(stderr, "warning: %s\n", R.Diag.c_str());
  return R.Value;
}

} // namespace scav

#endif // SCAV_SUPPORT_PARSEINT_H
