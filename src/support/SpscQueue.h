//===- support/SpscQueue.h - Bounded single-producer/single-consumer queue ===//
///
/// \file
/// A bounded SPSC queue for pipelining work between exactly two threads —
/// the mutator (producer) and the async state checker (consumer, see
/// gc/AsyncCheck.h). Mutex + condvar rather than a lock-free ring: the
/// payloads here are whole check units (kilobytes of captured deltas), so
/// the handoff cost is dominated by building the unit, and a mutex keeps
/// the blocking semantics — bounded capacity *is* the backpressure
/// mechanism — trivially correct under TSan.
///
/// Push blocks (or times out, for tryPushFor) when full; pop blocks when
/// empty. close() wakes both sides: a closed queue rejects pushes and
/// drains remaining items before pop returns nullopt.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_SPSCQUEUE_H
#define SCAV_SUPPORT_SPSCQUEUE_H

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace scav {

template <typename T> class SpscQueue {
public:
  explicit SpscQueue(size_t Capacity) : Cap(Capacity) {
    assert(Capacity > 0 && "queue needs room for at least one item");
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Blocks until there is room (backpressure), then enqueues.
  /// \returns false if the queue was closed before room appeared.
  bool push(T Item) {
    std::unique_lock<std::mutex> L(Mu);
    NotFull.wait(L, [&] { return Items.size() < Cap || Closed; });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notify_one();
    return true;
  }

  /// Like push, but gives up after \p Timeout without room. On timeout the
  /// item is returned to the caller via \p Item (unmoved-from), so the
  /// producer can fall back to handling it synchronously (the checker-lag
  /// safety net).
  bool tryPushFor(T &Item, std::chrono::milliseconds Timeout) {
    std::unique_lock<std::mutex> L(Mu);
    if (!NotFull.wait_for(L, Timeout,
                          [&] { return Items.size() < Cap || Closed; }))
      return false;
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> L(Mu);
    NotEmpty.wait(L, [&] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt; // closed and drained
    T Item = std::move(Items.front());
    Items.pop_front();
    NotFull.notify_one();
    return Item;
  }

  /// Closes the queue: subsequent pushes fail; pops drain what remains.
  void close() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Closed = true;
    }
    NotFull.notify_all();
    NotEmpty.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> L(Mu);
    return Items.size();
  }

  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex Mu;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace scav

#endif // SCAV_SUPPORT_SPSCQUEUE_H
