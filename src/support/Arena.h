//===- support/Arena.h - Bump-pointer arena allocator ---------*- C++ -*-===//
//
// Part of the principled-scavenging reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena. All AST nodes in this project are immutable
/// and live for the lifetime of their owning context, so an arena (no
/// per-node free) is the right allocation strategy. Objects with non-trivial
/// destructors may be allocated but their destructors are never run; AST
/// nodes therefore only hold trivially-destructible members or pointers into
/// the same arena (std::vector members are destroyed via a registered
/// cleanup list).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_ARENA_H
#define SCAV_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace scav {

/// Bump-pointer arena allocator with destructor support.
///
/// `create<T>(args...)` allocates and constructs a T. If T has a
/// non-trivial destructor it is registered and run when the arena dies,
/// so AST nodes may freely contain std::vector / std::string members.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    for (auto It = Cleanups.rbegin(), E = Cleanups.rend(); It != E; ++It)
      It->Fn(It->Obj);
  }

  /// Allocates raw storage with the given size and alignment.
  void *allocate(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    uintptr_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      newSlab(Size + Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Ptr = reinterpret_cast<char *>(Aligned + Size);
    ++NumAllocations;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Allocates and constructs an object of type T in the arena.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(As)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Cleanups.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Allocates storage for a T and pre-registers its destructor; the caller
  /// placement-constructs into the returned memory. For types whose
  /// constructors are private (node classes befriending their context):
  /// constructing at the call site keeps the friendship working while
  /// avoiding create()'s construct-a-temporary-then-move round trip, which
  /// for fat node types doubles the memory traffic of every allocation.
  /// The caller's constructor must be noexcept (the cleanup is already
  /// registered when it runs).
  template <typename T> void *allocateFor() {
    void *Mem = allocate(sizeof(T), alignof(T));
    if constexpr (!std::is_trivially_destructible_v<T>)
      Cleanups.push_back({Mem, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Mem;
  }

  /// \returns the total number of objects allocated so far.
  size_t numAllocations() const { return NumAllocations; }

  /// \returns the total number of bytes reserved in slabs.
  size_t bytesReserved() const { return BytesReserved; }

  /// A point in the allocation history; see mark()/release().
  struct Checkpoint {
    size_t SlabCount;
    char *Ptr;
    char *End;
    size_t CleanupCount;
    size_t NumAllocations;
  };

  /// Captures the current allocation state. Everything allocated after the
  /// mark can be bulk-freed with release(). The caller must guarantee that
  /// no object allocated after the mark is reachable afterwards — used to
  /// scope the transient allocations of a machine-state check. NOTE: side
  /// tables keyed by node pointers (uniquing tables, memo caches) count as
  /// reachability; contexts that maintain such tables must unwind their
  /// entries before releasing (see GcContext::Scope, which wraps this).
  Checkpoint mark() const {
    return Checkpoint{Slabs.size(), Ptr, End, Cleanups.size(),
                      NumAllocations};
  }

  /// Destroys and frees everything allocated since \p Cp.
  void release(const Checkpoint &Cp) {
    for (size_t I = Cleanups.size(); I > Cp.CleanupCount; --I) {
      Cleanup &Cl = Cleanups[I - 1];
      Cl.Fn(Cl.Obj);
    }
    Cleanups.resize(Cp.CleanupCount);
    Slabs.resize(Cp.SlabCount);
    Ptr = Cp.Ptr;
    End = Cp.End;
    NumAllocations = Cp.NumAllocations;
  }

  /// RAII over mark()/release() for callers without pointer-keyed side
  /// tables to unwind.
  class ScopedCheckpoint {
  public:
    explicit ScopedCheckpoint(Arena &A) : A(A), Cp(A.mark()) {}
    ~ScopedCheckpoint() { A.release(Cp); }
    ScopedCheckpoint(const ScopedCheckpoint &) = delete;
    ScopedCheckpoint &operator=(const ScopedCheckpoint &) = delete;

  private:
    Arena &A;
    Checkpoint Cp;
  };

private:
  struct Cleanup {
    void *Obj;
    void (*Fn)(void *);
  };

  void newSlab(size_t MinSize) {
    size_t Size = SlabSize;
    if (Size < MinSize)
      Size = MinSize;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Ptr = Slabs.back().get();
    End = Ptr + Size;
    BytesReserved += Size;
    if (SlabSize < MaxSlabSize)
      SlabSize *= 2;
  }

  static constexpr size_t InitialSlabSize = 1 << 14;
  static constexpr size_t MaxSlabSize = 1 << 22;

  std::vector<std::unique_ptr<char[]>> Slabs;
  std::vector<Cleanup> Cleanups;
  char *Ptr = nullptr;
  char *End = nullptr;
  size_t SlabSize = InitialSlabSize;
  size_t NumAllocations = 0;
  size_t BytesReserved = 0;
};

} // namespace scav

#endif // SCAV_SUPPORT_ARENA_H
