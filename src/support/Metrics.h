//===- support/Metrics.h - Typed metrics registry and reporters -*- C++ -*-===//
///
/// \file
/// A typed metrics registry (DESIGN.md §3.9) shared by every reporting
/// surface: `certgc_run --stats` / `--stats-json`, the bench JSON records
/// (BENCH_e*.json), and the fuzz driver's triage summaries. Three metric
/// kinds:
///
///   * Counter   — monotone uint64 (machine step counts, cache hits)
///   * Gauge     — point-in-time double (live cells, arena bytes)
///   * Histogram — fixed-bucket distribution with count/sum/min/max and
///                 interpolated percentiles (pause ns, step latency)
///
/// One JSON schema ("scav-metrics-v1", documented in DESIGN.md) and one
/// fixed-width text layout serve every consumer, so no binary hand-rolls
/// its own stats format.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_METRICS_H
#define SCAV_SUPPORT_METRICS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace scav::support {

/// Fixed-bucket histogram. Bounds are inclusive upper edges; a sample
/// lands in the first bucket whose bound is >= the sample, or in the
/// implicit overflow bucket past the last bound.
class Histogram {
public:
  Histogram() : Histogram(defaultLatencyBoundsNs()) {}
  explicit Histogram(std::vector<double> UpperBounds)
      : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1, 0) {}

  /// Exponential nanosecond grid, 1us .. ~17s: the shared default for
  /// pause / latency histograms.
  static std::vector<double> defaultLatencyBoundsNs() {
    std::vector<double> B;
    for (double V = 1e3; V <= 2e10; V *= 2)
      B.push_back(V);
    return B;
  }

  void record(double V) {
    ++Counts[bucketFor(V)];
    ++Count;
    Sum += V;
    Min = Count == 1 ? V : std::min(Min, V);
    Max = Count == 1 ? V : std::max(Max, V);
  }

  size_t bucketFor(double V) const {
    size_t Lo =
        std::lower_bound(Bounds.begin(), Bounds.end(), V) - Bounds.begin();
    return Lo; // == Bounds.size() for the overflow bucket
  }

  /// Folds \p O into this histogram. Identical bucket grids merge exactly
  /// (bucket-wise addition); differing grids degrade gracefully by
  /// re-bucketing each of O's non-empty buckets at a representative value
  /// (its upper edge, clamped to O's observed range), preserving count /
  /// sum / min / max exactly and percentiles to within one bucket.
  void mergeFrom(const Histogram &O) {
    if (O.Count == 0)
      return;
    if (Count == 0) {
      Min = O.Min;
      Max = O.Max;
    } else {
      Min = std::min(Min, O.Min);
      Max = std::max(Max, O.Max);
    }
    if (O.Bounds == Bounds) {
      for (size_t I = 0; I != Counts.size(); ++I)
        Counts[I] += O.Counts[I];
    } else {
      for (size_t I = 0; I != O.Counts.size(); ++I) {
        if (O.Counts[I] == 0)
          continue;
        double Rep = I < O.Bounds.size() ? O.Bounds[I] : O.Max;
        Rep = std::clamp(Rep, O.Min, O.Max);
        Counts[bucketFor(Rep)] += O.Counts[I];
      }
    }
    Count += O.Count;
    Sum += O.Sum;
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  const std::vector<double> &bounds() const { return Bounds; }
  const std::vector<uint64_t> &counts() const { return Counts; }

  /// Interpolated percentile (P in [0,100]): walks the buckets to the one
  /// containing the target rank and interpolates linearly inside it,
  /// clamped to the observed [min, max] so boundary cases (P=0, P=100,
  /// single-sample histograms) stay exact.
  double percentile(double P) const {
    if (Count == 0)
      return 0;
    double Rank = (P / 100.0) * static_cast<double>(Count);
    uint64_t Seen = 0;
    for (size_t I = 0; I != Counts.size(); ++I) {
      if (Counts[I] == 0)
        continue;
      if (static_cast<double>(Seen + Counts[I]) >= Rank) {
        double Lo = I == 0 ? min() : Bounds[I - 1];
        double Hi = I < Bounds.size() ? Bounds[I] : max();
        Lo = std::max(Lo, min());
        Hi = std::min(Hi, max());
        if (Hi < Lo)
          Hi = Lo;
        double Within =
            Counts[I] == 0
                ? 0
                : (Rank - static_cast<double>(Seen)) /
                      static_cast<double>(Counts[I]);
        Within = std::clamp(Within, 0.0, 1.0);
        return Lo + (Hi - Lo) * Within;
      }
      Seen += Counts[I];
    }
    return max();
  }

private:
  std::vector<double> Bounds;
  std::vector<uint64_t> Counts;
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

/// Name-keyed registry. Ordered maps: every reporter iterates, and stable
/// (sorted) output order is worth more than O(1) registration — metrics
/// are registered/updated at reporting boundaries, not on hot paths.
///
/// Thread model (enforced by convention, checked by the TSan CI job): a
/// registry has exactly ONE writer thread for its whole lifetime — nothing
/// here is synchronized, and concurrent counter()/histogram() calls
/// corrupt the maps and the histogram bucket arrays. Concurrent producers
/// (certgc_serve worker sessions, stress tests) each write a private
/// registry; the owner folds them together with mergeFrom() after the
/// producers have joined. Readers may only run while no writer does.
class MetricsRegistry {
public:
  uint64_t &counter(const std::string &Name) { return Counters[Name]; }
  double &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) {
    return Histograms.try_emplace(Name).first->second;
  }
  Histogram &histogram(const std::string &Name, std::vector<double> Bounds) {
    return Histograms.try_emplace(Name, Histogram(std::move(Bounds)))
        .first->second;
  }

  void setCounter(const std::string &Name, uint64_t V) { Counters[Name] = V; }
  void setGauge(const std::string &Name, double V) { Gauges[Name] = V; }

  /// Additive merge: counters and gauges accumulate, histograms fold
  /// bucket-wise (Histogram::mergeFrom). This is the join step of the
  /// one-writer-per-registry thread model above — call it after the
  /// producer threads owning the source registries have joined. Additive
  /// gauges aggregate meaningfully for extensive quantities (cells, bytes,
  /// seconds of work); intensive per-session gauges are better exported
  /// under per-session names by the caller. \p Prefix is prepended to every
  /// merged-in name ("s3." turns "machine.steps" into "s3.machine.steps").
  void mergeFrom(const MetricsRegistry &O, const std::string &Prefix = "") {
    for (const auto &[K, V] : O.Counters)
      Counters[Prefix + K] += V;
    for (const auto &[K, V] : O.Gauges)
      Gauges[Prefix + K] += V;
    for (const auto &[K, H] : O.Histograms)
      Histograms.try_emplace(Prefix + K, Histogram(H.bounds()))
          .first->second.mergeFrom(H);
  }

  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }
  void clear() {
    Counters.clear();
    Gauges.clear();
    Histograms.clear();
  }

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
};

namespace detail {
inline void appendJsonNumber(std::string &Out, double V) {
  char Buf[64];
  if (std::isfinite(V))
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  else
    std::snprintf(Buf, sizeof(Buf), "null");
  Out += Buf;
}
inline void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      (Out += '\\') += C;
    else if (static_cast<unsigned char>(C) < 0x20)
      Out += ' ';
    else
      Out += C;
  }
  Out += '"';
}
} // namespace detail

/// The shared JSON reporter ("scav-metrics-v1"). \p Extra is a list of
/// pre-rendered top-level members (key, rendered-json-value) prepended
/// before the metric sections — the bench records put experiment name /
/// pass flag / git sha there.
inline std::string
writeMetricsJson(const MetricsRegistry &Reg,
                 const std::vector<std::pair<std::string, std::string>>
                     &Extra = {}) {
  std::string Out = "{\n  \"schema\": \"scav-metrics-v1\"";
  for (const auto &[K, V] : Extra) {
    Out += ",\n  ";
    detail::appendJsonString(Out, K);
    Out += ": ";
    Out += V;
  }
  Out += ",\n  \"counters\": {";
  bool First = true;
  for (const auto &[K, V] : Reg.counters()) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    detail::appendJsonString(Out, K);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), ": %llu",
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  Out += First ? "}" : "\n  }";
  Out += ",\n  \"gauges\": {";
  First = true;
  for (const auto &[K, V] : Reg.gauges()) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    detail::appendJsonString(Out, K);
    Out += ": ";
    detail::appendJsonNumber(Out, V);
  }
  Out += First ? "}" : "\n  }";
  Out += ",\n  \"histograms\": {";
  First = true;
  for (const auto &[K, H] : Reg.histograms()) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    detail::appendJsonString(Out, K);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ": {\"count\": %llu, \"sum\": ",
                  static_cast<unsigned long long>(H.count()));
    Out += Buf;
    detail::appendJsonNumber(Out, H.sum());
    for (const auto &[Label, V] :
         std::initializer_list<std::pair<const char *, double>>{
             {"min", H.min()},
             {"max", H.max()},
             {"mean", H.mean()},
             {"p50", H.percentile(50)},
             {"p90", H.percentile(90)},
             {"p99", H.percentile(99)}}) {
      Out += ", \"";
      Out += Label;
      Out += "\": ";
      detail::appendJsonNumber(Out, V);
    }
    Out += ", \"buckets\": [";
    bool FirstB = true;
    for (size_t I = 0; I != H.counts().size(); ++I) {
      if (H.counts()[I] == 0)
        continue; // sparse: empty buckets carry no information
      Out += FirstB ? "" : ", ";
      FirstB = false;
      Out += "{\"le\": ";
      if (I < H.bounds().size())
        detail::appendJsonNumber(Out, H.bounds()[I]);
      else
        Out += "\"inf\"";
      std::snprintf(Buf, sizeof(Buf), ", \"count\": %llu}",
                    static_cast<unsigned long long>(H.counts()[I]));
      Out += Buf;
    }
    Out += "]}";
  }
  Out += First ? "}" : "\n  }";
  Out += "\n}\n";
  return Out;
}

/// The shared text reporter: one `name value` line per metric, histograms
/// as a one-line summary. Used by `certgc_run --stats` and the fuzz triage
/// summaries.
inline std::string writeMetricsText(const MetricsRegistry &Reg,
                                    const char *Indent = "") {
  std::string Out;
  char Buf[256];
  for (const auto &[K, V] : Reg.counters()) {
    std::snprintf(Buf, sizeof(Buf), "%s%-40s %llu\n", Indent, K.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  for (const auto &[K, V] : Reg.gauges()) {
    std::snprintf(Buf, sizeof(Buf), "%s%-40s %.9g\n", Indent, K.c_str(), V);
    Out += Buf;
  }
  for (const auto &[K, H] : Reg.histograms()) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s%-40s count=%llu mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
                  Indent, K.c_str(),
                  static_cast<unsigned long long>(H.count()), H.mean(),
                  H.percentile(50), H.percentile(99), H.max());
    Out += Buf;
  }
  return Out;
}

/// Writes \p Content to \p Path; shared by the --stats-json / --json /
/// --trace-out file sinks.
inline bool writeFile(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace scav::support

#endif // SCAV_SUPPORT_METRICS_H
