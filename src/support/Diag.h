//===- support/Diag.h - Diagnostic collection ------------------*- C++ -*-===//
///
/// \file
/// Diagnostics for the typecheckers and translators. Library code never
/// aborts on a user-program error: it reports into a DiagEngine and returns
/// failure, so tests can assert on specific messages.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_DIAG_H
#define SCAV_SUPPORT_DIAG_H

#include <string>
#include <utility>
#include <vector>

namespace scav {

enum class DiagLevel { Note, Warning, Error };

/// One diagnostic message.
struct Diag {
  DiagLevel Level;
  std::string Message;
};

/// Accumulates diagnostics. Cheap to pass by reference through a checker.
class DiagEngine {
public:
  void error(std::string Msg) {
    Diags.push_back({DiagLevel::Error, std::move(Msg)});
    ++NumErrors;
  }

  void warning(std::string Msg) {
    Diags.push_back({DiagLevel::Warning, std::move(Msg)});
  }

  void note(std::string Msg) {
    Diags.push_back({DiagLevel::Note, std::move(Msg)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned numErrors() const { return NumErrors; }
  const std::vector<Diag> &diags() const { return Diags; }

  /// Renders all diagnostics, one per line (for test failure messages).
  std::string str() const {
    std::string Out;
    for (const Diag &D : Diags) {
      switch (D.Level) {
      case DiagLevel::Note:
        Out += "note: ";
        break;
      case DiagLevel::Warning:
        Out += "warning: ";
        break;
      case DiagLevel::Error:
        Out += "error: ";
        break;
      }
      Out += D.Message;
      Out += '\n';
    }
    return Out;
  }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diag> Diags;
  unsigned NumErrors = 0;
};

} // namespace scav

#endif // SCAV_SUPPORT_DIAG_H
