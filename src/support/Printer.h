//===- support/Printer.h - Indenting pretty-print stream ------*- C++ -*-===//
///
/// \file
/// A tiny indentation-aware output buffer used by all AST pretty-printers.
/// We deliberately avoid <iostream> (per the coding standards); printers
/// build strings which callers forward to stdout or to diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SUPPORT_PRINTER_H
#define SCAV_SUPPORT_PRINTER_H

#include <string>
#include <string_view>

namespace scav {

/// Accumulates text with explicit indentation control.
class Printer {
public:
  Printer &operator<<(std::string_view S) {
    flushIndent();
    Out.append(S);
    return *this;
  }

  Printer &operator<<(char C) {
    flushIndent();
    Out.push_back(C);
    return *this;
  }

  Printer &operator<<(int64_t N) {
    flushIndent();
    Out.append(std::to_string(N));
    return *this;
  }

  Printer &operator<<(size_t N) {
    flushIndent();
    Out.append(std::to_string(N));
    return *this;
  }

  /// Ends the current line; the next write re-applies indentation.
  void newline() {
    Out.push_back('\n');
    AtLineStart = true;
  }

  void indent() { Indent += 2; }
  void dedent() { Indent -= Indent >= 2 ? 2 : Indent; }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void flushIndent() {
    if (!AtLineStart)
      return;
    Out.append(Indent, ' ');
    AtLineStart = false;
  }

  std::string Out;
  unsigned Indent = 0;
  bool AtLineStart = true;
};

} // namespace scav

#endif // SCAV_SUPPORT_PRINTER_H
