//===- vm/Vm.h - Bytecode execution backend for the λGC machine -*- C++ -*-===//
///
/// \file
/// VmExec is the gc::ExecBackend behind MachineConfig::EvalMode::Vm: it
/// lowers terms to vm::Chunk bytecode (lazily, cached per code value) and
/// drives a tight switch-dispatch loop. The Machine keeps ownership of every
/// observable — memory, Ψ, stats, status, journal — and the VM calls back
/// into the same Machine primitives (put/get/update, recordPut, applyOnly,
/// applyWiden, stuck, trace helpers) the interpreted modes use, so the two
/// engines cannot drift at the region-operation boundary.
///
/// Usage: construct with the machine (attaches itself), then drive the
/// machine normally; destroy before the machine (detaches itself).
///
///   gc::Machine M(C, Level, Cfg);       // Cfg.Eval == EvalMode::Vm
///   vm::VmExec Vm(M);
///   M.start(Program);
///   M.run(Budget);
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_VM_VM_H
#define SCAV_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/Lower.h"

#include "gc/Machine.h"

#include <memory>
#include <string_view>
#include <unordered_map>

namespace scav::vm {

class VmExec final : public gc::ExecBackend {
public:
  /// Attaches itself to \p M as the execution backend.
  explicit VmExec(gc::Machine &M);
  /// Detaches (if still the attached backend).
  ~VmExec() override;

  VmExec(const VmExec &) = delete;
  VmExec &operator=(const VmExec &) = delete;

  void onStart(const gc::Term *E) override;
  gc::Machine::Status step() override;
  gc::Machine::Status run(uint64_t MaxSteps) override;
  const gc::Term *currentTerm() const override;
  void exportMetrics(support::MetricsRegistry &Reg) const override;

  /// The (cached) chunk for a main term / code value; compiles on first
  /// request. Keys are node pointers — sound for code values because cd
  /// cells are never rewritten, and for main terms because the driver owns
  /// the term for the machine's lifetime.
  const Chunk *chunkForTerm(const gc::Term *E);
  const Chunk *chunkForCode(const gc::Value *Code, std::string_view Label);

  /// Every chunk compiled so far, keyed by its source node (tests and
  /// offline disassembly).
  const std::unordered_map<const void *, std::unique_ptr<Chunk>> &
  chunks() const {
    return Chunks;
  }

  // Compile/run metrics (also exported as "vm.*" via exportMetrics).
  uint64_t vmSteps() const { return VmSteps; }
  uint64_t lowerNs() const { return LowerNs; }
  uint64_t chunksCompiled() const { return NumChunks; }
  uint64_t instrsCompiled() const { return NumInstrs; }
  uint64_t staticTypecaseSteps() const { return StaticTypecaseSteps; }

private:
  gc::Machine::Status execOne();

  const gc::Value *materialize(const ValOperand &Op);
  const gc::Value *matFast(const gc::Value *V, uint32_t BindsBegin,
                           uint32_t BindsEnd);
  const gc::Value *matSlow(const ValOperand &Op);
  const gc::Value *matTpl(const ValOperand &Op);
  const TplCacheEntry &refreshTpl(const TplInfo &TI);
  const gc::Value *buildTpl(const TplInfo &TI, const TplCacheEntry &E,
                            uint32_t Id);
  const gc::Tag *materializeTag(const TagOperand &Op);
  gc::Region materializeReg(const RegOperand &Op) const {
    return Op.Kind == RegOperand::K::Slot ? Frame[Op.Slot].Reg : Op.R;
  }

  void noteChunk(const Chunk &Ch);

  gc::Machine &M;
  gc::GcContext &C;
  Lowerer Lower;

  /// Node pointer (Term or code Value) → compiled chunk.
  std::unordered_map<const void *, std::unique_ptr<Chunk>> Chunks;

  const Chunk *Cur = nullptr;
  uint32_t PC = 0;
  std::vector<FrameCell> Frame;
  /// Callee-frame staging buffer; swapped with Frame at Call. Reading
  /// argument operands from the old frame while writing the new one into a
  /// separate buffer is what makes wholesale frame replacement safe.
  std::vector<FrameCell> Scratch;

  uint64_t VmSteps = 0;
  uint64_t LowerNs = 0;
  uint64_t NumChunks = 0;
  uint64_t NumInstrs = 0;
  uint64_t StaticTypecaseSteps = 0;
  uint64_t FrameSlotsPeak = 0;
  uint64_t TplHits = 0;
  uint64_t TplMisses = 0;
};

} // namespace scav::vm

#endif // SCAV_VM_VM_H
