//===- vm/Vm.h - Bytecode execution backend for the λGC machine -*- C++ -*-===//
///
/// \file
/// VmExec is the gc::ExecBackend behind MachineConfig::EvalMode::Vm: it
/// lowers terms to vm::Chunk bytecode (lazily, cached per code value) and
/// drives a tight switch-dispatch loop. The Machine keeps ownership of every
/// observable — memory, Ψ, stats, status, journal — and the VM calls back
/// into the same Machine primitives (put/get/update, recordPut, applyOnly,
/// applyWiden, stuck, trace helpers) the interpreted modes use, so the two
/// engines cannot drift at the region-operation boundary.
///
/// Usage: construct with the machine (attaches itself), then drive the
/// machine normally; destroy before the machine (detaches itself).
///
///   gc::Machine M(C, Level, Cfg);       // Cfg.Eval == EvalMode::Vm
///   vm::VmExec Vm(M);
///   M.start(Program);
///   M.run(Budget);
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_VM_VM_H
#define SCAV_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/Lower.h"

#include "gc/Machine.h"

#include <memory>
#include <string_view>
#include <unordered_map>

namespace scav::vm {

class VmExec final : public gc::ExecBackend {
public:
  /// Attaches itself to \p M as the execution backend.
  explicit VmExec(gc::Machine &M);
  /// Detaches (if still the attached backend).
  ~VmExec() override;

  VmExec(const VmExec &) = delete;
  VmExec &operator=(const VmExec &) = delete;

  void onStart(const gc::Term *E) override;
  gc::Machine::Status step() override;
  gc::Machine::Status run(uint64_t MaxSteps) override;
  const gc::Term *currentTerm() const override;
  void exportMetrics(support::MetricsRegistry &Reg) const override;

  /// The (cached) chunk for a main term / code value; compiles on first
  /// request. Keys are node pointers — sound for code values because cd
  /// cells are never rewritten, and for main terms because the driver owns
  /// the term for the machine's lifetime.
  const Chunk *chunkForTerm(const gc::Term *E);
  const Chunk *chunkForCode(const gc::Value *Code, std::string_view Label);

  /// Every chunk compiled so far, keyed by its source node (tests and
  /// offline disassembly).
  const std::unordered_map<const void *, std::unique_ptr<Chunk>> &
  chunks() const {
    return Chunks;
  }

  // Compile/run metrics (also exported as "vm.*" via exportMetrics).
  uint64_t vmSteps() const { return VmSteps; }
  uint64_t lowerNs() const { return LowerNs; }
  uint64_t chunksCompiled() const { return NumChunks; }
  uint64_t instrsCompiled() const { return NumInstrs; }
  uint64_t staticTypecaseSteps() const { return StaticTypecaseSteps; }

private:
  gc::Machine::Status execOne();

  const gc::Value *materialize(const ValOperand &Op);
  const gc::Value *matFast(const gc::Value *V, uint32_t BindsBegin,
                           uint32_t BindsEnd);
  const gc::Value *matSlow(const ValOperand &Op);
  const gc::Value *matTpl(const ValOperand &Op);
  const TplCacheEntry &refreshTpl(const TplInfo &TI);
  const gc::Value *buildTpl(const TplInfo &TI, const TplCacheEntry &E,
                            uint32_t Id);
  const gc::Tag *materializeTag(const TagOperand &Op);
  /// Compact-heap put/set fast path: encode the operand straight to a
  /// tagged word in \p RD (no Value materialization for templates).
  /// \returns false for operand kinds that must take the slow path.
  bool tryEncodeOperand(const ValOperand &Op, gc::RegionData &RD,
                        uint64_t &W);
  uint64_t encodeFastWord(const gc::Value *V, uint32_t BindsBegin,
                          uint32_t BindsEnd, gc::RegionData &RD);
  uint64_t encodeTplWord(const TplInfo &TI, const TplCacheEntry &E,
                         uint32_t Id, gc::RegionData &RD);

  // Word frame slots (FastHeap): a Val-sort cell whose Ptr bits carry a
  // nonzero tag nibble holds a raw heap word (see FrameCell). The VM's
  // get/proj/strip/ifleft/if0/prim/put/set chains stay word-level; a word
  // decodes to a Value only when a generic consumer asks for one.
  static bool isWordCell(const FrameCell &FC) {
    return (reinterpret_cast<uintptr_t>(FC.Ptr) >> gc::heapword::TagShift) !=
           0;
  }
  static uint64_t wordOf(const FrameCell &FC) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(FC.Ptr));
  }
  static const void *wordPtr(uint64_t W) {
    return reinterpret_cast<const void *>(static_cast<uintptr_t>(W));
  }
  /// Stores word \p W (owned by \p RD) into \p FC; Box words store the
  /// boxed Value pointer directly, so Box never appears in a frame slot.
  void storeWord(FrameCell &FC, uint64_t W, const gc::RegionData &RD);
  /// Decodes \p FC's word to a Value without caching (const consumers).
  const gc::Value *decodeSlotWord(const FrameCell &FC) const;
  /// Decodes a word slot to a Value and caches the pointer back into the
  /// slot; plain passthrough for pointer slots.
  const gc::Value *slotValue(uint32_t Slot);
  /// Re-encodes the word held in \p FC for storage into \p RD.
  uint64_t transcodeSlot(const FrameCell &FC, gc::RegionData &RD);
  /// Decodes every live aux-dependent word slot before `only` can drop the
  /// region that owns its Aux table (Int/Addr payloads are inline and
  /// survive any reclaim).
  void decodeFrameWords();
  gc::Region materializeReg(const RegOperand &Op) const {
    return Op.Kind == RegOperand::K::Slot ? Frame[Op.Slot].Reg : Op.R;
  }

  void noteChunk(const Chunk &Ch);

  gc::Machine &M;
  gc::GcContext &C;
  Lowerer Lower;

  /// Word-direct put/set are sound only when cells need no Ψ tracking at
  /// write time: compact layout with TrackTypes off (recordPut is a no-op).
  const bool FastHeap;

  /// Node pointer (Term or code Value) → compiled chunk.
  std::unordered_map<const void *, std::unique_ptr<Chunk>> Chunks;

  const Chunk *Cur = nullptr;
  uint32_t PC = 0;
  std::vector<FrameCell> Frame;
  /// Callee-frame staging buffer; swapped with Frame at Call. Reading
  /// argument operands from the old frame while writing the new one into a
  /// separate buffer is what makes wholesale frame replacement safe.
  std::vector<FrameCell> Scratch;

  uint64_t VmSteps = 0;
  uint64_t LowerNs = 0;
  uint64_t NumChunks = 0;
  uint64_t NumInstrs = 0;
  uint64_t StaticTypecaseSteps = 0;
  uint64_t FrameSlotsPeak = 0;
  uint64_t TplHits = 0;
  uint64_t TplMisses = 0;
};

} // namespace scav::vm

#endif // SCAV_VM_VM_H
