//===- vm/Lower.cpp - λGC AST → flat bytecode compiler --------------------===//
///
/// \file
/// Syntax-directed lowering. The two load-bearing analyses are operand
/// classification (every operand is resolved against the *lexical* scope at
/// compile time — sound because CPS gives each instruction a unique lexical
/// path from its chunk root, so the lexical chain equals the env machine's
/// runtime environment at that point) and static typecase resolution (a
/// Const scrutinee tag is normalized at compile time, so the branch and its
/// binder tags are known before the program runs).
///
//===----------------------------------------------------------------------===//

#include "vm/Lower.h"

using namespace scav;
using namespace scav::gc;
using namespace scav::vm;

const char *scav::vm::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LetVal:
    return "let.val";
  case Opcode::LetProj1:
    return "let.proj1";
  case Opcode::LetProj2:
    return "let.proj2";
  case Opcode::LetPut:
    return "let.put";
  case Opcode::LetGet:
    return "let.get";
  case Opcode::LetStrip:
    return "let.strip";
  case Opcode::LetPrim:
    return "let.prim";
  case Opcode::Call:
    return "call";
  case Opcode::Halt:
    return "halt";
  case Opcode::IfGc:
    return "ifgc";
  case Opcode::OpenTag:
    return "open.tag";
  case Opcode::OpenTyVar:
    return "open.tyvar";
  case Opcode::OpenRegion:
    return "open.region";
  case Opcode::LetRegion:
    return "let.region";
  case Opcode::Only:
    return "only";
  case Opcode::Typecase:
    return "typecase";
  case Opcode::TypecaseStatic:
    return "typecase.static";
  case Opcode::IfLeft:
    return "ifleft";
  case Opcode::Set:
    return "set";
  case Opcode::LetWiden:
    return "let.widen";
  case Opcode::IfReg:
    return "ifreg";
  case Opcode::If0:
    return "if0";
  }
  return "unknown";
}

void Lowerer::pushScope(Symbol Sym, Sort S, uint32_t Slot) {
  Out->Scopes.push_back(ScopeNode{Top, Sym, S, Slot});
  Top = static_cast<int32_t>(Out->Scopes.size()) - 1;
  Stack.push_back(ScopeEntry{Sym, S, Slot});
}

std::optional<uint32_t> Lowerer::lookup(Symbol Sym, Sort S) const {
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
    if (It->S == S && It->Sym == Sym)
      return It->Slot;
  return std::nullopt;
}

bool Lowerer::anyScopeSym(const SymbolSet &Syms, bool TagSortOnly) const {
  for (const ScopeEntry &E : Stack) {
    if (TagSortOnly && E.S != Sort::Tag)
      continue;
    if (Syms.count(E.Sym))
      return true;
  }
  return false;
}

std::pair<uint32_t, uint32_t> Lowerer::collectBinds(const SymbolSet &Syms,
                                                    bool ValSortOnly) {
  uint32_t Begin = static_cast<uint32_t>(Out->Binds.size());
  // Innermost first; the materializers keep the first hit per (sym, sort),
  // which is exactly the env machine's shadow-by-overwrite.
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    if (ValSortOnly && It->S != Sort::Val)
      continue;
    if (!Syms.count(It->Sym))
      continue;
    bool Dup = false;
    for (uint32_t I = Begin, E = static_cast<uint32_t>(Out->Binds.size());
         I != E; ++I)
      if (Out->Binds[I].Sym == It->Sym && Out->Binds[I].S == It->S) {
        Dup = true;
        break;
      }
    if (!Dup)
      Out->Binds.push_back(BindSpec{It->Sym, It->S, It->Slot});
  }
  return {Begin, static_cast<uint32_t>(Out->Binds.size())};
}

namespace {
/// A value the Fast materializer can rebuild: constructors without binders
/// or embedded types/tags/regions. Everything else (packs, code, transapp)
/// goes through closeValue.
bool isFastTemplate(const Value *V) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Var:
  case ValueKind::Addr:
    return true;
  case ValueKind::Pair:
    return isFastTemplate(V->first()) && isFastTemplate(V->second());
  case ValueKind::Inl:
  case ValueKind::Inr:
    return isFastTemplate(V->payload());
  default:
    return false;
  }
}

/// A value the Tpl compiler can decompose: Fast shapes plus existential
/// packages and translucent applications. Code values (term bodies, binder
/// lists) stay on the closeValue path.
bool isTplTemplate(const Value *V) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Var:
  case ValueKind::Addr:
    return true;
  case ValueKind::Pair:
    return isTplTemplate(V->first()) && isTplTemplate(V->second());
  case ValueKind::Inl:
  case ValueKind::Inr:
  case ValueKind::PackTag:
  case ValueKind::PackTyVar:
  case ValueKind::PackRegion:
  case ValueKind::TransApp:
    return isTplTemplate(V->payload());
  default:
    return false;
  }
}
} // namespace

uint32_t Lowerer::addVal(const Value *V) {
  ValOperand Op;
  Op.V = V;
  if (V->is(ValueKind::Var)) {
    if (auto Slot = lookup(V->var(), Sort::Val)) {
      Op.Kind = ValOperand::K::Slot;
      Op.Slot = *Slot;
      Out->ValOps.push_back(Op);
      return static_cast<uint32_t>(Out->ValOps.size()) - 1;
    }
  }
  SymbolSet Syms;
  collectSymbols(V, Syms);
  // collectSymbols is conservative (bound symbols too), so a scope symbol
  // that only occurs *under a binder* inside the operand demotes Const to
  // Slow — harmless, closeValue masks it and returns the same node.
  if (!anyScopeSym(Syms, /*TagSortOnly=*/false)) {
    Op.Kind = ValOperand::K::Const;
  } else if (isFastTemplate(V)) {
    Op.Kind = ValOperand::K::Fast;
    std::tie(Op.BindsBegin, Op.BindsEnd) =
        collectBinds(Syms, /*ValSortOnly=*/true);
  } else if (isTplTemplate(V)) {
    Op.Kind = ValOperand::K::Tpl;
    Op.Slot = compileTpl(V);
  } else {
    Op.Kind = ValOperand::K::Slow;
    std::tie(Op.BindsBegin, Op.BindsEnd) =
        collectBinds(Syms, /*ValSortOnly=*/false);
  }
  Out->ValOps.push_back(Op);
  return static_cast<uint32_t>(Out->ValOps.size()) - 1;
}

std::pair<uint32_t, uint32_t> Lowerer::typedBinds(const SymbolSet &Syms,
                                                  TplMask Mask, TplBuild &B) {
  uint32_t Begin = static_cast<uint32_t>(Out->Binds.size());
  // Innermost first, one entry per (sym, sort) — as collectBinds — but
  // restricted to the sorts types can mention, and with the pack binder
  // (if any) excluded from substitution entirely, at every scope depth:
  // the Closer's mask hides outer bindings of the shadowed symbol too.
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    if (It->S == Sort::Val)
      continue;
    if (Mask && It->Sym == Mask->first && It->S == Mask->second)
      continue;
    if (!Syms.count(It->Sym))
      continue;
    bool Dup = false;
    for (uint32_t I = Begin, E = static_cast<uint32_t>(Out->Binds.size());
         I != E; ++I)
      if (Out->Binds[I].Sym == It->Sym && Out->Binds[I].S == It->S) {
        Dup = true;
        break;
      }
    if (!Dup) {
      Out->Binds.push_back(BindSpec{It->Sym, It->S, It->Slot});
      B.key(It->S, It->Slot);
    }
  }
  return {Begin, static_cast<uint32_t>(Out->Binds.size())};
}

uint32_t Lowerer::addTplAttTag(const Tag *T, TplBuild &B) {
  TplAtt A;
  A.Kind = TplAtt::K::Tag;
  A.Node = T;
  SymbolSet Syms;
  collectSymbols(T, Syms);
  std::tie(A.BindsBegin, A.BindsEnd) = typedBinds(Syms, std::nullopt, B);
  A.Ord = B.NumAtts++;
  Out->TplAtts.push_back(A);
  return A.Ord;
}

uint32_t Lowerer::addTplAttType(const Type *T, TplMask Mask, TplBuild &B) {
  TplAtt A;
  A.Kind = TplAtt::K::Type;
  A.Node = T;
  SymbolSet Syms;
  collectSymbols(T, Syms);
  std::tie(A.BindsBegin, A.BindsEnd) = typedBinds(Syms, Mask, B);
  A.Ord = B.NumAtts++;
  Out->TplAtts.push_back(A);
  return A.Ord;
}

uint32_t Lowerer::addTplAttDelta(const RegionSet &RS, TplBuild &B) {
  TplAtt A;
  A.Kind = TplAtt::K::Delta;
  A.Set = &RS;
  A.ArgsBegin = static_cast<uint32_t>(Out->TplArgs.size());
  for (Region R : RS) {
    uint32_t Idx = addReg(R);
    if (Out->RegOps[Idx].Kind == RegOperand::K::Slot) {
      A.AllConst = false;
      B.key(Sort::Region, Out->RegOps[Idx].Slot);
    }
    Out->TplArgs.push_back(Idx);
  }
  A.ArgsEnd = static_cast<uint32_t>(Out->TplArgs.size());
  A.Ord = B.NumDeltas++;
  Out->TplAtts.push_back(A);
  return A.Ord;
}

uint32_t Lowerer::buildTplNode(const Value *V, TplBuild &B) {
  TplNode N;
  N.V = V;
  // Subtree pruning: no in-scope symbol anywhere → the Closer would return
  // the node unchanged, so it is a compile-time constant.
  {
    SymbolSet Syms;
    collectSymbols(V, Syms);
    if (!anyScopeSym(Syms, /*TagSortOnly=*/false)) {
      N.Kind = TplNode::K::Const;
      Out->Tpls.push_back(N);
      return static_cast<uint32_t>(Out->Tpls.size()) - 1;
    }
  }
  switch (V->kind()) {
  case ValueKind::Var:
    if (auto Slot = lookup(V->var(), Sort::Val)) {
      N.Kind = TplNode::K::Slot;
      N.Slot = *Slot;
    } else {
      N.Kind = TplNode::K::Const; // unbound: stays itself, like the Closer
    }
    break;
  case ValueKind::Pair:
    N.Kind = TplNode::K::Pair;
    N.A = buildTplNode(V->first(), B);
    N.B = buildTplNode(V->second(), B);
    break;
  case ValueKind::Inl:
    N.Kind = TplNode::K::Inl;
    N.A = buildTplNode(V->payload(), B);
    break;
  case ValueKind::Inr:
    N.Kind = TplNode::K::Inr;
    N.A = buildTplNode(V->payload(), B);
    break;
  case ValueKind::PackTag:
    // Mirror the Closer's order: witness and payload close under the outer
    // scope; only the body type sees the binder masked.
    N.Kind = TplNode::K::PackTag;
    N.Att1 = addTplAttTag(V->tagWitness(), B);
    N.A = buildTplNode(V->payload(), B);
    N.Att2 = addTplAttType(V->bodyType(),
                           TplMask{{V->var(), Sort::Tag}}, B);
    break;
  case ValueKind::PackTyVar:
    N.Kind = TplNode::K::PackTyVar;
    N.Att3 = addTplAttDelta(V->delta(), B);
    N.Att1 = addTplAttType(V->typeWitness(), std::nullopt, B);
    N.A = buildTplNode(V->payload(), B);
    N.Att2 = addTplAttType(V->bodyType(),
                           TplMask{{V->var(), Sort::Type}}, B);
    break;
  case ValueKind::PackRegion:
    N.Kind = TplNode::K::PackRegion;
    N.Att3 = addTplAttDelta(V->delta(), B);
    N.Reg = addReg(V->regionWitness());
    N.A = buildTplNode(V->payload(), B);
    N.Att2 = addTplAttType(V->bodyType(),
                           TplMask{{V->var(), Sort::Region}}, B);
    break;
  case ValueKind::TransApp: {
    // The whole argument block (~τ and ~ρ) is type-layer: cache it as one
    // Trans attachment so steady-state materialization shares a single
    // TransData instead of rebuilding two vectors per step. The tag
    // attachments are pushed before the Trans attachment, so the in-order
    // refresh sees them resolved.
    N.Kind = TplNode::K::TransApp;
    N.A = buildTplNode(V->payload(), B);
    TplAtt A;
    A.Kind = TplAtt::K::Trans;
    A.ArgsBegin = static_cast<uint32_t>(Out->TplArgs.size());
    for (const Tag *T : V->transTags())
      Out->TplArgs.push_back(addTplAttTag(T, B));
    A.NumTags = static_cast<uint32_t>(Out->TplArgs.size()) - A.ArgsBegin;
    for (Region R : V->transRegions()) {
      uint32_t Idx = addReg(R);
      if (Out->RegOps[Idx].Kind == RegOperand::K::Slot)
        B.key(Sort::Region, Out->RegOps[Idx].Slot);
      Out->TplArgs.push_back(Idx);
    }
    A.ArgsEnd = static_cast<uint32_t>(Out->TplArgs.size());
    A.Ord = B.NumAtts++;
    Out->TplAtts.push_back(A);
    N.Att1 = A.Ord;
    break;
  }
  default:
    assert(false && "non-template value in Tpl operand");
    N.Kind = TplNode::K::Const;
    break;
  }
  Out->Tpls.push_back(N);
  return static_cast<uint32_t>(Out->Tpls.size()) - 1;
}

uint32_t Lowerer::compileTpl(const Value *V) {
  uint32_t InfoIdx = static_cast<uint32_t>(Out->TplInfos.size());
  Out->TplInfos.emplace_back();
  TplBuild B;
  uint32_t AttsBegin = static_cast<uint32_t>(Out->TplAtts.size());
  uint32_t Root = buildTplNode(V, B);
  TplInfo &Info = Out->TplInfos[InfoIdx];
  Info.Root = Root;
  Info.AttsBegin = AttsBegin;
  Info.AttsEnd = static_cast<uint32_t>(Out->TplAtts.size());
  Info.NumAtts = B.NumAtts;
  Info.NumDeltas = B.NumDeltas;
  Info.KeyBegin = static_cast<uint32_t>(Out->Binds.size());
  for (auto [S, Slot] : B.KeySlots)
    Out->Binds.push_back(BindSpec{gc::Symbol{}, S, Slot});
  Info.KeyEnd = static_cast<uint32_t>(Out->Binds.size());
  return InfoIdx;
}

uint32_t Lowerer::addTag(const Tag *T) {
  TagOperand Op;
  Op.T = T;
  if (T->is(TagKind::Var)) {
    if (auto Slot = lookup(T->var(), Sort::Tag)) {
      Op.Kind = TagOperand::K::Slot;
      Op.Slot = *Slot;
      Out->TagOps.push_back(Op);
      return static_cast<uint32_t>(Out->TagOps.size()) - 1;
    }
  }
  SymbolSet Syms;
  collectSymbols(T, Syms);
  // Tags only embed tags, so only tag-sort scope entries can fire.
  if (!anyScopeSym(Syms, /*TagSortOnly=*/true)) {
    Op.Kind = TagOperand::K::Const;
    // Pre-normalize: the interpreters normalize this tag at every use; for
    // a scope-independent tag the result never changes.
    Op.T = normalizeTag(C, T);
  } else {
    Op.Kind = TagOperand::K::Slow;
    std::tie(Op.BindsBegin, Op.BindsEnd) =
        collectBinds(Syms, /*ValSortOnly=*/false);
  }
  Out->TagOps.push_back(Op);
  return static_cast<uint32_t>(Out->TagOps.size()) - 1;
}

uint32_t Lowerer::addReg(Region R) {
  RegOperand Op;
  Op.R = R;
  if (R.isVar()) {
    if (auto Slot = lookup(R.sym(), Sort::Region)) {
      Op.Kind = RegOperand::K::Slot;
      Op.Slot = *Slot;
    }
    // An out-of-scope region variable stays Const and reaches its use site
    // unresolved, reproducing the interpreters' stuck diagnostics.
  }
  Out->RegOps.push_back(Op);
  return static_cast<uint32_t>(Out->RegOps.size()) - 1;
}

uint32_t Lowerer::emit(Instr I) {
  I.Scope = Top;
  Out->Code.push_back(I);
  return static_cast<uint32_t>(Out->Code.size()) - 1;
}

uint32_t Lowerer::compileTerm(const Term *E) {
  switch (E->kind()) {
  case TermKind::App: {
    Instr I;
    I.Op = Opcode::Call;
    I.Src = E;
    I.A = addVal(E->appFun());
    CallSite CS;
    for (const Tag *T : E->appTags())
      CS.Tags.push_back(addTag(T));
    for (Region R : E->appRegions())
      CS.Regions.push_back(addReg(R));
    for (const Value *V : E->appArgs())
      CS.Args.push_back(addVal(V));
    I.B = static_cast<uint32_t>(Out->Calls.size());
    Out->Calls.push_back(std::move(CS));
    return emit(I);
  }

  case TermKind::Let: {
    const Op *O = E->letOp();
    Instr I;
    I.Src = E;
    uint32_t Dest = 0;
    switch (O->kind()) {
    case OpKind::Val:
    case OpKind::Proj1:
    case OpKind::Proj2:
    case OpKind::Get:
    case OpKind::Strip:
      I.Op = O->is(OpKind::Val)     ? Opcode::LetVal
             : O->is(OpKind::Proj1) ? Opcode::LetProj1
             : O->is(OpKind::Proj2) ? Opcode::LetProj2
             : O->is(OpKind::Get)   ? Opcode::LetGet
                                    : Opcode::LetStrip;
      I.A = addVal(O->value());
      Dest = newSlot();
      I.B = Dest;
      break;
    case OpKind::Put:
      I.Op = Opcode::LetPut;
      I.A = addVal(O->value());
      I.B = addReg(O->putRegion());
      Dest = newSlot();
      I.C = Dest;
      break;
    case OpKind::Prim:
      I.Op = Opcode::LetPrim;
      I.Small = static_cast<uint8_t>(O->primOp());
      I.A = addVal(O->lhs());
      I.B = addVal(O->rhs());
      Dest = newSlot();
      I.C = Dest;
      break;
    }
    uint32_t At = emit(I);
    ScopeMark M = markScope();
    pushScope(E->binderVar(), Sort::Val, Dest);
    compileTerm(E->sub1());
    resetScope(M);
    return At;
  }

  case TermKind::Halt: {
    Instr I;
    I.Op = Opcode::Halt;
    I.Src = E;
    I.A = addVal(E->scrutinee());
    return emit(I);
  }

  case TermKind::IfGc: {
    Instr I;
    I.Op = Opcode::IfGc;
    I.Src = E;
    I.A = addReg(E->region());
    uint32_t At = emit(I);
    uint32_t Then = compileTerm(E->sub1());
    uint32_t Else = compileTerm(E->sub2());
    Out->Code[At].B = Then;
    Out->Code[At].C = Else;
    return At;
  }

  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion: {
    Instr I;
    I.Src = E;
    Sort WitnessSort = Sort::Tag;
    if (E->is(TermKind::OpenTag)) {
      I.Op = Opcode::OpenTag;
    } else if (E->is(TermKind::OpenTyVar)) {
      I.Op = Opcode::OpenTyVar;
      WitnessSort = Sort::Type;
    } else {
      I.Op = Opcode::OpenRegion;
      WitnessSort = Sort::Region;
    }
    I.A = addVal(E->scrutinee());
    uint32_t WSlot = newSlot(), PSlot = newSlot();
    I.B = WSlot;
    I.C = PSlot;
    uint32_t At = emit(I);
    ScopeMark M = markScope();
    pushScope(E->binderVar(), WitnessSort, WSlot);
    pushScope(E->binderVar2(), Sort::Val, PSlot);
    compileTerm(E->sub1());
    resetScope(M);
    return At;
  }

  case TermKind::LetRegion: {
    Instr I;
    I.Op = Opcode::LetRegion;
    I.Src = E;
    I.Sym = E->binderVar();
    uint32_t Slot = newSlot();
    I.A = Slot;
    uint32_t At = emit(I);
    ScopeMark M = markScope();
    pushScope(E->binderVar(), Sort::Region, Slot);
    compileTerm(E->sub1());
    resetScope(M);
    return At;
  }

  case TermKind::Only: {
    Instr I;
    I.Op = Opcode::Only;
    I.Src = E;
    RegSetOp RS;
    RS.Set = E->onlySet();
    for (Region R : E->onlySet()) {
      uint32_t Idx = addReg(R);
      if (Out->RegOps[Idx].Kind != RegOperand::K::Const)
        RS.AllConst = false;
      RS.Elems.push_back(Idx);
    }
    I.A = static_cast<uint32_t>(Out->RegSets.size());
    Out->RegSets.push_back(std::move(RS));
    uint32_t At = emit(I);
    compileTerm(E->sub1());
    return At;
  }

  case TermKind::Typecase: {
    Instr I;
    I.Src = E;
    I.A = addTag(E->tag());
    const TagOperand &TOp = Out->TagOps[I.A];
    TagKind SK = TOp.Kind == TagOperand::K::Const ? TOp.T->kind()
                                                  : TagKind::Var;
    bool Static = TOp.Kind == TagOperand::K::Const &&
                  (SK == TagKind::Int || SK == TagKind::Arrow ||
                   SK == TagKind::Prod || SK == TagKind::Exists);
    I.Op = Static ? Opcode::TypecaseStatic : Opcode::Typecase;

    TypecaseInfo TI;
    TI.ProdSlot1 = newSlot();
    TI.ProdSlot2 = newSlot();
    TI.ExistsSlot = newSlot();
    if (Static) {
      TI.StaticKind = SK;
      if (SK == TagKind::Prod) {
        TI.StaticA = TOp.T->left();
        TI.StaticB = TOp.T->right();
      } else if (SK == TagKind::Exists) {
        // Same closure the interpreters build at every analysis of ∃t.τ.
        TI.StaticA = C.tagLam(TOp.T->var(), C.omega(), TOp.T->body());
      }
    }
    uint32_t TIdx = static_cast<uint32_t>(Out->Typecases.size());
    Out->Typecases.push_back(TI);
    I.B = TIdx;
    uint32_t At = emit(I);

    // All four branches are compiled even for the static form: dead-branch
    // code is tiny and keeps the listing (and Src anchoring) uniform.
    uint32_t IntT = compileTerm(E->caseInt());
    uint32_t ArrowT = compileTerm(E->caseArrow());
    ScopeMark M = markScope();
    pushScope(E->prodVar1(), Sort::Tag, TI.ProdSlot1);
    pushScope(E->prodVar2(), Sort::Tag, TI.ProdSlot2);
    uint32_t ProdT = compileTerm(E->caseProd());
    resetScope(M);
    pushScope(E->existsVar(), Sort::Tag, TI.ExistsSlot);
    uint32_t ExistsT = compileTerm(E->caseExists());
    resetScope(M);

    TypecaseInfo &Patched = Out->Typecases[TIdx];
    Patched.IntT = IntT;
    Patched.ArrowT = ArrowT;
    Patched.ProdT = ProdT;
    Patched.ExistsT = ExistsT;
    return At;
  }

  case TermKind::IfLeft: {
    Instr I;
    I.Op = Opcode::IfLeft;
    I.Src = E;
    I.A = addVal(E->scrutinee());
    uint32_t Slot = newSlot();
    I.B = Slot;
    uint32_t At = emit(I);
    ScopeMark M = markScope();
    pushScope(E->binderVar(), Sort::Val, Slot);
    uint32_t Then = compileTerm(E->sub1());
    resetScope(M);
    pushScope(E->binderVar(), Sort::Val, Slot);
    uint32_t Else = compileTerm(E->sub2());
    resetScope(M);
    Out->Code[At].C = Then;
    Out->Code[At].D = Else;
    return At;
  }

  case TermKind::Set: {
    Instr I;
    I.Op = Opcode::Set;
    I.Src = E;
    I.A = addVal(E->scrutinee());
    I.B = addVal(E->setSource());
    uint32_t At = emit(I);
    compileTerm(E->sub1());
    return At;
  }

  case TermKind::LetWiden: {
    Instr I;
    I.Op = Opcode::LetWiden;
    I.Src = E;
    I.A = addVal(E->scrutinee());
    I.B = addReg(E->region());
    uint32_t Slot = newSlot();
    I.C = Slot;
    uint32_t At = emit(I);
    ScopeMark M = markScope();
    pushScope(E->binderVar(), Sort::Val, Slot);
    compileTerm(E->sub1());
    resetScope(M);
    return At;
  }

  case TermKind::IfReg: {
    Instr I;
    I.Op = Opcode::IfReg;
    I.Src = E;
    I.A = addReg(E->ifregLhs());
    I.B = addReg(E->ifregRhs());
    uint32_t At = emit(I);
    uint32_t Then = compileTerm(E->sub1());
    uint32_t Else = compileTerm(E->sub2());
    Out->Code[At].C = Then;
    Out->Code[At].D = Else;
    return At;
  }

  case TermKind::If0: {
    Instr I;
    I.Op = Opcode::If0;
    I.Src = E;
    I.A = addVal(E->scrutinee());
    uint32_t At = emit(I);
    uint32_t Then = compileTerm(E->sub1());
    uint32_t Else = compileTerm(E->sub2());
    Out->Code[At].B = Then;
    Out->Code[At].C = Else;
    return At;
  }
  }
  assert(false && "unknown term form");
  return 0;
}

std::unique_ptr<Chunk> Lowerer::lowerMain(const Term *E, std::string Label) {
  auto Ch = std::make_unique<Chunk>();
  Ch->Label = std::move(Label);
  Out = Ch.get();
  Stack.clear();
  Top = -1;
  compileTerm(E);
  Out = nullptr;
  return Ch;
}

std::unique_ptr<Chunk> Lowerer::lowerCode(const Value *Code,
                                          std::string Label) {
  assert(Code->is(ValueKind::Code) && "lowerCode on non-code value");
  auto Ch = std::make_unique<Chunk>();
  Ch->Label = std::move(Label);
  Ch->CodeVal = Code;
  Out = Ch.get();
  Stack.clear();
  Top = -1;
  for (Symbol S : Code->tagParams())
    pushScope(S, Sort::Tag, newSlot());
  for (Symbol S : Code->regionParams())
    pushScope(S, Sort::Region, newSlot());
  for (Symbol S : Code->valParams())
    pushScope(S, Sort::Val, newSlot());
  Ch->NumTagParams = static_cast<uint32_t>(Code->tagParams().size());
  Ch->NumRegionParams = static_cast<uint32_t>(Code->regionParams().size());
  Ch->NumValParams = static_cast<uint32_t>(Code->valParams().size());
  compileTerm(Code->codeBody());
  Out = nullptr;
  return Ch;
}
