//===- vm/Bytecode.h - Flat bytecode for the λGC machine -------*- C++ -*-===//
///
/// \file
/// The compiled form of a λGC term (DESIGN.md §3.10): enum-tagged
/// instructions in one contiguous vector, with every auxiliary payload
/// (operands, call sites, typecase tables, scope chains) pooled in
/// side-vectors indexed by uint32. One instruction executes exactly one
/// Fig 5 machine step, so MachineStats::Steps and every stuck diagnostic
/// agree with the interpreted modes byte for byte.
///
/// Design constraints that shaped the layout:
///
///  * CPS continuations become jump targets: control flow is a PC within a
///    Chunk plus chunk-to-chunk transfer at `Call` (App), which replaces
///    the whole frame — closure-converted code bodies are closed up to
///    their parameters, exactly like the env machine's wholesale
///    environment replacement.
///  * Environment slots are resolved to frame indices at compile time
///    (Lower.cpp); shadowing is resolved lexically to the innermost
///    binder, mirroring the env machine's shadow-by-overwrite.
///  * Operands are classified once at compile time (see ValOperand) so the
///    dispatch loop never consults a hash table.
///  * gc::Region has a non-trivial default constructor, so Instr holds no
///    unions — just pool indices; the pools hold the typed payloads.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_VM_BYTECODE_H
#define SCAV_VM_BYTECODE_H

#include "gc/Term.h"

#include <string>
#include <vector>

namespace scav::vm {

/// One opcode per λGC step rule (Let is split by its operation, typecase
/// by whether the scrutinee tag was statically known).
enum class Opcode : uint8_t {
  LetVal,
  LetProj1,
  LetProj2,
  LetPut,
  LetGet,
  LetStrip,
  LetPrim,
  Call,
  Halt,
  IfGc,
  OpenTag,
  OpenTyVar,
  OpenRegion,
  LetRegion,
  Only,
  Typecase,
  /// `typecase` whose scrutinee tag is a compile-time constant: the branch
  /// and its binder tags are pre-resolved (seeded from SpecializeCopy's
  /// static-tag specialization idea). Still counts a TypecaseStep.
  TypecaseStatic,
  IfLeft,
  Set,
  LetWiden,
  IfReg,
  If0,
};

const char *opcodeName(Opcode Op);

/// Which of the four variable sorts a frame slot / scope entry holds.
enum class Sort : uint8_t { Val, Tag, Type, Region };

/// One runtime frame cell. The sort is known statically from the operand
/// that reads the slot, so values/tags/types share one pointer; regions
/// (not a pointer type) get their own member.
///
/// Compact-heap fast path (DESIGN.md §3.12): a Val-sort cell may hold a raw
/// heap word instead of a `const Value *`. The two are distinguished by the
/// tag nibble — arena pointers never set bits 60..63, every non-Hole word
/// does. WordRegion is the dense region id whose Aux table a Pair/InlAux/
/// InrAux word's payload indexes; it is written together with every word
/// store and meaningless when Ptr holds a real pointer.
struct FrameCell {
  const void *Ptr = nullptr;
  gc::Region Reg;
  uint32_t WordRegion = 0;
};

/// Compile-time binding used by template materialization: symbol → frame
/// slot, innermost binder first. Lists are short (only symbols that occur
/// in the template), so the runtime lookup is a linear scan — no hashing.
struct BindSpec {
  gc::Symbol Sym;
  Sort S = Sort::Val;
  uint32_t Slot = 0;
};

/// A value operand, classified at compile time against the lexical scope:
///
///  * Const — no in-scope symbol occurs anywhere in the node: the env
///    machine's close would return it unchanged (even if it has free
///    variables — they would be unbound there too), so the original node
///    is used verbatim. This keeps stuck diagnostics byte-identical.
///  * Slot  — the operand is exactly an in-scope variable: one frame load.
///  * Fast  — a binder-free constructor template (pairs / inl / inr over
///    ints, addresses, and variables): rebuilt by a tiny recursive
///    materializer with a linear-scan bind list.
///  * Tpl   — a constructor template containing existential packages or
///    translucent applications (the collector's hot-path values): compiled
///    to a TplNode tree whose type/tag/region-set attachments are resolved
///    through a per-operand inline cache (see TplInfo), so steady-state
///    materialization rebuilds only the value spine.
///  * Slow  — anything else with binders (code values): a restricted Subst
///    is built from the bind list and gc::closeValue runs, which handles
///    shadow masking exactly as the env machine does.
struct ValOperand {
  enum class K : uint8_t { Const, Slot, Fast, Tpl, Slow };
  K Kind = K::Const;
  uint32_t Slot = 0; ///< Slot: frame slot. Tpl: TplInfo pool index.
  const gc::Value *V = nullptr;
  uint32_t BindsBegin = 0, BindsEnd = 0; ///< [begin, end) into Chunk::Binds
};

/// A tag operand. Const tags are pre-normalized at compile time — sound
/// because every tag that enters a frame is already β-normal (App and
/// open-as-tag normalize witnesses; typecase binds subterms of normal
/// forms), which is the same invariant the env machine maintains.
struct TagOperand {
  enum class K : uint8_t { Const, Slot, Slow };
  K Kind = K::Const;
  uint32_t Slot = 0;
  const gc::Tag *T = nullptr;
  uint32_t BindsBegin = 0, BindsEnd = 0;
};

/// A region operand. Const covers both concrete names and out-of-scope
/// variables — the latter reach the use site unresolved and produce the
/// interpreter's exact "unresolved region variable" diagnostics.
struct RegOperand {
  enum class K : uint8_t { Const, Slot };
  K Kind = K::Const;
  uint32_t Slot = 0;
  gc::Region R;
};

/// Pooled payload of a Call instruction: operand indices per parameter
/// sort, plus a monomorphic inline cache (code value pointer → compiled
/// chunk) maintained by the executor.
struct CallSite {
  std::vector<uint32_t> Tags;    ///< TagOperand indices
  std::vector<uint32_t> Regions; ///< RegOperand indices
  std::vector<uint32_t> Args;    ///< ValOperand indices
  mutable const gc::Value *CachedCode = nullptr;
  mutable const void *CachedChunk = nullptr;
};

/// Pooled payload of Typecase / TypecaseStatic: the four branch targets,
/// the binder slots of the prod / exists branches, and — for the static
/// form — the pre-resolved case and binder tags.
struct TypecaseInfo {
  uint32_t IntT = 0, ArrowT = 0, ProdT = 0, ExistsT = 0;
  uint32_t ProdSlot1 = 0, ProdSlot2 = 0, ExistsSlot = 0;
  gc::TagKind StaticKind = gc::TagKind::Int;
  const gc::Tag *StaticA = nullptr; ///< prod left / exists λ-closure
  const gc::Tag *StaticB = nullptr; ///< prod right
};

/// Pooled payload of Only: the keep set. When every element is Const the
/// original (already canonically sorted) RegionSet is reused without
/// rebuilding; otherwise the set is rebuilt from per-element operands.
struct RegSetOp {
  gc::RegionSet Set;
  bool AllConst = true;
  std::vector<uint32_t> Elems; ///< RegOperand indices, one per element
};

/// One node of a compiled constructor template (ValOperand::K::Tpl). The
/// value spine (pairs, injections, package payloads) is rebuilt on every
/// materialization; type-level attachments — pack witnesses, body types,
/// region-set deltas — are read from the owning TplInfo's attachment cache,
/// which is refreshed only when one of the frame slots the type layer
/// depends on changes. Soundness: λGC types never contain values, so closed
/// types depend only on the tag/type/region slots captured in the cache
/// key; the substitution itself is the same closeTag/closeType the env
/// machine runs, with pack-binder masking resolved at compile time (the
/// Closer masks, it never renames).
struct TplNode {
  enum class K : uint8_t {
    Const,      ///< verbatim arena node (no in-scope symbol occurs)
    Slot,       ///< in-scope Val variable: one frame load
    Pair,       ///< A=first, B=second
    Inl,        ///< A=payload
    Inr,        ///< A=payload
    PackTag,    ///< A=payload, Att1=witness tag, Att2=body type
    PackTyVar,  ///< A=payload, Att1=witness type, Att2=body type, Att3=delta
    PackRegion, ///< A=payload, Reg=witness region op, Att2=body, Att3=delta
    TransApp,   ///< A=payload, Att1=Trans attachment (cached argument block)
  };
  K Kind = K::Const;
  const gc::Value *V = nullptr; ///< source node (binder symbol, Const value)
  uint32_t Slot = 0;
  uint32_t A = 0, B = 0;            ///< child TplNode indices
  uint32_t Att1 = 0, Att2 = 0;      ///< attachment ordinals (CachedAtts)
  uint32_t Att3 = 0;                ///< delta ordinal (CachedDeltas)
  uint32_t Reg = 0;                 ///< PackRegion: RegOperand index
  uint32_t ArgsBegin = 0, ArgsEnd = 0, NumTags = 0; ///< TransApp arg range
};

/// One cached type-layer attachment of a Tpl operand: a tag or type
/// template closed against the binds range, a region-set delta rebuilt
/// from per-element region operands, or a TransApp argument block (the
/// pinned ~τ/~ρ vectors, shared by every value built from the cache).
/// Binds exclude the owning pack's binder symbol (compile-time masking).
struct TplAtt {
  enum class K : uint8_t { Tag, Type, Delta, Trans };
  K Kind = K::Tag;
  const void *Node = nullptr; ///< Tag* / Type* template; Delta/Trans: unused
  uint32_t BindsBegin = 0, BindsEnd = 0; ///< Tag/Type: Chunk::Binds range
  uint32_t Ord = 0; ///< CachedAtts index (Tag/Type/Trans), CachedDeltas (Delta)
  // Delta: element RegOperand indices; AllConst reuses Set verbatim.
  // Trans: NumTags tag-attachment ordinals, then RegOperand indices.
  uint32_t ArgsBegin = 0, ArgsEnd = 0; ///< [begin,end) into Chunk::TplArgs
  uint32_t NumTags = 0;                ///< Trans only
  const gc::RegionSet *Set = nullptr;  ///< Delta: the template's own set
  bool AllConst = true;
};

/// One resolved attachment set of a Tpl operand, keyed by the contents of
/// the operand's key slots at resolution time. Atts/Deltas hold
/// arena-allocated nodes: values built from the cache reference them by
/// pointer, so entries are immutable once built (eviction just forgets
/// the pointers; the arena keeps the nodes alive).
struct TplCacheEntry {
  std::vector<FrameCell> Key;
  std::vector<const void *> Atts; ///< Tag* / Type* / TransData* by ordinal
  std::vector<const gc::RegionSet *> Deltas;
};

/// The per-operand payload of a Tpl value operand: the root node, the
/// attachment list, and a small MRU cache. Key slots are the union of every
/// frame slot the attachments read; when their contents match a cached
/// entry's key, that entry's attachments are reused without running a
/// substitution. The cache holds several entries because collector loops
/// alternate between the few tag shapes of the scanned heap (int cell,
/// pair cell, ...) — a single entry would ping-pong and re-close per step.
struct TplInfo {
  /// Distinct key contents a Tpl operand sees in steady state is bounded by
  /// the scanned heap's tag alphabet; 4 covers every λGC level's collector.
  static constexpr size_t MaxCacheEntries = 4;

  uint32_t Root = 0;
  uint32_t AttsBegin = 0, AttsEnd = 0; ///< [begin,end) into Chunk::TplAtts
  uint32_t KeyBegin = 0, KeyEnd = 0;   ///< key slots, Chunk::Binds range
  uint32_t NumAtts = 0, NumDeltas = 0;
  // Inline cache (single-threaded executor, like CallSite's code cache),
  // most-recently-used first.
  mutable std::vector<TplCacheEntry> Cache;
};

/// A node of the compile-time scope chain: which symbol the enclosing
/// binder bound, at which slot, of which sort. Instr::Scope points at the
/// innermost node in effect when the instruction executes; walking Parent
/// links innermost→outermost and keeping the first occurrence per symbol
/// reconstructs exactly the env machine's environment — which is how
/// currentTerm() rebuilds the paper's substituted (M, e) state.
struct ScopeNode {
  int32_t Parent = -1;
  gc::Symbol Sym;
  Sort S = Sort::Val;
  uint32_t Slot = 0;
};

/// One instruction. Field meaning by opcode (all pool indices):
///
///   LetVal/LetProj1/LetProj2/LetGet/LetStrip  A=val  B=dest slot
///   LetPrim       A=lhs val  B=rhs val  C=dest slot  Small=PrimOp
///   LetPut        A=val      B=region   C=dest slot
///   Call          A=fun val  B=CallSite
///   Halt          A=val
///   IfGc          A=region   B=then pc  C=else pc
///   OpenTag/OpenTyVar/OpenRegion  A=val  B=witness slot  C=payload slot
///   LetRegion     A=dest slot  Sym=binder (region base name)
///   Only          A=RegSetOp
///   Typecase(+Static)  A=tag  B=TypecaseInfo
///   IfLeft        A=val  B=dest slot  C=then pc  D=else pc
///   Set           A=dst val  B=src val
///   LetWiden      A=val  B=to-region  C=dest slot
///   IfReg         A=lhs region  B=rhs region  C=then pc  D=else pc
///   If0           A=val  B=then pc  C=else pc
///
/// Non-branching instructions fall through to PC+1 (their continuation is
/// laid out immediately after); Call and Halt terminate the chunk's path.
struct Instr {
  Opcode Op = Opcode::Halt;
  uint8_t Small = 0;
  uint32_t A = 0, B = 0, C = 0, D = 0;
  gc::Symbol Sym;
  /// The original subterm this instruction was lowered from: the anchor
  /// for trace step events, diagnostics, and currentTerm reconstruction.
  const gc::Term *Src = nullptr;
  /// Scope chain in effect when this instruction executes (-1 = empty).
  int32_t Scope = -1;
};

/// A compiled code body (or main term): the instruction vector plus every
/// pool it indexes. Compiled once per Code value and cached by the
/// executor; pointers into the GcContext arena (operand nodes, Src terms,
/// pre-normalized tags) stay valid for the context's lifetime.
struct Chunk {
  std::vector<Instr> Code;
  std::vector<ValOperand> ValOps;
  std::vector<TagOperand> TagOps;
  std::vector<RegOperand> RegOps;
  std::vector<BindSpec> Binds;
  std::vector<CallSite> Calls;
  std::vector<TypecaseInfo> Typecases;
  std::vector<RegSetOp> RegSets;
  std::vector<ScopeNode> Scopes;
  std::vector<TplNode> Tpls;
  std::vector<TplAtt> TplAtts;
  std::vector<uint32_t> TplArgs;
  std::vector<TplInfo> TplInfos;
  uint32_t NumSlots = 0;
  uint32_t NumTagParams = 0, NumRegionParams = 0, NumValParams = 0;
  const gc::Value *CodeVal = nullptr; ///< null for a main-term chunk
  std::string Label;                  ///< cd label / "main" (disassembly)
};

} // namespace scav::vm

#endif // SCAV_VM_BYTECODE_H
