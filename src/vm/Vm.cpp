//===- vm/Vm.cpp - Bytecode dispatch loop ---------------------------------===//
///
/// \file
/// The dispatch loop. Every case mirrors the corresponding branch of
/// Machine::step() (Machine.cpp) exactly — same stat-increment order, same
/// stuck messages, same trace events — with environment work replaced by
/// frame-slot loads resolved at lowering time. One instruction is one
/// machine step. Diffs against both interpreters live in
/// tests/gc_machine_vm_diff_test.cpp; keep the two files in lockstep.
///
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include <chrono>

using namespace scav;
using namespace scav::gc;
using namespace scav::vm;

VmExec::VmExec(Machine &M) : M(M), C(M.context()), Lower(M.context()) {
  M.attachBackend(this);
}

VmExec::~VmExec() {
  if (M.backend() == this)
    M.attachBackend(nullptr);
}

//===----------------------------------------------------------------------===//
// Chunk cache
//===----------------------------------------------------------------------===//

void VmExec::noteChunk(const Chunk &Ch) {
  ++NumChunks;
  NumInstrs += Ch.Code.size();
  if (SCAV_TRACE_ENABLED()) {
    support::TraceSink &Sink = support::TraceSink::get();
    Sink.instant("vm", "vm.lower");
    Sink.counter("vm_code_instrs", static_cast<double>(NumInstrs));
  }
}

const Chunk *VmExec::chunkForTerm(const Term *E) {
  auto It = Chunks.find(E);
  if (It != Chunks.end())
    return It->second.get();
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<Chunk> Ch = Lower.lowerMain(E, "main");
  LowerNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  noteChunk(*Ch);
  return Chunks.emplace(E, std::move(Ch)).first->second.get();
}

const Chunk *VmExec::chunkForCode(const Value *Code, std::string_view Label) {
  auto It = Chunks.find(Code);
  if (It != Chunks.end())
    return It->second.get();
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<Chunk> Ch = Lower.lowerCode(Code, std::string(Label));
  LowerNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  noteChunk(*Ch);
  return Chunks.emplace(Code, std::move(Ch)).first->second.get();
}

//===----------------------------------------------------------------------===//
// Operand materialization
//===----------------------------------------------------------------------===//

const Value *VmExec::matFast(const Value *V, uint32_t BindsBegin,
                             uint32_t BindsEnd) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return V;
  case ValueKind::Var: {
    Symbol S = V->var();
    for (uint32_t I = BindsBegin; I != BindsEnd; ++I) {
      const BindSpec &B = Cur->Binds[I];
      if (B.Sym == S)
        return static_cast<const Value *>(Frame[B.Slot].Ptr);
    }
    return V; // unbound, as in the interpreters
  }
  case ValueKind::Pair: {
    const Value *A = matFast(V->first(), BindsBegin, BindsEnd);
    const Value *B = matFast(V->second(), BindsBegin, BindsEnd);
    // Preserve pointer identity when nothing fired (closeValue does too;
    // it keeps the put-type cache hot on repeated stores of one template).
    return (A == V->first() && B == V->second()) ? V : C.valPair(A, B);
  }
  case ValueKind::Inl: {
    const Value *P = matFast(V->payload(), BindsBegin, BindsEnd);
    return P == V->payload() ? V : C.valInl(P);
  }
  case ValueKind::Inr: {
    const Value *P = matFast(V->payload(), BindsBegin, BindsEnd);
    return P == V->payload() ? V : C.valInr(P);
  }
  default:
    assert(false && "non-template value in Fast operand");
    return V;
  }
}

const Value *VmExec::matSlow(const ValOperand &Op) {
  // Build the restricted environment (only symbols occurring in the
  // operand, innermost binding per sym/sort — emplace keeps the first,
  // which collectBinds stored innermost-first) and run the same closing
  // substitution the env machine uses. Binder masking, capture avoidance,
  // and pointer-identity preservation all come from closeValue itself.
  Subst S;
  for (uint32_t I = Op.BindsBegin; I != Op.BindsEnd; ++I) {
    const BindSpec &B = Cur->Binds[I];
    switch (B.S) {
    case Sort::Val:
      S.Vals.emplace(B.Sym, static_cast<const Value *>(Frame[B.Slot].Ptr));
      break;
    case Sort::Tag:
      S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
      break;
    case Sort::Type:
      S.Types.emplace(B.Sym, static_cast<const Type *>(Frame[B.Slot].Ptr));
      break;
    case Sort::Region:
      S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
      break;
    }
  }
  return closeValue(C, Op.V, S);
}

const TplCacheEntry &VmExec::refreshTpl(const TplInfo &TI) {
  // Key check: the attachments depend only on these tag/type/region slots
  // (λGC types never contain values), so matching contents mean every
  // cached attachment is still what closeTag/closeType would produce.
  // MRU scan: collector loops alternate between the scanned heap's few tag
  // shapes, so the match is almost always in the first entry or two.
  const uint32_t KeyLen = TI.KeyEnd - TI.KeyBegin;
  for (size_t E = 0; E != TI.Cache.size(); ++E) {
    const TplCacheEntry &Ent = TI.Cache[E];
    bool Hit = true;
    for (uint32_t I = 0; I != KeyLen; ++I) {
      // Compare only the field the slot's sort populates: frame writers
      // fill .Ptr or .Reg, never both, and the other field keeps whatever
      // the recycled frame buffer last held.
      const BindSpec &B = Cur->Binds[TI.KeyBegin + I];
      const FrameCell &Cell = Frame[B.Slot];
      if (B.S == Sort::Region ? Cell.Reg != Ent.Key[I].Reg
                              : Cell.Ptr != Ent.Key[I].Ptr) {
        Hit = false;
        break;
      }
    }
    if (Hit) {
      ++TplHits;
      if (E != 0)
        std::swap(TI.Cache[0], TI.Cache[E]); // move to front
      return TI.Cache[0];
    }
  }
  ++TplMisses;
  if (TI.Cache.size() == TplInfo::MaxCacheEntries)
    TI.Cache.pop_back(); // evict least-recently-used
  TI.Cache.emplace(TI.Cache.begin());
  TplCacheEntry &New = TI.Cache.front();
  New.Key.resize(KeyLen);
  for (uint32_t I = 0; I != KeyLen; ++I)
    New.Key[I] = Frame[Cur->Binds[TI.KeyBegin + I].Slot];
  New.Atts.resize(TI.NumAtts);
  New.Deltas.resize(TI.NumDeltas);
  for (uint32_t AI = TI.AttsBegin; AI != TI.AttsEnd; ++AI) {
    const TplAtt &A = Cur->TplAtts[AI];
    switch (A.Kind) {
    case TplAtt::K::Tag: {
      const Tag *T = static_cast<const Tag *>(A.Node);
      if (A.BindsBegin != A.BindsEnd) {
        Subst S;
        for (uint32_t I = A.BindsBegin; I != A.BindsEnd; ++I) {
          const BindSpec &B = Cur->Binds[I];
          switch (B.S) {
          case Sort::Tag:
            S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Type:
            S.Types.emplace(B.Sym,
                            static_cast<const Type *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Region:
            S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
            break;
          case Sort::Val:
            break; // typedBinds never stores Val binds
          }
        }
        T = closeTag(C, T, S); // no normalize — matches the Closer exactly
      }
      New.Atts[A.Ord] = T;
      break;
    }
    case TplAtt::K::Type: {
      const Type *T = static_cast<const Type *>(A.Node);
      if (A.BindsBegin != A.BindsEnd) {
        Subst S;
        for (uint32_t I = A.BindsBegin; I != A.BindsEnd; ++I) {
          const BindSpec &B = Cur->Binds[I];
          switch (B.S) {
          case Sort::Tag:
            S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Type:
            S.Types.emplace(B.Sym,
                            static_cast<const Type *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Region:
            S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
            break;
          case Sort::Val:
            break;
          }
        }
        T = closeType(C, T, S);
      }
      New.Atts[A.Ord] = T;
      break;
    }
    case TplAtt::K::Delta: {
      if (A.AllConst) {
        New.Deltas[A.Ord] = A.Set; // the template's own (arena) set
      } else {
        RegionSet RS;
        for (uint32_t I = A.ArgsBegin; I != A.ArgsEnd; ++I)
          RS.insert(materializeReg(Cur->RegOps[Cur->TplArgs[I]]));
        New.Deltas[A.Ord] = C.allocRegionSet(std::move(RS));
      }
      break;
    }
    case TplAtt::K::Trans: {
      std::vector<const Tag *> Tags;
      Tags.reserve(A.NumTags);
      uint32_t I = A.ArgsBegin;
      for (uint32_t E = A.ArgsBegin + A.NumTags; I != E; ++I)
        Tags.push_back(static_cast<const Tag *>(New.Atts[Cur->TplArgs[I]]));
      std::vector<Region> Regs;
      Regs.reserve(A.ArgsEnd - I);
      for (; I != A.ArgsEnd; ++I)
        Regs.push_back(materializeReg(Cur->RegOps[Cur->TplArgs[I]]));
      New.Atts[A.Ord] = C.allocTransData(std::move(Tags), std::move(Regs));
      break;
    }
    }
  }
  return New;
}

const Value *VmExec::buildTpl(const TplInfo &TI, const TplCacheEntry &E,
                              uint32_t Id) {
  const TplNode &N = Cur->Tpls[Id];
  switch (N.Kind) {
  case TplNode::K::Const:
    return N.V;
  case TplNode::K::Slot:
    return static_cast<const Value *>(Frame[N.Slot].Ptr);
  case TplNode::K::Pair:
    return C.valPair(buildTpl(TI, E, N.A), buildTpl(TI, E, N.B));
  case TplNode::K::Inl:
    return C.valInl(buildTpl(TI, E, N.A));
  case TplNode::K::Inr:
    return C.valInr(buildTpl(TI, E, N.A));
  case TplNode::K::PackTag:
    return C.valPackTag(N.V->var(), static_cast<const Tag *>(E.Atts[N.Att1]),
                        buildTpl(TI, E, N.A),
                        static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::PackTyVar:
    return C.valPackTyVar(N.V->var(), E.Deltas[N.Att3],
                          static_cast<const Type *>(E.Atts[N.Att1]),
                          buildTpl(TI, E, N.A),
                          static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::PackRegion:
    return C.valPackRegion(N.V->var(), E.Deltas[N.Att3],
                           materializeReg(Cur->RegOps[N.Reg]),
                           buildTpl(TI, E, N.A),
                           static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::TransApp:
    return C.valTransApp(buildTpl(TI, E, N.A),
                         static_cast<const TransData *>(E.Atts[N.Att1]));
  }
  return N.V;
}

const Value *VmExec::matTpl(const ValOperand &Op) {
  const TplInfo &TI = Cur->TplInfos[Op.Slot];
  const TplCacheEntry &E = refreshTpl(TI);
  return buildTpl(TI, E, TI.Root);
}

const Value *VmExec::materialize(const ValOperand &Op) {
  switch (Op.Kind) {
  case ValOperand::K::Const:
    return Op.V;
  case ValOperand::K::Slot:
    return static_cast<const Value *>(Frame[Op.Slot].Ptr);
  case ValOperand::K::Fast:
    return matFast(Op.V, Op.BindsBegin, Op.BindsEnd);
  case ValOperand::K::Tpl:
    return matTpl(Op);
  case ValOperand::K::Slow:
    return matSlow(Op);
  }
  return Op.V;
}

const Tag *VmExec::materializeTag(const TagOperand &Op) {
  switch (Op.Kind) {
  case TagOperand::K::Const:
    return Op.T; // pre-normalized at lowering time
  case TagOperand::K::Slot: {
    // Frame tags are already normal (they entered through App/open/typecase
    // binds, all of which normalize), so the inline normal-bit check skips
    // the call; normalizeTag handles any remaining non-normal form.
    const Tag *T = static_cast<const Tag *>(Frame[Op.Slot].Ptr);
    return T->isNormal() ? T : normalizeTag(C, T);
  }
  case TagOperand::K::Slow: {
    Subst S;
    for (uint32_t I = Op.BindsBegin; I != Op.BindsEnd; ++I) {
      const BindSpec &B = Cur->Binds[I];
      if (B.S == Sort::Tag)
        S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
    }
    return normalizeTag(C, closeTag(C, Op.T, S));
  }
  }
  return Op.T;
}

//===----------------------------------------------------------------------===//
// Backend interface
//===----------------------------------------------------------------------===//

void VmExec::onStart(const Term *E) {
  Cur = chunkForTerm(E);
  PC = 0;
  Frame.assign(Cur->NumSlots, FrameCell{});
  if (Cur->NumSlots > FrameSlotsPeak)
    FrameSlotsPeak = Cur->NumSlots;
}

const Term *VmExec::currentTerm() const {
  if (!Cur)
    return nullptr;
  const Instr &I = Cur->Code[PC];
  if (I.Scope < 0)
    return I.Src;
  // Rebuild the env machine's environment from the scope chain (innermost
  // first; emplace keeps the innermost binding per sym/sort) and force it
  // into the source term — the same substituted (M, e) view Env mode
  // produces, including after halt/stuck, because PC parks on the final
  // instruction.
  Subst S;
  for (int32_t N = I.Scope; N >= 0; N = Cur->Scopes[N].Parent) {
    const ScopeNode &SN = Cur->Scopes[N];
    switch (SN.S) {
    case Sort::Val:
      S.Vals.emplace(SN.Sym, static_cast<const Value *>(Frame[SN.Slot].Ptr));
      break;
    case Sort::Tag:
      S.Tags.emplace(SN.Sym, static_cast<const Tag *>(Frame[SN.Slot].Ptr));
      break;
    case Sort::Type:
      S.Types.emplace(SN.Sym, static_cast<const Type *>(Frame[SN.Slot].Ptr));
      break;
    case Sort::Region:
      S.Regions.emplace(SN.Sym, Frame[SN.Slot].Reg);
      break;
    }
  }
  return closeTerm(C, I.Src, S);
}

Machine::Status VmExec::step() {
  if (M.St != Machine::Status::Running)
    return M.St;
  return execOne();
}

Machine::Status VmExec::run(uint64_t MaxSteps) {
  for (uint64_t I = 0; I != MaxSteps && M.St == Machine::Status::Running; ++I)
    execOne();
  return M.St;
}

void VmExec::exportMetrics(support::MetricsRegistry &Reg) const {
  Reg.setCounter("vm.steps", VmSteps);
  Reg.setCounter("vm.lower_ns", LowerNs);
  Reg.setCounter("vm.chunks", NumChunks);
  Reg.setCounter("vm.instrs", NumInstrs);
  Reg.setCounter("vm.typecase_static_steps", StaticTypecaseSteps);
  Reg.setCounter("vm.tpl_hits", TplHits);
  Reg.setCounter("vm.tpl_misses", TplMisses);
  Reg.setGauge("vm.frame_slots_peak", static_cast<double>(FrameSlotsPeak));
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

Machine::Status VmExec::execOne() {
  if (!Cur)
    return M.stuck("vm backend attached after start (no compiled program)");
  const Instr &I = Cur->Code[PC];
  ++M.Stats.Steps;
  ++VmSteps;
  if (SCAV_TRACE_ENABLED()) {
    M.traceStep(I.Src);
    if (M.Stats.Steps % 64 == 0)
      support::TraceSink::get().counter(
          "vm_frame_slots", static_cast<double>(Cur->NumSlots));
  }

  switch (I.Op) {
  case Opcode::LetVal:
    Frame[I.B].Ptr = materialize(Cur->ValOps[I.A]);
    ++PC;
    return M.St;

  case Opcode::LetProj1:
  case Opcode::LetProj2: {
    ++M.Stats.Projections;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Pair))
      return M.stuck("projection from non-pair: " + printValue(C, V));
    Frame[I.B].Ptr = I.Op == Opcode::LetProj1 ? V->first() : V->second();
    ++PC;
    return M.St;
  }

  case Opcode::LetPut: {
    ++M.Stats.Puts;
    Region R = materializeReg(Cur->RegOps[I.B]);
    if (!R.isName())
      return M.stuck("put into unresolved region variable " +
                     printRegion(C, R));
    const Value *SV = materialize(Cur->ValOps[I.A]);
    std::optional<Address> A = M.Mem.put(R.sym(), SV);
    if (!A)
      return M.stuck(M.Mem.hasRegion(R.sym())
                         ? "put overflows the region offset space of " +
                               printRegion(C, R)
                         : "put into reclaimed region " + printRegion(C, R));
    M.recordPut(*A, SV);
    Frame[I.C].Ptr = C.valAddr(*A);
    ++PC;
    return M.St;
  }

  case Opcode::LetGet: {
    ++M.Stats.Gets;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Addr))
      return M.stuck("get of non-address: " + printValue(C, V));
    const Value *Cell = M.Mem.get(V->address());
    if (!Cell)
      return M.stuck("get of dangling address: " + printValue(C, V));
    Frame[I.B].Ptr = Cell;
    ++PC;
    return M.St;
  }

  case Opcode::LetStrip: {
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Inl) && !V->is(ValueKind::Inr))
      return M.stuck("strip of untagged value: " + printValue(C, V));
    Frame[I.B].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::LetPrim: {
    const Value *L = materialize(Cur->ValOps[I.A]);
    const Value *R = materialize(Cur->ValOps[I.B]);
    if (!L->is(ValueKind::Int) || !R->is(ValueKind::Int))
      return M.stuck("primitive on non-integers");
    int64_t A = L->intValue(), B = R->intValue(), Res = 0;
    switch (static_cast<PrimOp>(I.Small)) {
    case PrimOp::Add:
      Res = A + B;
      break;
    case PrimOp::Sub:
      Res = A - B;
      break;
    case PrimOp::Mul:
      Res = A * B;
      break;
    case PrimOp::Le:
      Res = A <= B ? 1 : 0;
      break;
    }
    Frame[I.C].Ptr = C.valInt(Res);
    ++PC;
    return M.St;
  }

  case Opcode::Call: {
    ++M.Stats.Applications;
    const Value *F = materialize(Cur->ValOps[I.A]);
    if (F->is(ValueKind::TransApp))
      F = F->payload(); // (vJ~τK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v)
    if (!F->is(ValueKind::Addr))
      return M.stuck("application of non-address value: " + printValue(C, F));
    if (SCAV_TRACE_ENABLED())
      M.traceAppPhase(F->address());
    const Value *Code = M.Mem.get(F->address());
    if (!Code)
      return M.stuck("application of dangling code address: " +
                     printValue(C, F));
    if (!Code->is(ValueKind::Code))
      return M.stuck("application of non-code cell: " + printValue(C, F));
    const CallSite &CS = Cur->Calls[I.B];
    if (Code->tagParams().size() != CS.Tags.size() ||
        Code->regionParams().size() != CS.Regions.size() ||
        Code->valParams().size() != CS.Args.size())
      return M.stuck("application arity mismatch at " + printValue(C, F));

    // Monomorphic inline cache: cd cells are immutable once defined, so a
    // code value pointer keys its compiled chunk for good.
    const Chunk *Callee;
    if (CS.CachedCode == Code) {
      Callee = static_cast<const Chunk *>(CS.CachedChunk);
    } else {
      Callee = chunkForCode(Code, M.codeLabel(F->address().Offset));
      CS.CachedCode = Code;
      CS.CachedChunk = Callee;
    }

    // Materialize the callee frame into the staging buffer (reads come
    // from the live frame), then swap: wholesale environment replacement.
    if (Scratch.size() < Callee->NumSlots)
      Scratch.resize(Callee->NumSlots);
    uint32_t S = 0;
    for (uint32_t TIdx : CS.Tags)
      Scratch[S++].Ptr = materializeTag(Cur->TagOps[TIdx]);
    for (uint32_t RIdx : CS.Regions) {
      Region R = materializeReg(Cur->RegOps[RIdx]);
      if (!R.isName())
        return M.stuck("application with unresolved region variable " +
                       printRegion(C, R));
      Scratch[S++].Reg = R;
    }
    for (uint32_t VIdx : CS.Args)
      Scratch[S++].Ptr = materialize(Cur->ValOps[VIdx]);
    std::swap(Frame, Scratch);
    if (Frame.size() < Callee->NumSlots)
      Frame.resize(Callee->NumSlots);
    Cur = Callee;
    PC = 0;
    if (Callee->NumSlots > FrameSlotsPeak)
      FrameSlotsPeak = Callee->NumSlots;
    return M.St;
  }

  case Opcode::Halt: {
    const Value *V = materialize(Cur->ValOps[I.A]);
    M.St = Machine::Status::Halted;
    M.HaltVal = V;
    return M.St; // PC parks here; currentTerm still sees the halt term
  }

  case Opcode::IfGc: {
    Region R = materializeReg(Cur->RegOps[I.A]);
    if (!R.isName())
      return M.stuck("ifgc on unresolved region variable");
    if (M.Mem.isFull(R.sym())) {
      ++M.Stats.IfGcTaken;
      TRACE_INSTANT("collector", "ifgc.taken");
      PC = I.B;
    } else {
      ++M.Stats.IfGcSkipped;
      PC = I.C;
    }
    return M.St;
  }

  case Opcode::OpenTag: {
    ++M.Stats.Opens;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::PackTag))
      return M.stuck("open-as-tag of non-package: " + printValue(C, V));
    Frame[I.B].Ptr = V->tagWitness()->isNormal()
                         ? V->tagWitness()
                         : normalizeTag(C, V->tagWitness());
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::OpenTyVar: {
    ++M.Stats.Opens;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::PackTyVar))
      return M.stuck("open-as-type of non-package: " + printValue(C, V));
    Frame[I.B].Ptr = V->typeWitness();
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::OpenRegion: {
    ++M.Stats.Opens;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::PackRegion))
      return M.stuck("open-as-region of non-package: " + printValue(C, V));
    if (!V->regionWitness().isName())
      return M.stuck("region package with unresolved witness");
    Frame[I.B].Reg = V->regionWitness();
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::LetRegion: {
    Region R = M.createRegion(C.name(I.Sym), 0);
    Frame[I.A].Reg = R;
    ++PC;
    return M.St;
  }

  case Opcode::Only: {
    ++M.Stats.OnlyOps;
    M.Stats.OnlyRegionsScanned += M.Mem.numRegions();
    const RegSetOp &RS = Cur->RegSets[I.A];
    RegionSet Resolved;
    const RegionSet *Keep = &RS.Set;
    if (!RS.AllConst) {
      for (uint32_t Idx : RS.Elems)
        Resolved.insert(materializeReg(Cur->RegOps[Idx]));
      Keep = &Resolved;
    }
    for (Region R : *Keep)
      if (!R.isName())
        return M.stuck("only with unresolved region variable");
    M.applyOnly(*Keep);
    ++PC;
    return M.St;
  }

  case Opcode::Typecase: {
    ++M.Stats.TypecaseSteps;
    const Tag *T = materializeTag(Cur->TagOps[I.A]);
    const TypecaseInfo &TI = Cur->Typecases[I.B];
    switch (T->kind()) {
    case TagKind::Int:
      PC = TI.IntT;
      return M.St;
    case TagKind::Arrow:
      PC = TI.ArrowT;
      return M.St;
    case TagKind::Prod:
      Frame[TI.ProdSlot1].Ptr = T->left();
      Frame[TI.ProdSlot2].Ptr = T->right();
      PC = TI.ProdT;
      return M.St;
    case TagKind::Exists:
      Frame[TI.ExistsSlot].Ptr = C.tagLam(T->var(), C.omega(), T->body());
      PC = TI.ExistsT;
      return M.St;
    default:
      return M.stuck("typecase on non-constructor tag: " + printTag(C, T));
    }
  }

  case Opcode::TypecaseStatic: {
    // The scrutinee was a compile-time constant; branch and binder tags
    // were resolved at lowering time. Still one machine step.
    ++M.Stats.TypecaseSteps;
    ++StaticTypecaseSteps;
    const TypecaseInfo &TI = Cur->Typecases[I.B];
    switch (TI.StaticKind) {
    case TagKind::Int:
      PC = TI.IntT;
      return M.St;
    case TagKind::Arrow:
      PC = TI.ArrowT;
      return M.St;
    case TagKind::Prod:
      Frame[TI.ProdSlot1].Ptr = TI.StaticA;
      Frame[TI.ProdSlot2].Ptr = TI.StaticB;
      PC = TI.ProdT;
      return M.St;
    case TagKind::Exists:
      Frame[TI.ExistsSlot].Ptr = TI.StaticA;
      PC = TI.ExistsT;
      return M.St;
    default:
      assert(false && "non-constructor kind in static typecase");
      return M.St;
    }
  }

  case Opcode::IfLeft: {
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (V->is(ValueKind::Inl)) {
      Frame[I.B].Ptr = V;
      PC = I.C;
    } else if (V->is(ValueKind::Inr)) {
      Frame[I.B].Ptr = V;
      PC = I.D;
    } else {
      return M.stuck("ifleft of untagged value: " + printValue(C, V));
    }
    return M.St;
  }

  case Opcode::Set: {
    ++M.Stats.Sets;
    const Value *Dst = materialize(Cur->ValOps[I.A]);
    if (!Dst->is(ValueKind::Addr))
      return M.stuck("set of non-address: " + printValue(C, Dst));
    if (!M.Mem.update(Dst->address(), materialize(Cur->ValOps[I.B])))
      return M.stuck("set of dangling address: " + printValue(C, Dst));
    TRACE_INSTANT("mem", "set.forward");
    ++PC;
    return M.St;
  }

  case Opcode::LetWiden: {
    ++M.Stats.Widens;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Addr))
      return M.stuck("widen of non-address value: " + printValue(C, V));
    Region To = materializeReg(Cur->RegOps[I.B]);
    if (!To.isName())
      return M.stuck("widen with unresolved to-region");
    M.applyWiden(V->address().R.sym(), To.sym());
    Frame[I.C].Ptr = V; // widen is a no-op on data (§7.1)
    ++PC;
    return M.St;
  }

  case Opcode::IfReg: {
    Region A = materializeReg(Cur->RegOps[I.A]);
    Region B = materializeReg(Cur->RegOps[I.B]);
    if (!A.isName() || !B.isName())
      return M.stuck("ifreg on unresolved region variable");
    PC = A == B ? I.C : I.D;
    return M.St;
  }

  case Opcode::If0: {
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Int))
      return M.stuck("if0 of non-integer: " + printValue(C, V));
    PC = V->intValue() == 0 ? I.B : I.C;
    return M.St;
  }
  }
  return M.stuck("unknown vm opcode");
}
