//===- vm/Vm.cpp - Bytecode dispatch loop ---------------------------------===//
///
/// \file
/// The dispatch loop. Every case mirrors the corresponding branch of
/// Machine::step() (Machine.cpp) exactly — same stat-increment order, same
/// stuck messages, same trace events — with environment work replaced by
/// frame-slot loads resolved at lowering time. One instruction is one
/// machine step. Diffs against both interpreters live in
/// tests/gc_machine_vm_diff_test.cpp; keep the two files in lockstep.
///
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include <chrono>

using namespace scav;
using namespace scav::gc;
using namespace scav::vm;

VmExec::VmExec(Machine &M)
    : M(M), C(M.context()), Lower(M.context()),
      FastHeap(M.memory().compact() && !M.config().TrackTypes) {
  M.attachBackend(this);
}

VmExec::~VmExec() {
  if (M.backend() == this)
    M.attachBackend(nullptr);
}

//===----------------------------------------------------------------------===//
// Chunk cache
//===----------------------------------------------------------------------===//

void VmExec::noteChunk(const Chunk &Ch) {
  ++NumChunks;
  NumInstrs += Ch.Code.size();
  if (SCAV_TRACE_ENABLED()) {
    support::TraceSink &Sink = support::TraceSink::get();
    Sink.instant("vm", "vm.lower");
    Sink.counter("vm_code_instrs", static_cast<double>(NumInstrs));
  }
}

const Chunk *VmExec::chunkForTerm(const Term *E) {
  auto It = Chunks.find(E);
  if (It != Chunks.end())
    return It->second.get();
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<Chunk> Ch = Lower.lowerMain(E, "main");
  LowerNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  noteChunk(*Ch);
  return Chunks.emplace(E, std::move(Ch)).first->second.get();
}

const Chunk *VmExec::chunkForCode(const Value *Code, std::string_view Label) {
  auto It = Chunks.find(Code);
  if (It != Chunks.end())
    return It->second.get();
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<Chunk> Ch = Lower.lowerCode(Code, std::string(Label));
  LowerNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  noteChunk(*Ch);
  return Chunks.emplace(Code, std::move(Ch)).first->second.get();
}

//===----------------------------------------------------------------------===//
// Operand materialization
//===----------------------------------------------------------------------===//

const Value *VmExec::matFast(const Value *V, uint32_t BindsBegin,
                             uint32_t BindsEnd) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return V;
  case ValueKind::Var: {
    Symbol S = V->var();
    for (uint32_t I = BindsBegin; I != BindsEnd; ++I) {
      const BindSpec &B = Cur->Binds[I];
      if (B.Sym == S)
        return slotValue(B.Slot);
    }
    return V; // unbound, as in the interpreters
  }
  case ValueKind::Pair: {
    const Value *A = matFast(V->first(), BindsBegin, BindsEnd);
    const Value *B = matFast(V->second(), BindsBegin, BindsEnd);
    // Preserve pointer identity when nothing fired (closeValue does too;
    // it keeps the put-type cache hot on repeated stores of one template).
    return (A == V->first() && B == V->second()) ? V : C.valPair(A, B);
  }
  case ValueKind::Inl: {
    const Value *P = matFast(V->payload(), BindsBegin, BindsEnd);
    return P == V->payload() ? V : C.valInl(P);
  }
  case ValueKind::Inr: {
    const Value *P = matFast(V->payload(), BindsBegin, BindsEnd);
    return P == V->payload() ? V : C.valInr(P);
  }
  default:
    assert(false && "non-template value in Fast operand");
    return V;
  }
}

const Value *VmExec::matSlow(const ValOperand &Op) {
  // Build the restricted environment (only symbols occurring in the
  // operand, innermost binding per sym/sort — emplace keeps the first,
  // which collectBinds stored innermost-first) and run the same closing
  // substitution the env machine uses. Binder masking, capture avoidance,
  // and pointer-identity preservation all come from closeValue itself.
  Subst S;
  for (uint32_t I = Op.BindsBegin; I != Op.BindsEnd; ++I) {
    const BindSpec &B = Cur->Binds[I];
    switch (B.S) {
    case Sort::Val:
      S.Vals.emplace(B.Sym, slotValue(B.Slot));
      break;
    case Sort::Tag:
      S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
      break;
    case Sort::Type:
      S.Types.emplace(B.Sym, static_cast<const Type *>(Frame[B.Slot].Ptr));
      break;
    case Sort::Region:
      S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
      break;
    }
  }
  return closeValue(C, Op.V, S);
}

const TplCacheEntry &VmExec::refreshTpl(const TplInfo &TI) {
  // Key check: the attachments depend only on these tag/type/region slots
  // (λGC types never contain values), so matching contents mean every
  // cached attachment is still what closeTag/closeType would produce.
  // MRU scan: collector loops alternate between the scanned heap's few tag
  // shapes, so the match is almost always in the first entry or two.
  const uint32_t KeyLen = TI.KeyEnd - TI.KeyBegin;
  for (size_t E = 0; E != TI.Cache.size(); ++E) {
    const TplCacheEntry &Ent = TI.Cache[E];
    bool Hit = true;
    for (uint32_t I = 0; I != KeyLen; ++I) {
      // Compare only the field the slot's sort populates: frame writers
      // fill .Ptr or .Reg, never both, and the other field keeps whatever
      // the recycled frame buffer last held.
      const BindSpec &B = Cur->Binds[TI.KeyBegin + I];
      const FrameCell &Cell = Frame[B.Slot];
      if (B.S == Sort::Region ? Cell.Reg != Ent.Key[I].Reg
                              : Cell.Ptr != Ent.Key[I].Ptr) {
        Hit = false;
        break;
      }
    }
    if (Hit) {
      ++TplHits;
      if (E != 0)
        std::swap(TI.Cache[0], TI.Cache[E]); // move to front
      return TI.Cache[0];
    }
  }
  ++TplMisses;
  if (TI.Cache.size() == TplInfo::MaxCacheEntries)
    TI.Cache.pop_back(); // evict least-recently-used
  TI.Cache.emplace(TI.Cache.begin());
  TplCacheEntry &New = TI.Cache.front();
  New.Key.resize(KeyLen);
  for (uint32_t I = 0; I != KeyLen; ++I)
    New.Key[I] = Frame[Cur->Binds[TI.KeyBegin + I].Slot];
  New.Atts.resize(TI.NumAtts);
  New.Deltas.resize(TI.NumDeltas);
  for (uint32_t AI = TI.AttsBegin; AI != TI.AttsEnd; ++AI) {
    const TplAtt &A = Cur->TplAtts[AI];
    switch (A.Kind) {
    case TplAtt::K::Tag: {
      const Tag *T = static_cast<const Tag *>(A.Node);
      if (A.BindsBegin != A.BindsEnd) {
        Subst S;
        for (uint32_t I = A.BindsBegin; I != A.BindsEnd; ++I) {
          const BindSpec &B = Cur->Binds[I];
          switch (B.S) {
          case Sort::Tag:
            S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Type:
            S.Types.emplace(B.Sym,
                            static_cast<const Type *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Region:
            S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
            break;
          case Sort::Val:
            break; // typedBinds never stores Val binds
          }
        }
        T = closeTag(C, T, S); // no normalize — matches the Closer exactly
      }
      New.Atts[A.Ord] = T;
      break;
    }
    case TplAtt::K::Type: {
      const Type *T = static_cast<const Type *>(A.Node);
      if (A.BindsBegin != A.BindsEnd) {
        Subst S;
        for (uint32_t I = A.BindsBegin; I != A.BindsEnd; ++I) {
          const BindSpec &B = Cur->Binds[I];
          switch (B.S) {
          case Sort::Tag:
            S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Type:
            S.Types.emplace(B.Sym,
                            static_cast<const Type *>(Frame[B.Slot].Ptr));
            break;
          case Sort::Region:
            S.Regions.emplace(B.Sym, Frame[B.Slot].Reg);
            break;
          case Sort::Val:
            break;
          }
        }
        T = closeType(C, T, S);
      }
      New.Atts[A.Ord] = T;
      break;
    }
    case TplAtt::K::Delta: {
      if (A.AllConst) {
        New.Deltas[A.Ord] = A.Set; // the template's own (arena) set
      } else {
        RegionSet RS;
        for (uint32_t I = A.ArgsBegin; I != A.ArgsEnd; ++I)
          RS.insert(materializeReg(Cur->RegOps[Cur->TplArgs[I]]));
        New.Deltas[A.Ord] = C.allocRegionSet(std::move(RS));
      }
      break;
    }
    case TplAtt::K::Trans: {
      std::vector<const Tag *> Tags;
      Tags.reserve(A.NumTags);
      uint32_t I = A.ArgsBegin;
      for (uint32_t E = A.ArgsBegin + A.NumTags; I != E; ++I)
        Tags.push_back(static_cast<const Tag *>(New.Atts[Cur->TplArgs[I]]));
      std::vector<Region> Regs;
      Regs.reserve(A.ArgsEnd - I);
      for (; I != A.ArgsEnd; ++I)
        Regs.push_back(materializeReg(Cur->RegOps[Cur->TplArgs[I]]));
      New.Atts[A.Ord] = C.allocTransData(std::move(Tags), std::move(Regs));
      break;
    }
    }
  }
  return New;
}

const Value *VmExec::buildTpl(const TplInfo &TI, const TplCacheEntry &E,
                              uint32_t Id) {
  const TplNode &N = Cur->Tpls[Id];
  switch (N.Kind) {
  case TplNode::K::Const:
    return N.V;
  case TplNode::K::Slot:
    return slotValue(N.Slot);
  case TplNode::K::Pair:
    return C.valPair(buildTpl(TI, E, N.A), buildTpl(TI, E, N.B));
  case TplNode::K::Inl:
    return C.valInl(buildTpl(TI, E, N.A));
  case TplNode::K::Inr:
    return C.valInr(buildTpl(TI, E, N.A));
  case TplNode::K::PackTag:
    return C.valPackTag(N.V->var(), static_cast<const Tag *>(E.Atts[N.Att1]),
                        buildTpl(TI, E, N.A),
                        static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::PackTyVar:
    return C.valPackTyVar(N.V->var(), E.Deltas[N.Att3],
                          static_cast<const Type *>(E.Atts[N.Att1]),
                          buildTpl(TI, E, N.A),
                          static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::PackRegion:
    return C.valPackRegion(N.V->var(), E.Deltas[N.Att3],
                           materializeReg(Cur->RegOps[N.Reg]),
                           buildTpl(TI, E, N.A),
                           static_cast<const Type *>(E.Atts[N.Att2]));
  case TplNode::K::TransApp:
    return C.valTransApp(buildTpl(TI, E, N.A),
                         static_cast<const TransData *>(E.Atts[N.Att1]));
  }
  return N.V;
}

const Value *VmExec::matTpl(const ValOperand &Op) {
  const TplInfo &TI = Cur->TplInfos[Op.Slot];
  const TplCacheEntry &E = refreshTpl(TI);
  return buildTpl(TI, E, TI.Root);
}

const Value *VmExec::materialize(const ValOperand &Op) {
  switch (Op.Kind) {
  case ValOperand::K::Const:
    return Op.V;
  case ValOperand::K::Slot:
    return slotValue(Op.Slot);
  case ValOperand::K::Fast:
    return matFast(Op.V, Op.BindsBegin, Op.BindsEnd);
  case ValOperand::K::Tpl:
    return matTpl(Op);
  case ValOperand::K::Slow:
    return matSlow(Op);
  }
  return Op.V;
}

const Tag *VmExec::materializeTag(const TagOperand &Op) {
  switch (Op.Kind) {
  case TagOperand::K::Const:
    return Op.T; // pre-normalized at lowering time
  case TagOperand::K::Slot: {
    // Frame tags are already normal (they entered through App/open/typecase
    // binds, all of which normalize), so the inline normal-bit check skips
    // the call; normalizeTag handles any remaining non-normal form.
    const Tag *T = static_cast<const Tag *>(Frame[Op.Slot].Ptr);
    return T->isNormal() ? T : normalizeTag(C, T);
  }
  case TagOperand::K::Slow: {
    Subst S;
    for (uint32_t I = Op.BindsBegin; I != Op.BindsEnd; ++I) {
      const BindSpec &B = Cur->Binds[I];
      if (B.S == Sort::Tag)
        S.Tags.emplace(B.Sym, static_cast<const Tag *>(Frame[B.Slot].Ptr));
    }
    return normalizeTag(C, closeTag(C, Op.T, S));
  }
  }
  return Op.T;
}

//===----------------------------------------------------------------------===//
// Word frame slots (compact heap)
//===----------------------------------------------------------------------===//

void VmExec::storeWord(FrameCell &FC, uint64_t W, const RegionData &RD) {
  using namespace gc::heapword;
  if (tagOf(W) == WordTag::Box) {
    // Boxed cells keep the original pointer; decoding here is free and
    // keeps the no-Box-in-slots invariant that the other word paths rely
    // on (their region-liveness reasoning only covers aux payloads).
    FC.Ptr = RD.Boxed[indexOf(W)];
    return;
  }
  FC.Ptr = wordPtr(W);
  FC.WordRegion = RD.Id;
}

const Value *VmExec::decodeSlotWord(const FrameCell &FC) const {
  using namespace gc::heapword;
  uint64_t W = wordOf(FC);
  switch (tagOf(W)) {
  case WordTag::Int:
    return C.valInt(intOf(W));
  case WordTag::Addr:
    return C.valAddr(Address{
        Region::name(M.Mem.regionIdSymbol(addrRegionId(W))), addrOffset(W)});
  case WordTag::InlAddr:
  case WordTag::InrAddr: {
    const Value *P = C.valAddr(Address{
        Region::name(M.Mem.regionIdSymbol(addrRegionId(W))), addrOffset(W)});
    return tagOf(W) == WordTag::InlAddr ? C.valInl(P) : C.valInr(P);
  }
  default: {
    // Aux-dependent payload: the owning region is alive (decodeFrameWords
    // runs before every `only`, so no live slot outlives its region).
    const RegionData *RD = M.Mem.regionById(FC.WordRegion);
    assert(RD && "word slot outlived its region");
    return M.Mem.decodeWord(*RD, W);
  }
  }
}

const Value *VmExec::slotValue(uint32_t Slot) {
  FrameCell &FC = Frame[Slot];
  if (!isWordCell(FC))
    return static_cast<const Value *>(FC.Ptr);
  const Value *V = decodeSlotWord(FC);
  FC.Ptr = V; // cache: the slot is read again far more often than not
  return V;
}

uint64_t VmExec::transcodeSlot(const FrameCell &FC, RegionData &RD) {
  using namespace gc::heapword;
  uint64_t W = wordOf(FC);
  switch (tagOf(W)) {
  case WordTag::Int:
  case WordTag::Addr:
  case WordTag::InlAddr:
  case WordTag::InrAddr:
    return W; // region-independent: valid in any region, even a dead source
  default: {
    const RegionData *Src = M.Mem.regionById(FC.WordRegion);
    assert(Src && "word slot outlived its region");
    return M.Mem.transcodeWord(*Src, W, RD);
  }
  }
}

void VmExec::decodeFrameWords() {
  using namespace gc::heapword;
  for (uint32_t S = 0; S != Cur->NumSlots; ++S) {
    FrameCell &FC = Frame[S];
    if (!isWordCell(FC))
      continue;
    uint64_t W = wordOf(FC);
    WordTag T = tagOf(W);
    if (!isAuxTag(T))
      continue; // inline payloads survive any reclaim
    const RegionData *RD = M.Mem.regionById(FC.WordRegion);
    if (!RD)
      continue; // stale bits in a recycled cell, never read as a Val slot
    // Bounds guard against stale bits whose region id was reused: a live
    // slot's aux indices are always in range (Aux only grows).
    size_t Need = size_t(indexOf(W)) + auxSpan(T);
    if (Need > RD->Aux.size())
      continue;
    FC.Ptr = M.Mem.decodeWord(*RD, W);
  }
}

//===----------------------------------------------------------------------===//
// Compact-heap word-direct store paths
//===----------------------------------------------------------------------===//

/// matFast ∘ encodeValue fused at the word level: templates whose leaves are
/// ints/addresses/bound slots encode straight into \p RD's word tables with
/// no intermediate Value allocation. Aux slot order may differ from
/// Memory::encodeValue (indices are explicit, decode does not care).
uint64_t VmExec::encodeFastWord(const Value *V, uint32_t BindsBegin,
                                uint32_t BindsEnd, RegionData &RD) {
  using namespace gc::heapword;
  switch (V->kind()) {
  case ValueKind::Int: {
    int64_t N = V->intValue();
    if (fitsInt(N))
      return makeInt(N);
    return M.Mem.encodeValue(RD, V);
  }
  case ValueKind::Addr:
    return M.Mem.encodeValue(RD, V);
  case ValueKind::Var: {
    Symbol S = V->var();
    for (uint32_t I = BindsBegin; I != BindsEnd; ++I) {
      const BindSpec &B = Cur->Binds[I];
      if (B.Sym == S) {
        const FrameCell &FC = Frame[B.Slot];
        if (isWordCell(FC))
          return transcodeSlot(FC, RD); // word-to-word, no Value round-trip
        return M.Mem.encodeValue(RD, static_cast<const Value *>(FC.Ptr));
      }
    }
    return M.Mem.encodeValue(RD, V); // unbound: boxed, as the decode of a
                                     // legacy put of the bare Var would be
  }
  case ValueKind::Pair: {
    if (RD.Aux.size() + 2 > size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD,
                               matFast(V, BindsBegin, BindsEnd)); // boxes
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.push_back(Hole);
    RD.Aux.push_back(Hole);
    uint64_t First = encodeFastWord(V->first(), BindsBegin, BindsEnd, RD);
    uint64_t Second = encodeFastWord(V->second(), BindsBegin, BindsEnd, RD);
    RD.Aux[I] = First;
    RD.Aux[I + 1] = Second;
    return make(WordTag::Pair, I);
  }
  case ValueKind::Inl:
  case ValueKind::Inr: {
    bool IsInl = V->is(ValueKind::Inl);
    uint64_t Child = encodeFastWord(V->payload(), BindsBegin, BindsEnd, RD);
    if (tagOf(Child) == WordTag::Addr)
      return make(IsInl ? WordTag::InlAddr : WordTag::InrAddr,
                  Child & PayloadMask);
    if (RD.Aux.size() >= size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, matFast(V, BindsBegin, BindsEnd));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.push_back(Child);
    return make(IsInl ? WordTag::InlAux : WordTag::InrAux, I);
  }
  default:
    assert(false && "non-template value in Fast operand");
    return M.Mem.encodeValue(RD, V);
  }
}

/// buildTpl ∘ encodeValue fused at the word level: pack template nodes write
/// their attachment pointers (already resolved in the cache entry) straight
/// into \p RD's Aux table, so a collector-copy put allocates no Value at
/// all. Nodes the word format cannot express (TransApp, non-packable
/// pointers) fall back to buildTpl + encodeValue for that subtree.
uint64_t VmExec::encodeTplWord(const TplInfo &TI, const TplCacheEntry &E,
                               uint32_t Id, RegionData &RD) {
  using namespace gc::heapword;
  const TplNode &N = Cur->Tpls[Id];
  switch (N.Kind) {
  case TplNode::K::Const:
    return M.Mem.encodeValue(RD, N.V);
  case TplNode::K::Slot: {
    const FrameCell &FC = Frame[N.Slot];
    if (isWordCell(FC))
      return transcodeSlot(FC, RD);
    return M.Mem.encodeValue(RD, static_cast<const Value *>(FC.Ptr));
  }
  case TplNode::K::Pair: {
    if (RD.Aux.size() + 2 > size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.push_back(Hole);
    RD.Aux.push_back(Hole);
    uint64_t First = encodeTplWord(TI, E, N.A, RD);
    uint64_t Second = encodeTplWord(TI, E, N.B, RD);
    RD.Aux[I] = First;
    RD.Aux[I + 1] = Second;
    return make(WordTag::Pair, I);
  }
  case TplNode::K::Inl:
  case TplNode::K::Inr: {
    bool IsInl = N.Kind == TplNode::K::Inl;
    uint64_t Child = encodeTplWord(TI, E, N.A, RD);
    if (tagOf(Child) == WordTag::Addr)
      return make(IsInl ? WordTag::InlAddr : WordTag::InrAddr,
                  Child & PayloadMask);
    if (RD.Aux.size() >= size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.push_back(Child);
    return make(IsInl ? WordTag::InlAux : WordTag::InrAux, I);
  }
  case TplNode::K::PackTag: {
    const void *Witness = E.Atts[N.Att1];
    const void *Body = E.Atts[N.Att2];
    if (!packable(Witness) || !packable(Body) ||
        RD.Aux.size() + 4 > size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.resize(I + 4, Hole);
    RD.Aux[I] = encodeTplWord(TI, E, N.A, RD);
    RD.Aux[I + 1] = symBits(N.V->var());
    RD.Aux[I + 2] = ptrBits(Witness);
    RD.Aux[I + 3] = ptrBits(Body);
    return make(WordTag::PackTagAux, I);
  }
  case TplNode::K::PackTyVar: {
    const RegionSet *Delta = E.Deltas[N.Att3];
    const void *Witness = E.Atts[N.Att1];
    const void *Body = E.Atts[N.Att2];
    if (!packable(Delta) || !packable(Witness) || !packable(Body) ||
        RD.Aux.size() + 5 > size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.resize(I + 5, Hole);
    RD.Aux[I] = encodeTplWord(TI, E, N.A, RD);
    RD.Aux[I + 1] = symBits(N.V->var());
    RD.Aux[I + 2] = ptrBits(Delta);
    RD.Aux[I + 3] = ptrBits(Witness);
    RD.Aux[I + 4] = ptrBits(Body);
    return make(WordTag::PackTyVarAux, I);
  }
  case TplNode::K::PackRegion: {
    const RegionSet *Delta = E.Deltas[N.Att3];
    const void *Body = E.Atts[N.Att2];
    if (!packable(Delta) || !packable(Body) ||
        RD.Aux.size() + 5 > size_t(std::numeric_limits<uint32_t>::max()))
      return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
    uint32_t I = static_cast<uint32_t>(RD.Aux.size());
    RD.Aux.resize(I + 5, Hole);
    RD.Aux[I] = encodeTplWord(TI, E, N.A, RD);
    RD.Aux[I + 1] = symBits(N.V->var());
    RD.Aux[I + 2] = ptrBits(Delta);
    RD.Aux[I + 3] = regionBits(materializeReg(Cur->RegOps[N.Reg]));
    RD.Aux[I + 4] = ptrBits(Body);
    return make(WordTag::PackRegionAux, I);
  }
  case TplNode::K::TransApp:
    return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
  }
  return M.Mem.encodeValue(RD, buildTpl(TI, E, Id));
}

bool VmExec::tryEncodeOperand(const ValOperand &Op, RegionData &RD,
                              uint64_t &W) {
  switch (Op.Kind) {
  case ValOperand::K::Const:
    W = M.Mem.encodeValue(RD, Op.V);
    return true;
  case ValOperand::K::Slot: {
    const FrameCell &FC = Frame[Op.Slot];
    if (isWordCell(FC)) {
      W = transcodeSlot(FC, RD);
      return true;
    }
    W = M.Mem.encodeValue(RD, static_cast<const Value *>(FC.Ptr));
    return true;
  }
  case ValOperand::K::Fast:
    W = encodeFastWord(Op.V, Op.BindsBegin, Op.BindsEnd, RD);
    return true;
  case ValOperand::K::Tpl: {
    const TplInfo &TI = Cur->TplInfos[Op.Slot];
    const TplCacheEntry &E = refreshTpl(TI);
    W = encodeTplWord(TI, E, TI.Root, RD);
    return true;
  }
  case ValOperand::K::Slow:
    return false; // substitution machinery wants real values
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Backend interface
//===----------------------------------------------------------------------===//

void VmExec::onStart(const Term *E) {
  Cur = chunkForTerm(E);
  PC = 0;
  Frame.assign(Cur->NumSlots, FrameCell{});
  if (Cur->NumSlots > FrameSlotsPeak)
    FrameSlotsPeak = Cur->NumSlots;
}

const Term *VmExec::currentTerm() const {
  if (!Cur)
    return nullptr;
  const Instr &I = Cur->Code[PC];
  if (I.Scope < 0)
    return I.Src;
  // Rebuild the env machine's environment from the scope chain (innermost
  // first; emplace keeps the innermost binding per sym/sort) and force it
  // into the source term — the same substituted (M, e) view Env mode
  // produces, including after halt/stuck, because PC parks on the final
  // instruction.
  Subst S;
  for (int32_t N = I.Scope; N >= 0; N = Cur->Scopes[N].Parent) {
    const ScopeNode &SN = Cur->Scopes[N];
    switch (SN.S) {
    case Sort::Val: {
      const FrameCell &FC = Frame[SN.Slot];
      S.Vals.emplace(SN.Sym, isWordCell(FC)
                                 ? decodeSlotWord(FC)
                                 : static_cast<const Value *>(FC.Ptr));
      break;
    }
    case Sort::Tag:
      S.Tags.emplace(SN.Sym, static_cast<const Tag *>(Frame[SN.Slot].Ptr));
      break;
    case Sort::Type:
      S.Types.emplace(SN.Sym, static_cast<const Type *>(Frame[SN.Slot].Ptr));
      break;
    case Sort::Region:
      S.Regions.emplace(SN.Sym, Frame[SN.Slot].Reg);
      break;
    }
  }
  return closeTerm(C, I.Src, S);
}

Machine::Status VmExec::step() {
  if (M.St != Machine::Status::Running)
    return M.St;
  return execOne();
}

Machine::Status VmExec::run(uint64_t MaxSteps) {
  for (uint64_t I = 0; I != MaxSteps && M.St == Machine::Status::Running; ++I)
    execOne();
  return M.St;
}

void VmExec::exportMetrics(support::MetricsRegistry &Reg) const {
  Reg.setCounter("vm.steps", VmSteps);
  Reg.setCounter("vm.lower_ns", LowerNs);
  Reg.setCounter("vm.chunks", NumChunks);
  Reg.setCounter("vm.instrs", NumInstrs);
  Reg.setCounter("vm.typecase_static_steps", StaticTypecaseSteps);
  Reg.setCounter("vm.tpl_hits", TplHits);
  Reg.setCounter("vm.tpl_misses", TplMisses);
  Reg.setGauge("vm.frame_slots_peak", static_cast<double>(FrameSlotsPeak));
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

Machine::Status VmExec::execOne() {
  if (!Cur)
    return M.stuck("vm backend attached after start (no compiled program)");
  const Instr &I = Cur->Code[PC];
  ++M.Stats.Steps;
  ++VmSteps;
  if (SCAV_TRACE_ENABLED()) {
    M.traceStep(I.Src);
    if (M.Stats.Steps % 64 == 0)
      support::TraceSink::get().counter(
          "vm_frame_slots", static_cast<double>(Cur->NumSlots));
  }

  switch (I.Op) {
  case Opcode::LetVal: {
    const ValOperand &Op = Cur->ValOps[I.A];
    if (Op.Kind == ValOperand::K::Slot)
      Frame[I.B] = Frame[Op.Slot]; // wholesale: words stay words
    else
      Frame[I.B].Ptr = materialize(Op);
    ++PC;
    return M.St;
  }

  case Opcode::LetProj1:
  case Opcode::LetProj2: {
    ++M.Stats.Projections;
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      const FrameCell &FC = Frame[Op.Slot];
      uint64_t W = wordOf(FC);
      if (gc::heapword::tagOf(W) != gc::heapword::WordTag::Pair)
        return M.stuck("projection from non-pair: " +
                       printValue(C, slotValue(Op.Slot)));
      const RegionData *RD = M.Mem.regionById(FC.WordRegion);
      uint32_t Idx = gc::heapword::indexOf(W) +
                     (I.Op == Opcode::LetProj2 ? 1 : 0);
      storeWord(Frame[I.B], RD->Aux[Idx], *RD);
      ++PC;
      return M.St;
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::Pair))
      return M.stuck("projection from non-pair: " + printValue(C, V));
    Frame[I.B].Ptr = I.Op == Opcode::LetProj1 ? V->first() : V->second();
    ++PC;
    return M.St;
  }

  case Opcode::LetPut: {
    ++M.Stats.Puts;
    Region R = materializeReg(Cur->RegOps[I.B]);
    if (!R.isName())
      return M.stuck("put into unresolved region variable " +
                     printRegion(C, R));
    if (FastHeap) {
      RegionData *RD = M.Mem.region(R.sym());
      if (!RD)
        return M.stuck("put into reclaimed region " + printRegion(C, R));
      uint64_t W;
      if (tryEncodeOperand(Cur->ValOps[I.A], *RD, W)) {
        std::optional<Address> A = M.Mem.putWord(*RD, R.sym(), W);
        if (!A)
          return M.stuck("put overflows the region offset space of " +
                         printRegion(C, R));
        if (RD->Id <= gc::heapword::MaxRegionId) {
          Frame[I.C].Ptr =
              wordPtr(gc::heapword::makeAddr(RD->Id, A->Offset));
          Frame[I.C].WordRegion = RD->Id;
        } else {
          Frame[I.C].Ptr = C.valAddr(*A);
        }
        ++PC;
        return M.St;
      }
    }
    const Value *SV = materialize(Cur->ValOps[I.A]);
    std::optional<Address> A = M.Mem.put(R.sym(), SV);
    if (!A)
      return M.stuck(M.Mem.hasRegion(R.sym())
                         ? "put overflows the region offset space of " +
                               printRegion(C, R)
                         : "put into reclaimed region " + printRegion(C, R));
    M.recordPut(*A, SV);
    Frame[I.C].Ptr = C.valAddr(*A);
    ++PC;
    return M.St;
  }

  case Opcode::LetGet: {
    ++M.Stats.Gets;
    if (FastHeap) {
      // Resolve the address straight to (region, offset): an Addr word in
      // a slot carries both inline, and the word image of the cell is read
      // without decoding it into a Value.
      const ValOperand &Op = Cur->ValOps[I.A];
      const RegionData *RD;
      uint32_t Off;
      const Value *AV = nullptr; // materialized address, for diagnostics
      if (Op.Kind == ValOperand::K::Slot && isWordCell(Frame[Op.Slot])) {
        uint64_t W = wordOf(Frame[Op.Slot]);
        if (gc::heapword::tagOf(W) != gc::heapword::WordTag::Addr)
          return M.stuck("get of non-address: " +
                         printValue(C, slotValue(Op.Slot)));
        RD = M.Mem.regionById(gc::heapword::addrRegionId(W));
        Off = gc::heapword::addrOffset(W);
      } else {
        const Value *V = materialize(Op);
        if (!V->is(ValueKind::Addr))
          return M.stuck("get of non-address: " + printValue(C, V));
        RD = M.Mem.region(V->address().R.sym());
        Off = V->address().Offset;
        AV = V;
      }
      if (RD && Off < RD->Words.size() &&
          RD->Words[Off] != gc::heapword::Hole) {
        storeWord(Frame[I.B], RD->Words[Off], *RD);
        ++PC;
        return M.St;
      }
      if (!AV)
        AV = slotValue(Op.Slot); // decode the Addr word for the message
      return M.stuck("get of dangling address: " + printValue(C, AV));
    }
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Addr))
      return M.stuck("get of non-address: " + printValue(C, V));
    const Value *Cell = M.Mem.get(V->address());
    if (!Cell)
      return M.stuck("get of dangling address: " + printValue(C, V));
    Frame[I.B].Ptr = Cell;
    ++PC;
    return M.St;
  }

  case Opcode::LetStrip: {
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      using namespace gc::heapword;
      const FrameCell &FC = Frame[Op.Slot];
      uint64_t W = wordOf(FC);
      switch (tagOf(W)) {
      case WordTag::InlAddr:
      case WordTag::InrAddr:
        Frame[I.B].Ptr = wordPtr(make(WordTag::Addr, W & PayloadMask));
        Frame[I.B].WordRegion = FC.WordRegion;
        ++PC;
        return M.St;
      case WordTag::InlAux:
      case WordTag::InrAux: {
        const RegionData *RD = M.Mem.regionById(FC.WordRegion);
        storeWord(Frame[I.B], RD->Aux[indexOf(W)], *RD);
        ++PC;
        return M.St;
      }
      default:
        return M.stuck("strip of untagged value: " +
                       printValue(C, slotValue(Op.Slot)));
      }
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::Inl) && !V->is(ValueKind::Inr))
      return M.stuck("strip of untagged value: " + printValue(C, V));
    Frame[I.B].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::LetPrim: {
    if (FastHeap) {
      // Int words feed the ALU without a Value round-trip; mixed word/
      // pointer operand pairs are fine (each side resolves independently).
      auto IntArg = [&](const ValOperand &Op, int64_t &Out) {
        if (Op.Kind == ValOperand::K::Slot && isWordCell(Frame[Op.Slot])) {
          uint64_t W = wordOf(Frame[Op.Slot]);
          if (gc::heapword::tagOf(W) != gc::heapword::WordTag::Int)
            return false;
          Out = gc::heapword::intOf(W);
          return true;
        }
        const Value *V = materialize(Op);
        if (!V->is(ValueKind::Int))
          return false;
        Out = V->intValue();
        return true;
      };
      int64_t A, B;
      if (!IntArg(Cur->ValOps[I.A], A) || !IntArg(Cur->ValOps[I.B], B))
        return M.stuck("primitive on non-integers");
      int64_t Res = 0;
      switch (static_cast<PrimOp>(I.Small)) {
      case PrimOp::Add:
        Res = A + B;
        break;
      case PrimOp::Sub:
        Res = A - B;
        break;
      case PrimOp::Mul:
        Res = A * B;
        break;
      case PrimOp::Le:
        Res = A <= B ? 1 : 0;
        break;
      }
      if (gc::heapword::fitsInt(Res)) {
        Frame[I.C].Ptr = wordPtr(gc::heapword::makeInt(Res));
        Frame[I.C].WordRegion = 0; // Int payload is region-independent
      } else {
        Frame[I.C].Ptr = C.valInt(Res);
      }
      ++PC;
      return M.St;
    }
    const Value *L = materialize(Cur->ValOps[I.A]);
    const Value *R = materialize(Cur->ValOps[I.B]);
    if (!L->is(ValueKind::Int) || !R->is(ValueKind::Int))
      return M.stuck("primitive on non-integers");
    int64_t A = L->intValue(), B = R->intValue(), Res = 0;
    switch (static_cast<PrimOp>(I.Small)) {
    case PrimOp::Add:
      Res = A + B;
      break;
    case PrimOp::Sub:
      Res = A - B;
      break;
    case PrimOp::Mul:
      Res = A * B;
      break;
    case PrimOp::Le:
      Res = A <= B ? 1 : 0;
      break;
    }
    Frame[I.C].Ptr = C.valInt(Res);
    ++PC;
    return M.St;
  }

  case Opcode::Call: {
    ++M.Stats.Applications;
    const ValOperand &FOp = Cur->ValOps[I.A];
    const Value *Code;
    const Value *FAddr = nullptr; // materialized address, for diagnostics
    uint32_t CodeOff;
    if (FastHeap && FOp.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[FOp.Slot])) {
      // Addr word → code cell without materializing the address. TransApp
      // values are always boxed, so a word slot is never one.
      using namespace gc::heapword;
      uint64_t W = wordOf(Frame[FOp.Slot]);
      if (tagOf(W) != WordTag::Addr)
        return M.stuck("application of non-address value: " +
                       printValue(C, slotValue(FOp.Slot)));
      uint32_t Id = addrRegionId(W), Off = addrOffset(W);
      if (SCAV_TRACE_ENABLED() || M.PauseHist)
        M.traceAppPhase(
            Address{Region::name(M.Mem.regionIdSymbol(Id)), Off});
      const RegionData *RD = M.Mem.regionById(Id);
      uint64_t CW =
          RD && Off < RD->Words.size() ? RD->Words[Off] : heapword::Hole;
      if (CW == heapword::Hole)
        return M.stuck("application of dangling code address: " +
                       printValue(C, slotValue(FOp.Slot)));
      Code = tagOf(CW) == WordTag::Box ? RD->Boxed[indexOf(CW)]
                                       : M.Mem.decodeWord(*RD, CW);
      if (!Code->is(ValueKind::Code))
        return M.stuck("application of non-code cell: " +
                       printValue(C, slotValue(FOp.Slot)));
      CodeOff = Off;
    } else {
      const Value *F = materialize(FOp);
      if (F->is(ValueKind::TransApp))
        F = F->payload(); // (vJ~τK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v)
      if (!F->is(ValueKind::Addr))
        return M.stuck("application of non-address value: " +
                       printValue(C, F));
      if (SCAV_TRACE_ENABLED() || M.PauseHist)
        M.traceAppPhase(F->address());
      Code = M.Mem.get(F->address());
      if (!Code)
        return M.stuck("application of dangling code address: " +
                       printValue(C, F));
      if (!Code->is(ValueKind::Code))
        return M.stuck("application of non-code cell: " + printValue(C, F));
      FAddr = F;
      CodeOff = F->address().Offset;
    }
    const CallSite &CS = Cur->Calls[I.B];
    if (Code->tagParams().size() != CS.Tags.size() ||
        Code->regionParams().size() != CS.Regions.size() ||
        Code->valParams().size() != CS.Args.size())
      return M.stuck("application arity mismatch at " +
                     printValue(C, FAddr ? FAddr : slotValue(FOp.Slot)));

    // Monomorphic inline cache: cd cells are immutable once defined, so a
    // code value pointer keys its compiled chunk for good.
    const Chunk *Callee;
    if (CS.CachedCode == Code) {
      Callee = static_cast<const Chunk *>(CS.CachedChunk);
    } else {
      Callee = chunkForCode(Code, M.codeLabel(CodeOff));
      CS.CachedCode = Code;
      CS.CachedChunk = Callee;
    }

    // Materialize the callee frame into the staging buffer (reads come
    // from the live frame), then swap: wholesale environment replacement.
    if (Scratch.size() < Callee->NumSlots)
      Scratch.resize(Callee->NumSlots);
    uint32_t S = 0;
    for (uint32_t TIdx : CS.Tags)
      Scratch[S++].Ptr = materializeTag(Cur->TagOps[TIdx]);
    for (uint32_t RIdx : CS.Regions) {
      Region R = materializeReg(Cur->RegOps[RIdx]);
      if (!R.isName())
        return M.stuck("application with unresolved region variable " +
                       printRegion(C, R));
      Scratch[S++].Reg = R;
    }
    for (uint32_t VIdx : CS.Args) {
      const ValOperand &Op = Cur->ValOps[VIdx];
      if (Op.Kind == ValOperand::K::Slot)
        Scratch[S++] = Frame[Op.Slot]; // wholesale: words stay words
      else
        Scratch[S++].Ptr = materialize(Op);
    }
    std::swap(Frame, Scratch);
    if (Frame.size() < Callee->NumSlots)
      Frame.resize(Callee->NumSlots);
    Cur = Callee;
    PC = 0;
    if (Callee->NumSlots > FrameSlotsPeak)
      FrameSlotsPeak = Callee->NumSlots;
    return M.St;
  }

  case Opcode::Halt: {
    const Value *V = materialize(Cur->ValOps[I.A]);
    M.St = Machine::Status::Halted;
    M.HaltVal = V;
    return M.St; // PC parks here; currentTerm still sees the halt term
  }

  case Opcode::IfGc: {
    Region R = materializeReg(Cur->RegOps[I.A]);
    if (!R.isName())
      return M.stuck("ifgc on unresolved region variable");
    if (M.Mem.isFull(R.sym())) {
      ++M.Stats.IfGcTaken;
      TRACE_INSTANT("collector", "ifgc.taken");
      PC = I.B;
    } else {
      ++M.Stats.IfGcSkipped;
      PC = I.C;
    }
    return M.St;
  }

  case Opcode::OpenTag: {
    ++M.Stats.Opens;
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      using namespace gc::heapword;
      const FrameCell &FC = Frame[Op.Slot];
      uint64_t W = wordOf(FC);
      if (tagOf(W) != WordTag::PackTagAux)
        return M.stuck("open-as-tag of non-package: " +
                       printValue(C, slotValue(Op.Slot)));
      const RegionData *RD = M.Mem.regionById(FC.WordRegion);
      uint32_t Idx = indexOf(W);
      const Tag *T = ptrOf<Tag>(RD->Aux[Idx + 2]);
      Frame[I.B].Ptr = T->isNormal() ? T : normalizeTag(C, T);
      storeWord(Frame[I.C], RD->Aux[Idx], *RD);
      ++PC;
      return M.St;
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::PackTag))
      return M.stuck("open-as-tag of non-package: " + printValue(C, V));
    Frame[I.B].Ptr = V->tagWitness()->isNormal()
                         ? V->tagWitness()
                         : normalizeTag(C, V->tagWitness());
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::OpenTyVar: {
    ++M.Stats.Opens;
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      using namespace gc::heapword;
      const FrameCell &FC = Frame[Op.Slot];
      uint64_t W = wordOf(FC);
      if (tagOf(W) != WordTag::PackTyVarAux)
        return M.stuck("open-as-type of non-package: " +
                       printValue(C, slotValue(Op.Slot)));
      const RegionData *RD = M.Mem.regionById(FC.WordRegion);
      uint32_t Idx = indexOf(W);
      Frame[I.B].Ptr = ptrOf<Type>(RD->Aux[Idx + 3]);
      storeWord(Frame[I.C], RD->Aux[Idx], *RD);
      ++PC;
      return M.St;
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::PackTyVar))
      return M.stuck("open-as-type of non-package: " + printValue(C, V));
    Frame[I.B].Ptr = V->typeWitness();
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::OpenRegion: {
    ++M.Stats.Opens;
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      using namespace gc::heapword;
      const FrameCell &FC = Frame[Op.Slot];
      uint64_t W = wordOf(FC);
      if (tagOf(W) != WordTag::PackRegionAux)
        return M.stuck("open-as-region of non-package: " +
                       printValue(C, slotValue(Op.Slot)));
      const RegionData *RD = M.Mem.regionById(FC.WordRegion);
      uint32_t Idx = indexOf(W);
      Region Witness = regionOf(RD->Aux[Idx + 3]);
      if (!Witness.isName())
        return M.stuck("region package with unresolved witness");
      Frame[I.B].Reg = Witness;
      storeWord(Frame[I.C], RD->Aux[Idx], *RD);
      ++PC;
      return M.St;
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::PackRegion))
      return M.stuck("open-as-region of non-package: " + printValue(C, V));
    if (!V->regionWitness().isName())
      return M.stuck("region package with unresolved witness");
    Frame[I.B].Reg = V->regionWitness();
    Frame[I.C].Ptr = V->payload();
    ++PC;
    return M.St;
  }

  case Opcode::LetRegion: {
    Region R = M.createRegion(C.name(I.Sym), 0);
    Frame[I.A].Reg = R;
    ++PC;
    return M.St;
  }

  case Opcode::Only: {
    ++M.Stats.OnlyOps;
    M.Stats.OnlyRegionsScanned += M.Mem.numRegions();
    const RegSetOp &RS = Cur->RegSets[I.A];
    RegionSet Resolved;
    const RegionSet *Keep = &RS.Set;
    if (!RS.AllConst) {
      for (uint32_t Idx : RS.Elems)
        Resolved.insert(materializeReg(Cur->RegOps[Idx]));
      Keep = &Resolved;
    }
    for (Region R : *Keep)
      if (!R.isName())
        return M.stuck("only with unresolved region variable");
    if (FastHeap)
      decodeFrameWords(); // aux payloads must not outlive their region
    M.applyOnly(*Keep);
    ++PC;
    return M.St;
  }

  case Opcode::Typecase: {
    ++M.Stats.TypecaseSteps;
    const Tag *T = materializeTag(Cur->TagOps[I.A]);
    const TypecaseInfo &TI = Cur->Typecases[I.B];
    switch (T->kind()) {
    case TagKind::Int:
      PC = TI.IntT;
      return M.St;
    case TagKind::Arrow:
      PC = TI.ArrowT;
      return M.St;
    case TagKind::Prod:
      Frame[TI.ProdSlot1].Ptr = T->left();
      Frame[TI.ProdSlot2].Ptr = T->right();
      PC = TI.ProdT;
      return M.St;
    case TagKind::Exists:
      Frame[TI.ExistsSlot].Ptr = C.tagLam(T->var(), C.omega(), T->body());
      PC = TI.ExistsT;
      return M.St;
    default:
      return M.stuck("typecase on non-constructor tag: " + printTag(C, T));
    }
  }

  case Opcode::TypecaseStatic: {
    // The scrutinee was a compile-time constant; branch and binder tags
    // were resolved at lowering time. Still one machine step.
    ++M.Stats.TypecaseSteps;
    ++StaticTypecaseSteps;
    const TypecaseInfo &TI = Cur->Typecases[I.B];
    switch (TI.StaticKind) {
    case TagKind::Int:
      PC = TI.IntT;
      return M.St;
    case TagKind::Arrow:
      PC = TI.ArrowT;
      return M.St;
    case TagKind::Prod:
      Frame[TI.ProdSlot1].Ptr = TI.StaticA;
      Frame[TI.ProdSlot2].Ptr = TI.StaticB;
      PC = TI.ProdT;
      return M.St;
    case TagKind::Exists:
      Frame[TI.ExistsSlot].Ptr = TI.StaticA;
      PC = TI.ExistsT;
      return M.St;
    default:
      assert(false && "non-constructor kind in static typecase");
      return M.St;
    }
  }

  case Opcode::IfLeft: {
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      using namespace gc::heapword;
      switch (tagOf(wordOf(Frame[Op.Slot]))) {
      case WordTag::InlAddr:
      case WordTag::InlAux:
        Frame[I.B] = Frame[Op.Slot];
        PC = I.C;
        return M.St;
      case WordTag::InrAddr:
      case WordTag::InrAux:
        Frame[I.B] = Frame[Op.Slot];
        PC = I.D;
        return M.St;
      default:
        return M.stuck("ifleft of untagged value: " +
                       printValue(C, slotValue(Op.Slot)));
      }
    }
    const Value *V = materialize(Op);
    if (V->is(ValueKind::Inl)) {
      Frame[I.B].Ptr = V;
      PC = I.C;
    } else if (V->is(ValueKind::Inr)) {
      Frame[I.B].Ptr = V;
      PC = I.D;
    } else {
      return M.stuck("ifleft of untagged value: " + printValue(C, V));
    }
    return M.St;
  }

  case Opcode::Set: {
    ++M.Stats.Sets;
    const ValOperand &DOp = Cur->ValOps[I.A];
    if (FastHeap) {
      // Destination address from a word slot carries (region id, offset)
      // inline; materialize it only for diagnostics.
      RegionData *RD;
      Address DA;
      const Value *DV = nullptr;
      if (DOp.Kind == ValOperand::K::Slot && isWordCell(Frame[DOp.Slot])) {
        uint64_t W = wordOf(Frame[DOp.Slot]);
        if (gc::heapword::tagOf(W) != gc::heapword::WordTag::Addr)
          return M.stuck("set of non-address: " +
                         printValue(C, slotValue(DOp.Slot)));
        uint32_t Id = gc::heapword::addrRegionId(W);
        RD = M.Mem.regionById(Id);
        DA = Address{Region::name(M.Mem.regionIdSymbol(Id)),
                     gc::heapword::addrOffset(W)};
      } else {
        const Value *Dst = materialize(DOp);
        if (!Dst->is(ValueKind::Addr))
          return M.stuck("set of non-address: " + printValue(C, Dst));
        RD = M.Mem.region(Dst->address().R.sym());
        DA = Dst->address();
        DV = Dst;
      }
      if (!RD)
        return M.stuck("set of dangling address: " +
                       printValue(C, DV ? DV : slotValue(DOp.Slot)));
      uint64_t W;
      if (tryEncodeOperand(Cur->ValOps[I.B], *RD, W)) {
        if (!M.Mem.updateWord(*RD, DA, W))
          return M.stuck("set of dangling address: " +
                         printValue(C, DV ? DV : slotValue(DOp.Slot)));
        TRACE_INSTANT("mem", "set.forward");
        ++PC;
        return M.St;
      }
      if (!M.Mem.update(DA, materialize(Cur->ValOps[I.B])))
        return M.stuck("set of dangling address: " +
                       printValue(C, DV ? DV : slotValue(DOp.Slot)));
      TRACE_INSTANT("mem", "set.forward");
      ++PC;
      return M.St;
    }
    const Value *Dst = materialize(DOp);
    if (!Dst->is(ValueKind::Addr))
      return M.stuck("set of non-address: " + printValue(C, Dst));
    if (!M.Mem.update(Dst->address(), materialize(Cur->ValOps[I.B])))
      return M.stuck("set of dangling address: " + printValue(C, Dst));
    TRACE_INSTANT("mem", "set.forward");
    ++PC;
    return M.St;
  }

  case Opcode::LetWiden: {
    ++M.Stats.Widens;
    const Value *V = materialize(Cur->ValOps[I.A]);
    if (!V->is(ValueKind::Addr))
      return M.stuck("widen of non-address value: " + printValue(C, V));
    Region To = materializeReg(Cur->RegOps[I.B]);
    if (!To.isName())
      return M.stuck("widen with unresolved to-region");
    M.applyWiden(V->address().R.sym(), To.sym());
    Frame[I.C].Ptr = V; // widen is a no-op on data (§7.1)
    ++PC;
    return M.St;
  }

  case Opcode::IfReg: {
    Region A = materializeReg(Cur->RegOps[I.A]);
    Region B = materializeReg(Cur->RegOps[I.B]);
    if (!A.isName() || !B.isName())
      return M.stuck("ifreg on unresolved region variable");
    PC = A == B ? I.C : I.D;
    return M.St;
  }

  case Opcode::If0: {
    const ValOperand &Op = Cur->ValOps[I.A];
    if (FastHeap && Op.Kind == ValOperand::K::Slot &&
        isWordCell(Frame[Op.Slot])) {
      uint64_t W = wordOf(Frame[Op.Slot]);
      if (gc::heapword::tagOf(W) != gc::heapword::WordTag::Int)
        return M.stuck("if0 of non-integer: " +
                       printValue(C, slotValue(Op.Slot)));
      PC = gc::heapword::intOf(W) == 0 ? I.B : I.C;
      return M.St;
    }
    const Value *V = materialize(Op);
    if (!V->is(ValueKind::Int))
      return M.stuck("if0 of non-integer: " + printValue(C, V));
    PC = V->intValue() == 0 ? I.B : I.C;
    return M.St;
  }
  }
  return M.stuck("unknown vm opcode");
}
