//===- vm/Disasm.h - Chunk disassembler ------------------------*- C++ -*-===//
///
/// \file
/// Renders a compiled vm::Chunk as a stable textual listing — the format the
/// golden tests in tests/vm_lower_test.cpp pin down. One line per
/// instruction: `pc: opcode operands`, with frame slots printed `s<N>`,
/// branch targets `@<pc>`, and operand classification spelled out
/// (const/slot/fast/slow plus bind lists), so a listing diff shows exactly
/// what the lowering decided.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_VM_DISASM_H
#define SCAV_VM_DISASM_H

#include "vm/Bytecode.h"

#include <string>

namespace scav::gc {
class GcContext;
} // namespace scav::gc

namespace scav::vm {

std::string disassemble(const Chunk &Ch, const gc::GcContext &C);

} // namespace scav::vm

#endif // SCAV_VM_DISASM_H
