//===- vm/Disasm.cpp - Chunk disassembler ---------------------------------===//

#include "vm/Disasm.h"

#include "gc/GcContext.h"
#include "gc/Ops.h"

#include <sstream>

using namespace scav;
using namespace scav::gc;
using namespace scav::vm;

namespace {

struct Disasm {
  const Chunk &Ch;
  const GcContext &C;
  std::ostringstream OS;

  void binds(uint32_t Begin, uint32_t End) {
    OS << " [";
    for (uint32_t I = Begin; I != End; ++I) {
      const BindSpec &B = Ch.Binds[I];
      if (I != Begin)
        OS << " ";
      OS << C.name(B.Sym);
      switch (B.S) {
      case Sort::Val:
        break; // the common case reads cleaner unannotated
      case Sort::Tag:
        OS << ":tag";
        break;
      case Sort::Type:
        OS << ":type";
        break;
      case Sort::Region:
        OS << ":region";
        break;
      }
      OS << "=s" << B.Slot;
    }
    OS << "]";
  }

  void val(uint32_t Idx) {
    const ValOperand &Op = Ch.ValOps[Idx];
    switch (Op.Kind) {
    case ValOperand::K::Const:
      OS << "const " << printValue(C, Op.V);
      break;
    case ValOperand::K::Slot:
      OS << "s" << Op.Slot;
      break;
    case ValOperand::K::Fast:
      OS << "fast " << printValue(C, Op.V);
      binds(Op.BindsBegin, Op.BindsEnd);
      break;
    case ValOperand::K::Tpl: {
      const TplInfo &TI = Ch.TplInfos[Op.Slot];
      OS << "tpl " << printValue(C, Op.V) << " (atts=" << TI.NumAtts
         << " deltas=" << TI.NumDeltas
         << " key=" << (TI.KeyEnd - TI.KeyBegin) << ")";
      break;
    }
    case ValOperand::K::Slow:
      OS << "slow " << printValue(C, Op.V);
      binds(Op.BindsBegin, Op.BindsEnd);
      break;
    }
  }

  void tag(uint32_t Idx) {
    const TagOperand &Op = Ch.TagOps[Idx];
    switch (Op.Kind) {
    case TagOperand::K::Const:
      OS << "const " << printTag(C, Op.T);
      break;
    case TagOperand::K::Slot:
      OS << "s" << Op.Slot;
      break;
    case TagOperand::K::Slow:
      OS << "slow " << printTag(C, Op.T);
      binds(Op.BindsBegin, Op.BindsEnd);
      break;
    }
  }

  void reg(uint32_t Idx) {
    const RegOperand &Op = Ch.RegOps[Idx];
    if (Op.Kind == RegOperand::K::Slot)
      OS << "s" << Op.Slot;
    else
      OS << "const " << printRegion(C, Op.R);
  }

  void run() {
    OS << "chunk " << Ch.Label << " (slots=" << Ch.NumSlots;
    if (Ch.NumTagParams || Ch.NumRegionParams || Ch.NumValParams)
      OS << ", params=" << Ch.NumTagParams << "t/" << Ch.NumRegionParams
         << "r/" << Ch.NumValParams << "v";
    OS << ")\n";
    for (uint32_t PC = 0; PC != Ch.Code.size(); ++PC) {
      const Instr &I = Ch.Code[PC];
      OS << "  " << PC << ": " << opcodeName(I.Op);
      switch (I.Op) {
      case Opcode::LetVal:
      case Opcode::LetProj1:
      case Opcode::LetProj2:
      case Opcode::LetGet:
      case Opcode::LetStrip:
        OS << " ";
        val(I.A);
        OS << " -> s" << I.B;
        break;
      case Opcode::LetPrim:
        OS << " " << (I.Small == 0   ? "add"
                      : I.Small == 1 ? "sub"
                      : I.Small == 2 ? "mul"
                                     : "le")
           << " ";
        val(I.A);
        OS << ", ";
        val(I.B);
        OS << " -> s" << I.C;
        break;
      case Opcode::LetPut:
        OS << " ";
        val(I.A);
        OS << " at ";
        reg(I.B);
        OS << " -> s" << I.C;
        break;
      case Opcode::Call: {
        const CallSite &CS = Ch.Calls[I.B];
        OS << " ";
        val(I.A);
        for (uint32_t Idx : CS.Tags) {
          OS << " <";
          tag(Idx);
          OS << ">";
        }
        for (uint32_t Idx : CS.Regions) {
          OS << " {";
          reg(Idx);
          OS << "}";
        }
        for (uint32_t Idx : CS.Args) {
          OS << " (";
          val(Idx);
          OS << ")";
        }
        break;
      }
      case Opcode::Halt:
        OS << " ";
        val(I.A);
        break;
      case Opcode::IfGc:
        OS << " ";
        reg(I.A);
        OS << " @" << I.B << " @" << I.C;
        break;
      case Opcode::OpenTag:
      case Opcode::OpenTyVar:
      case Opcode::OpenRegion:
        OS << " ";
        val(I.A);
        OS << " -> s" << I.B << ", s" << I.C;
        break;
      case Opcode::LetRegion:
        OS << " " << C.name(I.Sym) << " -> s" << I.A;
        break;
      case Opcode::Only: {
        const RegSetOp &RS = Ch.RegSets[I.A];
        if (RS.AllConst) {
          OS << " const " << printRegionSet(C, RS.Set);
        } else {
          OS << " {";
          for (size_t E = 0; E != RS.Elems.size(); ++E) {
            if (E)
              OS << ", ";
            reg(RS.Elems[E]);
          }
          OS << "}";
        }
        break;
      }
      case Opcode::Typecase:
      case Opcode::TypecaseStatic: {
        const TypecaseInfo &TI = Ch.Typecases[I.B];
        OS << " ";
        tag(I.A);
        OS << " int@" << TI.IntT << " arrow@" << TI.ArrowT << " prod(s"
           << TI.ProdSlot1 << ",s" << TI.ProdSlot2 << ")@" << TI.ProdT
           << " exists(s" << TI.ExistsSlot << ")@" << TI.ExistsT;
        if (I.Op == Opcode::TypecaseStatic) {
          OS << " resolved=";
          switch (TI.StaticKind) {
          case TagKind::Int:
            OS << "int";
            break;
          case TagKind::Arrow:
            OS << "arrow";
            break;
          case TagKind::Prod:
            OS << "prod(" << printTag(C, TI.StaticA) << ", "
               << printTag(C, TI.StaticB) << ")";
            break;
          case TagKind::Exists:
            OS << "exists(" << printTag(C, TI.StaticA) << ")";
            break;
          default:
            OS << "?";
            break;
          }
        }
        break;
      }
      case Opcode::IfLeft:
        OS << " ";
        val(I.A);
        OS << " -> s" << I.B << " @" << I.C << " @" << I.D;
        break;
      case Opcode::Set:
        OS << " ";
        val(I.A);
        OS << " := ";
        val(I.B);
        break;
      case Opcode::LetWiden:
        OS << " ";
        val(I.A);
        OS << " to ";
        reg(I.B);
        OS << " -> s" << I.C;
        break;
      case Opcode::IfReg:
        OS << " ";
        reg(I.A);
        OS << " == ";
        reg(I.B);
        OS << " @" << I.C << " @" << I.D;
        break;
      case Opcode::If0:
        OS << " ";
        val(I.A);
        OS << " @" << I.B << " @" << I.C;
        break;
      }
      OS << "\n";
    }
  }
};

} // namespace

std::string vm::disassemble(const Chunk &Ch, const GcContext &C) {
  Disasm D{Ch, C, {}};
  D.run();
  return D.OS.str();
}
