//===- vm/Lower.h - λGC AST → flat bytecode compiler -----------*- C++ -*-===//
///
/// \file
/// Lowerer compiles an arena λGC term (a main program or a closure-converted
/// code body) into a vm::Chunk. Lowering is purely syntax-directed and runs
/// once per code value; see Bytecode.h for the invariants the output obeys
/// and DESIGN.md §3.10 for the instruction set table.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_VM_LOWER_H
#define SCAV_VM_LOWER_H

#include "vm/Bytecode.h"

#include "gc/GcContext.h"
#include "gc/Ops.h"

#include <memory>
#include <optional>
#include <string>

namespace scav::vm {

/// Compiles terms / code values to chunks. Stateless between top-level
/// calls; one instance can lower any number of chunks against one context.
class Lowerer {
public:
  explicit Lowerer(gc::GcContext &C) : C(C) {}

  /// Lowers a whole program term (empty initial scope).
  std::unique_ptr<Chunk> lowerMain(const gc::Term *E,
                                   std::string Label = "main");

  /// Lowers a code value's body with its tag/region/value parameters bound
  /// to frame slots 0..n-1 (tags first, then regions, then values — the
  /// argument-materialization order used by the Call instruction).
  std::unique_ptr<Chunk> lowerCode(const gc::Value *Code, std::string Label);

private:
  struct ScopeEntry {
    gc::Symbol Sym;
    Sort S;
    uint32_t Slot;
  };
  struct ScopeMark {
    size_t StackSize;
    int32_t Top;
  };

  uint32_t newSlot() { return Out->NumSlots++; }

  ScopeMark markScope() const { return {Stack.size(), Top}; }
  void resetScope(ScopeMark M) {
    Stack.resize(M.StackSize);
    Top = M.Top;
  }
  void pushScope(gc::Symbol Sym, Sort S, uint32_t Slot);
  std::optional<uint32_t> lookup(gc::Symbol Sym, Sort S) const;

  bool anyScopeSym(const gc::SymbolSet &Syms, bool TagSortOnly) const;
  std::pair<uint32_t, uint32_t> collectBinds(const gc::SymbolSet &Syms,
                                             bool ValSortOnly);

  uint32_t addVal(const gc::Value *V);
  uint32_t addTag(const gc::Tag *T);
  uint32_t addReg(gc::Region R);

  /// Scratch state while compiling one Tpl operand: attachment/delta
  /// ordinal counters and the deduplicated set of key slots.
  struct TplBuild {
    uint32_t NumAtts = 0, NumDeltas = 0;
    std::vector<std::pair<Sort, uint32_t>> KeySlots;
    void key(Sort S, uint32_t Slot) {
      for (auto &[KS, KSlot] : KeySlots)
        if (KS == S && KSlot == Slot)
          return;
      KeySlots.emplace_back(S, Slot);
    }
  };
  /// The optional compile-time mask: a pack binder symbol excluded from
  /// substitution inside its own body type (the Closer masks, never
  /// renames, so this is exactly equivalent).
  using TplMask = std::optional<std::pair<gc::Symbol, Sort>>;

  uint32_t compileTpl(const gc::Value *V);
  uint32_t buildTplNode(const gc::Value *V, TplBuild &B);
  std::pair<uint32_t, uint32_t> typedBinds(const gc::SymbolSet &Syms,
                                           TplMask Mask, TplBuild &B);
  uint32_t addTplAttTag(const gc::Tag *T, TplBuild &B);
  uint32_t addTplAttType(const gc::Type *T, TplMask Mask, TplBuild &B);
  uint32_t addTplAttDelta(const gc::RegionSet &RS, TplBuild &B);

  uint32_t emit(Instr I);
  uint32_t compileTerm(const gc::Term *E);

  gc::GcContext &C;
  Chunk *Out = nullptr;
  std::vector<ScopeEntry> Stack; ///< lexical scope, innermost at the back
  int32_t Top = -1;              ///< current Chunk::Scopes chain head
};

} // namespace scav::vm

#endif // SCAV_VM_LOWER_H
