//===- gc/Kind.h - Kinds κ ::= Ω | κ → κ -----------------------*- C++ -*-===//
///
/// \file
/// The kind calculus classifying tags (Fig 2). The paper only needs Ω and
/// Ω→Ω; we keep the general arrow form, which costs nothing and keeps the
/// kind checker honest.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_KIND_H
#define SCAV_GC_KIND_H

#include <cassert>

namespace scav::gc {

enum class KindKind { Omega, Arrow };

/// A kind; arena-allocated and immutable. Compare with Kind::equal.
class Kind {
public:
  KindKind kind() const { return K; }
  bool isOmega() const { return K == KindKind::Omega; }
  bool isArrow() const { return K == KindKind::Arrow; }

  const Kind *from() const {
    assert(isArrow() && "from() on non-arrow kind");
    return From;
  }
  const Kind *to() const {
    assert(isArrow() && "to() on non-arrow kind");
    return To;
  }

  static bool equal(const Kind *A, const Kind *B) {
    if (A == B)
      return true;
    if (A->K != B->K)
      return false;
    if (A->isOmega())
      return true;
    return equal(A->From, B->From) && equal(A->To, B->To);
  }

private:
  friend class GcContext;
  Kind() : K(KindKind::Omega), From(nullptr), To(nullptr) {}
  Kind(const Kind *From, const Kind *To)
      : K(KindKind::Arrow), From(From), To(To) {}

  KindKind K;
  const Kind *From;
  const Kind *To;
};

} // namespace scav::gc

#endif // SCAV_GC_KIND_H
