//===- gc/SexpPrint.cpp - Parseable λGC printer ----------------------------===//
///
/// \file
/// Prints λGC syntax in exactly the concrete syntax Parse.cpp accepts, so
/// parse ∘ print is the identity (up to binder spellings). The human-
/// oriented renderer lives in Print.cpp; this one is for files and golden
/// tests.
///
//===----------------------------------------------------------------------===//

#include "gc/Parse.h"

using namespace scav;
using namespace scav::gc;

namespace {

struct Sexp {
  const GcContext &C;
  const AddressNamer *FnName;
  std::string Out;

  void atom(std::string_view S) {
    if (!Out.empty() && Out.back() != '(')
      Out += ' ';
    Out += S;
  }
  void open() {
    if (!Out.empty() && Out.back() != '(')
      Out += ' ';
    Out += '(';
  }
  void close() { Out += ')'; }

  void name(Symbol S) { atom(C.name(S)); }

  void region(Region R) {
    if (!R.isValid()) {
      atom("<invalid-region>");
      return;
    }
    atom(C.name(R.sym()));
  }

  void regionSet(const RegionSet &RS) {
    open();
    for (Region R : RS)
      region(R);
    close();
  }

  void kind(const Kind *K) {
    if (K->isOmega()) {
      atom("O");
      return;
    }
    open();
    atom("->");
    kind(K->from());
    kind(K->to());
    close();
  }

  void tag(const Tag *T) {
    switch (T->kind()) {
    case TagKind::Int:
      atom("Int");
      return;
    case TagKind::Var:
      name(T->var());
      return;
    case TagKind::Prod:
      open();
      atom("*");
      tag(T->left());
      tag(T->right());
      close();
      return;
    case TagKind::Arrow:
      open();
      atom("->");
      for (const Tag *A : T->arrowArgs())
        tag(A);
      close();
      return;
    case TagKind::Exists:
      open();
      atom("E");
      name(T->var());
      tag(T->body());
      close();
      return;
    case TagKind::Lam:
      open();
      atom("\\");
      name(T->var());
      kind(T->binderKind());
      tag(T->body());
      close();
      return;
    case TagKind::App:
      open();
      atom("@");
      tag(T->left());
      tag(T->right());
      close();
      return;
    }
  }

  void type(const Type *T) {
    switch (T->kind()) {
    case TypeKind::Int:
      atom("int");
      return;
    case TypeKind::TyVar:
      name(T->var());
      return;
    case TypeKind::Prod:
    case TypeKind::Sum:
      open();
      atom(T->is(TypeKind::Prod) ? "*" : "+");
      type(T->left());
      type(T->right());
      close();
      return;
    case TypeKind::Left:
    case TypeKind::Right:
      open();
      atom(T->is(TypeKind::Left) ? "left" : "right");
      type(T->body());
      close();
      return;
    case TypeKind::At:
      open();
      atom("at");
      type(T->body());
      region(T->atRegion());
      close();
      return;
    case TypeKind::MApp:
      open();
      if (T->mRegions().size() == 1) {
        atom("M");
        region(T->mRegions()[0]);
      } else {
        atom("M2");
        region(T->mRegions()[0]);
        region(T->mRegions()[1]);
      }
      tag(T->tag());
      close();
      return;
    case TypeKind::CApp:
      open();
      atom("C");
      region(T->cFrom());
      region(T->cTo());
      tag(T->tag());
      close();
      return;
    case TypeKind::Code: {
      open();
      atom("code");
      open();
      for (size_t I = 0, N = T->tagParams().size(); I != N; ++I) {
        open();
        name(T->tagParams()[I]);
        kind(T->tagParamKinds()[I]);
        close();
      }
      close();
      open();
      for (Symbol R : T->regionParams())
        name(R);
      close();
      open();
      for (const Type *A : T->argTypes())
        type(A);
      close();
      close();
      return;
    }
    case TypeKind::ExistsTag:
      open();
      atom("Et");
      name(T->var());
      kind(T->binderKind());
      type(T->body());
      close();
      return;
    case TypeKind::ExistsTyVar:
    case TypeKind::ExistsRegion:
      open();
      atom(T->is(TypeKind::ExistsTyVar) ? "Ea" : "Er");
      name(T->var());
      regionSet(T->delta());
      type(T->body());
      close();
      return;
    case TypeKind::TransCode: {
      open();
      atom("trans");
      open();
      for (const Tag *A : T->transTags())
        tag(A);
      close();
      open();
      for (Region R : T->transRegions())
        region(R);
      close();
      open();
      for (const Type *A : T->argTypes())
        type(A);
      close();
      region(T->atRegion());
      close();
      return;
    }
    }
  }

  void value(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
      atom(std::to_string(V->intValue()));
      return;
    case ValueKind::Var:
      name(V->var());
      return;
    case ValueKind::Addr: {
      std::string N = FnName ? (*FnName)(V->address()) : std::string();
      if (N.empty()) {
        atom("<unprintable-address>");
        return;
      }
      open();
      atom("fn");
      atom(N);
      close();
      return;
    }
    case ValueKind::Pair:
      open();
      atom("pair");
      value(V->first());
      value(V->second());
      close();
      return;
    case ValueKind::Inl:
    case ValueKind::Inr:
      open();
      atom(V->is(ValueKind::Inl) ? "inl" : "inr");
      value(V->payload());
      close();
      return;
    case ValueKind::PackTag:
      open();
      atom("packt");
      name(V->var());
      tag(V->tagWitness());
      value(V->payload());
      type(V->bodyType());
      close();
      return;
    case ValueKind::PackTyVar:
      open();
      atom("packa");
      name(V->var());
      regionSet(V->delta());
      type(V->typeWitness());
      value(V->payload());
      type(V->bodyType());
      close();
      return;
    case ValueKind::PackRegion:
      open();
      atom("packr");
      name(V->var());
      regionSet(V->delta());
      region(V->regionWitness());
      value(V->payload());
      type(V->bodyType());
      close();
      return;
    case ValueKind::TransApp: {
      open();
      atom("transapp");
      value(V->payload());
      open();
      for (const Tag *T : V->transTags())
        tag(T);
      close();
      open();
      for (Region R : V->transRegions())
        region(R);
      close();
      close();
      return;
    }
    case ValueKind::Code:
      atom("<code-literal>"); // only occurs in cd; printed via program form
      return;
    }
  }

  void op(const Op *O) {
    switch (O->kind()) {
    case OpKind::Val:
      value(O->value());
      return;
    case OpKind::Proj1:
    case OpKind::Proj2:
      open();
      atom(O->is(OpKind::Proj1) ? "pi1" : "pi2");
      value(O->value());
      close();
      return;
    case OpKind::Put:
      open();
      atom("put");
      region(O->putRegion());
      value(O->value());
      close();
      return;
    case OpKind::Get:
    case OpKind::Strip:
      open();
      atom(O->is(OpKind::Get) ? "get" : "strip");
      value(O->value());
      close();
      return;
    case OpKind::Prim:
      open();
      atom(primOpName(O->primOp()));
      value(O->lhs());
      value(O->rhs());
      close();
      return;
    }
  }

  void term(const Term *E) {
    switch (E->kind()) {
    case TermKind::App: {
      open();
      atom("app");
      value(E->appFun());
      open();
      for (const Tag *T : E->appTags())
        tag(T);
      close();
      open();
      for (Region R : E->appRegions())
        region(R);
      close();
      open();
      for (const Value *V : E->appArgs())
        value(V);
      close();
      close();
      return;
    }
    case TermKind::Let:
      open();
      atom("let");
      name(E->binderVar());
      op(E->letOp());
      term(E->sub1());
      close();
      return;
    case TermKind::Halt:
      open();
      atom("halt");
      value(E->scrutinee());
      close();
      return;
    case TermKind::IfGc:
      open();
      atom("ifgc");
      region(E->region());
      term(E->sub1());
      term(E->sub2());
      close();
      return;
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion:
      open();
      atom(E->is(TermKind::OpenTag)
               ? "opent"
               : (E->is(TermKind::OpenTyVar) ? "opena" : "openr"));
      value(E->scrutinee());
      name(E->binderVar());
      name(E->binderVar2());
      term(E->sub1());
      close();
      return;
    case TermKind::LetRegion:
      open();
      atom("letregion");
      name(E->binderVar());
      term(E->sub1());
      close();
      return;
    case TermKind::Only:
      open();
      atom("only");
      regionSet(E->onlySet());
      term(E->sub1());
      close();
      return;
    case TermKind::Typecase:
      open();
      atom("typecase");
      tag(E->tag());
      term(E->caseInt());
      term(E->caseArrow());
      open();
      name(E->prodVar1());
      name(E->prodVar2());
      term(E->caseProd());
      close();
      open();
      name(E->existsVar());
      term(E->caseExists());
      close();
      close();
      return;
    case TermKind::IfLeft:
      open();
      atom("ifleft");
      name(E->binderVar());
      value(E->scrutinee());
      term(E->sub1());
      term(E->sub2());
      close();
      return;
    case TermKind::Set:
      open();
      atom("set");
      value(E->scrutinee());
      value(E->setSource());
      term(E->sub1());
      close();
      return;
    case TermKind::LetWiden:
      open();
      atom("widen");
      name(E->binderVar());
      region(E->region());
      tag(E->tag());
      value(E->scrutinee());
      term(E->sub1());
      close();
      return;
    case TermKind::IfReg:
      open();
      atom("ifreg");
      region(E->ifregLhs());
      region(E->ifregRhs());
      term(E->sub1());
      term(E->sub2());
      close();
      return;
    case TermKind::If0:
      open();
      atom("if0");
      value(E->scrutinee());
      term(E->sub1());
      term(E->sub2());
      close();
      return;
    }
  }
};

} // namespace

std::string scav::gc::printGcTagSexp(const GcContext &C, const Tag *T) {
  Sexp P{C, nullptr, {}};
  P.tag(T);
  return P.Out;
}

std::string scav::gc::printGcTypeSexp(const GcContext &C, const Type *T) {
  Sexp P{C, nullptr, {}};
  P.type(T);
  return P.Out;
}

std::string scav::gc::printGcTermSexp(const GcContext &C, const Term *E,
                                      const AddressNamer &FnName) {
  Sexp P{C, &FnName, {}};
  P.term(E);
  return P.Out;
}

std::string scav::gc::printGcProgramSexp(const GcContext &C, const Machine &M,
                                         const ParsedGcProgram &Prog) {
  std::map<Address, std::string> Names;
  for (const auto &[N, A] : Prog.Funs)
    Names[A] = N;
  AddressNamer Namer = [&Names](Address A) -> std::string {
    auto It = Names.find(A);
    return It == Names.end() ? std::string() : It->second;
  };

  std::string Out = "(program\n";
  for (const auto &[N, A] : Prog.OwnFuns) {
    const Value *Code = M.memory().get(A);
    if (!Code || !Code->is(ValueKind::Code))
      continue;
    Sexp P{C, &Namer, {}};
    P.open();
    P.atom("fun");
    P.atom(N);
    P.open();
    for (size_t I = 0, K = Code->tagParams().size(); I != K; ++I) {
      P.open();
      P.name(Code->tagParams()[I]);
      P.kind(Code->tagParamKinds()[I]);
      P.close();
    }
    P.close();
    P.open();
    for (Symbol R : Code->regionParams())
      P.name(R);
    P.close();
    P.open();
    for (size_t I = 0, K = Code->valParams().size(); I != K; ++I) {
      P.open();
      P.name(Code->valParams()[I]);
      P.type(Code->valParamTypes()[I]);
      P.close();
    }
    P.close();
    P.term(Code->codeBody());
    P.close();
    Out += "  " + P.Out + "\n";
  }
  if (Prog.Main) {
    Sexp P{C, &Namer, {}};
    P.open();
    P.atom("main");
    P.term(Prog.Main);
    P.close();
    Out += "  " + P.Out + "\n";
  }
  Out += ")\n";
  return Out;
}
