//===- gc/StateCheck.cpp - Machine-state well-formedness ------------------===//

#include "gc/StateCheck.h"

#include <vector>

using namespace scav;
using namespace scav::gc;

//===----------------------------------------------------------------------===//
// Address collection / reachability
//===----------------------------------------------------------------------===//

namespace {

/// Address collector with a visited-pointer set: the interning machinery and
/// the sharing-preserving collectors alias subvalues heavily, so a naive
/// recursive walk re-traverses the same DAG node once per parent. One
/// collector instance may be reused across many roots (reachableCells does),
/// in which case the visited set persists and shared structure is walked
/// exactly once for the whole traversal.
class AddressCollector {
public:
  /// \p NewlySeen, when set, receives every address whose insertion into
  /// \p Out was fresh — the worklist hook for reachableCells.
  explicit AddressCollector(AddressSet &Out,
                           std::vector<Address> *NewlySeen = nullptr)
      : Out(Out), NewlySeen(NewlySeen) {}

  void visit(const Value *V) {
    if (seen(V))
      return;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
      return;
    case ValueKind::Addr:
      address(V->address());
      return;
    case ValueKind::Pair:
      visit(V->first());
      visit(V->second());
      return;
    case ValueKind::Inl:
    case ValueKind::Inr:
    case ValueKind::TransApp:
    case ValueKind::PackTag:
    case ValueKind::PackTyVar:
    case ValueKind::PackRegion:
      visit(V->payload());
      return;
    case ValueKind::Code:
      visit(V->codeBody());
      return;
    }
  }

  void visit(const Term *E) {
    if (seen(E))
      return;
    switch (E->kind()) {
    case TermKind::App:
      visit(E->appFun());
      for (const Value *V : E->appArgs())
        visit(V);
      return;
    case TermKind::Let: {
      const Op *O = E->letOp();
      if (O->is(OpKind::Prim)) {
        visit(O->lhs());
        visit(O->rhs());
      } else {
        visit(O->value());
      }
      visit(E->sub1());
      return;
    }
    case TermKind::Halt:
      visit(E->scrutinee());
      return;
    case TermKind::IfGc:
    case TermKind::IfReg:
      visit(E->sub1());
      visit(E->sub2());
      return;
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion:
    case TermKind::LetWiden:
      visit(E->scrutinee());
      visit(E->sub1());
      return;
    case TermKind::LetRegion:
    case TermKind::Only:
      visit(E->sub1());
      return;
    case TermKind::Typecase:
      visit(E->caseInt());
      visit(E->caseArrow());
      visit(E->caseProd());
      visit(E->caseExists());
      return;
    case TermKind::IfLeft:
    case TermKind::If0:
      visit(E->scrutinee());
      visit(E->sub1());
      visit(E->sub2());
      return;
    case TermKind::Set:
      visit(E->scrutinee());
      visit(E->setSource());
      visit(E->sub1());
      return;
    }
  }

private:
  bool seen(const void *P) { return !Visited.insert(P).second; }

  void address(Address A) {
    if (Out.insert(A).second && NewlySeen)
      NewlySeen->push_back(A);
  }

  AddressSet &Out;
  std::vector<Address> *NewlySeen;
  std::unordered_set<const void *> Visited;
};

} // namespace

void scav::gc::collectAddresses(const Value *V, AddressSet &Out) {
  AddressCollector Coll(Out);
  Coll.visit(V);
}

void scav::gc::collectAddresses(const Term *E, AddressSet &Out) {
  AddressCollector Coll(Out);
  Coll.visit(E);
}

AddressSet scav::gc::reachableCells(const Machine &M) {
  AddressSet Seen;
  std::vector<Address> Work;
  // One collector for the whole traversal: its visited set spans every cell
  // visited below, so a value shared between N cells is walked once, not N
  // times.
  AddressCollector Coll(Seen, &Work);
  if (const Term *E = M.currentTerm())
    Coll.visit(E);
  while (!Work.empty()) {
    Address A = Work.back();
    Work.pop_back();
    if (const Value *Cell = M.memory().get(A))
      Coll.visit(Cell);
  }
  return Seen;
}

//===----------------------------------------------------------------------===//
// ⊢ (M, e)
//===----------------------------------------------------------------------===//

StateCheckResult scav::gc::checkState(Machine &M,
                                      const StateCheckOptions &Opts) {
  GcContext &C = M.context();
  Symbol CdS = C.cd().sym();

  // Checking allocates heavily (normalization, substitution); none of it
  // survives the call, so scope it with a context checkpoint — otherwise a
  // per-step checking run leaks the whole transcript of its own work. This
  // must be GcContext::Scope, not a raw arena checkpoint: the uniquing
  // tables and normalization memos would otherwise keep dangling pointers
  // to the released nodes.
  GcContext::Scope Scope(C);

  if (!M.typeTrackingOk())
    return StateCheckResult::failure("Psi maintenance failed: " +
                                     M.typeTrackingError());

  DiagEngine Diags;
  TypeChecker Checker(C, M.level(), Diags);

  CheckEnv Env;
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = CdS;
  Env.Delta = M.psi().domain();

  AddressSet Reachable;
  if (Opts.RestrictToReachable)
    Reachable = reachableCells(M);

  // Dom(M) = Dom(Ψ) region-wise.
  for (const auto &[S, _] : M.memory().Regions)
    if (!M.psi().hasRegion(S))
      return StateCheckResult::failure(
          "memory region missing from Psi: " + std::string(C.name(S)));
  for (const auto &[S, _] : M.psi().Regions)
    if (!M.memory().hasRegion(S))
      return StateCheckResult::failure(
          "Psi region missing from memory: " + std::string(C.name(S)));

  // ⊢ M : Ψ (cell by cell), with Fig 7's cd discipline.
  for (const auto &[S, R] : M.memory().Regions) {
    bool IsCd = S == CdS;
    for (uint32_t Off = 0; Off != R.Cells.size(); ++Off) {
      const Value *V = R.Cells[Off];
      if (!V)
        continue; // reserved-but-undefined code slot
      Address A{Region::name(S), Off};
      if (Opts.RestrictToReachable && !IsCd && !Reachable.count(A))
        continue; // Def 7.1: drop unreachable (possibly ill-typed) garbage.
      const Type *CellTy = M.psi().lookup(A);
      if (!CellTy)
        return StateCheckResult::failure("cell missing from Psi: " +
                                         printValue(C, C.valAddr(A)));
      if (IsCd) {
        if (!CellTy->is(TypeKind::Code) || !V->is(ValueKind::Code))
          return StateCheckResult::failure(
              "cd region holds a non-code cell (Fig 7): " +
              printValue(C, C.valAddr(A)));
        if (!Opts.CheckCodeRegion)
          continue;
      }
      Checker.setSkipCodeBodies(IsCd ? false : true);
      if (!Checker.checkValue(V, CellTy, Env)) {
        return StateCheckResult::failure(
            "cell " + printValue(C, C.valAddr(A)) + " := " + printValue(C, V) +
            " does not check against Psi type " + printType(C, CellTy) +
            "\n" + Diags.str());
      }
    }
  }

  // Ψ; Dom(Ψ); ·; ·; · ⊢ e.
  if (const Term *E = M.currentTerm()) {
    Checker.setSkipCodeBodies(true);
    if (!Checker.checkTerm(E, Env))
      return StateCheckResult::failure("term ill-typed:\n" + Diags.str());
  }

  return StateCheckResult{};
}
