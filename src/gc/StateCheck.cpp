//===- gc/StateCheck.cpp - Machine-state well-formedness ------------------===//

#include "gc/StateCheck.h"

#include <deque>

using namespace scav;
using namespace scav::gc;

//===----------------------------------------------------------------------===//
// Address collection / reachability
//===----------------------------------------------------------------------===//

void scav::gc::collectAddresses(const Value *V, std::set<Address> &Out) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Var:
    return;
  case ValueKind::Addr:
    Out.insert(V->address());
    return;
  case ValueKind::Pair:
    collectAddresses(V->first(), Out);
    collectAddresses(V->second(), Out);
    return;
  case ValueKind::Inl:
  case ValueKind::Inr:
  case ValueKind::TransApp:
  case ValueKind::PackTag:
  case ValueKind::PackTyVar:
  case ValueKind::PackRegion:
    collectAddresses(V->payload(), Out);
    return;
  case ValueKind::Code:
    collectAddresses(V->codeBody(), Out);
    return;
  }
}

void scav::gc::collectAddresses(const Term *E, std::set<Address> &Out) {
  switch (E->kind()) {
  case TermKind::App:
    collectAddresses(E->appFun(), Out);
    for (const Value *V : E->appArgs())
      collectAddresses(V, Out);
    return;
  case TermKind::Let: {
    const Op *O = E->letOp();
    if (O->is(OpKind::Prim)) {
      collectAddresses(O->lhs(), Out);
      collectAddresses(O->rhs(), Out);
    } else {
      collectAddresses(O->value(), Out);
    }
    collectAddresses(E->sub1(), Out);
    return;
  }
  case TermKind::Halt:
    collectAddresses(E->scrutinee(), Out);
    return;
  case TermKind::IfGc:
  case TermKind::IfReg:
    collectAddresses(E->sub1(), Out);
    collectAddresses(E->sub2(), Out);
    return;
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
  case TermKind::LetWiden:
    collectAddresses(E->scrutinee(), Out);
    collectAddresses(E->sub1(), Out);
    return;
  case TermKind::LetRegion:
  case TermKind::Only:
    collectAddresses(E->sub1(), Out);
    return;
  case TermKind::Typecase:
    collectAddresses(E->caseInt(), Out);
    collectAddresses(E->caseArrow(), Out);
    collectAddresses(E->caseProd(), Out);
    collectAddresses(E->caseExists(), Out);
    return;
  case TermKind::IfLeft:
  case TermKind::If0:
    collectAddresses(E->scrutinee(), Out);
    collectAddresses(E->sub1(), Out);
    collectAddresses(E->sub2(), Out);
    return;
  case TermKind::Set:
    collectAddresses(E->scrutinee(), Out);
    collectAddresses(E->setSource(), Out);
    collectAddresses(E->sub1(), Out);
    return;
  }
}

std::set<Address> scav::gc::reachableCells(const Machine &M) {
  std::set<Address> Seen;
  std::deque<Address> Work;
  std::set<Address> Roots;
  if (M.currentTerm())
    collectAddresses(M.currentTerm(), Roots);
  for (Address A : Roots) {
    if (Seen.insert(A).second)
      Work.push_back(A);
  }
  while (!Work.empty()) {
    Address A = Work.front();
    Work.pop_front();
    const Value *Cell = M.memory().get(A);
    if (!Cell)
      continue;
    std::set<Address> Next;
    collectAddresses(Cell, Next);
    for (Address B : Next)
      if (Seen.insert(B).second)
        Work.push_back(B);
  }
  return Seen;
}

//===----------------------------------------------------------------------===//
// ⊢ (M, e)
//===----------------------------------------------------------------------===//

StateCheckResult scav::gc::checkState(Machine &M,
                                      const StateCheckOptions &Opts) {
  GcContext &C = M.context();
  Symbol CdS = C.cd().sym();

  // Checking allocates heavily (normalization, substitution); none of it
  // survives the call, so scope it with a context checkpoint — otherwise a
  // per-step checking run leaks the whole transcript of its own work. This
  // must be GcContext::Scope, not a raw arena checkpoint: the uniquing
  // tables and normalization memos would otherwise keep dangling pointers
  // to the released nodes.
  GcContext::Scope Scope(C);

  if (!M.typeTrackingOk())
    return StateCheckResult::failure("Psi maintenance failed: " +
                                     M.typeTrackingError());

  DiagEngine Diags;
  TypeChecker Checker(C, M.level(), Diags);

  CheckEnv Env;
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = CdS;
  Env.Delta = M.psi().domain();

  std::set<Address> Reachable;
  if (Opts.RestrictToReachable)
    Reachable = reachableCells(M);

  // Dom(M) = Dom(Ψ) region-wise.
  for (const auto &[S, _] : M.memory().Regions)
    if (!M.psi().hasRegion(S))
      return StateCheckResult::failure(
          "memory region missing from Psi: " + std::string(C.name(S)));
  for (const auto &[S, _] : M.psi().Regions)
    if (!M.memory().hasRegion(S))
      return StateCheckResult::failure(
          "Psi region missing from memory: " + std::string(C.name(S)));

  // ⊢ M : Ψ (cell by cell), with Fig 7's cd discipline.
  for (const auto &[S, R] : M.memory().Regions) {
    bool IsCd = S == CdS;
    for (uint32_t Off = 0; Off != R.Cells.size(); ++Off) {
      const Value *V = R.Cells[Off];
      if (!V)
        continue; // reserved-but-undefined code slot
      Address A{Region::name(S), Off};
      if (Opts.RestrictToReachable && !IsCd && !Reachable.count(A))
        continue; // Def 7.1: drop unreachable (possibly ill-typed) garbage.
      const Type *CellTy = M.psi().lookup(A);
      if (!CellTy)
        return StateCheckResult::failure("cell missing from Psi: " +
                                         printValue(C, C.valAddr(A)));
      if (IsCd) {
        if (!CellTy->is(TypeKind::Code) || !V->is(ValueKind::Code))
          return StateCheckResult::failure(
              "cd region holds a non-code cell (Fig 7): " +
              printValue(C, C.valAddr(A)));
        if (!Opts.CheckCodeRegion)
          continue;
      }
      Checker.setSkipCodeBodies(IsCd ? false : true);
      if (!Checker.checkValue(V, CellTy, Env)) {
        return StateCheckResult::failure(
            "cell " + printValue(C, C.valAddr(A)) + " := " + printValue(C, V) +
            " does not check against Psi type " + printType(C, CellTy) +
            "\n" + Diags.str());
      }
    }
  }

  // Ψ; Dom(Ψ); ·; ·; · ⊢ e.
  if (const Term *E = M.currentTerm()) {
    Checker.setSkipCodeBodies(true);
    if (!Checker.checkTerm(E, Env))
      return StateCheckResult::failure("term ill-typed:\n" + Diags.str());
  }

  return StateCheckResult{};
}
