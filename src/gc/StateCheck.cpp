//===- gc/StateCheck.cpp - Machine-state well-formedness ------------------===//

#include "gc/StateCheck.h"

#include <algorithm>
#include <vector>

using namespace scav;
using namespace scav::gc;

//===----------------------------------------------------------------------===//
// Address collection / reachability
//===----------------------------------------------------------------------===//

namespace {

/// Address collector with a visited-pointer set: the interning machinery and
/// the sharing-preserving collectors alias subvalues heavily, so a naive
/// recursive walk re-traverses the same DAG node once per parent. One
/// collector instance may be reused across many roots (reachableCells does),
/// in which case the visited set persists and shared structure is walked
/// exactly once for the whole traversal.
class AddressCollector {
public:
  /// \p NewlySeen, when set, receives every address whose insertion into
  /// \p Out was fresh — the worklist hook for reachableCells.
  explicit AddressCollector(AddressSet &Out,
                           std::vector<Address> *NewlySeen = nullptr)
      : Out(Out), NewlySeen(NewlySeen) {}

  void visit(const Value *V) {
    if (seen(V))
      return;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
      return;
    case ValueKind::Addr:
      address(V->address());
      return;
    case ValueKind::Pair:
      visit(V->first());
      visit(V->second());
      return;
    case ValueKind::Inl:
    case ValueKind::Inr:
    case ValueKind::TransApp:
    case ValueKind::PackTag:
    case ValueKind::PackTyVar:
    case ValueKind::PackRegion:
      visit(V->payload());
      return;
    case ValueKind::Code:
      visit(V->codeBody());
      return;
    }
  }

  void visit(const Term *E) {
    if (seen(E))
      return;
    switch (E->kind()) {
    case TermKind::App:
      visit(E->appFun());
      for (const Value *V : E->appArgs())
        visit(V);
      return;
    case TermKind::Let: {
      const Op *O = E->letOp();
      if (O->is(OpKind::Prim)) {
        visit(O->lhs());
        visit(O->rhs());
      } else {
        visit(O->value());
      }
      visit(E->sub1());
      return;
    }
    case TermKind::Halt:
      visit(E->scrutinee());
      return;
    case TermKind::IfGc:
    case TermKind::IfReg:
      visit(E->sub1());
      visit(E->sub2());
      return;
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion:
    case TermKind::LetWiden:
      visit(E->scrutinee());
      visit(E->sub1());
      return;
    case TermKind::LetRegion:
    case TermKind::Only:
      visit(E->sub1());
      return;
    case TermKind::Typecase:
      visit(E->caseInt());
      visit(E->caseArrow());
      visit(E->caseProd());
      visit(E->caseExists());
      return;
    case TermKind::IfLeft:
    case TermKind::If0:
      visit(E->scrutinee());
      visit(E->sub1());
      visit(E->sub2());
      return;
    case TermKind::Set:
      visit(E->scrutinee());
      visit(E->setSource());
      visit(E->sub1());
      return;
    }
  }

private:
  bool seen(const void *P) { return !Visited.insert(P).second; }

  void address(Address A) {
    if (Out.insert(A).second && NewlySeen)
      NewlySeen->push_back(A);
  }

  AddressSet &Out;
  std::vector<Address> *NewlySeen;
  std::unordered_set<const void *> Visited;
};

/// Deterministic iteration order for error selection: by (region symbol id,
/// offset). Machine-minted symbol ids are a pure function of the program
/// (checker mints live in their own fresh namespace and never name
/// regions), so this order — and therefore which of several violations is
/// reported — is identical across sync and async runs of the same program.
bool addrLess(Address A, Address B) {
  if (A.R.sym() != B.R.sym())
    return A.R.sym().id() < B.R.sym().id();
  return A.Offset < B.Offset;
}

template <typename MapT>
std::vector<Symbol> sortedRegionSyms(const MapT &Regions) {
  std::vector<Symbol> Syms;
  Syms.reserve(Regions.size());
  for (const auto &KV : Regions)
    Syms.push_back(KV.first);
  std::sort(Syms.begin(), Syms.end(),
            [](Symbol A, Symbol B) { return A.id() < B.id(); });
  return Syms;
}

} // namespace

void scav::gc::collectAddresses(const Value *V, AddressSet &Out) {
  AddressCollector Coll(Out);
  Coll.visit(V);
}

void scav::gc::collectAddresses(const Term *E, AddressSet &Out) {
  AddressCollector Coll(Out);
  Coll.visit(E);
}

void scav::gc::reachableCells(const Term *E, const Memory &Mem,
                              AddressSet &Out, std::vector<Address> &Work) {
  Out.clear();
  Work.clear();
  // One collector for the whole traversal: its visited set spans every cell
  // visited below, so a value shared between N cells is walked once, not N
  // times.
  AddressCollector Coll(Out, &Work);
  if (E)
    Coll.visit(E);
  while (!Work.empty()) {
    Address A = Work.back();
    Work.pop_back();
    if (const Value *Cell = Mem.get(A))
      Coll.visit(Cell);
  }
}

void scav::gc::reachableCells(const Machine &M, AddressSet &Out,
                              std::vector<Address> &Work) {
  reachableCells(M.currentTerm(), M.memory(), Out, Work);
}

AddressSet scav::gc::reachableCells(const Machine &M) {
  AddressSet Seen;
  std::vector<Address> Work;
  reachableCells(M, Seen, Work);
  return Seen;
}

//===----------------------------------------------------------------------===//
// ⊢ (M, e)
//===----------------------------------------------------------------------===//

StateCheckResult scav::gc::checkState(Machine &Mach,
                                      const StateCheckOptions &Opts) {
  MachineSubject S(Mach);
  return checkState(S, Opts);
}

StateCheckResult scav::gc::checkState(CheckSubject &M,
                                      const StateCheckOptions &Opts) {
  TRACE_SCOPE("checker", "check.full");
  GcContext &C = M.context();
  Symbol CdS = C.cd().sym();

  // Compact layout: cells written as raw words (collector/VM fast paths)
  // must be decoded before the Scope below — decoded Values are cached in
  // Cells and must not live in allocations the scope will roll back.
  M.memory().decodeAll();

  // Checking allocates heavily (normalization, substitution); none of it
  // survives the call, so scope it with a context checkpoint — otherwise a
  // per-step checking run leaks the whole transcript of its own work. This
  // must be GcContext::Scope, not a raw arena checkpoint: the uniquing
  // tables and normalization memos would otherwise keep dangling pointers
  // to the released nodes.
  GcContext::Scope Scope(C);
  // The oracle's fresh mints live in their own "o" namespace (counter
  // persisted on the context): checking never perturbs the machine's (or
  // the incremental engine's) fresh-name numbering, so running extra
  // oracle checks cannot change any later diagnostic's spelling.
  GcContext::FreshScope Fresh(C, "o", C.oracleFreshCtr());

  if (!M.typeTrackingOk())
    return StateCheckResult::failure("Psi maintenance failed: " +
                                     M.typeTrackingError());

  DiagEngine Diags;
  TypeChecker Checker(C, M.level(), Diags);

  CheckEnv Env;
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = CdS;
  Env.Delta = M.psi().domain();

  AddressSet Reachable;
  if (Opts.RestrictToReachable) {
    std::vector<Address> Work;
    reachableCells(M.currentTerm(), M.memory(), Reachable, Work);
  }

  // Dom(M) = Dom(Ψ) region-wise. Region iteration is by symbol id so the
  // *first* violation reported is deterministic (see IncrementalStateCheck
  // doc).
  std::vector<Symbol> MemSyms = sortedRegionSyms(M.memory().Regions);
  for (Symbol S : MemSyms)
    if (!M.psi().hasRegion(S))
      return StateCheckResult::failure(
          "memory region missing from Psi: " + std::string(C.name(S)));
  for (Symbol S : sortedRegionSyms(M.psi().Regions)) {
    const RegionData *MD = M.memory().region(S);
    if (!MD)
      return StateCheckResult::failure(
          "Psi region missing from memory: " + std::string(C.name(S)));
    // Ψ entries exist only at offsets memory has (recordPut / defineCode
    // write at established cells, and MemoryType::set resizes exactly to
    // the written offset). A Ψ entry past the region's extent types a cell
    // that does not exist — fuzzer-found: the region-wise domain check
    // above cannot see it, and the per-cell loop below iterates memory.
    const RegionType &PT = *M.psi().region(S);
    const RegionData &RD = *MD;
    if (PT.Cells.size() > RD.Cells.size())
      return StateCheckResult::failure(
          "Psi types a cell memory does not have: " + std::string(C.name(S)) +
          "." + std::to_string(RD.Cells.size()));
  }

  // ⊢ M : Ψ (cell by cell), with Fig 7's cd discipline — the per-cell body
  // is TypeChecker::checkHeapCell, shared with the incremental checker so
  // the two produce identical verdicts and error text.
  std::string CellErr;
  for (Symbol S : MemSyms) {
    const RegionData &R = *M.memory().region(S);
    bool IsCd = S == CdS;
    for (uint32_t Off = 0; Off != R.Cells.size(); ++Off) {
      const Value *V = R.Cells[Off];
      if (!V)
        continue; // reserved-but-undefined code slot
      Address A{Region::name(S), Off};
      if (Opts.RestrictToReachable && !IsCd && !Reachable.count(A))
        continue; // Def 7.1: drop unreachable (possibly ill-typed) garbage.
      if (!Checker.checkHeapCell(A, V, M.psi().lookup(A), IsCd,
                                 Opts.CheckCodeRegion, Env,
                                 /*Cache=*/nullptr, &CellErr))
        return StateCheckResult::failure(std::move(CellErr));
    }
  }

  // Ψ; Dom(Ψ); ·; ·; · ⊢ e.
  if (const Term *E = M.currentTerm()) {
    Checker.setSkipCodeBodies(true);
    if (!Checker.checkTerm(E, Env))
      return StateCheckResult::failure("term ill-typed:\n" + Diags.str());
  }

  return StateCheckResult{};
}

//===----------------------------------------------------------------------===//
// IncrementalStateCheck
//===----------------------------------------------------------------------===//

namespace {

/// Collects every *region name* a cell judgment depends on: regions of
/// addresses embedded in the value (their typing reads Ψ), region mentions
/// in types (the cell type and the annotation types embedded in pack
/// values). Conservative over-collection is harmless (a spurious dependent
/// just re-validates); a miss would be a soundness bug, so every
/// region-carrying constructor is walked. Code values/types are closed
/// global entities (cd discipline) and are skipped, mirroring the machine's
/// own region-renaming iterator.
class RegionDepCollector {
public:
  explicit RegionDepCollector(std::unordered_set<Symbol, SymbolHash> &Out)
      : Out(Out) {}

  void region(Region R) {
    if (R.isName())
      Out.insert(R.sym());
  }
  void regions(const RegionSet &RS) {
    for (Region R : RS)
      region(R);
  }

  void visit(const Type *T) {
    if (!T || seen(T))
      return;
    switch (T->kind()) {
    case TypeKind::Int:
    case TypeKind::TyVar:
    case TypeKind::Code: // closed (see Machine::renameRegionName)
      return;
    case TypeKind::Prod:
    case TypeKind::Sum:
      visit(T->left());
      visit(T->right());
      return;
    case TypeKind::Left:
    case TypeKind::Right:
      visit(T->body());
      return;
    case TypeKind::At:
      region(T->atRegion());
      visit(T->body());
      return;
    case TypeKind::MApp:
      for (Region R : T->mRegions())
        region(R);
      return;
    case TypeKind::CApp:
      region(T->cFrom());
      region(T->cTo());
      return;
    case TypeKind::ExistsTag:
      visit(T->body());
      return;
    case TypeKind::ExistsTyVar:
    case TypeKind::ExistsRegion:
      regions(T->delta());
      visit(T->body());
      return;
    case TypeKind::TransCode:
      for (Region R : T->transRegions())
        region(R);
      region(T->atRegion());
      for (const Type *A : T->argTypes())
        visit(A);
      return;
    }
  }

  void visit(const Value *V) {
    if (!V || seen(V))
      return;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code: // cd-resident, closed
      return;
    case ValueKind::Addr:
      region(V->address().R);
      return;
    case ValueKind::Pair:
      visit(V->first());
      visit(V->second());
      return;
    case ValueKind::Inl:
    case ValueKind::Inr:
      visit(V->payload());
      return;
    case ValueKind::TransApp:
      for (Region R : V->transRegions())
        region(R);
      visit(V->payload());
      return;
    case ValueKind::PackTag:
      visit(V->payload());
      visit(V->bodyType());
      return;
    case ValueKind::PackTyVar:
      regions(V->delta());
      visit(V->typeWitness());
      visit(V->payload());
      visit(V->bodyType());
      return;
    case ValueKind::PackRegion:
      regions(V->delta());
      region(V->regionWitness());
      visit(V->payload());
      visit(V->bodyType());
      return;
    }
  }

private:
  bool seen(const void *P) { return !Visited.insert(P).second; }

  std::unordered_set<Symbol, SymbolHash> &Out;
  std::unordered_set<const void *> Visited;
};

} // namespace

IncrementalStateCheck::IncrementalStateCheck(Machine &Mach,
                                             IncrementalCheckOptions Opts)
    : OwnedSubject(std::make_unique<MachineSubject>(Mach)), M(*OwnedSubject),
      Opts(Opts), CdS(M.context().cd().sym()),
      Checker(M.context(), M.level(), Diags) {}

IncrementalStateCheck::IncrementalStateCheck(CheckSubject &S,
                                             IncrementalCheckOptions Opts)
    : M(S), Opts(Opts), CdS(M.context().cd().sym()),
      Checker(M.context(), M.level(), Diags) {}

StateCheckResult IncrementalStateCheck::check() {
  TRACE_SCOPE("checker", "check.incremental");
  ++Stats.Checks;
  if (!M.typeTrackingOk())
    return StateCheckResult::failure("Psi maintenance failed: " +
                                     M.typeTrackingError());
  // Compact layout: surface word-written cells as Values before opening
  // the scope below (decodes cache into Cells and must survive rollback).
  M.memory().decodeAll();
  // Everything the check allocates (normalization, term forcing,
  // diagnostics) is transient; the caches hold only pointers to
  // machine-owned nodes, so the whole check runs under a context scope —
  // same discipline as the full checkState.
  GcContext::Scope Scope(M.context());
  // Engine mints live in the "c" fresh namespace, numbered continuously
  // across checks: they can neither collide with nor renumber the
  // machine's own `Base$<n>` mints, which keeps every diagnostic's
  // spelling a pure function of the subject state.
  GcContext::FreshScope Fresh(M.context(), "c", EngineFreshCtr);
  StateCheckResult R = runCheck();
  Stats.CachedFacts = Facts.size();
  Stats.CellJudgmentCacheHits = JudgmentMemo.Hits;
  return R;
}

StateCheckResult IncrementalStateCheck::runCheck() {
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = CdS;
  Env.Delta = M.psi().domain();
  ExactThisCheck = false;

  if (!Attached) {
    M.enableDeltaJournal();
    Attached = true;
    JournalCursor = M.journalEnd();
    CheckCodeNow = Opts.CheckCodeRegion;
    return resync();
  }
  if (NeedResync ||
      (Opts.ResyncEvery != 0 && Stats.Checks % Opts.ResyncEvery == 0)) {
    CheckCodeNow = false; // matches the per-step oracle's settings
    return resync();
  }

  DirtySet.clear();
  if (StateCheckResult R = drainJournal(); !R.Ok)
    return R;
  if (NeedResync) { // out-of-band mutation: the journal cannot say what
    CheckCodeNow = false;
    return resync();
  }
  collectDirty();
  if (StateCheckResult R = checkRegionDomains(); !R.Ok)
    return R;
  CheckCodeNow = Opts.CheckCodeRegion; // freshly defined code
  if (StateCheckResult R = validateDirty(); !R.Ok)
    return R;

  // A cell that failed while unreachable is tolerated garbage (Def 7.1) —
  // but if the conservative reachable set has since grown over it, decide
  // exactly, as the full checker would.
  if (Opts.RestrictToReachable && ReachGrew && !KnownBad.empty()) {
    bool Hit = false;
    for (Address B : KnownBad)
      if (ReachPlus.count(B)) {
        Hit = true;
        break;
      }
    if (Hit) {
      if (!ExactThisCheck)
        recomputeExactReachable();
      // Dedicated snapshot: validateCell's success path reuses WorkScratch
      // as the addToReachable worklist, which would invalidate a range-for
      // over it. Sorted for deterministic failure selection.
      std::vector<Address> Recheck(KnownBad.begin(), KnownBad.end());
      std::sort(Recheck.begin(), Recheck.end(), addrLess);
      for (Address B : Recheck) {
        if (!ReachPlus.count(B))
          continue;
        KnownBad.erase(B);
        std::string Err;
        if (!validateCell(B, Err))
          return StateCheckResult::failure(std::move(Err));
      }
    }
  }
  ReachGrew = false;

  return checkTermJudgment();
}

StateCheckResult IncrementalStateCheck::resync() {
  TRACE_INSTANT("checker", "check.resync");
  ++Stats.FullResyncs;
  NeedResync = false;
  Facts.clear();
  Dependents.clear();
  JudgmentMemo.clear();
  KnownBad.clear();
  ReachGrew = false;

  if (Opts.RestrictToReachable)
    recomputeExactReachable();
  else
    ReachPlus.clear();

  if (StateCheckResult R = checkRegionDomains(); !R.Ok)
    return R;

  for (Symbol S : sortedRegionSyms(M.memory().Regions)) {
    const RegionData &RD = *M.memory().region(S);
    Region RName = Region::name(S);
    for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off) {
      if (!RD.Cells[Off])
        continue;
      std::string Err;
      if (!validateCell(Address{RName, Off}, Err))
        return StateCheckResult::failure(std::move(Err));
    }
  }

  syncCursors();
  JournalCursor = M.journalEnd();
  M.trimJournal(JournalCursor);
  return checkTermJudgment();
}

StateCheckResult IncrementalStateCheck::drainJournal() {
  uint64_t End = M.journalEnd();
  for (; JournalCursor != End && !NeedResync; ++JournalCursor) {
    const DeltaEvent &Ev = M.journalEvent(JournalCursor);
    ++Stats.JournalEventsConsumed;
    switch (Ev.Kind) {
    case DeltaKind::RegionCreated:
      // Monotone: nothing cached is affected; a zeroed cursor makes
      // collectDirty pick up every cell the region accrues.
      Cursors.try_emplace(Ev.R);
      break;
    case DeltaKind::RegionDropped:
      TRACE_INSTANT("checker", "invalidate.drop");
      invalidateRegion(Ev.R, /*Dropped=*/true);
      break;
    case DeltaKind::RegionWidened:
      TRACE_INSTANT("checker", "invalidate.widen");
      invalidateRegion(Ev.R, /*Dropped=*/false);
      break;
    case DeltaKind::ExternalMutation:
      TRACE_INSTANT("checker", "invalidate.external");
      NeedResync = true; // consume the rest via resync
      break;
    }
  }
  if (NeedResync)
    JournalCursor = End;
  M.trimJournal(JournalCursor);
  return StateCheckResult{};
}

void IncrementalStateCheck::invalidateRegion(Symbol S, bool Dropped) {
  ++Stats.RegionInvalidations;
  // The (value, type) memo can hide a judgment that consulted S through an
  // embedded address; region events are rare (once per collection), so a
  // coarse clear is the honest price of keyed-by-pointer memoization.
  JudgmentMemo.clear();

  // Facts about S's own cells.
  for (auto It = Facts.begin(); It != Facts.end();) {
    if (It->first.R.sym() == S)
      It = Facts.erase(It);
    else
      ++It;
  }
  if (Dropped) {
    Cursors.erase(S);
    for (auto It = KnownBad.begin(); It != KnownBad.end();) {
      if (It->R.sym() == S)
        It = KnownBad.erase(It);
      else
        ++It;
    }
    for (auto It = ReachPlus.begin(); It != ReachPlus.end();) {
      if (It->R.sym() == S)
        It = ReachPlus.erase(It);
      else
        ++It;
    }
  } else {
    // Widened in place: every surviving cell of S must re-validate against
    // its rewritten Ψ type (and annotation-rewritten value).
    if (const RegionData *RD = M.memory().region(S)) {
      Region RName = Region::name(S);
      for (uint32_t Off = 0; Off != RD->Cells.size(); ++Off)
        if (RD->Cells[Off])
          DirtySet.insert(Address{RName, Off});
    }
  }

  // Judgments elsewhere that consulted S (dropped: they must now fail if
  // reachable, exactly as the full checker fails them; widened: their
  // addresses' Ψ entries changed view).
  auto DIt = Dependents.find(S);
  if (DIt != Dependents.end()) {
    for (Address A : DIt->second) {
      if (A.R.sym() == S)
        continue; // own-region facts already handled above
      if (Facts.erase(A) != 0) {
        DirtySet.insert(A);
        ++Stats.DependentInvalidations;
      }
    }
    Dependents.erase(DIt);
  }
}

void IncrementalStateCheck::collectDirty() {
  for (auto &[S, RD] : M.memory().Regions) {
    RegionCursor &Cur = Cursors[S]; // zero-init for untracked regions
    RegionType *PT = nullptr;
    auto PIt = M.psi().Regions.find(S);
    if (PIt != M.psi().Regions.end())
      PT = &PIt->second;
    uint64_t PsiV = PT ? PT->Version : 0;
    if (Cur.MemVersion == RD.Version && Cur.PsiVersion == PsiV &&
        Cur.MemCells == RD.Cells.size())
      continue; // untouched region: O(1) skip
    Region RName = Region::name(S);
    // Fresh cells (put / reserveCode growth).
    for (size_t Off = Cur.MemCells; Off < RD.Cells.size(); ++Off) {
      Address A{RName, static_cast<uint32_t>(Off)};
      DirtySet.insert(A);
      // A put-bound address flows straight into the term: conservatively
      // reachable from birth.
      if (Opts.RestrictToReachable && S != CdS && ReachPlus.insert(A).second)
        ReachGrew = true;
    }
    // In-place overwrites (set / fill / defineCode). An overflowed log has
    // forgotten which offsets were written (Memory.h, DirtyLogCap), so the
    // honest fallback is to treat every established cell as dirty — the
    // cost of one bounded-memory resync of the region.
    if (RD.DirtyOverflow) {
      for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off)
        if (RD.Cells[Off])
          DirtySet.insert(Address{RName, Off});
    } else {
      for (uint32_t Off : RD.DirtyLog)
        DirtySet.insert(Address{RName, Off});
    }
    RD.clearDirty();
    // In-place Ψ overwrites happen under external surgery (the machine
    // appends or rewrites whole regions, which are journaled) or when an
    // out-of-order defineCode fills a reserved null pad in cd: treat the
    // region as suspicious — re-validate the touched cells and poison
    // judgments that depend on this region.
    if (PT && (PT->DirtyOverflow || !PT->DirtyLog.empty())) {
      if (PT->DirtyOverflow) {
        for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off)
          if (RD.Cells[Off])
            DirtySet.insert(Address{RName, Off});
      } else {
        for (uint32_t Off : PT->DirtyLog)
          DirtySet.insert(Address{RName, Off});
      }
      PT->clearDirty();
      invalidateRegion(S, /*Dropped=*/false);
    }
    Cur.MemVersion = RD.Version;
    Cur.MemCells = RD.Cells.size();
    Cur.PsiVersion = PT ? PT->Version : 0;
  }
}

StateCheckResult IncrementalStateCheck::checkRegionDomains() {
  GcContext &C = M.context();
  for (Symbol S : sortedRegionSyms(M.memory().Regions))
    if (!M.psi().hasRegion(S))
      return StateCheckResult::failure("memory region missing from Psi: " +
                                       std::string(C.name(S)));
  for (Symbol S : sortedRegionSyms(M.psi().Regions)) {
    const RegionType &PT = *M.psi().region(S);
    const RegionData *MD = M.memory().region(S);
    if (!MD)
      return StateCheckResult::failure("Psi region missing from memory: " +
                                       std::string(C.name(S)));
    // Mirror of the full checker's extent check (same error text): a Ψ
    // entry past the region's memory extent types a nonexistent cell, and
    // neither per-cell pass would visit it.
    if (PT.Cells.size() > MD->Cells.size())
      return StateCheckResult::failure(
          "Psi types a cell memory does not have: " + std::string(C.name(S)) +
          "." + std::to_string(MD->Cells.size()));
  }
  return StateCheckResult{};
}

StateCheckResult IncrementalStateCheck::validateDirty() {
  // Sorted so which of several bad cells fails the check is deterministic.
  std::vector<Address> Dirty(DirtySet.begin(), DirtySet.end());
  std::sort(Dirty.begin(), Dirty.end(), addrLess);
  for (Address A : Dirty) {
    std::string Err;
    if (!validateCell(A, Err))
      return StateCheckResult::failure(std::move(Err));
  }
  return StateCheckResult{};
}

bool IncrementalStateCheck::validateCell(Address A, std::string &Err) {
  const RegionData *RD = M.memory().region(A.R.sym());
  if (!RD) { // region dropped after this address was dirtied
    Facts.erase(A);
    return true;
  }
  const Value *V =
      A.Offset < RD->Cells.size() ? RD->Cells[A.Offset] : nullptr;
  if (!V) { // reserved-but-undefined code slot
    Facts.erase(A);
    return true;
  }
  const Type *CellTy = M.psi().lookup(A);
  bool IsCd = A.R.sym() == CdS;

  auto It = Facts.find(A);
  if (It != Facts.end() && It->second.V == V && It->second.T == CellTy)
    return true; // dirtied but unchanged (e.g. idempotent fill)

  ++Stats.CellsValidated;
  std::string CellErr;
  bool Ok = Checker.checkHeapCell(A, V, CellTy, IsCd, CheckCodeNow, Env,
                                  IsCd ? nullptr : &JudgmentMemo, &CellErr);
  if (Ok) {
    Facts[A] = CellFact{V, CellTy};
    KnownBad.erase(A);
    if (!IsCd) {
      recordDeps(A, V, CellTy);
      if (Opts.RestrictToReachable)
        addToReachable(A, V);
    }
    return true;
  }

  Facts.erase(A);
  if (!Opts.RestrictToReachable || IsCd) {
    Err = std::move(CellErr);
    return false;
  }
  // Def 7.1: an unreachable ill-typed cell is tolerated garbage. The
  // conservative set only ever *skips* (definitely-unreachable) failures;
  // a failure inside it is decided by exact reachability.
  if (!ReachPlus.count(A)) {
    KnownBad.insert(A);
    return true;
  }
  if (!ExactThisCheck)
    recomputeExactReachable();
  if (ReachPlus.count(A)) {
    Err = std::move(CellErr);
    return false;
  }
  KnownBad.insert(A);
  return true;
}

void IncrementalStateCheck::recordDeps(Address A, const Value *V,
                                       const Type *T) {
  std::unordered_set<Symbol, SymbolHash> Regs;
  RegionDepCollector Coll(Regs);
  Coll.visit(V);
  Coll.visit(T);
  for (Symbol S : Regs) {
    if (S == CdS || S == A.R.sym())
      continue; // cd is immortal; own-region facts are invalidated directly
    Dependents[S].push_back(A);
  }
}

void IncrementalStateCheck::addToReachable(Address A, const Value *V) {
  // Contents become reachable only through a (conservatively) reachable
  // cell; unreachable garbage must not grow the set, or the Def 7.1 skip
  // would erode into checking everything.
  if (!ReachPlus.count(A))
    return;
  WorkScratch.clear();
  size_t Before = ReachPlus.size();
  AddressCollector Coll(ReachPlus, &WorkScratch);
  Coll.visit(V);
  while (!WorkScratch.empty()) {
    Address Next = WorkScratch.back();
    WorkScratch.pop_back();
    if (const Value *Cell = M.memory().get(Next))
      Coll.visit(Cell);
  }
  if (ReachPlus.size() != Before)
    ReachGrew = true;
}

void IncrementalStateCheck::recomputeExactReachable() {
  ++Stats.ReachExactRecomputes;
  reachableCells(M.currentTerm(), M.memory(), ReachScratch, WorkScratch);
  ReachPlus.swap(ReachScratch);
  ExactThisCheck = true;
}

void IncrementalStateCheck::syncCursors() {
  Cursors.clear();
  for (auto &[S, RD] : M.memory().Regions) {
    RegionCursor Cur;
    Cur.MemVersion = RD.Version;
    Cur.MemCells = RD.Cells.size();
    RD.clearDirty();
    auto It = M.psi().Regions.find(S);
    if (It != M.psi().Regions.end()) {
      Cur.PsiVersion = It->second.Version;
      It->second.clearDirty();
    }
    Cursors.emplace(S, Cur);
  }
}

StateCheckResult IncrementalStateCheck::checkTermJudgment() {
  // The redex moves every step and the environment machine's force
  // boundary rebuilds the closed term anyway, so the term judgment is
  // re-run in full — measured at tens of microseconds against the
  // multi-millisecond per-cell loop this class exists to kill.
  if (const Term *E = M.currentTerm()) {
    Checker.setSkipCodeBodies(true);
    Diags.clear();
    if (!Checker.checkTerm(E, Env))
      return StateCheckResult::failure("term ill-typed:\n" + Diags.str());
  }
  return StateCheckResult{};
}
