//===- gc/CollectorBasic.cpp - The certified basic collector (Fig 12) -----===//
///
/// \file
/// See CollectorBasic.h for the overview. Deviations from the figure as
/// printed (all derived by re-typechecking the figure):
///
///  * translucent code pins regions as well as tags (Type.h);
///  * pack witnesses / pinning orders follow the types, where the figure's
///    copypair1 swaps t1/t2 inconsistently;
///  * copyexist1's env parameter has type tk[∃u.te u] (the original
///    continuation), where the figure prints tk[te t1].
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorBasic.h"

#include "gc/ContClosure.h"
#include "gc/StateCheck.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// The basic collector's continuation layout: regions (r1,r2,r3), copied
/// values land in r2, continuation closures live in r3.
ContLayout basicLayout(Region R1, Region R2, Region R3) {
  ContLayout L;
  L.Regions = {R1, R2, R3};
  L.To = R2;
  L.Holder = R3;
  return L;
}

const Term *applyContB(GcContext &C, const Value *K, const Value *CopiedVal,
                       Region R1, Region R2, Region R3) {
  return scav::gc::applyCont(C, basicLayout(R1, R2, R3), K, CopiedVal);
}

const Value *packContB(GcContext &C, const Tag *S, const Tag *W1, const Tag *W2,
                       const Tag *We, const Type *EnvTy, const Value *Code,
                       const Value *Env, Region R1, Region R2, Region R3) {
  return scav::gc::packCont(C, basicLayout(R1, R2, R3), S, W1, W2, We, EnvTy,
                            Code, Env);
}

/// M_ρ(τ→0) for a unary arrow.
const Type *mArrow(GcContext &C, Region R, const Tag *Arg) {
  return C.typeM(R, C.tagArrow({Arg}));
}

} // namespace

const Type *scav::gc::basicContType(GcContext &C, const Tag *S, Region R1,
                                    Region R2, Region R3) {
  return contType(C, basicLayout(R1, R2, R3), S);
}

BasicCollectorLib scav::gc::installBasicCollector(Machine &M) {
  GcContext &C = M.context();

  BasicCollectorLib Lib;
  Lib.Gc = M.reserveCode("gc");
  Lib.GcEnd = M.reserveCode("gcend");
  Lib.Copy = M.reserveCode("copy");
  Lib.CopyPair1 = M.reserveCode("copypair1");
  Lib.CopyPair2 = M.reserveCode("copypair2");
  Lib.CopyExist1 = M.reserveCode("copyexist1");

  const Tag *IdFun = C.tagIdFun();

  //--------------------------------------------------------------------//
  // copy[t:Ω][r1,r2,r3](x : M_{r1}(t), k : tk[t])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Value *X = CB.valParam("x", C.typeM(R1, T));
    const Value *K = CB.valParam("k", basicContType(C, T, R1, R2, R3));

    // Int and λ arms: x already needs no copy; return it to k.
    const Term *IntArm = applyContB(C, K, X, R1, R2, R3);
    const Term *ArrowArm = applyContB(C, K, X, R1, R2, R3);

    // t1 × t2 arm.
    Symbol TP1 = C.fresh("t1"), TP2 = C.fresh("t2");
    const Term *ProdArm;
    {
      const Tag *T1 = C.tagVar(TP1), *T2 = C.tagVar(TP2);
      const Tag *ProdTag = C.tagProd(T1, T2);
      BlockBuilder B(C);
      const Value *G = B.get(X);
      const Value *X2 = B.proj2(G);
      const Value *Env = C.valPair(X2, K);
      const Type *EnvTy =
          C.typeProd(C.typeM(R1, T2), basicContType(C, ProdTag, R1, R2, R3));
      const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair1),
                                        {T1, T2, IdFun}, {R1, R2, R3});
      const Value *Pk =
          packContB(C, T1, T1, T2, IdFun, EnvTy, Code, Env, R1, R2, R3);
      const Value *K2 = B.put(R3, Pk);
      const Value *X1 = B.proj1(G);
      ProdArm = B.finish(
          C.termApp(C.valAddr(Lib.Copy), {T1}, {R1, R2, R3}, {X1, K2}));
    }

    // ∃ arm.
    Symbol TEv = C.fresh("te");
    const Term *ExistsArm;
    {
      const Tag *Te = C.tagVar(TEv);
      Symbol U = C.fresh("u");
      const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
      BlockBuilder B(C);
      const Value *G = B.get(X);
      auto [Tx, Y] = B.openTag(G, "tx", "y");
      const Tag *PayloadTag = C.tagApp(Te, Tx);
      const Type *EnvTy = basicContType(C, ExTag, R1, R2, R3);
      const Value *Code = C.valTransApp(C.valAddr(Lib.CopyExist1),
                                        {Tx, C.tagInt(), Te}, {R1, R2, R3});
      const Value *Pk = packContB(C, PayloadTag, Tx, C.tagInt(), Te, EnvTy,
                                 Code, K, R1, R2, R3);
      const Value *K2 = B.put(R3, Pk);
      ExistsArm = B.finish(C.termApp(C.valAddr(Lib.Copy), {PayloadTag},
                                     {R1, R2, R3}, {Y, K2}));
    }

    const Term *Body = C.termTypecase(T, IntArm, ArrowArm, TP1, TP2, ProdArm,
                                      TEv, ExistsArm);
    M.defineCode(Lib.Copy, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair1[t1,t2,te][r1,r2,r3](x1 : M_{r2}(t1),
  //                               c : M_{r1}(t2) × tk[t1×t2])
  // First component copied; start copying the second.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X1 = CB.valParam("x1", C.typeM(R2, T1));
    const Value *Cv = CB.valParam(
        "c",
        C.typeProd(C.typeM(R1, T2), basicContType(C, ProdTag, R1, R2, R3)));

    BlockBuilder B(C);
    const Value *K = B.proj2(Cv);
    const Value *Env = C.valPair(X1, K);
    const Type *EnvTy =
        C.typeProd(C.typeM(R2, T1), basicContType(C, ProdTag, R1, R2, R3));
    const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair2), {T1, T2, IdFun},
                                      {R1, R2, R3});
    const Value *Pk =
        packContB(C, T2, T1, T2, IdFun, EnvTy, Code, Env, R1, R2, R3);
    const Value *K2 = B.put(R3, Pk);
    const Value *X2From = B.proj1(Cv);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T2}, {R1, R2, R3}, {X2From, K2}));
    M.defineCode(Lib.CopyPair1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair2[t1,t2,te][r1,r2,r3](x2 : M_{r2}(t2),
  //                               c : M_{r2}(t1) × tk[t1×t2])
  // Both components copied; allocate the pair and resume.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X2 = CB.valParam("x2", C.typeM(R2, T2));
    const Value *Cv = CB.valParam(
        "c",
        C.typeProd(C.typeM(R2, T1), basicContType(C, ProdTag, R1, R2, R3)));

    BlockBuilder B(C);
    const Value *X1 = B.proj1(Cv);
    const Value *A = B.put(R2, C.valPair(X1, X2));
    const Value *K = B.proj2(Cv);
    const Term *Body = B.finish(applyContB(C, K, A, R1, R2, R3));
    M.defineCode(Lib.CopyPair2, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copyexist1[t1,t2,te][r1,r2,r3](z : M_{r2}(te t1), c : tk[∃u.te u])
  // Payload copied; repack the existential in to-space and resume.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    const Tag *Te = CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    Symbol U = C.fresh("u");
    const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
    const Value *Z = CB.valParam("z", C.typeM(R2, C.tagApp(Te, T1)));
    const Value *Cv = CB.valParam("c", basicContType(C, ExTag, R1, R2, R3));

    BlockBuilder B(C);
    Symbol V = C.fresh("v");
    const Value *Pk = C.valPackTag(
        V, T1, Z, C.typeM(R2, C.tagApp(Te, C.tagVar(V))));
    const Value *A = B.put(R2, Pk);
    const Term *Body = B.finish(applyContB(C, Cv, A, R1, R2, R3));
    M.defineCode(Lib.CopyExist1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gcend[t1,t2,te][r1,r2,r3](y : M_{r2}(t1), f : M_{r2}(t1→0))
  // Collection finished: free everything but to-space and re-enter the
  // mutator.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    (void)CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    (void)CB.regionParam("r3");
    const Value *Y = CB.valParam("y", C.typeM(R2, T1));
    const Value *F = CB.valParam("f", mArrow(C, R2, T1));

    BlockBuilder B(C);
    B.only(RegionSet{R2});
    const Term *Body = B.finish(C.termApp(F, {}, {R2}, {Y}));
    M.defineCode(Lib.GcEnd, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gc[t:Ω][r1](f : M_{r1}(t→0), x : M_{r1}(t))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region R1 = CB.regionParam("r1");
    const Value *F = CB.valParam("f", mArrow(C, R1, T));
    const Value *X = CB.valParam("x", C.typeM(R1, T));

    BlockBuilder B(C);
    Region R2 = B.letRegion("r2");
    Region R3 = B.letRegion("r3");
    const Type *EnvTy = mArrow(C, R2, T);
    const Value *Code = C.valTransApp(C.valAddr(Lib.GcEnd),
                                      {T, C.tagInt(), IdFun}, {R1, R2, R3});
    const Value *Pk =
        packContB(C, T, T, C.tagInt(), IdFun, EnvTy, Code, F, R1, R2, R3);
    const Value *K = B.put(R3, Pk);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T}, {R1, R2, R3}, {X, K}));
    M.defineCode(Lib.Gc, CB.build(Body));
  }

  markCollectorPhases(M, Lib);
  return Lib;
}

bool scav::gc::certifyCodeRegion(Machine &M, DiagEngine &Diags) {
  GcContext &C = M.context();
  TypeChecker Checker(C, M.level(), Diags);
  Checker.setSkipCodeBodies(false);

  CheckEnv Env;
  Env.Psi.M = &M.psi();
  Env.Psi.Cd = C.cd().sym();
  Env.Delta = M.psi().domain();

  const RegionData *Cd = M.memory().region(C.cd().sym());
  if (!Cd)
    return false;
  bool Ok = true;
  for (uint32_t Off = 0; Off != Cd->Cells.size(); ++Off) {
    const Value *V = Cd->Cells[Off];
    if (!V)
      continue;
    Address A{C.cd(), Off};
    const Type *T = M.psi().lookup(A);
    if (!T || !Checker.checkValue(V, T, Env)) {
      Diags.error("code block at cd." + std::to_string(Off) +
                  " failed certification");
      Ok = false;
    }
  }
  return Ok;
}
