//===- gc/HeapWord.h - Tagged 64-bit cell words for the compact heap -*- C++ -*-===//
///
/// \file
/// The compact heap layout (DESIGN.md §3.12) stores each region cell as one
/// 64-bit tagged word instead of a `const Value *` into the arena:
///
///   bits 63..60  tag (WordTag)
///   bits 59..0   payload
///
/// The common shapes stay inside the flat buffer:
///
///   Int      60-bit signed integer, inline (wider ints fall back to Box)
///   Addr     28-bit dense region id | 32-bit offset
///   Pair     32-bit index into the region's Aux buffer; the two children
///            are the words Aux[i] and Aux[i+1]
///   InlAddr  an inl whose payload is an address, packed like Addr —
///   InrAddr  the forwarding-collector sum header, by far the hottest
///            inl/inr case, costs no indirection at all
///   InlAux   an inl/inr with any other payload: one child word in Aux
///   InrAux
///   Box      32-bit index into the region's Boxed side table of
///            `const Value *` — Var, Code, TransApp, out-of-range ints,
///            and addresses whose region id exceeds 28 bits. Boxed cells
///            keep the *original* pointer, so decoding a Box is
///            pointer-identity preserving.
///
/// The three pack forms — λGC's existential wrappers, which every heap
/// reference the collector programs copy is wrapped in — keep their value
/// payload in the word world and stash the type-level attachments as raw
/// 64-bit entries in Aux (interned/arena pointers and POD symbols, all
/// with a zero tag nibble — see packable()):
///
///   PackTagAux     Aux[i]=payload word  [i+1]=binder Symbol
///                  [i+2]=witness Tag*   [i+3]=body Type*
///   PackTyVarAux   Aux[i]=payload word  [i+1]=binder Symbol
///                  [i+2]=∆ RegionSet*   [i+3]=witness Type*
///                  [i+4]=body Type*
///   PackRegionAux  Aux[i]=payload word  [i+1]=binder Symbol
///                  [i+2]=∆ RegionSet*   [i+3]=witness region (regionBits)
///                  [i+4]=body Type*
///
/// Attachment entries deliberately read as Hole-tagged words: the parallel
/// copier's index-rebase sweep walks Aux blindly, rewrites only words with
/// an aux-index tag, and passes attachments through untouched. Decoding a
/// pack word rebuilds a fresh Value node (attachment pointers are shared,
/// the node itself is not), so unlike Box it preserves structure, not
/// pointer identity.
///
///   Hole     the all-zero word: a reserved-but-unfilled slot (Cheney
///            reserve, reserveCode). Int has tag 1 so that the integer 0 is
///            a non-zero word and `word == 0` means exactly "no value".
///
/// Region ids are dense per-Memory indices (Memory::ensureRegionId); the
/// id → symbol table is append-only and ids are reused when a region name
/// is re-added, so words that survive a region's death and resurrection
/// still decode to the same symbol.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_HEAPWORD_H
#define SCAV_GC_HEAPWORD_H

#include "gc/Region.h"

#include <bit>
#include <cstdint>

namespace scav::gc::heapword {

enum class WordTag : uint8_t {
  Hole = 0,
  Int = 1,
  Addr = 2,
  Pair = 3,
  InlAddr = 4,
  InrAddr = 5,
  InlAux = 6,
  InrAux = 7,
  Box = 8,
  PackTagAux = 9,
  PackTyVarAux = 10,
  PackRegionAux = 11,
};

constexpr unsigned TagShift = 60;
constexpr uint64_t PayloadMask = (uint64_t(1) << TagShift) - 1;
constexpr uint64_t Hole = 0;

/// Largest dense region id representable in an Addr payload (28 bits).
constexpr uint32_t MaxRegionId = (uint32_t(1) << 28) - 1;

/// Inline-int range: 60-bit two's complement.
constexpr int64_t IntMin = -(int64_t(1) << 59);
constexpr int64_t IntMax = (int64_t(1) << 59) - 1;

inline constexpr WordTag tagOf(uint64_t W) {
  return static_cast<WordTag>(W >> TagShift);
}

inline constexpr uint64_t make(WordTag T, uint64_t Payload) {
  return (uint64_t(T) << TagShift) | (Payload & PayloadMask);
}

inline constexpr bool fitsInt(int64_t N) { return N >= IntMin && N <= IntMax; }

inline constexpr uint64_t makeInt(int64_t N) {
  return make(WordTag::Int, uint64_t(N));
}

/// Sign-extends the 60-bit payload back to int64_t.
inline constexpr int64_t intOf(uint64_t W) {
  return int64_t(W << (64 - TagShift)) >> (64 - TagShift);
}

inline constexpr uint64_t addrPayload(uint32_t RegionId, uint32_t Offset) {
  return (uint64_t(RegionId) << 32) | Offset;
}

inline constexpr uint64_t makeAddr(uint32_t RegionId, uint32_t Offset) {
  return make(WordTag::Addr, addrPayload(RegionId, Offset));
}

/// Region id of an Addr/InlAddr/InrAddr payload.
inline constexpr uint32_t addrRegionId(uint64_t W) {
  return uint32_t((W & PayloadMask) >> 32);
}

inline constexpr uint32_t addrOffset(uint64_t W) { return uint32_t(W); }

/// Aux/Boxed index of a Pair/InlAux/InrAux/Box/Pack* word (low 32 bits).
inline constexpr uint32_t indexOf(uint64_t W) { return uint32_t(W); }

/// Number of consecutive Aux entries an aux-indexed word owns (0 for
/// inline-payload and Box words).
inline constexpr uint32_t auxSpan(WordTag T) {
  switch (T) {
  case WordTag::Pair:
    return 2;
  case WordTag::InlAux:
  case WordTag::InrAux:
    return 1;
  case WordTag::PackTagAux:
    return 4;
  case WordTag::PackTyVarAux:
  case WordTag::PackRegionAux:
    return 5;
  default:
    return 0;
  }
}

/// True for words whose payload is an index into the owning region's Aux
/// table (everything the region-liveness reasoning has to care about).
inline constexpr bool isAuxTag(WordTag T) { return auxSpan(T) != 0; }

/// An interned/arena pointer is packable as a raw Aux attachment entry iff
/// its tag nibble is zero (true for userspace pointers on every supported
/// target; encoders fall back to Box when it is not).
inline bool packable(const void *P) {
  return (reinterpret_cast<uintptr_t>(P) >> TagShift) == 0;
}

inline uint64_t ptrBits(const void *P) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P));
}

template <typename T> inline const T *ptrOf(uint64_t W) {
  return reinterpret_cast<const T *>(static_cast<uintptr_t>(W));
}

/// Symbols are 32-bit interned ids; stored in an attachment entry verbatim.
inline uint64_t symBits(Symbol S) { return uint64_t(S.id()); }

inline Symbol symOf(uint64_t W) {
  // Symbol's id constructor is SymbolTable-private; the id round-trips
  // through the trivially-copyable representation instead.
  static_assert(sizeof(Symbol) == sizeof(uint32_t));
  return std::bit_cast<Symbol>(uint32_t(W));
}

/// A region (name or variable) packs as sym-id | kind bit; bit 32 set means
/// a concrete name. Invalid regions keep the invalid sym id.
inline uint64_t regionBits(Region R) {
  return symBits(R.sym()) | (uint64_t(R.isName()) << 32);
}

inline Region regionOf(uint64_t W) {
  Symbol S = symOf(W);
  return (W >> 32) & 1 ? Region::name(S) : Region::var(S);
}

} // namespace scav::gc::heapword

#endif // SCAV_GC_HEAPWORD_H
