//===- gc/Free.cpp - Symbol and region collection --------------------------===//
///
/// \file
/// collectSymbols gathers *every* symbol mentioned by a node (free or
/// bound); it feeds the capture-avoidance check in Subst.cpp, where being
/// conservative is sound. freeTagVars / freeRegionsOfType / freeValVars are
/// precise (binder-aware) and feed the typechecker's environment
/// restrictions Γ|∆, Φ|∆ (Fig 6, `only` rule) and well-formedness checks.
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

using namespace scav;
using namespace scav::gc;

//===----------------------------------------------------------------------===//
// collectSymbols
//===----------------------------------------------------------------------===//

void scav::gc::collectSymbols(const Tag *T, SymbolSet &Out) {
  switch (T->kind()) {
  case TagKind::Int:
    return;
  case TagKind::Var:
    Out.insert(T->var());
    return;
  case TagKind::Prod:
  case TagKind::App:
    collectSymbols(T->left(), Out);
    collectSymbols(T->right(), Out);
    return;
  case TagKind::Arrow:
    for (const Tag *A : T->arrowArgs())
      collectSymbols(A, Out);
    return;
  case TagKind::Exists:
  case TagKind::Lam:
    Out.insert(T->var());
    collectSymbols(T->body(), Out);
    return;
  }
}

void scav::gc::collectSymbols(const Type *T, SymbolSet &Out) {
  switch (T->kind()) {
  case TypeKind::Int:
    return;
  case TypeKind::TyVar:
    Out.insert(T->var());
    return;
  case TypeKind::Prod:
  case TypeKind::Sum:
    collectSymbols(T->left(), Out);
    collectSymbols(T->right(), Out);
    return;
  case TypeKind::Left:
  case TypeKind::Right:
    collectSymbols(T->body(), Out);
    return;
  case TypeKind::At:
    Out.insert(T->atRegion().sym());
    collectSymbols(T->body(), Out);
    return;
  case TypeKind::MApp:
    for (Region R : T->mRegions())
      Out.insert(R.sym());
    collectSymbols(T->tag(), Out);
    return;
  case TypeKind::CApp:
    Out.insert(T->cFrom().sym());
    Out.insert(T->cTo().sym());
    collectSymbols(T->tag(), Out);
    return;
  case TypeKind::ExistsTag:
    Out.insert(T->var());
    collectSymbols(T->body(), Out);
    return;
  case TypeKind::ExistsTyVar:
  case TypeKind::ExistsRegion:
    Out.insert(T->var());
    for (Region R : T->delta())
      Out.insert(R.sym());
    collectSymbols(T->body(), Out);
    return;
  case TypeKind::Code:
    for (Symbol P : T->tagParams())
      Out.insert(P);
    for (Symbol P : T->regionParams())
      Out.insert(P);
    for (const Type *A : T->argTypes())
      collectSymbols(A, Out);
    return;
  case TypeKind::TransCode:
    for (const Tag *A : T->transTags())
      collectSymbols(A, Out);
    for (Region R : T->transRegions())
      Out.insert(R.sym());
    for (const Type *A : T->argTypes())
      collectSymbols(A, Out);
    Out.insert(T->atRegion().sym());
    return;
  }
}

void scav::gc::collectSymbols(const Value *V, SymbolSet &Out) {
  switch (V->kind()) {
  case ValueKind::Int:
    return;
  case ValueKind::Addr:
    Out.insert(V->address().R.sym());
    return;
  case ValueKind::Var:
    Out.insert(V->var());
    return;
  case ValueKind::Pair:
    collectSymbols(V->first(), Out);
    collectSymbols(V->second(), Out);
    return;
  case ValueKind::Inl:
  case ValueKind::Inr:
    collectSymbols(V->payload(), Out);
    return;
  case ValueKind::PackTag:
    Out.insert(V->var());
    collectSymbols(V->tagWitness(), Out);
    collectSymbols(V->payload(), Out);
    collectSymbols(V->bodyType(), Out);
    return;
  case ValueKind::PackTyVar:
    Out.insert(V->var());
    for (Region R : V->delta())
      Out.insert(R.sym());
    collectSymbols(V->typeWitness(), Out);
    collectSymbols(V->payload(), Out);
    collectSymbols(V->bodyType(), Out);
    return;
  case ValueKind::PackRegion:
    Out.insert(V->var());
    for (Region R : V->delta())
      Out.insert(R.sym());
    Out.insert(V->regionWitness().sym());
    collectSymbols(V->payload(), Out);
    collectSymbols(V->bodyType(), Out);
    return;
  case ValueKind::TransApp:
    collectSymbols(V->payload(), Out);
    for (const Tag *T : V->transTags())
      collectSymbols(T, Out);
    for (Region R : V->transRegions())
      Out.insert(R.sym());
    return;
  case ValueKind::Code:
    for (Symbol P : V->tagParams())
      Out.insert(P);
    for (Symbol P : V->regionParams())
      Out.insert(P);
    for (Symbol P : V->valParams())
      Out.insert(P);
    for (const Type *T : V->valParamTypes())
      collectSymbols(T, Out);
    collectSymbols(V->codeBody(), Out);
    return;
  }
}

void scav::gc::collectSymbols(const Term *E, SymbolSet &Out) {
  switch (E->kind()) {
  case TermKind::App:
    collectSymbols(E->appFun(), Out);
    for (const Tag *T : E->appTags())
      collectSymbols(T, Out);
    for (Region R : E->appRegions())
      Out.insert(R.sym());
    for (const Value *V : E->appArgs())
      collectSymbols(V, Out);
    return;
  case TermKind::Let: {
    const Op *O = E->letOp();
    if (O->is(OpKind::Prim)) {
      collectSymbols(O->lhs(), Out);
      collectSymbols(O->rhs(), Out);
    } else {
      collectSymbols(O->value(), Out);
      if (O->is(OpKind::Put))
        Out.insert(O->putRegion().sym());
    }
    Out.insert(E->binderVar());
    collectSymbols(E->sub1(), Out);
    return;
  }
  case TermKind::Halt:
    collectSymbols(E->scrutinee(), Out);
    return;
  case TermKind::IfGc:
    Out.insert(E->region().sym());
    collectSymbols(E->sub1(), Out);
    collectSymbols(E->sub2(), Out);
    return;
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
    collectSymbols(E->scrutinee(), Out);
    Out.insert(E->binderVar());
    Out.insert(E->binderVar2());
    collectSymbols(E->sub1(), Out);
    return;
  case TermKind::LetRegion:
    Out.insert(E->binderVar());
    collectSymbols(E->sub1(), Out);
    return;
  case TermKind::Only:
    for (Region R : E->onlySet())
      Out.insert(R.sym());
    collectSymbols(E->sub1(), Out);
    return;
  case TermKind::Typecase:
    collectSymbols(E->tag(), Out);
    collectSymbols(E->caseInt(), Out);
    collectSymbols(E->caseArrow(), Out);
    Out.insert(E->prodVar1());
    Out.insert(E->prodVar2());
    collectSymbols(E->caseProd(), Out);
    Out.insert(E->existsVar());
    collectSymbols(E->caseExists(), Out);
    return;
  case TermKind::IfLeft:
    collectSymbols(E->scrutinee(), Out);
    Out.insert(E->binderVar());
    collectSymbols(E->sub1(), Out);
    collectSymbols(E->sub2(), Out);
    return;
  case TermKind::Set:
    collectSymbols(E->scrutinee(), Out);
    collectSymbols(E->setSource(), Out);
    collectSymbols(E->sub1(), Out);
    return;
  case TermKind::LetWiden:
    Out.insert(E->region().sym());
    collectSymbols(E->tag(), Out);
    collectSymbols(E->scrutinee(), Out);
    Out.insert(E->binderVar());
    collectSymbols(E->sub1(), Out);
    return;
  case TermKind::IfReg:
    Out.insert(E->ifregLhs().sym());
    Out.insert(E->ifregRhs().sym());
    collectSymbols(E->sub1(), Out);
    collectSymbols(E->sub2(), Out);
    return;
  case TermKind::If0:
    collectSymbols(E->scrutinee(), Out);
    collectSymbols(E->sub1(), Out);
    collectSymbols(E->sub2(), Out);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Precise free-variable queries
//===----------------------------------------------------------------------===//

namespace {

void freeTagVarsRec(const Tag *T, SymbolSet &Bound, SymbolSet &Out) {
  switch (T->kind()) {
  case TagKind::Int:
    return;
  case TagKind::Var:
    if (!Bound.count(T->var()))
      Out.insert(T->var());
    return;
  case TagKind::Prod:
  case TagKind::App:
    freeTagVarsRec(T->left(), Bound, Out);
    freeTagVarsRec(T->right(), Bound, Out);
    return;
  case TagKind::Arrow:
    for (const Tag *A : T->arrowArgs())
      freeTagVarsRec(A, Bound, Out);
    return;
  case TagKind::Exists:
  case TagKind::Lam: {
    bool Inserted = Bound.insert(T->var()).second;
    freeTagVarsRec(T->body(), Bound, Out);
    if (Inserted)
      Bound.erase(T->var());
    return;
  }
  }
}

void freeRegionsRec(const Type *T, SymbolSet &BoundRegionVars,
                    RegionSet &Out) {
  auto Add = [&](Region R) {
    if (R.isName() || !BoundRegionVars.count(R.sym()))
      Out.insert(R);
  };
  switch (T->kind()) {
  case TypeKind::Int:
  case TypeKind::TyVar:
    // Free type variables α carry their own ∆ constraint in Φ; they do not
    // contribute free regions here. The typechecker checks Φ(α) ⊆ ∆
    // separately (Fig 6, ∆;Θ;Φ ⊢ α rule).
    return;
  case TypeKind::Prod:
  case TypeKind::Sum:
    freeRegionsRec(T->left(), BoundRegionVars, Out);
    freeRegionsRec(T->right(), BoundRegionVars, Out);
    return;
  case TypeKind::Left:
  case TypeKind::Right:
    freeRegionsRec(T->body(), BoundRegionVars, Out);
    return;
  case TypeKind::At:
    Add(T->atRegion());
    freeRegionsRec(T->body(), BoundRegionVars, Out);
    return;
  case TypeKind::MApp:
    for (Region R : T->mRegions())
      Add(R);
    return;
  case TypeKind::CApp:
    Add(T->cFrom());
    Add(T->cTo());
    return;
  case TypeKind::ExistsTag:
    freeRegionsRec(T->body(), BoundRegionVars, Out);
    return;
  case TypeKind::ExistsTyVar:
    for (Region R : T->delta())
      Add(R);
    freeRegionsRec(T->body(), BoundRegionVars, Out);
    return;
  case TypeKind::ExistsRegion: {
    for (Region R : T->delta())
      Add(R);
    bool Inserted = BoundRegionVars.insert(T->var()).second;
    freeRegionsRec(T->body(), BoundRegionVars, Out);
    if (Inserted)
      BoundRegionVars.erase(T->var());
    return;
  }
  case TypeKind::Code:
    // Code types are fully closed w.r.t. outer regions: their argument
    // types may only use the bound ~r (checked separately), so a code type
    // contributes no free regions. (Fig 6: {~r}; ~t:~κ; · ⊢ σi.)
    return;
  case TypeKind::TransCode: {
    Add(T->atRegion());
    for (Region R : T->transRegions())
      Add(R);
    for (const Type *A : T->argTypes())
      freeRegionsRec(A, BoundRegionVars, Out);
    return;
  }
  }
}

void freeValVarsRec(const Value *V, SymbolSet &Bound, SymbolSet &Out);
void freeValVarsRec(const Term *E, SymbolSet &Bound, SymbolSet &Out);

void freeValVarsRec(const Value *V, SymbolSet &Bound, SymbolSet &Out) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return;
  case ValueKind::Var:
    if (!Bound.count(V->var()))
      Out.insert(V->var());
    return;
  case ValueKind::Pair:
    freeValVarsRec(V->first(), Bound, Out);
    freeValVarsRec(V->second(), Bound, Out);
    return;
  case ValueKind::Inl:
  case ValueKind::Inr:
  case ValueKind::TransApp:
  case ValueKind::PackTag:
  case ValueKind::PackTyVar:
  case ValueKind::PackRegion:
    freeValVarsRec(V->payload(), Bound, Out);
    return;
  case ValueKind::Code: {
    SymbolSet Inner = Bound;
    for (Symbol P : V->valParams())
      Inner.insert(P);
    freeValVarsRec(V->codeBody(), Inner, Out);
    return;
  }
  }
}

void freeValVarsRec(const Term *E, SymbolSet &Bound, SymbolSet &Out) {
  auto WithBinder = [&](Symbol B, const Term *Body) {
    bool Inserted = Bound.insert(B).second;
    freeValVarsRec(Body, Bound, Out);
    if (Inserted)
      Bound.erase(B);
  };
  switch (E->kind()) {
  case TermKind::App:
    freeValVarsRec(E->appFun(), Bound, Out);
    for (const Value *V : E->appArgs())
      freeValVarsRec(V, Bound, Out);
    return;
  case TermKind::Let: {
    const Op *O = E->letOp();
    if (O->is(OpKind::Prim)) {
      freeValVarsRec(O->lhs(), Bound, Out);
      freeValVarsRec(O->rhs(), Bound, Out);
    } else {
      freeValVarsRec(O->value(), Bound, Out);
    }
    WithBinder(E->binderVar(), E->sub1());
    return;
  }
  case TermKind::Halt:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    return;
  case TermKind::IfGc:
  case TermKind::IfReg:
    freeValVarsRec(E->sub1(), Bound, Out);
    freeValVarsRec(E->sub2(), Bound, Out);
    return;
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    WithBinder(E->binderVar2(), E->sub1());
    return;
  case TermKind::LetRegion:
  case TermKind::Only:
    freeValVarsRec(E->sub1(), Bound, Out);
    return;
  case TermKind::Typecase:
    freeValVarsRec(E->caseInt(), Bound, Out);
    freeValVarsRec(E->caseArrow(), Bound, Out);
    freeValVarsRec(E->caseProd(), Bound, Out);
    freeValVarsRec(E->caseExists(), Bound, Out);
    return;
  case TermKind::IfLeft:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    WithBinder(E->binderVar(), E->sub1());
    WithBinder(E->binderVar(), E->sub2());
    return;
  case TermKind::Set:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    freeValVarsRec(E->setSource(), Bound, Out);
    freeValVarsRec(E->sub1(), Bound, Out);
    return;
  case TermKind::LetWiden:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    WithBinder(E->binderVar(), E->sub1());
    return;
  case TermKind::If0:
    freeValVarsRec(E->scrutinee(), Bound, Out);
    freeValVarsRec(E->sub1(), Bound, Out);
    freeValVarsRec(E->sub2(), Bound, Out);
    return;
  }
}

} // namespace

void scav::gc::freeTagVars(const Tag *T, SymbolSet &Out) {
  SymbolSet Bound;
  freeTagVarsRec(T, Bound, Out);
}

void scav::gc::freeRegionsOfType(const Type *T, RegionSet &Out) {
  SymbolSet Bound;
  freeRegionsRec(T, Bound, Out);
}

void scav::gc::freeValVars(const Value *V, SymbolSet &Out) {
  SymbolSet Bound;
  freeValVarsRec(V, Bound, Out);
}

void scav::gc::freeValVars(const Term *E, SymbolSet &Out) {
  SymbolSet Bound;
  freeValVarsRec(E, Bound, Out);
}
