//===- gc/Memory.cpp - Compact-heap word encode/decode --------------------===//
///
/// \file
/// The compact layout's value ⇄ word conversions (see HeapWord.h for the
/// format and Memory.h for when each side is authoritative). Encoding is
/// total: anything that does not fit a tagged word is boxed, and a Box
/// decode returns the original pointer — so encode∘decode is structural
/// identity for flat shapes and pointer identity for boxed ones.
///
//===----------------------------------------------------------------------===//

#include "gc/Memory.h"

#include "gc/GcContext.h"

#include <cstdlib>
#include <string_view>

using namespace scav;
using namespace scav::gc;
using namespace scav::gc::heapword;

HeapLayout scav::gc::defaultHeapLayout() {
  static HeapLayout L = [] {
#ifdef SCAV_HEAP_LEGACY
    HeapLayout D = HeapLayout::Legacy;
#else
    HeapLayout D = HeapLayout::Compact;
#endif
    if (const char *E = std::getenv("SCAV_HEAP_LAYOUT"); E && *E) {
      std::string_view S(E);
      if (S == "legacy")
        D = HeapLayout::Legacy;
      else if (S == "compact")
        D = HeapLayout::Compact;
    }
    return D;
  }();
  return L;
}

uint64_t Memory::boxValue(RegionData &R, const Value *V) {
  assert(R.Boxed.size() < std::numeric_limits<uint32_t>::max());
  R.Boxed.push_back(V);
  return make(WordTag::Box, R.Boxed.size() - 1);
}

uint64_t Memory::encodeValue(RegionData &R, const Value *V) {
  switch (V->kind()) {
  case ValueKind::Int: {
    int64_t N = V->intValue();
    return fitsInt(N) ? makeInt(N) : boxValue(R, V);
  }
  case ValueKind::Addr: {
    Address A = V->address();
    uint32_t Id = ensureRegionId(A.R.sym());
    return Id <= MaxRegionId ? makeAddr(Id, A.Offset) : boxValue(R, V);
  }
  case ValueKind::Pair: {
    if (R.Aux.size() + 2 > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(R, V);
    // Reserve both slots up front: encoding the children grows Aux.
    uint32_t I = static_cast<uint32_t>(R.Aux.size());
    R.Aux.push_back(Hole);
    R.Aux.push_back(Hole);
    uint64_t First = encodeValue(R, V->first());
    uint64_t Second = encodeValue(R, V->second());
    R.Aux[I] = First;
    R.Aux[I + 1] = Second;
    return make(WordTag::Pair, I);
  }
  case ValueKind::Inl:
  case ValueKind::Inr: {
    bool IsInl = V->is(ValueKind::Inl);
    const Value *P = V->payload();
    if (P->is(ValueKind::Addr)) {
      Address A = P->address();
      uint32_t Id = ensureRegionId(A.R.sym());
      if (Id <= MaxRegionId)
        return make(IsInl ? WordTag::InlAddr : WordTag::InrAddr,
                    addrPayload(Id, A.Offset));
    }
    if (R.Aux.size() >= size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(R, V);
    uint32_t I = static_cast<uint32_t>(R.Aux.size());
    R.Aux.push_back(Hole);
    uint64_t Child = encodeValue(R, P);
    R.Aux[I] = Child;
    return make(IsInl ? WordTag::InlAux : WordTag::InrAux, I);
  }
  case ValueKind::PackTag: {
    if (!packable(V->tagWitness()) || !packable(V->bodyType()) ||
        R.Aux.size() + 4 > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(R, V);
    uint32_t I = static_cast<uint32_t>(R.Aux.size());
    R.Aux.resize(I + 4, Hole);
    R.Aux[I] = encodeValue(R, V->payload());
    R.Aux[I + 1] = symBits(V->var());
    R.Aux[I + 2] = ptrBits(V->tagWitness());
    R.Aux[I + 3] = ptrBits(V->bodyType());
    return make(WordTag::PackTagAux, I);
  }
  case ValueKind::PackTyVar: {
    const RegionSet *Delta = &V->delta();
    if (!packable(Delta) || !packable(V->typeWitness()) ||
        !packable(V->bodyType()) ||
        R.Aux.size() + 5 > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(R, V);
    uint32_t I = static_cast<uint32_t>(R.Aux.size());
    R.Aux.resize(I + 5, Hole);
    R.Aux[I] = encodeValue(R, V->payload());
    R.Aux[I + 1] = symBits(V->var());
    R.Aux[I + 2] = ptrBits(Delta);
    R.Aux[I + 3] = ptrBits(V->typeWitness());
    R.Aux[I + 4] = ptrBits(V->bodyType());
    return make(WordTag::PackTyVarAux, I);
  }
  case ValueKind::PackRegion: {
    const RegionSet *Delta = &V->delta();
    if (!packable(Delta) || !packable(V->bodyType()) ||
        R.Aux.size() + 5 > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(R, V);
    uint32_t I = static_cast<uint32_t>(R.Aux.size());
    R.Aux.resize(I + 5, Hole);
    R.Aux[I] = encodeValue(R, V->payload());
    R.Aux[I + 1] = symBits(V->var());
    R.Aux[I + 2] = ptrBits(Delta);
    R.Aux[I + 3] = regionBits(V->regionWitness());
    R.Aux[I + 4] = ptrBits(V->bodyType());
    return make(WordTag::PackRegionAux, I);
  }
  case ValueKind::Var:
  case ValueKind::TransApp:
  case ValueKind::Code:
    return boxValue(R, V);
  }
  return boxValue(R, V);
}

uint64_t Memory::transcodeWord(const RegionData &Src, uint64_t W,
                               RegionData &Dst) {
  switch (tagOf(W)) {
  case WordTag::Hole:
  case WordTag::Int:
  case WordTag::Addr:
  case WordTag::InlAddr:
  case WordTag::InrAddr:
    return W; // region-independent payload
  default:
    break;
  }
  if (&Src == &Dst)
    return W; // aux/box subtree sharing within one region is sound
  switch (tagOf(W)) {
  case WordTag::Pair: {
    if (Dst.Aux.size() + 2 > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(Dst, decodeWord(Src, W));
    uint32_t I = static_cast<uint32_t>(Dst.Aux.size());
    Dst.Aux.push_back(Hole);
    Dst.Aux.push_back(Hole);
    uint64_t First = transcodeWord(Src, Src.Aux[indexOf(W)], Dst);
    uint64_t Second = transcodeWord(Src, Src.Aux[indexOf(W) + 1], Dst);
    Dst.Aux[I] = First;
    Dst.Aux[I + 1] = Second;
    return make(WordTag::Pair, I);
  }
  case WordTag::InlAux:
  case WordTag::InrAux: {
    if (Dst.Aux.size() >= size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(Dst, decodeWord(Src, W));
    uint64_t Child = transcodeWord(Src, Src.Aux[indexOf(W)], Dst);
    uint32_t I = static_cast<uint32_t>(Dst.Aux.size());
    Dst.Aux.push_back(Child);
    return make(tagOf(W), I);
  }
  case WordTag::PackTagAux:
  case WordTag::PackTyVarAux:
  case WordTag::PackRegionAux: {
    uint32_t Span = auxSpan(tagOf(W));
    if (Dst.Aux.size() + Span > size_t(std::numeric_limits<uint32_t>::max()))
      return boxValue(Dst, decodeWord(Src, W));
    uint32_t SI = indexOf(W);
    uint32_t I = static_cast<uint32_t>(Dst.Aux.size());
    Dst.Aux.resize(I + Span, Hole);
    uint64_t Payload = transcodeWord(Src, Src.Aux[SI], Dst);
    Dst.Aux[I] = Payload;
    // Attachments are region-independent (interned pointers / symbols).
    for (uint32_t K = 1; K != Span; ++K)
      Dst.Aux[I + K] = Src.Aux[SI + K];
    return make(tagOf(W), I);
  }
  case WordTag::Box:
    return boxValue(Dst, Src.Boxed[indexOf(W)]);
  default:
    return W; // unreachable: handled above
  }
}

const Value *Memory::decodeWord(const RegionData &R, uint64_t W) const {
  assert(Ctx && "decoding a compact word requires a GcContext");
  switch (tagOf(W)) {
  case WordTag::Hole:
    return nullptr;
  case WordTag::Int:
    return Ctx->valInt(intOf(W));
  case WordTag::Addr:
    return Ctx->valAddr(
        Address{Region::name(IdToSym[addrRegionId(W)]), addrOffset(W)});
  case WordTag::Pair: {
    uint32_t I = indexOf(W);
    return Ctx->valPair(decodeWord(R, R.Aux[I]),
                        decodeWord(R, R.Aux[I + 1]));
  }
  case WordTag::InlAddr:
  case WordTag::InrAddr: {
    const Value *P = Ctx->valAddr(
        Address{Region::name(IdToSym[addrRegionId(W)]), addrOffset(W)});
    return tagOf(W) == WordTag::InlAddr ? Ctx->valInl(P) : Ctx->valInr(P);
  }
  case WordTag::InlAux:
    return Ctx->valInl(decodeWord(R, R.Aux[indexOf(W)]));
  case WordTag::InrAux:
    return Ctx->valInr(decodeWord(R, R.Aux[indexOf(W)]));
  case WordTag::PackTagAux: {
    uint32_t I = indexOf(W);
    return Ctx->valPackTag(symOf(R.Aux[I + 1]), ptrOf<Tag>(R.Aux[I + 2]),
                           decodeWord(R, R.Aux[I]),
                           ptrOf<Type>(R.Aux[I + 3]));
  }
  case WordTag::PackTyVarAux: {
    uint32_t I = indexOf(W);
    return Ctx->valPackTyVar(symOf(R.Aux[I + 1]),
                             ptrOf<RegionSet>(R.Aux[I + 2]),
                             ptrOf<Type>(R.Aux[I + 3]), decodeWord(R, R.Aux[I]),
                             ptrOf<Type>(R.Aux[I + 4]));
  }
  case WordTag::PackRegionAux: {
    uint32_t I = indexOf(W);
    return Ctx->valPackRegion(symOf(R.Aux[I + 1]),
                              ptrOf<RegionSet>(R.Aux[I + 2]),
                              regionOf(R.Aux[I + 3]), decodeWord(R, R.Aux[I]),
                              ptrOf<Type>(R.Aux[I + 4]));
  }
  case WordTag::Box:
    return R.Boxed[indexOf(W)];
  }
  return nullptr;
}

const Value *Memory::decodeCell(const RegionData &R, uint32_t Off) const {
  // Caching through const: decode changes the representation of the cell,
  // not the memory state — no Version bump, no dirty log, mutator-thread
  // only (the async checker's capture decodes before handing a unit over).
  auto &MR = const_cast<RegionData &>(R);
  const Value *V = decodeWord(R, R.Words[Off]);
  MR.Cells[Off] = V;
  if (MR.Undecoded)
    --MR.Undecoded;
  return V;
}

void Memory::decodeRegion(const RegionData &R) const {
  if (Layout == HeapLayout::Legacy || R.Undecoded == 0)
    return;
  auto &MR = const_cast<RegionData &>(R);
  for (size_t Off = 0; Off != MR.Cells.size(); ++Off)
    if (!MR.Cells[Off] && MR.Words[Off] != Hole)
      MR.Cells[Off] = decodeWord(R, MR.Words[Off]);
  MR.Undecoded = 0;
}
