//===- gc/Machine.h - Small-step allocation semantics (Fig 5) --*- C++ -*-===//
///
/// \file
/// Executes machine states P = (M, e) by the small-step rules of Fig 5 plus
/// the λGC-forw (§7) and λGC-gen (§8) extensions. The machine additionally
/// maintains the memory-type witness Ψ (⊢ M : Ψ) incrementally:
///
///   * `put` records the inferred type of the stored value;
///   * `set` keeps the cell's type (the new value is re-checked against it
///     by the state checker via sum subsumption — this is what makes
///     installing forwarding pointers type-safe);
///   * `widen` rewrites Ψ with the T_{ν,ν'} iterator of Lemma C.8, turning
///     every mutator-view cell type into its collector (C) view;
///   * `only` restricts Ψ alongside M.
///
/// The paper's `ifgc ρ e1 e2` steps to e1 "if ρ is full": regions carry a
/// soft capacity (MachineConfig::DefaultRegionCapacity) that only drives
/// this test; allocation itself never fails.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_MACHINE_H
#define SCAV_GC_MACHINE_H

#include "gc/Memory.h"
#include "gc/Ops.h"
#include "gc/TypeCheck.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace scav::vm {
class VmExec;
} // namespace scav::vm

namespace scav::gc {

class ExecBackend;

/// How the machine executes binding steps (App/Let/open/typecase/...).
enum class EvalMode {
  /// Fig 5 verbatim: build a substitution and rewrite the entire
  /// continuation term at every step — O(steps × term size).
  Subst,
  /// Environment machine: keep the continuation shared, thread a persistent
  /// environment of *closed* bindings (O(1) extend), and resolve variable
  /// occurrences at their use sites. Substitution is forced only where a
  /// closed term must escape the step loop: halt values, values stored by
  /// `put`/`set`, diagnostics, and the Ψ/state-check boundary
  /// (currentTerm()), so checkState still sees the paper's (M, e) states.
  Env,
  /// Bytecode VM: terms are lowered once to flat, enum-tagged instructions
  /// with environment slots resolved to frame indices at compile time
  /// (src/vm/), and steps are executed by a tight dispatch loop. Requires
  /// an attached ExecBackend (vm::VmExec does this in its constructor);
  /// region operations, Ψ maintenance, the delta journal, and both state
  /// checkers run unchanged — the backend calls back into the same Machine
  /// primitives the interpreted modes use.
  Vm,
};

inline const char *evalModeName(EvalMode M) {
  switch (M) {
  case EvalMode::Subst:
    return "subst";
  case EvalMode::Env:
    return "env";
  case EvalMode::Vm:
    return "vm";
  }
  return "unknown";
}

/// The one place an eval-mode name is parsed: drivers (certgc_run
/// --eval-mode / SCAV_EVAL_MODE), tests, and fuzz replay lines all go
/// through this. Returns nullopt for anything but "env" / "subst" / "vm".
inline std::optional<EvalMode> parseEvalMode(std::string_view S) {
  if (S == "env")
    return EvalMode::Env;
  if (S == "subst")
    return EvalMode::Subst;
  if (S == "vm")
    return EvalMode::Vm;
  return std::nullopt;
}

struct MachineConfig {
  /// Soft capacity (in cells) for regions created by `let region`;
  /// 0 = unlimited (ifgc never fires).
  uint32_t DefaultRegionCapacity = 0;
  /// Heap-growth policy (Appel-style semispace sizing): after an `only`
  /// step, each surviving data region's capacity becomes
  /// max(DefaultRegionCapacity, HeapGrowthFactor × live-cells). Without
  /// this, a live set ≥ capacity livelocks the mutator in back-to-back
  /// collections (made worse at the Base level, where every collection
  /// *grows* the heap by duplicating shared objects — E1). Set to 0 to
  /// disable growth (used by tests that want exact capacities).
  uint32_t HeapGrowthFactor = 2;
  /// Maintain Ψ (needed by the soundness harness; disable for raw
  /// throughput benchmarks).
  bool TrackTypes = true;
  /// Evaluation strategy. Env is the default; Subst is retained for
  /// differential testing (tests/gc_machine_env_diff_test) and as the
  /// baseline of bench/e11_steprate; Vm requires an attached backend
  /// (vm::VmExec) and is differential-tested three ways in
  /// tests/gc_machine_vm_diff_test.
  EvalMode Eval = EvalMode::Env;
  /// Cell representation (Memory.h): Compact tagged words by default,
  /// Legacy pointer cells for the differential oracle. The process default
  /// honours -DSCAV_HEAP_LEGACY and the SCAV_HEAP_LAYOUT env override.
  HeapLayout Layout = defaultHeapLayout();
};

/// One entry of the per-step delta journal (Machine::enableDeltaJournal):
/// the structural events a state-checking consumer cannot recover from the
/// memory / Ψ dirty logs alone — region lifecycle, whole-region Ψ rewrites,
/// and out-of-band mutation. Cell-granular writes are NOT journaled here;
/// they live in the per-region dirty logs (Memory.h).
enum class DeltaKind : uint8_t {
  /// R: a fresh data region came into existence (`let region` /
  /// createRegion). Monotone — nothing previously checked is affected —
  /// but consumers need it to start tracking the region's cursors.
  RegionCreated,
  /// R: a region was reclaimed by `only` (dropped from both M and Ψ).
  /// Every cached judgment that mentioned an address in R is poisoned.
  RegionDropped,
  /// R → R2: `widen` rewrote R's Ψ cell types (the T iterator of Lemma
  /// C.8, mutator view → collector view toward R2) and the type
  /// annotations embedded in R's values. Judgments *about* R's cells and
  /// judgments that looked R's addresses up through Ψ are both stale.
  RegionWidened,
  /// Ψ and/or M were rewritten outside the machine's own step rules (the
  /// native collector does this). Consumers must resynchronize from
  /// scratch; the machine cannot say what changed.
  ExternalMutation,
};

struct DeltaEvent {
  DeltaKind Kind;
  Symbol R{};  ///< Subject region (unset for ExternalMutation).
  Symbol R2{}; ///< RegionWidened only: the to-region.
};

struct MachineStats {
  uint64_t Steps = 0;
  uint64_t Puts = 0;
  uint64_t Gets = 0;
  uint64_t Sets = 0;
  uint64_t Projections = 0;
  uint64_t Applications = 0;
  uint64_t TypecaseSteps = 0;
  uint64_t Opens = 0;
  uint64_t RegionsCreated = 0;
  uint64_t RegionsReclaimed = 0;
  uint64_t OnlyOps = 0;
  /// Total regions examined across all `only` steps: the paper's claim
  /// (§6.4/E5) is that deallocation cost is proportional to this count.
  uint64_t OnlyRegionsScanned = 0;
  uint64_t Widens = 0;
  uint64_t IfGcTaken = 0;
  uint64_t IfGcSkipped = 0;
  /// recordPut served the Ψ cell type from the value-pointer cache instead
  /// of re-running inference (see Machine::recordPut).
  uint64_t RecordPutCacheHits = 0;
  uint64_t RecordPutCacheMisses = 0;
  /// Environment-mode counters (all zero in Subst mode). EnvBindings counts
  /// bindings pushed into the environment; EnvLookups counts variable
  /// occurrences resolved through it *by the machine's own step rules*;
  /// EnvForces counts close-to-substituted traversals at the machine
  /// boundary (currentTerm) and EnvForceLookups the occurrences those
  /// forces resolved; EnvDepthPeak is the largest environment ever held.
  ///
  /// EnvLookups and EnvForceLookups are deliberately separate: currentTerm
  /// is called by external observers (checkState, diagnostics, tests), so
  /// folding its lookups into EnvLookups made the counter drift with the
  /// *observation* cadence — two identical runs reported different lookup
  /// totals merely because one was checked more often. EnvLookups is now a
  /// pure function of the executed program (see trace_metrics_test).
  uint64_t EnvBindings = 0;
  uint64_t EnvLookups = 0;
  uint64_t EnvForces = 0;
  uint64_t EnvForceLookups = 0;
  uint64_t EnvDepthPeak = 0;
  /// Delta-journal events emitted (zero unless a consumer enabled the
  /// journal; see Machine::enableDeltaJournal).
  uint64_t DeltaJournalEvents = 0;

  /// Registers every counter into \p Reg under "machine." names — the
  /// typed-registry view of this struct (DESIGN.md §3.9). All reporting
  /// surfaces (certgc_run --stats/--stats-json, BenchUtil, fuzz triage)
  /// render MachineStats through this, never ad hoc.
  void exportTo(support::MetricsRegistry &Reg) const {
    auto C = [&](const char *Name, uint64_t V) {
      Reg.setCounter(std::string("machine.") + Name, V);
    };
    C("steps", Steps);
    C("puts", Puts);
    C("gets", Gets);
    C("sets", Sets);
    C("projections", Projections);
    C("applications", Applications);
    C("typecase_steps", TypecaseSteps);
    C("opens", Opens);
    C("regions_created", RegionsCreated);
    C("regions_reclaimed", RegionsReclaimed);
    C("only_ops", OnlyOps);
    C("only_regions_scanned", OnlyRegionsScanned);
    C("widens", Widens);
    C("ifgc_taken", IfGcTaken);
    C("ifgc_skipped", IfGcSkipped);
    C("recordput_cache_hits", RecordPutCacheHits);
    C("recordput_cache_misses", RecordPutCacheMisses);
    C("env_bindings", EnvBindings);
    C("env_lookups", EnvLookups);
    C("env_forces", EnvForces);
    C("env_force_lookups", EnvForceLookups);
    C("env_depth_peak", EnvDepthPeak);
    C("delta_journal_events", DeltaJournalEvents);
  }
};

/// The λGC abstract machine.
class Machine {
public:
  enum class Status { Running, Halted, Stuck };

  Machine(GcContext &C, LanguageLevel Level, MachineConfig Config = {})
      : C(C), Level(Level), Config(Config),
        Mem(C.cd().sym(), Config.Layout, &C), Checker(C, Level, InferDiags) {
    Checker.setSkipCodeBodies(true);
    Checker.setTrustAddresses(true);
    Psi.addRegion(C.cd().sym());
  }

  GcContext &context() { return C; }
  LanguageLevel level() const { return Level; }
  const MachineConfig &config() const { return Config; }

  /// Reserves a code label in cd; the body is supplied by defineCode. This
  /// two-phase protocol lets mutually recursive code blocks reference each
  /// other by address.
  Address reserveCode(std::string_view Label);

  /// Installs \p Code at a reserved address and records its type in Ψ.
  void defineCode(Address A, const Value *Code);

  /// Convenience: reserve + define in one step.
  Address installCode(std::string_view Label, const Value *Code);

  /// Creates a fresh data region (as `let region` would) and returns it.
  /// Used by drivers to set up the initial mutator region.
  Region createRegion(std::string_view BaseName, uint32_t Capacity);

  /// Allocates \p V in region \p R exactly as a `put` step would (Ψ is
  /// maintained); returns the address value. Used by drivers and the heap
  /// forge to set up initial heaps.
  const Value *allocate(Region R, const Value *V);

  /// Sets the term to execute. Resets halt/stuck state but keeps memory.
  /// In Vm mode this also hands the term to the attached backend, which
  /// lowers it to bytecode (lazily for code bodies, eagerly for the main
  /// term).
  void start(const Term *E);

  /// Attaches (or detaches, with nullptr) the execution backend used by
  /// EvalMode::Vm. The backend is borrowed, not owned: vm::VmExec attaches
  /// itself on construction and detaches on destruction, so it must outlive
  /// every start/step/run in Vm mode.
  void attachBackend(ExecBackend *B) { Backend = B; }
  ExecBackend *backend() const { return Backend; }

  /// Attaches (or detaches, with nullptr) a collect-pause histogram: every
  /// certified collection — the collector-entry App through the closing
  /// `only` (the same bracket the "collect" trace scope uses) — records its
  /// wall-clock duration in *nanoseconds* into \p H. Independent of
  /// tracing: serve sessions report per-session p50/p99 pauses without
  /// paying for (or sharing) the global trace ring. The histogram is
  /// borrowed and single-writer (this machine's thread); it must outlive
  /// every run while attached.
  void attachPauseHistogram(support::Histogram *H) { PauseHist = H; }

  Status status() const { return St; }
  /// The current term as the paper's (M, e) state: in Env mode this forces
  /// the pending environment into the shared continuation (a fresh closed
  /// term per call — deliberately unmemoized, because callers like
  /// checkState run under a GcContext::Scope that reclaims the result).
  const Term *currentTerm() const;
  /// The raw (unforced) state pair behind currentTerm(): the pending term
  /// plus the environment substitution (empty in Subst mode). Both point at
  /// machine-arena nodes, which are immutable once built and never
  /// reclaimed during a run — so a captured copy of this pair stays valid
  /// while the machine keeps stepping, which is what the async checker's
  /// capture relies on (AsyncCheck.h): the expensive closeTerm forcing can
  /// then run on the checker thread, in the checker's own context.
  const Term *rawTerm() const { return Cur; }
  const Subst &rawEnv() const { return EnvS; }
  const Value *haltValue() const { return HaltVal; }
  const std::string &stuckReason() const { return StuckMsg; }

  /// Performs one small step (possibly fused with administrative tag
  /// normalization, as in Fig 5's first rule).
  Status step();

  /// Runs until halt, stuck, or \p MaxSteps more steps.
  Status run(uint64_t MaxSteps);

  Memory &memory() { return Mem; }
  const Memory &memory() const { return Mem; }
  MemoryType &psi() { return Psi; }
  const MemoryType &psi() const { return Psi; }
  MachineStats &stats() { return Stats; }
  const MachineStats &stats() const { return Stats; }

  /// Exports the machine's full observable state into \p Reg: MachineStats
  /// counters plus memory/Ψ gauges (regions, live cells, env depth), and —
  /// when a backend is attached — its "vm.*" compile/run metrics. The one
  /// registry every reporter shares. (Defined after ExecBackend below.)
  inline void exportMetrics(support::MetricsRegistry &Reg) const;

  /// Current environment size (Env mode; 0 in Subst mode).
  size_t envDepth() const {
    return EnvS.Tags.size() + EnvS.Regions.size() + EnvS.Types.size() +
           EnvS.Vals.size();
  }

  // -- Tracing --------------------------------------------------------------
  // The machine emits structured trace events (support/Trace.h) when the
  // global sink is enabled: per-step instants, region lifecycle, collector
  // phase entries, and periodic counter tracks. Collector phases are
  // *marked* cd labels: the certified collectors are λGC code, so the only
  // place their phase structure is visible is the App step into their code
  // addresses — installBasicCollector & friends mark their entry points,
  // and the machine brackets `gc`-entry … `only` as one "collect" scope.

  /// Marks \p A (a cd code address) as a collector phase for tracing; the
  /// traced name is the label passed to reserveCode. \p IsEntry marks the
  /// collection entry point that opens the per-collection trace scope.
  /// The label is interned into the global sink here: trace events outlive
  /// this machine, so they must not point into CdLabels' strings.
  void markCollectorPhase(Address A, bool IsEntry = false) {
    auto It = CdLabels.find(A.Offset);
    if (It == CdLabels.end())
      return;
    PhaseMarks[A.Offset] = IsEntry;
    TracePhaseNames[A.Offset] = support::TraceSink::get().intern(It->second);
  }

  /// The label a cd offset was reserved under ("" if unknown).
  const std::string &codeLabel(uint32_t Offset) const {
    static const std::string Empty;
    auto It = CdLabels.find(Offset);
    return It == CdLabels.end() ? Empty : It->second;
  }

  /// False if Ψ maintenance ever failed (a stored value did not infer);
  /// the reason is in typeTrackingError().
  bool typeTrackingOk() const { return TypeTrackingOkFlag; }
  const std::string &typeTrackingError() const { return TypeTrackingMsg; }

  /// The T_{ν,ν'} iterator of Lemma C.8: rewrites a mutator-view type into
  /// the collector view (M ↦ C, mutator cells gain the forwarding
  /// alternative). Exposed for tests.
  const Type *widenPsiType(const Type *T, Symbol FromRegion, Symbol ToRegion);

  /// Applies the T iterator to the *type annotations* embedded in a heap
  /// value (existential-package body types and witnesses). Values are
  /// otherwise unchanged — annotations are erased at runtime, so `widen`
  /// remains a no-op on data (§7.1). Without this, a package fetched from
  /// the widened heap would still claim the mutator view for its payload;
  /// the paper's pack rule is declarative in the annotation (Lemma C.8
  /// re-derives it), which this rewrite makes algorithmic.
  const Value *widenValueTypes(const Value *V, Symbol FromRegion,
                               Symbol ToRegion);

  /// Renames region name From to To everywhere in a type. Used by widen's
  /// Ψ transformation and by the native collector's Ψ refresh.
  const Type *renameRegionName(const Type *T, Symbol From, Symbol To);

  /// Drops every recordPut-cached inferred type. Must be called by any code
  /// that rewrites or shrinks Ψ *without* going through the machine's own
  /// step rules (the native collector does); the machine itself invalidates
  /// on `only` and `widen`. Doubles as the out-of-band mutation signal for
  /// delta-journal consumers: the same contract that makes the put-type
  /// cache safe makes their caches safe, so an ExternalMutation event is
  /// journaled here.
  void invalidatePutTypeCache() {
    PutTypeCache.clear();
    journal(DeltaKind::ExternalMutation);
  }

  // -- Delta journal --------------------------------------------------------
  // Off by default (zero cost beyond a branch); an incremental state
  // checker switches it on and consumes events by absolute index, trimming
  // its consumed prefix with trimJournal. Single-consumer contract: the
  // sole IncrementalStateCheck instance (see StateCheck.h) trims to its own
  // cursor unconditionally, so a second attached consumer would have
  // unconsumed events trimmed out from under it.

  void enableDeltaJournal() { JournalOn = true; }
  bool deltaJournalEnabled() const { return JournalOn; }
  /// Absolute index one past the last event ever journaled.
  uint64_t journalEnd() const { return JournalBase + Journal.size(); }
  /// Absolute index of the oldest retained event.
  uint64_t journalBegin() const { return JournalBase; }
  const DeltaEvent &journalEvent(uint64_t AbsIdx) const {
    assert(AbsIdx >= JournalBase && AbsIdx < journalEnd() &&
           "journal event already trimmed or not yet emitted");
    return Journal[AbsIdx - JournalBase];
  }
  /// Drops events below \p UpToAbs (the single consumer's own cursor).
  void trimJournal(uint64_t UpToAbs) {
    if (UpToAbs <= JournalBase)
      return;
    uint64_t N = std::min<uint64_t>(UpToAbs - JournalBase, Journal.size());
    Journal.erase(Journal.begin(), Journal.begin() + static_cast<size_t>(N));
    JournalBase += N;
  }

private:
  /// The bytecode backend executes the same region-operation semantics as
  /// the interpreted modes by calling back into the private step helpers,
  /// so Only/LetWiden journaling, tracing, and Ψ maintenance cannot drift
  /// between engines.
  friend class scav::vm::VmExec;

  void journal(DeltaKind K, Symbol R = {}, Symbol R2 = {}) {
    if (!JournalOn)
      return;
    Journal.push_back(DeltaEvent{K, R, R2});
    ++Stats.DeltaJournalEvents;
  }

  /// Internal form of invalidatePutTypeCache for the machine's own `only` /
  /// `widen` steps: those are journaled precisely (RegionDropped /
  /// RegionWidened), so no ExternalMutation event is emitted.
  void clearPutTypeCache() { PutTypeCache.clear(); }

  // Trace emission helpers (Machine.cpp); called only under
  // SCAV_TRACE_ENABLED(), so they cost nothing when tracing is disabled
  // and compile away entirely under SCAV_TRACE_OFF. Exception:
  // traceAppPhase is also called when a pause histogram is attached
  // (SCAV_TRACE_ENABLED() || PauseHist) — it runs the pause clock before
  // its tracing-only tail.
  void traceStep(const Term *E);
  void traceAppPhase(Address CodeAddr);
  void traceRegionCounters();
  const char *traceRegionName(Symbol S);

  Status stuck(std::string Msg) {
    St = Status::Stuck;
    StuckMsg = std::move(Msg);
    return St;
  }

  /// Infers the type of a closed runtime value under the current Ψ.
  const Type *inferRuntimeType(const Value *V);

  void recordPut(Address A, const Value *V);

  // -- Step bodies shared with the bytecode backend -------------------------

  /// Everything an `only` step does after its Keep set has been resolved
  /// and checked: journal + trace the drops, restrict M and Ψ, apply the
  /// heap-growth policy, bump the epoch, invalidate the put-type cache, and
  /// close an open "collect" trace scope. Callers are responsible for the
  /// OnlyOps/OnlyRegionsScanned counters (incremented before resolution,
  /// like the stat always was).
  void applyOnly(const RegionSet &Keep);

  /// Everything a `widen` step does after its operands have been resolved
  /// and checked: the Ψ/value-annotation T-iterator rewrite of \p From
  /// toward \p To, the RegionWidened journal event, and the trace instant.
  /// Callers bind the address value and advance.
  void applyWiden(Symbol From, Symbol To);

  // -- Environment-mode helpers (identity in Subst mode) -------------------

  bool envMode() const { return Config.Eval == EvalMode::Env; }

  /// Closes a syntactic operand against the environment. Operand values in
  /// terms are small (CPS code mentions variables, ints, and shallow
  /// constructors), so this is O(operand), never O(continuation).
  const Value *resolveValue(const Value *V) {
    if (!envMode() || EnvS.empty())
      return V;
    CloseCounters Ctr;
    const Value *Out = closeValue(C, V, EnvS, &Ctr);
    Stats.EnvLookups += Ctr.Lookups;
    return Out;
  }
  const Tag *resolveTag(const Tag *T) {
    if (!envMode() || EnvS.empty())
      return T;
    CloseCounters Ctr;
    const Tag *Out = closeTag(C, T, EnvS, &Ctr);
    Stats.EnvLookups += Ctr.Lookups;
    return Out;
  }
  Region resolveRegion(Region R) {
    if (!envMode())
      return R;
    CloseCounters Ctr;
    Region Out = closeRegion(R, EnvS, &Ctr);
    Stats.EnvLookups += Ctr.Lookups;
    return Out;
  }
  RegionSet resolveRegionSet(const RegionSet &RS) {
    if (!envMode() || EnvS.Regions.empty())
      return RS;
    CloseCounters Ctr;
    RegionSet Out = closeRegionSet(RS, EnvS, &Ctr);
    Stats.EnvLookups += Ctr.Lookups;
    return Out;
  }

  void noteEnvDepth() {
    uint64_t D = envDepth();
    if (D > Stats.EnvDepthPeak)
      Stats.EnvDepthPeak = D;
  }
  /// Shadowing-by-overwrite is sound: execution never re-enters an outer
  /// binder's scope except through App, which replaces the environment
  /// wholesale (code bodies are closed up to their parameters).
  void bindVal(Symbol X, const Value *V) {
    EnvS.Vals.insert_or_assign(X, V);
    ++Stats.EnvBindings;
    noteEnvDepth();
  }
  void bindTag(Symbol X, const Tag *T) {
    EnvS.Tags.insert_or_assign(X, T);
    ++Stats.EnvBindings;
    noteEnvDepth();
  }
  void bindType(Symbol X, const Type *T) {
    EnvS.Types.insert_or_assign(X, T);
    ++Stats.EnvBindings;
    noteEnvDepth();
  }
  void bindRegion(Symbol X, Region R) {
    EnvS.Regions.insert_or_assign(X, R);
    ++Stats.EnvBindings;
    noteEnvDepth();
  }

  /// Advances into \p Body with one value binding: O(1) environment extend
  /// in Env mode, whole-term substitution in Subst mode.
  void continueBindVal(Symbol X, const Value *V, const Term *Body) {
    if (envMode()) {
      bindVal(X, V);
      Cur = Body;
    } else {
      Subst S;
      S.Vals[X] = V;
      Cur = applySubst(C, Body, S);
    }
  }


  GcContext &C;
  LanguageLevel Level;
  MachineConfig Config;
  /// Borrowed execution backend for EvalMode::Vm (see attachBackend).
  ExecBackend *Backend = nullptr;
  Memory Mem;
  MemoryType Psi;
  /// Mutable so the const force boundary (currentTerm) can count its work.
  mutable MachineStats Stats;

  DiagEngine InferDiags;
  TypeChecker Checker;

  const Term *Cur = nullptr;
  /// Env-mode environment: the pending (closed-range) simultaneous
  /// substitution that Subst mode would already have applied to Cur.
  Subst EnvS;
  Status St = Status::Stuck;
  const Value *HaltVal = nullptr;
  std::string StuckMsg = "machine not started";

  bool TypeTrackingOkFlag = true;
  std::string TypeTrackingMsg;
  uint64_t OnlyEpoch = 0;

  /// Delta journal (see enableDeltaJournal). Journal[i] is the event with
  /// absolute index JournalBase + i.
  bool JournalOn = false;
  std::vector<DeltaEvent> Journal;
  uint64_t JournalBase = 0;

  /// cd offset → reserveCode label (small: one entry per installed code
  /// block) and the offsets marked as collector phases (value: is-entry).
  std::unordered_map<uint32_t, std::string> CdLabels;
  std::unordered_map<uint32_t, bool> PhaseMarks;
  /// Marked offset → sink-interned label (events outlive this machine).
  std::unordered_map<uint32_t, const char *> TracePhaseNames;
  /// A collector-entry App opened a "collect" trace scope that the next
  /// `only` step closes (collections end in gcend's `only`).
  bool TraceCollectOpen = false;
  /// Collect-pause clock (attachPauseHistogram): opened at a
  /// collector-entry App, recorded and closed by the `only` that ends the
  /// collection. Mirrors TraceCollectOpen but works with tracing off.
  support::Histogram *PauseHist = nullptr;
  bool PauseOpen = false;
  std::chrono::steady_clock::time_point PauseStart;
  /// Region symbol → interned "cells.<region>" counter-track name.
  std::unordered_map<Symbol, const char *, SymbolHash> TraceRegionNames;

  /// Ψ-tracking fast path: inferred cell types by value pointer. Values are
  /// immutable and inference of a *successfully* inferred value depends on Ψ
  /// only through lookups of addresses it embeds, so entries stay valid
  /// until Ψ is rewritten (widen), shrunk (only), or mutated externally
  /// (native collector) — all of which clear the cache. Only successes are
  /// cached; failures must re-run to produce diagnostics.
  std::unordered_map<const Value *, const Type *> PutTypeCache;
};

/// A pluggable execution engine behind MachineConfig::EvalMode::Vm. The
/// machine keeps ownership of all observable state (status, memory, Ψ,
/// stats, journal, halt value, stuck reason); the backend only drives the
/// step loop. Implemented by vm::VmExec (src/vm/Vm.h); defined here so the
/// gc layer needs no link-time dependency on the vm layer.
class ExecBackend {
public:
  virtual ~ExecBackend() = default;
  /// Machine::start(E) was called: (re)lower \p E and reset the program
  /// counter. The machine has already reset its status/halt/stuck state.
  virtual void onStart(const Term *E) = 0;
  /// Execute exactly one machine step (one bytecode instruction — the
  /// lowering is 1:1 with Fig 5 steps, so MachineStats::Steps agrees with
  /// the interpreted modes).
  virtual Machine::Status step() = 0;
  /// Execute until halt, stuck, or \p MaxSteps more steps. This is the
  /// tight dispatch loop; semantically identical to calling step() in a
  /// loop.
  virtual Machine::Status run(uint64_t MaxSteps) = 0;
  /// The paper's substituted (M, e) view of the backend's current program
  /// point — same contract as Machine::currentTerm in Env mode.
  virtual const Term *currentTerm() const = 0;
  /// Publish backend metrics ("vm.*") into the shared registry.
  virtual void exportMetrics(support::MetricsRegistry &Reg) const = 0;
};

inline void Machine::exportMetrics(support::MetricsRegistry &Reg) const {
  Stats.exportTo(Reg);
  Reg.setGauge("memory.regions", static_cast<double>(Mem.numRegions()));
  Reg.setGauge("memory.live_data_cells",
               static_cast<double>(Mem.liveDataCells()));
  const RegionData *Cd = Mem.region(Mem.cdSym());
  Reg.setGauge("memory.cd_cells",
               static_cast<double>(Cd ? Cd->Cells.size() : 0));
  Reg.setGauge("machine.env_depth", static_cast<double>(envDepth()));
  Reg.setGauge("machine.journal_len",
               static_cast<double>(journalEnd() - journalBegin()));
  if (Backend)
    Backend->exportMetrics(Reg);
}

/// Registers a collector library's entry points with the machine's tracer
/// so App steps into them emit collector-phase events: `Gc` opens the
/// per-collection trace scope, the other labels show up as instant phase
/// markers. Works for any of the Lib structs (Basic / Forward / Gen) —
/// they share the six-entry-point shape. No-op when tracing is compiled
/// out or disabled.
template <typename CollectorLibT>
void markCollectorPhases(Machine &M, const CollectorLibT &Lib) {
  M.markCollectorPhase(Lib.Gc, /*IsEntry=*/true);
  M.markCollectorPhase(Lib.GcEnd);
  M.markCollectorPhase(Lib.Copy);
  M.markCollectorPhase(Lib.CopyPair1);
  M.markCollectorPhase(Lib.CopyPair2);
  M.markCollectorPhase(Lib.CopyExist1);
}

} // namespace scav::gc

#endif // SCAV_GC_MACHINE_H
