//===- gc/NativeCollector.cpp - Meta-level C++ collector -------------------===//

#include "gc/NativeCollector.h"

#include "support/WorkSteal.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace scav;
using namespace scav::gc;

namespace {

struct NativeGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  bool PreserveSharing;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding; // from-offset → to-offset

  const Value *relocate(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V; // cd or another surviving region
      return C.valAddr(copyCell(A));
    }
    case ValueKind::Pair:
      return C.valPair(relocate(V->first()), relocate(V->second()));
    case ValueKind::Inl:
      return C.valInl(relocate(V->payload()));
    case ValueKind::Inr:
      return C.valInr(relocate(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), relocate(V->payload()),
                          retarget(V->bodyType()));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(V->var(), retargetSet(V->delta()),
                            retarget(V->typeWitness()),
                            relocate(V->payload()), retarget(V->bodyType()));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(V->var(), retargetSet(V->delta()), W,
                             relocate(V->payload()), retarget(V->bodyType()));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(relocate(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  Address copyCell(Address A) {
    if (PreserveSharing) {
      auto It = Forwarding.find(A.Offset);
      if (It != Forwarding.end()) {
        ++Stats.ForwardingHits;
        return Address{Region::name(ToSym), It->second};
      }
    }
    const Value *Cell = M.memory().get(A);
    assert(Cell && "native collector hit a dangling address");
    // Depth-first copy; reserve the slot before descending so cycles would
    // at least terminate (the λGC heaps here are acyclic, like the paper's).
    const Value *Copied = relocate(Cell);
    std::optional<Address> NewA = M.memory().put(ToSym, Copied);
    assert(NewA && "to-region vanished during native collection");
    ++Stats.ObjectsCopied;
    if (PreserveSharing)
      Forwarding[A.Offset] = NewA->Offset;
    if (M.config().TrackTypes) {
      const Type *T = M.psi().lookup(A);
      if (T)
        M.psi().set(*NewA, retarget(T));
    }
    return *NewA;
  }

  /// Renames the from-region to the to-region inside recorded cell types.
  const Type *retarget(const Type *T) {
    return M.renameRegionName(T, FromSym, ToSym);
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }
};

} // namespace

namespace {

/// Cheney-style breadth-first copy: slots are reserved in arrival order
/// (the reservation doubles as the forwarding pointer), and a queue of
/// pending from-cells plays the role of the scan pointer. Sharing is
/// inherently preserved.
struct CheneyGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding;
  std::deque<uint32_t> Queue; // from-offsets with a reserved to-slot

  Address reserve(Address A) {
    auto It = Forwarding.find(A.Offset);
    if (It != Forwarding.end()) {
      ++Stats.ForwardingHits;
      return Address{Region::name(ToSym), It->second};
    }
    std::optional<Address> Slot = M.memory().put(ToSym, nullptr);
    assert(Slot && "to-region vanished");
    Forwarding[A.Offset] = Slot->Offset;
    Queue.push_back(A.Offset);
    return *Slot;
  }

  /// Rewrites one value shallowly: from-addresses become reserved to-slots.
  const Value *scan(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      return C.valAddr(reserve(A));
    }
    case ValueKind::Pair:
      return C.valPair(scan(V->first()), scan(V->second()));
    case ValueKind::Inl:
      return C.valInl(scan(V->payload()));
    case ValueKind::Inr:
      return C.valInr(scan(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), scan(V->payload()),
                          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(
          V->var(), retargetSet(V->delta()),
          M.renameRegionName(V->typeWitness(), FromSym, ToSym),
          scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(
          V->var(), retargetSet(V->delta()), W, scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(scan(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  void drain() {
    while (!Queue.empty()) {
      uint32_t FromOff = Queue.front();
      Queue.pop_front();
      Address FromA{Region::name(FromSym), FromOff};
      const Value *Cell = M.memory().get(FromA);
      assert(Cell && "Cheney scan hit a dangling cell");
      Address ToA{Region::name(ToSym), Forwarding[FromOff]};
      M.memory().fill(ToA, scan(Cell));
      ++Stats.ObjectsCopied;
      if (M.config().TrackTypes) {
        if (const Type *T = M.psi().lookup(FromA))
          M.psi().set(ToA, M.renameRegionName(T, FromSym, ToSym));
      }
    }
  }
};

/// Parallel Cheney copy. The from-space is frozen (the mutator is parked),
/// so the only shared mutable state during the copy is the forwarding
/// array: one atomic per from-cell, UNCLAIMED → PENDING (CAS winner is the
/// copier) → the to-offset, drawn from one atomic bump counter. Workers
/// build copied values in private arenas through ValueBuilder and record
/// (to-offset, value) pairs; a serial epilogue assembles the to-region with
/// one Memory::appendCells, rewrites Ψ, and adopts the arenas into the
/// machine's context. Work is distributed in chunks through per-worker
/// ChunkDeques (owner pops newest, thieves steal oldest); termination is a
/// count of claimed-but-unscanned cells hitting zero — claims only happen
/// inside a scan (or the serial root scan before workers start), so the
/// count cannot re-rise from zero.
struct ParallelCheney {
  static constexpr uint32_t Unclaimed = 0xFFFFFFFFu;
  static constexpr uint32_t Pending = 0xFFFFFFFEu;
  static constexpr size_t ChunkSize = 64;
  /// Smallest local stack worth half-splitting into the public deque.
  static constexpr size_t MinSplit = 4;

  struct Worker {
    unsigned Id = 0;
    std::unique_ptr<Arena> Mem;
    std::unique_ptr<ValueBuilder> B;
    std::vector<uint32_t> Local; ///< Active work, hottest at the back.
    ChunkDeque<uint32_t> Deque;  ///< Published chunks, stealable.
    std::vector<std::pair<uint32_t, const Value *>> Results;
    /// Per-worker memo for renamed types: keeps RenameMu traffic down to
    /// one lock per distinct annotation type per worker.
    std::unordered_map<const Type *, const Type *> RenameCache;
    uint64_t Objects = 0, Hits = 0, Steals = 0, Chunks = 0, CopyNs = 0;
  };

  Machine &M;
  Symbol FromSym;
  Symbol ToSym;
  const std::vector<const Value *> &FromCells;
  std::unique_ptr<std::atomic<uint32_t>[]> Fwd;
  std::atomic<uint32_t> NextTo{0};
  std::atomic<int64_t> Unscanned{0};
  /// Serializes renameRegionName: it interns into the machine's (single-
  /// threaded) GcContext. Cold — annotation types are few and memoized.
  std::mutex RenameMu;
  std::vector<Worker> Workers;

  ParallelCheney(Machine &M, Symbol FromSym, Symbol ToSym, unsigned NThreads)
      : M(M), FromSym(FromSym), ToSym(ToSym),
        FromCells(M.memory().region(FromSym)->Cells),
        Fwd(new std::atomic<uint32_t>[FromCells.size()]),
        Workers(NThreads) {
    for (size_t I = 0; I < FromCells.size(); ++I)
      Fwd[I].store(Unclaimed, std::memory_order_relaxed);
    for (unsigned I = 0; I < NThreads; ++I) {
      Workers[I].Id = I;
      Workers[I].Mem = std::make_unique<Arena>();
      Workers[I].B = std::make_unique<ValueBuilder>(*Workers[I].Mem);
    }
  }

  /// Claims the to-slot for from-offset \p Off; newly claimed offsets are
  /// appended to \p NewWork (they still need scanning).
  uint32_t claim(uint32_t Off, std::vector<uint32_t> &NewWork,
                 uint64_t &Hits) {
    std::atomic<uint32_t> &Slot = Fwd[Off];
    uint32_t Cur = Slot.load(std::memory_order_acquire);
    for (;;) {
      if (Cur == Unclaimed) {
        if (Slot.compare_exchange_weak(Cur, Pending,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          uint32_t ToOff = NextTo.fetch_add(1, std::memory_order_relaxed);
          Unscanned.fetch_add(1, std::memory_order_relaxed);
          Slot.store(ToOff, std::memory_order_release);
          NewWork.push_back(Off);
          return ToOff;
        }
        continue; // Cur was refreshed by the failed CAS.
      }
      if (Cur != Pending) {
        ++Hits;
        return Cur;
      }
      // Another worker won the CAS and is about to publish the to-offset.
      Cur = Slot.load(std::memory_order_acquire);
    }
  }

  const Type *renameType(const Type *T, Worker &W) {
    if (!T)
      return nullptr;
    auto It = W.RenameCache.find(T);
    if (It != W.RenameCache.end())
      return It->second;
    const Type *R;
    {
      std::lock_guard<std::mutex> L(RenameMu);
      R = M.renameRegionName(T, FromSym, ToSym);
    }
    W.RenameCache.emplace(T, R);
    return R;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  /// Shallow rewrite of one value into \p W's arena: from-addresses become
  /// claimed to-slots, annotation types are retargeted. Mirrors
  /// CheneyGc::scan exactly so the two paths copy isomorphic graphs.
  const Value *scanValue(const Value *V, Worker &W) {
    ValueBuilder &B = *W.B;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      uint32_t ToOff = claim(A.Offset, W.Local, W.Hits);
      maybePublish(W);
      return B.valAddr(Address{Region::name(ToSym), ToOff});
    }
    case ValueKind::Pair:
      return B.valPair(scanValue(V->first(), W), scanValue(V->second(), W));
    case ValueKind::Inl:
      return B.valInl(scanValue(V->payload(), W));
    case ValueKind::Inr:
      return B.valInr(scanValue(V->payload(), W));
    case ValueKind::PackTag:
      return B.valPackTag(V->var(), V->tagWitness(),
                          scanValue(V->payload(), W),
                          renameType(V->bodyType(), W));
    case ValueKind::PackTyVar:
      return B.valPackTyVar(V->var(), retargetSet(V->delta()),
                            renameType(V->typeWitness(), W),
                            scanValue(V->payload(), W),
                            renameType(V->bodyType(), W));
    case ValueKind::PackRegion: {
      Region Witness = V->regionWitness();
      if (Witness.isName() && Witness.sym() == FromSym)
        Witness = Region::name(ToSym);
      return B.valPackRegion(V->var(), retargetSet(V->delta()), Witness,
                             scanValue(V->payload(), W),
                             renameType(V->bodyType(), W));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return B.valTransApp(scanValue(V->payload(), W), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  /// Shares part of \p W's local work, keeping the hot tail for the owner.
  /// Two triggers: a full chunk once the stack piles up, and — because a
  /// depth-first local stack over a binary heap never grows past the heap
  /// *depth* (~20 entries for a million-cell tree, far short of any fixed
  /// chunk threshold) — an eager half-split of the older entries whenever
  /// the worker's public deque has run empty. The oldest entries sit
  /// closest to the root and fan out the widest, so thieves get the
  /// biggest subtrees.
  void maybePublish(Worker &W) {
    size_t Share = 0;
    if (W.Local.size() >= 2 * ChunkSize)
      Share = ChunkSize;
    else if (W.Local.size() >= MinSplit && W.Deque.empty())
      Share = W.Local.size() / 2;
    if (Share == 0)
      return;
    std::vector<uint32_t> Chunk(W.Local.begin(), W.Local.begin() + Share);
    W.Local.erase(W.Local.begin(), W.Local.begin() + Share);
    W.Deque.push(std::move(Chunk));
    ++W.Chunks;
  }

  void scanCell(uint32_t FromOff, Worker &W) {
    const Value *Cell = FromCells[FromOff];
    assert(Cell && "parallel Cheney scan hit a dangling cell");
    const Value *Copied = scanValue(Cell, W);
    uint32_t ToOff = Fwd[FromOff].load(std::memory_order_acquire);
    assert(ToOff != Unclaimed && ToOff != Pending && "scanning unclaimed cell");
    W.Results.emplace_back(ToOff, Copied);
    ++W.Objects;
    Unscanned.fetch_sub(1, std::memory_order_release);
  }

  void workerLoop(Worker &W) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<uint32_t> Buf;
    for (;;) {
      if (!W.Local.empty()) {
        uint32_t Off = W.Local.back();
        W.Local.pop_back();
        scanCell(Off, W);
        continue;
      }
      if (W.Deque.pop(Buf)) {
        W.Local = std::move(Buf);
        Buf.clear();
        continue;
      }
      bool Stole = false;
      for (size_t I = 1; I < Workers.size() && !Stole; ++I) {
        Worker &Victim = Workers[(W.Id + I) % Workers.size()];
        if (Victim.Deque.steal(Buf)) {
          W.Local = std::move(Buf);
          Buf.clear();
          ++W.Steals;
          Stole = true;
        }
      }
      if (Stole)
        continue;
      if (Unscanned.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
    W.CopyNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

  /// Runs the full collection: serial root scan, parallel drain, serial
  /// epilogue. Returns the relocated root.
  const Value *collect(const Value *Root, NativeGcStats &Stats) {
    // Root scan on the mutator thread: claims seed work, values built in
    // worker 0's arena (adopted below like every other worker arena).
    Worker &RootW = Workers[0];
    const Value *NewRoot = scanValue(Root, RootW);
    // Deal the seed work round-robin so every worker starts busy.
    {
      std::vector<uint32_t> Seeds = std::move(RootW.Local);
      RootW.Local.clear();
      std::vector<std::vector<uint32_t>> Split(Workers.size());
      for (size_t I = 0; I < Seeds.size(); ++I)
        Split[I % Workers.size()].push_back(Seeds[I]);
      for (size_t I = 0; I < Workers.size(); ++I)
        if (!Split[I].empty())
          Workers[I].Local = std::move(Split[I]);
    }
    std::vector<std::thread> Threads;
    Threads.reserve(Workers.size());
    for (Worker &W : Workers)
      Threads.emplace_back([this, &W] {
        TRACE_SCOPE("collector", "native.worker");
        workerLoop(W);
      });
    for (std::thread &T : Threads)
      T.join();
    assert(Unscanned.load() == 0 && "workers exited with pending cells");

    // Serial epilogue: assemble the to-region in to-offset order and
    // install it with one bulk append.
    std::vector<const Value *> ToCells(NextTo.load(), nullptr);
    for (Worker &W : Workers)
      for (auto &[ToOff, V] : W.Results) {
        assert(!ToCells[ToOff] && "two workers copied one cell");
        ToCells[ToOff] = V;
      }
    bool Ok = M.memory().appendCells(ToSym, ToCells);
    assert(Ok && "to-region vanished during parallel collection");
    (void)Ok;
    if (M.config().TrackTypes) {
      // Ascending from-offset order: deterministic Ψ dirty footprint.
      for (uint32_t Off = 0; Off < FromCells.size(); ++Off) {
        uint32_t ToOff = Fwd[Off].load(std::memory_order_relaxed);
        if (ToOff == Unclaimed)
          continue;
        if (const Type *T = M.psi().lookup(Address{Region::name(FromSym), Off}))
          M.psi().set(Address{Region::name(ToSym), ToOff},
                      M.renameRegionName(T, FromSym, ToSym));
      }
    }
    Stats.Workers = static_cast<unsigned>(Workers.size());
    for (Worker &W : Workers) {
      Stats.ObjectsCopied += W.Objects;
      Stats.ForwardingHits += W.Hits;
      Stats.Steals += W.Steals;
      Stats.ChunksPublished += W.Chunks;
      Stats.WorkerCopyNs.push_back(W.CopyNs);
      Stats.WorkerObjects.push_back(W.Objects);
      M.context().adoptArena(std::move(W.Mem));
    }
    return NewRoot;
  }
};

/// Threads == 0 ("use the default") resolves here: the setter wins, else
/// SCAV_THREADS, else 1. Read once — a mid-run env change should not flip
/// collection determinism under a test.
unsigned &nativeGcThreadsSlot() {
  static unsigned N = [] {
    if (const char *Env = std::getenv("SCAV_THREADS"); Env && *Env) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Env, &End, 10);
      if (End != Env && *End == '\0' && V != 0 && V <= 1024)
        return static_cast<unsigned>(V);
    }
    return 1u;
  }();
  return N;
}

} // namespace

unsigned scav::gc::nativeGcThreads() { return nativeGcThreadsSlot(); }

void scav::gc::setNativeGcThreads(unsigned N) {
  nativeGcThreadsSlot() = N == 0 ? 1 : N;
}

std::pair<const Value *, Region>
scav::gc::nativeCollect(Machine &M, const Value *Root, Region From,
                        bool PreserveSharing, NativeGcStats &Stats,
                        CopyOrder Order, unsigned Threads) {
  TRACE_SCOPE("collector", "native.collect");
  if (Threads == 0)
    Threads = nativeGcThreads();
  GcContext &C = M.context();
  Region To = M.createRegion("to", 0);
  const Value *NewRoot = nullptr;
  if (Order == CopyOrder::BreadthFirst && Threads > 1) {
    ParallelCheney Gc(M, From.sym(), To.sym(), Threads);
    NewRoot = Gc.collect(Root, Stats);
  } else if (Order == CopyOrder::BreadthFirst) {
    CheneyGc Gc{M, C, From.sym(), To.sym(), Stats, {}, {}};
    NewRoot = Gc.scan(Root);
    Gc.drain();
  } else {
    NativeGc Gc{M, C, From.sym(), To.sym(), PreserveSharing, Stats, {}};
    NewRoot = Gc.relocate(Root);
  }
  if (SCAV_TRACE_ENABLED()) {
    auto &Sink = support::TraceSink::get();
    Sink.counter("native.copied", static_cast<double>(Stats.ObjectsCopied));
    Sink.counter("native.forwarding_hits",
                 static_cast<double>(Stats.ForwardingHits));
  }
  // Reclaim the from-region (the machine-level analogue of `only`).
  RegionSet Keep;
  for (const auto &[S, _] : M.memory().Regions)
    if (S != From.sym() && S != C.cd().sym())
      Keep.insert(Region::name(S));
  M.memory().restrictTo(Keep);
  M.psi().removeRegion(From.sym());
  // This function rewrote Ψ behind the machine's back; its recordPut cache
  // must not serve types inferred under the old Ψ.
  M.invalidatePutTypeCache();
  return {NewRoot, To};
}
