//===- gc/NativeCollector.cpp - Meta-level C++ collector -------------------===//

#include "gc/NativeCollector.h"

#include "support/ParseInt.h"
#include "support/WorkSteal.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

using namespace scav;
using namespace scav::gc;

namespace {

struct NativeGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  bool PreserveSharing;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding; // from-offset → to-offset

  const Value *relocate(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V; // cd or another surviving region
      return C.valAddr(copyCell(A));
    }
    case ValueKind::Pair:
      return C.valPair(relocate(V->first()), relocate(V->second()));
    case ValueKind::Inl:
      return C.valInl(relocate(V->payload()));
    case ValueKind::Inr:
      return C.valInr(relocate(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), relocate(V->payload()),
                          retarget(V->bodyType()));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(V->var(), retargetSet(V->delta()),
                            retarget(V->typeWitness()),
                            relocate(V->payload()), retarget(V->bodyType()));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(V->var(), retargetSet(V->delta()), W,
                             relocate(V->payload()), retarget(V->bodyType()));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(relocate(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  Address copyCell(Address A) {
    if (PreserveSharing) {
      auto It = Forwarding.find(A.Offset);
      if (It != Forwarding.end()) {
        ++Stats.ForwardingHits;
        return Address{Region::name(ToSym), It->second};
      }
    }
    const Value *Cell = M.memory().get(A);
    assert(Cell && "native collector hit a dangling address");
    // Depth-first copy; reserve the slot before descending so cycles would
    // at least terminate (the λGC heaps here are acyclic, like the paper's).
    const Value *Copied = relocate(Cell);
    std::optional<Address> NewA = M.memory().put(ToSym, Copied);
    assert(NewA && "to-region vanished during native collection");
    ++Stats.ObjectsCopied;
    if (PreserveSharing)
      Forwarding[A.Offset] = NewA->Offset;
    if (M.config().TrackTypes) {
      const Type *T = M.psi().lookup(A);
      if (T)
        M.psi().set(*NewA, retarget(T));
    }
    return *NewA;
  }

  /// Renames the from-region to the to-region inside recorded cell types.
  const Type *retarget(const Type *T) {
    return M.renameRegionName(T, FromSym, ToSym);
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }
};

} // namespace

namespace {

/// Cheney-style breadth-first copy: slots are reserved in arrival order
/// (the reservation doubles as the forwarding pointer), and a queue of
/// pending from-cells plays the role of the scan pointer. Sharing is
/// inherently preserved.
struct CheneyGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding;
  std::deque<uint32_t> Queue; // from-offsets with a reserved to-slot

  Address reserve(Address A) {
    auto It = Forwarding.find(A.Offset);
    if (It != Forwarding.end()) {
      ++Stats.ForwardingHits;
      return Address{Region::name(ToSym), It->second};
    }
    std::optional<Address> Slot = M.memory().put(ToSym, nullptr);
    assert(Slot && "to-region vanished");
    Forwarding[A.Offset] = Slot->Offset;
    Queue.push_back(A.Offset);
    return *Slot;
  }

  /// Rewrites one value shallowly: from-addresses become reserved to-slots.
  const Value *scan(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      return C.valAddr(reserve(A));
    }
    case ValueKind::Pair:
      return C.valPair(scan(V->first()), scan(V->second()));
    case ValueKind::Inl:
      return C.valInl(scan(V->payload()));
    case ValueKind::Inr:
      return C.valInr(scan(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), scan(V->payload()),
                          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(
          V->var(), retargetSet(V->delta()),
          M.renameRegionName(V->typeWitness(), FromSym, ToSym),
          scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(
          V->var(), retargetSet(V->delta()), W, scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(scan(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  void drain() {
    while (!Queue.empty()) {
      uint32_t FromOff = Queue.front();
      Queue.pop_front();
      Address FromA{Region::name(FromSym), FromOff};
      const Value *Cell = M.memory().get(FromA);
      assert(Cell && "Cheney scan hit a dangling cell");
      Address ToA{Region::name(ToSym), Forwarding[FromOff]};
      M.memory().fill(ToA, scan(Cell));
      ++Stats.ObjectsCopied;
      if (M.config().TrackTypes) {
        if (const Type *T = M.psi().lookup(FromA))
          M.psi().set(ToA, M.renameRegionName(T, FromSym, ToSym));
      }
    }
  }
};

/// Parallel Cheney copy. The from-space is frozen (the mutator is parked),
/// so the only shared mutable state during the copy is the forwarding
/// array: one atomic per from-cell, UNCLAIMED → PENDING (CAS winner is the
/// copier) → the to-offset, drawn from one atomic bump counter. Workers
/// build copied values in private arenas through ValueBuilder and record
/// (to-offset, value) pairs; a serial epilogue assembles the to-region with
/// one Memory::appendCells, rewrites Ψ, and adopts the arenas into the
/// machine's context. Work is distributed in chunks through per-worker
/// ChunkDeques (owner pops newest, thieves steal oldest); termination is a
/// count of claimed-but-unscanned cells hitting zero — claims only happen
/// inside a scan (or the serial root scan before workers start), so the
/// count cannot re-rise from zero.
struct ParallelCheney {
  static constexpr uint32_t Unclaimed = 0xFFFFFFFFu;
  static constexpr uint32_t Pending = 0xFFFFFFFEu;
  static constexpr size_t ChunkSize = 64;
  /// Smallest local stack worth half-splitting into the public deque.
  static constexpr size_t MinSplit = 4;

  struct Worker {
    unsigned Id = 0;
    std::unique_ptr<Arena> Mem;
    std::unique_ptr<ValueBuilder> B;
    std::vector<uint32_t> Local; ///< Active work, hottest at the back.
    ChunkDeque<uint32_t> Deque;  ///< Published chunks, stealable.
    std::vector<std::pair<uint32_t, const Value *>> Results;
    /// Per-worker memo for renamed types: keeps RenameMu traffic down to
    /// one lock per distinct annotation type per worker.
    std::unordered_map<const Type *, const Type *> RenameCache;
    uint64_t Objects = 0, Hits = 0, Steals = 0, Chunks = 0, CopyNs = 0;
  };

  Machine &M;
  Symbol FromSym;
  Symbol ToSym;
  const std::vector<const Value *> &FromCells;
  std::unique_ptr<std::atomic<uint32_t>[]> Fwd;
  std::atomic<uint32_t> NextTo{0};
  std::atomic<int64_t> Unscanned{0};
  /// Serializes renameRegionName: it interns into the machine's (single-
  /// threaded) GcContext. Cold — annotation types are few and memoized.
  std::mutex RenameMu;
  std::vector<Worker> Workers;

  ParallelCheney(Machine &M, Symbol FromSym, Symbol ToSym, unsigned NThreads)
      : M(M), FromSym(FromSym), ToSym(ToSym),
        FromCells(M.memory().region(FromSym)->Cells),
        Fwd(new std::atomic<uint32_t>[FromCells.size()]),
        Workers(NThreads) {
    for (size_t I = 0; I < FromCells.size(); ++I)
      Fwd[I].store(Unclaimed, std::memory_order_relaxed);
    for (unsigned I = 0; I < NThreads; ++I) {
      Workers[I].Id = I;
      Workers[I].Mem = std::make_unique<Arena>();
      Workers[I].B = std::make_unique<ValueBuilder>(*Workers[I].Mem);
    }
  }

  /// Claims the to-slot for from-offset \p Off; newly claimed offsets are
  /// appended to \p NewWork (they still need scanning).
  uint32_t claim(uint32_t Off, std::vector<uint32_t> &NewWork,
                 uint64_t &Hits) {
    std::atomic<uint32_t> &Slot = Fwd[Off];
    uint32_t Cur = Slot.load(std::memory_order_acquire);
    for (;;) {
      if (Cur == Unclaimed) {
        if (Slot.compare_exchange_weak(Cur, Pending,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          uint32_t ToOff = NextTo.fetch_add(1, std::memory_order_relaxed);
          Unscanned.fetch_add(1, std::memory_order_relaxed);
          Slot.store(ToOff, std::memory_order_release);
          NewWork.push_back(Off);
          return ToOff;
        }
        continue; // Cur was refreshed by the failed CAS.
      }
      if (Cur != Pending) {
        ++Hits;
        return Cur;
      }
      // Another worker won the CAS and is about to publish the to-offset.
      Cur = Slot.load(std::memory_order_acquire);
    }
  }

  const Type *renameType(const Type *T, Worker &W) {
    if (!T)
      return nullptr;
    auto It = W.RenameCache.find(T);
    if (It != W.RenameCache.end())
      return It->second;
    const Type *R;
    {
      std::lock_guard<std::mutex> L(RenameMu);
      R = M.renameRegionName(T, FromSym, ToSym);
    }
    W.RenameCache.emplace(T, R);
    return R;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  /// Shallow rewrite of one value into \p W's arena: from-addresses become
  /// claimed to-slots, annotation types are retargeted. Mirrors
  /// CheneyGc::scan exactly so the two paths copy isomorphic graphs.
  const Value *scanValue(const Value *V, Worker &W) {
    ValueBuilder &B = *W.B;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      uint32_t ToOff = claim(A.Offset, W.Local, W.Hits);
      maybePublish(W);
      return B.valAddr(Address{Region::name(ToSym), ToOff});
    }
    case ValueKind::Pair:
      return B.valPair(scanValue(V->first(), W), scanValue(V->second(), W));
    case ValueKind::Inl:
      return B.valInl(scanValue(V->payload(), W));
    case ValueKind::Inr:
      return B.valInr(scanValue(V->payload(), W));
    case ValueKind::PackTag:
      return B.valPackTag(V->var(), V->tagWitness(),
                          scanValue(V->payload(), W),
                          renameType(V->bodyType(), W));
    case ValueKind::PackTyVar:
      return B.valPackTyVar(V->var(), retargetSet(V->delta()),
                            renameType(V->typeWitness(), W),
                            scanValue(V->payload(), W),
                            renameType(V->bodyType(), W));
    case ValueKind::PackRegion: {
      Region Witness = V->regionWitness();
      if (Witness.isName() && Witness.sym() == FromSym)
        Witness = Region::name(ToSym);
      return B.valPackRegion(V->var(), retargetSet(V->delta()), Witness,
                             scanValue(V->payload(), W),
                             renameType(V->bodyType(), W));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return B.valTransApp(scanValue(V->payload(), W), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  /// Shares part of \p W's local work, keeping the hot tail for the owner.
  /// Two triggers: a full chunk once the stack piles up, and — because a
  /// depth-first local stack over a binary heap never grows past the heap
  /// *depth* (~20 entries for a million-cell tree, far short of any fixed
  /// chunk threshold) — an eager half-split of the older entries whenever
  /// the worker's public deque has run empty. The oldest entries sit
  /// closest to the root and fan out the widest, so thieves get the
  /// biggest subtrees.
  void maybePublish(Worker &W) {
    size_t Share = 0;
    if (W.Local.size() >= 2 * ChunkSize)
      Share = ChunkSize;
    else if (W.Local.size() >= MinSplit && W.Deque.empty())
      Share = W.Local.size() / 2;
    if (Share == 0)
      return;
    std::vector<uint32_t> Chunk(W.Local.begin(), W.Local.begin() + Share);
    W.Local.erase(W.Local.begin(), W.Local.begin() + Share);
    W.Deque.push(std::move(Chunk));
    ++W.Chunks;
  }

  void scanCell(uint32_t FromOff, Worker &W) {
    const Value *Cell = FromCells[FromOff];
    assert(Cell && "parallel Cheney scan hit a dangling cell");
    const Value *Copied = scanValue(Cell, W);
    uint32_t ToOff = Fwd[FromOff].load(std::memory_order_acquire);
    assert(ToOff != Unclaimed && ToOff != Pending && "scanning unclaimed cell");
    W.Results.emplace_back(ToOff, Copied);
    ++W.Objects;
    Unscanned.fetch_sub(1, std::memory_order_release);
  }

  void workerLoop(Worker &W) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<uint32_t> Buf;
    for (;;) {
      if (!W.Local.empty()) {
        uint32_t Off = W.Local.back();
        W.Local.pop_back();
        scanCell(Off, W);
        continue;
      }
      if (W.Deque.pop(Buf)) {
        W.Local = std::move(Buf);
        Buf.clear();
        continue;
      }
      bool Stole = false;
      for (size_t I = 1; I < Workers.size() && !Stole; ++I) {
        Worker &Victim = Workers[(W.Id + I) % Workers.size()];
        if (Victim.Deque.steal(Buf)) {
          W.Local = std::move(Buf);
          Buf.clear();
          ++W.Steals;
          Stole = true;
        }
      }
      if (Stole)
        continue;
      if (Unscanned.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
    W.CopyNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

  /// Runs the full collection: serial root scan, parallel drain, serial
  /// epilogue. Returns the relocated root.
  const Value *collect(const Value *Root, NativeGcStats &Stats) {
    // Root scan on the mutator thread: claims seed work, values built in
    // worker 0's arena (adopted below like every other worker arena).
    Worker &RootW = Workers[0];
    const Value *NewRoot = scanValue(Root, RootW);
    // Deal the seed work round-robin so every worker starts busy.
    {
      std::vector<uint32_t> Seeds = std::move(RootW.Local);
      RootW.Local.clear();
      std::vector<std::vector<uint32_t>> Split(Workers.size());
      for (size_t I = 0; I < Seeds.size(); ++I)
        Split[I % Workers.size()].push_back(Seeds[I]);
      for (size_t I = 0; I < Workers.size(); ++I)
        if (!Split[I].empty())
          Workers[I].Local = std::move(Split[I]);
    }
    std::vector<std::thread> Threads;
    Threads.reserve(Workers.size());
    for (Worker &W : Workers)
      Threads.emplace_back([this, &W] {
        TRACE_SCOPE("collector", "native.worker");
        workerLoop(W);
      });
    for (std::thread &T : Threads)
      T.join();
    assert(Unscanned.load() == 0 && "workers exited with pending cells");

    // Serial epilogue: assemble the to-region in to-offset order and
    // install it with one bulk append.
    std::vector<const Value *> ToCells(NextTo.load(), nullptr);
    for (Worker &W : Workers)
      for (auto &[ToOff, V] : W.Results) {
        assert(!ToCells[ToOff] && "two workers copied one cell");
        ToCells[ToOff] = V;
      }
    bool Ok = M.memory().appendCells(ToSym, ToCells);
    assert(Ok && "to-region vanished during parallel collection");
    (void)Ok;
    if (M.config().TrackTypes) {
      // Ascending from-offset order: deterministic Ψ dirty footprint.
      for (uint32_t Off = 0; Off < FromCells.size(); ++Off) {
        uint32_t ToOff = Fwd[Off].load(std::memory_order_relaxed);
        if (ToOff == Unclaimed)
          continue;
        if (const Type *T = M.psi().lookup(Address{Region::name(FromSym), Off}))
          M.psi().set(Address{Region::name(ToSym), ToOff},
                      M.renameRegionName(T, FromSym, ToSym));
      }
    }
    Stats.Workers = static_cast<unsigned>(Workers.size());
    for (Worker &W : Workers) {
      Stats.ObjectsCopied += W.Objects;
      Stats.ForwardingHits += W.Hits;
      Stats.Steals += W.Steals;
      Stats.ChunksPublished += W.Chunks;
      Stats.WorkerCopyNs.push_back(W.CopyNs);
      Stats.WorkerObjects.push_back(W.Objects);
      M.context().adoptArena(std::move(W.Mem));
    }
    return NewRoot;
  }
};

//===----------------------------------------------------------------------===//
// Compact-layout copies: word-level twins of the three paths above
//===----------------------------------------------------------------------===//
//
// Under HeapLayout::Compact (Memory.h) cells are 64-bit tagged words, so the
// copy loop moves words between flat buffers and fixes up region-id/offset
// payloads instead of rebuilding Value trees — only Box cells (the rare
// pointer-rich shapes) fall back to the value-level rewrite, which routes
// from-addresses back through the word-level copy so that every path
// produces the exact to-space cell order of its legacy twin (the
// differential tests compare diagnostics that print addresses).
//
// Forwarding is a dense from-offset-indexed vector rather than a std::map:
// the from-region is bump-allocated, so offsets are dense by construction.

using heapword::WordTag;

/// Depth-first compact copy (twin of NativeGc).
struct NativeGcCompact {
  static constexpr uint32_t NoFwd = 0xFFFFFFFFu;

  Machine &M;
  GcContext &C;
  Memory &Mem;
  RegionData &From;
  RegionData &To;
  Symbol FromSym, ToSym;
  uint32_t FromId, ToId;
  bool PreserveSharing;
  NativeGcStats &Stats;
  std::vector<uint32_t> Fwd; // from-offset → to-offset
  /// renameRegionName interns, so identical inputs give identical pointers;
  /// the memo only skips re-walking the (few, shared) annotation types.
  std::unordered_map<const Type *, const Type *> RenameCache;
  std::unordered_map<const RegionSet *, const RegionSet *> DeltaCache;

  NativeGcCompact(Machine &M, Symbol FromSym, Symbol ToSym,
                  bool PreserveSharing, NativeGcStats &Stats)
      : M(M), C(M.context()), Mem(M.memory()), From(*Mem.region(FromSym)),
        To(*Mem.region(ToSym)), FromSym(FromSym), ToSym(ToSym),
        FromId(From.Id), ToId(To.Id), PreserveSharing(PreserveSharing),
        Stats(Stats), Fwd(From.Words.size(), NoFwd) {}

  const Type *retarget(const Type *T) {
    if (!T)
      return nullptr;
    auto It = RenameCache.find(T);
    if (It != RenameCache.end())
      return It->second;
    const Type *R = M.renameRegionName(T, FromSym, ToSym);
    RenameCache.emplace(T, R);
    return R;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  /// Pointer-level ∆ rewrite: cells written through one Tpl cache entry all
  /// share a delta pointer, so the memo collapses the per-cell rewrite to a
  /// hash probe (and keeps the copies sharing one to-space set).
  const RegionSet *retargetDelta(const RegionSet *RS) {
    auto It = DeltaCache.find(RS);
    if (It != DeltaCache.end())
      return It->second;
    const RegionSet *Out =
        RS->contains(Region::name(FromSym)) ? C.allocRegionSet(retargetSet(*RS))
                                            : RS;
    DeltaCache.emplace(RS, Out);
    return Out;
  }

  /// Value-level relocate for Box cells; mirrors NativeGc::relocate with
  /// from-addresses routed through the word-level copyCell.
  const Value *relocateValue(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      return C.valAddr(Address{Region::name(ToSym), copyCell(A.Offset)});
    }
    case ValueKind::Pair:
      return C.valPair(relocateValue(V->first()), relocateValue(V->second()));
    case ValueKind::Inl:
      return C.valInl(relocateValue(V->payload()));
    case ValueKind::Inr:
      return C.valInr(relocateValue(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(),
                          relocateValue(V->payload()),
                          retarget(V->bodyType()));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(V->var(), retargetDelta(&V->delta()),
                            retarget(V->typeWitness()),
                            relocateValue(V->payload()),
                            retarget(V->bodyType()));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(V->var(), retargetDelta(&V->delta()), W,
                             relocateValue(V->payload()),
                             retarget(V->bodyType()));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(relocateValue(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  uint64_t relocateWord(uint64_t W) {
    switch (heapword::tagOf(W)) {
    case WordTag::Hole:
    case WordTag::Int:
      return W;
    case WordTag::Addr:
      if (heapword::addrRegionId(W) != FromId)
        return W; // cd or another surviving region
      return heapword::makeAddr(ToId, copyCell(heapword::addrOffset(W)));
    case WordTag::InlAddr:
    case WordTag::InrAddr:
      if (heapword::addrRegionId(W) != FromId)
        return W;
      return heapword::make(
          heapword::tagOf(W),
          heapword::addrPayload(ToId, copyCell(heapword::addrOffset(W))));
    case WordTag::Pair: {
      uint32_t I = heapword::indexOf(W);
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.push_back(heapword::Hole);
      To.Aux.push_back(heapword::Hole);
      // First child fully (descendants and all) before the second — the
      // legacy depth-first order.
      uint64_t A = relocateWord(From.Aux[I]);
      uint64_t B = relocateWord(From.Aux[I + 1]);
      To.Aux[NI] = A;
      To.Aux[NI + 1] = B;
      return heapword::make(WordTag::Pair, NI);
    }
    case WordTag::InlAux:
    case WordTag::InrAux: {
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.push_back(heapword::Hole);
      uint64_t Child = relocateWord(From.Aux[heapword::indexOf(W)]);
      To.Aux[NI] = Child;
      return heapword::make(heapword::tagOf(W), NI);
    }
    case WordTag::PackTagAux:
    case WordTag::PackTyVarAux:
    case WordTag::PackRegionAux: {
      WordTag T = heapword::tagOf(W);
      uint32_t Span = heapword::auxSpan(T);
      uint32_t I = heapword::indexOf(W);
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.resize(NI + Span, heapword::Hole);
      uint64_t Payload = relocateWord(From.Aux[I]);
      To.Aux[NI] = Payload;
      To.Aux[NI + 1] = From.Aux[I + 1]; // binder symbol
      if (T == WordTag::PackTagAux) {
        To.Aux[NI + 2] = From.Aux[I + 2]; // witness tag is region-free
        To.Aux[NI + 3] = heapword::ptrBits(
            retarget(heapword::ptrOf<Type>(From.Aux[I + 3])));
      } else {
        To.Aux[NI + 2] = heapword::ptrBits(
            retargetDelta(heapword::ptrOf<RegionSet>(From.Aux[I + 2])));
        if (T == WordTag::PackTyVarAux) {
          To.Aux[NI + 3] = heapword::ptrBits(
              retarget(heapword::ptrOf<Type>(From.Aux[I + 3])));
        } else {
          Region RW = heapword::regionOf(From.Aux[I + 3]);
          if (RW.isName() && RW.sym() == FromSym)
            RW = Region::name(ToSym);
          To.Aux[NI + 3] = heapword::regionBits(RW);
        }
        To.Aux[NI + 4] = heapword::ptrBits(
            retarget(heapword::ptrOf<Type>(From.Aux[I + 4])));
      }
      return heapword::make(T, NI);
    }
    case WordTag::Box: {
      const Value *NV = relocateValue(From.Boxed[heapword::indexOf(W)]);
      To.Boxed.push_back(NV);
      return heapword::make(WordTag::Box, To.Boxed.size() - 1);
    }
    }
    return W;
  }

  uint32_t copyCell(uint32_t FromOff) {
    assert(FromOff < From.Words.size() &&
           "native collector hit a dangling address");
    if (PreserveSharing && Fwd[FromOff] != NoFwd) {
      ++Stats.ForwardingHits;
      return Fwd[FromOff];
    }
    uint64_t W = From.Words[FromOff];
    assert(W != heapword::Hole && "native collector hit a dangling address");
    uint64_t NW = relocateWord(W);
    std::optional<Address> NewA = Mem.putWord(To, ToSym, NW);
    assert(NewA && "to-region vanished during native collection");
    ++Stats.ObjectsCopied;
    if (PreserveSharing)
      Fwd[FromOff] = NewA->Offset;
    if (M.config().TrackTypes) {
      const Type *T = M.psi().lookup(Address{Region::name(FromSym), FromOff});
      if (T)
        M.psi().set(*NewA, retarget(T));
    }
    return NewA->Offset;
  }
};

/// Serial breadth-first compact copy (twin of CheneyGc).
struct CheneyGcCompact {
  static constexpr uint32_t NoFwd = 0xFFFFFFFFu;

  Machine &M;
  GcContext &C;
  Memory &Mem;
  RegionData &From;
  RegionData &To;
  Symbol FromSym, ToSym;
  uint32_t FromId, ToId;
  NativeGcStats &Stats;
  std::vector<uint32_t> Fwd;
  std::deque<uint32_t> Queue; // from-offsets with a reserved to-slot
  std::unordered_map<const Type *, const Type *> RenameCache;
  std::unordered_map<const RegionSet *, const RegionSet *> DeltaCache;

  CheneyGcCompact(Machine &M, Symbol FromSym, Symbol ToSym,
                  NativeGcStats &Stats)
      : M(M), C(M.context()), Mem(M.memory()), From(*Mem.region(FromSym)),
        To(*Mem.region(ToSym)), FromSym(FromSym), ToSym(ToSym),
        FromId(From.Id), ToId(To.Id), Stats(Stats),
        Fwd(From.Words.size(), NoFwd) {}

  const Type *retarget(const Type *T) {
    if (!T)
      return nullptr;
    auto It = RenameCache.find(T);
    if (It != RenameCache.end())
      return It->second;
    const Type *R = M.renameRegionName(T, FromSym, ToSym);
    RenameCache.emplace(T, R);
    return R;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  /// See NativeGcCompact::retargetDelta.
  const RegionSet *retargetDelta(const RegionSet *RS) {
    auto It = DeltaCache.find(RS);
    if (It != DeltaCache.end())
      return It->second;
    const RegionSet *Out =
        RS->contains(Region::name(FromSym)) ? C.allocRegionSet(retargetSet(*RS))
                                            : RS;
    DeltaCache.emplace(RS, Out);
    return Out;
  }

  uint32_t reserve(uint32_t FromOff) {
    assert(FromOff < From.Words.size() && "Cheney reserve past from extent");
    if (Fwd[FromOff] != NoFwd) {
      ++Stats.ForwardingHits;
      return Fwd[FromOff];
    }
    std::optional<Address> Slot = Mem.putWord(To, ToSym, heapword::Hole);
    assert(Slot && "to-region vanished");
    Fwd[FromOff] = Slot->Offset;
    Queue.push_back(FromOff);
    return Slot->Offset;
  }

  /// Value-level shallow scan for Box cells and the root; mirrors
  /// CheneyGc::scan with reservations through the word-level table.
  const Value *scanValue(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      return C.valAddr(Address{Region::name(ToSym), reserve(A.Offset)});
    }
    case ValueKind::Pair:
      return C.valPair(scanValue(V->first()), scanValue(V->second()));
    case ValueKind::Inl:
      return C.valInl(scanValue(V->payload()));
    case ValueKind::Inr:
      return C.valInr(scanValue(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), scanValue(V->payload()),
                          retarget(V->bodyType()));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(V->var(), retargetDelta(&V->delta()),
                            retarget(V->typeWitness()),
                            scanValue(V->payload()),
                            retarget(V->bodyType()));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(V->var(), retargetDelta(&V->delta()), W,
                             scanValue(V->payload()), retarget(V->bodyType()));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(scanValue(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  uint64_t scanWord(uint64_t W) {
    switch (heapword::tagOf(W)) {
    case WordTag::Hole:
    case WordTag::Int:
      return W;
    case WordTag::Addr:
      if (heapword::addrRegionId(W) != FromId)
        return W;
      return heapword::makeAddr(ToId, reserve(heapword::addrOffset(W)));
    case WordTag::InlAddr:
    case WordTag::InrAddr:
      if (heapword::addrRegionId(W) != FromId)
        return W;
      return heapword::make(
          heapword::tagOf(W),
          heapword::addrPayload(ToId, reserve(heapword::addrOffset(W))));
    case WordTag::Pair: {
      uint32_t I = heapword::indexOf(W);
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.push_back(heapword::Hole);
      To.Aux.push_back(heapword::Hole);
      uint64_t A = scanWord(From.Aux[I]);
      uint64_t B = scanWord(From.Aux[I + 1]);
      To.Aux[NI] = A;
      To.Aux[NI + 1] = B;
      return heapword::make(WordTag::Pair, NI);
    }
    case WordTag::InlAux:
    case WordTag::InrAux: {
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.push_back(heapword::Hole);
      uint64_t Child = scanWord(From.Aux[heapword::indexOf(W)]);
      To.Aux[NI] = Child;
      return heapword::make(heapword::tagOf(W), NI);
    }
    case WordTag::PackTagAux:
    case WordTag::PackTyVarAux:
    case WordTag::PackRegionAux: {
      WordTag T = heapword::tagOf(W);
      uint32_t Span = heapword::auxSpan(T);
      uint32_t I = heapword::indexOf(W);
      uint32_t NI = static_cast<uint32_t>(To.Aux.size());
      To.Aux.resize(NI + Span, heapword::Hole);
      uint64_t Payload = scanWord(From.Aux[I]);
      To.Aux[NI] = Payload;
      To.Aux[NI + 1] = From.Aux[I + 1]; // binder symbol
      if (T == WordTag::PackTagAux) {
        To.Aux[NI + 2] = From.Aux[I + 2]; // witness tag is region-free
        To.Aux[NI + 3] = heapword::ptrBits(
            retarget(heapword::ptrOf<Type>(From.Aux[I + 3])));
      } else {
        To.Aux[NI + 2] = heapword::ptrBits(
            retargetDelta(heapword::ptrOf<RegionSet>(From.Aux[I + 2])));
        if (T == WordTag::PackTyVarAux) {
          To.Aux[NI + 3] = heapword::ptrBits(
              retarget(heapword::ptrOf<Type>(From.Aux[I + 3])));
        } else {
          Region RW = heapword::regionOf(From.Aux[I + 3]);
          if (RW.isName() && RW.sym() == FromSym)
            RW = Region::name(ToSym);
          To.Aux[NI + 3] = heapword::regionBits(RW);
        }
        To.Aux[NI + 4] = heapword::ptrBits(
            retarget(heapword::ptrOf<Type>(From.Aux[I + 4])));
      }
      return heapword::make(T, NI);
    }
    case WordTag::Box: {
      const Value *NV = scanValue(From.Boxed[heapword::indexOf(W)]);
      To.Boxed.push_back(NV);
      return heapword::make(WordTag::Box, To.Boxed.size() - 1);
    }
    }
    return W;
  }

  void drain() {
    while (!Queue.empty()) {
      uint32_t FromOff = Queue.front();
      Queue.pop_front();
      uint64_t W = From.Words[FromOff];
      assert(W != heapword::Hole && "Cheney scan hit a dangling cell");
      Address ToA{Region::name(ToSym), Fwd[FromOff]};
      Mem.fillWord(To, ToA, scanWord(W));
      ++Stats.ObjectsCopied;
      if (M.config().TrackTypes) {
        if (const Type *T =
                M.psi().lookup(Address{Region::name(FromSym), FromOff}))
          M.psi().set(ToA, retarget(T));
      }
    }
  }
};

/// Parallel compact Cheney copy (twin of ParallelCheney): identical claim /
/// work-stealing / termination protocol, but workers move words. Per-worker
/// Aux/Boxed buffers hold worker-relative indices; the serial epilogue
/// rebases them while concatenating into the to-region's tables. Box cells
/// still build their copied Values in per-worker arenas via ValueBuilder.
struct ParallelCheneyCompact {
  static constexpr uint32_t Unclaimed = 0xFFFFFFFFu;
  static constexpr uint32_t Pending = 0xFFFFFFFEu;
  static constexpr size_t ChunkSize = 64;
  static constexpr size_t MinSplit = 4;

  struct Worker {
    unsigned Id = 0;
    std::unique_ptr<Arena> Mem;
    std::unique_ptr<ValueBuilder> B;
    std::vector<uint32_t> Local;
    ChunkDeque<uint32_t> Deque;
    std::vector<std::pair<uint32_t, uint64_t>> Results; // to-offset → word
    std::vector<uint64_t> AuxBuf;        ///< Worker-relative child words.
    std::vector<const Value *> BoxBuf;   ///< Worker-relative boxed cells.
    std::unordered_map<const Type *, const Type *> RenameCache;
    std::unordered_map<const RegionSet *, const RegionSet *> DeltaCache;
    uint64_t Objects = 0, Hits = 0, Steals = 0, Chunks = 0, CopyNs = 0;
  };

  Machine &M;
  Memory &Mem;
  Symbol FromSym, ToSym;
  RegionData &From;
  RegionData &To;
  uint32_t FromId, ToId;
  std::unique_ptr<std::atomic<uint32_t>[]> Fwd;
  std::atomic<uint32_t> NextTo{0};
  std::atomic<int64_t> Unscanned{0};
  std::mutex RenameMu;
  std::vector<Worker> Workers;

  ParallelCheneyCompact(Machine &M, Symbol FromSym, Symbol ToSym,
                        unsigned NThreads)
      : M(M), Mem(M.memory()), FromSym(FromSym), ToSym(ToSym),
        From(*Mem.region(FromSym)), To(*Mem.region(ToSym)), FromId(From.Id),
        ToId(To.Id), Fwd(new std::atomic<uint32_t>[From.Words.size()]),
        Workers(NThreads) {
    for (size_t I = 0; I < From.Words.size(); ++I)
      Fwd[I].store(Unclaimed, std::memory_order_relaxed);
    for (unsigned I = 0; I < NThreads; ++I) {
      Workers[I].Id = I;
      Workers[I].Mem = std::make_unique<Arena>();
      Workers[I].B = std::make_unique<ValueBuilder>(*Workers[I].Mem);
    }
  }

  uint32_t claim(uint32_t Off, std::vector<uint32_t> &NewWork,
                 uint64_t &Hits) {
    std::atomic<uint32_t> &Slot = Fwd[Off];
    uint32_t Cur = Slot.load(std::memory_order_acquire);
    for (;;) {
      if (Cur == Unclaimed) {
        if (Slot.compare_exchange_weak(Cur, Pending,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          uint32_t ToOff = NextTo.fetch_add(1, std::memory_order_relaxed);
          Unscanned.fetch_add(1, std::memory_order_relaxed);
          Slot.store(ToOff, std::memory_order_release);
          NewWork.push_back(Off);
          return ToOff;
        }
        continue; // Cur was refreshed by the failed CAS.
      }
      if (Cur != Pending) {
        ++Hits;
        return Cur;
      }
      Cur = Slot.load(std::memory_order_acquire);
    }
  }

  const Type *renameType(const Type *T, Worker &W) {
    if (!T)
      return nullptr;
    auto It = W.RenameCache.find(T);
    if (It != W.RenameCache.end())
      return It->second;
    const Type *R;
    {
      std::lock_guard<std::mutex> L(RenameMu);
      R = M.renameRegionName(T, FromSym, ToSym);
    }
    W.RenameCache.emplace(T, R);
    return R;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  /// Per-worker twin of NativeGcCompact::retargetDelta; rewritten sets go
  /// into the worker's arena (adopted by the context after the join).
  const RegionSet *retargetDelta(const RegionSet *RS, Worker &W) {
    auto It = W.DeltaCache.find(RS);
    if (It != W.DeltaCache.end())
      return It->second;
    const RegionSet *Out = RS->contains(Region::name(FromSym))
                               ? W.B->allocRegionSet(retargetSet(*RS))
                               : RS;
    W.DeltaCache.emplace(RS, Out);
    return Out;
  }

  /// Value-level shallow rewrite for Box cells and the root, into \p W's
  /// arena; mirrors ParallelCheney::scanValue.
  const Value *scanValue(const Value *V, Worker &W) {
    ValueBuilder &B = *W.B;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      uint32_t ToOff = claim(A.Offset, W.Local, W.Hits);
      maybePublish(W);
      return B.valAddr(Address{Region::name(ToSym), ToOff});
    }
    case ValueKind::Pair:
      return B.valPair(scanValue(V->first(), W), scanValue(V->second(), W));
    case ValueKind::Inl:
      return B.valInl(scanValue(V->payload(), W));
    case ValueKind::Inr:
      return B.valInr(scanValue(V->payload(), W));
    case ValueKind::PackTag:
      return B.valPackTag(V->var(), V->tagWitness(),
                          scanValue(V->payload(), W),
                          renameType(V->bodyType(), W));
    case ValueKind::PackTyVar:
      return B.valPackTyVar(V->var(), retargetDelta(&V->delta(), W),
                            renameType(V->typeWitness(), W),
                            scanValue(V->payload(), W),
                            renameType(V->bodyType(), W));
    case ValueKind::PackRegion: {
      Region Witness = V->regionWitness();
      if (Witness.isName() && Witness.sym() == FromSym)
        Witness = Region::name(ToSym);
      return B.valPackRegion(V->var(), retargetDelta(&V->delta(), W), Witness,
                             scanValue(V->payload(), W),
                             renameType(V->bodyType(), W));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return B.valTransApp(scanValue(V->payload(), W), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  uint64_t scanWord(uint64_t Wd, Worker &W) {
    switch (heapword::tagOf(Wd)) {
    case WordTag::Hole:
    case WordTag::Int:
      return Wd;
    case WordTag::Addr: {
      if (heapword::addrRegionId(Wd) != FromId)
        return Wd;
      uint32_t ToOff = claim(heapword::addrOffset(Wd), W.Local, W.Hits);
      maybePublish(W);
      return heapword::makeAddr(ToId, ToOff);
    }
    case WordTag::InlAddr:
    case WordTag::InrAddr: {
      if (heapword::addrRegionId(Wd) != FromId)
        return Wd;
      uint32_t ToOff = claim(heapword::addrOffset(Wd), W.Local, W.Hits);
      maybePublish(W);
      return heapword::make(heapword::tagOf(Wd),
                            heapword::addrPayload(ToId, ToOff));
    }
    case WordTag::Pair: {
      uint32_t I = heapword::indexOf(Wd);
      uint32_t NI = static_cast<uint32_t>(W.AuxBuf.size());
      W.AuxBuf.push_back(heapword::Hole);
      W.AuxBuf.push_back(heapword::Hole);
      uint64_t A = scanWord(From.Aux[I], W);
      uint64_t B = scanWord(From.Aux[I + 1], W);
      W.AuxBuf[NI] = A;
      W.AuxBuf[NI + 1] = B;
      return heapword::make(WordTag::Pair, NI);
    }
    case WordTag::InlAux:
    case WordTag::InrAux: {
      uint32_t NI = static_cast<uint32_t>(W.AuxBuf.size());
      W.AuxBuf.push_back(heapword::Hole);
      uint64_t Child = scanWord(From.Aux[heapword::indexOf(Wd)], W);
      W.AuxBuf[NI] = Child;
      return heapword::make(heapword::tagOf(Wd), NI);
    }
    case WordTag::PackTagAux:
    case WordTag::PackTyVarAux:
    case WordTag::PackRegionAux: {
      WordTag T = heapword::tagOf(Wd);
      uint32_t Span = heapword::auxSpan(T);
      uint32_t I = heapword::indexOf(Wd);
      uint32_t NI = static_cast<uint32_t>(W.AuxBuf.size());
      W.AuxBuf.resize(NI + Span, heapword::Hole);
      uint64_t Payload = scanWord(From.Aux[I], W);
      W.AuxBuf[NI] = Payload;
      W.AuxBuf[NI + 1] = From.Aux[I + 1]; // binder symbol
      if (T == WordTag::PackTagAux) {
        W.AuxBuf[NI + 2] = From.Aux[I + 2]; // witness tag is region-free
        W.AuxBuf[NI + 3] = heapword::ptrBits(
            renameType(heapword::ptrOf<Type>(From.Aux[I + 3]), W));
      } else {
        W.AuxBuf[NI + 2] = heapword::ptrBits(
            retargetDelta(heapword::ptrOf<RegionSet>(From.Aux[I + 2]), W));
        if (T == WordTag::PackTyVarAux) {
          W.AuxBuf[NI + 3] = heapword::ptrBits(
              renameType(heapword::ptrOf<Type>(From.Aux[I + 3]), W));
        } else {
          Region RW = heapword::regionOf(From.Aux[I + 3]);
          if (RW.isName() && RW.sym() == FromSym)
            RW = Region::name(ToSym);
          W.AuxBuf[NI + 3] = heapword::regionBits(RW);
        }
        W.AuxBuf[NI + 4] = heapword::ptrBits(
            renameType(heapword::ptrOf<Type>(From.Aux[I + 4]), W));
      }
      return heapword::make(T, NI);
    }
    case WordTag::Box: {
      const Value *NV = scanValue(From.Boxed[heapword::indexOf(Wd)], W);
      W.BoxBuf.push_back(NV);
      return heapword::make(WordTag::Box, W.BoxBuf.size() - 1);
    }
    }
    return Wd;
  }

  void maybePublish(Worker &W) {
    size_t Share = 0;
    if (W.Local.size() >= 2 * ChunkSize)
      Share = ChunkSize;
    else if (W.Local.size() >= MinSplit && W.Deque.empty())
      Share = W.Local.size() / 2;
    if (Share == 0)
      return;
    std::vector<uint32_t> Chunk(W.Local.begin(), W.Local.begin() + Share);
    W.Local.erase(W.Local.begin(), W.Local.begin() + Share);
    W.Deque.push(std::move(Chunk));
    ++W.Chunks;
  }

  void scanCell(uint32_t FromOff, Worker &W) {
    uint64_t Wd = From.Words[FromOff];
    assert(Wd != heapword::Hole && "parallel Cheney scan hit a dangling cell");
    uint64_t Copied = scanWord(Wd, W);
    uint32_t ToOff = Fwd[FromOff].load(std::memory_order_acquire);
    assert(ToOff != Unclaimed && ToOff != Pending && "scanning unclaimed cell");
    W.Results.emplace_back(ToOff, Copied);
    ++W.Objects;
    Unscanned.fetch_sub(1, std::memory_order_release);
  }

  void workerLoop(Worker &W) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<uint32_t> Buf;
    for (;;) {
      if (!W.Local.empty()) {
        uint32_t Off = W.Local.back();
        W.Local.pop_back();
        scanCell(Off, W);
        continue;
      }
      if (W.Deque.pop(Buf)) {
        W.Local = std::move(Buf);
        Buf.clear();
        continue;
      }
      bool Stole = false;
      for (size_t I = 1; I < Workers.size() && !Stole; ++I) {
        Worker &Victim = Workers[(W.Id + I) % Workers.size()];
        if (Victim.Deque.steal(Buf)) {
          W.Local = std::move(Buf);
          Buf.clear();
          ++W.Steals;
          Stole = true;
        }
      }
      if (Stole)
        continue;
      if (Unscanned.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
    W.CopyNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

  /// Rewrites a word's worker-relative Aux/Boxed index into the to-region's
  /// concatenated tables.
  static uint64_t rebase(uint64_t Wd, uint64_t AuxBase, uint64_t BoxBase) {
    switch (heapword::tagOf(Wd)) {
    case WordTag::Pair:
    case WordTag::InlAux:
    case WordTag::InrAux:
    case WordTag::PackTagAux:
    case WordTag::PackTyVarAux:
    case WordTag::PackRegionAux:
      return heapword::make(heapword::tagOf(Wd),
                            heapword::indexOf(Wd) + AuxBase);
    case WordTag::Box:
      return heapword::make(WordTag::Box, heapword::indexOf(Wd) + BoxBase);
    default:
      return Wd;
    }
  }

  const Value *collect(const Value *Root, NativeGcStats &Stats) {
    Worker &RootW = Workers[0];
    const Value *NewRoot = scanValue(Root, RootW);
    {
      std::vector<uint32_t> Seeds = std::move(RootW.Local);
      RootW.Local.clear();
      std::vector<std::vector<uint32_t>> Split(Workers.size());
      for (size_t I = 0; I < Seeds.size(); ++I)
        Split[I % Workers.size()].push_back(Seeds[I]);
      for (size_t I = 0; I < Workers.size(); ++I)
        if (!Split[I].empty())
          Workers[I].Local = std::move(Split[I]);
    }
    std::vector<std::thread> Threads;
    Threads.reserve(Workers.size());
    for (Worker &W : Workers)
      Threads.emplace_back([this, &W] {
        TRACE_SCOPE("collector", "native.worker");
        workerLoop(W);
      });
    for (std::thread &T : Threads)
      T.join();
    assert(Unscanned.load() == 0 && "workers exited with pending cells");

    // Serial epilogue: rebase worker-relative indices while concatenating
    // the Aux/Boxed buffers, assemble the words in to-offset order, and
    // install them with one bulk append.
    std::vector<uint64_t> ToWords(NextTo.load(), heapword::Hole);
    uint64_t AuxBase = To.Aux.size();
    uint64_t BoxBase = To.Boxed.size();
    for (Worker &W : Workers) {
      for (auto &[ToOff, Wd] : W.Results) {
        assert(ToWords[ToOff] == heapword::Hole &&
               "two workers copied one cell");
        ToWords[ToOff] = rebase(Wd, AuxBase, BoxBase);
      }
      for (uint64_t A : W.AuxBuf)
        To.Aux.push_back(rebase(A, AuxBase, BoxBase));
      To.Boxed.insert(To.Boxed.end(), W.BoxBuf.begin(), W.BoxBuf.end());
      AuxBase += W.AuxBuf.size();
      BoxBase += W.BoxBuf.size();
    }
    bool Ok = Mem.appendWords(To, ToSym, ToWords);
    assert(Ok && "to-region vanished during parallel collection");
    (void)Ok;
    if (M.config().TrackTypes) {
      for (uint32_t Off = 0; Off < From.Words.size(); ++Off) {
        uint32_t ToOff = Fwd[Off].load(std::memory_order_relaxed);
        if (ToOff == Unclaimed)
          continue;
        if (const Type *T =
                M.psi().lookup(Address{Region::name(FromSym), Off}))
          M.psi().set(Address{Region::name(ToSym), ToOff},
                      M.renameRegionName(T, FromSym, ToSym));
      }
    }
    Stats.Workers = static_cast<unsigned>(Workers.size());
    for (Worker &W : Workers) {
      Stats.ObjectsCopied += W.Objects;
      Stats.ForwardingHits += W.Hits;
      Stats.Steals += W.Steals;
      Stats.ChunksPublished += W.Chunks;
      Stats.WorkerCopyNs.push_back(W.CopyNs);
      Stats.WorkerObjects.push_back(W.Objects);
      M.context().adoptArena(std::move(W.Mem));
    }
    return NewRoot;
  }
};

/// Threads == 0 ("use the default") resolves here: a thread-local scoped
/// override wins, else the process default (setter wins over SCAV_THREADS,
/// else 1). The env var is read once — a mid-run change should not flip
/// collection determinism under a test — and malformed values are
/// diagnosed instead of silently running single-threaded
/// (support/ParseInt.h). Atomic because concurrent serve sessions read it
/// while a late setter call is legal.
std::atomic<unsigned> &nativeGcThreadsSlot() {
  static std::atomic<unsigned> N(static_cast<unsigned>(
      envUnsignedOr("SCAV_THREADS", 1, 1, 1024)));
  return N;
}

/// Per-thread override installed by ScopedNativeGcThreads; 0 = none.
thread_local unsigned NativeGcThreadsTls = 0;

} // namespace

unsigned scav::gc::nativeGcThreads() {
  if (NativeGcThreadsTls != 0)
    return NativeGcThreadsTls;
  return nativeGcThreadsSlot().load(std::memory_order_relaxed);
}

void scav::gc::setNativeGcThreads(unsigned N) {
  nativeGcThreadsSlot().store(N == 0 ? 1 : N, std::memory_order_relaxed);
}

ScopedNativeGcThreads::ScopedNativeGcThreads(unsigned N)
    : Prev(NativeGcThreadsTls) {
  if (N != 0)
    NativeGcThreadsTls = N;
}

ScopedNativeGcThreads::~ScopedNativeGcThreads() { NativeGcThreadsTls = Prev; }

std::pair<const Value *, Region>
scav::gc::nativeCollect(Machine &M, const Value *Root, Region From,
                        bool PreserveSharing, NativeGcStats &Stats,
                        CopyOrder Order, unsigned Threads) {
  TRACE_SCOPE("collector", "native.collect");
  if (Threads == 0)
    Threads = nativeGcThreads();
  GcContext &C = M.context();
  bool Compact = M.memory().layout() == HeapLayout::Compact;
  Region To = M.createRegion("to", 0);
  const Value *NewRoot = nullptr;
  if (Order == CopyOrder::BreadthFirst && Threads > 1) {
    if (Compact) {
      ParallelCheneyCompact Gc(M, From.sym(), To.sym(), Threads);
      NewRoot = Gc.collect(Root, Stats);
    } else {
      ParallelCheney Gc(M, From.sym(), To.sym(), Threads);
      NewRoot = Gc.collect(Root, Stats);
    }
  } else if (Order == CopyOrder::BreadthFirst) {
    if (Compact) {
      CheneyGcCompact Gc(M, From.sym(), To.sym(), Stats);
      NewRoot = Gc.scanValue(Root);
      Gc.drain();
    } else {
      CheneyGc Gc{M, C, From.sym(), To.sym(), Stats, {}, {}};
      NewRoot = Gc.scan(Root);
      Gc.drain();
    }
  } else {
    if (Compact) {
      NativeGcCompact Gc(M, From.sym(), To.sym(), PreserveSharing, Stats);
      NewRoot = Gc.relocateValue(Root);
    } else {
      NativeGc Gc{M, C, From.sym(), To.sym(), PreserveSharing, Stats, {}};
      NewRoot = Gc.relocate(Root);
    }
  }
  if (SCAV_TRACE_ENABLED()) {
    auto &Sink = support::TraceSink::get();
    Sink.counter("native.copied", static_cast<double>(Stats.ObjectsCopied));
    Sink.counter("native.forwarding_hits",
                 static_cast<double>(Stats.ForwardingHits));
  }
  // Reclaim the from-region (the machine-level analogue of `only`).
  RegionSet Keep;
  for (const auto &[S, _] : M.memory().Regions)
    if (S != From.sym() && S != C.cd().sym())
      Keep.insert(Region::name(S));
  M.memory().restrictTo(Keep);
  M.psi().removeRegion(From.sym());
  // This function rewrote Ψ behind the machine's back; its recordPut cache
  // must not serve types inferred under the old Ψ.
  M.invalidatePutTypeCache();
  return {NewRoot, To};
}
