//===- gc/NativeCollector.cpp - Meta-level C++ collector -------------------===//

#include "gc/NativeCollector.h"

#include <deque>
#include <map>

using namespace scav;
using namespace scav::gc;

namespace {

struct NativeGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  bool PreserveSharing;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding; // from-offset → to-offset

  const Value *relocate(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V; // cd or another surviving region
      return C.valAddr(copyCell(A));
    }
    case ValueKind::Pair:
      return C.valPair(relocate(V->first()), relocate(V->second()));
    case ValueKind::Inl:
      return C.valInl(relocate(V->payload()));
    case ValueKind::Inr:
      return C.valInr(relocate(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), relocate(V->payload()),
                          retarget(V->bodyType()));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(V->var(), retargetSet(V->delta()),
                            retarget(V->typeWitness()),
                            relocate(V->payload()), retarget(V->bodyType()));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(V->var(), retargetSet(V->delta()), W,
                             relocate(V->payload()), retarget(V->bodyType()));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(relocate(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  Address copyCell(Address A) {
    if (PreserveSharing) {
      auto It = Forwarding.find(A.Offset);
      if (It != Forwarding.end()) {
        ++Stats.ForwardingHits;
        return Address{Region::name(ToSym), It->second};
      }
    }
    const Value *Cell = M.memory().get(A);
    assert(Cell && "native collector hit a dangling address");
    // Depth-first copy; reserve the slot before descending so cycles would
    // at least terminate (the λGC heaps here are acyclic, like the paper's).
    const Value *Copied = relocate(Cell);
    std::optional<Address> NewA = M.memory().put(ToSym, Copied);
    assert(NewA && "to-region vanished during native collection");
    ++Stats.ObjectsCopied;
    if (PreserveSharing)
      Forwarding[A.Offset] = NewA->Offset;
    if (M.config().TrackTypes) {
      const Type *T = M.psi().lookup(A);
      if (T)
        M.psi().set(*NewA, retarget(T));
    }
    return *NewA;
  }

  /// Renames the from-region to the to-region inside recorded cell types.
  const Type *retarget(const Type *T) {
    return M.renameRegionName(T, FromSym, ToSym);
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }
};

} // namespace

namespace {

/// Cheney-style breadth-first copy: slots are reserved in arrival order
/// (the reservation doubles as the forwarding pointer), and a queue of
/// pending from-cells plays the role of the scan pointer. Sharing is
/// inherently preserved.
struct CheneyGc {
  Machine &M;
  GcContext &C;
  Symbol FromSym;
  Symbol ToSym;
  NativeGcStats &Stats;
  std::map<uint32_t, uint32_t> Forwarding;
  std::deque<uint32_t> Queue; // from-offsets with a reserved to-slot

  Address reserve(Address A) {
    auto It = Forwarding.find(A.Offset);
    if (It != Forwarding.end()) {
      ++Stats.ForwardingHits;
      return Address{Region::name(ToSym), It->second};
    }
    std::optional<Address> Slot = M.memory().put(ToSym, nullptr);
    assert(Slot && "to-region vanished");
    Forwarding[A.Offset] = Slot->Offset;
    Queue.push_back(A.Offset);
    return *Slot;
  }

  /// Rewrites one value shallowly: from-addresses become reserved to-slots.
  const Value *scan(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Code:
      return V;
    case ValueKind::Addr: {
      Address A = V->address();
      if (A.R.sym() != FromSym)
        return V;
      return C.valAddr(reserve(A));
    }
    case ValueKind::Pair:
      return C.valPair(scan(V->first()), scan(V->second()));
    case ValueKind::Inl:
      return C.valInl(scan(V->payload()));
    case ValueKind::Inr:
      return C.valInr(scan(V->payload()));
    case ValueKind::PackTag:
      return C.valPackTag(V->var(), V->tagWitness(), scan(V->payload()),
                          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackTyVar:
      return C.valPackTyVar(
          V->var(), retargetSet(V->delta()),
          M.renameRegionName(V->typeWitness(), FromSym, ToSym),
          scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    case ValueKind::PackRegion: {
      Region W = V->regionWitness();
      if (W.isName() && W.sym() == FromSym)
        W = Region::name(ToSym);
      return C.valPackRegion(
          V->var(), retargetSet(V->delta()), W, scan(V->payload()),
          M.renameRegionName(V->bodyType(), FromSym, ToSym));
    }
    case ValueKind::TransApp: {
      std::vector<Region> Rs;
      for (Region R : V->transRegions())
        Rs.push_back(R.isName() && R.sym() == FromSym ? Region::name(ToSym)
                                                      : R);
      return C.valTransApp(scan(V->payload()), V->transTags(),
                           std::move(Rs));
    }
    }
    return V;
  }

  RegionSet retargetSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(R.isName() && R.sym() == FromSym ? Region::name(ToSym) : R);
    return Out;
  }

  void drain() {
    while (!Queue.empty()) {
      uint32_t FromOff = Queue.front();
      Queue.pop_front();
      Address FromA{Region::name(FromSym), FromOff};
      const Value *Cell = M.memory().get(FromA);
      assert(Cell && "Cheney scan hit a dangling cell");
      Address ToA{Region::name(ToSym), Forwarding[FromOff]};
      M.memory().fill(ToA, scan(Cell));
      ++Stats.ObjectsCopied;
      if (M.config().TrackTypes) {
        if (const Type *T = M.psi().lookup(FromA))
          M.psi().set(ToA, M.renameRegionName(T, FromSym, ToSym));
      }
    }
  }
};

} // namespace

std::pair<const Value *, Region>
scav::gc::nativeCollect(Machine &M, const Value *Root, Region From,
                        bool PreserveSharing, NativeGcStats &Stats,
                        CopyOrder Order) {
  TRACE_SCOPE("collector", "native.collect");
  GcContext &C = M.context();
  Region To = M.createRegion("to", 0);
  const Value *NewRoot = nullptr;
  if (Order == CopyOrder::BreadthFirst) {
    CheneyGc Gc{M, C, From.sym(), To.sym(), Stats, {}, {}};
    NewRoot = Gc.scan(Root);
    Gc.drain();
  } else {
    NativeGc Gc{M, C, From.sym(), To.sym(), PreserveSharing, Stats, {}};
    NewRoot = Gc.relocate(Root);
  }
  if (SCAV_TRACE_ENABLED()) {
    auto &Sink = support::TraceSink::get();
    Sink.counter("native.copied", static_cast<double>(Stats.ObjectsCopied));
    Sink.counter("native.forwarding_hits",
                 static_cast<double>(Stats.ForwardingHits));
  }
  // Reclaim the from-region (the machine-level analogue of `only`).
  RegionSet Keep;
  for (const auto &[S, _] : M.memory().Regions)
    if (S != From.sym() && S != C.cd().sym())
      Keep.insert(Region::name(S));
  M.memory().restrictTo(Keep);
  M.psi().removeRegion(From.sym());
  // This function rewrote Ψ behind the machine's back; its recordPut cache
  // must not serve types inferred under the old Ψ.
  M.invalidatePutTypeCache();
  return {NewRoot, To};
}
