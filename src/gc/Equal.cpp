//===- gc/Equal.cpp - Alpha-equivalence and kinding ------------------------===//
///
/// \file
/// Alpha-equivalence of tags and types, semantic equality (normalize, then
/// alpha-compare), and tag kinding (Θ ⊢ τ : κ, Fig 6).
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// A stack of binder correspondences, one per variable sort.
struct AlphaEnv {
  std::vector<std::pair<Symbol, Symbol>> TagVars;
  std::vector<std::pair<Symbol, Symbol>> RegionVars;
  std::vector<std::pair<Symbol, Symbol>> TypeVars;

  static bool varEq(const std::vector<std::pair<Symbol, Symbol>> &Stack,
                    Symbol A, Symbol B) {
    for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
      if (It->first == A || It->second == B)
        return It->first == A && It->second == B;
    }
    return A == B;
  }

  bool tagVarEq(Symbol A, Symbol B) const { return varEq(TagVars, A, B); }
  bool typeVarEq(Symbol A, Symbol B) const { return varEq(TypeVars, A, B); }

  bool regionEq(Region A, Region B) const {
    if (A.isName() || B.isName())
      return A == B;
    return varEq(RegionVars, A.sym(), B.sym());
  }

  bool regionSetEq(const RegionSet &A, const RegionSet &B) const {
    if (A.size() != B.size())
      return false;
    // Translate A into B-space and compare as sets.
    RegionSet Mapped;
    for (Region R : A) {
      if (R.isVar()) {
        Symbol S = R.sym();
        for (auto It = RegionVars.rbegin(), E = RegionVars.rend(); It != E;
             ++It) {
          if (It->first == S) {
            S = It->second;
            break;
          }
        }
        Mapped.insert(Region::var(S));
      } else {
        Mapped.insert(R);
      }
    }
    return Mapped == B;
  }
};

bool tagEq(const Tag *A, const Tag *B, AlphaEnv &Env) {
  // Positive fast path: one node is alpha-equal to itself whenever the
  // binder environment is empty — or unconditionally when it is ground
  // (no free variables for the environment to rename).
  if (A == B && (Env.TagVars.empty() || A->isGround()))
    return true;
  // Negative fast path: ground nodes contain no binders, so alpha-equality
  // degenerates to structural equality — and for *canonical* (interned)
  // nodes structural equality is pointer equality. Sound only with both
  // bits set: alpha-equivalent open nodes (λt.t vs λs.s) are interned as
  // distinct nodes, and non-canonical nodes may simply be duplicates.
  if (A != B && A->isGround() && B->isGround() && A->isCanonical() &&
      B->isCanonical())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TagKind::Int:
    return true;
  case TagKind::Var:
    return Env.tagVarEq(A->var(), B->var());
  case TagKind::Prod:
  case TagKind::App:
    return tagEq(A->left(), B->left(), Env) &&
           tagEq(A->right(), B->right(), Env);
  case TagKind::Arrow: {
    if (A->arrowArgs().size() != B->arrowArgs().size())
      return false;
    for (size_t I = 0, E = A->arrowArgs().size(); I != E; ++I)
      if (!tagEq(A->arrowArgs()[I], B->arrowArgs()[I], Env))
        return false;
    return true;
  }
  case TagKind::Exists: {
    Env.TagVars.push_back({A->var(), B->var()});
    bool R = tagEq(A->body(), B->body(), Env);
    Env.TagVars.pop_back();
    return R;
  }
  case TagKind::Lam: {
    if (!Kind::equal(A->binderKind(), B->binderKind()))
      return false;
    Env.TagVars.push_back({A->var(), B->var()});
    bool R = tagEq(A->body(), B->body(), Env);
    Env.TagVars.pop_back();
    return R;
  }
  }
  return false;
}

bool typeEq(const Type *A, const Type *B, AlphaEnv &Env) {
  // Fast paths mirror tagEq; see the comments there. For types, Ground also
  // guarantees every region is a concrete name, so the region stacks are
  // irrelevant too.
  if (A == B && ((Env.TagVars.empty() && Env.RegionVars.empty() &&
                  Env.TypeVars.empty()) ||
                 A->isGround()))
    return true;
  if (A != B && A->isGround() && B->isGround() && A->isCanonical() &&
      B->isCanonical())
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Int:
    return true;
  case TypeKind::TyVar:
    return Env.typeVarEq(A->var(), B->var());
  case TypeKind::Prod:
  case TypeKind::Sum:
    return typeEq(A->left(), B->left(), Env) &&
           typeEq(A->right(), B->right(), Env);
  case TypeKind::Left:
  case TypeKind::Right:
    return typeEq(A->body(), B->body(), Env);
  case TypeKind::At:
    return Env.regionEq(A->atRegion(), B->atRegion()) &&
           typeEq(A->body(), B->body(), Env);
  case TypeKind::MApp: {
    if (A->mRegions().size() != B->mRegions().size())
      return false;
    for (size_t I = 0, E = A->mRegions().size(); I != E; ++I)
      if (!Env.regionEq(A->mRegions()[I], B->mRegions()[I]))
        return false;
    return tagEq(A->tag(), B->tag(), Env);
  }
  case TypeKind::CApp:
    return Env.regionEq(A->cFrom(), B->cFrom()) &&
           Env.regionEq(A->cTo(), B->cTo()) && tagEq(A->tag(), B->tag(), Env);
  case TypeKind::ExistsTag: {
    if (!Kind::equal(A->binderKind(), B->binderKind()))
      return false;
    Env.TagVars.push_back({A->var(), B->var()});
    bool R = typeEq(A->body(), B->body(), Env);
    Env.TagVars.pop_back();
    return R;
  }
  case TypeKind::ExistsTyVar: {
    if (!Env.regionSetEq(A->delta(), B->delta()))
      return false;
    Env.TypeVars.push_back({A->var(), B->var()});
    bool R = typeEq(A->body(), B->body(), Env);
    Env.TypeVars.pop_back();
    return R;
  }
  case TypeKind::ExistsRegion: {
    if (!Env.regionSetEq(A->delta(), B->delta()))
      return false;
    Env.RegionVars.push_back({A->var(), B->var()});
    bool R = typeEq(A->body(), B->body(), Env);
    Env.RegionVars.pop_back();
    return R;
  }
  case TypeKind::Code: {
    const auto &AT = A->tagParams(), &BT = B->tagParams();
    const auto &AR = A->regionParams(), &BR = B->regionParams();
    if (AT.size() != BT.size() || AR.size() != BR.size() ||
        A->argTypes().size() != B->argTypes().size())
      return false;
    for (size_t I = 0, E = AT.size(); I != E; ++I)
      if (!Kind::equal(A->tagParamKinds()[I], B->tagParamKinds()[I]))
        return false;
    size_t TagDepth = Env.TagVars.size(), RegDepth = Env.RegionVars.size();
    for (size_t I = 0, E = AT.size(); I != E; ++I)
      Env.TagVars.push_back({AT[I], BT[I]});
    for (size_t I = 0, E = AR.size(); I != E; ++I)
      Env.RegionVars.push_back({AR[I], BR[I]});
    bool R = true;
    for (size_t I = 0, E = A->argTypes().size(); R && I != E; ++I)
      R = typeEq(A->argTypes()[I], B->argTypes()[I], Env);
    Env.TagVars.resize(TagDepth);
    Env.RegionVars.resize(RegDepth);
    return R;
  }
  case TypeKind::TransCode: {
    if (A->transTags().size() != B->transTags().size() ||
        A->transRegions().size() != B->transRegions().size() ||
        A->argTypes().size() != B->argTypes().size())
      return false;
    if (!Env.regionEq(A->atRegion(), B->atRegion()))
      return false;
    for (size_t I = 0, E = A->transTags().size(); I != E; ++I)
      if (!tagEq(A->transTags()[I], B->transTags()[I], Env))
        return false;
    for (size_t I = 0, E = A->transRegions().size(); I != E; ++I)
      if (!Env.regionEq(A->transRegions()[I], B->transRegions()[I]))
        return false;
    for (size_t I = 0, E = A->argTypes().size(); I != E; ++I)
      if (!typeEq(A->argTypes()[I], B->argTypes()[I], Env))
        return false;
    return true;
  }
  }
  return false;
}

} // namespace

bool scav::gc::alphaEqualTag(const Tag *A, const Tag *B) {
  AlphaEnv Env;
  return tagEq(A, B, Env);
}

bool scav::gc::alphaEqualType(const Type *A, const Type *B) {
  AlphaEnv Env;
  return typeEq(A, B, Env);
}

bool scav::gc::tagEqual(GcContext &C, const Tag *A, const Tag *B) {
  GcContext::Stats &S = C.stats();
  ++S.EqualTagCalls;
  GcContext::TypeworkTimer Timer(S);
  const Tag *NA = normalizeTag(C, A);
  const Tag *NB = normalizeTag(C, B);
  // With interning + the normalization memo, semantically equal tags usually
  // share one normal-form node.
  if (NA == NB) {
    ++S.EqualPointerHits;
    return true;
  }
  return alphaEqualTag(NA, NB);
}

bool scav::gc::typeEqual(GcContext &C, const Type *A, const Type *B,
                         LanguageLevel Level) {
  GcContext::Stats &S = C.stats();
  ++S.EqualTypeCalls;
  GcContext::TypeworkTimer Timer(S);
  const Type *NA = normalizeType(C, A, Level);
  const Type *NB = normalizeType(C, B, Level);
  if (NA == NB) {
    ++S.EqualPointerHits;
    return true;
  }
  return alphaEqualType(NA, NB);
}

//===----------------------------------------------------------------------===//
// Kinding: Θ ⊢ τ : κ (Fig 6)
//===----------------------------------------------------------------------===//

const Kind *scav::gc::kindOfTag(GcContext &C, const Tag *T,
                                const TagEnv &Theta) {
  switch (T->kind()) {
  case TagKind::Int:
    return C.omega();
  case TagKind::Var: {
    auto It = Theta.find(T->var());
    return It == Theta.end() ? nullptr : It->second;
  }
  case TagKind::Prod: {
    const Kind *L = kindOfTag(C, T->left(), Theta);
    const Kind *R = kindOfTag(C, T->right(), Theta);
    if (!L || !R || !L->isOmega() || !R->isOmega())
      return nullptr;
    return C.omega();
  }
  case TagKind::Arrow: {
    for (const Tag *A : T->arrowArgs()) {
      const Kind *K = kindOfTag(C, A, Theta);
      if (!K || !K->isOmega())
        return nullptr;
    }
    return C.omega();
  }
  case TagKind::Exists: {
    TagEnv Inner = Theta;
    Inner[T->var()] = C.omega();
    const Kind *B = kindOfTag(C, T->body(), Inner);
    if (!B || !B->isOmega())
      return nullptr;
    return C.omega();
  }
  case TagKind::Lam: {
    TagEnv Inner = Theta;
    Inner[T->var()] = T->binderKind();
    const Kind *B = kindOfTag(C, T->body(), Inner);
    if (!B)
      return nullptr;
    return C.arrowKind(T->binderKind(), B);
  }
  case TagKind::App: {
    const Kind *F = kindOfTag(C, T->left(), Theta);
    const Kind *A = kindOfTag(C, T->right(), Theta);
    if (!F || !A || !F->isArrow() || !Kind::equal(F->from(), A))
      return nullptr;
    return F->to();
  }
  }
  return nullptr;
}
