//===- gc/Parse.h - Textual λGC programs -----------------------*- C++ -*-===//
///
/// \file
/// An s-expression concrete syntax for λGC, so collectors and mutators can
/// be written, stored, and diffed as text. The grammar mirrors Fig 2 (plus
/// the §7/§8 extensions); region *names* ν and raw addresses are runtime
/// entities and cannot be written — code references functions as
/// `(fn name)`, resolved against the program's own definitions and any
/// pre-registered entries (e.g. an installed collector's `gc`).
///
///   kinds   O | (-> κ1 κ2)
///   tags    Int | t | (* τ1 τ2) | (-> τ... ) | (E t τ) | (\ t κ τ)
///         | (@ τ1 τ2)
///   types   int | a | (* σ1 σ2) | (+ σ1 σ2) | (left σ) | (right σ)
///         | (at σ ρ) | (M ρ τ) | (M2 ρy ρo τ) | (C ρ ρ' τ)
///         | (code ((t κ)...) (r...) (σ...)) | (Et t κ σ)
///         | (Ea a (ρ...) σ) | (Er r (ρ...) σ)
///         | (trans (τ...) (ρ...) (σ...) ρ)
///   values  n | x | (fn f) | (pair v v) | (inl v) | (inr v)
///         | (packt t τ v σ) | (packa a (ρ...) σ v σ)
///         | (packr r (ρ...) ρ v σ) | (transapp v (τ...) (ρ...))
///   ops     v | (pi1 v) | (pi2 v) | (put ρ v) | (get v) | (strip v)
///         | (+ v v) | (- v v) | (* v v) | (<= v v)
///   terms   (app v (τ...) (ρ...) (v...)) | (let x op e) | (halt v)
///         | (ifgc ρ e e) | (opent v t x e) | (opena v a x e)
///         | (openr v r x e) | (letregion r e) | (only (ρ...) e)
///         | (typecase τ e e (t1 t2 e) (te e))
///         | (ifleft x v e e) | (set v v e) | (widen x ρ τ v e)
///         | (ifreg ρ ρ e e) | (if0 v e e)
///   program (program (fun f ((t κ)...) (r...) ((x σ)...) e)... (main e))
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_PARSE_H
#define SCAV_GC_PARSE_H

#include "gc/Machine.h"

#include <functional>
#include <map>
#include <string>

namespace scav::gc {

/// A parsed-and-installed λGC program.
struct ParsedGcProgram {
  /// All resolvable names: the program's own functions plus the prelude.
  std::map<std::string, Address> Funs;
  /// Only the functions defined by this program (what the printer emits).
  std::map<std::string, Address> OwnFuns;
  const Term *Main = nullptr;
  bool Ok = false;
};

/// Parses \p Src, installing its functions into \p M's cd region.
/// \p Prelude maps names usable via `(fn name)` to pre-existing addresses
/// (e.g. an installed collector's entry points).
ParsedGcProgram parseGcProgram(Machine &M, std::string_view Src,
                               DiagEngine &Diags,
                               const std::map<std::string, Address> &Prelude = {});

/// Expression-level entry points (for tests and tools). Function
/// references resolve against \p Funs.
const Tag *parseGcTag(GcContext &C, std::string_view Src, DiagEngine &Diags);
const Type *parseGcType(GcContext &C, std::string_view Src,
                        DiagEngine &Diags);
const Term *parseGcTerm(GcContext &C, std::string_view Src, DiagEngine &Diags,
                        const std::map<std::string, Address> &Funs = {});

/// Prints in the same concrete syntax (parse ∘ print = id up to names).
/// \p FnName renders a cd address as its function name; return empty to
/// print an error marker.
using AddressNamer = std::function<std::string(Address)>;
std::string printGcTagSexp(const GcContext &C, const Tag *T);
std::string printGcTypeSexp(const GcContext &C, const Type *T);
std::string printGcTermSexp(const GcContext &C, const Term *E,
                            const AddressNamer &FnName);
std::string printGcProgramSexp(const GcContext &C, const Machine &M,
                               const ParsedGcProgram &P);

} // namespace scav::gc

#endif // SCAV_GC_PARSE_H
