//===- gc/Subst.cpp - Simultaneous capture-avoiding substitution ----------===//
///
/// \file
/// Implements applySubst over every syntactic class. Binders are freshened
/// only when they collide with the substitution's domain or with symbols
/// mentioned by its range ("unsafe" symbols), so the common path allocates
/// no extra maps.
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// The set of symbols that force a binder rename.
///
/// A ground range node has no variables at all, so it cannot capture any
/// binder; its symbols (concrete region names, at most) need not poison
/// the traversal. Skipping them keeps the unsafe set small, which keeps
/// binders un-renamed, which in turn lets the identity checks below return
/// original (interned) subtrees. Like every other flag-driven shortcut,
/// this is gated on interning so the disabled baseline is untouched.
SymbolSet computeUnsafe(GcContext &C, const Subst &S) {
  bool SkipGround = C.interningEnabled();
  SymbolSet U;
  for (const auto &[K, V] : S.Tags) {
    U.insert(K);
    if (SkipGround && V->isGround())
      continue;
    collectSymbols(V, U);
  }
  for (const auto &[K, V] : S.Regions) {
    U.insert(K);
    U.insert(V.sym());
  }
  for (const auto &[K, V] : S.Types) {
    U.insert(K);
    if (SkipGround && V->isGround())
      continue;
    collectSymbols(V, U);
  }
  for (const auto &[K, V] : S.Vals) {
    U.insert(K);
    collectSymbols(V, U);
  }
  return U;
}

enum class VarSort { TagVar, RegionVar, TypeVar, ValVar };

/// Carries the substitution and unsafe set down the traversal; extended
/// (copied) only when a binder must be renamed or shadowed.
struct Env {
  GcContext &C;
  const Subst &S;
  const SymbolSet &Unsafe;
};

/// Result of entering a binder: the possibly-renamed binder plus the
/// environment to use for the body. Owns the extension storage.
struct BinderScope {
  BinderScope(const Env &E) : C(E.C), CurS(&E.S), CurUnsafe(&E.Unsafe) {}

  /// Enters one binder of the given sort; returns the binder to emit.
  Symbol enter(Symbol B, VarSort Sort) {
    bool InDomain = false;
    switch (Sort) {
    case VarSort::TagVar:
      InDomain = CurS->Tags.count(B) != 0;
      break;
    case VarSort::RegionVar:
      InDomain = CurS->Regions.count(B) != 0;
      break;
    case VarSort::TypeVar:
      InDomain = CurS->Types.count(B) != 0;
      break;
    case VarSort::ValVar:
      InDomain = CurS->Vals.count(B) != 0;
      break;
    }
    if (!InDomain && CurUnsafe->count(B) == 0)
      return B;

    // Copy-on-write extension.
    if (!OwnedS) {
      OwnedS = std::make_unique<Subst>(*CurS);
      OwnedUnsafe = std::make_unique<SymbolSet>(*CurUnsafe);
      CurS = OwnedS.get();
      CurUnsafe = OwnedUnsafe.get();
    }
    Symbol B2 = C.fresh(C.name(B));
    switch (Sort) {
    case VarSort::TagVar:
      OwnedS->Tags[B] = C.tagVar(B2);
      break;
    case VarSort::RegionVar:
      OwnedS->Regions[B] = Region::var(B2);
      break;
    case VarSort::TypeVar:
      OwnedS->Types[B] = C.typeVar(B2);
      break;
    case VarSort::ValVar:
      OwnedS->Vals[B] = C.valVar(B2);
      break;
    }
    OwnedUnsafe->insert(B2);
    return B2;
  }

  Env env() const { return Env{C, *CurS, *CurUnsafe}; }

private:
  GcContext &C;
  const Subst *CurS;
  const SymbolSet *CurUnsafe;
  std::unique_ptr<Subst> OwnedS;
  std::unique_ptr<SymbolSet> OwnedUnsafe;
};

Region substRegion(Region R, const Env &E) {
  if (!R.isVar())
    return R;
  auto It = E.S.Regions.find(R.sym());
  return It == E.S.Regions.end() ? R : It->second;
}

RegionSet substRegionSet(const RegionSet &RS, const Env &E) {
  RegionSet Out;
  for (Region R : RS)
    Out.insert(substRegion(R, E));
  return Out;
}

const Tag *substTagRec(const Tag *T, const Env &E);
const Type *substTypeRec(const Type *T, const Env &E);
const Value *substValueRec(const Value *V, const Env &E);
const Term *substTermRec(const Term *T, const Env &E);

const Tag *substTagRec(const Tag *T, const Env &E) {
  GcContext &C = E.C;
  // Ground subtrees mention no variables of any sort, so every substitution
  // is the identity on them. (Gated on interning so the e10 baseline toggle
  // disables the whole optimization stack at once.)
  if (C.interningEnabled() && T->isGround()) {
    ++C.stats().SubstGroundSkips;
    return T;
  }
  // Identity detection below (unchanged children ⇒ return T itself) is
  // gated the same way: rebuilding an unchanged node is a wasted uniquing
  // lookup when interning is on, and pre-optimization behavior when off.
  bool Id = C.interningEnabled();
  switch (T->kind()) {
  case TagKind::Int:
    return T;
  case TagKind::Var: {
    auto It = E.S.Tags.find(T->var());
    return It == E.S.Tags.end() ? T : It->second;
  }
  case TagKind::Prod: {
    const Tag *A = substTagRec(T->left(), E);
    const Tag *B = substTagRec(T->right(), E);
    if (Id && A == T->left() && B == T->right())
      return T;
    return C.tagProd(A, B);
  }
  case TagKind::App: {
    const Tag *A = substTagRec(T->left(), E);
    const Tag *B = substTagRec(T->right(), E);
    if (Id && A == T->left() && B == T->right())
      return T;
    return C.tagApp(A, B);
  }
  case TagKind::Arrow: {
    std::vector<const Tag *> Args;
    Args.reserve(T->arrowArgs().size());
    bool Same = true;
    for (const Tag *A : T->arrowArgs()) {
      const Tag *N = substTagRec(A, E);
      Same = Same && N == A;
      Args.push_back(N);
    }
    if (Id && Same)
      return T;
    return C.tagArrow(std::move(Args));
  }
  case TagKind::Exists: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    const Tag *Body = substTagRec(T->body(), BS.env());
    if (Id && B == T->var() && Body == T->body())
      return T;
    return C.tagExists(B, Body);
  }
  case TagKind::Lam: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    const Tag *Body = substTagRec(T->body(), BS.env());
    if (Id && B == T->var() && Body == T->body())
      return T;
    return C.tagLam(B, T->binderKind(), Body);
  }
  }
  return T;
}

const Type *substTypeRec(const Type *T, const Env &E) {
  GcContext &C = E.C;
  // See substTagRec: Ground types mention no variables (and only concrete
  // region names), so substitution cannot change them.
  if (C.interningEnabled() && T->isGround()) {
    ++C.stats().SubstGroundSkips;
    return T;
  }
  bool Id = C.interningEnabled(); // see substTagRec
  switch (T->kind()) {
  case TypeKind::Int:
    return T;
  case TypeKind::TyVar: {
    auto It = E.S.Types.find(T->var());
    return It == E.S.Types.end() ? T : It->second;
  }
  case TypeKind::Prod: {
    const Type *A = substTypeRec(T->left(), E);
    const Type *B = substTypeRec(T->right(), E);
    if (Id && A == T->left() && B == T->right())
      return T;
    return C.typeProd(A, B);
  }
  case TypeKind::Sum: {
    const Type *A = substTypeRec(T->left(), E);
    const Type *B = substTypeRec(T->right(), E);
    if (Id && A == T->left() && B == T->right())
      return T;
    return C.typeSum(A, B);
  }
  case TypeKind::Left: {
    const Type *B = substTypeRec(T->body(), E);
    return Id && B == T->body() ? T : C.typeLeft(B);
  }
  case TypeKind::Right: {
    const Type *B = substTypeRec(T->body(), E);
    return Id && B == T->body() ? T : C.typeRight(B);
  }
  case TypeKind::At: {
    const Type *B = substTypeRec(T->body(), E);
    Region R = substRegion(T->atRegion(), E);
    if (Id && B == T->body() && R == T->atRegion())
      return T;
    return C.typeAt(B, R);
  }
  case TypeKind::MApp: {
    std::vector<Region> Rs;
    bool Same = true;
    for (Region R : T->mRegions()) {
      Region N = substRegion(R, E);
      Same = Same && N == R;
      Rs.push_back(N);
    }
    const Tag *Tg = substTagRec(T->tag(), E);
    if (Id && Same && Tg == T->tag())
      return T;
    return C.typeM(std::move(Rs), Tg);
  }
  case TypeKind::CApp: {
    Region F = substRegion(T->cFrom(), E);
    Region To = substRegion(T->cTo(), E);
    const Tag *Tg = substTagRec(T->tag(), E);
    if (Id && F == T->cFrom() && To == T->cTo() && Tg == T->tag())
      return T;
    return C.typeC(F, To, Tg);
  }
  case TypeKind::ExistsTag: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    const Type *Body = substTypeRec(T->body(), BS.env());
    if (Id && B == T->var() && Body == T->body())
      return T;
    return C.typeExistsTag(B, T->binderKind(), Body);
  }
  case TypeKind::ExistsTyVar: {
    RegionSet Delta = substRegionSet(T->delta(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TypeVar);
    const Type *Body = substTypeRec(T->body(), BS.env());
    if (Id && B == T->var() && Body == T->body() && Delta == T->delta())
      return T;
    return C.typeExistsTyVar(B, std::move(Delta), Body);
  }
  case TypeKind::ExistsRegion: {
    RegionSet Delta = substRegionSet(T->delta(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::RegionVar);
    const Type *Body = substTypeRec(T->body(), BS.env());
    if (Id && B == T->var() && Body == T->body() && Delta == T->delta())
      return T;
    return C.typeExistsRegion(B, std::move(Delta), Body);
  }
  case TypeKind::Code: {
    BinderScope BS(E);
    std::vector<Symbol> TagParams;
    for (Symbol P : T->tagParams())
      TagParams.push_back(BS.enter(P, VarSort::TagVar));
    std::vector<Symbol> RegionParams;
    for (Symbol P : T->regionParams())
      RegionParams.push_back(BS.enter(P, VarSort::RegionVar));
    Env Inner = BS.env();
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes())
      Args.push_back(substTypeRec(A, Inner));
    return C.typeCode(std::move(TagParams), T->tagParamKinds(),
                      std::move(RegionParams), std::move(Args));
  }
  case TypeKind::TransCode: {
    std::vector<const Tag *> TagArgs;
    for (const Tag *A : T->transTags())
      TagArgs.push_back(substTagRec(A, E));
    std::vector<Region> RegionArgs;
    for (Region R : T->transRegions())
      RegionArgs.push_back(substRegion(R, E));
    Region At = substRegion(T->atRegion(), E);
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes())
      Args.push_back(substTypeRec(A, E));
    return C.typeTransCode(std::move(TagArgs), std::move(RegionArgs),
                           std::move(Args), At);
  }
  }
  return T;
}

const Value *substValueRec(const Value *V, const Env &E) {
  GcContext &C = E.C;
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return V;
  case ValueKind::Var: {
    auto It = E.S.Vals.find(V->var());
    return It == E.S.Vals.end() ? V : It->second;
  }
  case ValueKind::Pair:
    return C.valPair(substValueRec(V->first(), E),
                     substValueRec(V->second(), E));
  case ValueKind::Inl:
    return C.valInl(substValueRec(V->payload(), E));
  case ValueKind::Inr:
    return C.valInr(substValueRec(V->payload(), E));
  case ValueKind::PackTag: {
    const Tag *W = substTagRec(V->tagWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::TagVar);
    return C.valPackTag(B, W, P, substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::PackTyVar: {
    RegionSet Delta = substRegionSet(V->delta(), E);
    const Type *W = substTypeRec(V->typeWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::TypeVar);
    return C.valPackTyVar(B, std::move(Delta), W, P,
                          substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::PackRegion: {
    RegionSet Delta = substRegionSet(V->delta(), E);
    Region W = substRegion(V->regionWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::RegionVar);
    return C.valPackRegion(B, std::move(Delta), W, P,
                           substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::TransApp: {
    std::vector<const Tag *> Tags;
    for (const Tag *T : V->transTags())
      Tags.push_back(substTagRec(T, E));
    std::vector<Region> Regions;
    for (Region R : V->transRegions())
      Regions.push_back(substRegion(R, E));
    return C.valTransApp(substValueRec(V->payload(), E), std::move(Tags),
                         std::move(Regions));
  }
  case ValueKind::Code: {
    BinderScope BS(E);
    std::vector<Symbol> TagParams;
    for (Symbol P : V->tagParams())
      TagParams.push_back(BS.enter(P, VarSort::TagVar));
    std::vector<Symbol> RegionParams;
    for (Symbol P : V->regionParams())
      RegionParams.push_back(BS.enter(P, VarSort::RegionVar));
    std::vector<Symbol> ValParams;
    for (Symbol P : V->valParams())
      ValParams.push_back(BS.enter(P, VarSort::ValVar));
    Env Inner = BS.env();
    std::vector<const Type *> ValTypes;
    for (const Type *T : V->valParamTypes())
      ValTypes.push_back(substTypeRec(T, Inner));
    return C.valCode(std::move(TagParams), V->tagParamKinds(),
                     std::move(RegionParams), std::move(ValParams),
                     std::move(ValTypes), substTermRec(V->codeBody(), Inner));
  }
  }
  return V;
}

const Op *substOpRec(const Op *O, const Env &E) {
  GcContext &C = E.C;
  switch (O->kind()) {
  case OpKind::Val:
    return C.opVal(substValueRec(O->value(), E));
  case OpKind::Proj1:
    return C.opProj(1, substValueRec(O->value(), E));
  case OpKind::Proj2:
    return C.opProj(2, substValueRec(O->value(), E));
  case OpKind::Put:
    return C.opPut(substRegion(O->putRegion(), E),
                   substValueRec(O->value(), E));
  case OpKind::Get:
    return C.opGet(substValueRec(O->value(), E));
  case OpKind::Strip:
    return C.opStrip(substValueRec(O->value(), E));
  case OpKind::Prim:
    return C.opPrim(O->primOp(), substValueRec(O->lhs(), E),
                    substValueRec(O->rhs(), E));
  }
  return O;
}

const Term *substTermRec(const Term *T, const Env &E) {
  GcContext &C = E.C;
  switch (T->kind()) {
  case TermKind::App: {
    const Value *F = substValueRec(T->appFun(), E);
    std::vector<const Tag *> Tags;
    for (const Tag *A : T->appTags())
      Tags.push_back(substTagRec(A, E));
    std::vector<Region> Regions;
    for (Region R : T->appRegions())
      Regions.push_back(substRegion(R, E));
    std::vector<const Value *> Args;
    for (const Value *A : T->appArgs())
      Args.push_back(substValueRec(A, E));
    return C.termApp(F, std::move(Tags), std::move(Regions), std::move(Args));
  }
  case TermKind::Let: {
    const Op *O = substOpRec(T->letOp(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    return C.termLet(X, O, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::Halt:
    return C.termHalt(substValueRec(T->scrutinee(), E));
  case TermKind::IfGc:
    return C.termIfGc(substRegion(T->region(), E), substTermRec(T->sub1(), E),
                      substTermRec(T->sub2(), E));
  case TermKind::OpenTag: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol TV = BS.enter(T->binderVar(), VarSort::TagVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenTag(V, TV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::OpenTyVar: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol AV = BS.enter(T->binderVar(), VarSort::TypeVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenTyVar(V, AV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::LetRegion: {
    BinderScope BS(E);
    Symbol R = BS.enter(T->binderVar(), VarSort::RegionVar);
    return C.termLetRegion(R, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::Only:
    return C.termOnly(substRegionSet(T->onlySet(), E),
                      substTermRec(T->sub1(), E));
  case TermKind::Typecase: {
    const Tag *Scrut = substTagRec(T->tag(), E);
    const Term *CaseI = substTermRec(T->caseInt(), E);
    const Term *CaseA = substTermRec(T->caseArrow(), E);
    BinderScope BSP(E);
    Symbol T1 = BSP.enter(T->prodVar1(), VarSort::TagVar);
    Symbol T2 = BSP.enter(T->prodVar2(), VarSort::TagVar);
    const Term *CaseP = substTermRec(T->caseProd(), BSP.env());
    BinderScope BSE(E);
    Symbol Te = BSE.enter(T->existsVar(), VarSort::TagVar);
    const Term *CaseE = substTermRec(T->caseExists(), BSE.env());
    return C.termTypecase(Scrut, CaseI, CaseA, T1, T2, CaseP, Te, CaseE);
  }
  case TermKind::IfLeft: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    Env Inner = BS.env();
    return C.termIfLeft(X, V, substTermRec(T->sub1(), Inner),
                        substTermRec(T->sub2(), Inner));
  }
  case TermKind::Set:
    return C.termSet(substValueRec(T->scrutinee(), E),
                     substValueRec(T->setSource(), E),
                     substTermRec(T->sub1(), E));
  case TermKind::LetWiden: {
    Region R = substRegion(T->region(), E);
    const Tag *Tau = substTagRec(T->tag(), E);
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    return C.termLetWiden(X, R, Tau, V, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::OpenRegion: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol RV = BS.enter(T->binderVar(), VarSort::RegionVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenRegion(V, RV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::IfReg:
    return C.termIfReg(substRegion(T->ifregLhs(), E),
                       substRegion(T->ifregRhs(), E),
                       substTermRec(T->sub1(), E), substTermRec(T->sub2(), E));
  case TermKind::If0:
    return C.termIf0(substValueRec(T->scrutinee(), E),
                     substTermRec(T->sub1(), E), substTermRec(T->sub2(), E));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Closing substitution (environment-machine force boundary)
//===----------------------------------------------------------------------===//

/// See the contract in Ops.h: every range in the environment is closed, so
/// no binder can capture it and freshening is never needed. Binders are
/// handled with per-sort counting masks (counting, because the same symbol
/// can be re-bound by nested binders) that suppress environment lookups
/// underneath. Unlike the subst* family above, the ground-skip and the
/// unchanged-children identity returns are unconditional: the Ground bit is
/// maintained even with interning disabled, and there is no pre-existing
/// baseline behavior to preserve (Env mode is new with this traversal).
class Closer {
public:
  Closer(GcContext &C, const Subst &Env, CloseCounters *Ctr)
      : C(C), S(Env), Ctr(Ctr) {}

  Region region(Region R) {
    if (!R.isVar() || masked(MaskRegions, R.sym()))
      return R;
    auto It = S.Regions.find(R.sym());
    if (It == S.Regions.end())
      return R;
    count();
    return It->second;
  }

  RegionSet regionSet(const RegionSet &RS) {
    RegionSet Out;
    for (Region R : RS)
      Out.insert(region(R));
    return Out;
  }

  const Tag *tag(const Tag *T);
  const Type *type(const Type *T);
  const Value *value(const Value *V);
  const Op *op(const Op *O);
  const Term *term(const Term *E);

private:
  using MaskMap = std::unordered_map<Symbol, unsigned, SymbolHash>;

  /// RAII shadow over one or more binders (one count per enter).
  struct Shadow {
    ~Shadow() {
      for (auto It = Entered.rbegin(); It != Entered.rend(); ++It) {
        auto MI = It->first->find(It->second);
        if (--MI->second == 0)
          It->first->erase(MI);
      }
    }
    void enter(MaskMap &M, Symbol B) {
      ++M[B];
      Entered.emplace_back(&M, B);
    }
    std::vector<std::pair<MaskMap *, Symbol>> Entered;
  };

  static bool masked(const MaskMap &M, Symbol B) {
    return !M.empty() && M.count(B) != 0;
  }
  void count() {
    if (Ctr)
      ++Ctr->Lookups;
  }

  GcContext &C;
  const Subst &S;
  CloseCounters *Ctr;
  MaskMap MaskTags, MaskRegions, MaskTypes, MaskVals;
};

const Tag *Closer::tag(const Tag *T) {
  if (T->isGround())
    return T;
  switch (T->kind()) {
  case TagKind::Int:
    return T;
  case TagKind::Var: {
    if (masked(MaskTags, T->var()))
      return T;
    auto It = S.Tags.find(T->var());
    if (It == S.Tags.end())
      return T;
    count();
    return It->second;
  }
  case TagKind::Prod: {
    const Tag *A = tag(T->left());
    const Tag *B = tag(T->right());
    return A == T->left() && B == T->right() ? T : C.tagProd(A, B);
  }
  case TagKind::App: {
    const Tag *A = tag(T->left());
    const Tag *B = tag(T->right());
    return A == T->left() && B == T->right() ? T : C.tagApp(A, B);
  }
  case TagKind::Arrow: {
    std::vector<const Tag *> Args;
    Args.reserve(T->arrowArgs().size());
    bool Same = true;
    for (const Tag *A : T->arrowArgs()) {
      const Tag *N = tag(A);
      Same = Same && N == A;
      Args.push_back(N);
    }
    return Same ? T : C.tagArrow(std::move(Args));
  }
  case TagKind::Exists: {
    Shadow Sh;
    Sh.enter(MaskTags, T->var());
    const Tag *Body = tag(T->body());
    return Body == T->body() ? T : C.tagExists(T->var(), Body);
  }
  case TagKind::Lam: {
    Shadow Sh;
    Sh.enter(MaskTags, T->var());
    const Tag *Body = tag(T->body());
    return Body == T->body() ? T : C.tagLam(T->var(), T->binderKind(), Body);
  }
  }
  return T;
}

const Type *Closer::type(const Type *T) {
  if (T->isGround())
    return T;
  switch (T->kind()) {
  case TypeKind::Int:
    return T;
  case TypeKind::TyVar: {
    if (masked(MaskTypes, T->var()))
      return T;
    auto It = S.Types.find(T->var());
    if (It == S.Types.end())
      return T;
    count();
    return It->second;
  }
  case TypeKind::Prod: {
    const Type *A = type(T->left());
    const Type *B = type(T->right());
    return A == T->left() && B == T->right() ? T : C.typeProd(A, B);
  }
  case TypeKind::Sum: {
    const Type *A = type(T->left());
    const Type *B = type(T->right());
    return A == T->left() && B == T->right() ? T : C.typeSum(A, B);
  }
  case TypeKind::Left: {
    const Type *B = type(T->body());
    return B == T->body() ? T : C.typeLeft(B);
  }
  case TypeKind::Right: {
    const Type *B = type(T->body());
    return B == T->body() ? T : C.typeRight(B);
  }
  case TypeKind::At: {
    const Type *B = type(T->body());
    Region R = region(T->atRegion());
    return B == T->body() && R == T->atRegion() ? T : C.typeAt(B, R);
  }
  case TypeKind::MApp: {
    std::vector<Region> Rs;
    bool Same = true;
    for (Region R : T->mRegions()) {
      Region N = region(R);
      Same = Same && N == R;
      Rs.push_back(N);
    }
    const Tag *Tg = tag(T->tag());
    if (Same && Tg == T->tag())
      return T;
    return C.typeM(std::move(Rs), Tg);
  }
  case TypeKind::CApp: {
    Region F = region(T->cFrom());
    Region To = region(T->cTo());
    const Tag *Tg = tag(T->tag());
    if (F == T->cFrom() && To == T->cTo() && Tg == T->tag())
      return T;
    return C.typeC(F, To, Tg);
  }
  case TypeKind::ExistsTag: {
    Shadow Sh;
    Sh.enter(MaskTags, T->var());
    const Type *Body = type(T->body());
    return Body == T->body() ? T
                             : C.typeExistsTag(T->var(), T->binderKind(), Body);
  }
  case TypeKind::ExistsTyVar: {
    RegionSet Delta = regionSet(T->delta());
    Shadow Sh;
    Sh.enter(MaskTypes, T->var());
    const Type *Body = type(T->body());
    if (Body == T->body() && Delta == T->delta())
      return T;
    return C.typeExistsTyVar(T->var(), std::move(Delta), Body);
  }
  case TypeKind::ExistsRegion: {
    RegionSet Delta = regionSet(T->delta());
    Shadow Sh;
    Sh.enter(MaskRegions, T->var());
    const Type *Body = type(T->body());
    if (Body == T->body() && Delta == T->delta())
      return T;
    return C.typeExistsRegion(T->var(), std::move(Delta), Body);
  }
  case TypeKind::Code: {
    Shadow Sh;
    for (Symbol P : T->tagParams())
      Sh.enter(MaskTags, P);
    for (Symbol P : T->regionParams())
      Sh.enter(MaskRegions, P);
    std::vector<const Type *> Args;
    Args.reserve(T->argTypes().size());
    bool Same = true;
    for (const Type *A : T->argTypes()) {
      const Type *N = type(A);
      Same = Same && N == A;
      Args.push_back(N);
    }
    if (Same)
      return T;
    return C.typeCode(T->tagParams(), T->tagParamKinds(), T->regionParams(),
                      std::move(Args));
  }
  case TypeKind::TransCode: {
    bool Same = true;
    std::vector<const Tag *> TagArgs;
    for (const Tag *A : T->transTags()) {
      const Tag *N = tag(A);
      Same = Same && N == A;
      TagArgs.push_back(N);
    }
    std::vector<Region> RegionArgs;
    for (Region R : T->transRegions()) {
      Region N = region(R);
      Same = Same && N == R;
      RegionArgs.push_back(N);
    }
    Region At = region(T->atRegion());
    Same = Same && At == T->atRegion();
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes()) {
      const Type *N = type(A);
      Same = Same && N == A;
      Args.push_back(N);
    }
    if (Same)
      return T;
    return C.typeTransCode(std::move(TagArgs), std::move(RegionArgs),
                           std::move(Args), At);
  }
  }
  return T;
}

const Value *Closer::value(const Value *V) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return V;
  case ValueKind::Var: {
    if (masked(MaskVals, V->var()))
      return V;
    auto It = S.Vals.find(V->var());
    if (It == S.Vals.end())
      return V;
    count();
    return It->second;
  }
  case ValueKind::Pair: {
    const Value *A = value(V->first());
    const Value *B = value(V->second());
    return A == V->first() && B == V->second() ? V : C.valPair(A, B);
  }
  case ValueKind::Inl: {
    const Value *P = value(V->payload());
    return P == V->payload() ? V : C.valInl(P);
  }
  case ValueKind::Inr: {
    const Value *P = value(V->payload());
    return P == V->payload() ? V : C.valInr(P);
  }
  case ValueKind::PackTag: {
    const Tag *W = tag(V->tagWitness());
    const Value *P = value(V->payload());
    Shadow Sh;
    Sh.enter(MaskTags, V->var());
    const Type *BT = type(V->bodyType());
    if (W == V->tagWitness() && P == V->payload() && BT == V->bodyType())
      return V;
    return C.valPackTag(V->var(), W, P, BT);
  }
  case ValueKind::PackTyVar: {
    RegionSet Delta = regionSet(V->delta());
    const Type *W = type(V->typeWitness());
    const Value *P = value(V->payload());
    Shadow Sh;
    Sh.enter(MaskTypes, V->var());
    const Type *BT = type(V->bodyType());
    if (Delta == V->delta() && W == V->typeWitness() && P == V->payload() &&
        BT == V->bodyType())
      return V;
    return C.valPackTyVar(V->var(), std::move(Delta), W, P, BT);
  }
  case ValueKind::PackRegion: {
    RegionSet Delta = regionSet(V->delta());
    Region W = region(V->regionWitness());
    const Value *P = value(V->payload());
    Shadow Sh;
    Sh.enter(MaskRegions, V->var());
    const Type *BT = type(V->bodyType());
    if (Delta == V->delta() && W == V->regionWitness() && P == V->payload() &&
        BT == V->bodyType())
      return V;
    return C.valPackRegion(V->var(), std::move(Delta), W, P, BT);
  }
  case ValueKind::TransApp: {
    const Value *P = value(V->payload());
    bool Same = P == V->payload();
    std::vector<const Tag *> Tags;
    for (const Tag *T : V->transTags()) {
      const Tag *N = tag(T);
      Same = Same && N == T;
      Tags.push_back(N);
    }
    std::vector<Region> Regions;
    for (Region R : V->transRegions()) {
      Region N = region(R);
      Same = Same && N == R;
      Regions.push_back(N);
    }
    if (Same)
      return V;
    return C.valTransApp(P, std::move(Tags), std::move(Regions));
  }
  case ValueKind::Code: {
    Shadow Sh;
    for (Symbol P : V->tagParams())
      Sh.enter(MaskTags, P);
    for (Symbol P : V->regionParams())
      Sh.enter(MaskRegions, P);
    for (Symbol P : V->valParams())
      Sh.enter(MaskVals, P);
    std::vector<const Type *> ValTypes;
    ValTypes.reserve(V->valParamTypes().size());
    bool Same = true;
    for (const Type *T : V->valParamTypes()) {
      const Type *N = type(T);
      Same = Same && N == T;
      ValTypes.push_back(N);
    }
    const Term *Body = term(V->codeBody());
    if (Same && Body == V->codeBody())
      return V;
    return C.valCode(V->tagParams(), V->tagParamKinds(), V->regionParams(),
                     V->valParams(), std::move(ValTypes), Body);
  }
  }
  return V;
}

const Op *Closer::op(const Op *O) {
  switch (O->kind()) {
  case OpKind::Val: {
    const Value *V = value(O->value());
    return V == O->value() ? O : C.opVal(V);
  }
  case OpKind::Proj1:
  case OpKind::Proj2: {
    const Value *V = value(O->value());
    return V == O->value() ? O : C.opProj(O->is(OpKind::Proj1) ? 1 : 2, V);
  }
  case OpKind::Put: {
    Region R = region(O->putRegion());
    const Value *V = value(O->value());
    if (R == O->putRegion() && V == O->value())
      return O;
    return C.opPut(R, V);
  }
  case OpKind::Get: {
    const Value *V = value(O->value());
    return V == O->value() ? O : C.opGet(V);
  }
  case OpKind::Strip: {
    const Value *V = value(O->value());
    return V == O->value() ? O : C.opStrip(V);
  }
  case OpKind::Prim: {
    const Value *L = value(O->lhs());
    const Value *R = value(O->rhs());
    if (L == O->lhs() && R == O->rhs())
      return O;
    return C.opPrim(O->primOp(), L, R);
  }
  }
  return O;
}

const Term *Closer::term(const Term *T) {
  switch (T->kind()) {
  case TermKind::App: {
    const Value *F = value(T->appFun());
    bool Same = F == T->appFun();
    std::vector<const Tag *> Tags;
    Tags.reserve(T->appTags().size());
    for (const Tag *A : T->appTags()) {
      const Tag *N = tag(A);
      Same = Same && N == A;
      Tags.push_back(N);
    }
    std::vector<Region> Regions;
    Regions.reserve(T->appRegions().size());
    for (Region R : T->appRegions()) {
      Region N = region(R);
      Same = Same && N == R;
      Regions.push_back(N);
    }
    std::vector<const Value *> Args;
    Args.reserve(T->appArgs().size());
    for (const Value *A : T->appArgs()) {
      const Value *N = value(A);
      Same = Same && N == A;
      Args.push_back(N);
    }
    if (Same)
      return T;
    return C.termApp(F, std::move(Tags), std::move(Regions), std::move(Args));
  }
  case TermKind::Let: {
    const Op *O = op(T->letOp());
    Shadow Sh;
    Sh.enter(MaskVals, T->binderVar());
    const Term *B = term(T->sub1());
    if (O == T->letOp() && B == T->sub1())
      return T;
    return C.termLet(T->binderVar(), O, B);
  }
  case TermKind::Halt: {
    const Value *V = value(T->scrutinee());
    return V == T->scrutinee() ? T : C.termHalt(V);
  }
  case TermKind::IfGc: {
    Region R = region(T->region());
    const Term *A = term(T->sub1());
    const Term *B = term(T->sub2());
    if (R == T->region() && A == T->sub1() && B == T->sub2())
      return T;
    return C.termIfGc(R, A, B);
  }
  case TermKind::OpenTag: {
    const Value *V = value(T->scrutinee());
    Shadow Sh;
    Sh.enter(MaskTags, T->binderVar());
    Sh.enter(MaskVals, T->binderVar2());
    const Term *B = term(T->sub1());
    if (V == T->scrutinee() && B == T->sub1())
      return T;
    return C.termOpenTag(V, T->binderVar(), T->binderVar2(), B);
  }
  case TermKind::OpenTyVar: {
    const Value *V = value(T->scrutinee());
    Shadow Sh;
    Sh.enter(MaskTypes, T->binderVar());
    Sh.enter(MaskVals, T->binderVar2());
    const Term *B = term(T->sub1());
    if (V == T->scrutinee() && B == T->sub1())
      return T;
    return C.termOpenTyVar(V, T->binderVar(), T->binderVar2(), B);
  }
  case TermKind::LetRegion: {
    Shadow Sh;
    Sh.enter(MaskRegions, T->binderVar());
    const Term *B = term(T->sub1());
    return B == T->sub1() ? T : C.termLetRegion(T->binderVar(), B);
  }
  case TermKind::Only: {
    RegionSet Keep = regionSet(T->onlySet());
    const Term *B = term(T->sub1());
    if (Keep == T->onlySet() && B == T->sub1())
      return T;
    return C.termOnly(std::move(Keep), B);
  }
  case TermKind::Typecase: {
    const Tag *Scrut = tag(T->tag());
    const Term *CaseI = term(T->caseInt());
    const Term *CaseA = term(T->caseArrow());
    const Term *CaseP;
    {
      Shadow Sh;
      Sh.enter(MaskTags, T->prodVar1());
      Sh.enter(MaskTags, T->prodVar2());
      CaseP = term(T->caseProd());
    }
    const Term *CaseE;
    {
      Shadow Sh;
      Sh.enter(MaskTags, T->existsVar());
      CaseE = term(T->caseExists());
    }
    if (Scrut == T->tag() && CaseI == T->caseInt() && CaseA == T->caseArrow() &&
        CaseP == T->caseProd() && CaseE == T->caseExists())
      return T;
    return C.termTypecase(Scrut, CaseI, CaseA, T->prodVar1(), T->prodVar2(),
                          CaseP, T->existsVar(), CaseE);
  }
  case TermKind::IfLeft: {
    const Value *V = value(T->scrutinee());
    Shadow Sh;
    Sh.enter(MaskVals, T->binderVar());
    const Term *A = term(T->sub1());
    const Term *B = term(T->sub2());
    if (V == T->scrutinee() && A == T->sub1() && B == T->sub2())
      return T;
    return C.termIfLeft(T->binderVar(), V, A, B);
  }
  case TermKind::Set: {
    const Value *Dst = value(T->scrutinee());
    const Value *Src = value(T->setSource());
    const Term *B = term(T->sub1());
    if (Dst == T->scrutinee() && Src == T->setSource() && B == T->sub1())
      return T;
    return C.termSet(Dst, Src, B);
  }
  case TermKind::LetWiden: {
    Region R = region(T->region());
    const Tag *Tau = tag(T->tag());
    const Value *V = value(T->scrutinee());
    Shadow Sh;
    Sh.enter(MaskVals, T->binderVar());
    const Term *B = term(T->sub1());
    if (R == T->region() && Tau == T->tag() && V == T->scrutinee() &&
        B == T->sub1())
      return T;
    return C.termLetWiden(T->binderVar(), R, Tau, V, B);
  }
  case TermKind::OpenRegion: {
    const Value *V = value(T->scrutinee());
    Shadow Sh;
    Sh.enter(MaskRegions, T->binderVar());
    Sh.enter(MaskVals, T->binderVar2());
    const Term *B = term(T->sub1());
    if (V == T->scrutinee() && B == T->sub1())
      return T;
    return C.termOpenRegion(V, T->binderVar(), T->binderVar2(), B);
  }
  case TermKind::IfReg: {
    Region A = region(T->ifregLhs());
    Region B = region(T->ifregRhs());
    const Term *E1 = term(T->sub1());
    const Term *E2 = term(T->sub2());
    if (A == T->ifregLhs() && B == T->ifregRhs() && E1 == T->sub1() &&
        E2 == T->sub2())
      return T;
    return C.termIfReg(A, B, E1, E2);
  }
  case TermKind::If0: {
    const Value *V = value(T->scrutinee());
    const Term *E1 = term(T->sub1());
    const Term *E2 = term(T->sub2());
    if (V == T->scrutinee() && E1 == T->sub1() && E2 == T->sub2())
      return T;
    return C.termIf0(V, E1, E2);
  }
  }
  return T;
}

} // namespace

const Tag *scav::gc::closeTag(GcContext &C, const Tag *T, const Subst &Env,
                              CloseCounters *Counters) {
  if (Env.empty())
    return T;
  return Closer(C, Env, Counters).tag(T);
}

const Type *scav::gc::closeType(GcContext &C, const Type *T, const Subst &Env,
                                CloseCounters *Counters) {
  if (Env.empty())
    return T;
  return Closer(C, Env, Counters).type(T);
}

const Value *scav::gc::closeValue(GcContext &C, const Value *V,
                                  const Subst &Env, CloseCounters *Counters) {
  if (Env.empty())
    return V;
  return Closer(C, Env, Counters).value(V);
}

const Term *scav::gc::closeTerm(GcContext &C, const Term *E, const Subst &Env,
                                CloseCounters *Counters) {
  if (Env.empty())
    return E;
  return Closer(C, Env, Counters).term(E);
}

Region scav::gc::closeRegion(Region R, const Subst &Env,
                             CloseCounters *Counters) {
  if (!R.isVar())
    return R;
  auto It = Env.Regions.find(R.sym());
  if (It == Env.Regions.end())
    return R;
  if (Counters)
    ++Counters->Lookups;
  return It->second;
}

RegionSet scav::gc::closeRegionSet(const RegionSet &RS, const Subst &Env,
                                   CloseCounters *Counters) {
  RegionSet Out;
  for (Region R : RS)
    Out.insert(closeRegion(R, Env, Counters));
  return Out;
}

const Tag *scav::gc::applySubst(GcContext &C, const Tag *T, const Subst &S) {
  if (S.empty())
    return T;
  SymbolSet Unsafe = computeUnsafe(C, S);
  return substTagRec(T, Env{C, S, Unsafe});
}

const Type *scav::gc::applySubst(GcContext &C, const Type *T, const Subst &S) {
  if (S.empty())
    return T;
  SymbolSet Unsafe = computeUnsafe(C, S);
  return substTypeRec(T, Env{C, S, Unsafe});
}

const Value *scav::gc::applySubst(GcContext &C, const Value *V,
                                  const Subst &S) {
  if (S.empty())
    return V;
  SymbolSet Unsafe = computeUnsafe(C, S);
  return substValueRec(V, Env{C, S, Unsafe});
}

const Op *scav::gc::applySubst(GcContext &C, const Op *O, const Subst &S) {
  if (S.empty())
    return O;
  SymbolSet Unsafe = computeUnsafe(C, S);
  return substOpRec(O, Env{C, S, Unsafe});
}

const Term *scav::gc::applySubst(GcContext &C, const Term *E, const Subst &S) {
  if (S.empty())
    return E;
  SymbolSet Unsafe = computeUnsafe(C, S);
  return substTermRec(E, Env{C, S, Unsafe});
}

Region scav::gc::applySubst(Region R, const Subst &S) {
  if (!R.isVar())
    return R;
  auto It = S.Regions.find(R.sym());
  return It == S.Regions.end() ? R : It->second;
}

RegionSet scav::gc::applySubst(const RegionSet &RS, const Subst &S) {
  RegionSet Out;
  for (Region R : RS)
    Out.insert(applySubst(R, S));
  return Out;
}

const Tag *scav::gc::substTag(GcContext &C, const Tag *In, Symbol Var,
                              const Tag *Rep) {
  Subst S;
  S.Tags[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substTagInType(GcContext &C, const Type *In, Symbol Var,
                                     const Tag *Rep) {
  Subst S;
  S.Tags[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substRegionInType(GcContext &C, const Type *In,
                                        Symbol Var, Region Rep) {
  Subst S;
  S.Regions[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substTypeVarInType(GcContext &C, const Type *In,
                                         Symbol Var, const Type *Rep) {
  Subst S;
  S.Types[Var] = Rep;
  return applySubst(C, In, S);
}
