//===- gc/Subst.cpp - Simultaneous capture-avoiding substitution ----------===//
///
/// \file
/// Implements applySubst over every syntactic class. Binders are freshened
/// only when they collide with the substitution's domain or with symbols
/// mentioned by its range ("unsafe" symbols), so the common path allocates
/// no extra maps.
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// The set of symbols that force a binder rename.
SymbolSet computeUnsafe(const Subst &S) {
  SymbolSet U;
  for (const auto &[K, V] : S.Tags) {
    U.insert(K);
    collectSymbols(V, U);
  }
  for (const auto &[K, V] : S.Regions) {
    U.insert(K);
    U.insert(V.sym());
  }
  for (const auto &[K, V] : S.Types) {
    U.insert(K);
    collectSymbols(V, U);
  }
  for (const auto &[K, V] : S.Vals) {
    U.insert(K);
    collectSymbols(V, U);
  }
  return U;
}

enum class VarSort { TagVar, RegionVar, TypeVar, ValVar };

/// Carries the substitution and unsafe set down the traversal; extended
/// (copied) only when a binder must be renamed or shadowed.
struct Env {
  GcContext &C;
  const Subst &S;
  const SymbolSet &Unsafe;
};

/// Result of entering a binder: the possibly-renamed binder plus the
/// environment to use for the body. Owns the extension storage.
struct BinderScope {
  BinderScope(const Env &E) : C(E.C), CurS(&E.S), CurUnsafe(&E.Unsafe) {}

  /// Enters one binder of the given sort; returns the binder to emit.
  Symbol enter(Symbol B, VarSort Sort) {
    bool InDomain = false;
    switch (Sort) {
    case VarSort::TagVar:
      InDomain = CurS->Tags.count(B) != 0;
      break;
    case VarSort::RegionVar:
      InDomain = CurS->Regions.count(B) != 0;
      break;
    case VarSort::TypeVar:
      InDomain = CurS->Types.count(B) != 0;
      break;
    case VarSort::ValVar:
      InDomain = CurS->Vals.count(B) != 0;
      break;
    }
    if (!InDomain && CurUnsafe->count(B) == 0)
      return B;

    // Copy-on-write extension.
    if (!OwnedS) {
      OwnedS = std::make_unique<Subst>(*CurS);
      OwnedUnsafe = std::make_unique<SymbolSet>(*CurUnsafe);
      CurS = OwnedS.get();
      CurUnsafe = OwnedUnsafe.get();
    }
    Symbol B2 = C.fresh(C.name(B));
    switch (Sort) {
    case VarSort::TagVar:
      OwnedS->Tags[B] = C.tagVar(B2);
      break;
    case VarSort::RegionVar:
      OwnedS->Regions[B] = Region::var(B2);
      break;
    case VarSort::TypeVar:
      OwnedS->Types[B] = C.typeVar(B2);
      break;
    case VarSort::ValVar:
      OwnedS->Vals[B] = C.valVar(B2);
      break;
    }
    OwnedUnsafe->insert(B2);
    return B2;
  }

  Env env() const { return Env{C, *CurS, *CurUnsafe}; }

private:
  GcContext &C;
  const Subst *CurS;
  const SymbolSet *CurUnsafe;
  std::unique_ptr<Subst> OwnedS;
  std::unique_ptr<SymbolSet> OwnedUnsafe;
};

Region substRegion(Region R, const Env &E) {
  if (!R.isVar())
    return R;
  auto It = E.S.Regions.find(R.sym());
  return It == E.S.Regions.end() ? R : It->second;
}

RegionSet substRegionSet(const RegionSet &RS, const Env &E) {
  RegionSet Out;
  for (Region R : RS)
    Out.insert(substRegion(R, E));
  return Out;
}

const Tag *substTagRec(const Tag *T, const Env &E);
const Type *substTypeRec(const Type *T, const Env &E);
const Value *substValueRec(const Value *V, const Env &E);
const Term *substTermRec(const Term *T, const Env &E);

const Tag *substTagRec(const Tag *T, const Env &E) {
  GcContext &C = E.C;
  switch (T->kind()) {
  case TagKind::Int:
    return T;
  case TagKind::Var: {
    auto It = E.S.Tags.find(T->var());
    return It == E.S.Tags.end() ? T : It->second;
  }
  case TagKind::Prod:
    return C.tagProd(substTagRec(T->left(), E), substTagRec(T->right(), E));
  case TagKind::App:
    return C.tagApp(substTagRec(T->left(), E), substTagRec(T->right(), E));
  case TagKind::Arrow: {
    std::vector<const Tag *> Args;
    Args.reserve(T->arrowArgs().size());
    for (const Tag *A : T->arrowArgs())
      Args.push_back(substTagRec(A, E));
    return C.tagArrow(std::move(Args));
  }
  case TagKind::Exists: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    return C.tagExists(B, substTagRec(T->body(), BS.env()));
  }
  case TagKind::Lam: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    return C.tagLam(B, T->binderKind(), substTagRec(T->body(), BS.env()));
  }
  }
  return T;
}

const Type *substTypeRec(const Type *T, const Env &E) {
  GcContext &C = E.C;
  switch (T->kind()) {
  case TypeKind::Int:
    return T;
  case TypeKind::TyVar: {
    auto It = E.S.Types.find(T->var());
    return It == E.S.Types.end() ? T : It->second;
  }
  case TypeKind::Prod:
    return C.typeProd(substTypeRec(T->left(), E), substTypeRec(T->right(), E));
  case TypeKind::Sum:
    return C.typeSum(substTypeRec(T->left(), E), substTypeRec(T->right(), E));
  case TypeKind::Left:
    return C.typeLeft(substTypeRec(T->body(), E));
  case TypeKind::Right:
    return C.typeRight(substTypeRec(T->body(), E));
  case TypeKind::At:
    return C.typeAt(substTypeRec(T->body(), E), substRegion(T->atRegion(), E));
  case TypeKind::MApp: {
    std::vector<Region> Rs;
    for (Region R : T->mRegions())
      Rs.push_back(substRegion(R, E));
    return C.typeM(std::move(Rs), substTagRec(T->tag(), E));
  }
  case TypeKind::CApp:
    return C.typeC(substRegion(T->cFrom(), E), substRegion(T->cTo(), E),
                   substTagRec(T->tag(), E));
  case TypeKind::ExistsTag: {
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TagVar);
    return C.typeExistsTag(B, T->binderKind(),
                           substTypeRec(T->body(), BS.env()));
  }
  case TypeKind::ExistsTyVar: {
    RegionSet Delta = substRegionSet(T->delta(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::TypeVar);
    return C.typeExistsTyVar(B, std::move(Delta),
                             substTypeRec(T->body(), BS.env()));
  }
  case TypeKind::ExistsRegion: {
    RegionSet Delta = substRegionSet(T->delta(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(T->var(), VarSort::RegionVar);
    return C.typeExistsRegion(B, std::move(Delta),
                              substTypeRec(T->body(), BS.env()));
  }
  case TypeKind::Code: {
    BinderScope BS(E);
    std::vector<Symbol> TagParams;
    for (Symbol P : T->tagParams())
      TagParams.push_back(BS.enter(P, VarSort::TagVar));
    std::vector<Symbol> RegionParams;
    for (Symbol P : T->regionParams())
      RegionParams.push_back(BS.enter(P, VarSort::RegionVar));
    Env Inner = BS.env();
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes())
      Args.push_back(substTypeRec(A, Inner));
    return C.typeCode(std::move(TagParams), T->tagParamKinds(),
                      std::move(RegionParams), std::move(Args));
  }
  case TypeKind::TransCode: {
    std::vector<const Tag *> TagArgs;
    for (const Tag *A : T->transTags())
      TagArgs.push_back(substTagRec(A, E));
    std::vector<Region> RegionArgs;
    for (Region R : T->transRegions())
      RegionArgs.push_back(substRegion(R, E));
    Region At = substRegion(T->atRegion(), E);
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes())
      Args.push_back(substTypeRec(A, E));
    return C.typeTransCode(std::move(TagArgs), std::move(RegionArgs),
                           std::move(Args), At);
  }
  }
  return T;
}

const Value *substValueRec(const Value *V, const Env &E) {
  GcContext &C = E.C;
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Addr:
    return V;
  case ValueKind::Var: {
    auto It = E.S.Vals.find(V->var());
    return It == E.S.Vals.end() ? V : It->second;
  }
  case ValueKind::Pair:
    return C.valPair(substValueRec(V->first(), E),
                     substValueRec(V->second(), E));
  case ValueKind::Inl:
    return C.valInl(substValueRec(V->payload(), E));
  case ValueKind::Inr:
    return C.valInr(substValueRec(V->payload(), E));
  case ValueKind::PackTag: {
    const Tag *W = substTagRec(V->tagWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::TagVar);
    return C.valPackTag(B, W, P, substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::PackTyVar: {
    RegionSet Delta = substRegionSet(V->delta(), E);
    const Type *W = substTypeRec(V->typeWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::TypeVar);
    return C.valPackTyVar(B, std::move(Delta), W, P,
                          substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::PackRegion: {
    RegionSet Delta = substRegionSet(V->delta(), E);
    Region W = substRegion(V->regionWitness(), E);
    const Value *P = substValueRec(V->payload(), E);
    BinderScope BS(E);
    Symbol B = BS.enter(V->var(), VarSort::RegionVar);
    return C.valPackRegion(B, std::move(Delta), W, P,
                           substTypeRec(V->bodyType(), BS.env()));
  }
  case ValueKind::TransApp: {
    std::vector<const Tag *> Tags;
    for (const Tag *T : V->transTags())
      Tags.push_back(substTagRec(T, E));
    std::vector<Region> Regions;
    for (Region R : V->transRegions())
      Regions.push_back(substRegion(R, E));
    return C.valTransApp(substValueRec(V->payload(), E), std::move(Tags),
                         std::move(Regions));
  }
  case ValueKind::Code: {
    BinderScope BS(E);
    std::vector<Symbol> TagParams;
    for (Symbol P : V->tagParams())
      TagParams.push_back(BS.enter(P, VarSort::TagVar));
    std::vector<Symbol> RegionParams;
    for (Symbol P : V->regionParams())
      RegionParams.push_back(BS.enter(P, VarSort::RegionVar));
    std::vector<Symbol> ValParams;
    for (Symbol P : V->valParams())
      ValParams.push_back(BS.enter(P, VarSort::ValVar));
    Env Inner = BS.env();
    std::vector<const Type *> ValTypes;
    for (const Type *T : V->valParamTypes())
      ValTypes.push_back(substTypeRec(T, Inner));
    return C.valCode(std::move(TagParams), V->tagParamKinds(),
                     std::move(RegionParams), std::move(ValParams),
                     std::move(ValTypes), substTermRec(V->codeBody(), Inner));
  }
  }
  return V;
}

const Op *substOpRec(const Op *O, const Env &E) {
  GcContext &C = E.C;
  switch (O->kind()) {
  case OpKind::Val:
    return C.opVal(substValueRec(O->value(), E));
  case OpKind::Proj1:
    return C.opProj(1, substValueRec(O->value(), E));
  case OpKind::Proj2:
    return C.opProj(2, substValueRec(O->value(), E));
  case OpKind::Put:
    return C.opPut(substRegion(O->putRegion(), E),
                   substValueRec(O->value(), E));
  case OpKind::Get:
    return C.opGet(substValueRec(O->value(), E));
  case OpKind::Strip:
    return C.opStrip(substValueRec(O->value(), E));
  case OpKind::Prim:
    return C.opPrim(O->primOp(), substValueRec(O->lhs(), E),
                    substValueRec(O->rhs(), E));
  }
  return O;
}

const Term *substTermRec(const Term *T, const Env &E) {
  GcContext &C = E.C;
  switch (T->kind()) {
  case TermKind::App: {
    const Value *F = substValueRec(T->appFun(), E);
    std::vector<const Tag *> Tags;
    for (const Tag *A : T->appTags())
      Tags.push_back(substTagRec(A, E));
    std::vector<Region> Regions;
    for (Region R : T->appRegions())
      Regions.push_back(substRegion(R, E));
    std::vector<const Value *> Args;
    for (const Value *A : T->appArgs())
      Args.push_back(substValueRec(A, E));
    return C.termApp(F, std::move(Tags), std::move(Regions), std::move(Args));
  }
  case TermKind::Let: {
    const Op *O = substOpRec(T->letOp(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    return C.termLet(X, O, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::Halt:
    return C.termHalt(substValueRec(T->scrutinee(), E));
  case TermKind::IfGc:
    return C.termIfGc(substRegion(T->region(), E), substTermRec(T->sub1(), E),
                      substTermRec(T->sub2(), E));
  case TermKind::OpenTag: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol TV = BS.enter(T->binderVar(), VarSort::TagVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenTag(V, TV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::OpenTyVar: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol AV = BS.enter(T->binderVar(), VarSort::TypeVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenTyVar(V, AV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::LetRegion: {
    BinderScope BS(E);
    Symbol R = BS.enter(T->binderVar(), VarSort::RegionVar);
    return C.termLetRegion(R, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::Only:
    return C.termOnly(substRegionSet(T->onlySet(), E),
                      substTermRec(T->sub1(), E));
  case TermKind::Typecase: {
    const Tag *Scrut = substTagRec(T->tag(), E);
    const Term *CaseI = substTermRec(T->caseInt(), E);
    const Term *CaseA = substTermRec(T->caseArrow(), E);
    BinderScope BSP(E);
    Symbol T1 = BSP.enter(T->prodVar1(), VarSort::TagVar);
    Symbol T2 = BSP.enter(T->prodVar2(), VarSort::TagVar);
    const Term *CaseP = substTermRec(T->caseProd(), BSP.env());
    BinderScope BSE(E);
    Symbol Te = BSE.enter(T->existsVar(), VarSort::TagVar);
    const Term *CaseE = substTermRec(T->caseExists(), BSE.env());
    return C.termTypecase(Scrut, CaseI, CaseA, T1, T2, CaseP, Te, CaseE);
  }
  case TermKind::IfLeft: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    Env Inner = BS.env();
    return C.termIfLeft(X, V, substTermRec(T->sub1(), Inner),
                        substTermRec(T->sub2(), Inner));
  }
  case TermKind::Set:
    return C.termSet(substValueRec(T->scrutinee(), E),
                     substValueRec(T->setSource(), E),
                     substTermRec(T->sub1(), E));
  case TermKind::LetWiden: {
    Region R = substRegion(T->region(), E);
    const Tag *Tau = substTagRec(T->tag(), E);
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol X = BS.enter(T->binderVar(), VarSort::ValVar);
    return C.termLetWiden(X, R, Tau, V, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::OpenRegion: {
    const Value *V = substValueRec(T->scrutinee(), E);
    BinderScope BS(E);
    Symbol RV = BS.enter(T->binderVar(), VarSort::RegionVar);
    Symbol XV = BS.enter(T->binderVar2(), VarSort::ValVar);
    return C.termOpenRegion(V, RV, XV, substTermRec(T->sub1(), BS.env()));
  }
  case TermKind::IfReg:
    return C.termIfReg(substRegion(T->ifregLhs(), E),
                       substRegion(T->ifregRhs(), E),
                       substTermRec(T->sub1(), E), substTermRec(T->sub2(), E));
  case TermKind::If0:
    return C.termIf0(substValueRec(T->scrutinee(), E),
                     substTermRec(T->sub1(), E), substTermRec(T->sub2(), E));
  }
  return T;
}

} // namespace

const Tag *scav::gc::applySubst(GcContext &C, const Tag *T, const Subst &S) {
  if (S.empty())
    return T;
  SymbolSet Unsafe = computeUnsafe(S);
  return substTagRec(T, Env{C, S, Unsafe});
}

const Type *scav::gc::applySubst(GcContext &C, const Type *T, const Subst &S) {
  if (S.empty())
    return T;
  SymbolSet Unsafe = computeUnsafe(S);
  return substTypeRec(T, Env{C, S, Unsafe});
}

const Value *scav::gc::applySubst(GcContext &C, const Value *V,
                                  const Subst &S) {
  if (S.empty())
    return V;
  SymbolSet Unsafe = computeUnsafe(S);
  return substValueRec(V, Env{C, S, Unsafe});
}

const Op *scav::gc::applySubst(GcContext &C, const Op *O, const Subst &S) {
  if (S.empty())
    return O;
  SymbolSet Unsafe = computeUnsafe(S);
  return substOpRec(O, Env{C, S, Unsafe});
}

const Term *scav::gc::applySubst(GcContext &C, const Term *E, const Subst &S) {
  if (S.empty())
    return E;
  SymbolSet Unsafe = computeUnsafe(S);
  return substTermRec(E, Env{C, S, Unsafe});
}

Region scav::gc::applySubst(Region R, const Subst &S) {
  if (!R.isVar())
    return R;
  auto It = S.Regions.find(R.sym());
  return It == S.Regions.end() ? R : It->second;
}

RegionSet scav::gc::applySubst(const RegionSet &RS, const Subst &S) {
  RegionSet Out;
  for (Region R : RS)
    Out.insert(applySubst(R, S));
  return Out;
}

const Tag *scav::gc::substTag(GcContext &C, const Tag *In, Symbol Var,
                              const Tag *Rep) {
  Subst S;
  S.Tags[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substTagInType(GcContext &C, const Type *In, Symbol Var,
                                     const Tag *Rep) {
  Subst S;
  S.Tags[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substRegionInType(GcContext &C, const Type *In,
                                        Symbol Var, Region Rep) {
  Subst S;
  S.Regions[Var] = Rep;
  return applySubst(C, In, S);
}

const Type *scav::gc::substTypeVarInType(GcContext &C, const Type *In,
                                         Symbol Var, const Type *Rep) {
  Subst S;
  S.Types[Var] = Rep;
  return applySubst(C, In, S);
}
