//===- gc/Memory.h - Regions, memories, and memory types -------*- C++ -*-===//
///
/// \file
/// The allocation-semantics state (§6, Fig 2 bottom):
///
///   R ::= {ℓ1 ↦ v1, ..., ℓn ↦ vn}                 regions
///   M ::= {cd ↦ Rcd, ν1 ↦ R1, ..., νn ↦ Rn}       memories
///   Υ ::= {ℓ1 : σ1, ..., ℓn : σn}                  region types
///   Ψ ::= {cd : Υcd, ν1 : Υ1, ..., νn : Υn}        memory types
///
/// Ψ is the typing witness for M; the machine maintains it incrementally
/// (see Machine.cpp) so the dynamic soundness harness can re-establish
/// ⊢ (M, e) after every step. Regions carry a soft capacity that drives
/// `ifgc ρ e1 e2` ("if ρ is full"): allocation beyond capacity is allowed
/// (the collector itself must be able to allocate), but `ifgc` reports full.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_MEMORY_H
#define SCAV_GC_MEMORY_H

#include "gc/Term.h"

#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

namespace scav::gc {

/// A region R: a dense bump-allocated cell array (offset = index). Regions
/// are only ever freed wholesale (`only`), never cell by cell, so a vector
/// models the paper's region arenas faithfully — including O(1) bulk free.
struct RegionData {
  std::vector<const Value *> Cells;
  /// Soft capacity in cells; 0 means unlimited (never "full").
  uint32_t Capacity = 0;
  /// Total cells ever allocated here.
  uint64_t TotalAllocated = 0;
  /// The machine's only-epoch at creation time; the heap-growth policy
  /// resizes only regions born in the current collection cycle (the
  /// to-spaces), so long-lived regions keep their trigger capacity.
  uint64_t Epoch = 0;
  /// Mutation stamp, bumped by every put/fill/update. A consumer that
  /// remembers the stamp can skip an untouched region in O(1).
  uint64_t Version = 0;
  /// Offsets overwritten in place (fill/update), in order. Fresh cells are
  /// not logged — consumers detect them from Cells.size() growth. The log
  /// is cleared by its consumer (the incremental checker's capture step);
  /// in unchecked runs it is bounded by DirtyLogCap: on overflow the log is
  /// dropped and DirtyOverflow set, which consumers must treat as
  /// "every established offset may be dirty" (full-region resync).
  std::vector<uint32_t> DirtyLog;
  bool DirtyOverflow = false;

  /// Cap on DirtyLog entries before falling back to the overflow flag.
  /// Collectors `fill` every copied cell, so checked collection windows can
  /// legitimately log thousands of offsets; 64Ki keeps those exact while
  /// bounding unchecked runs to 256KiB of log per region.
  static constexpr size_t DirtyLogCap = 1u << 16;

  void logDirty(uint32_t Off) {
    if (DirtyOverflow)
      return;
    if (DirtyLog.size() >= DirtyLogCap) {
      DirtyLog.clear();
      DirtyLog.shrink_to_fit();
      DirtyOverflow = true;
      return;
    }
    DirtyLog.push_back(Off);
  }

  /// Consumer-side drain: forget everything logged so far.
  void clearDirty() {
    DirtyLog.clear();
    DirtyOverflow = false;
  }
};

/// A region type Υ (dense, parallel to RegionData).
struct RegionType {
  std::vector<const Type *> Cells;
  /// Mutation stamp / in-place overwrite log, exactly as in RegionData.
  /// In normal operation Ψ cells are only ever *extended* (recordPut at
  /// fresh offsets) or rewritten wholesale (widen/only, which the machine
  /// journals as region events), so the log stays nearly empty: the only
  /// machine-originated entries are out-of-order defineCode filling a
  /// reserved null pad in cd. Every other entry is external Ψ surgery —
  /// which is precisely what the incremental checker needs to hear about,
  /// and `set` logs *every* write at an established offset (null pad or
  /// not) so no Version bump below Cells.size() can bypass the log.
  /// Capped like RegionData's (overflow ⇒ consumers resync the region).
  uint64_t Version = 0;
  std::vector<uint32_t> DirtyLog;
  bool DirtyOverflow = false;

  void logDirty(uint32_t Off) {
    if (DirtyOverflow)
      return;
    if (DirtyLog.size() >= RegionData::DirtyLogCap) {
      DirtyLog.clear();
      DirtyLog.shrink_to_fit();
      DirtyOverflow = true;
      return;
    }
    DirtyLog.push_back(Off);
  }

  void clearDirty() {
    DirtyLog.clear();
    DirtyOverflow = false;
  }
};

/// A memory type Ψ.
class MemoryType {
public:
  /// \returns the cell type Ψ(ν.ℓ), or nullptr if absent.
  const Type *lookup(Address A) const {
    auto RIt = Regions.find(A.R.sym());
    if (RIt == Regions.end())
      return nullptr;
    const auto &Cs = RIt->second.Cells;
    return A.Offset < Cs.size() ? Cs[A.Offset] : nullptr;
  }

  void set(Address A, const Type *T) {
    RegionType &R = Regions[A.R.sym()];
    auto &Cs = R.Cells;
    if (A.Offset >= Cs.size())
      // size_t arithmetic: Offset + 1 must not wrap when Offset is the
      // largest representable uint32_t.
      Cs.resize(size_t(A.Offset) + 1, nullptr);
    else
      // In-place write at an existing offset — log it even when the slot
      // was a null pad, so every Version bump below Cells.size() is
      // visible in DirtyLog (fresh entries are found from Cells.size()
      // growth instead).
      R.logDirty(A.Offset);
    Cs[A.Offset] = T;
    ++R.Version;
  }

  bool hasRegion(Symbol S) const { return Regions.count(S) != 0; }
  void addRegion(Symbol S) { Regions.try_emplace(S); }
  void removeRegion(Symbol S) { Regions.erase(S); }

  /// Dom(Ψ) as a RegionSet of region names.
  RegionSet domain() const {
    RegionSet Out;
    for (const auto &[S, _] : Regions)
      Out.insert(Region::name(S));
    return Out;
  }

  /// Keyed by region-name symbol. An unordered map: Ψ's region set is
  /// iterated only to build sorted RegionSets (domain()) or for
  /// order-insensitive bulk updates (widen, only, state checking), never in
  /// a way whose *order* is semantically relevant — O(1) lookup matters on
  /// the per-put hot path.
  std::unordered_map<Symbol, RegionType, SymbolHash> Regions;
};

/// A memory M. Always contains cd.
class Memory {
public:
  explicit Memory(Symbol CdSym) : CdSym(CdSym) { Regions.try_emplace(CdSym); }

  /// Allocates a fresh region named \p S with the given soft capacity.
  void addRegion(Symbol S, uint32_t Capacity) {
    RegionData &R = Regions[S];
    R.Capacity = Capacity;
  }

  bool hasRegion(Symbol S) const { return Regions.count(S) != 0; }

  RegionData *region(Symbol S) {
    auto It = Regions.find(S);
    return It == Regions.end() ? nullptr : &It->second;
  }
  const RegionData *region(Symbol S) const {
    auto It = Regions.find(S);
    return It == Regions.end() ? nullptr : &It->second;
  }

  /// Stores \p V at a fresh offset in region \p S; returns the address.
  /// Fails (nullopt) if the region does not exist or its offset space is
  /// exhausted: offsets are uint32_t, and silently wrapping past 2³² cells
  /// would alias live cells. The machine turns the failure into a stuck
  /// state rather than corrupting memory.
  std::optional<Address> put(Symbol S, const Value *V) {
    RegionData *R = region(S);
    if (!R)
      return std::nullopt;
    if (R->Cells.size() >= std::numeric_limits<uint32_t>::max())
      return std::nullopt;
    uint32_t Off = static_cast<uint32_t>(R->Cells.size());
    R->Cells.push_back(V);
    ++R->TotalAllocated;
    ++R->Version;
    if (S != CdSym)
      ++LiveData;
    return Address{Region::name(S), Off};
  }

  /// Bulk-appends \p Vs at fresh offsets in region \p S (one Version bump).
  /// The parallel collector's serial epilogue installs each worker's copied
  /// cells this way; like put, fresh cells are not dirty-logged — consumers
  /// see them from Cells.size() growth.
  bool appendCells(Symbol S, const std::vector<const Value *> &Vs) {
    RegionData *R = region(S);
    if (!R)
      return false;
    if (R->Cells.size() + Vs.size() >= std::numeric_limits<uint32_t>::max())
      return false;
    R->Cells.insert(R->Cells.end(), Vs.begin(), Vs.end());
    R->TotalAllocated += Vs.size();
    ++R->Version;
    if (S != CdSym)
      LiveData += Vs.size();
    return true;
  }

  /// \returns the value stored at \p A, or nullptr.
  const Value *get(Address A) const {
    const RegionData *R = region(A.R.sym());
    if (!R)
      return nullptr;
    return A.Offset < R->Cells.size() ? R->Cells[A.Offset] : nullptr;
  }

  /// Fills a reserved (nullptr) slot; used by the Cheney copier and
  /// defineCode-style two-phase initialization.
  bool fill(Address A, const Value *V) {
    RegionData *R = region(A.R.sym());
    if (!R || A.Offset >= R->Cells.size())
      return false;
    R->Cells[A.Offset] = V;
    ++R->Version;
    R->logDirty(A.Offset);
    return true;
  }

  /// Overwrites the cell at \p A (used by `set`); returns false if absent.
  bool update(Address A, const Value *V) {
    RegionData *R = region(A.R.sym());
    if (!R)
      return false;
    if (A.Offset >= R->Cells.size() || !R->Cells[A.Offset])
      return false;
    R->Cells[A.Offset] = V;
    ++R->Version;
    R->logDirty(A.Offset);
    return true;
  }

  /// `only ∆`: drops every region not in \p Keep (cd always survives).
  /// \returns the number of regions reclaimed.
  size_t restrictTo(const RegionSet &Keep) {
    size_t Reclaimed = 0;
    for (auto It = Regions.begin(); It != Regions.end();) {
      if (It->first == CdSym || Keep.contains(Region::name(It->first))) {
        ++It;
        continue;
      }
      LiveData -= It->second.Cells.size();
      It = Regions.erase(It);
      ++Reclaimed;
    }
    return Reclaimed;
  }

  /// "ρ is full" for ifgc: at least Capacity cells live (0 = never full).
  bool isFull(Symbol S) const {
    const RegionData *R = region(S);
    if (!R || R->Capacity == 0)
      return false;
    return R->Cells.size() >= R->Capacity;
  }

  Symbol cdSym() const { return CdSym; }

  size_t numRegions() const { return Regions.size(); }

  /// Live cells across all regions except cd. O(1): a running counter
  /// maintained by put/appendCells/restrictTo (the only paths that grow or
  /// drop data-region cells) — it is read from the per-step trace counter
  /// track, where an O(regions) sum was measurable.
  size_t liveDataCells() const { return LiveData; }

  /// Keyed by region-name symbol. Unordered on purpose (see MemoryType):
  /// iteration sites (restrictTo, liveDataCells, heap growth, the native
  /// collector's keep-set, state checking) are all order-insensitive, and
  /// `only`'s scan plus the per-put region lookup are hot (E5).
  std::unordered_map<Symbol, RegionData, SymbolHash> Regions;

private:
  Symbol CdSym;
  /// Running liveDataCells() counter (cells in non-cd regions).
  size_t LiveData = 0;
};

} // namespace scav::gc

#endif // SCAV_GC_MEMORY_H
